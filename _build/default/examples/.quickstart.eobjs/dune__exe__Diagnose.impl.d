examples/diagnose.ml: Axiom Baselines Concept Explain Format Interp4 Kb4 List Para String Surface Truth
