examples/diagnose.mli:
