examples/family.ml: Concept Enum Format Interp4 List Paper_examples Para Role Seq Set Surface Truth
