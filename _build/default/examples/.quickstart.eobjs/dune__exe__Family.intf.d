examples/family.mli:
