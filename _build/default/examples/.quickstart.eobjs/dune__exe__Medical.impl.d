examples/medical.ml: Axiom Baselines Concept Format Kb4 List Paper_examples Para String Surface Truth
