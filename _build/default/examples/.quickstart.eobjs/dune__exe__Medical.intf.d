examples/medical.mli:
