examples/quickstart.ml: Concept Format Para Reasoner Surface Truth
