examples/quickstart.mli:
