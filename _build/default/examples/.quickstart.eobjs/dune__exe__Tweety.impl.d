examples/tweety.ml: Concept Format Kb4 List Mangle Paper_examples Para Reasoner Role Surface Tableau Truth
