examples/tweety.mli:
