(* Diagnosing an inconsistent ontology end-to-end: localize contradictions,
   measure them, pinpoint the responsible axioms, retrieve instances
   four-valuedly, and exhibit a four-valued model.

   Run with:  dune exec examples/diagnose.exe *)

let () =
  (* A staff database that drifted out of sync: two sources disagree about
     robin, and a policy conflict affects interns. *)
  let kb =
    Surface.parse_kb4_exn
      {|
      Manager < Employee.
      Intern < Employee.
      Intern < ~PayrollMember.
      Employee < PayrollMember.
      Contractor < ~Employee.

      robin : Manager.
      robin : Contractor.      # source conflict!
      casey : Intern.
      drew : Employee.
      |}
  in
  let t = Para.create kb in

  Format.printf "four-valued satisfiable: %b@." (Para.satisfiable t);
  Format.printf "inconsistency degree:    %.2f@.@." (Para.inconsistency_degree t);

  (* 1. localize *)
  Format.printf "localized contradictions:@.";
  List.iter
    (fun (a, c) -> Format.printf "  %s : %s = TOP@." a c)
    (Para.contradictions t);

  (* 2. explain: which axioms are responsible? *)
  Format.printf "@.pinpointing (one minimal justification each):@.";
  List.iter
    (fun (a, c, j) ->
      Format.printf "  %s : %s = TOP because of %d axioms:@." a c (Kb4.size j);
      String.split_on_char '\n' (Surface.kb4_to_string j)
      |> List.iter (fun line -> if line <> "" then Format.printf "    %s@." line))
    (Explain.contradictions_explained t);

  (* 3. queries still work, away from and even at the conflict *)
  Format.printf "@.four-valued instance retrieval for PayrollMember:@.";
  List.iter
    (fun (a, v) -> Format.printf "  %-8s %a@." a Truth.pp v)
    (Para.retrieve t (Concept.Atom "PayrollMember"));

  Format.printf "@.designated instances of Employee: %s@."
    (String.concat ", " (Para.retrieve_instances t (Concept.Atom "Employee")));

  (* 4. a concrete four-valued model witnessing satisfiability *)
  (match Para.find_model4 t with
  | Some m ->
      Format.printf "@.a four-valued model (Definition 9 of the paper):@.%a@."
        Interp4.pp m
  | None -> Format.printf "@.(no finite model extracted)@.");

  (* 5. contrast with the stratified-repair baseline, which silently drops
     an axiom to restore consistency *)
  let classical =
    Surface.parse_kb_exn
      {|
      Manager << Employee.
      Intern << Employee.
      Intern << ~PayrollMember.
      Employee << PayrollMember.
      Contractor << ~Employee.
      robin : Manager.
      robin : Contractor.
      casey : Intern.
      drew : Employee.
      |}
  in
  let repaired = Baselines.stratified_repair classical in
  Format.printf
    "@.stratified repair silently dropped %d of %d axioms; dl4 dropped none.@."
    (Axiom.size classical - Axiom.size repaired)
    (Axiom.size classical)
