(* Example 4 and Table 4 of the paper: number restrictions under four-valued
   semantics.  Single Smith adopts a child — a parent, but not married.
   Regenerates Table 4 by enumerating the four-valued models over the domain
   {smith, kate}.

   Run with:  dune exec examples/family.exe *)

let () =
  Format.printf "Knowledge base:@.%s@."
    (Surface.kb4_to_string Paper_examples.example4);

  let t = Para.create Paper_examples.example4 in
  Format.printf "four-valued satisfiable: %b@." (Para.satisfiable t);

  let has_child = Role.name "hasChild" in
  let statements =
    [ ("hasChild(s,k)", `Role ("smith", has_child, "kate"));
      (">=1.hasChild(s)", `Concept ("smith", Concept.At_least (1, has_child)));
      ("Parent(s)", `Concept ("smith", Concept.Atom "Parent"));
      ("Married(s)", `Concept ("smith", Concept.Atom "Married")) ]
  in

  (* Entailment-level answers (what holds in every model): *)
  Format.printf "@.supported values (across all models):@.";
  List.iter
    (fun (label, q) ->
      let v =
        match q with
        | `Role (a, r, b) -> Para.role_truth t a r b
        | `Concept (a, c) -> Para.instance_truth t a c
      in
      Format.printf "  %-18s = %a@." label Truth.pp v)
    statements;

  (* Table 4: the value combinations realized by individual models. *)
  Format.printf
    "@.Table 4 — truth-value rows realized by four-valued models over@.";
  Format.printf "{smith, kate} (the paper's M1-M9):@.@.";
  Format.printf "  %-14s %-18s %-10s %-10s@." "hasChild(s,k)" ">=1.hasChild(s)"
    "Parent(s)" "Married(s)";

  let module Rows = Set.Make (struct
    type t = Truth.t list

    let compare = List.compare Truth.compare
  end) in
  let eval_row m =
    List.map
      (fun (_, q) ->
        match q with
        | `Role (a, r, b) -> Interp4.role_truth_value m r a b
        | `Concept (a, c) -> Interp4.truth_value m c a)
      statements
  in
  let rows =
    Seq.fold_left
      (fun acc m -> Rows.add (eval_row m) acc)
      Rows.empty
      (Enum.models4 Paper_examples.example4)
  in
  Rows.iter
    (fun row ->
      match List.map Truth.to_string row with
      | [ a; b; c; d ] -> Format.printf "  %-14s %-18s %-10s %-10s@." a b c d
      | _ -> assert false)
    rows;
  Format.printf "@.%d distinct rows (the paper lists models M1-M9).@."
    (Rows.cardinal rows);

  (* Cross-check against the hard-coded table from the paper text. *)
  let expected = Rows.of_list (List.map fst Paper_examples.table4_rows) in
  Format.printf "matches the paper's Table 4 exactly: %b@."
    (Rows.equal rows expected)
