(* The paper's motivating domain (Examples 1 and 2): medical-records access
   control with conflicting policies, comparing the four-valued approach
   against the classical reasoner and the consistent-subset baselines.

   Run with:  dune exec examples/medical.exe *)

let rule = String.make 64 '-'

let () =
  (* -------------------- Example 1 -------------------- *)
  Format.printf "%s@.Example 1: an inconsistent hospital ABox@.%s@." rule rule;
  let kb1 = Paper_examples.example1 in
  Format.printf "%s@." (Surface.kb4_to_string kb1);

  let t1 = Para.create kb1 in
  Format.printf "four-valued satisfiable: %b@.@." (Para.satisfiable t1);

  let doctor = Concept.Atom "Doctor" in
  Format.printf "is there information that bill IS a doctor?     %b@."
    (Para.entails_instance t1 "bill" doctor);
  Format.printf "is there information that bill is NOT a doctor? %b@."
    (Para.entails_not_instance t1 "bill" doctor);
  Format.printf "bill : Doctor = %a@." Truth.pp
    (Para.instance_truth t1 "bill" doctor);
  Format.printf "john : Doctor = %a  (the contradiction, localized)@."
    Truth.pp
    (Para.instance_truth t1 "john" doctor);
  Format.printf "john : Patient = %a (irrelevant facts are NOT inferred)@.@."
    Truth.pp
    (Para.instance_truth t1 "john" (Concept.Atom "Patient"));

  (* -------------------- Example 2 -------------------- *)
  Format.printf "%s@.Example 2: may john read patient records?@.%s@." rule rule;
  let kb2 = Paper_examples.example2 in
  Format.printf "%s@." (Surface.kb4_to_string kb2);

  let t2 = Para.create kb2 in
  let rprt = Concept.Atom "ReadPatientRecordTeam" in
  Format.printf "john : ReadPatientRecordTeam = %a@.@." Truth.pp
    (Para.instance_truth t2 "john" rprt);

  (* The same question across approaches.  The classical reading is
     inconsistent, so the classical baseline accepts everything; the
     consistent-subset baselines silently pick a side or abstain; the
     four-valued reasoner reports the conflict. *)
  let classical2 =
    Axiom.make
      ~tbox:
        [ Axiom.Concept_sub
            (Concept.Atom "SurgicalTeam",
             Concept.Not (Concept.Atom "ReadPatientRecordTeam"));
          Axiom.Concept_sub (Concept.Atom "UrgencyTeam", rprt) ]
      ~abox:kb2.Kb4.abox
  in
  Format.printf "classical KB trivial (inconsistent): %b@."
    (Baselines.classical_is_trivial classical2);
  Format.printf "classical answer:            %a@." Baselines.pp_answer
    (Baselines.classical_instance classical2 "john" rprt);
  Format.printf "syntactic-selection answer:  %a@." Baselines.pp_answer
    (Baselines.selection_instance classical2 "john" rprt);
  Format.printf "stratified-repair answer:    %a@." Baselines.pp_answer
    (Baselines.stratified_instance classical2 "john" rprt);
  Format.printf "four-valued answer:          %a (decision), value %a@."
    Baselines.pp_answer
    (Baselines.para_instance t2 "john" rprt)
    Truth.pp
    (Para.instance_truth t2 "john" rprt);

  Format.printf "@.localized contradictions found by dl4:@.";
  List.iter
    (fun (a, c) -> Format.printf "  %s : %s = TOP@." a c)
    (Para.contradictions t2)
