(* Quickstart: build a SHOIN(D)4 knowledge base, reason with it despite a
   contradiction, and inspect the classical reduction.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A knowledge base can be written in the surface syntax... *)
  let kb =
    Surface.parse_kb4_exn
      {|
      # Employees are people; contractors are not employees.
      Employee < Person.
      Contractor < ~Employee.

      # Our database ended up saying both things about dana.
      dana : Employee.
      dana : Contractor.
      eve : Employee.
      |}
  in

  (* ...or programmatically with the constructors in Concept / Kb4 /
     Owl_vocab.  [Para.create] transforms the KB (Definitions 5-7 of the
     paper) and wraps a classical tableau reasoner around the result. *)
  let t = Para.create kb in

  Format.printf "four-valued satisfiable: %b@.@." (Para.satisfiable t);

  (* Instance queries return Belnap values: t, f, TOP (contradictory
     information) or BOT (no information). *)
  let ask ind concept =
    let c = Surface.parse_concept_exn concept in
    Format.printf "%-24s = %a@." (ind ^ " : " ^ concept)
      Truth.pp
      (Para.instance_truth t ind c)
  in
  ask "dana" "Employee";   (* TOP — the contradiction, localized *)
  ask "dana" "Person";     (* t — still derivable *)
  ask "eve" "Employee";    (* t — untouched by dana's conflict *)
  ask "eve" "Contractor";  (* BOT — nothing known *)

  (* The same KB read classically is trivial: *)
  let classical =
    Surface.parse_kb_exn
      {|
      Employee << Person.
      Contractor << ~Employee.
      dana : Employee.
      dana : Contractor.
      eve : Employee.
      |}
  in
  let r = Reasoner.create classical in
  Format.printf "@.classically consistent: %b@." (Reasoner.is_consistent r);
  Format.printf "classically, eve is a Contractor (!): %b@."
    (Reasoner.instance_of r "eve" (Concept.Atom "Contractor"));

  (* Under the hood: the classical induced KB of Definition 7. *)
  Format.printf "@.induced classical KB:@.%s"
    (Surface.kb_to_string (Para.classical_kb t))
