(* Defaults and exceptions (Examples 3 and 5 of the paper): Tweety the
   penguin has wings but does not fly.  Shows the three inclusion strengths,
   the transformation to a classical KB, and reasoning over it.

   Run with:  dune exec examples/tweety.exe *)

let () =
  Format.printf "The four-valued knowledge base (material |-> for defaults):@.%s@."
    (Surface.kb4_to_string Paper_examples.example3);

  (* The naive classical rendition is unsatisfiable — everything follows. *)
  Format.printf "classical rendition satisfiable: %b@."
    (Tableau.kb_satisfiable Paper_examples.example3_classical);
  let rc = Reasoner.create Paper_examples.example3_classical in
  Format.printf "classically, tweety is a Patient (!): %b@.@."
    (Reasoner.instance_of rc "tweety" (Concept.Atom "Patient"));

  (* The four-valued KB is satisfiable and draws the right conclusions. *)
  let t = Para.create Paper_examples.example3 in
  Format.printf "four-valued satisfiable: %b@.@." (Para.satisfiable t);

  let show ind c =
    Format.printf "  %-18s = %a@."
      (ind ^ " : " ^ Concept.to_string c)
      Truth.pp
      (Para.instance_truth t ind c)
  in
  show "tweety" (Concept.Atom "Penguin");
  show "tweety" (Concept.Atom "Bird");
  show "tweety" (Concept.Atom "Fly");
  show "w" (Concept.Atom "Wing");

  (* Example 5: the classical induced KB and tableau reasoning over it. *)
  Format.printf "@.Example 5 — the classical induced KB (Definition 7):@.%s@."
    (Surface.kb_to_string (Para.classical_kb t));

  let r = Para.classical_reasoner t in
  Format.printf "Fly-(tweety) holds:        %b  (tweety cannot fly)@."
    (Reasoner.instance_of r "tweety" (Concept.Atom (Mangle.neg_atom "Fly")));
  Format.printf "Fly+(tweety) does not:     %b  (the KB is not trivial)@."
    (Reasoner.instance_of r "tweety" (Concept.Atom (Mangle.pos_atom "Fly")));

  (* Contrast the three inclusion strengths on the same default: with a
     strong inclusion Bird -> Fly, penguins could not be birds at all. *)
  Format.printf
    "@.Ablation: replace the material default by internal/strong inclusion@.";
  List.iter
    (fun kind ->
      let kb =
        { Paper_examples.example3 with
          Kb4.tbox =
            Kb4.Concept_inclusion
              ( kind,
                Concept.And
                  ( Concept.Atom "Bird",
                    Concept.Exists (Role.name "hasWing", Concept.Atom "Wing") ),
                Concept.Atom "Fly" )
            :: List.tl (Paper_examples.example3 : Kb4.t).tbox }
      in
      let t = Para.create kb in
      Format.printf "  %-8s: satisfiable %b, tweety:Fly = %a@."
        (Kb4.inclusion_symbol kind)
        (Para.satisfiable t)
        Truth.pp
        (Para.instance_truth t "tweety" (Concept.Atom "Fly")))
    Kb4.all_inclusions
