type answer = Accepted | Rejected | Undetermined

let answer_to_string = function
  | Accepted -> "accepted"
  | Rejected -> "rejected"
  | Undetermined -> "undetermined"

let pp_answer ppf a = Format.pp_print_string ppf (answer_to_string a)
let equal_answer (a : answer) b = a = b

(* ------------------------------------------------------------------ *)
(* Classical baseline *)

let instance_answer reasoner a c =
  if Reasoner.instance_of reasoner a c then Accepted
  else if Reasoner.instance_of reasoner a (Concept.neg c) then Rejected
  else Undetermined

let classical_instance kb a c = instance_answer (Reasoner.create kb) a c

let classical_is_trivial kb = not (Reasoner.is_consistent (Reasoner.create kb))

(* ------------------------------------------------------------------ *)
(* Syntactic relevance selection *)

module Strings = Set.Make (String)

let concept_symbols c =
  Strings.of_list
    (Concept.atom_names c @ Concept.role_names c @ Concept.data_role_names c
   @ Concept.individual_names c)

let tbox_symbols = function
  | Axiom.Concept_sub (c, d) -> Strings.union (concept_symbols c) (concept_symbols d)
  | Axiom.Role_sub (r, s) ->
      Strings.of_list [ Role.base r; Role.base s ]
  | Axiom.Data_role_sub (u, v) -> Strings.of_list [ u; v ]
  | Axiom.Transitive r -> Strings.singleton r

let abox_symbols = function
  | Axiom.Instance_of (a, c) -> Strings.add a (concept_symbols c)
  | Axiom.Role_assertion (a, r, b) -> Strings.of_list [ a; Role.base r; b ]
  | Axiom.Data_assertion (a, u, _) -> Strings.of_list [ a; u ]
  | Axiom.Same (a, b) | Axiom.Different (a, b) -> Strings.of_list [ a; b ]

type tagged = T of Axiom.tbox_axiom | A of Axiom.abox_axiom

let tagged_symbols = function T ax -> tbox_symbols ax | A ax -> abox_symbols ax

let to_kb tagged_list =
  List.fold_left
    (fun kb -> function
      | T ax -> Axiom.add_tbox kb ax
      | A ax -> Axiom.add_abox kb ax)
    Axiom.empty tagged_list

let relevant symbols ax =
  not (Strings.is_empty (Strings.inter symbols (tagged_symbols ax)))

(* Largest consistent Σ_k for the query symbols, by linear extension. *)
let select ?(max_k = 10) (kb : Axiom.kb) query_symbols =
  let all = List.map (fun ax -> T ax) kb.tbox @ List.map (fun ax -> A ax) kb.abox in
  let rec extend k selected symbols =
    let selected' =
      List.filter (fun ax -> List.memq ax selected || relevant symbols ax) all
    in
    let grew = List.length selected' > List.length selected in
    let candidate = to_kb selected' in
    if not (Tableau.kb_satisfiable candidate) then
      (* stop before inconsistency: reason with the previous Σ *)
      to_kb selected
    else if (not grew) || k >= max_k then candidate
    else
      let symbols' =
        List.fold_left
          (fun acc ax -> Strings.union acc (tagged_symbols ax))
          symbols selected'
      in
      extend (k + 1) selected' symbols'
  in
  extend 1 [] query_symbols

let selection_subset ?max_k (kb : Axiom.kb) c a =
  select ?max_k kb (Strings.add a (concept_symbols c))

let selection_instance ?max_k kb a c =
  let subset = selection_subset ?max_k kb c a in
  instance_answer (Reasoner.create subset) a c

(* ------------------------------------------------------------------ *)
(* Stratified repair *)

type ranked = {
  rank_tbox : Axiom.tbox_axiom -> int;
  rank_abox : Axiom.abox_axiom -> int;
}

let default_ranks = { rank_tbox = (fun _ -> 0); rank_abox = (fun _ -> 1) }

let stratified_repair ?(ranks = default_ranks) (kb : Axiom.kb) =
  let tagged =
    List.map (fun ax -> (ranks.rank_tbox ax, T ax)) kb.tbox
    @ List.map (fun ax -> (ranks.rank_abox ax, A ax)) kb.abox
  in
  (* stable sort by rank keeps the original order inside each stratum *)
  let sorted = List.stable_sort (fun (r1, _) (r2, _) -> Int.compare r1 r2) tagged in
  List.fold_left
    (fun acc (_, ax) ->
      let candidate =
        match ax with
        | T t -> Axiom.add_tbox acc t
        | A a -> Axiom.add_abox acc a
      in
      if Tableau.kb_satisfiable candidate then candidate else acc)
    Axiom.empty sorted

let stratified_instance ?ranks kb a c =
  instance_answer (Reasoner.create (stratified_repair ?ranks kb)) a c

(* ------------------------------------------------------------------ *)
(* The paper's approach *)

let para_instance t a c =
  match Para.instance_truth t a c with
  | Truth.True -> Accepted
  | Truth.False -> Rejected
  | Truth.Both | Truth.Neither -> Undetermined
