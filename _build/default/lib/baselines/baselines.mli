(** Baseline approaches to querying (possibly inconsistent) ontologies.

    The paper's related-work section (§5) contrasts [SHOIN(D)4] with two
    families of approaches: reasoning with consistent subsets selected by
    syntactic relevance (Huang, van Harmelen & ten Teije, IJCAI'05) and
    stratification-based repair (Benferhat et al.).  This module implements
    executable versions of both, plus the trivializing classical baseline,
    so the evaluation harness can compare answer quality and cost.

    All baselines answer three-way: a query is {!Accepted}, {!Rejected}
    (its negation follows), or {!Undetermined}. *)

type answer = Accepted | Rejected | Undetermined

val pp_answer : Format.formatter -> answer -> unit
val answer_to_string : answer -> string
val equal_answer : answer -> answer -> bool

(** {1 Classical (trivializing) baseline} *)

val classical_instance : Axiom.kb -> string -> Concept.t -> answer
(** Standard entailment.  On an inconsistent KB both [C(a)] and [¬C(a)] are
    entailed and the answer is reported as [Accepted] — the triviality the
    paper criticizes. *)

val classical_is_trivial : Axiom.kb -> bool
(** Whether the KB is inconsistent (and hence entails everything). *)

(** {1 Syntactic-relevance subset selection (Huang et al.)}

    A linear-extension selection function: Σ₁ is the set of axioms
    syntactically relevant to the query (sharing a signature symbol); Σₖ₊₁
    adds all axioms relevant to Σₖ.  Reasoning uses the largest consistent
    Σₖ; the extension stops at a fixpoint, at [max_k], or just before Σ
    turns inconsistent. *)

val selection_instance :
  ?max_k:int -> Axiom.kb -> string -> Concept.t -> answer

val selection_subset : ?max_k:int -> Axiom.kb -> Concept.t -> string -> Axiom.kb
(** The consistent subset the previous function reasons with (exposed for
    inspection and for the evaluation harness). *)

(** {1 Stratification-based repair (Benferhat et al., simplified)}

    Axioms carry integer ranks (lower = higher priority; default: TBox = 0,
    ABox = 1).  The repair walks the axioms in rank order and keeps each
    axiom whose addition preserves consistency — a greedy, deterministic
    rendering of lexicographic preference. *)

type ranked = {
  rank_tbox : Axiom.tbox_axiom -> int;
  rank_abox : Axiom.abox_axiom -> int;
}

val default_ranks : ranked

val stratified_repair : ?ranks:ranked -> Axiom.kb -> Axiom.kb
(** A maximal (w.r.t. the greedy order) consistent sub-KB. *)

val stratified_instance :
  ?ranks:ranked -> Axiom.kb -> string -> Concept.t -> answer

(** {1 The paper's approach, on the same query interface} *)

val para_instance : Para.t -> string -> Concept.t -> answer
(** Four-valued answer collapsed to three-way for comparison: [True ↦
    Accepted], [False ↦ Rejected], [Both]/[Neither] ↦ [Undetermined] (a ⊤
    answer supports both sides, so as a {e decision} it is undetermined —
    but unlike the subset baselines the contradiction is reported, see
    {!Para.instance_truth}). *)
