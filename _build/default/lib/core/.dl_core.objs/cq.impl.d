lib/core/cq.ml: Concept Kb4 List Para Role Set String Truth
