lib/core/cq.mli: Concept Para Role Truth
