lib/core/explain.ml: Axiom Concept Format Kb4 List Para
