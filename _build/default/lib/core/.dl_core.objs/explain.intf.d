lib/core/explain.mli: Concept Format Kb4 Para
