lib/core/para.ml: Axiom Concept Induced Interp4 Kb4 List Reasoner Transform Truth
