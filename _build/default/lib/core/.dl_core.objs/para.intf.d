lib/core/para.mli: Axiom Concept Interp4 Kb4 Reasoner Role Truth
