type term = Var of string | Ind of string

type atom =
  | Concept_atom of Concept.t * term
  | Role_atom of Role.t * term * term

type t = { head : string list; body : atom list }

module Strings = Set.Make (String)

let term_vars = function Var v -> [ v ] | Ind _ -> []

let atom_vars = function
  | Concept_atom (_, t) -> term_vars t
  | Role_atom (_, t1, t2) -> term_vars t1 @ term_vars t2

let variables q =
  Strings.elements
    (List.fold_left
       (fun acc a -> Strings.union acc (Strings.of_list (atom_vars a)))
       Strings.empty q.body)

let make ~head ~body =
  let q = { head; body } in
  let vs = Strings.of_list (variables q) in
  List.iter
    (fun v ->
      if not (Strings.mem v vs) then
        invalid_arg ("Cq.make: head variable " ^ v ^ " not in body"))
    head;
  q

let resolve binding = function
  | Ind a -> a
  | Var v -> (
      match List.assoc_opt v binding with
      | Some a -> a
      | None -> invalid_arg ("Cq: unbound variable " ^ v))

let truth_of_binding para q binding =
  List.fold_left
    (fun acc atom ->
      let v =
        match atom with
        | Concept_atom (c, t) ->
            Para.instance_truth para (resolve binding t) c
        | Role_atom (r, t1, t2) ->
            Para.role_truth para (resolve binding t1) r (resolve binding t2)
      in
      Truth.conj acc v)
    Truth.True q.body

let all_bindings para q =
  let individuals = (Kb4.signature (Para.kb para)).individuals in
  let vars = variables q in
  let rec bind acc = function
    | [] -> [ List.rev acc ]
    | v :: rest ->
        List.concat_map (fun a -> bind ((v, a) :: acc) rest) individuals
  in
  List.map
    (fun binding -> (binding, truth_of_binding para q binding))
    (bind [] vars)

let answers para q =
  let tuples =
    List.filter_map
      (fun (binding, v) ->
        if Truth.designated v then
          Some (List.map (fun h -> List.assoc h binding) q.head, v)
        else None)
      (all_bindings para q)
  in
  (* deduplicate projected tuples, keeping the ≤k-strongest value seen:
     a tuple supported cleanly (t) by one binding and contradictorily (⊤)
     by another reports t if any clean support exists *)
  let dedup =
    List.fold_left
      (fun acc (tuple, v) ->
        match List.assoc_opt tuple acc with
        | None -> (tuple, v) :: acc
        | Some Truth.Both when Truth.equal v Truth.True ->
            (tuple, v) :: List.remove_assoc tuple acc
        | Some _ -> acc)
      [] tuples
  in
  List.stable_sort
    (fun (_, v1) (_, v2) -> Truth.compare v1 v2)
    (List.rev dedup)
