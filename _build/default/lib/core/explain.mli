(** Black-box axiom pinpointing for [SHOIN(D)4] entailments.

    A {e justification} for an entailment [K ⊨⁴ φ] is a minimal sub-KB
    [J ⊆ K] with [J ⊨⁴ φ].  For a paraconsistent reasoner the flagship use
    is explaining a contradiction: when [instance_truth] returns [Both], the
    justification of "told true" and "told false" together pinpoints the
    axioms responsible for the conflict.

    The implementation is reasoner-independent ("black-box" pinpointing in
    the DL literature): deletion-based contraction finds one justification
    with O(|K|) entailment checks; Reiter's hitting-set tree enumerates
    further ones.  Each entailment check builds a fresh {!Para} reasoner, so
    this is meant for diagnosis, not for hot loops. *)

type query =
  | Instance of string * Concept.t        (** K ⊨⁴ C(a) *)
  | Not_instance of string * Concept.t    (** K ⊨⁴ ¬C(a) *)
  | Contradiction of string * Concept.t
      (** both of the above — the TOP answer *)
  | Inclusion of Kb4.inclusion * Concept.t * Concept.t
  | Unsatisfiable                          (** K is 4-unsatisfiable *)

val pp_query : Format.formatter -> query -> unit

val holds : ?max_nodes:int -> Kb4.t -> query -> bool
(** Does the entailment hold in the (sub-)KB? *)

val justification : ?max_nodes:int -> Kb4.t -> query -> Kb4.t option
(** One minimal justification, or [None] when the entailment does not hold
    in the full KB.  Minimality: removing any single axiom of the result
    breaks the entailment. *)

val all_justifications :
  ?max_nodes:int -> ?limit:int -> Kb4.t -> query -> Kb4.t list
(** Up to [limit] (default 10) distinct justifications, enumerated with a
    hitting-set tree. *)

val contradictions_explained :
  ?max_nodes:int -> Para.t -> (string * string * Kb4.t) list
(** For every localized contradiction [(a, A)] of {!Para.contradictions},
    one justification of [Contradiction (a, Atom A)]. *)
