type t = {
  kb : Kb4.t;
  classical_kb : Axiom.kb;
  reasoner : Reasoner.t;
}

let create ?max_nodes ?max_branches kb =
  let classical_kb = Transform.kb kb in
  { kb;
    classical_kb;
    reasoner = Reasoner.create ?max_nodes ?max_branches classical_kb }

let kb t = t.kb
let classical_kb t = t.classical_kb
let classical_reasoner t = t.reasoner

let satisfiable t = Reasoner.is_consistent t.reasoner

let entails_instance t a c =
  not (Reasoner.consistent_with t.reasoner [ Transform.instance_query c a ])

let entails_not_instance t a c =
  not
    (Reasoner.consistent_with t.reasoner [ Transform.negative_instance_query c a ])

let instance_truth t a c =
  Truth.of_pair
    ~told_true:(entails_instance t a c)
    ~told_false:(entails_not_instance t a c)

let entails_inclusion t kind c d =
  List.for_all
    (fun test -> not (Reasoner.concept_satisfiable t.reasoner test))
    (Transform.inclusion_tests kind c d)

let role_truth t a r b =
  let told_true = Reasoner.role_entailed t.reasoner a (Transform.plus_role r) b in
  let told_false =
    not
      (Reasoner.consistent_with t.reasoner
         [ Axiom.Role_assertion (a, Transform.eq_role r, b) ])
  in
  Truth.of_pair ~told_true ~told_false

let classify t =
  let atoms = (Kb4.signature t.kb).concepts in
  List.map
    (fun a ->
      let supers =
        List.filter
          (fun b ->
            b <> a
            && entails_inclusion t Kb4.Internal (Concept.Atom a) (Concept.Atom b))
          atoms
      in
      (a, supers))
    atoms

(* Group equivalent atoms and reduce the subsumption DAG to direct edges. *)
let taxonomy t =
  let hierarchy = classify t in
  let supers a = try List.assoc a hierarchy with Not_found -> [] in
  let equiv a b = List.mem b (supers a) && List.mem a (supers b) in
  let atoms = List.map fst hierarchy in
  (* canonical representative: first member in signature order *)
  let repr a = List.find (fun b -> equiv a b || b = a) atoms in
  let classes =
    List.filter_map
      (fun a ->
        if repr a = a then
          Some (a :: List.filter (fun b -> b <> a && equiv a b) atoms)
        else None)
      atoms
  in
  let strict_supers a =
    List.filter (fun b -> not (equiv a b)) (supers a)
  in
  List.map
    (fun cls ->
      let a = List.hd cls in
      let ss = strict_supers a in
      (* direct supers: not implied through another strict super *)
      let direct =
        List.filter
          (fun b ->
            (not (List.exists (fun c -> c <> b && List.mem b (strict_supers c)) ss))
            && repr b = b)
          ss
      in
      (cls, direct))
    classes

let contradictions t =
  let signature = Kb4.signature t.kb in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun c ->
          match instance_truth t a (Concept.Atom c) with
          | Truth.Both -> Some (a, c)
          | Truth.True | Truth.False | Truth.Neither -> None)
        signature.concepts)
    signature.individuals

let truth_table t ~individuals ~concepts =
  List.map
    (fun a ->
      (a, List.map (fun c -> (c, instance_truth t a c)) concepts))
    individuals

let retrieve t c =
  List.map
    (fun a -> (a, instance_truth t a c))
    (Kb4.signature t.kb).individuals

let retrieve_instances t c =
  List.filter_map
    (fun (a, v) -> if Truth.designated v then Some a else None)
    (retrieve t c)

let inconsistency_degree t =
  let signature = Kb4.signature t.kb in
  let informative = ref 0 and contradictory = ref 0 in
  List.iter
    (fun a ->
      List.iter
        (fun c ->
          match instance_truth t a (Concept.Atom c) with
          | Truth.Both ->
              incr informative;
              incr contradictory
          | Truth.True | Truth.False -> incr informative
          | Truth.Neither -> ())
        signature.concepts)
    signature.individuals;
  if !informative = 0 then 0.
  else float_of_int !contradictory /. float_of_int !informative

let find_model4 t =
  match Reasoner.find_model t.reasoner with
  | None -> None
  | Some m ->
      let candidate =
        Induced.four_of_classical ~signature:(Kb4.signature t.kb) m
      in
      if Interp4.is_model candidate t.kb then Some candidate else None
