lib/four/bilattice.ml: Set Truth
