lib/four/bilattice.mli: Set Truth
