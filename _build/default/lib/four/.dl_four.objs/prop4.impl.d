lib/four/prop4.ml: Bool Format List Seq Set String Truth
