lib/four/prop4.mli: Format Seq Truth
