lib/four/prop4_tableau.ml: Int List Prop4 Set String
