lib/four/prop4_tableau.mli: Prop4
