lib/four/truth.ml: Format Int
