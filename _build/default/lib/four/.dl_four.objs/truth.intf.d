lib/four/truth.mli: Format
