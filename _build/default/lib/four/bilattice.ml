module Make (Elt : Set.OrderedType) = struct
  module S = Set.Make (Elt)

  type t = { pos : S.t; neg : S.t }

  let make ~pos ~neg = { pos; neg }
  let proj_pos v = v.pos
  let proj_neg v = v.neg

  let top ~domain = { pos = domain; neg = S.empty }
  let bottom ~domain = { pos = S.empty; neg = domain }

  let neg v = { pos = v.neg; neg = v.pos }

  let meet_t a b = { pos = S.inter a.pos b.pos; neg = S.union a.neg b.neg }
  let join_t a b = { pos = S.union a.pos b.pos; neg = S.inter a.neg b.neg }
  let meet_k a b = { pos = S.inter a.pos b.pos; neg = S.inter a.neg b.neg }
  let join_k a b = { pos = S.union a.pos b.pos; neg = S.union a.neg b.neg }

  let leq_t a b = S.subset a.pos b.pos && S.subset b.neg a.neg
  let leq_k a b = S.subset a.pos b.pos && S.subset a.neg b.neg
  let equal a b = S.equal a.pos b.pos && S.equal a.neg b.neg

  let truth_value_of v a =
    Truth.of_pair ~told_true:(S.mem a v.pos) ~told_false:(S.mem a v.neg)

  let classical ~domain p = { pos = p; neg = S.diff domain p }

  let is_classical ~domain v =
    S.is_empty (S.inter v.pos v.neg) && S.equal (S.union v.pos v.neg) domain
end
