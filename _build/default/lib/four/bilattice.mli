(** Bilattices of pairs of sets, as used in §2.2 of the paper.

    For a given domain, the space [{<P, N>}] — where [P] ("positive") is the
    set of elements supporting truth and [N] ("negative") the set supporting
    falsity — forms a bilattice under the truth order ≤t and the knowledge
    order ≤k (Fitting).  The paper only uses the truth-order connectives:

    - negation: [¬<P,N> = <N,P>]
    - meet:     [<P1,N1> ∧ <P2,N2> = <P1 ∩ P2, N1 ∪ N2>]
    - join:     [<P1,N1> ∨ <P2,N2> = <P1 ∪ P2, N1 ∩ N2>]

    and the two projections [proj⁺]/[proj⁻] (Definition 1). *)

module Make (Elt : Set.OrderedType) : sig
  module S : Set.S with type elt = Elt.t

  type t = { pos : S.t; neg : S.t }
  (** An extended truth value [<P, N>].  No disjointness or covering
      constraint relates [pos] and [neg]; re-imposing
      [pos ∩ neg = ∅ ∧ pos ∪ neg = Δ] recovers classical semantics. *)

  val make : pos:S.t -> neg:S.t -> t

  (** [proj_pos <P,N> = P] and [proj_neg <P,N> = N] (Definition 1). *)

  val proj_pos : t -> S.t
  val proj_neg : t -> S.t

  val top : domain:S.t -> t
  (** [⊤ᴵ = <Δ, ∅>] — the concept ⊤, not the truth value. *)

  val bottom : domain:S.t -> t
  (** [⊥ᴵ = <∅, Δ>]. *)

  val neg : t -> t
  val meet_t : t -> t -> t
  val join_t : t -> t -> t
  val meet_k : t -> t -> t
  val join_k : t -> t -> t

  val leq_t : t -> t -> bool
  val leq_k : t -> t -> bool
  val equal : t -> t -> bool

  val truth_value_of : t -> Elt.t -> Truth.t
  (** [truth_value_of <P,N> a] is the Belnap value of membership of [a]
      (Definition 3): [True] if [a ∈ P \ N], [False] if [a ∈ N \ P],
      [Both] if in both, [Neither] if in neither. *)

  val classical : domain:S.t -> S.t -> t
  (** [classical ~domain p] embeds a two-valued extension: [<p, domain \ p>]. *)

  val is_classical : domain:S.t -> t -> bool
  (** Whether [pos] and [neg] partition [domain]. *)
end
