type formula =
  | Atom of string
  | Neg of formula
  | And of formula * formula
  | Or of formula * formula
  | Material of formula * formula
  | Internal of formula * formula
  | Strong of formula * formula
  | Equiv of formula * formula

let atom s = Atom s
let neg f = Neg f
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)

module Strings = Set.Make (String)

let atoms f =
  let rec go acc = function
    | Atom s -> Strings.add s acc
    | Neg f -> go acc f
    | And (a, b) | Or (a, b) | Material (a, b) | Internal (a, b)
    | Strong (a, b) | Equiv (a, b) ->
        go (go acc a) b
  in
  Strings.elements (go Strings.empty f)

type valuation = string -> Truth.t

let rec eval v = function
  | Atom s -> v s
  | Neg f -> Truth.neg (eval v f)
  | And (a, b) -> Truth.conj (eval v a) (eval v b)
  | Or (a, b) -> Truth.disj (eval v a) (eval v b)
  | Material (a, b) -> Truth.material_implication (eval v a) (eval v b)
  | Internal (a, b) -> Truth.internal_implication (eval v a) (eval v b)
  | Strong (a, b) -> Truth.strong_implication (eval v a) (eval v b)
  | Equiv (a, b) -> Truth.strong_equivalence (eval v a) (eval v b)

(* All assignments of the four values to [names], as a lazy sequence. *)
let valuations names =
  let rec go = function
    | [] -> Seq.return []
    | n :: rest ->
        Seq.concat_map
          (fun tail ->
            Seq.map (fun tv -> (n, tv) :: tail) (List.to_seq Truth.all))
          (go rest)
  in
  Seq.map
    (fun assoc name ->
      match List.assoc_opt name assoc with
      | Some tv -> tv
      | None -> Truth.Neither)
    (go names)

let joint_atoms gamma phi =
  List.fold_left
    (fun acc f -> Strings.union acc (Strings.of_list (atoms f)))
    (Strings.of_list (atoms phi))
    gamma
  |> Strings.elements

let entails gamma phi =
  let names = joint_atoms gamma phi in
  Seq.for_all
    (fun v ->
      if List.for_all (fun g -> Truth.designated (eval v g)) gamma then
        Truth.designated (eval v phi)
      else true)
    (valuations names)

(* Classical evaluation: atoms range over {t, f}; all implications collapse
   to material implication, and ↔ to classical equivalence. *)
let rec eval2 v = function
  | Atom s -> v s
  | Neg f -> not (eval2 v f)
  | And (a, b) -> eval2 v a && eval2 v b
  | Or (a, b) -> eval2 v a || eval2 v b
  | Material (a, b) | Internal (a, b) | Strong (a, b) ->
      (not (eval2 v a)) || eval2 v b
  | Equiv (a, b) -> Bool.equal (eval2 v a) (eval2 v b)

let valuations2 names =
  let rec go = function
    | [] -> Seq.return []
    | n :: rest ->
        Seq.concat_map
          (fun tail ->
            Seq.map (fun b -> (n, b) :: tail) (List.to_seq [ true; false ]))
          (go rest)
  in
  Seq.map
    (fun assoc name ->
      match List.assoc_opt name assoc with Some b -> b | None -> false)
    (go names)

let entails_classically gamma phi =
  let names = joint_atoms gamma phi in
  Seq.for_all
    (fun v ->
      if List.for_all (eval2 v) gamma then eval2 v phi else true)
    (valuations2 names)

let valid phi = entails [] phi

let rec pp ppf = function
  | Atom s -> Format.pp_print_string ppf s
  | Neg f -> Format.fprintf ppf "~%a" pp_paren f
  | And (a, b) -> Format.fprintf ppf "%a /\\ %a" pp_paren a pp_paren b
  | Or (a, b) -> Format.fprintf ppf "%a \\/ %a" pp_paren a pp_paren b
  | Material (a, b) -> Format.fprintf ppf "%a |-> %a" pp_paren a pp_paren b
  | Internal (a, b) -> Format.fprintf ppf "%a => %a" pp_paren a pp_paren b
  | Strong (a, b) -> Format.fprintf ppf "%a -> %a" pp_paren a pp_paren b
  | Equiv (a, b) -> Format.fprintf ppf "%a <-> %a" pp_paren a pp_paren b

and pp_paren ppf f =
  match f with
  | Atom _ -> pp ppf f
  | _ -> Format.fprintf ppf "(%a)" pp f
