(** Propositional four-valued logic with an enumeration-based consequence
    relation ⊨⁴.

    This small module is the propositional core underlying the paper's §2.2:
    it lets us machine-check Proposition 1 (the deduction property of the
    internal implication ⊃), Proposition 2 (congruence of ↔) and the two
    counterexamples showing that material (↦) and strong (→) implication lack
    the deduction property.  Entailment is decided by enumerating all [4^n]
    four-valued valuations of the (finite) signature, so it is an oracle for
    small formulas, not an efficient prover. *)

type formula =
  | Atom of string
  | Neg of formula
  | And of formula * formula
  | Or of formula * formula
  | Material of formula * formula  (** φ ↦ ψ ≝ ¬φ ∨ ψ *)
  | Internal of formula * formula  (** φ ⊃ ψ *)
  | Strong of formula * formula    (** φ → ψ *)
  | Equiv of formula * formula     (** φ ↔ ψ *)

val atom : string -> formula
val neg : formula -> formula
val ( &&& ) : formula -> formula -> formula
val ( ||| ) : formula -> formula -> formula

val atoms : formula -> string list
(** Sorted, deduplicated atoms occurring in the formula. *)

type valuation = string -> Truth.t

val eval : valuation -> formula -> Truth.t

val valuations : string list -> valuation Seq.t
(** All four-valued valuations of the given atoms ([4^n] of them).  Atoms
    outside the list are mapped to [Truth.Neither]. *)

val entails : formula list -> formula -> bool
(** [entails gamma phi] is Γ ⊨⁴ φ: every valuation (over the atoms of
    Γ ∪ {φ}) that designates every member of Γ designates φ. *)

val entails_classically : formula list -> formula -> bool
(** Two-valued entailment over the same syntax ([Material], [Internal] and
    [Strong] all collapse to material implication classically), used to
    contrast triviality with paraconsistency in tests and benches. *)

val valid : formula -> bool
(** [valid phi] = [entails [] phi]. *)

val pp : Format.formatter -> formula -> unit
