type sign = T | NT | F | NF

module Lit = struct
  type t = sign * string

  let compare (s1, a1) (s2, a2) =
    let tag = function T -> 0 | NT -> 1 | F -> 2 | NF -> 3 in
    let c = String.compare a1 a2 in
    if c <> 0 then c else Int.compare (tag s1) (tag s2)
end

module LSet = Set.Make (Lit)

(* Expansion of a signed compound formula into branches of signed
   subformulas.  The derived connectives are rewritten to their
   definitions; ⊃ gets native rules. *)
let expand sgn (f : Prop4.formula) : (sign * Prop4.formula) list list =
  match (sgn, f) with
  | T, Neg a -> [ [ (F, a) ] ]
  | NT, Neg a -> [ [ (NF, a) ] ]
  | F, Neg a -> [ [ (T, a) ] ]
  | NF, Neg a -> [ [ (NT, a) ] ]
  | T, And (a, b) -> [ [ (T, a); (T, b) ] ]
  | NT, And (a, b) -> [ [ (NT, a) ]; [ (NT, b) ] ]
  | F, And (a, b) -> [ [ (F, a) ]; [ (F, b) ] ]
  | NF, And (a, b) -> [ [ (NF, a); (NF, b) ] ]
  | T, Or (a, b) -> [ [ (T, a) ]; [ (T, b) ] ]
  | NT, Or (a, b) -> [ [ (NT, a); (NT, b) ] ]
  | F, Or (a, b) -> [ [ (F, a); (F, b) ] ]
  | NF, Or (a, b) -> [ [ (NF, a) ]; [ (NF, b) ] ]
  (* φ ↦ ψ  ≝  ¬φ ∨ ψ *)
  | s, Material (a, b) -> [ [ (s, Prop4.Or (Prop4.Neg a, b)) ] ]
  (* internal implication: value is ψ when φ is designated, t otherwise *)
  | T, Internal (a, b) -> [ [ (NT, a) ]; [ (T, a); (T, b) ] ]
  | NT, Internal (a, b) -> [ [ (T, a); (NT, b) ] ]
  | F, Internal (a, b) -> [ [ (T, a); (F, b) ] ]
  | NF, Internal (a, b) -> [ [ (NT, a) ]; [ (T, a); (NF, b) ] ]
  (* φ → ψ  ≝  (φ ⊃ ψ) ∧ (¬ψ ⊃ ¬φ) *)
  | s, Strong (a, b) ->
      [ [ ( s,
            Prop4.And
              (Prop4.Internal (a, b), Prop4.Internal (Prop4.Neg b, Prop4.Neg a))
          ) ] ]
  (* φ ↔ ψ  ≝  (φ → ψ) ∧ (ψ → φ) *)
  | s, Equiv (a, b) ->
      [ [ (s, Prop4.And (Prop4.Strong (a, b), Prop4.Strong (b, a))) ] ]
  | _, Atom _ -> assert false

let conflicts lits (sgn, a) =
  let opposite = match sgn with T -> NT | NT -> T | F -> NF | NF -> F in
  LSet.mem (opposite, a) lits

let rec branch_satisfiable lits todo =
  match todo with
  | [] -> true
  | (sgn, Prop4.Atom a) :: rest ->
      if conflicts lits (sgn, a) then false
      else branch_satisfiable (LSet.add (sgn, a) lits) rest
  | (sgn, f) :: rest ->
      List.exists
        (fun br -> branch_satisfiable lits (br @ rest))
        (expand sgn f)

let satisfiable signed = branch_satisfiable LSet.empty signed

let entails gamma phi =
  not (satisfiable ((NT, phi) :: List.map (fun g -> (T, g)) gamma))

let valid phi = entails [] phi
