(** A signed-tableau decision procedure for Belnap's four-valued
    propositional logic (the §2.2 substrate), in the style of
    Bloesch/Arieli–Avron signed calculi.

    Four signs track the two independent information bits of a formula's
    value: [T φ] (t ∈ v(φ)), [NT φ] (t ∉ v(φ)), [F φ] (f ∈ v(φ)) and
    [NF φ] (f ∉ v(φ)).  A branch closes only on [T/NT] or [F/NF] conflicts
    on the same formula — [T a] and [F a] together are satisfiable (value
    ⊤), which is exactly the paraconsistency of the logic.

    [Γ ⊨⁴ φ] is refuted by a tableau for [{T γ | γ ∈ Γ} ∪ {NT φ}]: the
    entailment holds iff every branch closes.  Agreement with the
    enumeration-based {!Prop4.entails} is property-tested; unlike
    enumeration the tableau does not enumerate [4^|atoms|] valuations. *)

type sign =
  | T    (** told true *)
  | NT   (** not told true *)
  | F    (** told false *)
  | NF   (** not told false *)

val entails : Prop4.formula list -> Prop4.formula -> bool
(** Tableau-based [Γ ⊨⁴ φ]. *)

val valid : Prop4.formula -> bool

val satisfiable : (sign * Prop4.formula) list -> bool
(** Is there a four-valued valuation realizing all the signed formulas? *)
