exception Unsupported of string

(* ------------------------------------------------------------------ *)
(* Signed concepts: the four membership bits of Definition 3. *)

type sign = P | NP | N | NN

module SC = struct
  type t = sign * Concept.t

  let compare (s1, c1) (s2, c2) =
    let tag = function P -> 0 | NP -> 1 | N -> 2 | NN -> 3 in
    let k = Int.compare (tag s1) (tag s2) in
    if k <> 0 then k else Concept.compare c1 c2
end

module SCSet = Set.Make (SC)
module IMap = Map.Make (Int)
module ISet = Set.Make (Int)
module SMap = Map.Make (String)
module RSet = Role.Set

module EMap = Map.Make (struct
  type t = int * int

  let compare (a1, b1) (a2, b2) =
    let c = Int.compare a1 a2 in
    if c <> 0 then c else Int.compare b1 b2
end)

let opposite = function P -> NP | NP -> P | N -> NN | NN -> N

(* Sign absorption through negation: proj±(¬C) swap. *)
let through_not = function P -> N | N -> P | NP -> NN | NN -> NP

type node = {
  slabels : SCSet.t;
  parent : int option;
  data_asserted : (string * Datatype.value) list;
}

type state = {
  nodes : node IMap.t;
  edges : RSet.t EMap.t;  (* told-positive role edges *)
  distinct : ISet.t IMap.t;
  names : int SMap.t;
  next_id : int;
}

type ctx = {
  mutable branches : int;
  max_branches : int;
  h : Hierarchy.t;  (* over the internal role axioms *)
  constraints : (SC.t * SC.t) list;
      (* each TBox inclusion as a binary disjunction of signed concepts,
         holding at every node (Table 3):
         internal C ⊏ D  ↝  NP C | P D
         material C ↦ D  ↝  N C  | P D
         strong   C → D  ↝  the internal pair plus  NN D | N C *)
  pairwise : bool;  (* blocking mode: inverse roles present? *)
  max_nodes : int;
}

exception Clashed

(* ------------------------------------------------------------------ *)
(* State helpers (a simplified copy of the classical engine's) *)

let node st x = IMap.find x st.nodes
let slabels st x = (node st x).slabels

let edge_label st x y =
  match EMap.find_opt (x, y) st.edges with Some s -> s | None -> RSet.empty

let distinct_of st x =
  match IMap.find_opt x st.distinct with Some s -> s | None -> ISet.empty

let are_distinct st x y = ISet.mem y (distinct_of st x)

let add_distinct st x y =
  { st with
    distinct =
      IMap.add x
        (ISet.add y (distinct_of st x))
        (IMap.add y (ISet.add x (distinct_of st y)) st.distinct) }

let add_slabels st x scs =
  let n = node st x in
  { st with
    nodes =
      IMap.add x
        { n with slabels = List.fold_left (fun s sc -> SCSet.add sc s) n.slabels scs }
        st.nodes }

let new_node ctx st ~parent ~slabels:scs =
  if st.next_id >= ctx.max_nodes then
    raise (Tableau.Resource_limit "native4 node limit");
  let id = st.next_id in
  ( id,
    { st with
      nodes =
        IMap.add id { slabels = SCSet.of_list scs; parent; data_asserted = [] } st.nodes;
      next_id = id + 1 } )

let add_edge st x y rs =
  { st with edges = EMap.add (x, y) (RSet.union rs (edge_label st x y)) st.edges }

let neighbour_roles st x =
  EMap.fold
    (fun (a, b) rs acc ->
      if a = x && b = x then
        RSet.fold (fun r acc -> (x, r) :: (x, Role.inv r) :: acc) rs acc
      else if a = x then RSet.fold (fun r acc -> (b, r) :: acc) rs acc
      else if b = x then RSet.fold (fun r acc -> (a, Role.inv r) :: acc) rs acc
      else acc)
    st.edges []

let r_neighbours ctx st x r =
  ISet.elements
    (ISet.of_list
       (List.filter_map
          (fun (y, t) -> if Hierarchy.sub_of ctx.h t r then Some y else None)
          (neighbour_roles st x)))

(* ------------------------------------------------------------------ *)
(* Merging (no pruning subtleties needed at native4's scale: prune the
   source subtree like the classical engine) *)

let subtree st root =
  let rec go acc x =
    let children =
      IMap.fold (fun y n acc -> if n.parent = Some x then y :: acc else acc) st.nodes []
    in
    List.fold_left go (ISet.add x acc) children
  in
  go ISet.empty root

let rec merge st ~src ~dst =
  if src = dst then Some st
  else if ISet.mem dst (subtree st src) then merge st ~src:dst ~dst:src
  else if are_distinct st src dst then None
  else begin
    let doomed = ISet.remove src (subtree st src) in
    let keep x = not (ISet.mem x doomed) in
    let st =
      { st with
        nodes = IMap.filter (fun x _ -> keep x) st.nodes;
        edges = EMap.filter (fun (a, b) _ -> keep a && keep b) st.edges;
        distinct =
          IMap.filter_map
            (fun x s -> if keep x then Some (ISet.diff s doomed) else None)
            st.distinct }
    in
    let nsrc = node st src and ndst = node st dst in
    let st =
      { st with
        nodes =
          IMap.add dst
            { ndst with
              slabels = SCSet.union ndst.slabels nsrc.slabels;
              data_asserted = nsrc.data_asserted @ ndst.data_asserted }
            st.nodes }
    in
    let st =
      EMap.fold
        (fun (a, b) rs st ->
          if a = src && b = src then add_edge st dst dst rs
          else if a = src then add_edge st dst b rs
          else if b = src then add_edge st a dst rs
          else st)
        st.edges st
    in
    let st =
      { st with edges = EMap.filter (fun (a, b) _ -> a <> src && b <> src) st.edges }
    in
    let st = ISet.fold (fun y st -> add_distinct st y dst) (distinct_of st src) st in
    let st =
      { st with
        distinct = IMap.remove src st.distinct;
        names = SMap.map (fun x -> if x = src then dst else x) st.names;
        nodes = IMap.remove src st.nodes }
    in
    if are_distinct st dst dst then None else Some st
  end

(* ------------------------------------------------------------------ *)
(* Clash detection *)

let exists_distinct_clique st k ys =
  let rec go chosen = function
    | [] -> List.length chosen >= k
    | _ when List.length chosen >= k -> true
    | y :: rest ->
        (List.for_all (fun z -> are_distinct st y z) chosen && go (y :: chosen) rest)
        || go chosen rest
  in
  go [] ys

(* Upper bounds on told-positive R-neighbours carried by a label. *)
let pos_upper_bounds ls =
  SCSet.fold
    (fun sc acc ->
      match sc with
      | NP, Concept.At_least (n, r) -> (r, n - 1) :: acc
      | NN, Concept.At_most (n, r) -> (r, n) :: acc
      | _ -> acc)
    ls []

(* Interval constraints on the per-(node, role) count of NON-negated
   successors (the counterpart of the transformation's R⁼ role). *)
let rneg_interval_clash ls =
  let bounds =
    SCSet.fold
      (fun sc acc ->
        match sc with
        | NP, Concept.At_most (n, r) -> (r, `Lower (n + 1)) :: acc
        | NN, Concept.At_least (n, r) -> (r, `Lower n) :: acc
        | P, Concept.At_most (n, r) -> (r, `Upper n) :: acc
        | N, Concept.At_least (n, r) -> (r, `Upper (n - 1)) :: acc
        | _ -> acc)
      ls []
  in
  List.exists
    (fun (r, b) ->
      match b with
      | `Upper hi ->
          (* the count is a set cardinality, implicitly ≥ 0 *)
          hi < 0
      | `Lower lo ->
          List.exists
            (fun (r', b') ->
              match b' with
              | `Upper hi -> Role.equal r r' && lo > hi
              | `Lower _ -> false)
            bounds)
    bounds

(* Signed data concepts as classical constraints on the told data edges. *)
let data_constraints ls =
  SCSet.fold
    (fun sc acc ->
      match sc with
      | P, (Concept.Data_exists _ as c) -> c :: acc
      | P, (Concept.Data_forall _ as c) -> c :: acc
      | P, (Concept.Data_at_least _ as c) -> c :: acc
      | NN, (Concept.Data_forall _ as c) -> c :: acc
      | NN, Concept.Data_exists (u, d) -> Concept.Data_exists (u, d) :: acc
      | NP, Concept.Data_exists (u, d) | N, Concept.Data_exists (u, d) ->
          Concept.Data_forall (u, Datatype.Complement d) :: acc
      | NP, Concept.Data_forall (u, d) | N, Concept.Data_forall (u, d) ->
          Concept.Data_exists (u, Datatype.Complement d) :: acc
      | NP, Concept.Data_at_least (n, u) -> Concept.Data_at_most (n - 1, u) :: acc
      | N, Concept.Data_at_most (n, u) -> Concept.Data_at_least (n + 1, u) :: acc
      | NN, Concept.Data_at_most (n, u) -> Concept.Data_at_most (n, u) :: acc
      | _ -> acc)
    ls []

(* dneg-side interval constraints for datatype number restrictions. *)
let dneg_interval_clash ls =
  let bounds =
    SCSet.fold
      (fun sc acc ->
        match sc with
        | NP, Concept.Data_at_most (n, u) -> (u, `Lower (n + 1)) :: acc
        | NN, Concept.Data_at_least (n, u) -> (u, `Lower n) :: acc
        | P, Concept.Data_at_most (n, u) -> (u, `Upper n) :: acc
        | N, Concept.Data_at_least (n, u) -> (u, `Upper (n - 1)) :: acc
        | _ -> acc)
      ls []
  in
  List.exists
    (fun (u, b) ->
      match b with
      | `Upper hi -> hi < 0
      | `Lower lo ->
          List.exists
            (fun (u', b') ->
              match b' with
              | `Upper hi -> String.equal u u' && lo > hi
              | `Lower _ -> false)
            bounds)
    bounds

let node_clash ctx st x =
  let ls = slabels st x in
  SCSet.exists
    (fun (sgn, c) ->
      SCSet.mem (opposite sgn, c) ls
      ||
      match (sgn, c) with
      | P, Concept.Bottom | NN, Concept.Bottom -> true
      | NP, Concept.Top | N, Concept.Top -> true
      | NP, Concept.One_of os ->
          List.exists (fun o -> SMap.find_opt o st.names = Some x) os
      | _ -> false)
    ls
  || List.exists
       (fun (r, u) ->
         u < 0
         ||
         let ys = r_neighbours ctx st x r in
         List.length ys > u && exists_distinct_clique st (u + 1) ys)
       (pos_upper_bounds ls)
  || rneg_interval_clash ls || dneg_interval_clash ls
  || are_distinct st x x

let any_clash ctx st = IMap.exists (fun x _ -> node_clash ctx st x) st.nodes

(* ------------------------------------------------------------------ *)
(* Rule shapes *)

(* ∀-shaped signed quantifiers: (what to add at every told R-neighbour). *)
let universal_shape (sgn, (c : Concept.t)) =
  match (sgn, c) with
  | P, Forall (r, body) -> Some (r, (P, body), fun r' -> (P, Concept.Forall (r', body)))
  | NN, Forall (r, body) -> Some (r, (NN, body), fun r' -> (NN, Concept.Forall (r', body)))
  | NP, Exists (r, body) -> Some (r, (NP, body), fun r' -> (NP, Concept.Exists (r', body)))
  | N, Exists (r, body) -> Some (r, (N, body), fun r' -> (N, Concept.Exists (r', body)))
  | _ -> None

(* ∃-shaped signed quantifiers: (role, signed body) to witness. *)
let existential_shape (sgn, (c : Concept.t)) =
  match (sgn, c) with
  | P, Exists (r, body) -> Some (r, (P, body))
  | NN, Exists (r, body) -> Some (r, (NN, body))
  | NP, Forall (r, body) -> Some (r, (NP, body))
  | N, Forall (r, body) -> Some (r, (N, body))
  | _ -> None

(* Lower bounds on told-positive successors. *)
let pos_lower_bound (sgn, (c : Concept.t)) =
  match (sgn, c) with
  | P, At_least (n, r) -> Some (r, n)
  | N, At_most (n, r) -> Some (r, n + 1)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Saturation: deterministic rules to fixpoint. *)

let saturate ctx st =
  let changed = ref true in
  let st = ref st in
  while !changed do
    changed := false;
    let add x scs =
      let scs = List.filter (fun sc -> not (SCSet.mem sc (slabels !st x))) scs in
      if scs <> [] then begin
        st := add_slabels !st x scs;
        changed := true
      end
    in
    let ids = IMap.fold (fun x _ acc -> x :: acc) !st.nodes [] in
    List.iter
      (fun x ->
        if IMap.mem x !st.nodes then
          SCSet.iter
            (fun sc ->
              if IMap.mem x !st.nodes then begin
                (match sc with
                | sgn, Concept.Not c -> add x [ (through_not sgn, c) ]
                | P, Concept.And (a, b) -> add x [ (P, a); (P, b) ]
                | NN, Concept.And (a, b) -> add x [ (NN, a); (NN, b) ]
                | N, Concept.Or (a, b) -> add x [ (N, a); (N, b) ]
                | NP, Concept.Or (a, b) -> add x [ (NP, a); (NP, b) ]
                | P, Concept.One_of [ o ] -> (
                    match SMap.find_opt o !st.names with
                    | Some y when y = x -> ()
                    | Some y -> (
                        match merge !st ~src:x ~dst:y with
                        | Some st' ->
                            st := st';
                            changed := true
                        | None -> raise Clashed)
                    | None ->
                        let n = node !st x in
                        st :=
                          { !st with
                            nodes = IMap.add x { n with parent = None } !st.nodes;
                            names = SMap.add o x !st.names };
                        changed := true)
                | NP, Concept.One_of os ->
                    List.iter
                      (fun o ->
                        let st', y =
                          match SMap.find_opt o !st.names with
                          | Some y -> (!st, y)
                          | None ->
                              let y, st' = new_node ctx !st ~parent:None ~slabels:[] in
                              ({ st' with names = SMap.add o y st'.names }, y)
                        in
                        st := st';
                        if not (are_distinct !st x y) then begin
                          st := add_distinct !st x y;
                          changed := true
                        end)
                      os
                | _ -> ());
                (* ∀-shaped propagation with transitivity *)
                match universal_shape sc with
                | Some (r, body_sc, trans_sc) ->
                    List.iter (fun y -> add y [ body_sc ]) (r_neighbours ctx !st x r);
                    List.iter
                      (fun r' ->
                        List.iter
                          (fun y -> add y [ trans_sc r' ])
                          (r_neighbours ctx !st x r'))
                      (Hierarchy.transitive_subs_below ctx.h r)
                | None -> ()
              end)
            (slabels !st x))
      ids
  done;
  !st

(* ------------------------------------------------------------------ *)
(* Blocking (full recomputation; equality or pairwise on signed labels) *)

let compute_blocked ctx st =
  let blocked = ref ISet.empty in
  IMap.iter
    (fun x n ->
      match n.parent with
      | None -> ()
      | Some px ->
          if ISet.mem px !blocked then blocked := ISet.add x !blocked
          else begin
            let lx = n.slabels in
            let blocks y =
              if ctx.pairwise then
                match (node st y).parent with
                | None -> false
                | Some py ->
                    SCSet.equal (slabels st y) lx
                    && SCSet.equal (slabels st py) (slabels st px)
                    && RSet.equal
                         (RSet.union (edge_label st py y)
                            (RSet.map Role.inv (edge_label st y py)))
                         (RSet.union (edge_label st px x)
                            (RSet.map Role.inv (edge_label st x px)))
              else SCSet.equal (slabels st y) lx
            in
            let rec walk y =
              if y <> x && (not (ISet.mem y !blocked)) && blocks y then
                blocked := ISet.add x !blocked
              else
                match (node st y).parent with None -> () | Some py -> walk py
            in
            walk px
          end)
    st.nodes;
  !blocked

(* ------------------------------------------------------------------ *)
(* Choices and generation *)

type choice =
  | Axiom_choice of int * SC.t list
  | Merge_pairs of (int * int) list
  | Nominal_pick of int * string list

let find_choice ctx st =
  let found = ref None in
  (try
     IMap.iter
       (fun x n ->
         (* signed disjunction-shaped concepts *)
         SCSet.iter
           (fun sc ->
             let branches =
               match sc with
               | NP, Concept.And (a, b) -> Some [ (NP, a); (NP, b) ]
               | N, Concept.And (a, b) -> Some [ (N, a); (N, b) ]
               | P, Concept.Or (a, b) -> Some [ (P, a); (P, b) ]
               | NN, Concept.Or (a, b) -> Some [ (NN, a); (NN, b) ]
               | _ -> None
             in
             (match branches with
             | Some alts when not (List.exists (fun alt -> SCSet.mem alt n.slabels) alts)
               ->
                 found := Some (Axiom_choice (x, alts));
                 raise Exit
             | _ -> ());
             (* nominal disjunction *)
             match sc with
             | P, Concept.One_of (_ :: _ :: _ as os) ->
                 if not (List.exists (fun o -> SMap.find_opt o st.names = Some x) os)
                 then begin
                   found := Some (Nominal_pick (x, os));
                   raise Exit
                 end
             | _ -> ())
           n.slabels;
         (* TBox inclusion branching *)
         List.iter
           (fun (sc1, sc2) ->
             if not (SCSet.mem sc1 n.slabels || SCSet.mem sc2 n.slabels) then begin
               found := Some (Axiom_choice (x, [ sc1; sc2 ]));
               raise Exit
             end)
           ctx.constraints;
         (* ≤-style merging on told successors *)
         List.iter
           (fun (r, u) ->
             if u >= 0 then
               let ys = r_neighbours ctx st x r in
               if List.length ys > u then begin
                 let pairs = ref [] in
                 List.iteri
                   (fun i y ->
                     List.iteri
                       (fun j z ->
                         if i < j && not (are_distinct st y z) then
                           let src, dst = if y > z then (y, z) else (z, y) in
                           pairs := (src, dst) :: !pairs)
                       ys)
                   ys;
                 if !pairs <> [] then begin
                   found := Some (Merge_pairs !pairs);
                   raise Exit
                 end
               end)
           (pos_upper_bounds n.slabels))
       st.nodes
   with Exit -> ());
  !found

let find_generating ctx st =
  let blocked = compute_blocked ctx st in
  let result = ref None in
  (try
     IMap.iter
       (fun x n ->
         if not (ISet.mem x blocked) then
           SCSet.iter
             (fun sc ->
               (match existential_shape sc with
               | Some (r, body_sc) ->
                   let witnessed =
                     List.exists
                       (fun y -> SCSet.mem body_sc (slabels st y))
                       (r_neighbours ctx st x r)
                   in
                   if not witnessed then begin
                     result :=
                       Some
                         (fun st ->
                           let y, st = new_node ctx st ~parent:(Some x) ~slabels:[ body_sc ] in
                           add_edge st x y (RSet.singleton r));
                     raise Exit
                   end
               | None -> ());
               match pos_lower_bound sc with
               | Some (r, k) ->
                   if not (exists_distinct_clique st k (r_neighbours ctx st x r))
                   then begin
                     result :=
                       Some
                         (fun st ->
                           let rec go st created i =
                             if i = 0 then st
                             else
                               let y, st = new_node ctx st ~parent:(Some x) ~slabels:[] in
                               let st = add_edge st x y (RSet.singleton r) in
                               let st =
                                 List.fold_left (fun st z -> add_distinct st y z) st created
                               in
                               go st (y :: created) (i - 1)
                           in
                           go st [] k);
                     raise Exit
                   end
               | None -> ())
             n.slabels)
       st.nodes
   with Exit -> ());
  !result

let data_ok ctx st =
  IMap.for_all
    (fun _ n ->
      Datacheck.satisfiable
        ~data_supers:(Hierarchy.data_supers ctx.h)
        ~asserted:n.data_asserted
        ~constraints:(data_constraints n.slabels))
    st.nodes

(* ------------------------------------------------------------------ *)
(* Expansion *)

let rec expand ctx st =
  match saturate ctx st with
  | exception Clashed -> false
  | st ->
      if any_clash ctx st then false
      else begin
        ctx.branches <- ctx.branches + 1;
        if ctx.branches > ctx.max_branches then
          raise (Tableau.Resource_limit "native4 branch limit");
        match find_choice ctx st with
        | Some (Axiom_choice (x, alts)) ->
            List.exists (fun sc -> expand ctx (add_slabels st x [ sc ])) alts
        | Some (Merge_pairs pairs) ->
            List.exists
              (fun (src, dst) ->
                match merge st ~src ~dst with
                | Some st' -> expand ctx st'
                | None -> false)
              pairs
        | Some (Nominal_pick (x, os)) ->
            List.exists
              (fun o -> expand ctx (add_slabels st x [ (P, Concept.One_of [ o ]) ]))
              os
        | None -> (
            match find_generating ctx st with
            | Some apply -> expand ctx (apply st)
            | None -> data_ok ctx st)
      end

(* ------------------------------------------------------------------ *)
(* Public interface *)

type t = { ctx : ctx; base : state }

let create ?(max_nodes = 20_000) ?(max_branches = max_int) (kb : Kb4.t) =
  (* role axioms: internal inclusions and transitivity feed the hierarchy;
     the rneg-side role axioms are not supported natively *)
  let classical_role_axioms =
    List.filter_map
      (fun ax ->
        match (ax : Kb4.tbox_axiom) with
        | Kb4.Role_inclusion (Kb4.Internal, r, s) -> Some (Axiom.Role_sub (r, s))
        | Kb4.Data_role_inclusion (Kb4.Internal, u, v) ->
            Some (Axiom.Data_role_sub (u, v))
        | Kb4.Transitive r -> Some (Axiom.Transitive r)
        | Kb4.Role_inclusion ((Kb4.Material | Kb4.Strong), _, _)
        | Kb4.Data_role_inclusion ((Kb4.Material | Kb4.Strong), _, _) ->
            raise
              (Unsupported
                 "material/strong role inclusions: use the transformation \
                  pipeline (Para)")
        | Kb4.Concept_inclusion _ -> None)
      kb.tbox
  in
  (* each concept inclusion as binary signed disjunctions (Table 3) *)
  let constraints =
    List.concat_map
      (fun ax ->
        match (ax : Kb4.tbox_axiom) with
        | Kb4.Concept_inclusion (Kb4.Internal, c, d) -> [ ((NP, c), (P, d)) ]
        | Kb4.Concept_inclusion (Kb4.Material, c, d) -> [ ((N, c), (P, d)) ]
        | Kb4.Concept_inclusion (Kb4.Strong, c, d) ->
            [ ((NP, c), (P, d)); ((NN, d), (N, c)) ]
        | _ -> [])
      kb.tbox
  in
  let uses_inverse =
    let concept_has_inv c =
      List.exists
        (fun (sub : Concept.t) ->
          match sub with
          | Exists (Role.Inv _, _) | Forall (Role.Inv _, _)
          | At_least (_, Role.Inv _) | At_most (_, Role.Inv _) ->
              true
          | _ -> false)
        (Concept.subconcepts c)
    in
    List.exists
      (fun ((_, c), (_, d)) -> concept_has_inv c || concept_has_inv d)
      constraints
    || List.exists
         (function
           | Axiom.Role_sub (r, s) -> Role.is_inverse r || Role.is_inverse s
           | _ -> false)
         classical_role_axioms
    || List.exists
         (function
           | Axiom.Instance_of (_, c) -> concept_has_inv c
           | Axiom.Role_assertion (_, r, _) -> Role.is_inverse r
           | _ -> false)
         kb.abox
  in
  let ctx =
    { branches = 0;
      max_branches;
      h = Hierarchy.build classical_role_axioms;
      constraints;
      pairwise = uses_inverse;
      max_nodes }
  in
  let st =
    { nodes = IMap.empty;
      edges = EMap.empty;
      distinct = IMap.empty;
      names = SMap.empty;
      next_id = 0 }
  in
  let get_node st a =
    match SMap.find_opt a st.names with
    | Some x -> (x, st)
    | None ->
        let x, st = new_node ctx st ~parent:None ~slabels:[] in
        (x, { st with names = SMap.add a x st.names })
  in
  let st =
    List.fold_left
      (fun st ax ->
        match (ax : Axiom.abox_axiom) with
        | Instance_of (a, c) ->
            let x, st = get_node st a in
            add_slabels st x [ (P, c) ]
        | Role_assertion (a, r, b) ->
            let x, st = get_node st a in
            let y, st = get_node st b in
            let x, y, r =
              match r with Role.Inv s -> (y, x, Role.Name s) | _ -> (x, y, r)
            in
            add_edge st x y (RSet.singleton r)
        | Data_assertion (a, u, v) ->
            let x, st = get_node st a in
            let n = node st x in
            { st with
              nodes =
                IMap.add x
                  { n with data_asserted = (u, v) :: n.data_asserted }
                  st.nodes }
        | Same (a, b) ->
            let x, st = get_node st a in
            let y, st = get_node st b in
            (match merge st ~src:y ~dst:x with
            | Some st -> st
            | None -> raise Clashed)
        | Different (a, b) ->
            let x, st = get_node st a in
            let y, st = get_node st b in
            add_distinct st x y)
      st kb.abox
  in
  let st =
    if IMap.is_empty st.nodes then snd (new_node ctx st ~parent:None ~slabels:[])
    else st
  in
  { ctx; base = st }

let run t extra =
  t.ctx.branches <- 0;
  let st =
    List.fold_left
      (fun st (a, sc) ->
        match SMap.find_opt a st.names with
        | Some x -> add_slabels st x [ sc ]
        | None ->
            (* fresh individual: a root node *)
            let x, st =
              new_node t.ctx st ~parent:None ~slabels:[ sc ]
            in
            { st with names = SMap.add a x st.names })
      t.base extra
  in
  match expand t.ctx st with b -> b | exception Clashed -> false

let satisfiable t = run t []
let entails_instance t a c = not (run t [ (a, (NP, c)) ])
let entails_not_instance t a c = not (run t [ (a, (NN, c)) ])

let instance_truth t a c =
  Truth.of_pair ~told_true:(entails_instance t a c)
    ~told_false:(entails_not_instance t a c)
