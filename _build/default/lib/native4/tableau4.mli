(** A {e native} four-valued tableau for [SHOIN(D)4] — deciding the paper's
    reasoning problems directly on Table 2/3 semantics, without the
    detour through the classical transformation.

    The paper argues (§4, §5) that the transformation makes a dedicated
    calculus unnecessary.  This module is the ablation for that claim: a
    direct calculus whose node labels carry {e signed} concepts recording
    the four membership bits independently —

    - [P C]:  x ∈ proj⁺(Cᴵ)      (told member)
    - [NP C]: x ∉ proj⁺(Cᴵ)
    - [N C]:  x ∈ proj⁻(Cᴵ)      (told non-member)
    - [NN C]: x ∉ proj⁻(Cᴵ)

    A branch closes only on [P/NP] or [N/NN] conflicts on the same concept;
    [P C] and [N C] coexist (value ⊤).  Graph edges carry told-positive
    role memberships; the negative role parts never create edges — the
    number-restriction bits that count non-negated successors reduce to
    interval constraints checked per node (the counterpart of the
    transformation's [R⁼] roles).

    Differential testing against the transformation pipeline ({!Para}) on
    random knowledge bases is the executable form of Theorem 6; the
    evaluation harness compares the two engines' costs.

    Supported fragment: everything except material/strong {e role}
    inclusions (their [rneg]-side constraints are only implemented in the
    transformation path); {!Unsupported} is raised on those. *)

exception Unsupported of string

type t

val create : ?max_nodes:int -> ?max_branches:int -> Kb4.t -> t
(** Resource budgets as in {!Tableau}: {!Tableau.Resource_limit} is raised
    when exceeded. *)

val satisfiable : t -> bool
(** Four-valued KB satisfiability, decided natively. *)

val entails_instance : t -> string -> Concept.t -> bool
(** [K ⊨⁴ C(a)], via unsatisfiability of [K] plus the signed assertion
    [NP C] at [a]. *)

val entails_not_instance : t -> string -> Concept.t -> bool
(** [K ⊨⁴ ¬C(a)], via the signed assertion [NN C] at [a]. *)

val instance_truth : t -> string -> Concept.t -> Truth.t
