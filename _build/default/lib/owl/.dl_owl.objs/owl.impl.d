lib/owl/owl.ml: Axiom Concept Datatype Hierarchy List Reasoner Role Transform
