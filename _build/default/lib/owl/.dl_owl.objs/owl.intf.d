lib/owl/owl.mli: Axiom Kb4 Reasoner
