lib/owl/owl_functional.ml: Array Axiom Buffer Concept Datatype Either Format List Printf Role String
