lib/owl/owl_functional.mli: Axiom Format
