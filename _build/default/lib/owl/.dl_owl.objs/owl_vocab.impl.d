lib/owl/owl_vocab.ml: Axiom Concept Role
