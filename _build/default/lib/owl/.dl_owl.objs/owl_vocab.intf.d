lib/owl/owl_vocab.mli: Axiom Concept Datatype Role
