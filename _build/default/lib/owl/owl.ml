let tbox_axiom_entailed reasoner = function
  | Axiom.Concept_sub (c, d) -> Reasoner.subsumes reasoner c d
  | Axiom.Role_sub (r, s) ->
      (not (Reasoner.is_consistent reasoner))
      ||
      let h = Hierarchy.build (Reasoner.kb reasoner).Axiom.tbox in
      Hierarchy.sub_of h r s
  | Axiom.Data_role_sub (u, v) ->
      (not (Reasoner.is_consistent reasoner))
      ||
      let h = Hierarchy.build (Reasoner.kb reasoner).Axiom.tbox in
      List.mem v (Hierarchy.data_supers h u)
  | Axiom.Transitive r ->
      (not (Reasoner.is_consistent reasoner))
      ||
      let h = Hierarchy.build (Reasoner.kb reasoner).Axiom.tbox in
      Hierarchy.transitive h (Role.Name r)

let abox_axiom_entailed reasoner = function
  | Axiom.Instance_of (a, c) -> Reasoner.instance_of reasoner a c
  | Axiom.Role_assertion (a, r, b) -> Reasoner.role_entailed reasoner a r b
  | Axiom.Data_assertion (a, u, v) ->
      (* U(a,v) entailed iff adding a:∀U.¬{v} is inconsistent *)
      not
        (Reasoner.consistent_with reasoner
           [ Axiom.Instance_of
               ( a,
                 Concept.Data_forall
                   (u, Datatype.Complement (Datatype.One_of [ v ])) ) ])
  | Axiom.Same (a, b) -> Reasoner.same_entailed reasoner a b
  | Axiom.Different (a, b) -> Reasoner.different_entailed reasoner a b

let entails o1 o2 =
  let reasoner = Reasoner.create o1 in
  List.for_all (tbox_axiom_entailed reasoner) o2.Axiom.tbox
  && List.for_all (abox_axiom_entailed reasoner) o2.Axiom.abox

let entails4 o1 o2 = entails (Transform.kb o1) (Transform.kb o2)
