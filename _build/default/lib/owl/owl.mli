(** OWL-DL-style ontology entailment.

    §2.1 of the paper: "the main semantic relationship for OWL DL is
    entailment between pairs of OWL ontologies.  An ontology O₁ entails an
    ontology O₂ iff all interpretations that satisfy O₁ also satisfy O₂",
    and OWL DL entailment transforms into [SHOIN(D)] KB (un)satisfiability
    (Horrocks & Patel-Schneider 2004).  This module implements that
    reduction axiom by axiom, and its four-valued counterpart through the
    paper's transformation.

    Caveat: role-inclusion and transitivity axioms are checked against the
    syntactic role-hierarchy closure (plus the trivial case of an
    inconsistent premise ontology); this is how deployed OWL reasoners of
    the era answered role entailment, and is complete except for roles
    forced semantically empty. *)

val tbox_axiom_entailed : Reasoner.t -> Axiom.tbox_axiom -> bool
val abox_axiom_entailed : Reasoner.t -> Axiom.abox_axiom -> bool

val entails : Axiom.kb -> Axiom.kb -> bool
(** [entails o1 o2] — classical OWL DL entailment [O₁ ⊨ O₂]. *)

val entails4 : Kb4.t -> Kb4.t -> bool
(** Four-valued ontology entailment [O₁ ⊨⁴ O₂], decided classically over
    the induced KBs (Theorem 6): [O₁ ⊨⁴ O₂] iff [Ō₁ ⊨ Ō₂]. *)
