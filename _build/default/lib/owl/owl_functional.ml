type error = { message : string; offset : int }

let pp_error ppf e =
  Format.fprintf ppf "OWL functional syntax error at offset %d: %s" e.offset
    e.message

exception Err of string * int

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | LPAREN
  | RPAREN
  | NAME of string       (* possibly prefixed: A, :A, xsd:integer *)
  | LITERAL of string * string option  (* lexical form, datatype name *)
  | INT of int
  | EOF

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'
  (* the transformation's decorated names (A+, A-, R=) stay parseable *)
  || c = '+' || c = '='

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let emit t pos = toks := (t, pos) :: !toks in
  while !i < n do
    let start = !i in
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '#' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if c = '(' then (emit LPAREN start; incr i)
    else if c = ')' then (emit RPAREN start; incr i)
    else if c = '<' then begin
      (* full IRI: keep the fragment (after # or the last /) *)
      let j = ref (!i + 1) in
      while !j < n && src.[!j] <> '>' do
        incr j
      done;
      if !j >= n then raise (Err ("unterminated IRI", start));
      let iri = String.sub src (!i + 1) (!j - !i - 1) in
      let frag =
        match String.rindex_opt iri '#' with
        | Some k -> String.sub iri (k + 1) (String.length iri - k - 1)
        | None -> (
            match String.rindex_opt iri '/' with
            | Some k -> String.sub iri (k + 1) (String.length iri - k - 1)
            | None -> iri)
      in
      emit (NAME frag) start;
      i := !j + 1
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      let j = ref (!i + 1) in
      let closed = ref false in
      while (not !closed) && !j < n do
        (match src.[!j] with
        | '"' -> closed := true
        | '\\' when !j + 1 < n ->
            incr j;
            Buffer.add_char buf src.[!j]
        | ch -> Buffer.add_char buf ch);
        incr j
      done;
      if not !closed then raise (Err ("unterminated literal", start));
      (* optional ^^datatype *)
      let dt =
        if !j + 1 < n && src.[!j] = '^' && src.[!j + 1] = '^' then begin
          let k = ref (!j + 2) in
          let s = !k in
          while !k < n && is_name_char src.[!k] do
            incr k
          done;
          let name = String.sub src s (!k - s) in
          j := !k;
          Some name
        end
        else None
      in
      emit (LITERAL (Buffer.contents buf, dt)) start;
      i := !j
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do
        incr j
      done;
      emit (INT (int_of_string (String.sub src !i (!j - !i)))) start;
      i := !j
    end
    else if is_name_char c then begin
      let j = ref !i in
      while !j < n && is_name_char src.[!j] do
        incr j
      done;
      emit (NAME (String.sub src !i (!j - !i))) start;
      i := !j
    end
    else raise (Err (Printf.sprintf "unexpected character %C" c, start))
  done;
  emit EOF n;
  Array.of_list (List.rev !toks)

(* ------------------------------------------------------------------ *)
(* Parser *)

type stream = { toks : (token * int) array; mutable pos : int }

let peek s = fst s.toks.(s.pos)
let offset s = snd s.toks.(s.pos)
let advance s = s.pos <- s.pos + 1
let fail s msg = raise (Err (msg, offset s))

let expect s tok what =
  if peek s = tok then advance s else fail s ("expected " ^ what)

(* strip a single leading ':' from default-prefix names *)
let entity name =
  if String.length name > 1 && name.[0] = ':' then
    String.sub name 1 (String.length name - 1)
  else name

let name s =
  match peek s with
  | NAME x ->
      advance s;
      entity x
  | _ -> fail s "expected a name"

let parse_literal s : Datatype.value =
  match peek s with
  | LITERAL (lex, dt) -> (
      advance s;
      match dt with
      | Some "xsd:integer" | Some "xsd:int" -> (
          match int_of_string_opt lex with
          | Some v -> Datatype.Int v
          | None -> fail s "malformed integer literal")
      | Some "xsd:boolean" -> (
          match bool_of_string_opt lex with
          | Some b -> Datatype.Bool b
          | None -> fail s "malformed boolean literal")
      | Some "xsd:string" | None -> Datatype.Str lex
      | Some other -> fail s ("unsupported literal datatype " ^ other))
  | INT v ->
      advance s;
      Datatype.Int v
  | _ -> fail s "expected a literal"

let rec parse_object_property s : Role.t =
  match peek s with
  | NAME "ObjectInverseOf" ->
      advance s;
      expect s LPAREN "'('";
      let r = parse_object_property s in
      expect s RPAREN "')'";
      Role.inv r
  | NAME x ->
      advance s;
      Role.Name (entity x)
  | _ -> fail s "expected an object property"

let rec parse_data_range s : Datatype.t =
  match peek s with
  | NAME "xsd:integer" | NAME "xsd:int" ->
      advance s;
      Datatype.Int_type
  | NAME "xsd:string" ->
      advance s;
      Datatype.String_type
  | NAME "xsd:boolean" ->
      advance s;
      Datatype.Bool_type
  | NAME "rdfs:Literal" ->
      advance s;
      Datatype.Top_data
  | NAME "DataOneOf" ->
      advance s;
      expect s LPAREN "'('";
      let vs = ref [] in
      while peek s <> RPAREN do
        vs := parse_literal s :: !vs
      done;
      expect s RPAREN "')'";
      Datatype.One_of (List.rev !vs)
  | NAME "DataComplementOf" ->
      advance s;
      expect s LPAREN "'('";
      let d = parse_data_range s in
      expect s RPAREN "')'";
      Datatype.Complement d
  | NAME "DatatypeRestriction" ->
      advance s;
      expect s LPAREN "'('";
      (match peek s with
      | NAME ("xsd:integer" | "xsd:int") -> advance s
      | _ -> fail s "DatatypeRestriction supports only xsd:integer");
      let lo = ref None and hi = ref None in
      while peek s <> RPAREN do
        let facet = name s in
        let v = parse_literal s in
        match (facet, v) with
        | "xsd:minInclusive", Datatype.Int v -> lo := Some v
        | "xsd:maxInclusive", Datatype.Int v -> hi := Some v
        | "xsd:minExclusive", Datatype.Int v -> lo := Some (v + 1)
        | "xsd:maxExclusive", Datatype.Int v -> hi := Some (v - 1)
        | _ -> fail s ("unsupported facet " ^ facet)
      done;
      expect s RPAREN "')'";
      Datatype.Int_range (!lo, !hi)
  | _ -> fail s "expected a data range"

let parse_cardinality s =
  match peek s with
  | INT k when k >= 0 ->
      advance s;
      k
  | _ -> fail s "expected a cardinality"

let rec parse_class s : Concept.t =
  match peek s with
  | NAME "owl:Thing" ->
      advance s;
      Concept.Top
  | NAME "owl:Nothing" ->
      advance s;
      Concept.Bottom
  | NAME "ObjectIntersectionOf" ->
      advance s;
      Concept.conj (parse_class_list s)
  | NAME "ObjectUnionOf" ->
      advance s;
      Concept.disj (parse_class_list s)
  | NAME "ObjectComplementOf" ->
      advance s;
      expect s LPAREN "'('";
      let c = parse_class s in
      expect s RPAREN "')'";
      Concept.neg c
  | NAME "ObjectOneOf" ->
      advance s;
      expect s LPAREN "'('";
      let os = ref [] in
      while peek s <> RPAREN do
        os := name s :: !os
      done;
      expect s RPAREN "')'";
      Concept.One_of (List.rev !os)
  | NAME "ObjectSomeValuesFrom" ->
      advance s;
      expect s LPAREN "'('";
      let r = parse_object_property s in
      let c = parse_class s in
      expect s RPAREN "')'";
      Concept.Exists (r, c)
  | NAME "ObjectAllValuesFrom" ->
      advance s;
      expect s LPAREN "'('";
      let r = parse_object_property s in
      let c = parse_class s in
      expect s RPAREN "')'";
      Concept.Forall (r, c)
  | NAME "ObjectHasValue" ->
      advance s;
      expect s LPAREN "'('";
      let r = parse_object_property s in
      let a = name s in
      expect s RPAREN "')'";
      Concept.Exists (r, Concept.One_of [ a ])
  | NAME "ObjectMinCardinality" ->
      advance s;
      expect s LPAREN "'('";
      let k = parse_cardinality s in
      let r = parse_object_property s in
      expect s RPAREN "')'";
      Concept.At_least (k, r)
  | NAME "ObjectMaxCardinality" ->
      advance s;
      expect s LPAREN "'('";
      let k = parse_cardinality s in
      let r = parse_object_property s in
      expect s RPAREN "')'";
      Concept.At_most (k, r)
  | NAME "ObjectExactCardinality" ->
      advance s;
      expect s LPAREN "'('";
      let k = parse_cardinality s in
      let r = parse_object_property s in
      expect s RPAREN "')'";
      Concept.And (Concept.At_least (k, r), Concept.At_most (k, r))
  | NAME "DataSomeValuesFrom" ->
      advance s;
      expect s LPAREN "'('";
      let u = name s in
      let d = parse_data_range s in
      expect s RPAREN "')'";
      Concept.Data_exists (u, d)
  | NAME "DataAllValuesFrom" ->
      advance s;
      expect s LPAREN "'('";
      let u = name s in
      let d = parse_data_range s in
      expect s RPAREN "')'";
      Concept.Data_forall (u, d)
  | NAME "DataMinCardinality" ->
      advance s;
      expect s LPAREN "'('";
      let k = parse_cardinality s in
      let u = name s in
      expect s RPAREN "')'";
      Concept.Data_at_least (k, u)
  | NAME "DataMaxCardinality" ->
      advance s;
      expect s LPAREN "'('";
      let k = parse_cardinality s in
      let u = name s in
      expect s RPAREN "')'";
      Concept.Data_at_most (k, u)
  | NAME x ->
      advance s;
      Concept.Atom (entity x)
  | _ -> fail s "expected a class expression"

and parse_class_list s =
  expect s LPAREN "'('";
  let cs = ref [] in
  while peek s <> RPAREN do
    cs := parse_class s :: !cs
  done;
  expect s RPAREN "')'";
  List.rev !cs

(* An axiom, or [None] for accepted-and-ignored statements. *)
let parse_axiom s : (Axiom.tbox_axiom list, Axiom.abox_axiom list) Either.t option =
  let tbox axs = Some (Either.Left axs) in
  let abox axs = Some (Either.Right axs) in
  match peek s with
  | NAME "Declaration" | NAME "Import" | NAME "Annotation"
  | NAME "AnnotationAssertion" ->
      advance s;
      (* skip the balanced parenthesis group *)
      expect s LPAREN "'('";
      let depth = ref 1 in
      while !depth > 0 do
        (match peek s with
        | LPAREN -> incr depth
        | RPAREN -> decr depth
        | EOF -> fail s "unbalanced parentheses"
        | _ -> ());
        advance s
      done;
      None
  | NAME "SubClassOf" ->
      advance s;
      expect s LPAREN "'('";
      let c = parse_class s in
      let d = parse_class s in
      expect s RPAREN "')'";
      tbox [ Axiom.Concept_sub (c, d) ]
  | NAME "EquivalentClasses" ->
      advance s;
      let cs = parse_class_list s in
      let rec pairs = function
        | a :: (b :: _ as rest) ->
            Axiom.Concept_sub (a, b) :: Axiom.Concept_sub (b, a) :: pairs rest
        | _ -> []
      in
      tbox (pairs cs)
  | NAME "DisjointClasses" ->
      advance s;
      let cs = parse_class_list s in
      let rec pairs = function
        | a :: rest ->
            List.map (fun b -> Axiom.Concept_sub (a, Concept.neg b)) rest
            @ pairs rest
        | [] -> []
      in
      tbox (pairs cs)
  | NAME "SubObjectPropertyOf" ->
      advance s;
      expect s LPAREN "'('";
      let r = parse_object_property s in
      let r' = parse_object_property s in
      expect s RPAREN "')'";
      tbox [ Axiom.Role_sub (r, r') ]
  | NAME "TransitiveObjectProperty" ->
      advance s;
      expect s LPAREN "'('";
      let r = parse_object_property s in
      expect s RPAREN "')'";
      (match r with
      | Role.Name base | Role.Inv base -> tbox [ Axiom.Transitive base ])
  | NAME "SubDataPropertyOf" ->
      advance s;
      expect s LPAREN "'('";
      let u = name s in
      let v = name s in
      expect s RPAREN "')'";
      tbox [ Axiom.Data_role_sub (u, v) ]
  | NAME "ClassAssertion" ->
      advance s;
      expect s LPAREN "'('";
      let c = parse_class s in
      let a = name s in
      expect s RPAREN "')'";
      abox [ Axiom.Instance_of (a, c) ]
  | NAME "ObjectPropertyAssertion" ->
      advance s;
      expect s LPAREN "'('";
      let r = parse_object_property s in
      let a = name s in
      let b = name s in
      expect s RPAREN "')'";
      abox [ Axiom.Role_assertion (a, r, b) ]
  | NAME "NegativeObjectPropertyAssertion" ->
      advance s;
      expect s LPAREN "'('";
      let r = parse_object_property s in
      let a = name s in
      let b = name s in
      expect s RPAREN "')'";
      abox
        [ Axiom.Instance_of
            (a, Concept.Forall (r, Concept.Not (Concept.One_of [ b ]))) ]
  | NAME "DataPropertyAssertion" ->
      advance s;
      expect s LPAREN "'('";
      let u = name s in
      let a = name s in
      let v = parse_literal s in
      expect s RPAREN "')'";
      abox [ Axiom.Data_assertion (a, u, v) ]
  | NAME "SameIndividual" ->
      advance s;
      expect s LPAREN "'('";
      let a = name s in
      let rest = ref [] in
      while peek s <> RPAREN do
        rest := name s :: !rest
      done;
      expect s RPAREN "')'";
      abox (List.map (fun b -> Axiom.Same (a, b)) (List.rev !rest))
  | NAME "DifferentIndividuals" ->
      advance s;
      expect s LPAREN "'('";
      let inds = ref [] in
      while peek s <> RPAREN do
        inds := name s :: !inds
      done;
      expect s RPAREN "')'";
      let rec pairs = function
        | a :: rest -> List.map (fun b -> Axiom.Different (a, b)) rest @ pairs rest
        | [] -> []
      in
      abox (pairs (List.rev !inds))
  | _ -> fail s "expected an axiom"

let parse_document s =
  (* optional Prefix declarations *)
  while peek s = NAME "Prefix" do
    advance s;
    expect s LPAREN "'('";
    let depth = ref 1 in
    while !depth > 0 do
      (match peek s with
      | LPAREN -> incr depth
      | RPAREN -> decr depth
      | EOF -> fail s "unbalanced parentheses"
      | _ -> ());
      advance s
    done
  done;
  let wrapped = peek s = NAME "Ontology" in
  if wrapped then begin
    advance s;
    expect s LPAREN "'('";
    (* optional ontology IRI(s) *)
    while (match peek s with NAME x when x <> "" -> not (String.contains x '(') | _ -> false)
          && s.toks.(s.pos + 1) |> fst <> LPAREN do
      advance s
    done
  end;
  let kb = ref Axiom.empty in
  let stop () = if wrapped then peek s = RPAREN else peek s = EOF in
  while not (stop ()) do
    match parse_axiom s with
    | None -> ()
    | Some (Either.Left axs) ->
        kb := List.fold_left Axiom.add_tbox !kb axs
    | Some (Either.Right axs) ->
        kb := List.fold_left Axiom.add_abox !kb axs
  done;
  if wrapped then expect s RPAREN "')'";
  !kb

let parse_ontology src =
  match
    let s = { toks = tokenize src; pos = 0 } in
    parse_document s
  with
  | kb -> Ok kb
  | exception Err (message, offset) -> Error { message; offset }

let parse_ontology_exn src =
  match parse_ontology src with
  | Ok kb -> kb
  | Error e -> failwith (Format.asprintf "%a" pp_error e)

(* ------------------------------------------------------------------ *)
(* Writer *)

let buf_add = Buffer.add_string

let write_role b = function
  | Role.Name r -> buf_add b (":" ^ r)
  | Role.Inv r -> buf_add b (Printf.sprintf "ObjectInverseOf(:%s)" r)

let write_literal b = function
  | Datatype.Int v -> buf_add b (Printf.sprintf "\"%d\"^^xsd:integer" v)
  | Datatype.Str v -> buf_add b (Printf.sprintf "%S" v)
  | Datatype.Bool v -> buf_add b (Printf.sprintf "\"%b\"^^xsd:boolean" v)

let rec write_data_range b = function
  | Datatype.Int_type -> buf_add b "xsd:integer"
  | Datatype.String_type -> buf_add b "xsd:string"
  | Datatype.Bool_type -> buf_add b "xsd:boolean"
  | Datatype.Top_data -> buf_add b "rdfs:Literal"
  | Datatype.Bottom_data -> buf_add b "DataComplementOf(rdfs:Literal)"
  | Datatype.One_of vs ->
      buf_add b "DataOneOf(";
      List.iteri
        (fun i v ->
          if i > 0 then buf_add b " ";
          write_literal b v)
        vs;
      buf_add b ")"
  | Datatype.Complement d ->
      buf_add b "DataComplementOf(";
      write_data_range b d;
      buf_add b ")"
  | Datatype.Int_range (lo, hi) ->
      buf_add b "DatatypeRestriction(xsd:integer";
      (match lo with
      | Some v -> buf_add b (Printf.sprintf " xsd:minInclusive \"%d\"^^xsd:integer" v)
      | None -> ());
      (match hi with
      | Some v -> buf_add b (Printf.sprintf " xsd:maxInclusive \"%d\"^^xsd:integer" v)
      | None -> ());
      buf_add b ")"

let rec write_class b (c : Concept.t) =
  let nary keyword cs =
    buf_add b keyword;
    buf_add b "(";
    List.iteri
      (fun i c ->
        if i > 0 then buf_add b " ";
        write_class b c)
      cs;
    buf_add b ")"
  in
  match c with
  | Top -> buf_add b "owl:Thing"
  | Bottom -> buf_add b "owl:Nothing"
  | Atom a -> buf_add b (":" ^ a)
  | Not c ->
      buf_add b "ObjectComplementOf(";
      write_class b c;
      buf_add b ")"
  | And _ ->
      let rec conjuncts (c : Concept.t) =
        match c with And (a, b) -> conjuncts a @ conjuncts b | c -> [ c ]
      in
      nary "ObjectIntersectionOf" (conjuncts c)
  | Or _ ->
      let rec disjuncts (c : Concept.t) =
        match c with Or (a, b) -> disjuncts a @ disjuncts b | c -> [ c ]
      in
      nary "ObjectUnionOf" (disjuncts c)
  | One_of os ->
      buf_add b "ObjectOneOf(";
      List.iteri
        (fun i o ->
          if i > 0 then buf_add b " ";
          buf_add b (":" ^ o))
        os;
      buf_add b ")"
  | Exists (r, c) ->
      buf_add b "ObjectSomeValuesFrom(";
      write_role b r;
      buf_add b " ";
      write_class b c;
      buf_add b ")"
  | Forall (r, c) ->
      buf_add b "ObjectAllValuesFrom(";
      write_role b r;
      buf_add b " ";
      write_class b c;
      buf_add b ")"
  | At_least (k, r) ->
      buf_add b (Printf.sprintf "ObjectMinCardinality(%d " k);
      write_role b r;
      buf_add b ")"
  | At_most (k, r) ->
      buf_add b (Printf.sprintf "ObjectMaxCardinality(%d " k);
      write_role b r;
      buf_add b ")"
  | Data_exists (u, d) ->
      buf_add b (Printf.sprintf "DataSomeValuesFrom(:%s " u);
      write_data_range b d;
      buf_add b ")"
  | Data_forall (u, d) ->
      buf_add b (Printf.sprintf "DataAllValuesFrom(:%s " u);
      write_data_range b d;
      buf_add b ")"
  | Data_at_least (k, u) ->
      buf_add b (Printf.sprintf "DataMinCardinality(%d :%s)" k u)
  | Data_at_most (k, u) ->
      buf_add b (Printf.sprintf "DataMaxCardinality(%d :%s)" k u)

let to_functional ?(ontology_iri = "http://example.org/ontology") (kb : Axiom.kb)
    =
  let b = Buffer.create 1024 in
  buf_add b (Printf.sprintf "Ontology(<%s>\n" ontology_iri);
  List.iter
    (fun ax ->
      buf_add b "  ";
      (match (ax : Axiom.tbox_axiom) with
      | Concept_sub (c, d) ->
          buf_add b "SubClassOf(";
          write_class b c;
          buf_add b " ";
          write_class b d;
          buf_add b ")"
      | Role_sub (r, r') ->
          buf_add b "SubObjectPropertyOf(";
          write_role b r;
          buf_add b " ";
          write_role b r';
          buf_add b ")"
      | Data_role_sub (u, v) ->
          buf_add b (Printf.sprintf "SubDataPropertyOf(:%s :%s)" u v)
      | Transitive r ->
          buf_add b (Printf.sprintf "TransitiveObjectProperty(:%s)" r));
      buf_add b "\n")
    kb.tbox;
  List.iter
    (fun ax ->
      buf_add b "  ";
      (match (ax : Axiom.abox_axiom) with
      | Instance_of (a, c) ->
          buf_add b "ClassAssertion(";
          write_class b c;
          buf_add b (Printf.sprintf " :%s)" a)
      | Role_assertion (a, r, b') ->
          buf_add b "ObjectPropertyAssertion(";
          write_role b r;
          buf_add b (Printf.sprintf " :%s :%s)" a b')
      | Data_assertion (a, u, v) ->
          buf_add b (Printf.sprintf "DataPropertyAssertion(:%s :%s " u a);
          write_literal b v;
          buf_add b ")"
      | Same (a, b') -> buf_add b (Printf.sprintf "SameIndividual(:%s :%s)" a b')
      | Different (a, b') ->
          buf_add b (Printf.sprintf "DifferentIndividuals(:%s :%s)" a b'));
      buf_add b "\n")
    kb.abox;
  buf_add b ")\n";
  Buffer.contents b
