(** Reader and writer for (a subset of) the OWL 2 functional-style syntax,
    covering the OWL DL constructs that map onto [SHOIN(D)] (Table 1 of the
    paper).

    Supported axioms: [SubClassOf], [EquivalentClasses], [DisjointClasses],
    [SubObjectPropertyOf], [TransitiveObjectProperty],
    [SubDataPropertyOf], [ClassAssertion], [ObjectPropertyAssertion],
    [NegativeObjectPropertyAssertion] (encoded as [a : ∀R.¬{b}]),
    [DataPropertyAssertion], [SameIndividual], [DifferentIndividuals];
    [Declaration]s and [Prefix]/[Import] lines are accepted and ignored.

    Class expressions: [owl:Thing], [owl:Nothing],
    [ObjectIntersectionOf], [ObjectUnionOf], [ObjectComplementOf],
    [ObjectOneOf], [ObjectSomeValuesFrom], [ObjectAllValuesFrom],
    [ObjectMinCardinality], [ObjectMaxCardinality],
    [ObjectExactCardinality], [ObjectHasValue] (as [∃R.{a}]),
    [ObjectInverseOf]; data ranges: [xsd:integer], [xsd:string],
    [xsd:boolean], [rdfs:Literal], [DataOneOf], [DataComplementOf] and
    [DatatypeRestriction] with [xsd:minInclusive]/[xsd:maxInclusive]
    facets; literals ["lex"^^xsd:type] (plain strings default to
    [xsd:string]).

    Entity IRIs keep their prefixed form verbatim ([:A] is read as the name
    [A]; [pre:A] stays [pre:A]); full IRIs in angle brackets are reduced to
    their fragment.  The writer emits the same subset, so ontologies
    round-trip. *)

type error = { message : string; offset : int }

val pp_error : Format.formatter -> error -> unit

val parse_ontology : string -> (Axiom.kb, error) result
(** Accepts either a bare sequence of axioms or an
    [Ontology(<iri> … )] wrapper (with optional [Prefix] declarations
    before it). *)

val parse_ontology_exn : string -> Axiom.kb

val to_functional : ?ontology_iri:string -> Axiom.kb -> string
(** Serialize as a functional-syntax document (with [Ontology(...)]
    wrapper). *)
