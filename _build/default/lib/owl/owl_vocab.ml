let thing = Concept.Top
let nothing = Concept.Bottom
let owl_class name = Concept.Atom name
let object_property name = Role.name name
let inverse_of = Role.inv

let object_intersection_of = Concept.conj
let object_union_of = Concept.disj
let object_complement_of = Concept.neg
let object_one_of os = Concept.One_of os
let object_some_values_from r c = Concept.Exists (r, c)
let object_all_values_from r c = Concept.Forall (r, c)
let object_min_cardinality n r = Concept.At_least (n, r)
let object_max_cardinality n r = Concept.At_most (n, r)

let object_exact_cardinality n r =
  Concept.And (Concept.At_least (n, r), Concept.At_most (n, r))

let data_some_values_from u d = Concept.Data_exists (u, d)
let data_all_values_from u d = Concept.Data_forall (u, d)
let data_min_cardinality n u = Concept.Data_at_least (n, u)
let data_max_cardinality n u = Concept.Data_at_most (n, u)

let sub_class_of c d = Axiom.Concept_sub (c, d)
let equivalent_classes = Axiom.concept_equiv
let disjoint_classes = Axiom.disjoint
let sub_object_property_of r s = Axiom.Role_sub (r, s)
let transitive_object_property r = Axiom.Transitive r

let class_assertion c a = Axiom.Instance_of (a, c)
let object_property_assertion r a b = Axiom.Role_assertion (a, r, b)

let negative_object_property_assertion r a b =
  Axiom.Instance_of (a, Concept.Forall (r, Concept.Not (Concept.One_of [ b ])))

let data_property_assertion u a v = Axiom.Data_assertion (a, u, v)
let same_individual a b = Axiom.Same (a, b)
let different_individuals a b = Axiom.Different (a, b)
