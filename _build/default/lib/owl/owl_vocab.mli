(** OWL-flavoured constructors — a thin sugar layer mapping the OWL abstract
    syntax (functional-style names) onto the [SHOIN(D)] AST, for users coming
    from OWL tooling.  Purely syntactic; see the OWL-to-[SHOIN(D)]
    correspondence in Table 1 of the paper. *)

val thing : Concept.t                     (* owl:Thing *)
val nothing : Concept.t                   (* owl:Nothing *)

val owl_class : string -> Concept.t
val object_property : string -> Role.t
val inverse_of : Role.t -> Role.t

val object_intersection_of : Concept.t list -> Concept.t
val object_union_of : Concept.t list -> Concept.t
val object_complement_of : Concept.t -> Concept.t
val object_one_of : string list -> Concept.t
val object_some_values_from : Role.t -> Concept.t -> Concept.t
val object_all_values_from : Role.t -> Concept.t -> Concept.t
val object_min_cardinality : int -> Role.t -> Concept.t
val object_max_cardinality : int -> Role.t -> Concept.t

val object_exact_cardinality : int -> Role.t -> Concept.t
(** [≥n.R ⊓ ≤n.R]. *)

val data_some_values_from : string -> Datatype.t -> Concept.t
val data_all_values_from : string -> Datatype.t -> Concept.t
val data_min_cardinality : int -> string -> Concept.t
val data_max_cardinality : int -> string -> Concept.t

val sub_class_of : Concept.t -> Concept.t -> Axiom.tbox_axiom
val equivalent_classes : Concept.t -> Concept.t -> Axiom.tbox_axiom list
val disjoint_classes : Concept.t -> Concept.t -> Axiom.tbox_axiom
val sub_object_property_of : Role.t -> Role.t -> Axiom.tbox_axiom
val transitive_object_property : string -> Axiom.tbox_axiom

val class_assertion : Concept.t -> string -> Axiom.abox_axiom
val object_property_assertion : Role.t -> string -> string -> Axiom.abox_axiom
val negative_object_property_assertion :
  Role.t -> string -> string -> Axiom.abox_axiom
(** Encoded as [a : ∀R.¬{b}] per the usual OWL-DL reduction. *)

val data_property_assertion : string -> string -> Datatype.value -> Axiom.abox_axiom
val same_individual : string -> string -> Axiom.abox_axiom
val different_individuals : string -> string -> Axiom.abox_axiom
