lib/parser/surface.ml: Array Axiom Concept Datatype Format Kb4 List Role Surface_lexer
