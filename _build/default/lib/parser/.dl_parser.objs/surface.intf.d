lib/parser/surface.mli: Axiom Concept Format Kb4
