lib/parser/surface_lexer.ml: Array Buffer Format List Printf String
