lib/parser/surface_lexer.mli: Format
