open Surface_lexer

type error = { message : string; offset : int }

let pp_error ppf e =
  Format.fprintf ppf "parse error at offset %d: %s" e.offset e.message

exception Parse_error of string * int

type mode = Four_valued | Classical

type stream = { toks : (token * int) array; mutable pos : int }

let peek s = fst s.toks.(s.pos)
let peek2 s = if s.pos + 1 < Array.length s.toks then fst s.toks.(s.pos + 1) else EOF
let offset s = snd s.toks.(s.pos)
let advance s = s.pos <- s.pos + 1

let fail s msg = raise (Parse_error (msg, offset s))

let expect s tok what =
  if peek s = tok then advance s
  else
    fail s
      (Format.asprintf "expected %s but found %a" what pp_token (peek s))

let ident s =
  match peek s with
  | IDENT x ->
      advance s;
      x
  | t -> fail s (Format.asprintf "expected an identifier, found %a" pp_token t)

let parse_role s =
  let name = ident s in
  if peek s = INVSUF then begin
    advance s;
    Role.Inv name
  end
  else Role.Name name

let parse_value s =
  match peek s with
  | INT n ->
      advance s;
      Datatype.Int n
  | STRING str ->
      advance s;
      Datatype.Str str
  | KW_TRUE ->
      advance s;
      Datatype.Bool true
  | KW_FALSE ->
      advance s;
      Datatype.Bool false
  | t -> fail s (Format.asprintf "expected a data value, found %a" pp_token t)

let parse_bound s =
  match peek s with
  | STAR ->
      advance s;
      None
  | INT n ->
      advance s;
      Some n
  | t -> fail s (Format.asprintf "expected an integer or '*', found %a" pp_token t)

let rec parse_datatype s : Datatype.t =
  match peek s with
  | KW_INTEGER ->
      advance s;
      Datatype.Int_type
  | KW_STRING ->
      advance s;
      Datatype.String_type
  | KW_BOOLEAN ->
      advance s;
      Datatype.Bool_type
  | KW_ANYVALUE ->
      advance s;
      Datatype.Top_data
  | KW_NOVALUE ->
      advance s;
      Datatype.Bottom_data
  | KW_INT ->
      advance s;
      expect s LBRACKET "'['";
      let lo = parse_bound s in
      expect s DOTDOT "'..'";
      let hi = parse_bound s in
      expect s RBRACKET "']'";
      Datatype.Int_range (lo, hi)
  | LBRACE ->
      advance s;
      let rec values acc =
        let v = parse_value s in
        if peek s = COMMA then begin
          advance s;
          values (v :: acc)
        end
        else List.rev (v :: acc)
      in
      let vs = if peek s = RBRACE then [] else values [] in
      expect s RBRACE "'}'";
      Datatype.One_of vs
  | KW_NOT ->
      advance s;
      expect s LPAREN "'('";
      let d = parse_datatype s in
      expect s RPAREN "')'";
      Datatype.Complement d
  | t -> fail s (Format.asprintf "expected a datatype, found %a" pp_token t)

(* Quantifier body after 'some'/'only': either an object role followed by
   '.' and a concept, or a data role followed by ':' and a datatype. *)
let rec parse_quantified s ~exists =
  let name = ident s in
  match peek s with
  | COLON ->
      advance s;
      let d = parse_datatype s in
      if exists then Concept.Data_exists (name, d)
      else Concept.Data_forall (name, d)
  | INVSUF | DOT ->
      let role =
        if peek s = INVSUF then begin
          advance s;
          Role.Inv name
        end
        else Role.Name name
      in
      expect s DOT "'.'";
      let c = parse_unary s in
      if exists then Concept.Exists (role, c) else Concept.Forall (role, c)
  | t ->
      fail s (Format.asprintf "expected '.', ':' or '^-' after role, found %a" pp_token t)

and parse_counting s ~at_least =
  let n =
    match peek s with
    | INT n when n >= 0 ->
        advance s;
        n
    | t -> fail s (Format.asprintf "expected a cardinality, found %a" pp_token t)
  in
  match peek s with
  | KW_DATA ->
      advance s;
      let u = ident s in
      if at_least then Concept.Data_at_least (n, u) else Concept.Data_at_most (n, u)
  | _ ->
      let r = parse_role s in
      if at_least then Concept.At_least (n, r) else Concept.At_most (n, r)

and parse_unary s : Concept.t =
  match peek s with
  | TILDE ->
      advance s;
      Concept.Not (parse_unary s)
  | KW_TOP ->
      advance s;
      Concept.Top
  | KW_BOTTOM ->
      advance s;
      Concept.Bottom
  | KW_SOME ->
      advance s;
      parse_quantified s ~exists:true
  | KW_ONLY ->
      advance s;
      parse_quantified s ~exists:false
  | GEQ ->
      advance s;
      parse_counting s ~at_least:true
  | LEQ ->
      advance s;
      parse_counting s ~at_least:false
  | LBRACE ->
      advance s;
      let rec individuals acc =
        let o = ident s in
        if peek s = COMMA then begin
          advance s;
          individuals (o :: acc)
        end
        else List.rev (o :: acc)
      in
      let os = individuals [] in
      expect s RBRACE "'}'";
      Concept.One_of os
  | LPAREN ->
      advance s;
      let c = parse_concept_expr s in
      expect s RPAREN "')'";
      c
  | IDENT a ->
      advance s;
      Concept.Atom a
  | t -> fail s (Format.asprintf "expected a concept, found %a" pp_token t)

and parse_conj s =
  let c = parse_unary s in
  if peek s = AMP then begin
    advance s;
    let rec go acc =
      let d = parse_unary s in
      let acc = Concept.And (acc, d) in
      if peek s = AMP then begin
        advance s;
        go acc
      end
      else acc
    in
    go c
  end
  else c

and parse_concept_expr s =
  let c = parse_conj s in
  if peek s = PIPE then begin
    advance s;
    let rec go acc =
      let d = parse_conj s in
      let acc = Concept.Or (acc, d) in
      if peek s = PIPE then begin
        advance s;
        go acc
      end
      else acc
    in
    go c
  end
  else c

(* ------------------------------------------------------------------ *)
(* Statements *)

type statement =
  | S_tbox4 of Kb4.tbox_axiom
  | S_tbox of Axiom.tbox_axiom
  | S_abox of Axiom.abox_axiom

let inclusion_kind s mode =
  match (mode, peek s) with
  | Four_valued, LT ->
      advance s;
      `Kind Kb4.Internal
  | Four_valued, MATERIAL ->
      advance s;
      `Kind Kb4.Material
  | Four_valued, STRONG ->
      advance s;
      `Kind Kb4.Strong
  | Classical, SUBSUMED ->
      advance s;
      `Classical
  | Four_valued, t ->
      fail s
        (Format.asprintf "expected an inclusion ('<', '|->', '->'), found %a"
           pp_token t)
  | Classical, t ->
      fail s (Format.asprintf "expected '<<', found %a" pp_token t)

let parse_statement s mode : statement =
  match (peek s, peek2 s) with
  | KW_TRANSITIVE, _ ->
      advance s;
      let r = ident s in
      expect s DOT "'.'";
      if mode = Classical then S_tbox (Axiom.Transitive r)
      else S_tbox4 (Kb4.Transitive r)
  | KW_ROLE, _ -> (
      advance s;
      let r1 = parse_role s in
      match inclusion_kind s mode with
      | `Kind k ->
          let r2 = parse_role s in
          expect s DOT "'.'";
          S_tbox4 (Kb4.Role_inclusion (k, r1, r2))
      | `Classical ->
          let r2 = parse_role s in
          expect s DOT "'.'";
          S_tbox (Axiom.Role_sub (r1, r2)))
  | KW_DATAROLE, _ -> (
      advance s;
      let u1 = ident s in
      match inclusion_kind s mode with
      | `Kind k ->
          let u2 = ident s in
          expect s DOT "'.'";
          S_tbox4 (Kb4.Data_role_inclusion (k, u1, u2))
      | `Classical ->
          let u2 = ident s in
          expect s DOT "'.'";
          S_tbox (Axiom.Data_role_sub (u1, u2)))
  | IDENT a, COLON ->
      advance s;
      advance s;
      let c = parse_concept_expr s in
      expect s DOT "'.'";
      S_abox (Axiom.Instance_of (a, c))
  | IDENT a, EQUALS ->
      advance s;
      advance s;
      let b = ident s in
      expect s DOT "'.'";
      S_abox (Axiom.Same (a, b))
  | IDENT a, NEQ ->
      advance s;
      advance s;
      let b = ident s in
      expect s DOT "'.'";
      S_abox (Axiom.Different (a, b))
  | IDENT name, LPAREN | IDENT name, INVSUF ->
      let r = parse_role s in
      expect s LPAREN "'('";
      let a = ident s in
      expect s COMMA "','";
      let ax =
        match peek s with
        | IDENT b ->
            advance s;
            Axiom.Role_assertion (a, r, b)
        | INT _ | STRING _ | KW_TRUE | KW_FALSE ->
            let v = parse_value s in
            if Role.is_inverse r then
              fail s "data roles have no inverses"
            else Axiom.Data_assertion (a, name, v)
        | t ->
            fail s
              (Format.asprintf "expected an individual or data value, found %a"
                 pp_token t)
      in
      expect s RPAREN "')'";
      expect s DOT "'.'";
      S_abox ax
  | _ -> (
      let c1 = parse_concept_expr s in
      match inclusion_kind s mode with
      | `Kind k ->
          let c2 = parse_concept_expr s in
          expect s DOT "'.'";
          S_tbox4 (Kb4.Concept_inclusion (k, c1, c2))
      | `Classical ->
          let c2 = parse_concept_expr s in
          expect s DOT "'.'";
          S_tbox (Axiom.Concept_sub (c1, c2)))

let parse_statements src mode =
  let s = { toks = tokenize src; pos = 0 } in
  let rec go acc =
    if peek s = EOF then List.rev acc else go (parse_statement s mode :: acc)
  in
  go []

let wrap f src =
  match f src with
  | v -> Ok v
  | exception Parse_error (message, offset) -> Error { message; offset }
  | exception Lex_error (message, offset) -> Error { message; offset }

let parse_kb4 =
  wrap (fun src ->
      let stmts = parse_statements src Four_valued in
      List.fold_left
        (fun kb -> function
          | S_tbox4 ax -> Kb4.add_tbox kb ax
          | S_abox ax -> Kb4.add_abox kb ax
          | S_tbox _ -> assert false)
        Kb4.empty stmts)

let parse_kb =
  wrap (fun src ->
      let stmts = parse_statements src Classical in
      List.fold_left
        (fun kb -> function
          | S_tbox ax -> Axiom.add_tbox kb ax
          | S_abox ax -> Axiom.add_abox kb ax
          | S_tbox4 _ -> assert false)
        Axiom.empty stmts)

let parse_concept =
  wrap (fun src ->
      let s = { toks = tokenize src; pos = 0 } in
      let c = parse_concept_expr s in
      (match peek s with
      | EOF -> ()
      | DOT when peek2 s = EOF -> ()
      | t -> fail s (Format.asprintf "trailing input: %a" pp_token t));
      c)

let get_exn = function
  | Ok v -> v
  | Error e -> failwith (Format.asprintf "%a" pp_error e)

let parse_kb4_exn src = get_exn (parse_kb4 src)
let parse_kb_exn src = get_exn (parse_kb src)
let parse_concept_exn src = get_exn (parse_concept src)

let kb4_to_string kb = Format.asprintf "%a" Kb4.pp kb
let kb_to_string kb = Format.asprintf "%a" Axiom.pp kb
