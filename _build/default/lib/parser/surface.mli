(** Parser and printer for the dl4 surface syntax.

    A knowledge base is a sequence of statements, each terminated by [.]:

    {v
    # TBox
    Penguin < Bird.                      # internal inclusion (⊏)
    Bird & some hasWing.Wing |-> Fly.    # material inclusion (↦)
    Penguin -> ~Fly.                     # strong inclusion (→)
    C << D.                              # classical inclusion (⊑, classical KBs)
    role r < s.     role r |-> s.        # role inclusions
    datarole u < v.
    transitive r.

    # ABox
    tweety : Penguin & Bird.
    hasWing(tweety, w).
    age(smith, 42).                      # data assertion (value literal)
    a = b.     a != b.
    v}

    Concepts: [Top], [Bottom], atomic names, [~C], [C & D], [C | D],
    [{o1, o2}], [some r.C], [only r.C], [>= 2 r], [<= 1 r^-],
    [some u:int[0..10]], [only u:string], [>= 2 data u].
    Datatypes: [integer], [string], [boolean], [anyValue], [noValue],
    [int[lo..hi]] ([*] = unbounded), [{1, "a", true}], [not(D)].

    Parsers for four-valued KBs ([parse_kb4]; inclusion operators [<],
    [|->], [->]) and classical KBs ([parse_kb]; operator [<<]) are separate
    entry points over the same grammar.  The printers in {!Axiom} / {!Kb4}
    emit exactly this syntax, so printing round-trips. *)

type error = { message : string; offset : int }

val pp_error : Format.formatter -> error -> unit

val parse_kb4 : string -> (Kb4.t, error) result
val parse_kb : string -> (Axiom.kb, error) result
val parse_concept : string -> (Concept.t, error) result

val parse_kb4_exn : string -> Kb4.t
(** @raise Failure with a rendered error. *)

val parse_kb_exn : string -> Axiom.kb
val parse_concept_exn : string -> Concept.t

val kb4_to_string : Kb4.t -> string
val kb_to_string : Axiom.kb -> string
