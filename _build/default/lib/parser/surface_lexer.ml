type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | DOT
  | DOTDOT
  | COMMA
  | COLON
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | AMP
  | PIPE
  | TILDE
  | STAR
  | GEQ
  | LEQ
  | LT
  | SUBSUMED
  | MATERIAL
  | STRONG
  | EQUALS
  | NEQ
  | INVSUF
  | KW_SOME
  | KW_ONLY
  | KW_NOT
  | KW_TOP
  | KW_BOTTOM
  | KW_TRANSITIVE
  | KW_ROLE
  | KW_DATAROLE
  | KW_DATA
  | KW_INT
  | KW_INTEGER
  | KW_STRING
  | KW_BOOLEAN
  | KW_ANYVALUE
  | KW_NOVALUE
  | KW_TRUE
  | KW_FALSE
  | EOF

exception Lex_error of string * int

let keyword = function
  | "some" -> Some KW_SOME
  | "only" -> Some KW_ONLY
  | "not" -> Some KW_NOT
  | "Top" -> Some KW_TOP
  | "Bottom" -> Some KW_BOTTOM
  | "transitive" -> Some KW_TRANSITIVE
  | "role" -> Some KW_ROLE
  | "datarole" -> Some KW_DATAROLE
  | "data" -> Some KW_DATA
  | "int" -> Some KW_INT
  | "integer" -> Some KW_INTEGER
  | "string" -> Some KW_STRING
  | "boolean" -> Some KW_BOOLEAN
  | "anyValue" -> Some KW_ANYVALUE
  | "noValue" -> Some KW_NOVALUE
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit t pos = toks := (t, pos) :: !toks in
  let peek i = if i < n then Some src.[i] else None in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      (* absorb one trailing mangling mark if directly attached and not the
         start of an operator or another word *)
      (match peek !j with
      | Some ('+' | '-' | '=') ->
          let mark = src.[!j] in
          let after = peek (!j + 1) in
          let blocks =
            match (mark, after) with
            | '-', Some '>' -> true (* A-> is A STRONG *)
            | _, Some c when is_ident_char c -> true (* a=b, a-b *)
            | _ -> false
          in
          if not blocks then incr j
      | _ -> ());
      let word = String.sub src !i (!j - !i) in
      (match keyword word with
      | Some kw -> emit kw start
      | None -> emit (IDENT word) start);
      i := !j
    end
    else if is_digit c || (c = '-' && (match peek (!i + 1) with Some d -> is_digit d | None -> false)) then begin
      let j = ref (!i + 1) in
      while !j < n && is_digit src.[!j] do
        incr j
      done;
      emit (INT (int_of_string (String.sub src !i (!j - !i)))) start;
      i := !j
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      let j = ref (!i + 1) in
      let closed = ref false in
      while (not !closed) && !j < n do
        (match src.[!j] with
        | '"' -> closed := true
        | '\\' when !j + 1 < n ->
            incr j;
            (* the printer emits OCaml-style escapes (%S) *)
            Buffer.add_char buf
              (match src.[!j] with
              | 'n' -> '\n'
              | 't' -> '\t'
              | 'r' -> '\r'
              | c -> c)
        | ch -> Buffer.add_char buf ch);
        incr j
      done;
      if not !closed then raise (Lex_error ("unterminated string", start));
      emit (STRING (Buffer.contents buf)) start;
      i := !j
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      let three = if !i + 2 < n then String.sub src !i 3 else "" in
      let adv t k =
        emit t start;
        i := !i + k
      in
      match c with
      | '.' -> if two = ".." then adv DOTDOT 2 else adv DOT 1
      | ',' -> adv COMMA 1
      | ':' -> adv COLON 1
      | '(' -> adv LPAREN 1
      | ')' -> adv RPAREN 1
      | '{' -> adv LBRACE 1
      | '}' -> adv RBRACE 1
      | '[' -> adv LBRACKET 1
      | ']' -> adv RBRACKET 1
      | '&' -> adv AMP 1
      | '~' -> adv TILDE 1
      | '*' -> adv STAR 1
      | '|' -> if three = "|->" then adv MATERIAL 3 else adv PIPE 1
      | '>' ->
          if two = ">=" then adv GEQ 2
          else raise (Lex_error ("unexpected '>'", start))
      | '<' ->
          if two = "<<" then adv SUBSUMED 2
          else if two = "<=" then adv LEQ 2
          else adv LT 1
      | '-' ->
          if two = "->" then adv STRONG 2
          else raise (Lex_error ("unexpected '-'", start))
      | '=' -> adv EQUALS 1
      | '!' ->
          if two = "!=" then adv NEQ 2
          else raise (Lex_error ("unexpected '!'", start))
      | '^' ->
          if two = "^-" then adv INVSUF 2
          else raise (Lex_error ("unexpected '^'", start))
      | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, start))
    end
  done;
  emit EOF n;
  Array.of_list (List.rev !toks)

let pp_token ppf t =
  let s =
    match t with
    | IDENT s -> Printf.sprintf "identifier %S" s
    | INT n -> Printf.sprintf "integer %d" n
    | STRING s -> Printf.sprintf "string %S" s
    | DOT -> "'.'"
    | DOTDOT -> "'..'"
    | COMMA -> "','"
    | COLON -> "':'"
    | LPAREN -> "'('"
    | RPAREN -> "')'"
    | LBRACE -> "'{'"
    | RBRACE -> "'}'"
    | LBRACKET -> "'['"
    | RBRACKET -> "']'"
    | AMP -> "'&'"
    | PIPE -> "'|'"
    | TILDE -> "'~'"
    | STAR -> "'*'"
    | GEQ -> "'>='"
    | LEQ -> "'<='"
    | LT -> "'<'"
    | SUBSUMED -> "'<<'"
    | MATERIAL -> "'|->'"
    | STRONG -> "'->'"
    | EQUALS -> "'='"
    | NEQ -> "'!='"
    | INVSUF -> "'^-'"
    | KW_SOME -> "'some'"
    | KW_ONLY -> "'only'"
    | KW_NOT -> "'not'"
    | KW_TOP -> "'Top'"
    | KW_BOTTOM -> "'Bottom'"
    | KW_TRANSITIVE -> "'transitive'"
    | KW_ROLE -> "'role'"
    | KW_DATAROLE -> "'datarole'"
    | KW_DATA -> "'data'"
    | KW_INT -> "'int'"
    | KW_INTEGER -> "'integer'"
    | KW_STRING -> "'string'"
    | KW_BOOLEAN -> "'boolean'"
    | KW_ANYVALUE -> "'anyValue'"
    | KW_NOVALUE -> "'noValue'"
    | KW_TRUE -> "'true'"
    | KW_FALSE -> "'false'"
    | EOF -> "end of input"
  in
  Format.pp_print_string ppf s
