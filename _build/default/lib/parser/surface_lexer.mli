(** Lexer for the dl4 surface syntax (see {!Surface} for the grammar).

    Identifiers are [[A-Za-z_][A-Za-z0-9_]*], optionally absorbing one
    trailing [+], [-] or [=] when it is immediately attached and not part of
    an operator — this lets the printed, name-mangled output of the
    transformation ([Bird-], [hasWing+], [hasChild=]) be parsed back. *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | DOT            (* . *)
  | DOTDOT         (* .. *)
  | COMMA
  | COLON
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | AMP            (* & *)
  | PIPE           (* | *)
  | TILDE          (* ~ *)
  | STAR           (* * *)
  | GEQ            (* >= *)
  | LEQ            (* <= *)
  | LT             (* <  : internal inclusion *)
  | SUBSUMED       (* << : classical inclusion *)
  | MATERIAL       (* |-> *)
  | STRONG         (* -> *)
  | EQUALS         (* = *)
  | NEQ            (* != *)
  | INVSUF         (* ^- : role inverse suffix *)
  | KW_SOME
  | KW_ONLY
  | KW_NOT
  | KW_TOP
  | KW_BOTTOM
  | KW_TRANSITIVE
  | KW_ROLE
  | KW_DATAROLE
  | KW_DATA
  | KW_INT         (* int[lo..hi] *)
  | KW_INTEGER
  | KW_STRING
  | KW_BOOLEAN
  | KW_ANYVALUE
  | KW_NOVALUE
  | KW_TRUE
  | KW_FALSE
  | EOF

exception Lex_error of string * int
(** Message and (0-based) character offset. *)

val tokenize : string -> (token * int) array
(** All tokens with their start offsets, ending with [EOF].
    Comments run from [#] to end of line.
    @raise Lex_error on an unexpected character. *)

val pp_token : Format.formatter -> token -> unit
