lib/semantics/enum.ml: Axiom Datatype ESet Interp Interp4 Kb4 List Seq
