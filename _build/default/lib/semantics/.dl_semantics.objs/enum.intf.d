lib/semantics/enum.mli: Axiom Datatype Interp Interp4 Kb4 Seq
