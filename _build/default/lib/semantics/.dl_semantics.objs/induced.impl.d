lib/semantics/induced.ml: Axiom ESet Interp Interp4 List Mangle PSet Role SMap VSet
