lib/semantics/induced.mli: Axiom Interp Interp4
