lib/semantics/interp.ml: Axiom Concept Datatype Format Int List Map Role Set String
