lib/semantics/interp.mli: Axiom Concept Datatype Format Map Role Set
