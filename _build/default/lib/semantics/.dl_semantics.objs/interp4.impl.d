lib/semantics/interp4.ml: Axiom Concept Datatype ESet Format Interp Kb4 List PSet Role SMap Truth VSet
