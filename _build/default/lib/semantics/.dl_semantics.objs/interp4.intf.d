lib/semantics/interp4.mli: Axiom Concept Datatype Format Interp Kb4 Role Truth
