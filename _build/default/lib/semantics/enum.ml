open Interp

let rec subsets = function
  | [] -> Seq.return []
  | x :: rest ->
      Seq.concat_map
        (fun s -> List.to_seq [ s; x :: s ])
        (subsets rest)

(* All assignments of one value drawn from [choices k] to every key. *)
let rec assignments keys choices =
  match keys with
  | [] -> Seq.return []
  | k :: rest ->
      Seq.concat_map
        (fun tail -> Seq.map (fun v -> (k, v) :: tail) (choices k))
        (assignments rest choices)

let pinned_domain ~(signature : Axiom.signature) ~extra =
  let n = List.length signature.individuals + extra in
  let n = max n 1 in
  let elements = List.init n (fun i -> i) in
  let individuals = List.mapi (fun i a -> (a, i)) signature.individuals in
  (elements, individuals)

let interps4 ~(signature : Axiom.signature) ?(extra = 0) ?(data_domain = []) () =
  let elements, individuals = pinned_domain ~signature ~extra in
  let pairs = List.concat_map (fun x -> List.map (fun y -> (x, y)) elements) elements in
  let data_pairs =
    List.concat_map (fun x -> List.map (fun v -> (x, v)) data_domain) elements
  in
  let cexts _ =
    Seq.concat_map
      (fun pos -> Seq.map (fun neg -> (pos, neg)) (subsets elements))
      (subsets elements)
  in
  let rexts _ =
    Seq.concat_map
      (fun pos -> Seq.map (fun neg -> (pos, neg)) (subsets pairs))
      (subsets pairs)
  in
  let dexts _ =
    Seq.concat_map
      (fun pos -> Seq.map (fun neg -> (pos, neg)) (subsets data_pairs))
      (subsets data_pairs)
  in
  Seq.concat_map
    (fun concept_assign ->
      Seq.concat_map
        (fun role_assign ->
          Seq.map
            (fun data_assign ->
              Interp4.make
                ~domain:(ESet.of_list elements)
                ~data_domain
                ~concepts:
                  (List.map (fun (a, (p, n)) -> (a, p, n)) concept_assign)
                ~roles:(List.map (fun (r, (p, n)) -> (r, p, n)) role_assign)
                ~data_roles:
                  (List.map (fun (u, (p, n)) -> (u, p, n)) data_assign)
                ~individuals ())
            (assignments signature.data_roles dexts))
        (assignments signature.roles rexts))
    (assignments signature.concepts cexts)

let interps2 ~(signature : Axiom.signature) ?(extra = 0) ?(data_domain = []) () =
  let elements, individuals = pinned_domain ~signature ~extra in
  let pairs = List.concat_map (fun x -> List.map (fun y -> (x, y)) elements) elements in
  let data_pairs =
    List.concat_map (fun x -> List.map (fun v -> (x, v)) data_domain) elements
  in
  let cexts _ = subsets elements in
  let rexts _ = subsets pairs in
  let dexts _ = subsets data_pairs in
  Seq.concat_map
    (fun concept_assign ->
      Seq.concat_map
        (fun role_assign ->
          Seq.map
            (fun data_assign ->
              Interp.make
                ~domain:(ESet.of_list elements)
                ~data_domain ~concepts:concept_assign ~roles:role_assign
                ~data_roles:data_assign ~individuals ())
            (assignments signature.data_roles dexts))
        (assignments signature.roles rexts))
    (assignments signature.concepts cexts)

let kb_data_values abox =
  List.filter_map
    (function Axiom.Data_assertion (_, _, v) -> Some v | _ -> None)
    abox
  |> List.sort_uniq Datatype.compare_value

let models4 ?(extra = 0) (kb : Kb4.t) =
  let signature = Kb4.signature kb in
  let data_domain = kb_data_values kb.abox in
  Seq.filter
    (fun i -> Interp4.is_model i kb)
    (interps4 ~signature ~extra ~data_domain ())

let models2 ?(extra = 0) (kb : Axiom.kb) =
  let signature = Axiom.signature kb in
  let data_domain = kb_data_values kb.abox in
  Seq.filter
    (fun i -> Interp.is_model i kb)
    (interps2 ~signature ~extra ~data_domain ())

let for_all_models4 ?(extra = 0) kb p = Seq.for_all p (models4 ~extra kb)
let exists_model4 ?(extra = 0) kb = not (Seq.is_empty (models4 ~extra kb))
let exists_model2 ?(extra = 0) kb = not (Seq.is_empty (models2 ~extra kb))
