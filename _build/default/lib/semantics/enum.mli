(** Exhaustive enumeration of (four-valued and classical) interpretations
    over small finite domains.

    This is the executable counterpart of "for every model of K" in the
    paper's examples: it regenerates the model lists of Examples 1–4
    (including Table 4) and serves as a slow oracle in differential tests of
    the tableau and of the transformation.

    Individuals are pinned to distinct domain elements (0, 1, …, in the order
    of the signature), matching how the paper's examples read their models;
    [extra] adds that many anonymous elements.  The number of interpretations
    is astronomically large for non-toy signatures — use [Seq.take] or
    find-first style consumption. *)

val subsets : 'a list -> 'a list Seq.t
(** All [2^n] subsets. *)

val interps4 :
  signature:Axiom.signature ->
  ?extra:int ->
  ?data_domain:Datatype.value list ->
  unit ->
  Interp4.t Seq.t
(** All four-valued interpretations of the signature over the pinned
    domain. *)

val interps2 :
  signature:Axiom.signature ->
  ?extra:int ->
  ?data_domain:Datatype.value list ->
  unit ->
  Interp.t Seq.t

val models4 : ?extra:int -> Kb4.t -> Interp4.t Seq.t
(** Four-valued models of the KB among [interps4] (the data domain defaults
    to the data values occurring in the KB). *)

val models2 : ?extra:int -> Axiom.kb -> Interp.t Seq.t

val for_all_models4 : ?extra:int -> Kb4.t -> (Interp4.t -> bool) -> bool
(** Does the property hold in every enumerated four-valued model?  With the
    enumeration bound this is a sound refutation procedure and (on the
    paper's examples) an exact one. *)

val exists_model4 : ?extra:int -> Kb4.t -> bool
val exists_model2 : ?extra:int -> Axiom.kb -> bool

val kb_data_values : Axiom.abox_axiom list -> Datatype.value list
(** Data values asserted in an ABox (the default finite datatype domain). *)
