open Interp

let all_pairs domain =
  ESet.fold
    (fun x acc -> ESet.fold (fun y acc -> PSet.add (x, y) acc) domain acc)
    domain PSet.empty

let all_data_pairs domain data_domain =
  ESet.fold
    (fun x acc ->
      List.fold_left (fun acc v -> VSet.add (x, v) acc) acc data_domain)
    domain VSet.empty

let classical_of_four (i : Interp4.t) : Interp.t =
  let concepts =
    SMap.fold
      (fun a (e : Interp4.cext) m ->
        m
        |> SMap.add (Mangle.pos_atom a) e.cpos
        |> SMap.add (Mangle.neg_atom a) e.cneg)
      i.concepts SMap.empty
  in
  let univ = all_pairs i.domain in
  let roles =
    SMap.fold
      (fun r (e : Interp4.rext) m ->
        m
        |> SMap.add (Mangle.plus_role r) e.rpos
        |> SMap.add (Mangle.eq_role r) (PSet.diff univ e.rneg))
      i.roles SMap.empty
  in
  let data_univ = all_data_pairs i.domain i.data_domain in
  let data_roles =
    SMap.fold
      (fun u (e : Interp4.dext) m ->
        m
        |> SMap.add (Mangle.plus_role u) e.dpos
        |> SMap.add (Mangle.eq_role u) (VSet.diff data_univ e.dneg))
      i.data_roles SMap.empty
  in
  { domain = i.domain;
    data_domain = i.data_domain;
    concepts;
    roles;
    data_roles;
    individuals = i.individuals }

let four_of_classical ~(signature : Axiom.signature) (i : Interp.t) : Interp4.t =
  let concepts =
    List.fold_left
      (fun m a ->
        SMap.add a
          { Interp4.cpos = concept_ext i (Mangle.pos_atom a);
            cneg = concept_ext i (Mangle.neg_atom a) }
          m)
      SMap.empty signature.concepts
  in
  let univ = all_pairs i.domain in
  let roles =
    List.fold_left
      (fun m r ->
        SMap.add r
          { Interp4.rpos = role_ext i (Role.Name (Mangle.plus_role r));
            rneg = PSet.diff univ (role_ext i (Role.Name (Mangle.eq_role r))) }
          m)
      SMap.empty signature.roles
  in
  let data_univ = all_data_pairs i.domain i.data_domain in
  let data_roles =
    List.fold_left
      (fun m u ->
        SMap.add u
          { Interp4.dpos = data_role_ext i (Mangle.plus_role u);
            dneg = VSet.diff data_univ (data_role_ext i (Mangle.eq_role u)) }
          m)
      SMap.empty signature.data_roles
  in
  { domain = i.domain;
    data_domain = i.data_domain;
    concepts;
    roles;
    data_roles;
    individuals = i.individuals }
