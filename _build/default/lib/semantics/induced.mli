(** Induced interpretations (Definitions 8 and 9).

    [classical_of_four] builds the classical induced interpretation Ī of a
    four-valued interpretation I: same domain and individuals, [A⁺ ↦ P] and
    [A⁻ ↦ Q] for [Aᴵ = <P, Q>], [R⁺ ↦ proj⁺(Rᴵ)] and
    [R⁼ ↦ Δ×Δ \ proj⁻(Rᴵ)] (and likewise for datatype roles over
    [Δ×Δᴰ]).

    [four_of_classical] is the converse of Definition 9: it reads the
    mangled extensions of a classical interpretation back into a four-valued
    interpretation over the given original signature.  The two maps are
    mutually inverse; together with the KB transformation they realize the
    decomposability of [SHOIN(D)4] (Lemma 5 / Theorem 6). *)

val classical_of_four : Interp4.t -> Interp.t

val four_of_classical : signature:Axiom.signature -> Interp.t -> Interp4.t
