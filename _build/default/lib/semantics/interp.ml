module ESet = Set.Make (Int)

module Pair = struct
  type t = int * int

  let compare (a1, b1) (a2, b2) =
    let c = Int.compare a1 a2 in
    if c <> 0 then c else Int.compare b1 b2
end

module PSet = Set.Make (Pair)

module VPair = struct
  type t = int * Datatype.value

  let compare (a1, v1) (a2, v2) =
    let c = Int.compare a1 a2 in
    if c <> 0 then c else Datatype.compare_value v1 v2
end

module VSet = Set.Make (VPair)
module SMap = Map.Make (String)

type t = {
  domain : ESet.t;
  data_domain : Datatype.value list;
  concepts : ESet.t SMap.t;
  roles : PSet.t SMap.t;
  data_roles : VSet.t SMap.t;
  individuals : int SMap.t;
}

let make ~domain ?(data_domain = []) ?(concepts = []) ?(roles = [])
    ?(data_roles = []) ?(individuals = []) () =
  { domain;
    data_domain;
    concepts =
      List.fold_left
        (fun m (a, xs) -> SMap.add a (ESet.of_list xs) m)
        SMap.empty concepts;
    roles =
      List.fold_left
        (fun m (r, ps) -> SMap.add r (PSet.of_list ps) m)
        SMap.empty roles;
    data_roles =
      List.fold_left
        (fun m (u, vs) -> SMap.add u (VSet.of_list vs) m)
        SMap.empty data_roles;
    individuals =
      List.fold_left (fun m (a, x) -> SMap.add a x m) SMap.empty individuals }

let concept_ext i a =
  match SMap.find_opt a i.concepts with Some s -> s | None -> ESet.empty

let atomic_role_ext i r =
  match SMap.find_opt r i.roles with Some s -> s | None -> PSet.empty

let role_ext i = function
  | Role.Name r -> atomic_role_ext i r
  | Role.Inv r -> PSet.map (fun (x, y) -> (y, x)) (atomic_role_ext i r)

let data_role_ext i u =
  match SMap.find_opt u i.data_roles with Some s -> s | None -> VSet.empty

let individual i a = SMap.find a i.individuals

let successors pairs x =
  PSet.fold (fun (a, b) acc -> if a = x then ESet.add b acc else acc) pairs ESet.empty

let data_successors pairs x =
  VSet.fold
    (fun (a, v) acc -> if a = x then v :: acc else acc)
    pairs []

let rec eval i (c : Concept.t) =
  match c with
  | Top -> i.domain
  | Bottom -> ESet.empty
  | Atom a -> concept_ext i a
  | Not c -> ESet.diff i.domain (eval i c)
  | And (a, b) -> ESet.inter (eval i a) (eval i b)
  | Or (a, b) -> ESet.union (eval i a) (eval i b)
  | One_of os -> ESet.of_list (List.map (individual i) os)
  | Exists (r, c) ->
      let pairs = role_ext i r and ext = eval i c in
      ESet.filter
        (fun x -> not (ESet.is_empty (ESet.inter (successors pairs x) ext)))
        i.domain
  | Forall (r, c) ->
      let pairs = role_ext i r and ext = eval i c in
      ESet.filter (fun x -> ESet.subset (successors pairs x) ext) i.domain
  | At_least (n, r) ->
      let pairs = role_ext i r in
      ESet.filter (fun x -> ESet.cardinal (successors pairs x) >= n) i.domain
  | At_most (n, r) ->
      let pairs = role_ext i r in
      ESet.filter (fun x -> ESet.cardinal (successors pairs x) <= n) i.domain
  | Data_exists (u, d) ->
      let pairs = data_role_ext i u in
      ESet.filter
        (fun x -> List.exists (fun v -> Datatype.member v d) (data_successors pairs x))
        i.domain
  | Data_forall (u, d) ->
      let pairs = data_role_ext i u in
      ESet.filter
        (fun x -> List.for_all (fun v -> Datatype.member v d) (data_successors pairs x))
        i.domain
  | Data_at_least (n, u) ->
      let pairs = data_role_ext i u in
      ESet.filter
        (fun x ->
          List.length (List.sort_uniq Datatype.compare_value (data_successors pairs x))
          >= n)
        i.domain
  | Data_at_most (n, u) ->
      let pairs = data_role_ext i u in
      ESet.filter
        (fun x ->
          List.length (List.sort_uniq Datatype.compare_value (data_successors pairs x))
          <= n)
        i.domain

let is_transitive pairs =
  PSet.for_all
    (fun (x, y) ->
      PSet.for_all (fun (y', z) -> y <> y' || PSet.mem (x, z) pairs) pairs)
    pairs

let satisfies_tbox i = function
  | Axiom.Concept_sub (c, d) -> ESet.subset (eval i c) (eval i d)
  | Axiom.Role_sub (r, s) -> PSet.subset (role_ext i r) (role_ext i s)
  | Axiom.Data_role_sub (u, v) -> VSet.subset (data_role_ext i u) (data_role_ext i v)
  | Axiom.Transitive r -> is_transitive (atomic_role_ext i r)

let satisfies_abox i = function
  | Axiom.Instance_of (a, c) -> ESet.mem (individual i a) (eval i c)
  | Axiom.Role_assertion (a, r, b) ->
      PSet.mem (individual i a, individual i b) (role_ext i r)
  | Axiom.Data_assertion (a, u, v) ->
      VSet.mem (individual i a, v) (data_role_ext i u)
  | Axiom.Same (a, b) -> individual i a = individual i b
  | Axiom.Different (a, b) -> individual i a <> individual i b

let is_model i (kb : Axiom.kb) =
  List.for_all (satisfies_tbox i) kb.tbox && List.for_all (satisfies_abox i) kb.abox

let pp ppf i =
  Format.fprintf ppf "@[<v>domain = {%a}@,"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (ESet.elements i.domain);
  SMap.iter
    (fun a ext ->
      Format.fprintf ppf "%s = {%a}@," a
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_int)
        (ESet.elements ext))
    i.concepts;
  SMap.iter
    (fun r ext ->
      Format.fprintf ppf "%s = {%a}@," r
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf (x, y) -> Format.fprintf ppf "(%d,%d)" x y))
        (PSet.elements ext))
    i.roles;
  SMap.iter (fun a x -> Format.fprintf ppf "%s -> %d@," a x) i.individuals;
  Format.fprintf ppf "@]"
