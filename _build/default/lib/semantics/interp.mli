(** Finite two-valued interpretations of [SHOIN(D)] (Table 1 semantics).

    The checker works over an explicit finite object domain (integers) and an
    explicit finite slice of the datatype domain.  It is used as a slow,
    trustworthy oracle for the tableau reasoner on small inputs, and as the
    target of the classical induced interpretation of Definition 8. *)

module ESet : Set.S with type elt = int
(** Sets of domain elements. *)

module PSet : Set.S with type elt = int * int
(** Sets of role edges. *)

module VSet : Set.S with type elt = int * Datatype.value
(** Sets of data-role edges. *)

module SMap : Map.S with type key = string

type t = {
  domain : ESet.t;
  data_domain : Datatype.value list;
      (** the finite slice of Δᴰ the checker quantifies over *)
  concepts : ESet.t SMap.t;      (** atomic concept extensions *)
  roles : PSet.t SMap.t;         (** atomic role extensions *)
  data_roles : VSet.t SMap.t;
  individuals : int SMap.t;      (** aᴵ ∈ Δᴵ *)
}

val make :
  domain:ESet.t ->
  ?data_domain:Datatype.value list ->
  ?concepts:(string * int list) list ->
  ?roles:(string * (int * int) list) list ->
  ?data_roles:(string * (int * Datatype.value) list) list ->
  ?individuals:(string * int) list ->
  unit ->
  t

val concept_ext : t -> string -> ESet.t
val role_ext : t -> Role.t -> PSet.t
(** Extension of a possibly-inverse role ([Inv r] flips the pairs). *)

val data_role_ext : t -> string -> VSet.t
val individual : t -> string -> int
(** @raise Not_found if the interpretation does not name the individual. *)

val eval : t -> Concept.t -> ESet.t
(** The extension [Cᴵ] per Table 1. *)

val satisfies_tbox : t -> Axiom.tbox_axiom -> bool
val satisfies_abox : t -> Axiom.abox_axiom -> bool
val is_model : t -> Axiom.kb -> bool

val pp : Format.formatter -> t -> unit
