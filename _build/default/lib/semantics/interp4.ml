open Interp

type cext = { cpos : ESet.t; cneg : ESet.t }
type rext = { rpos : PSet.t; rneg : PSet.t }
type dext = { dpos : VSet.t; dneg : VSet.t }

type t = {
  domain : ESet.t;
  data_domain : Datatype.value list;
  concepts : cext SMap.t;
  roles : rext SMap.t;
  data_roles : dext SMap.t;
  individuals : int SMap.t;
}

let make ~domain ?(data_domain = []) ?(concepts = []) ?(roles = [])
    ?(data_roles = []) ?(individuals = []) () =
  { domain;
    data_domain;
    concepts =
      List.fold_left
        (fun m (a, pos, neg) ->
          SMap.add a { cpos = ESet.of_list pos; cneg = ESet.of_list neg } m)
        SMap.empty concepts;
    roles =
      List.fold_left
        (fun m (r, pos, neg) ->
          SMap.add r { rpos = PSet.of_list pos; rneg = PSet.of_list neg } m)
        SMap.empty roles;
    data_roles =
      List.fold_left
        (fun m (u, pos, neg) ->
          SMap.add u { dpos = VSet.of_list pos; dneg = VSet.of_list neg } m)
        SMap.empty data_roles;
    individuals =
      List.fold_left (fun m (a, x) -> SMap.add a x m) SMap.empty individuals }

let concept_ext i a =
  match SMap.find_opt a i.concepts with
  | Some e -> e
  | None -> { cpos = ESet.empty; cneg = ESet.empty }

let flip ps = PSet.map (fun (x, y) -> (y, x)) ps

let role_ext i = function
  | Role.Name r -> (
      match SMap.find_opt r i.roles with
      | Some e -> e
      | None -> { rpos = PSet.empty; rneg = PSet.empty })
  | Role.Inv r -> (
      match SMap.find_opt r i.roles with
      | Some e -> { rpos = flip e.rpos; rneg = flip e.rneg }
      | None -> { rpos = PSet.empty; rneg = PSet.empty })

let data_role_ext i u =
  match SMap.find_opt u i.data_roles with
  | Some e -> e
  | None -> { dpos = VSet.empty; dneg = VSet.empty }

let individual i a = SMap.find a i.individuals

let successors pairs x =
  PSet.fold (fun (a, b) acc -> if a = x then ESet.add b acc else acc) pairs ESet.empty

let data_successors pairs x =
  VSet.fold (fun (a, v) acc -> if a = x then v :: acc else acc) pairs []

(* #{y ∈ Δ | (x,y) ∉ neg} — the "not told-absent" successor count used by
   the four-valued number restrictions of Table 2. *)
let non_negated_successor_count domain neg x =
  ESet.cardinal (ESet.filter (fun y -> not (PSet.mem (x, y) neg)) domain)

let non_negated_data_successor_count data_domain dneg x =
  List.length
    (List.filter (fun v -> not (VSet.mem (x, v) dneg)) data_domain)

let rec eval i (c : Concept.t) : cext =
  match c with
  | Top -> { cpos = i.domain; cneg = ESet.empty }
  | Bottom -> { cpos = ESet.empty; cneg = i.domain }
  | Atom a -> concept_ext i a
  | Not c ->
      let e = eval i c in
      { cpos = e.cneg; cneg = e.cpos }
  | And (a, b) ->
      let ea = eval i a and eb = eval i b in
      { cpos = ESet.inter ea.cpos eb.cpos; cneg = ESet.union ea.cneg eb.cneg }
  | Or (a, b) ->
      let ea = eval i a and eb = eval i b in
      { cpos = ESet.union ea.cpos eb.cpos; cneg = ESet.inter ea.cneg eb.cneg }
  | One_of os ->
      { cpos = ESet.of_list (List.map (individual i) os); cneg = ESet.empty }
  | Exists (r, c) ->
      let re = role_ext i r and ce = eval i c in
      let pos =
        ESet.filter
          (fun x -> not (ESet.is_empty (ESet.inter (successors re.rpos x) ce.cpos)))
          i.domain
      and neg =
        ESet.filter
          (fun x -> ESet.subset (successors re.rpos x) ce.cneg)
          i.domain
      in
      { cpos = pos; cneg = neg }
  | Forall (r, c) ->
      let re = role_ext i r and ce = eval i c in
      let pos =
        ESet.filter (fun x -> ESet.subset (successors re.rpos x) ce.cpos) i.domain
      and neg =
        ESet.filter
          (fun x -> not (ESet.is_empty (ESet.inter (successors re.rpos x) ce.cneg)))
          i.domain
      in
      { cpos = pos; cneg = neg }
  | At_least (n, r) ->
      let re = role_ext i r in
      let pos =
        ESet.filter (fun x -> ESet.cardinal (successors re.rpos x) >= n) i.domain
      and neg =
        ESet.filter
          (fun x -> non_negated_successor_count i.domain re.rneg x < n)
          i.domain
      in
      { cpos = pos; cneg = neg }
  | At_most (n, r) ->
      let re = role_ext i r in
      let pos =
        ESet.filter
          (fun x -> non_negated_successor_count i.domain re.rneg x <= n)
          i.domain
      and neg =
        ESet.filter (fun x -> ESet.cardinal (successors re.rpos x) > n) i.domain
      in
      { cpos = pos; cneg = neg }
  | Data_exists (u, d) ->
      let ue = data_role_ext i u in
      let pos =
        ESet.filter
          (fun x ->
            List.exists (fun v -> Datatype.member v d) (data_successors ue.dpos x))
          i.domain
      and neg =
        ESet.filter
          (fun x ->
            List.for_all
              (fun v -> not (Datatype.member v d))
              (data_successors ue.dpos x))
          i.domain
      in
      { cpos = pos; cneg = neg }
  | Data_forall (u, d) ->
      let ue = data_role_ext i u in
      let pos =
        ESet.filter
          (fun x ->
            List.for_all (fun v -> Datatype.member v d) (data_successors ue.dpos x))
          i.domain
      and neg =
        ESet.filter
          (fun x ->
            List.exists
              (fun v -> not (Datatype.member v d))
              (data_successors ue.dpos x))
          i.domain
      in
      { cpos = pos; cneg = neg }
  | Data_at_least (n, u) ->
      let ue = data_role_ext i u in
      let pos =
        ESet.filter
          (fun x ->
            List.length
              (List.sort_uniq Datatype.compare_value (data_successors ue.dpos x))
            >= n)
          i.domain
      and neg =
        ESet.filter
          (fun x -> non_negated_data_successor_count i.data_domain ue.dneg x < n)
          i.domain
      in
      { cpos = pos; cneg = neg }
  | Data_at_most (n, u) ->
      let ue = data_role_ext i u in
      let pos =
        ESet.filter
          (fun x -> non_negated_data_successor_count i.data_domain ue.dneg x <= n)
          i.domain
      and neg =
        ESet.filter
          (fun x ->
            List.length
              (List.sort_uniq Datatype.compare_value (data_successors ue.dpos x))
            > n)
          i.domain
      in
      { cpos = pos; cneg = neg }

let truth_value i c a =
  let e = eval i c and x = individual i a in
  Truth.of_pair ~told_true:(ESet.mem x e.cpos) ~told_false:(ESet.mem x e.cneg)

let role_truth_value i r a b =
  let e = role_ext i r in
  let p = (individual i a, individual i b) in
  Truth.of_pair ~told_true:(PSet.mem p e.rpos) ~told_false:(PSet.mem p e.rneg)

let is_transitive pairs =
  PSet.for_all
    (fun (x, y) ->
      PSet.for_all (fun (y', z) -> y <> y' || PSet.mem (x, z) pairs) pairs)
    pairs

let all_pairs domain =
  ESet.fold
    (fun x acc -> ESet.fold (fun y acc -> PSet.add (x, y) acc) domain acc)
    domain PSet.empty

let all_data_pairs domain data_domain =
  ESet.fold
    (fun x acc ->
      List.fold_left (fun acc v -> VSet.add (x, v) acc) acc data_domain)
    domain VSet.empty

let satisfies_tbox i = function
  | Kb4.Concept_inclusion (kind, c, d) -> (
      let ec = eval i c and ed = eval i d in
      match kind with
      | Kb4.Material -> ESet.subset (ESet.diff i.domain ec.cneg) ed.cpos
      | Kb4.Internal -> ESet.subset ec.cpos ed.cpos
      | Kb4.Strong ->
          ESet.subset ec.cpos ed.cpos && ESet.subset ed.cneg ec.cneg)
  | Kb4.Role_inclusion (kind, r, s) -> (
      let er = role_ext i r and es = role_ext i s in
      match kind with
      | Kb4.Material ->
          PSet.subset (PSet.diff (all_pairs i.domain) er.rneg) es.rpos
      | Kb4.Internal -> PSet.subset er.rpos es.rpos
      | Kb4.Strong -> PSet.subset er.rpos es.rpos && PSet.subset es.rneg er.rneg)
  | Kb4.Data_role_inclusion (kind, u, v) -> (
      let eu = data_role_ext i u and ev = data_role_ext i v in
      match kind with
      | Kb4.Material ->
          VSet.subset
            (VSet.diff (all_data_pairs i.domain i.data_domain) eu.dneg)
            ev.dpos
      | Kb4.Internal -> VSet.subset eu.dpos ev.dpos
      | Kb4.Strong -> VSet.subset eu.dpos ev.dpos && VSet.subset ev.dneg eu.dneg)
  | Kb4.Transitive r -> is_transitive (role_ext i (Role.Name r)).rpos

let satisfies_abox i = function
  | Axiom.Instance_of (a, c) -> ESet.mem (individual i a) (eval i c).cpos
  | Axiom.Role_assertion (a, r, b) ->
      PSet.mem (individual i a, individual i b) (role_ext i r).rpos
  | Axiom.Data_assertion (a, u, v) ->
      VSet.mem (individual i a, v) (data_role_ext i u).dpos
  | Axiom.Same (a, b) -> individual i a = individual i b
  | Axiom.Different (a, b) -> individual i a <> individual i b

let is_model i (kb : Kb4.t) =
  List.for_all (satisfies_tbox i) kb.tbox && List.for_all (satisfies_abox i) kb.abox

let of_classical (i : Interp.t) : t =
  { domain = i.domain;
    data_domain = i.data_domain;
    concepts =
      SMap.map (fun p -> { cpos = p; cneg = ESet.diff i.domain p }) i.concepts;
    roles =
      SMap.map
        (fun p -> { rpos = p; rneg = PSet.diff (all_pairs i.domain) p })
        i.roles;
    data_roles =
      SMap.map
        (fun p ->
          { dpos = p; dneg = VSet.diff (all_data_pairs i.domain i.data_domain) p })
        i.data_roles;
    individuals = i.individuals }

let pp_eset ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (ESet.elements s)

let pp_pset ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (x, y) -> Format.fprintf ppf "(%d,%d)" x y))
    (PSet.elements s)

let pp ppf i =
  Format.fprintf ppf "@[<v>domain = %a@," pp_eset i.domain;
  SMap.iter
    (fun a e -> Format.fprintf ppf "%s = <%a, %a>@," a pp_eset e.cpos pp_eset e.cneg)
    i.concepts;
  SMap.iter
    (fun r e -> Format.fprintf ppf "%s = <%a, %a>@," r pp_pset e.rpos pp_pset e.rneg)
    i.roles;
  SMap.iter (fun a x -> Format.fprintf ppf "%s -> %d@," a x) i.individuals;
  Format.fprintf ppf "@]"
