(** Finite four-valued interpretations of [SHOIN(D)4] (Definition 2, Tables
    2–3).

    Atomic concepts map to pairs [<P, N>] of subsets of the domain; roles map
    to pairs of edge sets.  The paper's Table 2 writes role extensions as
    products [P₁×P₂]; its proofs only ever use the positive/negative
    projections as sets of pairs, so we store arbitrary pair sets (products
    are a special case) — see DESIGN.md.

    Two deliberate corrections of typos in the paper's tables, both forced by
    the paper's own proofs (Proposition 4, Lemma 5, Theorem 6):
    - material {e role} inclusion uses [Δ×Δ \ proj⁻(R₁)] (Table 3 prints
      [proj⁺]);
    - the negative parts of [∃U.D]/[∀U.D] follow the object-role pattern
      with the classical complement of [D] (Table 2's entries as printed are
      not dual and would break [¬∃U.D = ∀U.¬D]). *)

type cext = { cpos : Interp.ESet.t; cneg : Interp.ESet.t }
type rext = { rpos : Interp.PSet.t; rneg : Interp.PSet.t }
type dext = { dpos : Interp.VSet.t; dneg : Interp.VSet.t }

type t = {
  domain : Interp.ESet.t;
  data_domain : Datatype.value list;
  concepts : cext Interp.SMap.t;
  roles : rext Interp.SMap.t;
  data_roles : dext Interp.SMap.t;
  individuals : int Interp.SMap.t;
}

val make :
  domain:Interp.ESet.t ->
  ?data_domain:Datatype.value list ->
  ?concepts:(string * int list * int list) list ->
  ?roles:(string * (int * int) list * (int * int) list) list ->
  ?data_roles:
    (string * (int * Datatype.value) list * (int * Datatype.value) list) list ->
  ?individuals:(string * int) list ->
  unit ->
  t
(** Each concept entry is [(name, positive, negative)]; likewise for roles. *)

val concept_ext : t -> string -> cext
val role_ext : t -> Role.t -> rext
val data_role_ext : t -> string -> dext
val individual : t -> string -> int

val eval : t -> Concept.t -> cext
(** [Cᴵ = <P, N>] per Table 2.  Nominals take the canonical negative part
    [N = ∅] (Table 2 leaves [N] unconstrained). *)

val truth_value : t -> Concept.t -> string -> Truth.t
(** The Belnap value of [C(a)] (Definition 3). *)

val role_truth_value : t -> Role.t -> string -> string -> Truth.t
(** The Belnap value of [R(a, b)] (Definition 3). *)

val satisfies_tbox : t -> Kb4.tbox_axiom -> bool
(** Table 3. Transitivity constrains the positive part only, matching
    Definition 6's [Trans(R) ↦ Trans(R⁺)]. *)

val satisfies_abox : t -> Axiom.abox_axiom -> bool
(** [a : C] iff [aᴵ ∈ proj⁺(Cᴵ)]; role and data assertions constrain the
    positive parts. *)

val is_model : t -> Kb4.t -> bool

val of_classical : Interp.t -> t
(** Embeds a two-valued interpretation: every extension [P] becomes
    [<P, Δ \ P>] (the classical corner of the bilattice). *)

val pp : Format.formatter -> t -> unit
