lib/syntax/axiom.ml: Concept Datatype Format Int List Role Set String
