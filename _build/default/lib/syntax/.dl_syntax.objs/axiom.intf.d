lib/syntax/axiom.mli: Concept Datatype Format Role
