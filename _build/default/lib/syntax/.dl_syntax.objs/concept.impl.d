lib/syntax/concept.ml: Datatype Format Int List Map Role Set Stdlib String
