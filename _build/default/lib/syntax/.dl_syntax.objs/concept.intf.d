lib/syntax/concept.mli: Datatype Format Map Role Set
