lib/syntax/datatype.ml: Bool Format Int List Option Set String
