lib/syntax/datatype.mli: Format
