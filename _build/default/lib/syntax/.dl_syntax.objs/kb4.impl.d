lib/syntax/kb4.ml: Axiom Concept Format Int List Role String
