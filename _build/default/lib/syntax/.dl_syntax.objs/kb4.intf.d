lib/syntax/kb4.mli: Axiom Concept Format Role
