lib/syntax/kb_stats.ml: Axiom Buffer Concept Format Kb4 List Role
