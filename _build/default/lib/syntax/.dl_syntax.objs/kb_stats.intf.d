lib/syntax/kb_stats.mli: Axiom Format Kb4
