lib/syntax/mangle.ml: String
