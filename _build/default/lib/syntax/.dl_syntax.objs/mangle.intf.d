lib/syntax/mangle.mli:
