lib/syntax/role.ml: Format Map Set String
