lib/syntax/role.mli: Format Map Set
