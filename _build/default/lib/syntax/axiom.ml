type tbox_axiom =
  | Concept_sub of Concept.t * Concept.t
  | Role_sub of Role.t * Role.t
  | Data_role_sub of string * string
  | Transitive of string

type abox_axiom =
  | Instance_of of string * Concept.t
  | Role_assertion of string * Role.t * string
  | Data_assertion of string * string * Datatype.value
  | Same of string * string
  | Different of string * string

type kb = { tbox : tbox_axiom list; abox : abox_axiom list }

let empty = { tbox = []; abox = [] }
let make ~tbox ~abox = { tbox; abox }
let union k1 k2 = { tbox = k1.tbox @ k2.tbox; abox = k1.abox @ k2.abox }
let add_tbox kb ax = { kb with tbox = kb.tbox @ [ ax ] }
let add_abox kb ax = { kb with abox = kb.abox @ [ ax ] }
let size kb = List.length kb.tbox + List.length kb.abox

let concept_equiv c d = [ Concept_sub (c, d); Concept_sub (d, c) ]
let disjoint c d = Concept_sub (c, Concept.neg d)

let compare_tbox_axiom a b =
  let tag = function
    | Concept_sub _ -> 0
    | Role_sub _ -> 1
    | Data_role_sub _ -> 2
    | Transitive _ -> 3
  in
  match (a, b) with
  | Concept_sub (c1, d1), Concept_sub (c2, d2) ->
      let c = Concept.compare c1 c2 in
      if c <> 0 then c else Concept.compare d1 d2
  | Role_sub (r1, s1), Role_sub (r2, s2) ->
      let c = Role.compare r1 r2 in
      if c <> 0 then c else Role.compare s1 s2
  | Data_role_sub (u1, v1), Data_role_sub (u2, v2) ->
      let c = String.compare u1 u2 in
      if c <> 0 then c else String.compare v1 v2
  | Transitive r1, Transitive r2 -> String.compare r1 r2
  | _ -> Int.compare (tag a) (tag b)

let compare_abox_axiom a b =
  let tag = function
    | Instance_of _ -> 0
    | Role_assertion _ -> 1
    | Data_assertion _ -> 2
    | Same _ -> 3
    | Different _ -> 4
  in
  match (a, b) with
  | Instance_of (x1, c1), Instance_of (x2, c2) ->
      let c = String.compare x1 x2 in
      if c <> 0 then c else Concept.compare c1 c2
  | Role_assertion (x1, r1, y1), Role_assertion (x2, r2, y2) ->
      let c = String.compare x1 x2 in
      if c <> 0 then c
      else
        let c = Role.compare r1 r2 in
        if c <> 0 then c else String.compare y1 y2
  | Data_assertion (x1, u1, v1), Data_assertion (x2, u2, v2) ->
      let c = String.compare x1 x2 in
      if c <> 0 then c
      else
        let c = String.compare u1 u2 in
        if c <> 0 then c else Datatype.compare_value v1 v2
  | Same (x1, y1), Same (x2, y2) | Different (x1, y1), Different (x2, y2) ->
      let c = String.compare x1 x2 in
      if c <> 0 then c else String.compare y1 y2
  | _ -> Int.compare (tag a) (tag b)

let pp_tbox_axiom ppf = function
  | Concept_sub (c, d) -> Format.fprintf ppf "%a << %a." Concept.pp c Concept.pp d
  | Role_sub (r, s) -> Format.fprintf ppf "role %a << %a." Role.pp r Role.pp s
  | Data_role_sub (u, v) -> Format.fprintf ppf "datarole %s << %s." u v
  | Transitive r -> Format.fprintf ppf "transitive %s." r

let pp_abox_axiom ppf = function
  | Instance_of (a, c) -> Format.fprintf ppf "%s : %a." a Concept.pp c
  | Role_assertion (a, r, b) -> Format.fprintf ppf "%a(%s, %s)." Role.pp r a b
  | Data_assertion (a, u, v) ->
      Format.fprintf ppf "%s(%s, %a)." u a Datatype.pp_value v
  | Same (a, b) -> Format.fprintf ppf "%s = %s." a b
  | Different (a, b) -> Format.fprintf ppf "%s != %s." a b

let pp ppf kb =
  List.iter (fun ax -> Format.fprintf ppf "%a@." pp_tbox_axiom ax) kb.tbox;
  List.iter (fun ax -> Format.fprintf ppf "%a@." pp_abox_axiom ax) kb.abox

type signature = {
  concepts : string list;
  roles : string list;
  data_roles : string list;
  individuals : string list;
}

module Strings = Set.Make (String)

type sig_sets = {
  s_concepts : Strings.t;
  s_roles : Strings.t;
  s_data_roles : Strings.t;
  s_individuals : Strings.t;
}

let empty_sets =
  { s_concepts = Strings.empty;
    s_roles = Strings.empty;
    s_data_roles = Strings.empty;
    s_individuals = Strings.empty }

let add_concept_sig s c =
  { s_concepts = Strings.union s.s_concepts (Strings.of_list (Concept.atom_names c));
    s_roles = Strings.union s.s_roles (Strings.of_list (Concept.role_names c));
    s_data_roles =
      Strings.union s.s_data_roles (Strings.of_list (Concept.data_role_names c));
    s_individuals =
      Strings.union s.s_individuals (Strings.of_list (Concept.individual_names c)) }

let sets_of_kb kb =
  let s =
    List.fold_left
      (fun s -> function
        | Concept_sub (c, d) -> add_concept_sig (add_concept_sig s c) d
        | Role_sub (r1, r2) ->
            { s with
              s_roles =
                Strings.add (Role.base r1) (Strings.add (Role.base r2) s.s_roles) }
        | Data_role_sub (u1, u2) ->
            { s with s_data_roles = Strings.add u1 (Strings.add u2 s.s_data_roles) }
        | Transitive r -> { s with s_roles = Strings.add r s.s_roles })
      empty_sets kb.tbox
  in
  List.fold_left
    (fun s -> function
      | Instance_of (a, c) ->
          let s = add_concept_sig s c in
          { s with s_individuals = Strings.add a s.s_individuals }
      | Role_assertion (a, r, b) ->
          { s with
            s_roles = Strings.add (Role.base r) s.s_roles;
            s_individuals = Strings.add a (Strings.add b s.s_individuals) }
      | Data_assertion (a, u, _) ->
          { s with
            s_data_roles = Strings.add u s.s_data_roles;
            s_individuals = Strings.add a s.s_individuals }
      | Same (a, b) | Different (a, b) ->
          { s with s_individuals = Strings.add a (Strings.add b s.s_individuals) })
    s kb.abox

let of_sets s =
  { concepts = Strings.elements s.s_concepts;
    roles = Strings.elements s.s_roles;
    data_roles = Strings.elements s.s_data_roles;
    individuals = Strings.elements s.s_individuals }

let signature kb = of_sets (sets_of_kb kb)

let empty_signature = { concepts = []; roles = []; data_roles = []; individuals = [] }

let signature_union a b =
  let u x y = Strings.elements (Strings.union (Strings.of_list x) (Strings.of_list y)) in
  { concepts = u a.concepts b.concepts;
    roles = u a.roles b.roles;
    data_roles = u a.data_roles b.data_roles;
    individuals = u a.individuals b.individuals }
