(** Classical [SHOIN(D)] axioms and knowledge bases (Table 1, lower half).

    A knowledge base is a pair (TBox, ABox); role axioms (role inclusions and
    transitivity declarations, sometimes called the RBox) are kept in the
    TBox list, as in the paper's presentation. *)

type tbox_axiom =
  | Concept_sub of Concept.t * Concept.t   (** C₁ ⊑ C₂ *)
  | Role_sub of Role.t * Role.t            (** R₁ ⊑ R₂ *)
  | Data_role_sub of string * string       (** U₁ ⊑ U₂ *)
  | Transitive of string                   (** Trans(R) *)

type abox_axiom =
  | Instance_of of string * Concept.t              (** a : C *)
  | Role_assertion of string * Role.t * string     (** R(a, b) *)
  | Data_assertion of string * string * Datatype.value  (** U(a, v) *)
  | Same of string * string                        (** a = b *)
  | Different of string * string                   (** a ≠ b *)

type kb = { tbox : tbox_axiom list; abox : abox_axiom list }

val empty : kb
val make : tbox:tbox_axiom list -> abox:abox_axiom list -> kb
val union : kb -> kb -> kb

val add_tbox : kb -> tbox_axiom -> kb
val add_abox : kb -> abox_axiom -> kb

val size : kb -> int
(** Total number of axioms. *)

val concept_equiv : Concept.t -> Concept.t -> tbox_axiom list
(** C ≡ D as the pair of inclusions. *)

val disjoint : Concept.t -> Concept.t -> tbox_axiom
(** Disjointness as [C ⊑ ¬D]. *)

val compare_tbox_axiom : tbox_axiom -> tbox_axiom -> int
val compare_abox_axiom : abox_axiom -> abox_axiom -> int

val pp_tbox_axiom : Format.formatter -> tbox_axiom -> unit
val pp_abox_axiom : Format.formatter -> abox_axiom -> unit
val pp : Format.formatter -> kb -> unit

(** {1 Signature extraction} *)

type signature = {
  concepts : string list;
  roles : string list;
  data_roles : string list;
  individuals : string list;
}

val signature : kb -> signature
val signature_union : signature -> signature -> signature
val empty_signature : signature
