type value = Int of int | Str of string | Bool of bool

let compare_value a b =
  let tag = function Int _ -> 0 | Str _ -> 1 | Bool _ -> 2 in
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | _ -> Int.compare (tag a) (tag b)

let equal_value a b = compare_value a b = 0

let pp_value ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.pp_print_bool ppf b

type t =
  | Top_data
  | Bottom_data
  | Int_type
  | String_type
  | Bool_type
  | Int_range of int option * int option
  | One_of of value list
  | Complement of t

let rec compare a b =
  let tag = function
    | Top_data -> 0
    | Bottom_data -> 1
    | Int_type -> 2
    | String_type -> 3
    | Bool_type -> 4
    | Int_range _ -> 5
    | One_of _ -> 6
    | Complement _ -> 7
  in
  match (a, b) with
  | Int_range (l1, h1), Int_range (l2, h2) ->
      let c = Option.compare Int.compare l1 l2 in
      if c <> 0 then c else Option.compare Int.compare h1 h2
  | One_of v1, One_of v2 -> List.compare compare_value v1 v2
  | Complement d1, Complement d2 -> compare d1 d2
  | _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

(* ------------------------------------------------------------------ *)
(* Integer interval sets: unions of disjoint intervals with optionally
   unbounded endpoints, closed under union, intersection and complement. *)

module Iset = struct
  (* Invariant: sorted by lower bound, pairwise disjoint and non-adjacent. *)
  type iv = { lo : int option; hi : int option }
  type t = iv list

  let empty : t = []
  let full : t = [ { lo = None; hi = None } ]

  let nonempty_iv iv =
    match (iv.lo, iv.hi) with Some l, Some h -> l <= h | _ -> true

  let of_range lo hi =
    let iv = { lo; hi } in
    if nonempty_iv iv then [ iv ] else []

  let lo_le a b =
    (* lower-bound order, None = -inf *)
    match (a, b) with
    | None, _ -> true
    | Some _, None -> false
    | Some x, Some y -> x <= y

  (* Merge a sorted-by-lo list of possibly overlapping intervals. *)
  let normalize ivs =
    let ivs = List.filter nonempty_iv ivs in
    let ivs = List.sort (fun a b -> if lo_le a.lo b.lo then -1 else 1) ivs in
    let touches prev next =
      (* prev.hi >= next.lo - 1, i.e. overlapping or adjacent *)
      match (prev.hi, next.lo) with
      | None, _ -> true
      | _, None -> true
      | Some h, Some l -> h >= l - 1
    in
    let hi_max a b =
      match (a, b) with
      | None, _ | _, None -> None
      | Some x, Some y -> Some (max x y)
    in
    let rec go acc = function
      | [] -> List.rev acc
      | iv :: rest -> (
          match acc with
          | prev :: acc' when touches prev iv ->
              go ({ prev with hi = hi_max prev.hi iv.hi } :: acc') rest
          | _ -> go (iv :: acc) rest)
    in
    go [] ivs

  let union a b = normalize (a @ b)

  let complement ivs =
    (* Walk the gaps of a normalized interval list. *)
    let rec go lower = function
      | [] -> [ { lo = lower; hi = None } ]
      | { lo = Some l; hi } :: rest ->
          let gap =
            match lower with
            | None -> [ { lo = None; hi = Some (l - 1) } ]
            | Some lb when lb <= l - 1 ->
                [ { lo = Some lb; hi = Some (l - 1) } ]
            | Some _ -> []
          in
          gap @ after hi rest
      | { lo = None; hi } :: rest -> after hi rest
    and after hi rest =
      match hi with
      | None -> [] (* covered to +inf *)
      | Some h -> go (Some (h + 1)) rest
    in
    normalize (go None ivs)

  let inter a b = complement (union (complement a) (complement b))

  let of_points pts = normalize (List.map (fun p -> { lo = Some p; hi = Some p }) pts)

  let mem x ivs =
    List.exists
      (fun iv ->
        (match iv.lo with None -> true | Some l -> l <= x)
        && match iv.hi with None -> true | Some h -> x <= h)
      ivs

  type card = Finite of int | Infinite

  let cardinal ivs =
    List.fold_left
      (fun acc iv ->
        match (acc, iv.lo, iv.hi) with
        | Infinite, _, _ | _, None, _ | _, _, None -> Infinite
        | Finite n, Some l, Some h -> Finite (n + h - l + 1))
      (Finite 0) ivs

  (* Up to [n] witnesses, preferring small absolute values for readability. *)
  let pick n ivs =
    let rec from_iv n iv acc =
      if n = 0 then acc
      else
        match (iv.lo, iv.hi) with
        | Some l, Some h ->
            if l > h then acc
            else from_iv (n - 1) { iv with lo = Some (l + 1) } (l :: acc)
        | Some l, None -> from_iv (n - 1) { iv with lo = Some (l + 1) } (l :: acc)
        | None, Some h -> from_iv (n - 1) { iv with hi = Some (h - 1) } (h :: acc)
        | None, None -> from_iv (n - 1) { iv with lo = Some 1 } (0 :: acc)
    in
    let rec go n = function
      | [] -> []
      | iv :: rest ->
          let got = List.rev (from_iv n iv []) in
          got @ go (n - List.length got) rest
    in
    go n ivs
end

(* ------------------------------------------------------------------ *)
(* Extensions per kind.  The value spaces of the three kinds are disjoint. *)

module SS = Set.Make (String)

type str_ext = Fin of SS.t | Cofin of SS.t
type bool_ext = { has_true : bool; has_false : bool }

type ext = { ints : Iset.t; strs : str_ext; bools : bool_ext }

let ext_empty =
  { ints = Iset.empty; strs = Fin SS.empty; bools = { has_true = false; has_false = false } }

let ext_full =
  { ints = Iset.full; strs = Cofin SS.empty; bools = { has_true = true; has_false = true } }

let str_inter a b =
  match (a, b) with
  | Fin x, Fin y -> Fin (SS.inter x y)
  | Fin x, Cofin y | Cofin y, Fin x -> Fin (SS.diff x y)
  | Cofin x, Cofin y -> Cofin (SS.union x y)

let str_compl = function Fin x -> Cofin x | Cofin x -> Fin x

let bool_inter a b =
  { has_true = a.has_true && b.has_true; has_false = a.has_false && b.has_false }

let bool_compl a = { has_true = not a.has_true; has_false = not a.has_false }

let ext_inter a b =
  { ints = Iset.inter a.ints b.ints;
    strs = str_inter a.strs b.strs;
    bools = bool_inter a.bools b.bools }

let ext_compl a =
  { ints = Iset.complement a.ints; strs = str_compl a.strs; bools = bool_compl a.bools }

let rec denote = function
  | Top_data -> ext_full
  | Bottom_data -> ext_empty
  | Int_type -> { ext_empty with ints = Iset.full }
  | String_type -> { ext_empty with strs = Cofin SS.empty }
  | Bool_type -> { ext_empty with bools = { has_true = true; has_false = true } }
  | Int_range (lo, hi) -> { ext_empty with ints = Iset.of_range lo hi }
  | One_of vs ->
      List.fold_left
        (fun acc v ->
          match v with
          | Int n -> { acc with ints = Iset.union acc.ints (Iset.of_points [ n ]) }
          | Str s ->
              let strs =
                match acc.strs with
                | Fin set -> Fin (SS.add s set)
                | Cofin set -> Cofin (SS.remove s set)
              in
              { acc with strs }
          | Bool true -> { acc with bools = { acc.bools with has_true = true } }
          | Bool false -> { acc with bools = { acc.bools with has_false = true } })
        ext_empty vs
  | Complement d -> ext_compl (denote d)

let member v d =
  let e = denote d in
  match v with
  | Int n -> Iset.mem n e.ints
  | Str s -> ( match e.strs with Fin set -> SS.mem s set | Cofin set -> not (SS.mem s set))
  | Bool true -> e.bools.has_true
  | Bool false -> e.bools.has_false

let intersection ds = List.fold_left (fun acc d -> ext_inter acc (denote d)) ext_full ds

type card = Finite of int | Infinite

let ext_cardinal e =
  let int_card =
    match Iset.cardinal e.ints with
    | Iset.Infinite -> Infinite
    | Iset.Finite n -> Finite n
  in
  let str_card = match e.strs with Fin set -> Finite (SS.cardinal set) | Cofin _ -> Infinite in
  let bool_card =
    Finite ((if e.bools.has_true then 1 else 0) + if e.bools.has_false then 1 else 0)
  in
  match (int_card, str_card, bool_card) with
  | Infinite, _, _ | _, Infinite, _ | _, _, Infinite -> Infinite
  | Finite a, Finite b, Finite c -> Finite (a + b + c)

let cardinal_at_least n ds =
  if n <= 0 then true
  else
    match ext_cardinal (intersection ds) with
    | Infinite -> true
    | Finite k -> k >= n

let satisfiable ds = cardinal_at_least 1 ds

let witnesses n ds =
  if n <= 0 then []
  else
    let e = intersection ds in
    let ints = List.map (fun i -> Int i) (Iset.pick n e.ints) in
    let need = n - List.length ints in
    let strs =
      if need <= 0 then []
      else
        match e.strs with
        | Fin set ->
            List.filteri (fun i _ -> i < need) (List.map (fun s -> Str s) (SS.elements set))
        | Cofin excluded ->
            (* Generate fresh strings avoiding the excluded set. *)
            let rec fresh acc i k =
              if k = 0 then List.rev acc
              else
                let s = "v" ^ string_of_int i in
                if SS.mem s excluded then fresh acc (i + 1) k
                else fresh (Str s :: acc) (i + 1) (k - 1)
            in
            fresh [] 0 need
    in
    let need = need - List.length strs in
    let bools =
      if need <= 0 then []
      else
        (if e.bools.has_true then [ Bool true ] else [])
        @ (if e.bools.has_false then [ Bool false ] else [])
    in
    let bools = List.filteri (fun i _ -> i < need) bools in
    ints @ strs @ bools

let rec pp ppf = function
  | Top_data -> Format.pp_print_string ppf "anyValue"
  | Bottom_data -> Format.pp_print_string ppf "noValue"
  | Int_type -> Format.pp_print_string ppf "integer"
  | String_type -> Format.pp_print_string ppf "string"
  | Bool_type -> Format.pp_print_string ppf "boolean"
  | Int_range (lo, hi) ->
      let b = function None -> "*" | Some n -> string_of_int n in
      Format.fprintf ppf "int[%s..%s]" (b lo) (b hi)
  | One_of vs ->
      Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_value) vs
  | Complement d -> Format.fprintf ppf "not(%a)" pp d

let to_string d = Format.asprintf "%a" pp d
