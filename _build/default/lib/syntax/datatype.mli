(** The concrete domain — the "(D)" of [SHOIN(D)].

    The paper treats datatypes abstractly ([Dᴰ ⊆ Δᴰ]).  We implement the
    simple-datatype regime of OWL DL implementations of that era: integers
    (with ranges), strings, booleans and enumerated value sets ([oneOf]),
    closed under complement.  The module provides the two decision procedures
    a tableau needs: emptiness of a conjunction of datatype constraints and a
    cardinality test (for datatype number restrictions), together with
    witness extraction for model building. *)

type value =
  | Int of int
  | Str of string
  | Bool of bool

val compare_value : value -> value -> int
val equal_value : value -> value -> bool
val pp_value : Format.formatter -> value -> unit

type t =
  | Top_data                               (** every data value *)
  | Bottom_data                            (** the empty datatype *)
  | Int_type                               (** all integers *)
  | String_type                            (** all strings *)
  | Bool_type                              (** {true, false} *)
  | Int_range of int option * int option
      (** [Int_range (lo, hi)] — integers in [[lo, hi]]; [None] = unbounded *)
  | One_of of value list                   (** datatype oneOf {v₁, …} *)
  | Complement of t                        (** Δᴰ \ ... *)

val compare : t -> t -> int
val equal : t -> t -> bool

val member : value -> t -> bool
(** Value-space membership. *)

val satisfiable : t list -> bool
(** Is the intersection of the given datatypes non-empty? *)

val cardinal_at_least : int -> t list -> bool
(** [cardinal_at_least n ds]: does the intersection of [ds] contain at least
    [n] distinct values?  ([cardinal_at_least 1] = [satisfiable].) *)

val witnesses : int -> t list -> value list
(** Up to [n] distinct values in the intersection (fewer if the intersection
    is smaller).  Used for model construction and tests. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
