type inclusion = Material | Internal | Strong

let all_inclusions = [ Material; Internal; Strong ]

let inclusion_symbol = function
  | Material -> "|->"
  | Internal -> "<"
  | Strong -> "->"

let pp_inclusion ppf i = Format.pp_print_string ppf (inclusion_symbol i)

type tbox_axiom =
  | Concept_inclusion of inclusion * Concept.t * Concept.t
  | Role_inclusion of inclusion * Role.t * Role.t
  | Data_role_inclusion of inclusion * string * string
  | Transitive of string

type t = { tbox : tbox_axiom list; abox : Axiom.abox_axiom list }

let empty = { tbox = []; abox = [] }
let make ~tbox ~abox = { tbox; abox }
let union k1 k2 = { tbox = k1.tbox @ k2.tbox; abox = k1.abox @ k2.abox }
let add_tbox kb ax = { kb with tbox = kb.tbox @ [ ax ] }
let add_abox kb ax = { kb with abox = kb.abox @ [ ax ] }
let size kb = List.length kb.tbox + List.length kb.abox

let of_classical ?(inclusion = Internal) (kb : Axiom.kb) =
  let tbox =
    List.map
      (function
        | Axiom.Concept_sub (c, d) -> Concept_inclusion (inclusion, c, d)
        | Axiom.Role_sub (r, s) -> Role_inclusion (inclusion, r, s)
        | Axiom.Data_role_sub (u, v) -> Data_role_inclusion (inclusion, u, v)
        | Axiom.Transitive r -> Transitive r)
      kb.Axiom.tbox
  in
  { tbox; abox = kb.Axiom.abox }

(* Signature is computed by dropping inclusion kinds and reusing
   [Axiom.signature]. *)
let signature kb =
  let tbox =
    List.map
      (function
        | Concept_inclusion (_, c, d) -> Axiom.Concept_sub (c, d)
        | Role_inclusion (_, r, s) -> Axiom.Role_sub (r, s)
        | Data_role_inclusion (_, u, v) -> Axiom.Data_role_sub (u, v)
        | Transitive r -> Axiom.Transitive r)
      kb.tbox
  in
  Axiom.signature { Axiom.tbox; abox = kb.abox }

let compare_inclusion a b =
  let tag = function Material -> 0 | Internal -> 1 | Strong -> 2 in
  Int.compare (tag a) (tag b)

let compare_tbox_axiom a b =
  let tag = function
    | Concept_inclusion _ -> 0
    | Role_inclusion _ -> 1
    | Data_role_inclusion _ -> 2
    | Transitive _ -> 3
  in
  match (a, b) with
  | Concept_inclusion (i1, c1, d1), Concept_inclusion (i2, c2, d2) ->
      let c = compare_inclusion i1 i2 in
      if c <> 0 then c
      else
        let c = Concept.compare c1 c2 in
        if c <> 0 then c else Concept.compare d1 d2
  | Role_inclusion (i1, r1, s1), Role_inclusion (i2, r2, s2) ->
      let c = compare_inclusion i1 i2 in
      if c <> 0 then c
      else
        let c = Role.compare r1 r2 in
        if c <> 0 then c else Role.compare s1 s2
  | Data_role_inclusion (i1, u1, v1), Data_role_inclusion (i2, u2, v2) ->
      let c = compare_inclusion i1 i2 in
      if c <> 0 then c
      else
        let c = String.compare u1 u2 in
        if c <> 0 then c else String.compare v1 v2
  | Transitive r1, Transitive r2 -> String.compare r1 r2
  | _ -> Int.compare (tag a) (tag b)

let pp_tbox_axiom ppf = function
  | Concept_inclusion (i, c, d) ->
      Format.fprintf ppf "%a %s %a." Concept.pp c (inclusion_symbol i) Concept.pp d
  | Role_inclusion (i, r, s) ->
      Format.fprintf ppf "role %a %s %a." Role.pp r (inclusion_symbol i) Role.pp s
  | Data_role_inclusion (i, u, v) ->
      Format.fprintf ppf "datarole %s %s %s." u (inclusion_symbol i) v
  | Transitive r -> Format.fprintf ppf "transitive %s." r

let pp ppf kb =
  List.iter (fun ax -> Format.fprintf ppf "%a@." pp_tbox_axiom ax) kb.tbox;
  List.iter (fun ax -> Format.fprintf ppf "%a@." Axiom.pp_abox_axiom ax) kb.abox
