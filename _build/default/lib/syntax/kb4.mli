(** [SHOIN(D)4] knowledge bases (§3.1, Table 3).

    Fact (ABox) axioms are exactly those of [SHOIN(D)] ({!Axiom.abox_axiom}).
    TBox axioms come in the paper's three exactness grades, for concepts and
    for object/datatype roles:

    - {e material} inclusion [C ↦ D] — "generally, Cs are Ds" (allows
      exceptions);
    - {e internal} inclusion [C ⊏ D] — every told-C is told-D;
    - {e strong} inclusion [C → D] — additionally, every told-not-D is
      told-not-C (contraposition). *)

type inclusion =
  | Material  (** ↦ *)
  | Internal  (** ⊏ *)
  | Strong    (** → *)

val all_inclusions : inclusion list
val pp_inclusion : Format.formatter -> inclusion -> unit
val inclusion_symbol : inclusion -> string

type tbox_axiom =
  | Concept_inclusion of inclusion * Concept.t * Concept.t
  | Role_inclusion of inclusion * Role.t * Role.t
  | Data_role_inclusion of inclusion * string * string
  | Transitive of string

type t = { tbox : tbox_axiom list; abox : Axiom.abox_axiom list }

val empty : t
val make : tbox:tbox_axiom list -> abox:Axiom.abox_axiom list -> t
val union : t -> t -> t
val add_tbox : t -> tbox_axiom -> t
val add_abox : t -> Axiom.abox_axiom -> t
val size : t -> int

val of_classical : ?inclusion:inclusion -> Axiom.kb -> t
(** Reads a classical KB as a four-valued one, mapping every ⊑ to the given
    inclusion kind (default [Internal], the kind whose satisfaction mirrors
    the positive-part of classical ⊑). *)

val signature : t -> Axiom.signature

val compare_tbox_axiom : tbox_axiom -> tbox_axiom -> int
val pp_tbox_axiom : Format.formatter -> tbox_axiom -> unit
val pp : Format.formatter -> t -> unit
