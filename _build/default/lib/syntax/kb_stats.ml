type t = {
  tbox_axioms : int;
  abox_axioms : int;
  concept_names : int;
  role_names : int;
  data_role_names : int;
  individuals : int;
  max_concept_size : int;
  max_role_depth : int;
  material_inclusions : int;
  internal_inclusions : int;
  strong_inclusions : int;
  uses_disjunction : bool;
  uses_full_negation : bool;
  uses_transitivity : bool;
  uses_role_hierarchy : bool;
  uses_nominals : bool;
  uses_inverse : bool;
  uses_number_restrictions : bool;
  uses_datatypes : bool;
}

let scan_concept stats c =
  let stats = ref stats in
  let update f = stats := f !stats in
  List.iter
    (fun (sub : Concept.t) ->
      match sub with
      | Or _ -> update (fun s -> { s with uses_disjunction = true })
      | Not d when d <> Concept.Top && d <> Concept.Bottom -> (
          match d with
          | Concept.Atom _ -> ()
          | _ -> update (fun s -> { s with uses_full_negation = true }))
      | One_of _ -> update (fun s -> { s with uses_nominals = true })
      | Exists (r, filler) ->
          (* a full existential restriction is beyond the AL core *)
          if filler <> Concept.Top then
            update (fun s -> { s with uses_full_negation = true });
          if Role.is_inverse r then
            update (fun s -> { s with uses_inverse = true })
      | Forall (r, _) ->
          if Role.is_inverse r then
            update (fun s -> { s with uses_inverse = true })
      | At_least (_, r) | At_most (_, r) ->
          update (fun s -> { s with uses_number_restrictions = true });
          if Role.is_inverse r then
            update (fun s -> { s with uses_inverse = true })
      | Data_exists _ | Data_forall _ | Data_at_least _ | Data_at_most _ ->
          update (fun s -> { s with uses_datatypes = true })
      | Top | Bottom | Atom _ | Not _ | And _ -> ())
    (Concept.subconcepts c);
  { !stats with
    max_concept_size = max !stats.max_concept_size (Concept.size c);
    max_role_depth = max !stats.max_role_depth (Concept.depth c) }

let scan_abox stats abox =
  List.fold_left
    (fun stats ax ->
      match (ax : Axiom.abox_axiom) with
      | Instance_of (_, c) -> scan_concept stats c
      | Role_assertion (_, r, _) ->
          if Role.is_inverse r then { stats with uses_inverse = true }
          else stats
      | Data_assertion _ -> { stats with uses_datatypes = true }
      | Same _ | Different _ -> stats)
    stats abox

let base signature tbox_axioms abox_axioms =
  { tbox_axioms;
    abox_axioms;
    concept_names = List.length signature.Axiom.concepts;
    role_names = List.length signature.Axiom.roles;
    data_role_names = List.length signature.Axiom.data_roles;
    individuals = List.length signature.Axiom.individuals;
    max_concept_size = 0;
    max_role_depth = 0;
    material_inclusions = 0;
    internal_inclusions = 0;
    strong_inclusions = 0;
    uses_disjunction = false;
    uses_full_negation = false;
    uses_transitivity = false;
    uses_role_hierarchy = false;
    uses_nominals = false;
    uses_inverse = false;
    uses_number_restrictions = false;
    uses_datatypes = false }

let of_kb (kb : Axiom.kb) =
  let stats =
    base (Axiom.signature kb) (List.length kb.tbox) (List.length kb.abox)
  in
  let stats =
    List.fold_left
      (fun stats ax ->
        match (ax : Axiom.tbox_axiom) with
        | Concept_sub (c, d) -> scan_concept (scan_concept stats c) d
        | Role_sub (r, s) ->
            let stats = { stats with uses_role_hierarchy = true } in
            if Role.is_inverse r || Role.is_inverse s then
              { stats with uses_inverse = true }
            else stats
        | Data_role_sub _ -> { stats with uses_datatypes = true }
        | Transitive _ -> { stats with uses_transitivity = true })
      stats kb.tbox
  in
  scan_abox stats kb.abox

let of_kb4 (kb : Kb4.t) =
  let stats =
    base (Kb4.signature kb) (List.length kb.tbox) (List.length kb.abox)
  in
  let stats =
    List.fold_left
      (fun stats ax ->
        match (ax : Kb4.tbox_axiom) with
        | Concept_inclusion (kind, c, d) ->
            let stats = scan_concept (scan_concept stats c) d in
            (match kind with
            | Kb4.Material ->
                { stats with material_inclusions = stats.material_inclusions + 1 }
            | Kb4.Internal ->
                { stats with internal_inclusions = stats.internal_inclusions + 1 }
            | Kb4.Strong ->
                { stats with strong_inclusions = stats.strong_inclusions + 1 })
        | Role_inclusion (_, r, s) ->
            let stats = { stats with uses_role_hierarchy = true } in
            if Role.is_inverse r || Role.is_inverse s then
              { stats with uses_inverse = true }
            else stats
        | Data_role_inclusion _ -> { stats with uses_datatypes = true }
        | Transitive _ -> { stats with uses_transitivity = true })
      stats kb.tbox
  in
  scan_abox stats kb.abox

let name t =
  let buffer = Buffer.create 8 in
  (* S abbreviates ALC + transitive roles; otherwise AL(C) *)
  if t.uses_transitivity then Buffer.add_string buffer "S"
  else if t.uses_disjunction || t.uses_full_negation then
    Buffer.add_string buffer "ALC"
  else Buffer.add_string buffer "AL";
  if t.uses_role_hierarchy then Buffer.add_char buffer 'H';
  if t.uses_nominals then Buffer.add_char buffer 'O';
  if t.uses_inverse then Buffer.add_char buffer 'I';
  if t.uses_number_restrictions then Buffer.add_char buffer 'N';
  if t.uses_datatypes then Buffer.add_string buffer "(D)";
  Buffer.contents buffer

let pp ppf t =
  Format.fprintf ppf "@[<v>expressivity: %s@," (name t);
  Format.fprintf ppf "axioms: %d TBox + %d ABox@," t.tbox_axioms t.abox_axioms;
  if t.material_inclusions + t.internal_inclusions + t.strong_inclusions > 0
  then
    Format.fprintf ppf "inclusions: %d material, %d internal, %d strong@,"
      t.material_inclusions t.internal_inclusions t.strong_inclusions;
  Format.fprintf ppf
    "signature: %d concepts, %d roles, %d data roles, %d individuals@,"
    t.concept_names t.role_names t.data_role_names t.individuals;
  Format.fprintf ppf "largest concept: %d nodes; deepest nesting: %d@]"
    t.max_concept_size t.max_role_depth
