(** Knowledge-base metrics and expressivity detection.

    [name] computes the conventional DL name of the fragment a KB actually
    uses, built from the letters the paper's logic is named after:
    [AL]/[ALC] core, [+] role transitivity (= [S] with [C]), [H] role
    hierarchies, [O] nominals, [I] inverse roles, [N] (unqualified) number
    restrictions, [(D)] datatypes — so a KB using everything is reported as
    [SHOIN(D)], the logic of the paper. *)

type t = {
  tbox_axioms : int;
  abox_axioms : int;
  concept_names : int;
  role_names : int;
  data_role_names : int;
  individuals : int;
  max_concept_size : int;
  max_role_depth : int;
  material_inclusions : int;  (** 0 for classical KBs *)
  internal_inclusions : int;
  strong_inclusions : int;
  uses_disjunction : bool;
  uses_full_negation : bool;  (** negation of a non-atomic concept *)
  uses_transitivity : bool;
  uses_role_hierarchy : bool;
  uses_nominals : bool;
  uses_inverse : bool;
  uses_number_restrictions : bool;
  uses_datatypes : bool;
}

val of_kb : Axiom.kb -> t
val of_kb4 : Kb4.t -> t

val name : t -> string
(** e.g. ["ALC"], ["SHIN(D)"], ["SHOIN(D)"]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable summary. *)
