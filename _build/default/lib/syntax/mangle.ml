let pos_atom a = a ^ "+"
let neg_atom a = a ^ "-"
let plus_role r = r ^ "+"
let eq_role r = r ^ "="

type atom_origin = Pos of string | Neg of string | Plain of string
type role_origin = Plus of string | Eq of string | Plain_role of string

let strip_last s = String.sub s 0 (String.length s - 1)

let atom_origin s =
  let n = String.length s in
  if n = 0 then Plain s
  else
    match s.[n - 1] with
    | '+' -> Pos (strip_last s)
    | '-' -> Neg (strip_last s)
    | _ -> Plain s

let role_origin s =
  let n = String.length s in
  if n = 0 then Plain_role s
  else
    match s.[n - 1] with
    | '+' -> Plus (strip_last s)
    | '=' -> Eq (strip_last s)
    | _ -> Plain_role s

let is_mangled s =
  let n = String.length s in
  n > 0 && (s.[n - 1] = '+' || s.[n - 1] = '-' || s.[n - 1] = '=')
