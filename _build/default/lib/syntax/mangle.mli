(** Naming scheme for the transformed language L̄ of §4.1.

    The transformation of Definition 5 introduces, for every atomic concept
    [A], two fresh atomic concepts [A⁺] and [A⁻], and for every (object or
    datatype) role [R] two fresh roles [R⁺] and [R⁼].  We realize these as
    decorated names using characters ([+], [-], [=]) that cannot occur in
    identifiers of the surface syntax, so transformed names can never collide
    with user names, and de-mangling is unambiguous.  Individual renaming
    ā is the identity (the paper's renaming is an arbitrary bijection). *)

val pos_atom : string -> string   (* A  ↦ A⁺ *)
val neg_atom : string -> string   (* A  ↦ A⁻ *)
val plus_role : string -> string  (* R  ↦ R⁺ *)
val eq_role : string -> string    (* R  ↦ R⁼ *)

type atom_origin =
  | Pos of string      (** [A⁺] for user atom [A] *)
  | Neg of string      (** [A⁻] for user atom [A] *)
  | Plain of string    (** not a mangled name *)

type role_origin =
  | Plus of string     (** [R⁺] *)
  | Eq of string       (** [R⁼] *)
  | Plain_role of string

val atom_origin : string -> atom_origin
val role_origin : string -> role_origin

val is_mangled : string -> bool
