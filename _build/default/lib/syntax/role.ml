type t = Name of string | Inv of string

let name r = Name r
let inv = function Name r -> Inv r | Inv r -> Name r
let base = function Name r | Inv r -> r
let is_inverse = function Inv _ -> true | Name _ -> false

let compare a b =
  match (a, b) with
  | Name x, Name y | Inv x, Inv y -> String.compare x y
  | Name _, Inv _ -> -1
  | Inv _, Name _ -> 1

let equal a b = compare a b = 0

let to_string = function Name r -> r | Inv r -> r ^ "^-"
let pp ppf r = Format.pp_print_string ppf (to_string r)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
