(** Object roles of [SHOIN(D)]: atomic role names and their inverses.

    Inverses are kept in a normal form where [Inv] only ever wraps an atomic
    name, so [inv] is an involution by construction ([(R⁻)⁻ = R]). *)

type t =
  | Name of string  (** atomic role [R] *)
  | Inv of string   (** inverse role [R⁻] *)

val name : string -> t

val inv : t -> t
(** [inv (Name r) = Inv r] and [inv (Inv r) = Name r]. *)

val base : t -> string
(** The underlying atomic role name. *)

val is_inverse : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
