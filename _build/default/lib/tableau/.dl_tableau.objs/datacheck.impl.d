lib/tableau/datacheck.ml: Concept Datatype List Option Set
