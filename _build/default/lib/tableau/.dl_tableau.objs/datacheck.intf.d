lib/tableau/datacheck.mli: Concept Datatype
