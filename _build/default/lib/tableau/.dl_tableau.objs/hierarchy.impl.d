lib/tableau/hierarchy.ml: Axiom List Map Role Set String
