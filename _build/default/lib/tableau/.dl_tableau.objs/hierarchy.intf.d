lib/tableau/hierarchy.mli: Axiom Role
