lib/tableau/reasoner.ml: Axiom Concept Format Hierarchy List Role Tableau
