lib/tableau/reasoner.mli: Axiom Concept Interp Role Tableau
