lib/tableau/tableau.ml: Axiom Concept Datacheck Datatype Hashtbl Hierarchy Int Interp List Map Option Printf Role Set String
