lib/tableau/tableau.mli: Axiom Interp
