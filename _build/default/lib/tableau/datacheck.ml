module VSet = Set.Make (struct
  type t = Datatype.value

  let compare = Datatype.compare_value
end)

type gathered = {
  foralls : (string * Datatype.t) list;
  exists_ : (string * Datatype.t) list;
  at_least : (int * string) list;
  at_most : (int * string) list;
}

let gather constraints =
  List.fold_left
    (fun g (c : Concept.t) ->
      match c with
      | Data_forall (u, d) -> { g with foralls = (u, d) :: g.foralls }
      | Data_exists (u, d) -> { g with exists_ = (u, d) :: g.exists_ }
      | Data_at_least (n, u) -> { g with at_least = (n, u) :: g.at_least }
      | Data_at_most (n, u) -> { g with at_most = (n, u) :: g.at_most }
      | _ -> g)
    { foralls = []; exists_ = []; at_least = []; at_most = [] }
    constraints

let solve ~data_supers ~asserted ~constraints =
  let g = gather constraints in
  (* Constraints on values carried by (an edge labelled) [u]: every ∀v.D
     with u ⊑* v applies. *)
  let dall u =
    let sups = data_supers u in
    List.filter_map
      (fun (v, d) -> if List.mem v sups then Some d else None)
      g.foralls
  in
  let ok_asserted =
    List.for_all
      (fun (u, v) -> List.for_all (fun d -> Datatype.member v d) (dall u))
      asserted
  in
  if not ok_asserted then None
  else
    (* [edges] is the explicit successor assignment being built. *)
    let edges = ref asserted in
    (* distinct values reachable as u-successors *)
    let successors u =
      List.fold_left
        (fun acc (u', v) ->
          if List.mem u (data_supers u') then VSet.add v acc else acc)
        VSet.empty !edges
    in
    let exception Unsat in
    try
      (* ∃-constraints: reuse an existing admissible value if possible,
         otherwise create a fresh witness on [u]. *)
      List.iter
        (fun (u, d) ->
          let needed = d :: dall u in
          let have =
            VSet.exists
              (fun v -> Datatype.member v d)
              (successors u)
          in
          if not have then
            (* prefer a value already present on other roles *)
            let reusable =
              List.find_opt
                (fun (_, v) -> List.for_all (Datatype.member v) needed)
                !edges
            in
            match reusable with
            | Some (_, v) -> edges := (u, v) :: !edges
            | None -> (
                match Datatype.witnesses 1 needed with
                | v :: _ -> edges := (u, v) :: !edges
                | [] -> raise Unsat))
        g.exists_;
      (* ≥-constraints: top up to n distinct values on [u]. *)
      List.iter
        (fun (n, u) ->
          let have = successors u in
          let deficit = n - VSet.cardinal have in
          if deficit > 0 then begin
            let candidates =
              Datatype.witnesses (n + VSet.cardinal have) (dall u)
            in
            let fresh =
              List.filter (fun v -> not (VSet.mem v have)) candidates
            in
            if List.length fresh < deficit then raise Unsat
            else
              List.iteri
                (fun i v -> if i < deficit then edges := (u, v) :: !edges)
                fresh
          end)
        g.at_least;
      (* ≤-constraints: final count. *)
      if List.for_all (fun (n, u) -> VSet.cardinal (successors u) <= n) g.at_most
      then Some !edges
      else None
    with Unsat -> None

let satisfiable ~data_supers ~asserted ~constraints =
  Option.is_some (solve ~data_supers ~asserted ~constraints)
