(** Per-node datatype (concrete domain) satisfiability.

    Datatype constraints never create graph structure in the tableau: because
    datatype expressions cannot nest object concepts, the satisfiability of
    the datatype constraints attached to a single node is a local problem
    over the concrete domain, decided here.

    The procedure builds an explicit assignment of data successors (witness
    values), honouring the data-role hierarchy: a successor created on [U]
    counts as a successor for every [V] with [U ⊑* V], and a [∀V.D]
    constraint restricts the values on every [U ⊑* V].

    Sound and complete, except that in the presence of [≤ n.U] constraints
    witness reuse across [∃]-constraints is greedy, so a rare false "unsat"
    is possible when several overlapping existentials could share values in
    a way greed misses (documented in DESIGN.md). *)

val solve :
  data_supers:(string -> string list) ->
  asserted:(string * Datatype.value) list ->
  constraints:Concept.t list ->
  (string * Datatype.value) list option
(** The witnessing successor assignment (a superset of [asserted]), or
    [None] when the constraints are unsatisfiable.  [constraints] is a node
    label; only [Data_exists], [Data_forall], [Data_at_least] and
    [Data_at_most] members are inspected. *)

val satisfiable :
  data_supers:(string -> string list) ->
  asserted:(string * Datatype.value) list ->
  constraints:Concept.t list ->
  bool
(** [satisfiable ... = Option.is_some (solve ...)]. *)
