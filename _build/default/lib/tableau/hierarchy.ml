module RSet = Role.Set
module RMap = Role.Map
module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = {
  role_supers : RSet.t RMap.t;  (* closure, reflexivity added on lookup *)
  data_role_supers : SSet.t SMap.t;
  transitive_roles : SSet.t;
  declared_roles : RSet.t;      (* roles appearing in inclusion axioms *)
}

let add_edge m r s =
  let cur = match RMap.find_opt r m with Some x -> x | None -> RSet.empty in
  RMap.add r (RSet.add s cur) m

(* Transitive closure by naive saturation — role hierarchies are tiny. *)
let saturate m =
  let changed = ref true in
  let m = ref m in
  while !changed do
    changed := false;
    RMap.iter
      (fun r ss ->
        RSet.iter
          (fun s ->
            match RMap.find_opt s !m with
            | None -> ()
            | Some ss' ->
                RSet.iter
                  (fun s' ->
                    let cur =
                      match RMap.find_opt r !m with
                      | Some x -> x
                      | None -> RSet.empty
                    in
                    if not (RSet.mem s' cur) then begin
                      m := RMap.add r (RSet.add s' cur) !m;
                      changed := true
                    end)
                  ss')
          ss)
      !m
  done;
  !m

let saturate_str m =
  let changed = ref true in
  let m = ref m in
  while !changed do
    changed := false;
    SMap.iter
      (fun u vs ->
        SSet.iter
          (fun v ->
            match SMap.find_opt v !m with
            | None -> ()
            | Some vs' ->
                SSet.iter
                  (fun v' ->
                    let cur =
                      match SMap.find_opt u !m with
                      | Some x -> x
                      | None -> SSet.empty
                    in
                    if not (SSet.mem v' cur) then begin
                      m := SMap.add u (SSet.add v' cur) !m;
                      changed := true
                    end)
                  vs')
          vs)
      !m
  done;
  !m

let build tbox =
  let role_supers, data_role_supers, transitive_roles, declared_roles =
    List.fold_left
      (fun (rm, dm, tr, dr) ax ->
        match ax with
        | Axiom.Role_sub (r, s) ->
            let rm = add_edge rm r s in
            let rm = add_edge rm (Role.inv r) (Role.inv s) in
            (rm, dm, tr, RSet.add r (RSet.add s dr))
        | Axiom.Data_role_sub (u, v) ->
            let cur =
              match SMap.find_opt u dm with Some x -> x | None -> SSet.empty
            in
            (rm, SMap.add u (SSet.add v cur) dm, tr, dr)
        | Axiom.Transitive r -> (rm, dm, SSet.add r tr, dr)
        | Axiom.Concept_sub _ -> (rm, dm, tr, dr))
      (RMap.empty, SMap.empty, SSet.empty, RSet.empty)
      tbox
  in
  { role_supers = saturate role_supers;
    data_role_supers = saturate_str data_role_supers;
    transitive_roles;
    declared_roles }

let supers h r =
  let s =
    match RMap.find_opt r h.role_supers with Some x -> x | None -> RSet.empty
  in
  RSet.add r s

let sub_of h r s = RSet.mem s (supers h r)

let data_supers h u =
  let s =
    match SMap.find_opt u h.data_role_supers with
    | Some x -> x
    | None -> SSet.empty
  in
  u :: SSet.elements (SSet.remove u s)

let transitive h r = SSet.mem (Role.base r) h.transitive_roles

let transitive_subs_below h s =
  (* candidate transitive roles: both orientations of every declared
     transitive base name *)
  let candidates =
    SSet.fold
      (fun name acc -> Role.Name name :: Role.Inv name :: acc)
      h.transitive_roles []
  in
  List.filter (fun r -> sub_of h r s) candidates
