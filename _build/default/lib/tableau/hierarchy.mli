(** Role-hierarchy preprocessing for the tableau.

    Computes the reflexive-transitive closure ⊑* of the declared role
    inclusions, closed under inverses (R ⊑ S implies R⁻ ⊑ S⁻), and the set of
    transitive base roles (Trans(R) iff Trans(R⁻)). *)

type t

val build : Axiom.tbox_axiom list -> t

val supers : t -> Role.t -> Role.Set.t
(** All [S] with [R ⊑* S], including [R] itself. *)

val sub_of : t -> Role.t -> Role.t -> bool
(** [sub_of h r s] iff [r ⊑* s]. *)

val data_supers : t -> string -> string list
(** All data roles [V] with [U ⊑* V], including [U]. *)

val transitive : t -> Role.t -> bool
(** Whether the role's base name is declared transitive. *)

val transitive_subs_below : t -> Role.t -> Role.t list
(** All transitive [R'] with [R' ⊑* S] — the roles through which a
    [∀S.C] constraint must be propagated (the ∀₊ rule). *)
