lib/workload/gen.ml: Axiom Concept Fun Kb4 List Printf Random Role
