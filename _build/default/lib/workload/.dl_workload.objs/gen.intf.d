lib/workload/gen.mli: Axiom Kb4
