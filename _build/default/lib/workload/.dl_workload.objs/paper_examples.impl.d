lib/workload/paper_examples.ml: Axiom Concept Kb4 Role Truth
