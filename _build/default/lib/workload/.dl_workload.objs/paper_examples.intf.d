lib/workload/paper_examples.mli: Axiom Kb4 Truth
