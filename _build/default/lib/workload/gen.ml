type params = {
  seed : int;
  n_concepts : int;
  n_roles : int;
  n_individuals : int;
  n_tbox : int;
  n_abox : int;
  max_depth : int;
  inconsistency_rate : float;
  material_fraction : float;
  allow_negation : bool;
}

let default =
  { seed = 42;
    n_concepts = 20;
    n_roles = 5;
    n_individuals = 20;
    n_tbox = 30;
    n_abox = 40;
    max_depth = 2;
    inconsistency_rate = 0.1;
    material_fraction = 0.3;
    allow_negation = true }

let concept_name i = "C" ^ string_of_int i
let role_name i = "r" ^ string_of_int i
let individual_name i = "a" ^ string_of_int i

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let random_atom rng p = Concept.Atom (concept_name (Random.State.int rng p.n_concepts))
let random_role rng p = Role.name (role_name (Random.State.int rng p.n_roles))
let random_individual rng p = individual_name (Random.State.int rng p.n_individuals)

(* Random concept of nesting depth at most [depth].  Shapes are weighted
   towards the constructors common in real ontologies (conjunctions and
   existentials). *)
let rec random_concept rng p depth =
  if depth = 0 then
    match Random.State.int rng 4 with
    | 2 when p.allow_negation -> Concept.Not (random_atom rng p)
    | _ -> random_atom rng p
  else
    match Random.State.int rng 10 with
    | 0 | 1 ->
        Concept.And
          (random_concept rng p (depth - 1), random_concept rng p (depth - 1))
    | 2 ->
        Concept.Or
          (random_concept rng p (depth - 1), random_concept rng p (depth - 1))
    | 3 | 4 | 5 ->
        Concept.Exists (random_role rng p, random_concept rng p (depth - 1))
    | 6 ->
        Concept.Forall (random_role rng p, random_concept rng p (depth - 1))
    | 7 -> Concept.At_least (1 + Random.State.int rng 2, random_role rng p)
    | 8 when p.allow_negation -> Concept.Not (random_atom rng p)
    | _ -> random_atom rng p

let random_tbox rng p =
  List.init p.n_tbox (fun _ ->
      let lhs = random_atom rng p in
      let rhs = random_concept rng p p.max_depth in
      let kind =
        if Random.State.float rng 1.0 < p.material_fraction then Kb4.Material
        else Kb4.Internal
      in
      Kb4.Concept_inclusion (kind, lhs, rhs))

let random_abox rng p =
  List.init p.n_abox (fun _ ->
      match Random.State.int rng 5 with
      | 0 | 1 ->
          Axiom.Instance_of (random_individual rng p, random_atom rng p)
      | 2 when p.allow_negation ->
          Axiom.Instance_of
            (random_individual rng p, Concept.Not (random_atom rng p))
      | 3 ->
          Axiom.Role_assertion
            (random_individual rng p, random_role rng p, random_individual rng p)
      | _ ->
          Axiom.Instance_of
            (random_individual rng p, random_concept rng p 1))

let contradictions rng p =
  let n =
    int_of_float (ceil (p.inconsistency_rate *. float_of_int p.n_individuals))
  in
  List.concat
    (List.init n (fun _ ->
         let a = random_individual rng p and c = random_atom rng p in
         [ Axiom.Instance_of (a, c); Axiom.Instance_of (a, Concept.Not c) ]))

let kb4 p =
  let rng = Random.State.make [| p.seed |] in
  let tbox = random_tbox rng p in
  let abox = random_abox rng p @ contradictions rng p in
  Kb4.make ~tbox ~abox

let classical p =
  let k = kb4 p in
  let tbox =
    List.filter_map
      (function
        | Kb4.Concept_inclusion (_, c, d) -> Some (Axiom.Concept_sub (c, d))
        | Kb4.Role_inclusion (_, r, s) -> Some (Axiom.Role_sub (r, s))
        | Kb4.Data_role_inclusion (_, u, v) -> Some (Axiom.Data_role_sub (u, v))
        | Kb4.Transitive r -> Some (Axiom.Transitive r))
      k.Kb4.tbox
  in
  Axiom.make ~tbox ~abox:k.Kb4.abox

let taxonomy ~depth ~branching =
  let name level j = Printf.sprintf "C%d_%d" level j in
  let tbox = ref [] in
  for level = 1 to depth do
    let width = int_of_float (float_of_int branching ** float_of_int level) in
    for j = 0 to width - 1 do
      tbox :=
        Axiom.Concept_sub
          (Concept.Atom (name level j), Concept.Atom (name (level - 1) (j / branching)))
        :: !tbox
    done
  done;
  Axiom.make ~tbox:!tbox ~abox:[]

let inject_contradictions ~seed ~count (kb : Kb4.t) =
  let rng = Random.State.make [| seed |] in
  let signature = Kb4.signature kb in
  let concepts =
    match signature.Axiom.concepts with [] -> [ "C0" ] | cs -> cs
  in
  let individuals =
    match signature.Axiom.individuals with [] -> [ "a0" ] | is -> is
  in
  let extra =
    List.concat
      (List.init count (fun _ ->
           let a = pick rng individuals and c = pick rng concepts in
           [ Axiom.Instance_of (a, Concept.Atom c);
             Axiom.Instance_of (a, Concept.Not (Concept.Atom c)) ]))
  in
  { kb with Kb4.abox = kb.Kb4.abox @ extra }

let exception_chains ~n =
  let tbox =
    List.concat
      (List.init n (fun i ->
           let b = Concept.Atom (Printf.sprintf "B%d" i)
           and f = Concept.Atom (Printf.sprintf "F%d" i)
           and pg = Concept.Atom (Printf.sprintf "P%d" i) in
           [ Kb4.Concept_inclusion (Kb4.Material, b, f);
             Kb4.Concept_inclusion (Kb4.Internal, pg, b);
             Kb4.Concept_inclusion (Kb4.Internal, pg, Concept.Not f) ]))
  in
  let abox =
    List.map
      (fun i ->
        Axiom.Instance_of
          ( Printf.sprintf "a%d" i,
            Concept.And
              ( Concept.Atom (Printf.sprintf "P%d" i),
                Concept.Atom (Printf.sprintf "B%d" i) ) ))
      (List.init n Fun.id)
  in
  Kb4.make ~tbox ~abox
