(** Deterministic synthetic ontology generators and inconsistency injectors
    for the evaluation harness (experiments S1–S4 in DESIGN.md).

    All generators are pure functions of their parameters (the [seed] drives
    a private PRNG state), so benchmarks are reproducible. *)

type params = {
  seed : int;
  n_concepts : int;        (** size of the atomic concept vocabulary *)
  n_roles : int;
  n_individuals : int;
  n_tbox : int;            (** number of concept inclusion axioms *)
  n_abox : int;            (** number of ABox assertions *)
  max_depth : int;         (** maximal nesting depth of generated concepts *)
  inconsistency_rate : float;
      (** fraction of individuals receiving a contradictory pair
          [A(a), ¬A(a)] on top of the base ABox *)
  material_fraction : float;
      (** fraction of TBox inclusions that are material (exception-tolerant);
          the rest are internal *)
  allow_negation : bool;
      (** when false, no negated concepts or assertions are generated, so
          both the classical and the four-valued reading are consistent —
          the "consistent workload" of experiment S2 *)
}

val default : params

val kb4 : params -> Kb4.t
(** A random [SHOIN(D)4] knowledge base.  Left-hand sides of inclusions are
    atomic (absorbable), right-hand sides are random concepts; the ABox
    asserts random (possibly negated) atomic memberships and role edges, then
    contradictions are injected per [inconsistency_rate]. *)

val classical : params -> Axiom.kb
(** The same KB with every inclusion read as classical ⊑ (the baseline
    input). *)

val taxonomy : depth:int -> branching:int -> Axiom.kb
(** A complete concept tree: [C_{i,j} ⊑ C_{i-1, j/branching}]; used by the
    classification benches.  Concept names are [C0_0], [C1_0], … *)

val inject_contradictions : seed:int -> count:int -> Kb4.t -> Kb4.t
(** Adds [count] fresh contradictory pairs [A(a), ¬A(a)] over the KB's own
    signature (or a fresh one if empty). *)

val exception_chains : n:int -> Kb4.t
(** [n] penguin-style default/exception triads: for each [i],
    [Bᵢ ↦ Fᵢ], [Pᵢ ⊏ Bᵢ], [Pᵢ ⊏ ¬Fᵢ] with an instance [aᵢ : Pᵢ ⊓ Bᵢ].
    Classically unsatisfiable as soon as the material arrow is read as ⊑;
    four-valued satisfiable.  Used by the ablation bench (S4). *)
