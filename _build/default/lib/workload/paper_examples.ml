open Concept

let example1 =
  Kb4.make
    ~tbox:
      [ Kb4.Concept_inclusion
          ( Kb4.Internal,
            Exists (Role.name "hasPatient", Atom "Patient"),
            Atom "Doctor" ) ]
    ~abox:
      [ Axiom.Instance_of ("john", Atom "Doctor");
        Axiom.Instance_of ("john", Not (Atom "Doctor"));
        Axiom.Instance_of ("mary", Atom "Patient");
        Axiom.Role_assertion ("bill", Role.name "hasPatient", "mary") ]

let example2 =
  Kb4.make
    ~tbox:
      [ Kb4.Concept_inclusion
          (Kb4.Internal, Atom "SurgicalTeam", Not (Atom "ReadPatientRecordTeam"));
        Kb4.Concept_inclusion
          (Kb4.Internal, Atom "UrgencyTeam", Atom "ReadPatientRecordTeam") ]
    ~abox:
      [ Axiom.Instance_of ("john", Atom "SurgicalTeam");
        Axiom.Instance_of ("john", Atom "UrgencyTeam") ]

let winged_bird = And (Atom "Bird", Exists (Role.name "hasWing", Atom "Wing"))

let example3_abox =
  [ Axiom.Instance_of ("tweety", Atom "Bird");
    Axiom.Instance_of ("tweety", Atom "Penguin");
    Axiom.Instance_of ("w", Atom "Wing");
    Axiom.Role_assertion ("tweety", Role.name "hasWing", "w") ]

let example3 =
  Kb4.make
    ~tbox:
      [ Kb4.Concept_inclusion (Kb4.Material, winged_bird, Atom "Fly");
        Kb4.Concept_inclusion (Kb4.Internal, Atom "Penguin", Atom "Bird");
        Kb4.Concept_inclusion
          ( Kb4.Internal,
            Atom "Penguin",
            Exists (Role.name "hasWing", Atom "Wing") );
        Kb4.Concept_inclusion (Kb4.Internal, Atom "Penguin", Not (Atom "Fly")) ]
    ~abox:example3_abox

let example3_classical =
  Axiom.make
    ~tbox:
      [ Axiom.Concept_sub (winged_bird, Atom "Fly");
        Axiom.Concept_sub (Atom "Penguin", Atom "Bird");
        Axiom.Concept_sub
          (Atom "Penguin", Exists (Role.name "hasWing", Atom "Wing"));
        Axiom.Concept_sub (Atom "Penguin", Not (Atom "Fly")) ]
    ~abox:example3_abox

let example4 =
  Kb4.make
    ~tbox:
      [ Kb4.Concept_inclusion
          (Kb4.Internal, At_least (1, Role.name "hasChild"), Atom "Parent");
        Kb4.Concept_inclusion (Kb4.Material, Atom "Parent", Atom "Married") ]
    ~abox:
      [ Axiom.Role_assertion ("smith", Role.name "hasChild", "kate");
        Axiom.Instance_of ("smith", Not (Atom "Married")) ]

(* Table 4: values of hasChild(s,k), >=1.hasChild(s), Parent(s), Married(s). *)
let table4_rows =
  let t = Truth.True and top = Truth.Both and f = Truth.False in
  [ ([ t; t; t; top ], "M1-M4 (hasChild t, Parent t)");
    ([ top; t; t; top ], "M1-M4 (hasChild TOP, Parent t)");
    ([ t; t; top; top ], "M1-M4 (hasChild t, Parent TOP)");
    ([ top; t; top; top ], "M1-M4 (hasChild TOP, Parent TOP)");
    ([ t; t; top; f ], "M5-M6 (hasChild t)");
    ([ top; t; top; f ], "M5-M6 (hasChild TOP)");
    ([ top; top; t; top ], "M7-M8 (Parent t)");
    ([ top; top; top; top ], "M7-M8 (Parent TOP)");
    ([ top; top; top; f ], "M9") ]
