(** The worked examples of the paper (§1, §3.3, §4.2) as knowledge-base
    values, used by the integration tests, the runnable examples and the
    evaluation harness. *)

(** {1 Example 1 — inconsistent medical ABox}

    TBox: [∃hasPatient.Patient ⊏ Doctor].
    ABox: [Doctor(john)], [¬Doctor(john)], [Patient(mary)],
    [hasPatient(bill, mary)].  Four-valued satisfiable; supports
    [Doctor(bill)] positively but not negatively. *)

val example1 : Kb4.t

(** {1 Example 2 (and §1) — access-control conflict}

    TBox: [SurgicalTeam ⊏ ¬ReadPatientRecordTeam],
    [UrgencyTeam ⊏ ReadPatientRecordTeam].
    ABox: [SurgicalTeam(john)], [UrgencyTeam(john)].  Both the positive and
    the negative query about [ReadPatientRecordTeam(john)] are supported
    (value ⊤); [Patient(john)] is ⊥. *)

val example2 : Kb4.t

(** {1 Example 3 / Example 5 — Tweety the penguin}

    The four-valued TBox uses material inclusion for the default
    "winged birds fly" and internal inclusions for the exact knowledge; the
    classical rendition [example3_classical] is unsatisfiable. *)

val example3 : Kb4.t

val example3_classical : Axiom.kb
(** The [SHOIN(D)] rendition of example 3 (all ⊑); unsatisfiable. *)

(** {1 Example 4 / Table 4 — adopted child}

    TBox: [≥1.hasChild ⊏ Parent], [Parent ↦ Married].
    ABox: [hasChild(smith, kate)], [¬Married(smith)]. *)

val example4 : Kb4.t

val table4_rows : (Truth.t list * string) list
(** The nine rows of Table 4 — the supported truth values of
    [hasChild(s,k)], [≥1.hasChild(s)], [Parent(s)], [Married(s)] in the
    paper's models M1–M9, each with its label.  These are exactly the
    value combinations realizable by four-valued models over the domain
    [{smith, kate}] (see EXPERIMENTS.md, experiment EX4+T4). *)
