test/test_baselines.ml: Alcotest Axiom Baselines Concept Kb4 List Para Surface Tableau
