test/test_core.ml: Alcotest Concept Kb4 List Para Printf Reasoner Role String Surface Truth
