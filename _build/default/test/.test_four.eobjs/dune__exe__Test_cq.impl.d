test/test_cq.ml: Alcotest Concept Cq List Para Role Stdlib Surface Truth
