test/test_datatype.ml: Alcotest Datatype List
