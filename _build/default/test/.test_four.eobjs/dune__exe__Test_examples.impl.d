test/test_examples.ml: Alcotest Axiom Concept Enum Interp Interp4 Kb4 List Paper_examples Para Reasoner Role Seq Stdlib Tableau Truth
