test/test_explain.ml: Alcotest Axiom Concept Explain Kb4 List Paper_examples Para Surface
