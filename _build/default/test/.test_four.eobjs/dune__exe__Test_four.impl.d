test/test_four.ml: Alcotest Bilattice Format Int List Prop4 Prop4_tableau Truth
