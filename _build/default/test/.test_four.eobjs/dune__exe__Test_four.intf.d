test/test_four.mli:
