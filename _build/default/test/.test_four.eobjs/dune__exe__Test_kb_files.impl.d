test/test_kb_files.ml: Alcotest Concept Filename Fun Kb4 Owl_functional Para Surface Tableau Truth
