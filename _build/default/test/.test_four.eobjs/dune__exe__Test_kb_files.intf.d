test/test_kb_files.mli:
