test/test_native4.ml: Alcotest Axiom Concept Kb4 List Paper_examples Para Printf Role Surface Tableau4 Truth
