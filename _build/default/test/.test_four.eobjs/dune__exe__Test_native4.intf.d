test/test_native4.mli:
