test/test_owl.ml: Alcotest Axiom Concept Owl Owl_vocab Reasoner Role Surface Tableau
