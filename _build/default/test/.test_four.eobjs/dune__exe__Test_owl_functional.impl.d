test/test_owl_functional.ml: Alcotest Axiom Concept Datatype Kb4 List Owl_functional Paper_examples Para Role Tableau Transform Truth
