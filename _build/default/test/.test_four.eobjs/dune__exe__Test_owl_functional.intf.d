test/test_owl_functional.mli:
