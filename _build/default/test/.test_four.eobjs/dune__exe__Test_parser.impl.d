test/test_parser.ml: Alcotest Axiom Concept Datatype Gen Kb4 List Paper_examples Role Surface Transform
