test/test_semantics.ml: Alcotest Axiom Concept Datatype Enum Fmt Induced Interp Interp4 Kb4 List Mangle Paper_examples Role Seq Tableau Truth
