test/test_stats.ml: Alcotest Kb_stats Paper_examples Surface Transform
