test/test_syntax.ml: Alcotest Axiom Concept Datatype Kb4 List Mangle Role String
