test/test_tableau.ml: Alcotest Axiom Concept Datatype Interp Interp4 List Paper_examples Para Printf Reasoner Role String Tableau
