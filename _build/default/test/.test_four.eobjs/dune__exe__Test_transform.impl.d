test/test_transform.ml: Alcotest Axiom Concept Datatype Enum Induced Interp Interp4 Kb4 List Mangle Paper_examples Para Printf Role Seq Tableau Transform
