test/test_workload.ml: Alcotest Axiom Concept Gen Kb4 List Paper_examples Para Printf Reasoner Tableau
