(* Tests for the baseline strategies: classical (trivializing), syntactic
   subset selection, stratified repair — and their contrast with dl4. *)

open Concept

let answer = Alcotest.testable Baselines.pp_answer Baselines.equal_answer

let kb_of = Surface.parse_kb_exn

let consistent_kb = kb_of {| A << B. x : A. y : ~B. |}

let inconsistent_kb =
  kb_of {| A << B. x : A. x : ~B. z : C. |}

let classical_tests =
  [ Alcotest.test_case "consistent KB: normal answers" `Quick (fun () ->
        Alcotest.check answer "x:B accepted" Baselines.Accepted
          (Baselines.classical_instance consistent_kb "x" (Atom "B"));
        Alcotest.check answer "y:A rejected (classical contraposition)"
          Baselines.Rejected
          (Baselines.classical_instance consistent_kb "y" (Atom "A"));
        Alcotest.check answer "x:C undetermined" Baselines.Undetermined
          (Baselines.classical_instance consistent_kb "x" (Atom "C"));
        Alcotest.check answer "y:B rejected" Baselines.Rejected
          (Baselines.classical_instance consistent_kb "y" (Atom "B")));
    Alcotest.test_case "inconsistent KB: everything accepted" `Quick
      (fun () ->
        Alcotest.(check bool)
          "trivial" true
          (Baselines.classical_is_trivial inconsistent_kb);
        Alcotest.check answer "z:Unrelated accepted (!)" Baselines.Accepted
          (Baselines.classical_instance inconsistent_kb "z" (Atom "Unrelated")))
  ]

let selection_tests =
  [ Alcotest.test_case "answers from the relevant consistent region" `Quick
      (fun () ->
        (* the contradiction around x does not involve z's part of the KB *)
        Alcotest.check answer "z:C accepted" Baselines.Accepted
          (Baselines.selection_instance inconsistent_kb "z" (Atom "C")));
    Alcotest.test_case "abstains where the conflict is" `Quick (fun () ->
        (* around x everything is entangled with the contradiction *)
        Alcotest.check answer "x:B undetermined" Baselines.Undetermined
          (Baselines.selection_instance inconsistent_kb "x" (Atom "B")));
    Alcotest.test_case "on consistent KBs matches classical" `Quick (fun () ->
        List.iter
          (fun (ind, c) ->
            Alcotest.check answer
              (ind ^ " agrees")
              (Baselines.classical_instance consistent_kb ind c)
              (Baselines.selection_instance consistent_kb ind c))
          [ ("x", Atom "B"); ("y", Atom "B"); ("y", Atom "A") ]);
    Alcotest.test_case "selection subset is consistent" `Quick (fun () ->
        let subset =
          Baselines.selection_subset inconsistent_kb (Atom "B") "x"
        in
        Alcotest.(check bool) "consistent" true (Tableau.kb_satisfiable subset))
  ]

let stratified_tests =
  [ Alcotest.test_case "repair keeps a consistent sub-KB" `Quick (fun () ->
        let repaired = Baselines.stratified_repair inconsistent_kb in
        Alcotest.(check bool) "consistent" true (Tableau.kb_satisfiable repaired);
        (* TBox is rank 0, so the axiom A << B survives; one of the two
           conflicting assertions about x is dropped *)
        Alcotest.(check int) "tbox kept" 1 (List.length repaired.Axiom.tbox);
        Alcotest.(check int) "one abox axiom dropped" 2
          (List.length repaired.Axiom.abox));
    Alcotest.test_case "repair of a consistent KB is the identity" `Quick
      (fun () ->
        let repaired = Baselines.stratified_repair consistent_kb in
        Alcotest.(check int) "size" (Axiom.size consistent_kb)
          (Axiom.size repaired));
    Alcotest.test_case "ranks change which side wins" `Quick (fun () ->
        let kb = kb_of {| x : A. x : ~A. |} in
        (* default order keeps the first assertion *)
        let r1 = Baselines.stratified_repair kb in
        Alcotest.(check bool)
          "keeps x:A" true
          (List.exists
             (function
               | Axiom.Instance_of ("x", Atom "A") -> true
               | _ -> false)
             r1.Axiom.abox);
        (* rank the positive assertion lower priority: now ~A survives *)
        let ranks =
          { Baselines.default_ranks with
            Baselines.rank_abox =
              (function
              | Axiom.Instance_of (_, Atom _) -> 5
              | _ -> 1) }
        in
        let r2 = Baselines.stratified_repair ~ranks kb in
        Alcotest.(check bool)
          "keeps x:~A" true
          (List.exists
             (function
               | Axiom.Instance_of ("x", Not (Atom "A")) -> true
               | _ -> false)
             r2.Axiom.abox));
    Alcotest.test_case "stratified answers are decisive but arbitrary" `Quick
      (fun () ->
        let kb = kb_of {| x : A. x : ~A. |} in
        (* the repair silently picks a side... *)
        Alcotest.check answer "accepted" Baselines.Accepted
          (Baselines.stratified_instance kb "x" (Atom "A"));
        (* ...whereas dl4 reports the conflict *)
        let t = Para.create (Kb4.of_classical kb) in
        Alcotest.check answer "undetermined" Baselines.Undetermined
          (Baselines.para_instance t "x" (Atom "A")))
  ]

let para_comparison_tests =
  [ Alcotest.test_case "para answers survive unrelated contradictions" `Quick
      (fun () ->
        let kb4 =
          Surface.parse_kb4_exn {| A < B. x : A. x : ~B. z : C. |}
        in
        let t = Para.create kb4 in
        Alcotest.check answer "z:C accepted" Baselines.Accepted
          (Baselines.para_instance t "z" (Atom "C"));
        (* unlike subset selection, dl4 still reports x's entailed facts *)
        Alcotest.check answer "x:A accepted" Baselines.Accepted
          (Baselines.para_instance t "x" (Atom "A")));
    Alcotest.test_case "three-way collapse of Belnap values" `Quick (fun () ->
        let t =
          Para.create
            (Surface.parse_kb4_exn {| x : A. x : ~B. x : C. x : ~C. |})
        in
        Alcotest.check answer "t -> accepted" Baselines.Accepted
          (Baselines.para_instance t "x" (Atom "A"));
        Alcotest.check answer "f -> rejected" Baselines.Rejected
          (Baselines.para_instance t "x" (Atom "B"));
        Alcotest.check answer "TOP -> undetermined" Baselines.Undetermined
          (Baselines.para_instance t "x" (Atom "C"));
        Alcotest.check answer "BOT -> undetermined" Baselines.Undetermined
          (Baselines.para_instance t "x" (Atom "D")))
  ]

let () =
  Alcotest.run "baselines"
    [ ("classical", classical_tests);
      ("selection", selection_tests);
      ("stratified", stratified_tests);
      ("para-comparison", para_comparison_tests) ]
