(* Tests for the Para reasoner: the public paraconsistent API. *)

open Concept

let tv = Alcotest.testable Truth.pp Truth.equal

let kb_of src = Surface.parse_kb4_exn src

let instance_truth_tests =
  [ Alcotest.test_case "all four values in one KB" `Quick (fun () ->
        let t =
          Para.create
            (kb_of
               {| A < B.
                  x : A.
                  x : C.
                  x : ~C.
                  x : ~D. |})
        in
        Alcotest.check tv "A = t" Truth.True (Para.instance_truth t "x" (Atom "A"));
        Alcotest.check tv "B = t (derived)" Truth.True
          (Para.instance_truth t "x" (Atom "B"));
        Alcotest.check tv "C = TOP" Truth.Both (Para.instance_truth t "x" (Atom "C"));
        Alcotest.check tv "D = f" Truth.False (Para.instance_truth t "x" (Atom "D"));
        Alcotest.check tv "E = BOT" Truth.Neither
          (Para.instance_truth t "x" (Atom "E")));
    Alcotest.test_case "complex query concepts" `Quick (fun () ->
        let t =
          Para.create
            (kb_of {| x : A. x : ~B. r(x, y). y : A. |})
        in
        Alcotest.check tv "A & ~B = t" Truth.True
          (Para.instance_truth t "x" (And (Atom "A", Not (Atom "B"))));
        Alcotest.check tv "some r.A = t" Truth.True
          (Para.instance_truth t "x" (Exists (Role.name "r", Atom "A")));
        Alcotest.check tv "A | B = t" Truth.True
          (Para.instance_truth t "x" (Or (Atom "A", Atom "B"))));
    Alcotest.test_case "negation of query flips the value" `Quick (fun () ->
        let t = Para.create (kb_of "x : A. x : ~B.") in
        Alcotest.check tv "~A = f" Truth.False
          (Para.instance_truth t "x" (Not (Atom "A")));
        Alcotest.check tv "~B = t" Truth.True
          (Para.instance_truth t "x" (Not (Atom "B"))));
    Alcotest.test_case "internal inclusion does not contrapose" `Quick
      (fun () ->
        (* B < F and told ~F: the contradiction lands on F (told B pushes
           F+), while B itself stays cleanly true — internal inclusion has
           no contraposition back to ~B *)
        let t = Para.create (kb_of "B < F. x : ~F. x : B.") in
        Alcotest.check tv "F = TOP" Truth.Both
          (Para.instance_truth t "x" (Atom "F"));
        Alcotest.check tv "B = t" Truth.True
          (Para.instance_truth t "x" (Atom "B"));
        let t2 = Para.create (kb_of "B < F. x : ~F.") in
        Alcotest.check tv "without told B: ~B NOT derived" Truth.Neither
          (Para.instance_truth t2 "x" (Atom "B")));
    Alcotest.test_case "strong inclusion contraposes" `Quick (fun () ->
        let t = Para.create (kb_of "B -> F. x : ~F.") in
        Alcotest.check tv "B = f (contraposition)" Truth.False
          (Para.instance_truth t "x" (Atom "B")))
  ]

let satisfiability_tests =
  [ Alcotest.test_case "plain contradictions are 4-satisfiable" `Quick
      (fun () ->
        Alcotest.(check bool)
          "sat" true
          (Para.satisfiable (Para.create (kb_of "x : A. x : ~A."))));
    Alcotest.test_case "Bottom assertion is 4-unsatisfiable" `Quick (fun () ->
        Alcotest.(check bool)
          "unsat" false
          (Para.satisfiable (Para.create (kb_of "x : Bottom."))));
    Alcotest.test_case "number restrictions never clash with told edges"
      `Quick (fun () ->
        (* Table 2: x ∈ proj⁺(≤1.r) counts the NON-NEGATED successors, and
           an edge may be told-present and told-absent at once, so even this
           KB has a four-valued model (everything negated). *)
        Alcotest.(check bool)
          "sat" true
          (Para.satisfiable
             (Para.create
                (kb_of
                   {| x : <= 1 r.
                      r(x, y). r(x, z). y != z. |}))));
    Alcotest.test_case "datatype violations are 4-unsatisfiable" `Quick
      (fun () ->
        (* datatypes keep two-valued semantics, so they can genuinely clash *)
        Alcotest.(check bool)
          "unsat" false
          (Para.satisfiable
             (Para.create (kb_of {| u(a, 5). a : only u:int[0..4]. |}))));
    Alcotest.test_case "distinctness clash is 4-unsatisfiable" `Quick
      (fun () ->
        Alcotest.(check bool)
          "unsat" false
          (Para.satisfiable (Para.create (kb_of "a = b. a != b."))))
  ]

let role_truth_tests =
  [ Alcotest.test_case "asserted role is told-true" `Quick (fun () ->
        let t = Para.create (kb_of "r(a, b).") in
        Alcotest.check tv "t" Truth.True (Para.role_truth t "a" (Role.name "r") "b"));
    Alcotest.test_case "unasserted role is BOT" `Quick (fun () ->
        let t = Para.create (kb_of "r(a, b).") in
        Alcotest.check tv "BOT" Truth.Neither
          (Para.role_truth t "b" (Role.name "r") "a"));
    Alcotest.test_case "role inclusion propagates told edges" `Quick (fun () ->
        let t = Para.create (kb_of "role r < s. r(a, b).") in
        Alcotest.check tv "s told-true" Truth.True
          (Para.role_truth t "a" (Role.name "s") "b"))
  ]

let classify_tests =
  [ Alcotest.test_case "internal hierarchy" `Quick (fun () ->
        let t = Para.create (kb_of "A < B. B < C. x : A.") in
        let hierarchy = Para.classify t in
        Alcotest.(check (slist string String.compare))
          "A's supers" [ "B"; "C" ]
          (List.assoc "A" hierarchy);
        Alcotest.(check (list string)) "C's supers" [] (List.assoc "C" hierarchy));
    Alcotest.test_case "hierarchy survives contradictions elsewhere" `Quick
      (fun () ->
        let t = Para.create (kb_of "A < B. x : C. x : ~C. y : A.") in
        Alcotest.(check (slist string String.compare))
          "A < B still holds" [ "B" ]
          (List.assoc "A" (Para.classify t)))
  ]

let taxonomy_tests =
  [ Alcotest.test_case "chain reduces to direct edges" `Quick (fun () ->
        let t = Para.create (kb_of "A < B. B < C. A < C. x : A.") in
        let taxonomy = Para.taxonomy t in
        let direct_of a =
          snd (List.find (fun (cls, _) -> List.mem a cls) taxonomy)
        in
        Alcotest.(check (list string)) "A -> B only" [ "B" ] (direct_of "A");
        Alcotest.(check (list string)) "B -> C" [ "C" ] (direct_of "B");
        Alcotest.(check (list string)) "C is a root" [] (direct_of "C"));
    Alcotest.test_case "equivalent concepts group into one class" `Quick
      (fun () ->
        let t = Para.create (kb_of "A < B. B < A. B < C. x : A.") in
        let taxonomy = Para.taxonomy t in
        let cls = List.find (fun (cls, _) -> List.mem "A" cls) taxonomy in
        Alcotest.(check (slist string String.compare))
          "A and B together" [ "A"; "B" ] (fst cls);
        Alcotest.(check (list string)) "above them: C" [ "C" ] (snd cls));
    Alcotest.test_case "diamond keeps both direct parents" `Quick (fun () ->
        let t =
          Para.create (kb_of "A < B. A < C. B < D. C < D. x : A.")
        in
        let direct_of a =
          snd
            (List.find (fun (cls, _) -> List.mem a cls) (Para.taxonomy t))
        in
        Alcotest.(check (slist string String.compare))
          "A under B and C" [ "B"; "C" ] (direct_of "A"))
  ]

let retrieval_tests =
  [ Alcotest.test_case "retrieve classifies all individuals" `Quick (fun () ->
        let t = Para.create (kb_of "x : A. y : ~A. z : A. z : ~A. w : B.") in
        let values = Para.retrieve t (Atom "A") in
        Alcotest.check tv "x" Truth.True (List.assoc "x" values);
        Alcotest.check tv "y" Truth.False (List.assoc "y" values);
        Alcotest.check tv "z" Truth.Both (List.assoc "z" values);
        Alcotest.check tv "w" Truth.Neither (List.assoc "w" values));
    Alcotest.test_case "retrieve_instances keeps designated values" `Quick
      (fun () ->
        let t = Para.create (kb_of "x : A. y : ~A. z : A. z : ~A.") in
        Alcotest.(check (slist string String.compare))
          "instances" [ "x"; "z" ]
          (Para.retrieve_instances t (Atom "A")));
    Alcotest.test_case "retrieval through TBox" `Quick (fun () ->
        let t = Para.create (kb_of "A < B. x : A. y : B.") in
        Alcotest.(check (slist string String.compare))
          "B instances" [ "x"; "y" ]
          (Para.retrieve_instances t (Atom "B")))
  ]

let inconsistency_degree_tests =
  [ Alcotest.test_case "clean KB has degree 0" `Quick (fun () ->
        let t = Para.create (kb_of "A < B. x : A.") in
        Alcotest.(check (float 1e-9)) "zero" 0.0 (Para.inconsistency_degree t));
    Alcotest.test_case "fully contradictory KB has degree 1" `Quick (fun () ->
        let t = Para.create (kb_of "x : A. x : ~A.") in
        Alcotest.(check (float 1e-9)) "one" 1.0 (Para.inconsistency_degree t));
    Alcotest.test_case "mixed KB has intermediate degree" `Quick (fun () ->
        (* grid: A(x)=TOP, B(x)=t -> 1 contradiction / 2 informative *)
        let t = Para.create (kb_of "x : A. x : ~A. x : B.") in
        Alcotest.(check (float 1e-9)) "half" 0.5 (Para.inconsistency_degree t));
    Alcotest.test_case "empty KB degree 0" `Quick (fun () ->
        let t = Para.create Kb4.empty in
        Alcotest.(check (float 1e-9)) "zero" 0.0 (Para.inconsistency_degree t))
  ]

let truth_table_tests =
  [ Alcotest.test_case "grid evaluation" `Quick (fun () ->
        let t = Para.create (kb_of "x : A. y : ~A.") in
        let table =
          Para.truth_table t ~individuals:[ "x"; "y" ]
            ~concepts:[ Atom "A"; Not (Atom "A") ]
        in
        match table with
        | [ ("x", [ (_, vx1); (_, vx2) ]); ("y", [ (_, vy1); (_, vy2) ]) ] ->
            Alcotest.check tv "x:A" Truth.True vx1;
            Alcotest.check tv "x:~A" Truth.False vx2;
            Alcotest.check tv "y:A" Truth.False vy1;
            Alcotest.check tv "y:~A" Truth.True vy2
        | _ -> Alcotest.fail "shape")
  ]

let agreement_tests =
  [ Alcotest.test_case
      "on consistent KBs, 4-valued and classical instance checks agree on \
       told-positive queries"
      `Quick (fun () ->
        let src = {| A < B. B < C. x : A. y : ~C. r(x, y). |} in
        let t = Para.create (kb_of src) in
        let classical =
          Surface.parse_kb_exn
            {| A << B. B << C. x : A. y : ~C. r(x, y). |}
        in
        let r = Reasoner.create classical in
        List.iter
          (fun (ind, c) ->
            let classical_yes = Reasoner.instance_of r ind c in
            let four_yes = Para.entails_instance t ind c in
            Alcotest.(check bool)
              (Printf.sprintf "%s : %s" ind (Concept.to_string c))
              classical_yes four_yes)
          [ ("x", Atom "A"); ("x", Atom "B"); ("x", Atom "C");
            ("y", Atom "A") ])
  ]

let () =
  Alcotest.run "core"
    [ ("instance-truth", instance_truth_tests);
      ("satisfiability", satisfiability_tests);
      ("role-truth", role_truth_tests);
      ("classify", classify_tests);
      ("taxonomy", taxonomy_tests);
      ("retrieval", retrieval_tests);
      ("inconsistency-degree", inconsistency_degree_tests);
      ("truth-table", truth_table_tests);
      ("agreement", agreement_tests) ]
