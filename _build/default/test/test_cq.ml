(* Tests for grounded conjunctive queries. *)

open Concept

let tv = Alcotest.testable Truth.pp Truth.equal

let kb =
  Surface.parse_kb4_exn
    {|
    Surgeon < Doctor.
    hasPatient(bill, mary).
    mary : Patient.
    bill : Surgeon.
    dana : Doctor.
    dana : ~Surgeon.
    eve : Doctor.
    eve : ~Doctor.
    |}

let t = Para.create kb

let q_doctors =
  Cq.make ~head:[ "x" ] ~body:[ Cq.Concept_atom (Atom "Doctor", Cq.Var "x") ]

let q_treating =
  Cq.make ~head:[ "x"; "y" ]
    ~body:
      [ Cq.Concept_atom (Atom "Doctor", Cq.Var "x");
        Cq.Role_atom (Role.name "hasPatient", Cq.Var "x", Cq.Var "y");
        Cq.Concept_atom (Atom "Patient", Cq.Var "y") ]

let answer_tuples q = List.map fst (Cq.answers t q)

let cq_tests =
  [ Alcotest.test_case "single-atom retrieval" `Quick (fun () ->
        Alcotest.(check (slist (list string) Stdlib.compare))
          "doctors"
          [ [ "bill" ]; [ "dana" ]; [ "eve" ] ]
          (answer_tuples q_doctors));
    Alcotest.test_case "contradictory support is reported as TOP" `Quick
      (fun () ->
        let values = Cq.answers t q_doctors in
        Alcotest.check tv "eve tainted" Truth.Both
          (List.assoc [ "eve" ] values);
        Alcotest.check tv "bill clean" Truth.True
          (List.assoc [ "bill" ] values));
    Alcotest.test_case "join across roles" `Quick (fun () ->
        Alcotest.(check (list (list string)))
          "treating pairs"
          [ [ "bill"; "mary" ] ]
          (answer_tuples q_treating));
    Alcotest.test_case "clean answers sort before tainted ones" `Quick
      (fun () ->
        match Cq.answers t q_doctors with
        | (_, v1) :: _ ->
            Alcotest.check tv "first is t" Truth.True v1
        | [] -> Alcotest.fail "expected answers");
    Alcotest.test_case "constants in queries" `Quick (fun () ->
        let q =
          Cq.make ~head:[ "y" ]
            ~body:
              [ Cq.Role_atom (Role.name "hasPatient", Cq.Ind "bill", Cq.Var "y") ]
        in
        Alcotest.(check (list (list string))) "mary" [ [ "mary" ] ] (answer_tuples q));
    Alcotest.test_case "boolean query (empty head)" `Quick (fun () ->
        let q =
          Cq.make ~head:[]
            ~body:[ Cq.Concept_atom (Atom "Patient", Cq.Ind "mary") ]
        in
        match Cq.answers t q with
        | [ ([], v) ] -> Alcotest.check tv "t" Truth.True v
        | _ -> Alcotest.fail "expected the empty tuple");
    Alcotest.test_case "denied atoms kill the tuple" `Quick (fun () ->
        let q =
          Cq.make ~head:[ "x" ]
            ~body:
              [ Cq.Concept_atom (Atom "Doctor", Cq.Var "x");
                Cq.Concept_atom (Atom "Surgeon", Cq.Var "x") ]
        in
        (* dana is a doctor but told NOT a surgeon: conj(t, f) = f *)
        Alcotest.(check bool)
          "dana excluded" false
          (List.mem [ "dana" ] (answer_tuples q)));
    Alcotest.test_case "all_bindings reports non-designated values too"
      `Quick (fun () ->
        let q =
          Cq.make ~head:[ "x" ]
            ~body:[ Cq.Concept_atom (Atom "Surgeon", Cq.Var "x") ]
        in
        let bindings = Cq.all_bindings t q in
        let value_of ind =
          List.assoc [ ("x", ind) ]
            (List.map (fun (b, v) -> (b, v)) bindings)
        in
        Alcotest.check tv "dana f" Truth.False (value_of "dana");
        Alcotest.check tv "mary BOT" Truth.Neither (value_of "mary"));
    Alcotest.test_case "head variable must occur in body" `Quick (fun () ->
        match
          Cq.make ~head:[ "z" ]
            ~body:[ Cq.Concept_atom (Atom "Doctor", Cq.Var "x") ]
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "complex concept atoms" `Quick (fun () ->
        let q =
          Cq.make ~head:[ "x" ]
            ~body:
              [ Cq.Concept_atom
                  (Exists (Role.name "hasPatient", Atom "Patient"), Cq.Var "x") ]
        in
        Alcotest.(check (list (list string)))
          "bill" [ [ "bill" ] ] (answer_tuples q))
  ]

let () = Alcotest.run "cq" [ ("conjunctive-queries", cq_tests) ]
