(* Tests for the concrete domain: membership, conjunction satisfiability,
   cardinality, complements, witnesses. *)

open Datatype

let check_bool name expected got =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) name expected got)

let member_tests =
  [ check_bool "int in range" true (member (Int 5) (Int_range (Some 0, Some 10)));
    check_bool "int below range" false
      (member (Int (-1)) (Int_range (Some 0, Some 10)));
    check_bool "int in unbounded range" true
      (member (Int 1_000_000) (Int_range (Some 0, None)));
    check_bool "string not in int range" false
      (member (Str "x") (Int_range (Some 0, Some 10)));
    check_bool "string in String_type" true (member (Str "x") String_type);
    check_bool "bool in Bool_type" true (member (Bool true) Bool_type);
    check_bool "value in one_of" true
      (member (Str "a") (One_of [ Str "a"; Int 3 ]));
    check_bool "value not in one_of" false
      (member (Str "b") (One_of [ Str "a"; Int 3 ]));
    check_bool "complement flips membership" true
      (member (Int 42) (Complement (Int_range (Some 0, Some 10))));
    check_bool "double complement" true
      (member (Int 5) (Complement (Complement (Int_range (Some 0, Some 10)))));
    check_bool "everything in Top_data" true (member (Bool false) Top_data);
    check_bool "nothing in Bottom_data" false (member (Int 0) Bottom_data)
  ]

let satisfiability_tests =
  [ check_bool "overlapping ranges" true
      (satisfiable [ Int_range (Some 0, Some 10); Int_range (Some 5, Some 20) ]);
    check_bool "disjoint ranges" false
      (satisfiable [ Int_range (Some 0, Some 4); Int_range (Some 5, Some 20) ]);
    check_bool "range with complement point" true
      (satisfiable
         [ Int_range (Some 0, Some 1); Complement (One_of [ Int 0 ]) ]);
    check_bool "singleton range minus its point" false
      (satisfiable
         [ Int_range (Some 3, Some 3); Complement (One_of [ Int 3 ]) ]);
    check_bool "int and string types disjoint" false
      (satisfiable [ Int_type; String_type ]);
    check_bool "empty conjunction satisfiable" true (satisfiable []);
    check_bool "bottom kills everything" false
      (satisfiable [ Bottom_data; Top_data ]);
    check_bool "complement of top is empty" false
      (satisfiable [ Complement Top_data ]);
    check_bool "one_of intersected with range" true
      (satisfiable [ One_of [ Int 7; Int 99 ]; Int_range (Some 0, Some 10) ]);
    check_bool "one_of disjoint from range" false
      (satisfiable [ One_of [ Int 99 ]; Int_range (Some 0, Some 10) ])
  ]

let cardinality_tests =
  [ check_bool "range [1,3] has >= 3" true
      (cardinal_at_least 3 [ Int_range (Some 1, Some 3) ]);
    check_bool "range [1,3] lacks >= 4" false
      (cardinal_at_least 4 [ Int_range (Some 1, Some 3) ]);
    check_bool "unbounded range has any cardinality" true
      (cardinal_at_least 1_000_000 [ Int_range (None, Some 0) ]);
    check_bool "booleans max out at 2" false (cardinal_at_least 3 [ Bool_type ]);
    check_bool "booleans reach 2" true (cardinal_at_least 2 [ Bool_type ]);
    check_bool "strings are infinite" true
      (cardinal_at_least 1_000_000 [ String_type ]);
    check_bool "cofinite strings still infinite" true
      (cardinal_at_least 10 [ Complement (One_of [ Str "a" ]) ]);
    check_bool "zero is always satisfied" true (cardinal_at_least 0 [ Bottom_data ]);
    check_bool "top data counts across kinds" true
      (cardinal_at_least 5 [ Top_data ]);
    check_bool "range with punched holes" false
      (cardinal_at_least 3
         [ Int_range (Some 1, Some 3); Complement (One_of [ Int 2 ]) ])
  ]

let witness_tests =
  [ Alcotest.test_case "witnesses are members and distinct" `Quick (fun () ->
        let ds = [ Int_range (Some 0, Some 100); Complement (One_of [ Int 1 ]) ] in
        let ws = witnesses 5 ds in
        Alcotest.(check int) "count" 5 (List.length ws);
        List.iter
          (fun w ->
            Alcotest.(check bool)
              "member" true
              (List.for_all (member w) ds))
          ws;
        Alcotest.(check int)
          "distinct" 5
          (List.length (List.sort_uniq compare_value ws)));
    Alcotest.test_case "witnesses limited by small datatype" `Quick (fun () ->
        let ws = witnesses 5 [ Bool_type ] in
        Alcotest.(check int) "count" 2 (List.length ws));
    Alcotest.test_case "cofinite string witnesses avoid exclusions" `Quick
      (fun () ->
        let ds = [ Complement (One_of [ Str "v0"; Str "v1" ]) ] in
        let ws = witnesses 3 ds in
        Alcotest.(check int) "count" 3 (List.length ws);
        List.iter
          (fun w ->
            Alcotest.(check bool) "member" true (List.for_all (member w) ds))
          ws);
    Alcotest.test_case "no witnesses from empty datatype" `Quick (fun () ->
        Alcotest.(check int) "count" 0 (List.length (witnesses 3 [ Bottom_data ])))
  ]

let () =
  Alcotest.run "datatype"
    [ ("membership", member_tests);
      ("satisfiability", satisfiability_tests);
      ("cardinality", cardinality_tests);
      ("witnesses", witness_tests) ]
