(* Integration tests reproducing the paper's worked examples (§1, §3.3,
   §4.2): Examples 1-5 and Table 4.  Expected answers are taken verbatim
   from the paper text. *)

open Concept

let tv = Alcotest.testable Truth.pp Truth.equal

(* ------------------------------------------------------------------ *)
(* Example 1: inconsistent medical ABox *)

let example1_tests =
  let t = Para.create Paper_examples.example1 in
  [ Alcotest.test_case "KB is four-valued satisfiable" `Quick (fun () ->
        Alcotest.(check bool) "sat" true (Para.satisfiable t));
    Alcotest.test_case "classical reading is inconsistent (trivial)" `Quick
      (fun () ->
        let classical =
          Axiom.make
            ~tbox:
              [ Axiom.Concept_sub
                  ( Exists (Role.name "hasPatient", Atom "Patient"),
                    Atom "Doctor" ) ]
            ~abox:(Paper_examples.example1 : Kb4.t).abox
        in
        let r = Reasoner.create classical in
        Alcotest.(check bool) "inconsistent" false (Reasoner.is_consistent r);
        (* ... from which everything follows, even irrelevant facts *)
        Alcotest.(check bool)
          "trivially entails Patient(john)" true
          (Reasoner.instance_of r "john" (Atom "Patient")));
    Alcotest.test_case "information that bill is a doctor: yes" `Quick
      (fun () ->
        Alcotest.(check bool)
          "positive" true
          (Para.entails_instance t "bill" (Atom "Doctor")));
    Alcotest.test_case "information that bill is not a doctor: no" `Quick
      (fun () ->
        Alcotest.(check bool)
          "negative" false
          (Para.entails_not_instance t "bill" (Atom "Doctor")));
    Alcotest.test_case "bill : Doctor has value t" `Quick (fun () ->
        Alcotest.check tv "t" Truth.True
          (Para.instance_truth t "bill" (Atom "Doctor")));
    Alcotest.test_case "john : Doctor has value TOP (the contradiction)"
      `Quick (fun () ->
        Alcotest.check tv "TOP" Truth.Both
          (Para.instance_truth t "john" (Atom "Doctor")));
    Alcotest.test_case "irrelevant Patient(john) is NOT entailed" `Quick
      (fun () ->
        Alcotest.check tv "BOT" Truth.Neither
          (Para.instance_truth t "john" (Atom "Patient")));
    Alcotest.test_case "paper's witness model is a 4-model" `Quick (fun () ->
        (* Doctor = <{john,bill},{john}>, Patient = <{mary},∅>,
           hasPatient = <{(bill,mary)},∅> with john=0 mary=1 bill=2 *)
        let i =
          Interp4.make
            ~domain:(Interp.ESet.of_list [ 0; 1; 2 ])
            ~concepts:
              [ ("Doctor", [ 0; 2 ], [ 0 ]); ("Patient", [ 1 ], []) ]
            ~roles:[ ("hasPatient", [ (2, 1) ], []) ]
            ~individuals:[ ("john", 0); ("mary", 1); ("bill", 2) ]
            ()
        in
        Alcotest.(check bool)
          "is model" true
          (Interp4.is_model i Paper_examples.example1);
        Alcotest.(check bool)
          "bill not told-non-doctor here" false
          (Interp.ESet.mem 2 (Interp4.eval i (Atom "Doctor")).Interp4.cneg))
  ]

(* ------------------------------------------------------------------ *)
(* Example 2: access-control conflict *)

let example2_tests =
  let t = Para.create Paper_examples.example2 in
  let rprt = Atom "ReadPatientRecordTeam" in
  [ Alcotest.test_case "KB is four-valued satisfiable" `Quick (fun () ->
        Alcotest.(check bool) "sat" true (Para.satisfiable t));
    Alcotest.test_case "allowed to read: yes" `Quick (fun () ->
        Alcotest.(check bool) "pos" true (Para.entails_instance t "john" rprt));
    Alcotest.test_case "not allowed to read: also yes (contradiction)" `Quick
      (fun () ->
        Alcotest.(check bool)
          "neg" true
          (Para.entails_not_instance t "john" rprt));
    Alcotest.test_case "john : ReadPatientRecordTeam = TOP" `Quick (fun () ->
        Alcotest.check tv "TOP" Truth.Both (Para.instance_truth t "john" rprt));
    Alcotest.test_case "john : Patient = BOT (not contrary)" `Quick (fun () ->
        Alcotest.check tv "BOT" Truth.Neither
          (Para.instance_truth t "john" (Atom "Patient")));
    Alcotest.test_case "contradiction is localized by [contradictions]" `Quick
      (fun () ->
        let cs = Para.contradictions t in
        Alcotest.(check bool)
          "rprt flagged" true
          (List.mem ("john", "ReadPatientRecordTeam") cs);
        Alcotest.(check bool)
          "surgical not flagged" false
          (List.mem ("john", "SurgicalTeam") cs))
  ]

(* ------------------------------------------------------------------ *)
(* Examples 3 and 5: Tweety; transformation and reasoning *)

let example3_tests =
  let t = Para.create Paper_examples.example3 in
  [ Alcotest.test_case "classical rendition is unsatisfiable" `Quick (fun () ->
        Alcotest.(check bool)
          "unsat" false
          (Tableau.kb_satisfiable Paper_examples.example3_classical));
    Alcotest.test_case "four-valued KB is satisfiable" `Quick (fun () ->
        Alcotest.(check bool) "sat" true (Para.satisfiable t));
    Alcotest.test_case "Fly-(tweety) holds: tweety cannot fly" `Quick
      (fun () ->
        Alcotest.(check bool)
          "told false" true
          (Para.entails_not_instance t "tweety" (Atom "Fly")));
    Alcotest.test_case "Fly+(tweety) does not hold: KB is not trivial" `Quick
      (fun () ->
        Alcotest.(check bool)
          "told true" false
          (Para.entails_instance t "tweety" (Atom "Fly")));
    Alcotest.test_case "tweety : Fly = f" `Quick (fun () ->
        Alcotest.check tv "f" Truth.False
          (Para.instance_truth t "tweety" (Atom "Fly")));
    Alcotest.test_case "tweety : Penguin = t" `Quick (fun () ->
        Alcotest.check tv "t" Truth.True
          (Para.instance_truth t "tweety" (Atom "Penguin")));
    Alcotest.test_case "paper's witness model I satisfies K4" `Quick
      (fun () ->
        (* Bird = <{tweety},{tweety}>, Fly = <∅,{tweety}>,
           Penguin = <{tweety},∅>, Wing = <{w},∅>,
           hasWing = <{(tweety,w)},∅>; tweety=0, w=1.
           (The paper prints hasWing^I = <{tweety},{w}>, an obvious typo for
           the positive pair set {(tweety,w)}.) *)
        let i =
          Interp4.make
            ~domain:(Interp.ESet.of_list [ 0; 1 ])
            ~concepts:
              [ ("Bird", [ 0 ], [ 0 ]);
                ("Fly", [], [ 0 ]);
                ("Penguin", [ 0 ], []);
                ("Wing", [ 1 ], []) ]
            ~roles:[ ("hasWing", [ (0, 1) ], []) ]
            ~individuals:[ ("tweety", 0); ("w", 1) ]
            ()
        in
        Alcotest.(check bool)
          "is model" true
          (Interp4.is_model i Paper_examples.example3);
        Alcotest.check tv "Bird(tweety)=TOP" Truth.Both
          (Interp4.truth_value i (Atom "Bird") "tweety");
        Alcotest.check tv "Fly(tweety)=f" Truth.False
          (Interp4.truth_value i (Atom "Fly") "tweety");
        Alcotest.check tv "Penguin(tweety)=t" Truth.True
          (Interp4.truth_value i (Atom "Penguin") "tweety"));
    Alcotest.test_case "Example 5: the induced classical KB shape" `Quick
      (fun () ->
        let kbar = Para.classical_kb t in
        (* Penguin+ << Bird+, Penguin+ << some hasWing+.Wing+,
           Penguin+ << Fly-, and the material axiom
           ~(Bird- | only hasWing+.Wing-) << Fly+ *)
        let has ax =
          List.exists (fun ax' -> Axiom.compare_tbox_axiom ax ax' = 0) kbar.Axiom.tbox
        in
        Alcotest.(check bool)
          "Penguin+ << Bird+" true
          (has (Axiom.Concept_sub (Atom "Penguin+", Atom "Bird+")));
        Alcotest.(check bool)
          "Penguin+ << Fly-" true
          (has (Axiom.Concept_sub (Atom "Penguin+", Atom "Fly-")));
        Alcotest.(check bool)
          "Penguin+ << some hasWing+.Wing+" true
          (has
             (Axiom.Concept_sub
                ( Atom "Penguin+",
                  Exists (Role.name "hasWing+", Atom "Wing+") )));
        (* one classical axiom per four-valued axiom here: the material
           inclusion and the three internal ones *)
        Alcotest.(check int) "four classical axioms" 4
          (List.length kbar.Axiom.tbox))
  ]

(* ------------------------------------------------------------------ *)
(* Example 4 and Table 4 *)

let example4_tests =
  let t = Para.create Paper_examples.example4 in
  let has_child = Role.name "hasChild" in
  [ Alcotest.test_case "KB is four-valued satisfiable" `Quick (fun () ->
        Alcotest.(check bool) "sat" true (Para.satisfiable t));
    Alcotest.test_case "classical reading is inconsistent" `Quick (fun () ->
        let classical =
          Axiom.make
            ~tbox:
              [ Axiom.Concept_sub (At_least (1, has_child), Atom "Parent");
                Axiom.Concept_sub (Atom "Parent", Atom "Married") ]
            ~abox:(Paper_examples.example4 : Kb4.t).abox
        in
        Alcotest.(check bool) "unsat" false (Tableau.kb_satisfiable classical));
    Alcotest.test_case "smith : Parent = t (told, not denied)" `Quick
      (fun () ->
        Alcotest.check tv "t" Truth.True
          (Para.instance_truth t "smith" (Atom "Parent")));
    Alcotest.test_case "smith : Married = f (exception wins)" `Quick
      (fun () ->
        Alcotest.check tv "f" Truth.False
          (Para.instance_truth t "smith" (Atom "Married")));
    Alcotest.test_case "hasChild(smith,kate) told-true, not told-false"
      `Quick (fun () ->
        Alcotest.check tv "t" Truth.True
          (Para.role_truth t "smith" has_child "kate"));
    Alcotest.test_case
      "Table 4: realizable value rows over {smith,kate} match the paper"
      `Slow (fun () ->
        let statements i =
          [ Interp4.role_truth_value i has_child "smith" "kate";
            Interp4.truth_value i (At_least (1, has_child)) "smith";
            Interp4.truth_value i (Atom "Parent") "smith";
            Interp4.truth_value i (Atom "Married") "smith" ]
        in
        let module Rows = Stdlib.Set.Make (struct
          type t = Truth.t list

          let compare = List.compare Truth.compare
        end) in
        let realized =
          Seq.fold_left
            (fun acc m -> Rows.add (statements m) acc)
            Rows.empty
            (Enum.models4 Paper_examples.example4)
        in
        let expected =
          Rows.of_list (List.map fst Paper_examples.table4_rows)
        in
        Alcotest.(check int)
          "nine distinct rows" 9 (Rows.cardinal realized);
        Alcotest.(check bool)
          "rows match Table 4 exactly" true
          (Rows.equal realized expected))
  ]

let () =
  Alcotest.run "paper-examples"
    [ ("example1", example1_tests);
      ("example2", example2_tests);
      ("example3+5", example3_tests);
      ("example4+table4", example4_tests) ]
