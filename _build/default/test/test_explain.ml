(* Tests for black-box axiom pinpointing (Explain). *)

let kb_of = Surface.parse_kb4_exn

let kb4_size (kb : Kb4.t) = Kb4.size kb

let has_tbox (kb : Kb4.t) ax =
  List.exists (fun ax' -> Kb4.compare_tbox_axiom ax ax' = 0) kb.tbox

let has_abox (kb : Kb4.t) ax =
  List.exists (fun ax' -> Axiom.compare_abox_axiom ax ax' = 0) kb.abox

open Concept

let justification_tests =
  [ Alcotest.test_case "minimal justification of a derived instance" `Quick
      (fun () ->
        let kb = kb_of "A < B. B < C. x : A. y : D." in
        match Explain.justification kb (Explain.Instance ("x", Atom "C")) with
        | None -> Alcotest.fail "entailment should hold"
        | Some j ->
            Alcotest.(check int) "three axioms" 3 (kb4_size j);
            Alcotest.(check bool)
              "contains A < B" true
              (has_tbox j (Kb4.Concept_inclusion (Kb4.Internal, Atom "A", Atom "B")));
            Alcotest.(check bool)
              "contains x : A" true
              (has_abox j (Axiom.Instance_of ("x", Atom "A")));
            Alcotest.(check bool)
              "irrelevant fact dropped" false
              (has_abox j (Axiom.Instance_of ("y", Atom "D"))));
    Alcotest.test_case "no justification for non-entailment" `Quick (fun () ->
        let kb = kb_of "x : A." in
        Alcotest.(check bool)
          "none" true
          (Explain.justification kb (Explain.Instance ("x", Atom "B")) = None));
    Alcotest.test_case "justification is really minimal" `Quick (fun () ->
        let kb = kb_of "A < C. B < C. x : A. x : B. x : C." in
        match Explain.justification kb (Explain.Instance ("x", Atom "C")) with
        | None -> Alcotest.fail "holds"
        | Some j ->
            (* any single support suffices; minimality means size 1 or 2 *)
            Alcotest.(check bool) "small" true (kb4_size j <= 2));
    Alcotest.test_case "contradiction pinpointing" `Quick (fun () ->
        let kb = kb_of "A < B. C < ~B. x : A. x : C. y : A." in
        match
          Explain.justification kb (Explain.Contradiction ("x", Atom "B"))
        with
        | None -> Alcotest.fail "x : B should be TOP"
        | Some j ->
            Alcotest.(check int) "four axioms" 4 (kb4_size j);
            Alcotest.(check bool)
              "y's fact not involved" false
              (has_abox j (Axiom.Instance_of ("y", Atom "A"))));
    Alcotest.test_case "inclusion justification" `Quick (fun () ->
        let kb = kb_of "A < B. B < C. C < D. x : E." in
        match
          Explain.justification kb
            (Explain.Inclusion (Kb4.Internal, Atom "A", Atom "C"))
        with
        | None -> Alcotest.fail "holds"
        | Some j -> Alcotest.(check int) "two axioms" 2 (kb4_size j));
    Alcotest.test_case "unsatisfiability justification" `Quick (fun () ->
        let kb = kb_of "x : Bottom. y : A." in
        match Explain.justification kb Explain.Unsatisfiable with
        | None -> Alcotest.fail "unsat"
        | Some j ->
            Alcotest.(check int) "just the Bottom assertion" 1 (kb4_size j))
  ]

let hst_tests =
  [ Alcotest.test_case "two independent supports yield two justifications"
      `Quick (fun () ->
        let kb = kb_of "A < C. B < C. x : A. x : B." in
        let js =
          Explain.all_justifications kb (Explain.Instance ("x", Atom "C"))
        in
        Alcotest.(check int) "two" 2 (List.length js);
        List.iter
          (fun j -> Alcotest.(check int) "each of size 2" 2 (kb4_size j))
          js);
    Alcotest.test_case "single support yields one justification" `Quick
      (fun () ->
        let kb = kb_of "A < B. x : A." in
        Alcotest.(check int)
          "one" 1
          (List.length
             (Explain.all_justifications kb (Explain.Instance ("x", Atom "B")))));
    Alcotest.test_case "limit caps enumeration" `Quick (fun () ->
        let kb = kb_of "A < D. B < D. C < D. x : A. x : B. x : C." in
        Alcotest.(check int)
          "limited" 2
          (List.length
             (Explain.all_justifications ~limit:2 kb
                (Explain.Instance ("x", Atom "D")))));
    Alcotest.test_case "three supports found without limit" `Quick (fun () ->
        let kb = kb_of "A < D. B < D. C < D. x : A. x : B. x : C." in
        Alcotest.(check int)
          "three" 3
          (List.length
             (Explain.all_justifications kb (Explain.Instance ("x", Atom "D")))))
  ]

let integration_tests =
  [ Alcotest.test_case "explaining the paper's Example 2 conflict" `Quick
      (fun () ->
        let t = Para.create Paper_examples.example2 in
        let explained = Explain.contradictions_explained t in
        match explained with
        | [ (a, c, j) ] ->
            Alcotest.(check string) "individual" "john" a;
            Alcotest.(check string) "concept" "ReadPatientRecordTeam" c;
            (* the conflict needs both team memberships and both axioms *)
            Alcotest.(check int) "all four axioms involved" 4 (kb4_size j)
        | _ -> Alcotest.fail "expected exactly one contradiction")
  ]

let () =
  Alcotest.run "explain"
    [ ("justification", justification_tests);
      ("hitting-set", hst_tests);
      ("integration", integration_tests) ]
