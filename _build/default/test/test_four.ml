(* Tests for Belnap's FOUR, bilattices, and the propositional four-valued
   logic — including machine checks of Propositions 1 and 2 of the paper and
   the two counterexamples of §2.2. *)

open Truth

let tv = Alcotest.testable Truth.pp Truth.equal

let check_tv name expected got =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check tv) name expected got)

(* ------------------------------------------------------------------ *)
(* Truth tables *)

let truth_table_tests =
  [ check_tv "neg t = f" False (neg True);
    check_tv "neg f = t" True (neg False);
    check_tv "neg TOP = TOP" Both (neg Both);
    check_tv "neg BOT = BOT" Neither (neg Neither);
    check_tv "t /\\ f = f" False (conj True False);
    check_tv "t /\\ TOP = TOP" Both (conj True Both);
    check_tv "TOP /\\ BOT = f" False (conj Both Neither);
    check_tv "TOP \\/ BOT = t" True (disj Both Neither);
    check_tv "f \\/ TOP = TOP" Both (disj False Both);
    check_tv "t \\/ BOT = t" True (disj True Neither);
    check_tv "consensus(t, f) = BOT" Neither (consensus True False);
    check_tv "gullibility(t, f) = TOP" Both (gullibility True False);
    Alcotest.test_case "de Morgan on all pairs" `Quick (fun () ->
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                Alcotest.(check tv)
                  "~(a /\\ b) = ~a \\/ ~b"
                  (neg (conj a b))
                  (disj (neg a) (neg b)))
              all)
          all);
    Alcotest.test_case "negation is involutive" `Quick (fun () ->
        List.iter (fun a -> Alcotest.(check tv) "~~a = a" a (neg (neg a))) all);
    Alcotest.test_case "conj is meet for leq_t" `Quick (fun () ->
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                let m = conj a b in
                Alcotest.(check bool) "m <=t a" true (leq_t m a);
                Alcotest.(check bool) "m <=t b" true (leq_t m b);
                List.iter
                  (fun c ->
                    if leq_t c a && leq_t c b then
                      Alcotest.(check bool) "c <=t m" true (leq_t c m))
                  all)
              all)
          all);
    Alcotest.test_case "orders: TOP and BOT incomparable in <=t" `Quick
      (fun () ->
        Alcotest.(check bool) "TOP <=t BOT" false (leq_t Both Neither);
        Alcotest.(check bool) "BOT <=t TOP" false (leq_t Neither Both);
        Alcotest.(check bool) "f <=t TOP" true (leq_t False Both);
        Alcotest.(check bool) "TOP <=t t" true (leq_t Both True));
    Alcotest.test_case "orders: t and f incomparable in <=k" `Quick (fun () ->
        Alcotest.(check bool) "t <=k f" false (leq_k True False);
        Alcotest.(check bool) "BOT <=k t" true (leq_k Neither True);
        Alcotest.(check bool) "t <=k TOP" true (leq_k True Both))
  ]

(* ------------------------------------------------------------------ *)
(* The three implications (§2.2) *)

let implication_tests =
  [ check_tv "TOP |-> f is designated (material tolerates exceptions)" Both
      (material_implication Both False);
    check_tv "TOP => f = f (internal does not)" False
      (internal_implication Both False);
    Alcotest.test_case "strong implication not designated from TOP to f"
      `Quick (fun () ->
        Alcotest.(check bool)
          "designated" false
          (designated (strong_implication Both False)));
    Alcotest.test_case "BOT |-> x designated iff conclusion designated"
      `Quick (fun () ->
        (* §2.2: with an unknown precondition, material implication holds
           exactly when the conclusion has information of being true *)
        List.iter
          (fun x ->
            Alcotest.(check bool)
              "designated" (designated x)
              (designated (material_implication Neither x)))
          all);
    check_tv "t => x = x" Both (internal_implication True Both);
    check_tv "f => anything = t" True (internal_implication False Both)
  ]

(* ------------------------------------------------------------------ *)
(* Propositions 1 and 2, and the counterexamples, over Prop4 *)

open Prop4

let p = atom "p"
let q = atom "q"
let rf = atom "r"

let check_bool name expected got =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) name expected got)

let prop4_tests =
  [ (* Proposition 1 (deduction property of ⊃), second half:
       Γ ⊨ ψ and Γ ⊨ ψ ⊃ φ implies Γ ⊨ φ — check a few instances by
       brute-force over valuations via a conditional encoding. *)
    check_bool "modus ponens for internal implication" true
      (entails [ p; Internal (p, q) ] q);
    check_bool "deduction: p, q |= p => q" true (entails [ q ] (Internal (p, q)));
    check_bool "no modus ponens for material implication" false
      (entails [ p; Material (p, q) ] q);
    (* Counterexample 1: {ψ, ¬ψ, ¬φ} ⊨ ψ ↦ φ but {ψ, ¬ψ, ¬φ} ⊭ φ *)
    check_bool "counterexample: psi,~psi,~phi |= psi |-> phi" true
      (entails [ p; neg p; neg q ] (Material (p, q)));
    check_bool "counterexample: psi,~psi,~phi |/= phi" false
      (entails [ p; neg p; neg q ] q);
    (* Counterexample 2: {ψ, φ, ¬φ} ⊨ φ but {φ, ¬φ} ⊭ ψ → φ *)
    check_bool "counterexample: psi,phi,~phi |= phi" true
      (entails [ p; q; neg q ] q);
    check_bool "counterexample: phi,~phi |/= psi -> phi" false
      (entails [ q; neg q ] (Strong (p, q)));
    (* Proposition 2: ↔ is a congruence for schemata. A representative
       schema Θ(x) = x ∧ r. *)
    check_bool "strong equivalence is congruent for /\\ r" true
      (entails [ Equiv (p, q) ] (Equiv (p &&& rf, q &&& rf)));
    check_bool "strong equivalence congruent under negation" true
      (entails [ Equiv (p, q) ] (Equiv (neg p, neg q)));
    check_bool "strong equivalence congruent under some nesting" true
      (entails [ Equiv (p, q) ] (Equiv (neg (p ||| rf), neg (q ||| rf))));
    (* Paraconsistency vs triviality *)
    check_bool "four-valued: contradiction does not explode" false
      (entails [ p; neg p ] q);
    check_bool "classical: contradiction explodes" true
      (entails_classically [ p; neg p ] q);
    check_bool "four-valued entailment is reflexive" true (entails [ p ] p);
    check_bool "conjunction elimination" true (entails [ p &&& q ] p);
    check_bool "disjunction introduction" true (entails [ p ] (p ||| q));
    (* Excluded middle fails four-valuedly *)
    check_bool "excluded middle is not 4-valid" false (valid (p ||| neg p));
    check_bool "excluded middle is classically valid" true
      (entails_classically [] (p ||| neg p))
  ]

(* ------------------------------------------------------------------ *)
(* Signed tableau agrees with the semantics *)

let tableau_tests =
  [ check_bool "tableau: modus ponens for internal implication" true
      (Prop4_tableau.entails [ p; Internal (p, q) ] q);
    check_bool "tableau: no explosion from contradiction" false
      (Prop4_tableau.entails [ p; neg p ] q);
    check_bool "tableau: conjunction elimination" true
      (Prop4_tableau.entails [ p &&& q ] q);
    check_bool "tableau: no excluded middle" false
      (Prop4_tableau.valid (p ||| neg p));
    check_bool "tableau: reflexivity" true (Prop4_tableau.entails [ p ] p);
    check_bool "tableau: counterexample 1 (material)" true
      (Prop4_tableau.entails [ p; neg p; neg q ] (Material (p, q)));
    check_bool "tableau: counterexample 1 (no detachment)" false
      (Prop4_tableau.entails [ p; neg p; neg q ] q);
    check_bool "tableau: strong implication contraposes" true
      (Prop4_tableau.entails [ Strong (p, q); neg q ] (neg p));
    check_bool "tableau: internal implication does not contrapose" false
      (Prop4_tableau.entails [ Internal (p, q); neg q ] (neg p));
    check_bool "tableau: T and F signs coexist (paraconsistency)" true
      (Prop4_tableau.satisfiable [ (Prop4_tableau.T, p); (Prop4_tableau.F, p) ]);
    check_bool "tableau: T and NT signs clash" false
      (Prop4_tableau.satisfiable
         [ (Prop4_tableau.T, p); (Prop4_tableau.NT, p) ]);
    Alcotest.test_case "tableau agrees with enumeration on a formula pool"
      `Quick (fun () ->
        let pool =
          [ ([ p; Internal (p, q) ], q);
            ([ p &&& neg p ], q);
            ([ Material (p, q); p ], q);
            ([ Strong (p, q); p ], q);
            ([ Equiv (p, q); p ], q);
            ([ neg (p ||| q) ], neg p);
            ([ p ||| q; neg p ], q);
            ([], Internal (p, p));
            ([], Material (p &&& q, p));
            ([ Internal (p, q); Internal (q, rf) ], Internal (p, rf)) ]
        in
        List.iter
          (fun (gamma, phi) ->
            Alcotest.(check bool)
              (Format.asprintf "%a" Prop4.pp phi)
              (Prop4.entails gamma phi)
              (Prop4_tableau.entails gamma phi))
          pool)
  ]

(* ------------------------------------------------------------------ *)
(* Bilattice of sets *)

module B = Bilattice.Make (Int)

let bilattice_tests =
  [ Alcotest.test_case "projections" `Quick (fun () ->
        let v = B.make ~pos:(B.S.of_list [ 1; 2 ]) ~neg:(B.S.of_list [ 2; 3 ]) in
        Alcotest.(check (list int)) "proj+" [ 1; 2 ] (B.S.elements (B.proj_pos v));
        Alcotest.(check (list int)) "proj-" [ 2; 3 ] (B.S.elements (B.proj_neg v)));
    Alcotest.test_case "meet_t per the paper" `Quick (fun () ->
        let v1 = B.make ~pos:(B.S.of_list [ 1; 2 ]) ~neg:(B.S.of_list [ 3 ]) in
        let v2 = B.make ~pos:(B.S.of_list [ 2; 4 ]) ~neg:(B.S.of_list [ 5 ]) in
        let m = B.meet_t v1 v2 in
        Alcotest.(check (list int)) "pos inter" [ 2 ] (B.S.elements m.B.pos);
        Alcotest.(check (list int)) "neg union" [ 3; 5 ] (B.S.elements m.B.neg));
    Alcotest.test_case "truth_value_of all four cases" `Quick (fun () ->
        let v = B.make ~pos:(B.S.of_list [ 1; 2 ]) ~neg:(B.S.of_list [ 2; 3 ]) in
        Alcotest.(check tv) "1:t" True (B.truth_value_of v 1);
        Alcotest.(check tv) "2:TOP" Both (B.truth_value_of v 2);
        Alcotest.(check tv) "3:f" False (B.truth_value_of v 3);
        Alcotest.(check tv) "4:BOT" Neither (B.truth_value_of v 4));
    Alcotest.test_case "classical embedding round-trip" `Quick (fun () ->
        let domain = B.S.of_list [ 1; 2; 3 ] in
        let v = B.classical ~domain (B.S.of_list [ 1 ]) in
        Alcotest.(check bool) "classical" true (B.is_classical ~domain v);
        Alcotest.(check tv) "1:t" True (B.truth_value_of v 1);
        Alcotest.(check tv) "2:f" False (B.truth_value_of v 2));
    Alcotest.test_case "negation swaps projections" `Quick (fun () ->
        let v = B.make ~pos:(B.S.of_list [ 1 ]) ~neg:(B.S.of_list [ 2 ]) in
        let n = B.neg v in
        Alcotest.(check (list int)) "pos" [ 2 ] (B.S.elements n.B.pos);
        Alcotest.(check (list int)) "neg" [ 1 ] (B.S.elements n.B.neg))
  ]

let () =
  Alcotest.run "four"
    [ ("truth-tables", truth_table_tests);
      ("implications", implication_tests);
      ("prop4", prop4_tests);
      ("prop4-tableau", tableau_tests);
      ("bilattice", bilattice_tests) ]
