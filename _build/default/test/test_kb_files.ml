(* The knowledge-base files shipped under examples/kb stay parseable and
   behave as documented. *)

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The test binary runs from the build sandbox; the files are attached as
   test dependencies (see test/dune). *)
let kb_dir = Filename.concat (Filename.concat ".." "examples") "kb"

let tests =
  [ Alcotest.test_case "tweety.dl4 parses and reasons" `Quick (fun () ->
        let kb = Surface.parse_kb4_exn (read (Filename.concat kb_dir "tweety.dl4")) in
        let t = Para.create kb in
        Alcotest.(check bool) "sat" true (Para.satisfiable t);
        Alcotest.(check bool)
          "tweety cannot fly" true
          (Truth.equal Truth.False
             (Para.instance_truth t "tweety" (Concept.Atom "Fly"))));
    Alcotest.test_case "access_control.dl4 parses and reasons" `Quick
      (fun () ->
        let kb =
          Surface.parse_kb4_exn
            (read (Filename.concat kb_dir "access_control.dl4"))
        in
        let t = Para.create kb in
        Alcotest.(check bool) "sat" true (Para.satisfiable t);
        Alcotest.(check (list (pair string string)))
          "one conflict"
          [ ("john", "ReadPatientRecordTeam") ]
          (Para.contradictions t));
    Alcotest.test_case "hospital.ofn parses as OWL and matches example 2"
      `Quick (fun () ->
        let kb =
          Owl_functional.parse_ontology_exn
            (read (Filename.concat kb_dir "hospital.ofn"))
        in
        Alcotest.(check bool)
          "classically inconsistent" false
          (Tableau.kb_satisfiable kb);
        let t = Para.create (Kb4.of_classical kb) in
        Alcotest.(check bool) "4-sat" true (Para.satisfiable t))
  ]

let () = Alcotest.run "kb-files" [ ("examples/kb", tests) ]
