(* Tests for the native four-valued tableau, including differential
   agreement with the transformation pipeline (the executable Theorem 6). *)

let tv = Alcotest.testable Truth.pp Truth.equal

open Concept

let kb_of = Surface.parse_kb4_exn

let check_bool name expected got =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) name expected got)

let basic_tests =
  [ check_bool "empty KB satisfiable" true
      (Tableau4.satisfiable (Tableau4.create Kb4.empty));
    check_bool "plain contradiction is 4-satisfiable" true
      (Tableau4.satisfiable (Tableau4.create (kb_of "x : A. x : ~A.")));
    check_bool "Bottom assertion unsatisfiable" false
      (Tableau4.satisfiable (Tableau4.create (kb_of "x : Bottom.")));
    check_bool "distinctness clash unsatisfiable" false
      (Tableau4.satisfiable (Tableau4.create (kb_of "a = b. a != b.")));
    check_bool "datatype clash unsatisfiable" false
      (Tableau4.satisfiable
         (Tableau4.create (kb_of "u(a, 5). a : only u:int[0..4].")));
    Alcotest.test_case "material/strong role inclusions unsupported" `Quick
      (fun () ->
        match Tableau4.create (kb_of "role r |-> s.") with
        | exception Tableau4.Unsupported _ -> ()
        | _ -> Alcotest.fail "expected Unsupported")
  ]

let instance_tests =
  [ Alcotest.test_case "all four values, natively" `Quick (fun () ->
        let t =
          Tableau4.create (kb_of "A < B. x : A. x : C. x : ~C. x : ~D.")
        in
        Alcotest.check tv "A" Truth.True (Tableau4.instance_truth t "x" (Atom "A"));
        Alcotest.check tv "B derived" Truth.True
          (Tableau4.instance_truth t "x" (Atom "B"));
        Alcotest.check tv "C" Truth.Both (Tableau4.instance_truth t "x" (Atom "C"));
        Alcotest.check tv "D" Truth.False (Tableau4.instance_truth t "x" (Atom "D"));
        Alcotest.check tv "E" Truth.Neither
          (Tableau4.instance_truth t "x" (Atom "E")));
    Alcotest.test_case "material inclusion tolerates exceptions" `Quick
      (fun () ->
        let t = Tableau4.create Paper_examples.example3 in
        Alcotest.(check bool) "sat" true (Tableau4.satisfiable t);
        Alcotest.check tv "tweety cannot fly" Truth.False
          (Tableau4.instance_truth t "tweety" (Atom "Fly"));
        Alcotest.check tv "tweety is a penguin" Truth.True
          (Tableau4.instance_truth t "tweety" (Atom "Penguin")));
    Alcotest.test_case "strong inclusion contraposes natively" `Quick
      (fun () ->
        let t = Tableau4.create (kb_of "B -> F. x : ~F.") in
        Alcotest.check tv "B = f" Truth.False
          (Tableau4.instance_truth t "x" (Atom "B")));
    Alcotest.test_case "paper example 1 natively" `Quick (fun () ->
        let t = Tableau4.create Paper_examples.example1 in
        Alcotest.(check bool) "sat" true (Tableau4.satisfiable t);
        Alcotest.(check bool)
          "bill is a doctor" true
          (Tableau4.entails_instance t "bill" (Atom "Doctor"));
        Alcotest.(check bool)
          "no info bill is not a doctor" false
          (Tableau4.entails_not_instance t "bill" (Atom "Doctor")));
    Alcotest.test_case "paper example 2 natively" `Quick (fun () ->
        let t = Tableau4.create Paper_examples.example2 in
        Alcotest.check tv "TOP" Truth.Both
          (Tableau4.instance_truth t "john" (Atom "ReadPatientRecordTeam"));
        Alcotest.check tv "BOT" Truth.Neither
          (Tableau4.instance_truth t "john" (Atom "Patient")));
    Alcotest.test_case "paper example 4 natively" `Quick (fun () ->
        let t = Tableau4.create Paper_examples.example4 in
        Alcotest.(check bool) "sat" true (Tableau4.satisfiable t);
        Alcotest.check tv "Parent t" Truth.True
          (Tableau4.instance_truth t "smith" (Atom "Parent"));
        Alcotest.check tv "Married f" Truth.False
          (Tableau4.instance_truth t "smith" (Atom "Married")))
  ]

let counting_tests =
  [ check_bool ">=2 asserted positively is satisfiable" true
      (Tableau4.satisfiable (Tableau4.create (kb_of "x : >= 2 r.")));
    check_bool "told <=1 never clashes with told edges (Table 2)" true
      (Tableau4.satisfiable
         (Tableau4.create (kb_of "x : <= 1 r. r(x, y). r(x, z). y != z.")));
    Alcotest.test_case "NP >= bounds told successors" `Quick (fun () ->
        (* K |=4 (>=2.r)(x) should fail with one told edge *)
        let t = Tableau4.create (kb_of "r(x, y).") in
        Alcotest.(check bool)
          "not entailed" false
          (Tableau4.entails_instance t "x" (At_least (2, Role.name "r")));
        Alcotest.(check bool)
          "one is entailed" true
          (Tableau4.entails_instance t "x" (At_least (1, Role.name "r"))));
    Alcotest.test_case "rneg interval conflict clashes" `Quick (fun () ->
        (* told (<=0.r)(x) gives upper bound 0 non-negated successors;
           told ~(<=1.r)(x) via N-side... the conflicting pair is expressed
           with ~: x : ~(>= 1 r) forces <= 0 non-negated, and
           x : ~(<= 2 r) forces... use entailment instead:
           K = { x : <= 0 r } |=4 (<= 2 r)(x)? Negative-count semantics:
           told <=0 means 0 non-negated, so <=2 holds positively. *)
        let t = Tableau4.create (kb_of "x : <= 0 r.") in
        Alcotest.(check bool)
          "<=2 follows from <=0" true
          (Tableau4.entails_instance t "x" (At_most (2, Role.name "r"))))
  ]

(* Differential: native engine vs transformation pipeline. *)
let differential_fixed_tests =
  let cases =
    [ "A < B. B < C. x : A. y : ~C.";
      "A |-> B. x : A. x : ~B.";
      "A -> B. x : ~B. y : A.";
      "A < some r.B. x : A.";
      "A < only r.B. x : A. r(x, y).";
      "x : A | B. x : ~A.";
      "x : A & ~A. y : B.";
      "A < ~A. x : A.";
      "role r < s. transitive s. r(x, y). s(y, z). x : only s.C.";
      "x : >= 2 r. x : ~(<= 1 r).";
      "x : {o}. o : A.";
      "u(a, 3). a : some u:int[0..5].";
      "A |-> B. B |-> C. x : A. x : ~B." ]
  in
  List.mapi
    (fun i src ->
      Alcotest.test_case (Printf.sprintf "agreement on fixed KB %d" i) `Quick
        (fun () ->
          let kb = kb_of src in
          let native = Tableau4.create kb in
          let para = Para.create kb in
          Alcotest.(check bool)
            "satisfiability agrees" (Para.satisfiable para)
            (Tableau4.satisfiable native);
          let signature = Kb4.signature kb in
          List.iter
            (fun a ->
              List.iter
                (fun cname ->
                  let c = Atom cname in
                  Alcotest.check tv
                    (Printf.sprintf "%s:%s" a cname)
                    (Para.instance_truth para a c)
                    (Tableau4.instance_truth native a c))
                signature.Axiom.concepts)
            signature.Axiom.individuals))
    cases

let () =
  Alcotest.run "native4"
    [ ("basic", basic_tests);
      ("instances", instance_tests);
      ("counting", counting_tests);
      ("differential-fixed", differential_fixed_tests) ]
