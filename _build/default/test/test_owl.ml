(* Tests for the OWL facade: ontology entailment (classical and four-valued)
   and the vocabulary sugar. *)

open Concept

let kb_of = Surface.parse_kb_exn
let kb4_of = Surface.parse_kb4_exn

let check_entails name expected o1 o2 =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) name expected (Owl.entails o1 o2))

let entailment_tests =
  [ check_entails "subsumption chain entailed" true
      (kb_of "A << B. B << C.")
      (kb_of "A << C.");
    check_entails "reverse not entailed" false
      (kb_of "A << B. B << C.")
      (kb_of "C << A.");
    check_entails "abox consequences entailed" true
      (kb_of "A << B. x : A.")
      (kb_of "x : B.");
    check_entails "role hierarchy entailed" true
      (kb_of "role r << s. role s << t.")
      (kb_of "role r << t.");
    check_entails "transitivity declared" true
      (kb_of "transitive r.")
      (kb_of "transitive r.");
    check_entails "transitivity not invented" false
      (kb_of "role r << s.")
      (kb_of "transitive r.");
    check_entails "role assertion via hierarchy" true
      (kb_of "role r << s. r(a, b).")
      (kb_of "s(a, b).");
    check_entails "inconsistent premise entails anything" true
      (kb_of "x : A. x : ~A.")
      (kb_of "y : Banana. role p << q.");
    check_entails "equality entailment" true
      (kb_of "a = b. a : A.")
      (kb_of "b : A. a = b.");
    check_entails "empty ontology entailed by anything" true
      (kb_of "x : A.")
      Axiom.empty;
    check_entails "data assertion entailed" true
      (kb_of "age(a, 5).")
      (kb_of "age(a, 5).");
    check_entails "different data value not entailed" false
      (kb_of "age(a, 5).")
      (kb_of "age(a, 6).")
  ]

let entailment4_tests =
  [ Alcotest.test_case "four-valued entailment is paraconsistent" `Quick
      (fun () ->
        let o1 = kb4_of "x : A. x : ~A." in
        Alcotest.(check bool)
          "does not entail y:B" false
          (Owl.entails4 o1 (kb4_of "y : B."));
        Alcotest.(check bool)
          "entails its own facts" true
          (Owl.entails4 o1 (kb4_of "x : A. x : ~A.")));
    Alcotest.test_case "four-valued entailment through inclusions" `Quick
      (fun () ->
        let o1 = kb4_of "A < B. x : A." in
        Alcotest.(check bool) "x:B" true (Owl.entails4 o1 (kb4_of "x : B."));
        Alcotest.(check bool)
          "A < B itself" true
          (Owl.entails4 o1 (kb4_of "A < B.")));
    Alcotest.test_case "material axiom does not entail internal axiom" `Quick
      (fun () ->
        let o1 = kb4_of "A |-> B." in
        Alcotest.(check bool)
          "A < B not entailed" false
          (Owl.entails4 o1 (kb4_of "A < B."));
        Alcotest.(check bool)
          "A |-> B entailed" true
          (Owl.entails4 o1 (kb4_of "A |-> B.")))
  ]

let vocab_tests =
  [ Alcotest.test_case "constructors build the expected AST" `Quick (fun () ->
        let c = Alcotest.testable Concept.pp Concept.equal in
        Alcotest.check c "intersection"
          (And (Atom "A", Atom "B"))
          (Owl_vocab.object_intersection_of [ Owl_vocab.owl_class "A"; Owl_vocab.owl_class "B" ]);
        Alcotest.check c "some values"
          (Exists (Role.name "r", Atom "A"))
          (Owl_vocab.object_some_values_from (Owl_vocab.object_property "r")
             (Owl_vocab.owl_class "A"));
        Alcotest.check c "exact cardinality"
          (And (At_least (2, Role.name "r"), At_most (2, Role.name "r")))
          (Owl_vocab.object_exact_cardinality 2 (Owl_vocab.object_property "r"));
        Alcotest.check c "thing and nothing" Top Owl_vocab.thing;
        Alcotest.check c "nothing" Bottom Owl_vocab.nothing);
    Alcotest.test_case "negative property assertion behaves correctly" `Quick
      (fun () ->
        let kb =
          Axiom.make ~tbox:[]
            ~abox:
              [ Owl_vocab.object_property_assertion (Role.name "r") "a" "b";
                Owl_vocab.negative_object_property_assertion (Role.name "r") "a"
                  "b" ]
        in
        Alcotest.(check bool)
          "clash" false
          (Tableau.kb_satisfiable kb));
    Alcotest.test_case "negative property assertion alone is fine" `Quick
      (fun () ->
        let kb =
          Axiom.make ~tbox:[]
            ~abox:
              [ Owl_vocab.object_property_assertion (Role.name "r") "a" "c";
                Owl_vocab.negative_object_property_assertion (Role.name "r") "a"
                  "b" ]
        in
        Alcotest.(check bool) "sat" true (Tableau.kb_satisfiable kb));
    Alcotest.test_case "disjoint and equivalent classes" `Quick (fun () ->
        let kb =
          Axiom.make
            ~tbox:
              (Owl_vocab.equivalent_classes (Atom "A") (Atom "B")
              @ [ Owl_vocab.disjoint_classes (Atom "B") (Atom "C") ])
            ~abox:[ Owl_vocab.class_assertion (Atom "A") "x" ]
        in
        let r = Reasoner.create kb in
        Alcotest.(check bool) "x : B" true (Reasoner.instance_of r "x" (Atom "B"));
        Alcotest.(check bool)
          "x : ~C" true
          (Reasoner.instance_of r "x" (Not (Atom "C"))))
  ]

let () =
  Alcotest.run "owl"
    [ ("entailment", entailment_tests);
      ("entailment4", entailment4_tests);
      ("vocab", vocab_tests) ]
