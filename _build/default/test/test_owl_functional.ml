(* Tests for the OWL 2 functional-style syntax reader/writer. *)

let concept = Alcotest.testable Concept.pp Concept.equal

open Concept

let parse = Owl_functional.parse_ontology_exn

let parsing_tests =
  [ Alcotest.test_case "subclass with intersection and existential" `Quick
      (fun () ->
        let kb =
          parse
            {| SubClassOf(ObjectIntersectionOf(:Bird ObjectSomeValuesFrom(:hasWing :Wing)) :Fly) |}
        in
        match kb.Axiom.tbox with
        | [ Axiom.Concept_sub (lhs, rhs) ] ->
            Alcotest.check concept "lhs"
              (And (Atom "Bird", Exists (Role.name "hasWing", Atom "Wing")))
              lhs;
            Alcotest.check concept "rhs" (Atom "Fly") rhs
        | _ -> Alcotest.fail "shape");
    Alcotest.test_case "ontology wrapper, prefixes and declarations" `Quick
      (fun () ->
        let kb =
          parse
            {|
            Prefix(:=<http://example.org/med#>)
            Ontology(<http://example.org/med>
              Declaration(Class(:Doctor))
              Declaration(NamedIndividual(:john))
              SubClassOf(:Surgeon :Doctor)
              ClassAssertion(:Surgeon :john)
            )
            |}
        in
        Alcotest.(check int) "one tbox axiom" 1 (List.length kb.Axiom.tbox);
        Alcotest.(check int) "one abox axiom" 1 (List.length kb.Axiom.abox));
    Alcotest.test_case "full IRIs reduce to fragments" `Quick (fun () ->
        let kb =
          parse
            {| SubClassOf(<http://example.org/onto#Cat> <http://example.org/onto#Animal>) |}
        in
        match kb.Axiom.tbox with
        | [ Axiom.Concept_sub (Atom "Cat", Atom "Animal") ] -> ()
        | _ -> Alcotest.fail "shape");
    Alcotest.test_case "equivalent and disjoint classes expand" `Quick
      (fun () ->
        let kb = parse "EquivalentClasses(:A :B) DisjointClasses(:C :D)" in
        Alcotest.(check int) "three axioms" 3 (List.length kb.Axiom.tbox));
    Alcotest.test_case "cardinalities and inverse properties" `Quick
      (fun () ->
        let kb =
          parse
            {| SubClassOf(:A ObjectMinCardinality(2 ObjectInverseOf(:r)))
               SubClassOf(:A ObjectMaxCardinality(1 :r))
               SubClassOf(:A ObjectExactCardinality(3 :s)) |}
        in
        match kb.Axiom.tbox with
        | [ Axiom.Concept_sub (_, At_least (2, Role.Inv "r"));
            Axiom.Concept_sub (_, At_most (1, Role.Name "r"));
            Axiom.Concept_sub (_, And (At_least (3, _), At_most (3, _))) ] ->
            ()
        | _ -> Alcotest.fail "shape");
    Alcotest.test_case "data ranges and literals" `Quick (fun () ->
        let kb =
          parse
            {| SubClassOf(:Adult DataSomeValuesFrom(:age
                 DatatypeRestriction(xsd:integer xsd:minInclusive "18"^^xsd:integer)))
               DataPropertyAssertion(:age :smith "42"^^xsd:integer)
               DataPropertyAssertion(:name :smith "Smith")
               DataPropertyAssertion(:single :smith "true"^^xsd:boolean) |}
        in
        (match kb.Axiom.tbox with
        | [ Axiom.Concept_sub
              (_, Data_exists ("age", Datatype.Int_range (Some 18, None))) ] ->
            ()
        | _ -> Alcotest.fail "tbox shape");
        match kb.Axiom.abox with
        | [ Axiom.Data_assertion (_, "age", Datatype.Int 42);
            Axiom.Data_assertion (_, "name", Datatype.Str "Smith");
            Axiom.Data_assertion (_, "single", Datatype.Bool true) ] ->
            ()
        | _ -> Alcotest.fail "abox shape");
    Alcotest.test_case "has-value sugar" `Quick (fun () ->
        let kb = parse "SubClassOf(:A ObjectHasValue(:r :b))" in
        match kb.Axiom.tbox with
        | [ Axiom.Concept_sub (_, Exists (Role.Name "r", One_of [ "b" ])) ] ->
            ()
        | _ -> Alcotest.fail "shape");
    Alcotest.test_case "same/different individuals n-ary" `Quick (fun () ->
        let kb = parse "DifferentIndividuals(:a :b :c)" in
        Alcotest.(check int) "three pairs" 3 (List.length kb.Axiom.abox));
    Alcotest.test_case "negative property assertion encoding" `Quick
      (fun () ->
        let kb = parse "NegativeObjectPropertyAssertion(:r :a :b)" in
        match kb.Axiom.abox with
        | [ Axiom.Instance_of ("a", Forall (Role.Name "r", Not (One_of [ "b" ]))) ]
          ->
            ()
        | _ -> Alcotest.fail "shape");
    Alcotest.test_case "parse errors are reported with offsets" `Quick
      (fun () ->
        match Owl_functional.parse_ontology "SubClassOf(:A" with
        | Error e -> Alcotest.(check bool) "offset" true (e.Owl_functional.offset >= 0)
        | Ok _ -> Alcotest.fail "should fail")
  ]

let kb_equal (k1 : Axiom.kb) (k2 : Axiom.kb) =
  List.length k1.tbox = List.length k2.tbox
  && List.length k1.abox = List.length k2.abox
  && List.for_all2 (fun a b -> Axiom.compare_tbox_axiom a b = 0) k1.tbox k2.tbox
  && List.for_all2 (fun a b -> Axiom.compare_abox_axiom a b = 0) k1.abox k2.abox

let roundtrip_tests =
  let cases =
    [ ("tweety", Paper_examples.example3_classical);
      ("transformed tweety", Transform.kb Paper_examples.example3);
      ( "datatypes",
        Axiom.make
          ~tbox:
            [ Axiom.Concept_sub
                ( Concept.Atom "Adult",
                  Concept.Data_exists
                    ("age", Datatype.Int_range (Some 18, Some 120)) );
              Axiom.Data_role_sub ("age", "attribute");
              Axiom.Transitive "partOf" ]
          ~abox:
            [ Axiom.Data_assertion ("smith", "age", Datatype.Int 42);
              Axiom.Same ("smith", "smith2");
              Axiom.Different ("smith", "kate") ] );
      ( "numbers and nominals",
        Axiom.make
          ~tbox:
            [ Axiom.Concept_sub
                ( Concept.At_least (2, Role.Inv "r"),
                  Concept.Or
                    ( Concept.One_of [ "a"; "b" ],
                      Concept.Not (Concept.Atom "C") ) ) ]
          ~abox:[ Axiom.Role_assertion ("a", Role.Inv "r", "b") ] )
    ]
  in
  List.map
    (fun (label, kb) ->
      Alcotest.test_case ("roundtrip " ^ label) `Quick (fun () ->
          let doc = Owl_functional.to_functional kb in
          match Owl_functional.parse_ontology doc with
          | Ok kb' ->
              if not (kb_equal kb kb') then
                Alcotest.failf "mismatch after roundtrip:@.%s" doc
          | Error e ->
              Alcotest.failf "reparse failed: %a@.%s" Owl_functional.pp_error e
                doc))
    cases

let pipeline_tests =
  [ Alcotest.test_case "OWL document reasoned about four-valuedly" `Quick
      (fun () ->
        (* read a classically inconsistent OWL ontology, reason with dl4 *)
        let kb =
          parse
            {|
            Ontology(<http://example.org/hospital>
              SubClassOf(:SurgicalTeam ObjectComplementOf(:ReadPatientRecordTeam))
              SubClassOf(:UrgencyTeam :ReadPatientRecordTeam)
              ClassAssertion(:SurgicalTeam :john)
              ClassAssertion(:UrgencyTeam :john)
            )
            |}
        in
        Alcotest.(check bool)
          "classically inconsistent" false
          (Tableau.kb_satisfiable kb);
        let t = Para.create (Kb4.of_classical kb) in
        Alcotest.(check bool) "4-satisfiable" true (Para.satisfiable t);
        Alcotest.(check bool)
          "conflict localized" true
          (Truth.equal Truth.Both
             (Para.instance_truth t "john" (Atom "ReadPatientRecordTeam"))))
  ]

let () =
  Alcotest.run "owl-functional"
    [ ("parsing", parsing_tests);
      ("roundtrip", roundtrip_tests);
      ("pipeline", pipeline_tests) ]
