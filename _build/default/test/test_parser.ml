(* Tests for the surface-syntax lexer/parser, including round trips through
   the printers. *)

let concept = Alcotest.testable Concept.pp Concept.equal

let parse_c = Surface.parse_concept_exn

let check_concept name src expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.check concept name expected (parse_c src))

open Concept

let concept_tests =
  [ check_concept "atom" "Bird" (Atom "Bird");
    check_concept "top/bottom" "Top & Bottom" (And (Top, Bottom));
    check_concept "negation" "~Bird" (Not (Atom "Bird"));
    check_concept "double negation" "~~Bird" (Not (Not (Atom "Bird")));
    check_concept "conjunction left assoc" "A & B & C"
      (And (And (Atom "A", Atom "B"), Atom "C"));
    check_concept "precedence & over |" "A & B | C"
      (Or (And (Atom "A", Atom "B"), Atom "C"));
    check_concept "parens override" "A & (B | C)"
      (And (Atom "A", Or (Atom "B", Atom "C")));
    check_concept "exists" "some hasWing.Wing"
      (Exists (Role.name "hasWing", Atom "Wing"));
    check_concept "forall with complex body" "only r.(A & B)"
      (Forall (Role.name "r", And (Atom "A", Atom "B")));
    check_concept "inverse role" "some r^-.A" (Exists (Role.Inv "r", Atom "A"));
    check_concept "at least" ">= 2 hasChild"
      (At_least (2, Role.name "hasChild"));
    check_concept "at most inverse" "<= 1 r^-" (At_most (1, Role.Inv "r"));
    check_concept "nominal" "{a, b}" (One_of [ "a"; "b" ]);
    check_concept "negated nominal" "~{a}" (Not (One_of [ "a" ]));
    check_concept "data exists" "some age:int[0..17]"
      (Data_exists ("age", Datatype.Int_range (Some 0, Some 17)));
    check_concept "data forall unbounded" "only age:int[18..*]"
      (Data_forall ("age", Datatype.Int_range (Some 18, None)));
    check_concept "data at least" ">= 2 data phone"
      (Data_at_least (2, "phone"));
    check_concept "data enum" "some color:{\"red\", \"green\"}"
      (Data_exists ("color", Datatype.One_of [ Datatype.Str "red"; Datatype.Str "green" ]));
    check_concept "data complement" "only age:not(int[0..17])"
      (Data_forall ("age", Datatype.Complement (Datatype.Int_range (Some 0, Some 17))));
    check_concept "boolean datatype" "some flag:boolean"
      (Data_exists ("flag", Datatype.Bool_type));
    check_concept "negative bound" "some t:int[-10..10]"
      (Data_exists ("t", Datatype.Int_range (Some (-10), Some 10)));
    check_concept "mangled positive atom" "Bird+" (Atom "Bird+");
    check_concept "mangled negative atom" "Fly-" (Atom "Fly-");
    check_concept "mangled conjunction" "Bird+ & Fly-"
      (And (Atom "Bird+", Atom "Fly-"));
    check_concept "mangled roles" "some hasWing+.Wing+ & <= 1 hasChild="
      (And
         ( Exists (Role.name "hasWing+", Atom "Wing+"),
           At_most (1, Role.name "hasChild=") ));
    check_concept "strong arrow not absorbed into ident"
      "(A)" (Atom "A")
  ]

let kb4_tests =
  [ Alcotest.test_case "tweety KB parses" `Quick (fun () ->
        let src =
          {|
          # Example 3 of the paper
          Bird & some hasWing.Wing |-> Fly.
          Penguin < Bird.
          Penguin < some hasWing.Wing.
          Penguin < ~Fly.
          tweety : Bird.
          tweety : Penguin.
          w : Wing.
          hasWing(tweety, w).
          |}
        in
        let kb = Surface.parse_kb4_exn src in
        Alcotest.(check int) "tbox" 4 (List.length kb.Kb4.tbox);
        Alcotest.(check int) "abox" 4 (List.length kb.Kb4.abox);
        (* structurally identical to the built-in example *)
        Alcotest.(check bool)
          "matches Paper_examples.example3" true
          (List.for_all2
             (fun a b -> Kb4.compare_tbox_axiom a b = 0)
             kb.Kb4.tbox
             (Paper_examples.example3 : Kb4.t).tbox));
    Alcotest.test_case "all three inclusion kinds" `Quick (fun () ->
        let kb = Surface.parse_kb4_exn "A < B. A |-> C. A -> D." in
        match kb.Kb4.tbox with
        | [ Kb4.Concept_inclusion (Kb4.Internal, _, _);
            Kb4.Concept_inclusion (Kb4.Material, _, _);
            Kb4.Concept_inclusion (Kb4.Strong, _, _) ] ->
            ()
        | _ -> Alcotest.fail "wrong kinds");
    Alcotest.test_case "role and data-role inclusions, transitivity" `Quick
      (fun () ->
        let kb =
          Surface.parse_kb4_exn
            "role r < s. role r^- |-> s. datarole u -> v. transitive r."
        in
        Alcotest.(check int) "tbox" 4 (List.length kb.Kb4.tbox));
    Alcotest.test_case "equalities and data assertions" `Quick (fun () ->
        let kb =
          Surface.parse_kb4_exn "a = b. a != c. age(a, 42). name(a, \"joe\")."
        in
        Alcotest.(check int) "abox" 4 (List.length kb.Kb4.abox);
        match kb.Kb4.abox with
        | [ Axiom.Same _; Axiom.Different _; Axiom.Data_assertion (_, "age", Datatype.Int 42);
            Axiom.Data_assertion (_, "name", Datatype.Str "joe") ] ->
            ()
        | _ -> Alcotest.fail "wrong abox");
    Alcotest.test_case "comments and whitespace are skipped" `Quick (fun () ->
        let kb = Surface.parse_kb4_exn "# only a comment\n  \n A < B. # tail" in
        Alcotest.(check int) "tbox" 1 (List.length kb.Kb4.tbox))
  ]

let classical_tests =
  [ Alcotest.test_case "classical KB uses <<" `Quick (fun () ->
        let kb = Surface.parse_kb_exn "A << B. x : A." in
        Alcotest.(check int) "tbox" 1 (List.length kb.Axiom.tbox));
    Alcotest.test_case "classical mode rejects 4-valued arrows" `Quick
      (fun () ->
        match Surface.parse_kb "A |-> B." with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "should not parse");
    Alcotest.test_case "4-valued mode rejects <<" `Quick (fun () ->
        match Surface.parse_kb4 "A << B." with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "should not parse")
  ]

let error_tests =
  [ Alcotest.test_case "missing dot" `Quick (fun () ->
        match Surface.parse_kb4 "A < B" with
        | Error e -> Alcotest.(check bool) "offset" true (e.Surface.offset >= 0)
        | Ok _ -> Alcotest.fail "should not parse");
    Alcotest.test_case "unexpected character" `Quick (fun () ->
        match Surface.parse_kb4 "A $ B." with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "should not parse");
    Alcotest.test_case "unterminated string" `Quick (fun () ->
        match Surface.parse_kb4 "name(a, \"joe)." with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "should not parse");
    Alcotest.test_case "dangling quantifier" `Quick (fun () ->
        match Surface.parse_concept "some r." with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "should not parse")
  ]

(* Round trips: print a KB, parse it back, compare. *)
let kb4_equal (k1 : Kb4.t) (k2 : Kb4.t) =
  List.length k1.tbox = List.length k2.tbox
  && List.length k1.abox = List.length k2.abox
  && List.for_all2 (fun a b -> Kb4.compare_tbox_axiom a b = 0) k1.tbox k2.tbox
  && List.for_all2 (fun a b -> Axiom.compare_abox_axiom a b = 0) k1.abox k2.abox

let roundtrip_tests =
  let cases =
    [ ("example1", Paper_examples.example1);
      ("example2", Paper_examples.example2);
      ("example3", Paper_examples.example3);
      ("example4", Paper_examples.example4);
      ("exception chains", Gen.exception_chains ~n:5);
      ("random kb (seed 1)", Gen.kb4 { Gen.default with seed = 1 });
      ("random kb (seed 2)", Gen.kb4 { Gen.default with seed = 2; max_depth = 3 }) ]
  in
  List.map
    (fun (name, kb) ->
      Alcotest.test_case ("roundtrip " ^ name) `Quick (fun () ->
          let printed = Surface.kb4_to_string kb in
          match Surface.parse_kb4 printed with
          | Ok kb' ->
              if not (kb4_equal kb kb') then
                Alcotest.failf "round trip mismatch:@.%s" printed
          | Error e ->
              Alcotest.failf "reparse failed: %a@.%s" Surface.pp_error e printed))
    cases

let mangled_roundtrip_tests =
  [ Alcotest.test_case "transformed KB prints and reparses (classical)" `Quick
      (fun () ->
        let kbar = Transform.kb Paper_examples.example3 in
        let printed = Surface.kb_to_string kbar in
        match Surface.parse_kb printed with
        | Ok kb' ->
            Alcotest.(check int)
              "tbox size"
              (List.length kbar.Axiom.tbox)
              (List.length kb'.Axiom.tbox);
            Alcotest.(check bool)
              "tbox equal" true
              (List.for_all2
                 (fun a b -> Axiom.compare_tbox_axiom a b = 0)
                 kbar.Axiom.tbox kb'.Axiom.tbox)
        | Error e -> Alcotest.failf "reparse failed: %a@.%s" Surface.pp_error e printed)
  ]

let () =
  Alcotest.run "parser"
    [ ("concepts", concept_tests);
      ("kb4", kb4_tests);
      ("classical", classical_tests);
      ("errors", error_tests);
      ("roundtrip", roundtrip_tests);
      ("mangled-roundtrip", mangled_roundtrip_tests) ]
