(* Tests for the finite-model semantics: two-valued and four-valued
   evaluation (Tables 1-3), Propositions 3 and 4 on concrete cases, induced
   interpretations (Definitions 8-9), and enumeration. *)

open Concept

let tv = Alcotest.testable Truth.pp Truth.equal
let eset =
  Alcotest.testable
    (fun ppf s -> Fmt.Dump.list Fmt.int ppf (Interp.ESet.elements s))
    Interp.ESet.equal

let eset_of = Interp.ESet.of_list
let elements s = Interp.ESet.elements s

let r = Role.name "r"

(* A fixed two-valued interpretation over {0,1,2}. *)
let i2 =
  Interp.make
    ~domain:(eset_of [ 0; 1; 2 ])
    ~concepts:[ ("A", [ 0; 1 ]); ("B", [ 1 ]) ]
    ~roles:[ ("r", [ (0, 1); (1, 2) ]) ]
    ~individuals:[ ("x", 0); ("y", 1); ("z", 2) ]
    ()

let interp2_tests =
  let check name expected c =
    Alcotest.test_case name `Quick (fun () ->
        Alcotest.check eset name (eset_of expected) (Interp.eval i2 c))
  in
  [ check "atom" [ 0; 1 ] (Atom "A");
    check "negation" [ 2 ] (Not (Atom "A"));
    check "conjunction" [ 1 ] (And (Atom "A", Atom "B"));
    check "disjunction" [ 0; 1 ] (Or (Atom "A", Atom "B"));
    check "top" [ 0; 1; 2 ] Top;
    check "bottom" [] Bottom;
    check "exists" [ 0 ] (Exists (r, Atom "B"));
    check "forall (vacuous at 2)" [ 0; 2 ] (Forall (r, Atom "B"));
    check "inverse exists" [ 1; 2 ] (Exists (Role.inv r, Top));
    check "at least 1" [ 0; 1 ] (At_least (1, r));
    check "at most 0" [ 2 ] (At_most (0, r));
    check "nominal" [ 0; 2 ] (One_of [ "x"; "z" ]);
    Alcotest.test_case "model checking axioms" `Quick (fun () ->
        Alcotest.(check bool)
          "B << A holds" true
          (Interp.satisfies_tbox i2 (Axiom.Concept_sub (Atom "B", Atom "A")));
        Alcotest.(check bool)
          "A << B fails" false
          (Interp.satisfies_tbox i2 (Axiom.Concept_sub (Atom "A", Atom "B")));
        Alcotest.(check bool)
          "r not transitive here" false
          (Interp.satisfies_tbox i2 (Axiom.Transitive "r"));
        Alcotest.(check bool)
          "x : A" true
          (Interp.satisfies_abox i2 (Axiom.Instance_of ("x", Atom "A")));
        Alcotest.(check bool)
          "r(x,y)" true
          (Interp.satisfies_abox i2 (Axiom.Role_assertion ("x", r, "y"))));
    Alcotest.test_case "data evaluation" `Quick (fun () ->
        let i =
          Interp.make
            ~domain:(eset_of [ 0 ])
            ~data_roles:[ ("u", [ (0, Datatype.Int 5); (0, Datatype.Int 20) ]) ]
            ()
        in
        let in_range = Datatype.Int_range (Some 0, Some 10) in
        Alcotest.check eset "exists" (eset_of [ 0 ])
          (Interp.eval i (Data_exists ("u", in_range)));
        Alcotest.check eset "forall fails" (eset_of [])
          (Interp.eval i (Data_forall ("u", in_range)));
        Alcotest.check eset "at least 2" (eset_of [ 0 ])
          (Interp.eval i (Data_at_least (2, "u"))))
  ]

(* A fixed four-valued interpretation. *)
let i4 =
  Interp4.make
    ~domain:(eset_of [ 0; 1; 2 ])
    ~concepts:[ ("A", [ 0; 1 ], [ 1; 2 ]); ("B", [ 1 ], []) ]
    ~roles:[ ("r", [ (0, 1) ], [ (0, 2) ]) ]
    ~individuals:[ ("x", 0); ("y", 1); ("z", 2) ]
    ()

let interp4_tests =
  [ Alcotest.test_case "atomic truth values (Definition 3)" `Quick (fun () ->
        Alcotest.check tv "A(x)=t" Truth.True (Interp4.truth_value i4 (Atom "A") "x");
        Alcotest.check tv "A(y)=TOP" Truth.Both (Interp4.truth_value i4 (Atom "A") "y");
        Alcotest.check tv "A(z)=f" Truth.False (Interp4.truth_value i4 (Atom "A") "z");
        Alcotest.check tv "B(x)=BOT" Truth.Neither (Interp4.truth_value i4 (Atom "B") "x"));
    Alcotest.test_case "role truth values" `Quick (fun () ->
        Alcotest.check tv "r(x,y)=t" Truth.True (Interp4.role_truth_value i4 r "x" "y");
        Alcotest.check tv "r(x,z)=f" Truth.False (Interp4.role_truth_value i4 r "x" "z");
        Alcotest.check tv "r(y,z)=BOT" Truth.Neither
          (Interp4.role_truth_value i4 r "y" "z"));
    Alcotest.test_case "negation swaps projections" `Quick (fun () ->
        let e = Interp4.eval i4 (Not (Atom "A")) in
        Alcotest.(check (list int)) "pos" [ 1; 2 ] (elements e.Interp4.cpos);
        Alcotest.(check (list int)) "neg" [ 0; 1 ] (elements e.Interp4.cneg));
    Alcotest.test_case "Proposition 3: lattice identities with Top/Bottom"
      `Quick (fun () ->
        let cases = [ Atom "A"; Atom "B"; And (Atom "A", Not (Atom "B")) ] in
        List.iter
          (fun c ->
            let e = Interp4.eval i4 c in
            let check_eq name d =
              let e' = Interp4.eval i4 d in
              Alcotest.(check bool)
                name true
                (Interp.ESet.equal e.Interp4.cpos e'.Interp4.cpos
                && Interp.ESet.equal e.Interp4.cneg e'.Interp4.cneg)
            in
            check_eq "C & Top = C" (And (c, Top));
            check_eq "C | Bottom = C" (Or (c, Bottom));
            let top4 = Interp4.eval i4 Top and e_or = Interp4.eval i4 (Or (c, Top)) in
            Alcotest.(check bool)
              "C | Top = Top" true
              (Interp.ESet.equal top4.Interp4.cpos e_or.Interp4.cpos
              && Interp.ESet.equal top4.Interp4.cneg e_or.Interp4.cneg))
          cases);
    Alcotest.test_case "Proposition 4: de Morgan and quantifier duality"
      `Quick (fun () ->
        let eq c d =
          let ec = Interp4.eval i4 c and ed = Interp4.eval i4 d in
          Interp.ESet.equal ec.Interp4.cpos ed.Interp4.cpos
          && Interp.ESet.equal ec.Interp4.cneg ed.Interp4.cneg
        in
        let a = Atom "A" and b = Atom "B" in
        Alcotest.(check bool) "~~A = A" true (eq (Not (Not a)) a);
        Alcotest.(check bool) "~(A|B) = ~A & ~B" true
          (eq (Not (Or (a, b))) (And (Not a, Not b)));
        Alcotest.(check bool) "~(A&B) = ~A | ~B" true
          (eq (Not (And (a, b))) (Or (Not a, Not b)));
        Alcotest.(check bool) "~(only r.A) = some r.~A" true
          (eq (Not (Forall (r, a))) (Exists (r, Not a)));
        Alcotest.(check bool) "~(some r.A) = only r.~A" true
          (eq (Not (Exists (r, a))) (Forall (r, Not a)));
        Alcotest.(check bool) "~(>=2 r) = <=1 r" true
          (eq (Not (At_least (2, r))) (At_most (1, r)));
        Alcotest.(check bool) "~(<=1 r) = >=2 r" true
          (eq (Not (At_most (1, r))) (At_least (2, r))));
    Alcotest.test_case "four-valued quantifiers use told-positive edges"
      `Quick (fun () ->
        (* x's only told r-successor is y; A(y) = TOP so y is in both
           projections of A *)
        let e = Interp4.eval i4 (Exists (r, Atom "A")) in
        Alcotest.(check bool) "x in pos" true (Interp.ESet.mem 0 e.Interp4.cpos);
        Alcotest.(check bool)
          "x also in neg (successor told-not-A)" true
          (Interp.ESet.mem 0 e.Interp4.cneg));
    Alcotest.test_case "inclusion satisfaction: the three grades" `Quick
      (fun () ->
        (* A = <{0,1},{1,2}>, B = <{1},{}> *)
        let internal = Kb4.Concept_inclusion (Kb4.Internal, Atom "B", Atom "A") in
        Alcotest.(check bool)
          "B < A holds (pos subset)" true
          (Interp4.satisfies_tbox i4 internal);
        let strong = Kb4.Concept_inclusion (Kb4.Strong, Atom "B", Atom "A") in
        Alcotest.(check bool)
          "B -> A fails (neg not reversed)" false
          (Interp4.satisfies_tbox i4 strong);
        let material = Kb4.Concept_inclusion (Kb4.Material, Atom "A", Atom "B") in
        (* Δ \ neg(A) = {0}; pos(B) = {1}: fails *)
        Alcotest.(check bool)
          "A |-> B fails" false
          (Interp4.satisfies_tbox i4 material);
        let material2 = Kb4.Concept_inclusion (Kb4.Material, Not (Atom "A"), Atom "B") in
        (* Δ \ neg(~A) = Δ \ pos(A) = {2}; pos(B) = {1}: fails *)
        Alcotest.(check bool)
          "~A |-> B fails" false
          (Interp4.satisfies_tbox i4 material2));
    Alcotest.test_case "classical embedding satisfies classical corner"
      `Quick (fun () ->
        let i4c = Interp4.of_classical i2 in
        (* the embedded interpretation assigns classical values everywhere *)
        List.iter
          (fun ind ->
            let v = Interp4.truth_value i4c (Atom "A") ind in
            Alcotest.(check bool)
              "two-valued" true
              (Truth.equal v Truth.True || Truth.equal v Truth.False))
          [ "x"; "y"; "z" ])
  ]

(* Induced interpretations: Definitions 8 and 9 are mutually inverse. *)
let induced_tests =
  [ Alcotest.test_case "classical_of_four exposes projections" `Quick
      (fun () ->
        let c = Induced.classical_of_four i4 in
        Alcotest.check eset "A+ = pos(A)" (eset_of [ 0; 1 ])
          (Interp.concept_ext c (Mangle.pos_atom "A"));
        Alcotest.check eset "A- = neg(A)" (eset_of [ 1; 2 ])
          (Interp.concept_ext c (Mangle.neg_atom "A"));
        (* R= = Δ×Δ \ neg(R): (0,2) is the only negated edge *)
        Alcotest.(check bool)
          "(0,2) not in r=" false
          (Interp.PSet.mem (0, 2)
             (Interp.role_ext c (Role.Name (Mangle.eq_role "r"))));
        Alcotest.(check bool)
          "(1,0) in r=" true
          (Interp.PSet.mem (1, 0)
             (Interp.role_ext c (Role.Name (Mangle.eq_role "r")))));
    Alcotest.test_case "round trip four -> classical -> four" `Quick (fun () ->
        let signature =
          { Axiom.concepts = [ "A"; "B" ];
            roles = [ "r" ];
            data_roles = [];
            individuals = [ "x"; "y"; "z" ] }
        in
        let back = Induced.four_of_classical ~signature (Induced.classical_of_four i4) in
        List.iter
          (fun a ->
            let e = Interp4.concept_ext i4 a and e' = Interp4.concept_ext back a in
            Alcotest.(check bool)
              ("concept " ^ a) true
              (Interp.ESet.equal e.Interp4.cpos e'.Interp4.cpos
              && Interp.ESet.equal e.Interp4.cneg e'.Interp4.cneg))
          [ "A"; "B" ];
        let e = Interp4.role_ext i4 r and e' = Interp4.role_ext back r in
        Alcotest.(check bool)
          "role r" true
          (Interp.PSet.equal e.Interp4.rpos e'.Interp4.rpos
          && Interp.PSet.equal e.Interp4.rneg e'.Interp4.rneg))
  ]

let enum_tests =
  [ Alcotest.test_case "subsets count" `Quick (fun () ->
        Alcotest.(check int)
          "2^3" 8
          (List.length (List.of_seq (Enum.subsets [ 1; 2; 3 ]))));
    Alcotest.test_case "interps4 count for tiny signature" `Quick (fun () ->
        (* one concept, no roles, one individual: 2^1 × 2^1 = 4 *)
        let signature =
          { Axiom.concepts = [ "A" ]; roles = []; data_roles = []; individuals = [ "x" ] }
        in
        Alcotest.(check int)
          "4" 4
          (Seq.length (Enum.interps4 ~signature ())));
    Alcotest.test_case "contradictory ABox has 4-models but no 2-models"
      `Quick (fun () ->
        let abox =
          [ Axiom.Instance_of ("x", Atom "A");
            Axiom.Instance_of ("x", Not (Atom "A")) ]
        in
        let kb4 = Kb4.make ~tbox:[] ~abox in
        let kb2 = Axiom.make ~tbox:[] ~abox in
        Alcotest.(check bool) "4-model exists" true (Enum.exists_model4 kb4);
        Alcotest.(check bool) "no 2-model" false (Enum.exists_model2 kb2));
    Alcotest.test_case "every enumerated 4-model of example2 supports both"
      `Quick (fun () ->
        Alcotest.(check bool)
          "john in pos and neg of RPRT everywhere" true
          (Enum.for_all_models4 Paper_examples.example2 (fun m ->
               let e = Interp4.eval m (Atom "ReadPatientRecordTeam") in
               let j = Interp4.individual m "john" in
               Interp.ESet.mem j e.Interp4.cpos && Interp.ESet.mem j e.Interp4.cneg)));
    Alcotest.test_case "two-valued enumeration agrees with tableau" `Quick
      (fun () ->
        let kbs =
          [ Axiom.make ~tbox:[ Axiom.Concept_sub (Atom "A", Atom "B") ]
              ~abox:[ Axiom.Instance_of ("x", Atom "A") ];
            Axiom.make ~tbox:[ Axiom.Concept_sub (Atom "A", Atom "B") ]
              ~abox:
                [ Axiom.Instance_of ("x", Atom "A");
                  Axiom.Instance_of ("x", Not (Atom "B")) ];
            Axiom.make ~tbox:[]
              ~abox:
                [ Axiom.Instance_of ("x", Exists (r, Atom "A"));
                  Axiom.Instance_of ("x", Forall (r, Not (Atom "A"))) ] ]
        in
        List.iter
          (fun kb ->
            (* one extra anonymous element is enough for these KBs *)
            Alcotest.(check bool)
              "agree" (Tableau.kb_satisfiable kb)
              (Enum.exists_model2 ~extra:1 kb))
          kbs)
  ]

let () =
  Alcotest.run "semantics"
    [ ("interp2", interp2_tests);
      ("interp4", interp4_tests);
      ("induced", induced_tests);
      ("enum", enum_tests) ]
