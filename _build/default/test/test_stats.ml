(* Tests for KB metrics and expressivity naming. *)


let kb_of = Surface.parse_kb_exn
let kb4_of = Surface.parse_kb4_exn

let check_name label src expected =
  Alcotest.test_case label `Quick (fun () ->
      Alcotest.(check string)
        label expected
        (Kb_stats.name (Kb_stats.of_kb (kb_of src))))

let naming_tests =
  [ check_name "conjunctive core is AL" "A << B & C. x : A." "AL";
    check_name "value restriction stays AL" "A << only r.B." "AL";
    check_name "limited existential stays AL" "A << some r.Top." "AL";
    check_name "full existential lifts to ALC" "A << some r.B." "ALC";
    check_name "disjunction lifts to ALC" "A << B | C." "ALC";
    check_name "complex negation lifts to ALC" "A << ~(B & C)." "ALC";
    check_name "atomic negation stays AL" "A << ~B." "AL";
    check_name "transitivity gives S" "transitive r. A << some r.B." "S";
    check_name "hierarchy letter H" "role r << s." "ALH";
    check_name "nominals letter O" "A << {o1, o2}." "ALO";
    check_name "inverse letter I" "A << only r^-.B." "ALI";
    check_name "numbers letter N" "A << >= 2 r." "ALN";
    check_name "datatypes suffix (D)" "A << some age:integer." "AL(D)";
    check_name "the full logic of the paper"
      "transitive t. role r << s. A << ({o} | some r^-.B) & >= 2 s. age(x, 5)."
      "SHOIN(D)";
    Alcotest.test_case "four-valued KB counts inclusion kinds" `Quick
      (fun () ->
        let stats =
          Kb_stats.of_kb4 (kb4_of "A < B. A |-> C. B -> C. x : A.")
        in
        Alcotest.(check int) "internal" 1 stats.Kb_stats.internal_inclusions;
        Alcotest.(check int) "material" 1 stats.Kb_stats.material_inclusions;
        Alcotest.(check int) "strong" 1 stats.Kb_stats.strong_inclusions);
    Alcotest.test_case "counts and measures" `Quick (fun () ->
        let stats =
          Kb_stats.of_kb
            (kb_of "A << some r.(B & only s.C). x : A. r(x, y). x != y.")
        in
        Alcotest.(check int) "tbox" 1 stats.Kb_stats.tbox_axioms;
        Alcotest.(check int) "abox" 3 stats.Kb_stats.abox_axioms;
        Alcotest.(check int) "concepts" 3 stats.Kb_stats.concept_names;
        Alcotest.(check int) "roles" 2 stats.Kb_stats.role_names;
        Alcotest.(check int) "individuals" 2 stats.Kb_stats.individuals;
        Alcotest.(check int) "depth" 2 stats.Kb_stats.max_role_depth);
    Alcotest.test_case "paper examples report the expected fragments" `Quick
      (fun () ->
        Alcotest.(check string)
          "example3 is ALC" "ALC"
          (Kb_stats.name (Kb_stats.of_kb4 Paper_examples.example3));
        Alcotest.(check string)
          "example4 has numbers" "ALN"
          (Kb_stats.name (Kb_stats.of_kb4 Paper_examples.example4)));
    Alcotest.test_case "transformed KB keeps the fragment family" `Quick
      (fun () ->
        (* the transformation doubles the signature but must not invent
           constructors beyond the source fragment (nominal complements
           aside) *)
        let stats4 = Kb_stats.of_kb4 Paper_examples.example3 in
        let statsbar = Kb_stats.of_kb (Transform.kb Paper_examples.example3) in
        Alcotest.(check string)
          "same name" (Kb_stats.name stats4) (Kb_stats.name statsbar);
        (* each source atom contributes A+ and, when it occurs under
           negation somewhere, A-: between 1x and 2x the signature *)
        Alcotest.(check bool)
          "signature grows but at most doubles" true
          (statsbar.Kb_stats.concept_names >= stats4.Kb_stats.concept_names
          && statsbar.Kb_stats.concept_names <= 2 * stats4.Kb_stats.concept_names))
  ]

let () = Alcotest.run "stats" [ ("kb-stats", naming_tests) ]
