(* Tests for the DL syntax layer: roles, concepts, NNF, signatures, KBs. *)

let concept = Alcotest.testable Concept.pp Concept.equal

open Concept

let a = Atom "A"
let b = Atom "B"
let r = Role.name "r"

let role_tests =
  [ Alcotest.test_case "inverse is involutive" `Quick (fun () ->
        Alcotest.(check bool)
          "inv inv r = r" true
          (Role.equal r (Role.inv (Role.inv r))));
    Alcotest.test_case "base of inverse" `Quick (fun () ->
        Alcotest.(check string) "base" "r" (Role.base (Role.inv r)));
    Alcotest.test_case "is_inverse" `Quick (fun () ->
        Alcotest.(check bool) "plain" false (Role.is_inverse r);
        Alcotest.(check bool) "inv" true (Role.is_inverse (Role.inv r)))
  ]

let nnf_tests =
  [ Alcotest.test_case "nnf of atom is atom" `Quick (fun () ->
        Alcotest.check concept "a" a (nnf a));
    Alcotest.test_case "double negation" `Quick (fun () ->
        Alcotest.check concept "~~A = A" a (nnf (Not (Not a))));
    Alcotest.test_case "de Morgan conj" `Quick (fun () ->
        Alcotest.check concept "~(A & B)"
          (Or (Not a, Not b))
          (nnf (Not (And (a, b)))));
    Alcotest.test_case "de Morgan disj" `Quick (fun () ->
        Alcotest.check concept "~(A | B)"
          (And (Not a, Not b))
          (nnf (Not (Or (a, b)))));
    Alcotest.test_case "neg exists" `Quick (fun () ->
        Alcotest.check concept "~some r.A"
          (Forall (r, Not a))
          (nnf (Not (Exists (r, a)))));
    Alcotest.test_case "neg forall" `Quick (fun () ->
        Alcotest.check concept "~only r.A"
          (Exists (r, Not a))
          (nnf (Not (Forall (r, a)))));
    Alcotest.test_case "neg at-least" `Quick (fun () ->
        Alcotest.check concept "~>=2 r" (At_most (1, r)) (nnf (Not (At_least (2, r)))));
    Alcotest.test_case "neg at-least 0 is Bottom" `Quick (fun () ->
        Alcotest.check concept "~>=0 r" Bottom (nnf (Not (At_least (0, r)))));
    Alcotest.test_case "neg at-most" `Quick (fun () ->
        Alcotest.check concept "~<=2 r" (At_least (3, r)) (nnf (Not (At_most (2, r)))));
    Alcotest.test_case "neg top/bottom" `Quick (fun () ->
        Alcotest.check concept "~Top" Bottom (nnf (Not Top));
        Alcotest.check concept "~Bottom" Top (nnf (Not Bottom)));
    Alcotest.test_case "nnf is idempotent on a nested example" `Quick (fun () ->
        let c = Not (And (Or (a, Not b), Exists (r, Not (Forall (r, a))))) in
        let n = nnf c in
        Alcotest.(check bool) "is_nnf" true (is_nnf n);
        Alcotest.check concept "idempotent" n (nnf n));
    Alcotest.test_case "neg data exists" `Quick (fun () ->
        Alcotest.check concept "~some u:D"
          (Data_forall ("u", Datatype.Complement Datatype.Int_type))
          (nnf (Not (Data_exists ("u", Datatype.Int_type)))))
  ]

let smart_constructor_tests =
  [ Alcotest.test_case "conj of empty is Top" `Quick (fun () ->
        Alcotest.check concept "empty" Top (conj []));
    Alcotest.test_case "conj drops Top, short-circuits Bottom" `Quick (fun () ->
        Alcotest.check concept "drop top" a (conj [ Top; a ]);
        Alcotest.check concept "bottom" Bottom (conj [ a; Bottom; b ]));
    Alcotest.test_case "disj of empty is Bottom" `Quick (fun () ->
        Alcotest.check concept "empty" Bottom (disj []));
    Alcotest.test_case "neg smart constructor eliminates double negation"
      `Quick (fun () ->
        Alcotest.check concept "neg" a (neg (neg a)))
  ]

let measure_tests =
  [ Alcotest.test_case "size counts nodes" `Quick (fun () ->
        Alcotest.(check int) "size" 3 (size (And (a, b)));
        Alcotest.(check int) "size atom" 1 (size a));
    Alcotest.test_case "depth counts quantifier nesting" `Quick (fun () ->
        Alcotest.(check int) "flat" 0 (depth (And (a, b)));
        Alcotest.(check int) "one" 1 (depth (Exists (r, a)));
        Alcotest.(check int) "two" 2 (depth (Exists (r, Forall (r, a)))));
    Alcotest.test_case "subconcepts of nested concept" `Quick (fun () ->
        let c = And (a, Exists (r, b)) in
        let subs = subconcepts c in
        Alcotest.(check bool) "self" true (List.mem c subs);
        Alcotest.(check bool) "a" true (List.mem a subs);
        Alcotest.(check bool) "b" true (List.mem b subs);
        Alcotest.(check bool) "exists" true (List.mem (Exists (r, b)) subs);
        Alcotest.(check int) "count" 4 (List.length subs))
  ]

let signature_tests =
  [ Alcotest.test_case "concept signature pieces" `Quick (fun () ->
        let c =
          And
            ( Exists (r, One_of [ "o1"; "o2" ]),
              Data_exists ("u", Datatype.Int_type) )
        in
        Alcotest.(check (list string)) "roles" [ "r" ] (role_names c);
        Alcotest.(check (list string)) "data roles" [ "u" ] (data_role_names c);
        Alcotest.(check (list string))
          "individuals" [ "o1"; "o2" ]
          (individual_names c));
    Alcotest.test_case "kb signature" `Quick (fun () ->
        let kb =
          Axiom.make
            ~tbox:
              [ Axiom.Concept_sub (a, Exists (r, b)); Axiom.Transitive "t" ]
            ~abox:
              [ Axiom.Instance_of ("x", a);
                Axiom.Role_assertion ("x", Role.name "s", "y") ]
        in
        let s = Axiom.signature kb in
        Alcotest.(check (slist string String.compare))
          "concepts" [ "A"; "B" ] s.Axiom.concepts;
        Alcotest.(check (slist string String.compare))
          "roles" [ "r"; "s"; "t" ] s.Axiom.roles;
        Alcotest.(check (slist string String.compare))
          "individuals" [ "x"; "y" ] s.Axiom.individuals)
  ]

let kb4_tests =
  [ Alcotest.test_case "of_classical maps to internal by default" `Quick
      (fun () ->
        let kb = Axiom.make ~tbox:[ Axiom.Concept_sub (a, b) ] ~abox:[] in
        let kb4 = Kb4.of_classical kb in
        match kb4.Kb4.tbox with
        | [ Kb4.Concept_inclusion (Kb4.Internal, x, y) ] ->
            Alcotest.check concept "lhs" a x;
            Alcotest.check concept "rhs" b y
        | _ -> Alcotest.fail "unexpected shape");
    Alcotest.test_case "size counts tbox and abox" `Quick (fun () ->
        let kb4 =
          Kb4.make
            ~tbox:[ Kb4.Concept_inclusion (Kb4.Material, a, b) ]
            ~abox:[ Axiom.Instance_of ("x", a) ]
        in
        Alcotest.(check int) "size" 2 (Kb4.size kb4));
    Alcotest.test_case "inclusion symbols" `Quick (fun () ->
        Alcotest.(check string) "material" "|->" (Kb4.inclusion_symbol Kb4.Material);
        Alcotest.(check string) "internal" "<" (Kb4.inclusion_symbol Kb4.Internal);
        Alcotest.(check string) "strong" "->" (Kb4.inclusion_symbol Kb4.Strong))
  ]

let mangle_tests =
  [ Alcotest.test_case "mangle round trips" `Quick (fun () ->
        (match Mangle.atom_origin (Mangle.pos_atom "A") with
        | Mangle.Pos "A" -> ()
        | _ -> Alcotest.fail "pos");
        (match Mangle.atom_origin (Mangle.neg_atom "A") with
        | Mangle.Neg "A" -> ()
        | _ -> Alcotest.fail "neg");
        (match Mangle.role_origin (Mangle.eq_role "r") with
        | Mangle.Eq "r" -> ()
        | _ -> Alcotest.fail "eq");
        match Mangle.atom_origin "Plain" with
        | Mangle.Plain "Plain" -> ()
        | _ -> Alcotest.fail "plain");
    Alcotest.test_case "is_mangled" `Quick (fun () ->
        Alcotest.(check bool) "A+" true (Mangle.is_mangled (Mangle.pos_atom "A"));
        Alcotest.(check bool) "A" false (Mangle.is_mangled "A"))
  ]

let () =
  Alcotest.run "syntax"
    [ ("roles", role_tests);
      ("nnf", nnf_tests);
      ("smart-constructors", smart_constructor_tests);
      ("measures", measure_tests);
      ("signatures", signature_tests);
      ("kb4", kb4_tests);
      ("mangle", mangle_tests) ]
