(* Tests for the classical SHOIN(D) tableau reasoner. *)

open Concept

let atom = Concept.Atom "A"
let b = Concept.Atom "B"
let c = Concept.Atom "C"
let r = Role.name "r"
let s = Role.name "s"

let sat ?(tbox = []) ?(abox = []) () =
  Tableau.kb_satisfiable { Axiom.tbox; abox }

let check_sat name expected kb_sat =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) name expected kb_sat)

let csat ?(tbox = []) concept =
  sat ~tbox ~abox:[ Axiom.Instance_of ("x", concept) ] ()

(* ------------------------------------------------------------------ *)
(* Basic propositional-style satisfiability *)

let basic_tests =
  [ check_sat "empty KB is satisfiable" true (sat ());
    check_sat "A is satisfiable" true (csat atom);
    check_sat "A & ~A is unsatisfiable" false (csat (And (atom, Not atom)));
    check_sat "A | ~A is satisfiable" true (csat (Or (atom, Not atom)));
    check_sat "Bottom is unsatisfiable" false (csat Bottom);
    check_sat "Top is satisfiable" true (csat Top);
    check_sat "deep nesting: (A|B) & (~A|B) & (A|~B) & (~A|~B) unsat" false
      (csat
         (conj
            [ Or (atom, b);
              Or (Not atom, b);
              Or (atom, Not b);
              Or (Not atom, Not b) ]));
    check_sat "three-way disjunction keeps one branch open" true
      (csat (conj [ disj [ atom; b; c ]; Not atom; Not b ]));
    check_sat "contradiction via disjunction both branches closed" false
      (csat (conj [ disj [ atom; b ]; Not atom; Not b ]))
  ]

(* ------------------------------------------------------------------ *)
(* Quantifiers *)

let quantifier_tests =
  [ check_sat "some r.A satisfiable" true (csat (Exists (r, atom)));
    check_sat "some r.A & only r.~A unsat" false
      (csat (And (Exists (r, atom), Forall (r, Not atom))));
    check_sat "some r.A & only r.B: successor gets both" true
      (csat (And (Exists (r, atom), Forall (r, b))));
    check_sat "some r.(A & ~A) unsat" false
      (csat (Exists (r, And (atom, Not atom))));
    check_sat "only r.Bottom satisfiable (no successor forced)" true
      (csat (Forall (r, Bottom)));
    check_sat "some r.Top & only r.Bottom unsat" false
      (csat (And (Exists (r, Top), Forall (r, Bottom))));
    check_sat "nested: some r.(some s.A) & only r.(only s.~A) unsat" false
      (csat
         (And (Exists (r, Exists (s, atom)), Forall (r, Forall (s, Not atom)))))
  ]

(* ------------------------------------------------------------------ *)
(* TBox reasoning: subsumption via unsatisfiability, GCIs, cycles *)

let tbox_tests =
  [ check_sat "A << B makes A & ~B unsat" false
      (csat
         ~tbox:[ Axiom.Concept_sub (atom, b) ]
         (And (atom, Not b)));
    check_sat "chain A<<B<<C: A & ~C unsat" false
      (csat
         ~tbox:[ Axiom.Concept_sub (atom, b); Axiom.Concept_sub (b, c) ]
         (And (atom, Not c)));
    check_sat "cyclic TBox A << some r.A is satisfiable (blocking)" true
      (csat ~tbox:[ Axiom.Concept_sub (atom, Exists (r, atom)) ] atom);
    check_sat "cyclic GCI Top << some r.A terminates (blocking)" true
      (csat ~tbox:[ Axiom.Concept_sub (Top, Exists (r, atom)) ] atom);
    check_sat "complex LHS GCI: (some r.A) << B, with r-succ in A, ~B unsat"
      false
      (sat
         ~tbox:[ Axiom.Concept_sub (Exists (r, atom), b) ]
         ~abox:
           [ Axiom.Instance_of ("x", Not b);
             Axiom.Role_assertion ("x", r, "y");
             Axiom.Instance_of ("y", atom) ]
         ());
    check_sat "unsatisfiable TBox: Top << A, Top << ~A" false
      (sat
         ~tbox:[ Axiom.Concept_sub (Top, atom); Axiom.Concept_sub (Top, Not atom) ]
         ~abox:[ Axiom.Instance_of ("x", Top) ]
         ())
  ]

(* ------------------------------------------------------------------ *)
(* Role hierarchies and transitivity *)

let role_tests =
  [ check_sat "r << s propagates only s.C to r-successor" false
      (sat
         ~tbox:[ Axiom.Role_sub (r, s) ]
         ~abox:
           [ Axiom.Instance_of ("x", Forall (s, Not atom));
             Axiom.Role_assertion ("x", r, "y");
             Axiom.Instance_of ("y", atom) ]
         ());
    check_sat "transitive role propagates forall two steps" false
      (sat
         ~tbox:[ Axiom.Transitive "r" ]
         ~abox:
           [ Axiom.Instance_of ("x", Forall (r, Not atom));
             Axiom.Role_assertion ("x", r, "y");
             Axiom.Role_assertion ("y", r, "z");
             Axiom.Instance_of ("z", atom) ]
         ());
    check_sat "without transitivity two steps are fine" true
      (sat
         ~abox:
           [ Axiom.Instance_of ("x", Forall (r, Not atom));
             Axiom.Role_assertion ("x", r, "y");
             Axiom.Role_assertion ("y", r, "z");
             Axiom.Instance_of ("z", atom) ]
         ());
    check_sat "transitive subrole: Trans(r), r << s, only s.~A blocks chain"
      false
      (sat
         ~tbox:[ Axiom.Transitive "r"; Axiom.Role_sub (r, s) ]
         ~abox:
           [ Axiom.Instance_of ("x", Forall (s, Not atom));
             Axiom.Role_assertion ("x", r, "y");
             Axiom.Role_assertion ("y", r, "z");
             Axiom.Instance_of ("z", atom) ]
         ())
  ]

(* ------------------------------------------------------------------ *)
(* Inverse roles *)

let inverse_tests =
  [ check_sat "inverse: r(x,y) and y: only r^-.~A with x:A unsat" false
      (sat
         ~abox:
           [ Axiom.Instance_of ("x", atom);
             Axiom.Role_assertion ("x", r, "y");
             Axiom.Instance_of ("y", Forall (Role.inv r, Not atom)) ]
         ());
    check_sat "inverse: some r.(only r^-.~A) & A unsat" false
      (csat (conj [ atom; Exists (r, Forall (Role.inv r, Not atom)) ]));
    check_sat "inverse: some r.(only r^-.A) & A satisfiable" true
      (csat (conj [ atom; Exists (r, Forall (Role.inv r, atom)) ]));
    check_sat "inverse role assertion: r^-(x,y) same as r(y,x)" false
      (sat
         ~abox:
           [ Axiom.Role_assertion ("x", Role.inv r, "y");
             Axiom.Instance_of ("y", Forall (r, Not atom));
             Axiom.Instance_of ("x", atom) ]
         ())
  ]

(* ------------------------------------------------------------------ *)
(* Number restrictions *)

let number_tests =
  [ check_sat ">= 2 r satisfiable" true (csat (At_least (2, r)));
    check_sat ">= 2 r & <= 1 r unsat" false
      (csat (And (At_least (2, r), At_most (1, r))));
    check_sat ">= 1 r & <= 1 r satisfiable" true
      (csat (And (At_least (1, r), At_most (1, r))));
    check_sat "<= 0 r & some r.Top unsat" false
      (csat (And (At_most (0, r), Exists (r, Top))));
    check_sat "two named successors merge under <= 1" true
      (sat
         ~abox:
           [ Axiom.Instance_of ("x", At_most (1, r));
             Axiom.Role_assertion ("x", r, "y");
             Axiom.Role_assertion ("x", r, "z") ]
         ());
    check_sat "two distinct named successors clash under <= 1" false
      (sat
         ~abox:
           [ Axiom.Instance_of ("x", At_most (1, r));
             Axiom.Role_assertion ("x", r, "y");
             Axiom.Role_assertion ("x", r, "z");
             Axiom.Different ("y", "z") ]
         ());
    check_sat "merge propagates labels: <=1 r with A-succ and ~A-succ unsat"
      false
      (sat
         ~abox:
           [ Axiom.Instance_of ("x", At_most (1, r));
             Axiom.Role_assertion ("x", r, "y");
             Axiom.Role_assertion ("x", r, "z");
             Axiom.Instance_of ("y", atom);
             Axiom.Instance_of ("z", Not atom) ]
         ());
    check_sat "at-least over subrole counts for superrole" false
      (csat
         ~tbox:[ Axiom.Role_sub (r, s) ]
         (And (At_least (2, r), At_most (1, s))));
    check_sat ">= 3 r & <= 2 r unsat (multi-merge)" false
      (csat (And (At_least (3, r), At_most (2, r))))
  ]

(* ------------------------------------------------------------------ *)
(* Nominals *)

let nominal_tests =
  [ check_sat "x : {o} merges x with o" false
      (sat
         ~abox:
           [ Axiom.Instance_of ("x", One_of [ "o" ]);
             Axiom.Instance_of ("x", atom);
             Axiom.Instance_of ("o", Not atom) ]
         ());
    check_sat "negated nominal keeps nodes apart" true
      (sat
         ~abox:
           [ Axiom.Instance_of ("x", Not (One_of [ "o" ]));
             Axiom.Instance_of ("x", atom);
             Axiom.Instance_of ("o", Not atom) ]
         ());
    check_sat "x : {o} and x : ~{o} clash" false
      (sat
         ~abox:
           [ Axiom.Instance_of ("x", One_of [ "o" ]);
             Axiom.Instance_of ("x", Not (One_of [ "o" ])) ]
         ());
    check_sat "disjunctive nominal {o1,o2} picks a consistent branch" true
      (sat
         ~abox:
           [ Axiom.Instance_of ("x", One_of [ "o1"; "o2" ]);
             Axiom.Instance_of ("x", atom);
             Axiom.Instance_of ("o1", Not atom) ]
         ());
    check_sat "disjunctive nominal with both branches closed" false
      (sat
         ~abox:
           [ Axiom.Instance_of ("x", One_of [ "o1"; "o2" ]);
             Axiom.Instance_of ("x", atom);
             Axiom.Instance_of ("o1", Not atom);
             Axiom.Instance_of ("o2", Not atom) ]
         ())
  ]

(* ------------------------------------------------------------------ *)
(* ABox equality / inequality *)

let abox_tests =
  [ check_sat "a = b merges labels" false
      (sat
         ~abox:
           [ Axiom.Same ("a", "b");
             Axiom.Instance_of ("a", atom);
             Axiom.Instance_of ("b", Not atom) ]
         ());
    check_sat "a != a is unsatisfiable" false
      (sat ~abox:[ Axiom.Different ("a", "a") ] ());
    check_sat "a = b with a != b unsatisfiable" false
      (sat ~abox:[ Axiom.Same ("a", "b"); Axiom.Different ("a", "b") ] ());
    check_sat "equality closes role paths" false
      (sat
         ~abox:
           [ Axiom.Same ("a", "b");
             Axiom.Role_assertion ("x", r, "a");
             Axiom.Instance_of ("x", Forall (r, atom));
             Axiom.Instance_of ("b", Not atom) ]
         ())
  ]

(* ------------------------------------------------------------------ *)
(* Datatypes *)

let dt = Datatype.Int_range (Some 0, Some 10)
let dt_hi = Datatype.Int_range (Some 5, Some 20)

let datatype_tests =
  [ check_sat "data exists in range satisfiable" true
      (csat (Data_exists ("u", dt)));
    check_sat "exists & forall with empty intersection unsat" false
      (csat
         (And
            ( Data_exists ("u", Datatype.Int_range (Some 0, Some 4)),
              Data_forall ("u", dt_hi) )));
    check_sat "exists & forall with overlap satisfiable" true
      (csat (And (Data_exists ("u", dt), Data_forall ("u", dt_hi))));
    check_sat "asserted value violating forall unsat" false
      (sat
         ~abox:
           [ Axiom.Data_assertion ("x", "u", Datatype.Int 42);
             Axiom.Instance_of ("x", Data_forall ("u", dt)) ]
         ());
    check_sat "asserted value inside forall satisfiable" true
      (sat
         ~abox:
           [ Axiom.Data_assertion ("x", "u", Datatype.Int 3);
             Axiom.Instance_of ("x", Data_forall ("u", dt)) ]
         ());
    check_sat "at-least 5 over a 3-value datatype unsat" false
      (csat
         (And
            ( Data_at_least (5, "u"),
              Data_forall ("u", Datatype.Int_range (Some 1, Some 3)) )));
    check_sat "at-least 3 over a 3-value datatype satisfiable" true
      (csat
         (And
            ( Data_at_least (3, "u"),
              Data_forall ("u", Datatype.Int_range (Some 1, Some 3)) )));
    check_sat "at-most 0 with asserted value unsat" false
      (sat
         ~abox:
           [ Axiom.Data_assertion ("x", "u", Datatype.Int 1);
             Axiom.Instance_of ("x", Data_at_most (0, "u")) ]
         ());
    check_sat "boolean datatype at-least 3 unsat" false
      (csat
         (And (Data_at_least (3, "u"), Data_forall ("u", Datatype.Bool_type))));
    check_sat "data role hierarchy: value on u counts for v" false
      (sat
         ~tbox:[ Axiom.Data_role_sub ("u", "v") ]
         ~abox:
           [ Axiom.Data_assertion ("x", "u", Datatype.Int 42);
             Axiom.Instance_of ("x", Data_forall ("v", dt)) ]
         ())
  ]

(* ------------------------------------------------------------------ *)
(* Reasoner services *)

let services_tests =
  let penguin_kb =
    Axiom.make
      ~tbox:
        [ Axiom.Concept_sub (Atom "Penguin", Atom "Bird");
          Axiom.Concept_sub (Atom "Bird", Atom "Animal");
          Axiom.Concept_sub (Atom "Penguin", Not (Atom "Flyer")) ]
      ~abox:[ Axiom.Instance_of ("tweety", Atom "Penguin") ]
  in
  let t = Reasoner.create penguin_kb in
  [ Alcotest.test_case "consistent penguin KB" `Quick (fun () ->
        Alcotest.(check bool) "consistent" true (Reasoner.is_consistent t));
    Alcotest.test_case "subsumption Penguin << Animal" `Quick (fun () ->
        Alcotest.(check bool)
          "subsumes" true
          (Reasoner.subsumes t (Atom "Penguin") (Atom "Animal")));
    Alcotest.test_case "no reverse subsumption" `Quick (fun () ->
        Alcotest.(check bool)
          "subsumes" false
          (Reasoner.subsumes t (Atom "Animal") (Atom "Penguin")));
    Alcotest.test_case "instance tweety : Animal" `Quick (fun () ->
        Alcotest.(check bool)
          "instance" true
          (Reasoner.instance_of t "tweety" (Atom "Animal")));
    Alcotest.test_case "instance tweety : ~Flyer" `Quick (fun () ->
        Alcotest.(check bool)
          "instance" true
          (Reasoner.instance_of t "tweety" (Not (Atom "Flyer"))));
    Alcotest.test_case "non-instance tweety : Flyer" `Quick (fun () ->
        Alcotest.(check bool)
          "instance" false
          (Reasoner.instance_of t "tweety" (Atom "Flyer")));
    Alcotest.test_case "classify finds the chain" `Quick (fun () ->
        let hierarchy = Reasoner.classify t in
        let supers a = List.assoc a hierarchy in
        Alcotest.(check (slist string String.compare))
          "penguin supers"
          [ "Bird"; "Animal" ]
          (supers "Penguin"));
    Alcotest.test_case "role entailment through hierarchy" `Quick (fun () ->
        let kb =
          Axiom.make
            ~tbox:[ Axiom.Role_sub (r, s) ]
            ~abox:[ Axiom.Role_assertion ("a", r, "b") ]
        in
        let t = Reasoner.create kb in
        Alcotest.(check bool) "s(a,b)" true (Reasoner.role_entailed t "a" s "b");
        Alcotest.(check bool)
          "r(b,a) not entailed" false
          (Reasoner.role_entailed t "b" r "a"));
    Alcotest.test_case "same/different entailment" `Quick (fun () ->
        let kb =
          Axiom.make ~tbox:[]
            ~abox:
              [ Axiom.Same ("a", "b"); Axiom.Different ("a", "c") ]
        in
        let t = Reasoner.create kb in
        Alcotest.(check bool) "a=b" true (Reasoner.same_entailed t "a" "b");
        Alcotest.(check bool) "a!=c" true (Reasoner.different_entailed t "a" "c");
        Alcotest.(check bool)
          "b=c open" false
          (Reasoner.same_entailed t "b" "c"));
    Alcotest.test_case "validate flags non-simple number restriction" `Quick
      (fun () ->
        let kb =
          Axiom.make
            ~tbox:[ Axiom.Transitive "r" ]
            ~abox:[ Axiom.Instance_of ("x", At_most (1, r)) ]
        in
        let t = Reasoner.create kb in
        Alcotest.(check bool) "warned" true (Reasoner.validate t <> []))
  ]

(* ------------------------------------------------------------------ *)
(* Model extraction *)

let model_tests =
  let check_model name kb ~expect_model =
    Alcotest.test_case name `Quick (fun () ->
        match Tableau.kb_model kb with
        | Some m ->
            Alcotest.(check bool) "expected a model" true expect_model;
            (* kb_model verifies internally; double-check anyway *)
            Alcotest.(check bool) "verified" true (Interp.is_model m kb)
        | None ->
            Alcotest.(check bool)
              "expected no (finite) model" false expect_model)
  in
  [ check_model "propositional model" ~expect_model:true
      (Axiom.make
         ~tbox:[ Axiom.Concept_sub (atom, b) ]
         ~abox:[ Axiom.Instance_of ("x", atom) ]);
    check_model "unsat KB has no model" ~expect_model:false
      (Axiom.make ~tbox:[] ~abox:[ Axiom.Instance_of ("x", And (atom, Not atom)) ]);
    check_model "existential chain model" ~expect_model:true
      (Axiom.make ~tbox:[]
         ~abox:[ Axiom.Instance_of ("x", Exists (r, Exists (s, atom))) ]);
    check_model "cyclic TBox model via blocking loop" ~expect_model:true
      (Axiom.make
         ~tbox:[ Axiom.Concept_sub (atom, Exists (r, atom)) ]
         ~abox:[ Axiom.Instance_of ("x", atom) ]);
    check_model "transitive role model" ~expect_model:true
      (Axiom.make
         ~tbox:[ Axiom.Transitive "r"; Axiom.Role_sub (r, s) ]
         ~abox:
           [ Axiom.Role_assertion ("x", r, "y");
             Axiom.Role_assertion ("y", r, "z");
             Axiom.Instance_of ("x", Forall (s, atom)) ]);
    check_model "number restriction model" ~expect_model:true
      (Axiom.make ~tbox:[]
         ~abox:[ Axiom.Instance_of ("x", And (At_least (2, r), At_most (3, r))) ]);
    check_model "datatype model" ~expect_model:true
      (Axiom.make ~tbox:[]
         ~abox:
           [ Axiom.Instance_of
               ( "x",
                 And
                   ( Data_exists ("u", Datatype.Int_range (Some 0, Some 5)),
                     Data_at_least (2, "u") ) ) ]);
    Alcotest.test_case "extracted model satisfies asserted facts" `Quick
      (fun () ->
        let kb =
          Axiom.make
            ~tbox:[ Axiom.Concept_sub (Atom "Penguin", Atom "Bird") ]
            ~abox:
              [ Axiom.Instance_of ("tweety", Atom "Penguin");
                Axiom.Role_assertion ("tweety", Role.name "likes", "w") ]
        in
        match Tableau.kb_model kb with
        | None -> Alcotest.fail "expected model"
        | Some m ->
            let tw = Interp.individual m "tweety" in
            Alcotest.(check bool)
              "tweety in Bird" true
              (Interp.ESet.mem tw (Interp.eval m (Atom "Bird")));
            Alcotest.(check bool)
              "likes edge" true
              (Interp.PSet.mem
                 (tw, Interp.individual m "w")
                 (Interp.role_ext m (Role.name "likes"))));
    Alcotest.test_case "reasoner facade exposes models" `Quick (fun () ->
        let t = Reasoner.create (Axiom.make ~tbox:[] ~abox:[ Axiom.Instance_of ("x", atom) ]) in
        Alcotest.(check bool) "some model" true (Reasoner.find_model t <> None));
    Alcotest.test_case "Para.find_model4 returns a verified 4-model" `Quick
      (fun () ->
        let t = Para.create Paper_examples.example2 in
        match Para.find_model4 t with
        | None -> Alcotest.fail "expected 4-model"
        | Some m ->
            Alcotest.(check bool)
              "is 4-model" true
              (Interp4.is_model m Paper_examples.example2))
  ]

(* ------------------------------------------------------------------ *)
(* Resource limits and engine statistics *)

let resource_tests =
  [ Alcotest.test_case "node limit raises Resource_limit" `Quick (fun () ->
        (* an infinite-model-only KB needs many nodes before blocking; a
           tiny limit trips first *)
        let kb =
          Axiom.make
            ~tbox:
              [ Axiom.Concept_sub (Top, Exists (r, atom));
                Axiom.Concept_sub (Top, Exists (s, b)) ]
            ~abox:[ Axiom.Instance_of ("x", Top) ]
        in
        match Tableau.kb_satisfiable ~max_nodes:2 kb with
        | exception Tableau.Resource_limit _ -> ()
        | _ -> Alcotest.fail "expected Resource_limit");
    Alcotest.test_case "branch limit raises Resource_limit" `Quick (fun () ->
        let kb =
          Axiom.make ~tbox:[]
            ~abox:
              [ Axiom.Instance_of
                  ( "x",
                    conj
                      (List.init 6 (fun i ->
                           Or
                             ( Atom (Printf.sprintf "P%d" i),
                               Atom (Printf.sprintf "Q%d" i) ))) ) ]
        in
        match Tableau.kb_satisfiable ~max_branches:2 kb with
        | exception Tableau.Resource_limit _ -> ()
        | (_ : bool) ->
            (* a very lucky search could finish within the budget, but the
               six independent disjunctions need at least six choices *)
            Alcotest.fail "expected Resource_limit");
    Alcotest.test_case "stats count work" `Quick (fun () ->
        let stats = Tableau.fresh_stats () in
        let kb =
          Axiom.make ~tbox:[]
            ~abox:
              [ Axiom.Instance_of ("x", Exists (r, Exists (r, atom)));
                Axiom.Instance_of ("x", Or (atom, b)) ]
        in
        Alcotest.(check bool) "sat" true (Tableau.kb_satisfiable ~stats kb);
        Alcotest.(check bool)
          "created successors" true
          (stats.Tableau.nodes_created >= 2);
        Alcotest.(check bool)
          "explored a branch" true
          (stats.Tableau.branches_explored >= 1))
  ]

(* ------------------------------------------------------------------ *)
(* Combined-feature stress cases *)

let stress_tests =
  [ check_sat "hierarchy + transitivity + inverse + numbers" true
      (sat
         ~tbox:
           [ Axiom.Role_sub (r, s);
             Axiom.Transitive "s";
             Axiom.Concept_sub (atom, Exists (r, atom)) ]
         ~abox:
           [ Axiom.Instance_of ("x", atom);
             Axiom.Instance_of ("x", At_most (3, s));
             Axiom.Instance_of ("x", Forall (s, b)) ]
         ());
    check_sat "deep unsatisfiable chain through hierarchy" false
      (sat
         ~tbox:
           [ Axiom.Role_sub (r, s);
             Axiom.Transitive "s";
             Axiom.Concept_sub (atom, Exists (r, atom)) ]
         ~abox:
           [ Axiom.Instance_of ("x", atom);
             (* every s-reachable node is ~A, but the r-chain is all A *)
             Axiom.Instance_of ("x", Forall (s, Not atom)) ]
         ());
    check_sat "nominal + number restriction interplay" false
      (sat
         ~abox:
           [ Axiom.Instance_of ("x", At_most (1, r));
             Axiom.Role_assertion ("x", r, "a");
             Axiom.Role_assertion ("x", r, "b");
             Axiom.Instance_of ("a", atom);
             Axiom.Instance_of ("b", Not atom);
             Axiom.Different ("a", "b") ]
         ());
    check_sat "disjunction over quantifiers picks workable branch" true
      (csat
         ~tbox:[ Axiom.Concept_sub (atom, Bottom) ]
         (Or (Exists (r, atom), Exists (r, b))));
    check_sat "three-level alternating quantifiers unsat" false
      (csat
         (conj
            [ Exists (r, Forall (s, atom));
              Forall (r, Exists (s, b));
              Forall (r, Forall (s, Not atom)) ]));
    check_sat "merge cascades through equalities" false
      (sat
         ~abox:
           [ Axiom.Same ("a", "b");
             Axiom.Same ("b", "c");
             Axiom.Instance_of ("a", atom);
             Axiom.Instance_of ("c", Not atom) ]
         ())
  ]

let () =
  Alcotest.run "tableau"
    [ ("basic", basic_tests);
      ("quantifiers", quantifier_tests);
      ("tbox", tbox_tests);
      ("roles", role_tests);
      ("inverse", inverse_tests);
      ("numbers", number_tests);
      ("nominals", nominal_tests);
      ("abox", abox_tests);
      ("datatypes", datatype_tests);
      ("services", services_tests);
      ("models", model_tests);
      ("resources", resource_tests);
      ("stress", stress_tests) ]
