(* Tests for the transformation of Definitions 5-7 and the query compilation
   of Corollary 7, including fixed-case checks of Lemma 5 (the qcheck
   versions live in test_properties.ml). *)

let concept = Alcotest.testable Concept.pp Concept.equal

open Concept

let a = Atom "A"
let b = Atom "B"
let r = Role.name "r"

let check_pos name input expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.check concept name expected (Transform.concept_pos input))

let ap = Atom (Mangle.pos_atom "A")
let an = Atom (Mangle.neg_atom "A")
let bp = Atom (Mangle.pos_atom "B")
let bn = Atom (Mangle.neg_atom "B")
let rp = Role.Name (Mangle.plus_role "r")
let re = Role.Name (Mangle.eq_role "r")

(* Definition 5, clause by clause. *)
let concept_transform_tests =
  [ check_pos "(1) atom" a ap;
    check_pos "(2) negated atom" (Not a) an;
    check_pos "(3) top" Top Top;
    check_pos "(4) bottom" Bottom Bottom;
    check_pos "(5) conjunction" (And (a, b)) (And (ap, bp));
    check_pos "(6) disjunction" (Or (a, b)) (Or (ap, bp));
    check_pos "(7) exists" (Exists (r, a)) (Exists (rp, ap));
    check_pos "(8) forall" (Forall (r, a)) (Forall (rp, ap));
    check_pos "(9) at-least" (At_least (2, r)) (At_least (2, rp));
    check_pos "(10) at-most" (At_most (2, r)) (At_most (2, re));
    check_pos "(11) double negation" (Not (Not a)) ap;
    check_pos "(12) negated conjunction" (Not (And (a, b))) (Or (an, bn));
    check_pos "(13) negated disjunction" (Not (Or (a, b))) (And (an, bn));
    check_pos "(14) negated exists" (Not (Exists (r, a))) (Forall (rp, an));
    check_pos "(15) negated forall" (Not (Forall (r, a))) (Exists (rp, an));
    check_pos "(16) negated at-least" (Not (At_least (2, r))) (At_most (1, re));
    check_pos "(16) negated at-least 0" (Not (At_least (0, r))) Bottom;
    check_pos "(17) negated at-most" (Not (At_most (2, r))) (At_least (3, rp));
    check_pos "(18) nominal" (One_of [ "o" ]) (One_of [ "o" ]);
    check_pos "(19) inverse roles commute"
      (Exists (Role.inv r, a))
      (Exists (Role.Inv (Mangle.plus_role "r"), ap));
    check_pos "(19) inverse under at-most"
      (At_most (1, Role.inv r))
      (At_most (1, Role.Inv (Mangle.eq_role "r")));
    check_pos "nested: ~(A & some r.B)"
      (Not (And (a, Exists (r, b))))
      (Or (an, Forall (rp, bn)));
    check_pos "datatype exists keeps the datatype"
      (Data_exists ("u", Datatype.Int_type))
      (Data_exists (Mangle.plus_role "u", Datatype.Int_type));
    check_pos "negated datatype exists complements"
      (Not (Data_exists ("u", Datatype.Int_type)))
      (Data_forall (Mangle.plus_role "u", Datatype.Complement Datatype.Int_type));
    check_pos "negated data at-most"
      (Not (Data_at_most (1, "u")))
      (Data_at_least (2, Mangle.plus_role "u"))
  ]

(* Definition 6. *)
let axiom_transform_tests =
  [ Alcotest.test_case "material concept inclusion" `Quick (fun () ->
        match Transform.tbox_axiom (Kb4.Concept_inclusion (Kb4.Material, a, b)) with
        | [ Axiom.Concept_sub (lhs, rhs) ] ->
            Alcotest.check concept "lhs" (Not an) lhs;
            Alcotest.check concept "rhs" bp rhs
        | _ -> Alcotest.fail "shape");
    Alcotest.test_case "internal concept inclusion" `Quick (fun () ->
        match Transform.tbox_axiom (Kb4.Concept_inclusion (Kb4.Internal, a, b)) with
        | [ Axiom.Concept_sub (lhs, rhs) ] ->
            Alcotest.check concept "lhs" ap lhs;
            Alcotest.check concept "rhs" bp rhs
        | _ -> Alcotest.fail "shape");
    Alcotest.test_case "strong concept inclusion yields two axioms" `Quick
      (fun () ->
        match Transform.tbox_axiom (Kb4.Concept_inclusion (Kb4.Strong, a, b)) with
        | [ Axiom.Concept_sub (l1, r1); Axiom.Concept_sub (l2, r2) ] ->
            Alcotest.check concept "pos lhs" ap l1;
            Alcotest.check concept "pos rhs" bp r1;
            Alcotest.check concept "neg lhs" bn l2;
            Alcotest.check concept "neg rhs" an r2
        | _ -> Alcotest.fail "shape");
    Alcotest.test_case "role inclusions" `Quick (fun () ->
        let s = Role.name "s" in
        let sp = Role.Name (Mangle.plus_role "s") in
        let se = Role.Name (Mangle.eq_role "s") in
        (match Transform.tbox_axiom (Kb4.Role_inclusion (Kb4.Material, r, s)) with
        | [ Axiom.Role_sub (x, y) ] ->
            Alcotest.(check bool) "R= << S+" true
              (Role.equal x re && Role.equal y sp)
        | _ -> Alcotest.fail "material");
        (match Transform.tbox_axiom (Kb4.Role_inclusion (Kb4.Internal, r, s)) with
        | [ Axiom.Role_sub (x, y) ] ->
            Alcotest.(check bool) "R+ << S+" true
              (Role.equal x rp && Role.equal y sp)
        | _ -> Alcotest.fail "internal");
        match Transform.tbox_axiom (Kb4.Role_inclusion (Kb4.Strong, r, s)) with
        | [ Axiom.Role_sub (x1, y1); Axiom.Role_sub (x2, y2) ] ->
            Alcotest.(check bool) "R+ << S+" true
              (Role.equal x1 rp && Role.equal y1 sp);
            Alcotest.(check bool) "R= << S=" true
              (Role.equal x2 re && Role.equal y2 se)
        | _ -> Alcotest.fail "strong");
    Alcotest.test_case "transitivity maps to the positive role" `Quick
      (fun () ->
        match Transform.tbox_axiom (Kb4.Transitive "r") with
        | [ Axiom.Transitive name ] ->
            Alcotest.(check string) "r+" (Mangle.plus_role "r") name
        | _ -> Alcotest.fail "shape");
    Alcotest.test_case "abox transformation" `Quick (fun () ->
        (match Transform.abox_axiom (Axiom.Instance_of ("x", Not a)) with
        | Axiom.Instance_of ("x", c) -> Alcotest.check concept "A-" an c
        | _ -> Alcotest.fail "instance");
        (match Transform.abox_axiom (Axiom.Role_assertion ("x", r, "y")) with
        | Axiom.Role_assertion ("x", rr, "y") ->
            Alcotest.(check bool) "r+" true (Role.equal rr rp)
        | _ -> Alcotest.fail "role");
        match Transform.abox_axiom (Axiom.Same ("x", "y")) with
        | Axiom.Same _ -> ()
        | _ -> Alcotest.fail "same")
  ]

(* Lemma 5 on the fixed interpretation of test_semantics: for every concept
   in a small pool, proj+(C^I) = (C̄)^Ī and proj-(C^I) = ((¬C)bar)^Ī. *)
let lemma5_fixed_tests =
  let i4 =
    Interp4.make
      ~domain:(Interp.ESet.of_list [ 0; 1; 2 ])
      ~concepts:[ ("A", [ 0; 1 ], [ 1; 2 ]); ("B", [ 1 ], [ 0 ]) ]
      ~roles:[ ("r", [ (0, 1); (1, 2) ], [ (0, 2); (2, 2) ]) ]
      ~individuals:[ ("x", 0); ("y", 1); ("z", 2) ]
      ()
  in
  let ibar = Induced.classical_of_four i4 in
  let pool =
    [ a;
      Not a;
      And (a, b);
      Or (Not a, b);
      Exists (r, a);
      Forall (r, Not b);
      Not (Exists (r, And (a, b)));
      At_least (1, r);
      At_most (1, r);
      Not (At_least (2, r));
      Not (At_most (0, r));
      Exists (Role.inv r, a);
      Forall (Role.inv r, Or (a, Not b));
      One_of [ "x"; "z" ];
      And (One_of [ "x" ], a);
      Not (And (Not a, Not b)) ]
  in
  List.mapi
    (fun idx c ->
      Alcotest.test_case
        (Printf.sprintf "decomposition %d: %s" idx (Concept.to_string c))
        `Quick
        (fun () ->
          let e = Interp4.eval i4 c in
          let pos = Interp.eval ibar (Transform.concept_pos c) in
          let neg = Interp.eval ibar (Transform.concept_neg c) in
          Alcotest.(check bool)
            "pos projection" true
            (Interp.ESet.equal e.Interp4.cpos pos);
          Alcotest.(check bool)
            "neg projection" true
            (Interp.ESet.equal e.Interp4.cneg neg)))
    pool

(* Theorem 6 on the paper examples: I is a 4-model of K iff Ī is a model of
   K̄ — checked in the forward direction over enumerated models. *)
let theorem6_tests =
  [ Alcotest.test_case "forward: 4-models map to classical models (ex2)"
      `Quick (fun () ->
        let kb = Paper_examples.example2 in
        let kbar = Transform.kb kb in
        let checked = ref 0 in
        Seq.iter
          (fun m ->
            incr checked;
            Alcotest.(check bool)
              "induced classical model" true
              (Interp.is_model (Induced.classical_of_four m) kbar))
          (Seq.take 500 (Enum.models4 kb));
        Alcotest.(check bool) "some models checked" true (!checked > 0));
    Alcotest.test_case "backward: classical models map to 4-models (ex2)"
      `Quick (fun () ->
        let kb = Paper_examples.example2 in
        let kbar = Transform.kb kb in
        let signature = Kb4.signature kb in
        let checked = ref 0 in
        Seq.iter
          (fun m ->
            incr checked;
            Alcotest.(check bool)
              "induced 4-model" true
              (Interp4.is_model (Induced.four_of_classical ~signature m) kb))
          (Seq.take 500 (Enum.models2 kbar));
        Alcotest.(check bool) "some models checked" true (!checked > 0));
    Alcotest.test_case "satisfiability transfers (paper examples)" `Quick
      (fun () ->
        List.iter
          (fun kb ->
            Alcotest.(check bool)
              "4-sat iff classical sat of induced KB" (Enum.exists_model4 kb)
              (Tableau.kb_satisfiable (Transform.kb kb)))
          (* example1's 3-individual domain is too large to enumerate *)
          [ Paper_examples.example2; Paper_examples.example4 ])
  ]

(* Corollary 7: inclusion queries against enumeration. *)
let corollary7_tests =
  [ Alcotest.test_case "internal inclusion entailed by strong axiom" `Quick
      (fun () ->
        let kb =
          Kb4.make ~tbox:[ Kb4.Concept_inclusion (Kb4.Strong, a, b) ] ~abox:[]
        in
        let t = Para.create kb in
        Alcotest.(check bool)
          "A < B" true
          (Para.entails_inclusion t Kb4.Internal a b);
        Alcotest.(check bool)
          "A -> B" true
          (Para.entails_inclusion t Kb4.Strong a b);
        Alcotest.(check bool)
          "B < A not entailed" false
          (Para.entails_inclusion t Kb4.Internal b a));
    Alcotest.test_case "internal axiom does not give strong inclusion" `Quick
      (fun () ->
        let kb =
          Kb4.make ~tbox:[ Kb4.Concept_inclusion (Kb4.Internal, a, b) ] ~abox:[]
        in
        let t = Para.create kb in
        Alcotest.(check bool)
          "A < B" true
          (Para.entails_inclusion t Kb4.Internal a b);
        Alcotest.(check bool)
          "A -> B not entailed" false
          (Para.entails_inclusion t Kb4.Strong a b));
    Alcotest.test_case "reflexivity and transitivity of internal inclusion"
      `Quick (fun () ->
        let kb =
          Kb4.make
            ~tbox:
              [ Kb4.Concept_inclusion (Kb4.Internal, a, b);
                Kb4.Concept_inclusion (Kb4.Internal, b, Atom "C") ]
            ~abox:[]
        in
        let t = Para.create kb in
        Alcotest.(check bool)
          "A < A" true
          (Para.entails_inclusion t Kb4.Internal a a);
        Alcotest.(check bool)
          "A < C" true
          (Para.entails_inclusion t Kb4.Internal a (Atom "C")));
    Alcotest.test_case "material inclusion from material axiom" `Quick
      (fun () ->
        let kb =
          Kb4.make ~tbox:[ Kb4.Concept_inclusion (Kb4.Material, a, b) ] ~abox:[]
        in
        let t = Para.create kb in
        Alcotest.(check bool)
          "A |-> B" true
          (Para.entails_inclusion t Kb4.Material a b);
        Alcotest.(check bool)
          "A < B NOT entailed by material axiom" false
          (Para.entails_inclusion t Kb4.Internal a b))
  ]

let () =
  Alcotest.run "transform"
    [ ("definition5", concept_transform_tests);
      ("definition6", axiom_transform_tests);
      ("lemma5-fixed", lemma5_fixed_tests);
      ("theorem6", theorem6_tests);
      ("corollary7", corollary7_tests) ]
