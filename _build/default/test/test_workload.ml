(* Tests for the synthetic workload generators. *)

let workload_tests =
  [ Alcotest.test_case "generation is deterministic in the seed" `Quick
      (fun () ->
        let k1 = Gen.kb4 Gen.default and k2 = Gen.kb4 Gen.default in
        Alcotest.(check bool)
          "same tbox" true
          (List.for_all2
             (fun a b -> Kb4.compare_tbox_axiom a b = 0)
             k1.Kb4.tbox k2.Kb4.tbox);
        Alcotest.(check bool)
          "same abox" true
          (List.for_all2
             (fun a b -> Axiom.compare_abox_axiom a b = 0)
             k1.Kb4.abox k2.Kb4.abox));
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let k1 = Gen.kb4 { Gen.default with seed = 1 } in
        let k2 = Gen.kb4 { Gen.default with seed = 2 } in
        Alcotest.(check bool)
          "differ" false
          (List.length k1.Kb4.tbox = List.length k2.Kb4.tbox
          && List.for_all2
               (fun a b -> Kb4.compare_tbox_axiom a b = 0)
               k1.Kb4.tbox k2.Kb4.tbox));
    Alcotest.test_case "axiom counts follow the parameters" `Quick (fun () ->
        let p = { Gen.default with n_tbox = 17; n_abox = 23; inconsistency_rate = 0.0 } in
        let kb = Gen.kb4 p in
        Alcotest.(check int) "tbox" 17 (List.length kb.Kb4.tbox);
        Alcotest.(check int) "abox" 23 (List.length kb.Kb4.abox));
    Alcotest.test_case "inconsistency injection adds pairs" `Quick (fun () ->
        let p = { Gen.default with n_abox = 10; inconsistency_rate = 0.5 } in
        let kb = Gen.kb4 p in
        (* ceil(0.5 × 20 individuals) = 10 pairs = 20 extra assertions *)
        Alcotest.(check int) "abox" 30 (List.length kb.Kb4.abox));
    Alcotest.test_case "generated 4-valued KBs are 4-satisfiable" `Quick
      (fun () ->
        (* atomic-LHS internal/material axioms plus atomic contradictions
           can never produce a hard (Bottom-style) clash *)
        List.iter
          (fun seed ->
            let kb = Gen.kb4 { Gen.default with seed; n_tbox = 15; n_abox = 20 } in
            Alcotest.(check bool)
              (Printf.sprintf "seed %d" seed)
              true
              (Para.satisfiable (Para.create kb)))
          [ 1; 2; 3 ]);
    Alcotest.test_case "taxonomy has depth × branching structure" `Quick
      (fun () ->
        let kb = Gen.taxonomy ~depth:2 ~branching:3 in
        (* 3 + 9 inclusions *)
        Alcotest.(check int) "axioms" 12 (List.length kb.Axiom.tbox);
        let r = Reasoner.create kb in
        Alcotest.(check bool)
          "leaf under root" true
          (Reasoner.subsumes r (Concept.Atom "C2_8") (Concept.Atom "C0_0")));
    Alcotest.test_case "inject_contradictions adds 2 axioms per count" `Quick
      (fun () ->
        let kb = Paper_examples.example2 in
        let kb' = Gen.inject_contradictions ~seed:7 ~count:3 kb in
        Alcotest.(check int)
          "abox grows by 6"
          (List.length kb.Kb4.abox + 6)
          (List.length kb'.Kb4.abox));
    Alcotest.test_case "exception chains: classical explodes, dl4 does not"
      `Quick (fun () ->
        let kb = Gen.exception_chains ~n:3 in
        let t = Para.create kb in
        Alcotest.(check bool) "4-sat" true (Para.satisfiable t);
        (* each instance is a non-flying penguin *)
        Alcotest.(check bool)
          "F0 denied for a0" true
          (Para.entails_not_instance t "a0" (Concept.Atom "F0"));
        Alcotest.(check bool)
          "F0 not supported for a0" false
          (Para.entails_instance t "a0" (Concept.Atom "F0"));
        (* the classical rendering (material read as <<) is inconsistent *)
        let classical =
          Axiom.make
            ~tbox:
              (List.filter_map
                 (function
                   | Kb4.Concept_inclusion (_, c, d) ->
                       Some (Axiom.Concept_sub (c, d))
                   | Kb4.Role_inclusion (_, r, s) -> Some (Axiom.Role_sub (r, s))
                   | Kb4.Data_role_inclusion (_, u, v) ->
                       Some (Axiom.Data_role_sub (u, v))
                   | Kb4.Transitive r -> Some (Axiom.Transitive r))
                 kb.Kb4.tbox)
            ~abox:kb.Kb4.abox
        in
        Alcotest.(check bool)
          "classical unsat" false
          (Tableau.kb_satisfiable classical))
  ]

let () = Alcotest.run "workload" [ ("generators", workload_tests) ]
