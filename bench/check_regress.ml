(* Bench perf-regression gate (PR 5).

   Usage: check_regress GATES.json BASELINE_DIR NEW_DIR

   Every BENCH_*.json artifact carries the unified "dl4-bench/1"
   envelope: a flat numeric [metrics] object next to free-form [detail].
   GATES.json lists, per artifact and metric, the checks to run against
   the freshly generated artifacts under NEW_DIR:

   - "max" / "min": absolute budget bounds on the new value — used for
     machine-independent ratios (overhead percentages) and invariants
     (answers_identical = 1);
   - "baseline_rel_tol": compare the new value against the checked-in
     artifact under BASELINE_DIR; the new value may exceed the baseline
     by at most the given relative fraction.  Only meaningful for
     lower-is-better, machine-independent metrics (tableau call counts):
     wall-clock seconds vary across machines and must not be gated this
     way.

   Exit code 0 when every gate passes, 1 otherwise; one PASS/FAIL line
   per gate either way so CI logs show what was checked. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match Json_lite.parse (read_file path) with
  | Ok j -> Ok j
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | exception Sys_error e -> Error e

let metric_of json name =
  match Json_lite.member "metrics" json with
  | Some m -> (
      match Json_lite.member name m with
      | Some v -> Json_lite.to_num v
      | None -> None)
  | None -> None

let () =
  let gates_path, baseline_dir, new_dir =
    match Sys.argv with
    | [| _; g; b; n |] -> (g, b, n)
    | _ ->
        prerr_endline "usage: check_regress GATES.json BASELINE_DIR NEW_DIR";
        exit 2
  in
  let gates_json =
    match load gates_path with
    | Ok j -> j
    | Error e ->
        Printf.eprintf "check_regress: %s\n" e;
        exit 2
  in
  let gates =
    match Json_lite.member "gates" gates_json with
    | Some (Json_lite.Arr l) -> l
    | _ ->
        Printf.eprintf "check_regress: %s: no \"gates\" array\n" gates_path;
        exit 2
  in
  let failures = ref 0 in
  let fail fmt =
    incr failures;
    Printf.printf "FAIL %s\n" fmt
  in
  let pass fmt = Printf.printf "PASS %s\n" fmt in
  let str name g =
    match Json_lite.member name g with
    | Some v -> Json_lite.to_str v
    | None -> None
  in
  let num name g =
    match Json_lite.member name g with
    | Some v -> Json_lite.to_num v
    | None -> None
  in
  List.iter
    (fun g ->
      match (str "file" g, str "metric" g) with
      | Some file, Some metric -> (
          let label ctx = Printf.sprintf "%s %s %s" file metric ctx in
          match load (Filename.concat new_dir file) with
          | Error e -> fail (label ("unreadable: " ^ e))
          | Ok fresh -> (
              match metric_of fresh metric with
              | None -> fail (label "missing from new artifact")
              | Some v ->
                  (match num "max" g with
                  | Some hi ->
                      if v <= hi then
                        pass (label (Printf.sprintf "%.4g <= max %.4g" v hi))
                      else
                        fail (label (Printf.sprintf "%.4g > max %.4g" v hi))
                  | None -> ());
                  (match num "min" g with
                  | Some lo ->
                      if v >= lo then
                        pass (label (Printf.sprintf "%.4g >= min %.4g" v lo))
                      else
                        fail (label (Printf.sprintf "%.4g < min %.4g" v lo))
                  | None -> ());
                  (match num "baseline_rel_tol" g with
                  | Some tol -> (
                      match load (Filename.concat baseline_dir file) with
                      | Error e -> fail (label ("baseline unreadable: " ^ e))
                      | Ok base -> (
                          match metric_of base metric with
                          | None -> fail (label "missing from baseline")
                          | Some b ->
                              let bound = b *. (1.0 +. tol) in
                              if v <= bound then
                                pass
                                  (label
                                     (Printf.sprintf
                                        "%.4g within %.0f%% of baseline %.4g"
                                        v (tol *. 100.) b))
                              else
                                fail
                                  (label
                                     (Printf.sprintf
                                        "%.4g exceeds baseline %.4g by more \
                                         than %.0f%%"
                                        v b (tol *. 100.)))))
                  | None -> ())))
      | _ -> fail "malformed gate entry (need \"file\" and \"metric\")")
    gates;
  if !failures > 0 then begin
    Printf.printf "%d gate(s) failed\n" !failures;
    exit 1
  end
  else print_endline "all gates passed"
