(* Evaluation harness.

   The reproduced paper (EDBT'06 Ws) has no experimental section: its
   evaluation artifacts are the worked Examples 1-5 and Table 4.  This
   harness therefore has two parts:

   1. "Shape" reports regenerating every observable artifact of the paper
      (per-experiment ids EX1, EX2, EX3+EX5, EX4+T4 in DESIGN.md), printed
      as paper-vs-measured tables;

   2. Bechamel micro/mesobenchmarks for the synthetic experiments S1-S4 of
      DESIGN.md (transformation cost, 4-valued vs classical reasoning time,
      answer quality under growing inconsistency, inclusion-kind ablation),
      one Test.make per series point.

   Run with:  dune exec bench/main.exe *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing *)

let run_group ~name tests =
  Printf.printf "\n-- timing: %s --\n%!" name;
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (test_name, est) ->
      match Analyze.OLS.estimates est with
      | Some (t :: _) ->
          if t > 1e9 then
            Printf.printf "  %-48s %10.2f s/run\n" test_name (t /. 1e9)
          else if t > 1e6 then
            Printf.printf "  %-48s %10.2f ms/run\n" test_name (t /. 1e6)
          else if t > 1e3 then
            Printf.printf "  %-48s %10.2f us/run\n" test_name (t /. 1e3)
          else Printf.printf "  %-48s %10.0f ns/run\n" test_name t
      | _ -> Printf.printf "  %-48s (no estimate)\n" test_name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

let bench name f = Test.make ~name (Staged.stage f)

(* Bench artifacts (BENCH_*.json) are written under [--out DIR] (default:
   the current directory) so `dune runtest` / ad-hoc runs from the repo
   root do not dirty the work tree unless asked to. *)
let out_dir =
  let rec scan = function
    | "--out" :: dir :: _ -> dir
    | _ :: rest -> scan rest
    | [] -> "."
  in
  scan (Array.to_list Sys.argv)

let out_path name = Filename.concat out_dir name

let write_artifact name contents =
  let path = out_path name in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents);
  Printf.printf "  wrote %s\n" path

(* Unified bench-artifact envelope (PR 5): every BENCH_*.json carries the
   same top level — a schema tag, a timestamp and a flat numeric
   [metrics] object — so bench/check_regress can gate any experiment
   without per-experiment parsers.  Experiment-specific structure lives
   under [detail].  [metrics] values are pre-rendered JSON numbers;
   booleans are encoded as 0/1 so gates stay uniform comparisons. *)
let write_bench name ~experiment ~metrics ~detail =
  let json =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"dl4-bench/1\",\n\
      \  \"experiment\": \"%s\",\n\
      \  \"generated_unix\": %.0f,\n\
      \  \"metrics\": {\n%s\n  },\n\
      \  \"detail\": %s\n\
       }\n"
      experiment (Unix.time ())
      (String.concat ",\n"
         (List.map (fun (k, v) -> Printf.sprintf "    \"%s\": %s" k v) metrics))
      detail
  in
  write_artifact name json

let section title =
  let line = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n%!" line title line

(* ------------------------------------------------------------------ *)
(* EX1 / EX2 / EX3+EX5 / EX4: the paper's qualitative results *)

let truth t a c = Para.instance_truth t a (Concept.Atom c)

let report_paper_examples () =
  section "EX1-EX4: paper examples - expected (paper text) vs measured";
  let row name expected measured =
    Printf.printf "  %-52s %-8s %-8s %s\n" name expected measured
      (if expected = measured then "OK" else "MISMATCH")
  in
  Printf.printf "  %-52s %-8s %-8s\n" "query" "paper" "dl4";

  let t1 = Para.create Paper_examples.example1 in
  row "EX1 four-valued satisfiable" "yes"
    (if Para.satisfiable t1 then "yes" else "no");
  row "EX1 info that bill is a doctor" "yes"
    (if Para.entails_instance t1 "bill" (Concept.Atom "Doctor") then "yes"
     else "no");
  row "EX1 info that bill is not a doctor" "no"
    (if Para.entails_not_instance t1 "bill" (Concept.Atom "Doctor") then "yes"
     else "no");
  row "EX1 john : Doctor" "TOP" (Truth.to_string (truth t1 "john" "Doctor"));
  row "EX1 john : Patient (irrelevant)" "BOT"
    (Truth.to_string (truth t1 "john" "Patient"));

  let t2 = Para.create Paper_examples.example2 in
  row "EX2 john : ReadPatientRecordTeam" "TOP"
    (Truth.to_string (truth t2 "john" "ReadPatientRecordTeam"));
  row "EX2 john : Patient" "BOT" (Truth.to_string (truth t2 "john" "Patient"));

  let t3 = Para.create Paper_examples.example3 in
  row "EX3 classical rendition satisfiable" "no"
    (if Tableau.kb_satisfiable Paper_examples.example3_classical then "yes"
     else "no");
  row "EX3 four-valued satisfiable" "yes"
    (if Para.satisfiable t3 then "yes" else "no");
  row "EX5 Fly-(tweety) holds" "yes"
    (if
       Reasoner.instance_of (Para.classical_reasoner t3) "tweety"
         (Concept.Atom (Mangle.neg_atom "Fly"))
     then "yes"
     else "no");
  row "EX5 Fly+(tweety) holds" "no"
    (if
       Reasoner.instance_of (Para.classical_reasoner t3) "tweety"
         (Concept.Atom (Mangle.pos_atom "Fly"))
     then "yes"
     else "no");

  let t4 = Para.create Paper_examples.example4 in
  row "EX4 four-valued satisfiable" "yes"
    (if Para.satisfiable t4 then "yes" else "no");
  row "EX4 smith : Parent" "t" (Truth.to_string (truth t4 "smith" "Parent"));
  row "EX4 smith : Married" "f" (Truth.to_string (truth t4 "smith" "Married"))

(* ------------------------------------------------------------------ *)
(* EX4+T4: regenerate Table 4 by model enumeration *)

let report_table4 () =
  section
    "EX4+T4: Table 4 - four-valued models of Example 4 over {smith, kate}";
  let has_child = Role.name "hasChild" in
  let statements m =
    [ Interp4.role_truth_value m has_child "smith" "kate";
      Interp4.truth_value m (Concept.At_least (1, has_child)) "smith";
      Interp4.truth_value m (Concept.Atom "Parent") "smith";
      Interp4.truth_value m (Concept.Atom "Married") "smith" ]
  in
  let module Rows = Set.Make (struct
    type t = Truth.t list

    let compare = List.compare Truth.compare
  end) in
  let realized =
    Seq.fold_left
      (fun acc m -> Rows.add (statements m) acc)
      Rows.empty
      (Enum.models4 Paper_examples.example4)
  in
  Printf.printf "  %-14s %-16s %-10s %-10s\n" "hasChild(s,k)" ">=1.hasChild(s)"
    "Parent(s)" "Married(s)";
  Rows.iter
    (fun r ->
      match List.map Truth.to_string r with
      | [ a; b; c; d ] -> Printf.printf "  %-14s %-16s %-10s %-10s\n" a b c d
      | _ -> ())
    realized;
  let expected = Rows.of_list (List.map fst Paper_examples.table4_rows) in
  Printf.printf "  rows: %d (paper: 9);  exact match with Table 4: %b\n"
    (Rows.cardinal realized)
    (Rows.equal realized expected)

(* ------------------------------------------------------------------ *)
(* S3: answer quality under growing inconsistency *)

let classical_of_kb4 (kb : Kb4.t) =
  Axiom.make
    ~tbox:
      (List.filter_map
         (function
           | Kb4.Concept_inclusion (_, c, d) -> Some (Axiom.Concept_sub (c, d))
           | Kb4.Role_inclusion (_, r, s) -> Some (Axiom.Role_sub (r, s))
           | Kb4.Data_role_inclusion (_, u, v) ->
               Some (Axiom.Data_role_sub (u, v))
           | Kb4.Transitive r -> Some (Axiom.Transitive r))
         kb.Kb4.tbox)
    ~abox:kb.Kb4.abox

let report_quality () =
  section "S3: answer quality vs injected inconsistency (ours; see DESIGN.md)";
  Printf.printf
    "  base: contradiction-free random KB (seed 7); queries: every\n\
    \  (individual, atomic concept) pair; cells count queries.\n\n";
  let base =
    Gen.kb4
      { Gen.default with
        seed = 7;
        n_concepts = 8;
        n_individuals = 8;
        n_tbox = 12;
        n_abox = 20;
        max_depth = 1;
        inconsistency_rate = 0.0;
        material_fraction = 0.0;
        allow_negation = false }
  in
  Printf.printf "  %-6s | %-26s | %-26s | %s\n" "contr."
    "classical acc/rej/und" "selection acc/rej/und" "dl4 t/f/TOP/BOT";
  List.iter
    (fun count ->
      let kb = Gen.inject_contradictions ~seed:(100 + count) ~count base in
      let classical = classical_of_kb4 kb in
      let t = Para.create kb in
      let signature = Kb4.signature kb in
      let queries =
        List.concat_map
          (fun a ->
            List.map
              (fun c -> (a, Concept.Atom c))
              signature.Axiom.concepts)
          signature.Axiom.individuals
      in
      let count_answers f =
        List.fold_left
          (fun (acc, rej, und) q ->
            match f q with
            | Baselines.Accepted -> (acc + 1, rej, und)
            | Baselines.Rejected -> (acc, rej + 1, und)
            | Baselines.Undetermined -> (acc, rej, und + 1))
          (0, 0, 0) queries
      in
      let reasoner = Reasoner.create classical in
      let trivial = not (Reasoner.is_consistent reasoner) in
      let ca, cr, cu =
        count_answers (fun (a, c) ->
            if trivial then Baselines.Accepted
            else if Reasoner.instance_of reasoner a c then Baselines.Accepted
            else if Reasoner.instance_of reasoner a (Concept.neg c) then
              Baselines.Rejected
            else Baselines.Undetermined)
      in
      let sa, sr, su =
        count_answers (fun (a, c) ->
            Baselines.selection_instance classical a c)
      in
      let dt, df, dtop, dbot =
        List.fold_left
          (fun (t', f', top, bot) (a, c) ->
            match Para.instance_truth t a c with
            | Truth.True -> (t' + 1, f', top, bot)
            | Truth.False -> (t', f' + 1, top, bot)
            | Truth.Both -> (t', f', top + 1, bot)
            | Truth.Neither -> (t', f', top, bot + 1))
          (0, 0, 0, 0) queries
      in
      Printf.printf "  %-6d | %7d /%5d /%6d    | %7d /%5d /%6d    | %d / %d / %d / %d\n%!"
        count ca cr cu sa sr su dt df dtop dbot)
    [ 0; 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* S4: ablation over the three inclusion kinds *)

let report_ablation () =
  section "S4: ablation - the default axiom under |->, <, -> (Example 3)";
  Printf.printf "  %-10s %-12s %-14s %-12s\n" "kind" "satisfiable"
    "tweety:Fly" "tweety:Bird";
  List.iter
    (fun kind ->
      let kb =
        { Paper_examples.example3 with
          Kb4.tbox =
            Kb4.Concept_inclusion
              ( kind,
                Concept.And
                  ( Concept.Atom "Bird",
                    Concept.Exists (Role.name "hasWing", Concept.Atom "Wing")
                  ),
                Concept.Atom "Fly" )
            :: List.tl (Paper_examples.example3 : Kb4.t).tbox }
      in
      let t = Para.create kb in
      Printf.printf "  %-10s %-12b %-14s %-12s\n"
        (Kb4.inclusion_symbol kind)
        (Para.satisfiable t)
        (Truth.to_string (truth t "tweety" "Fly"))
        (Truth.to_string (truth t "tweety" "Bird")))
    Kb4.all_inclusions;
  Printf.printf
    "\n  exception chains (n defaults, each with a penguin-style exception):\n";
  Printf.printf "  %-6s %-22s %-22s\n" "n" "4-valued satisfiable"
    "classical satisfiable";
  List.iter
    (fun n ->
      let kb = Gen.exception_chains ~n in
      let classical = classical_of_kb4 kb in
      Printf.printf "  %-6d %-22b %-22b\n" n
        (Para.satisfiable (Para.create kb))
        (Tableau.kb_satisfiable classical))
    [ 1; 4; 16 ]

(* ------------------------------------------------------------------ *)
(* S6: the Dl_engine classification & realization engine *)

let engine_workloads =
  let gen seed n_tbox =
    ( Printf.sprintf "gen_seed%d_tbox%d" seed n_tbox,
      Gen.kb4
        { Gen.default with
          seed;
          n_concepts = 10;
          n_individuals = 8;
          n_tbox;
          n_abox = 16;
          max_depth = 1;
          inconsistency_rate = 0.1 } )
  in
  [ ("example1", Paper_examples.example1);
    ("example2", Paper_examples.example2);
    ("example3", Paper_examples.example3);
    ("example4", Paper_examples.example4);
    ("chains8", Gen.exception_chains ~n:8);
    gen 3 12;
    gen 5 18 ]

let report_engine_classification () =
  section
    "S6a: engine classification vs naive all-pairs (tableau calls per KB)";
  Printf.printf "  %-20s %-7s %-7s %-7s %-7s %-7s %s\n" "kb" "atoms" "naive"
    "engine" "saved" "told" "agree";
  List.iter
    (fun (label, kb) ->
      let t = Para.create kb in
      let naive = Para.classify_naive t in
      let e = Engine.of_config Oracle.default_config kb in
      let cls = Engine.classification e in
      let s = cls.Classify.stats in
      Printf.printf "  %-20s %-7d %-7d %-7d %-7d %-7d %s\n%!" label s.atoms
        s.naive_tests s.tableau_tests
        (Classify.tableau_calls_saved s)
        s.told_hits
        (if cls.Classify.supers = naive then "OK" else "MISMATCH"))
    engine_workloads

let report_engine_cache () =
  section "S6b: verdict cache - cold vs warm batch of instance queries";
  let kb =
    Gen.kb4
      { Gen.default with
        seed = 17;
        n_concepts = 8;
        n_individuals = 8;
        n_tbox = 12;
        n_abox = 20;
        max_depth = 1;
        inconsistency_rate = 0.1 }
  in
  let signature = Kb4.signature kb in
  let queries =
    List.concat_map
      (fun a -> List.map (fun c -> (a, c)) signature.Axiom.concepts)
      signature.Axiom.individuals
  in
  let batch e =
    List.iter
      (fun (a, c) -> ignore (Engine.instance_truth e a (Concept.Atom c)))
      queries
  in
  let e = Engine.of_config Oracle.default_config kb in
  let time f =
    let t0 = Sys.time () in
    f ();
    Sys.time () -. t0
  in
  let cold = time (fun () -> batch e) in
  let s1 = Engine.stats e in
  let warm = time (fun () -> batch e) in
  let s2 = Engine.stats e in
  Printf.printf
    "  %d queries;  cold: %.3fs (%d misses, %d tableau calls)\n\
    \              warm: %.3fs (%d hits);  speedup: %.0fx\n"
    (List.length queries) cold s1.Engine.cache.Verdict_cache.misses
    s1.Engine.tableau_calls warm
    (s2.Engine.cache.Verdict_cache.hits - s1.Engine.cache.Verdict_cache.hits)
    (cold /. Float.max warm 1e-9)

(* ------------------------------------------------------------------ *)
(* S6c: domain-pool speedup.  Wall clock via [Unix.gettimeofday] —
   [Sys.time] is CPU time summed over domains, which would make a parallel
   run look slower the better it scales.  Classification and the batched
   query grid are run at pool widths 1/2/4; the taxonomy is asserted
   identical across widths (sharding only redistributes rows), and the raw
   numbers — including the machine's recommended domain count, without
   which a speedup figure is meaningless — are written to
   BENCH_oracle.json. *)

let report_engine_parallel () =
  section "S6c: domain-pool speedup (1/2/4 domains) -> BENCH_oracle.json";
  let kb =
    Gen.kb4
      { Gen.default with
        seed = 29;
        n_concepts = 14;
        n_individuals = 10;
        n_tbox = 20;
        n_abox = 24;
        max_depth = 1;
        inconsistency_rate = 0.1 }
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  let widths = [ 1; 2; 4 ] in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "  recommended_domain_count: %d%s\n" cores
    (if cores <= 1 then "  (single core: no real speedup is possible here)"
     else "");
  let classification =
    List.map
      (fun j ->
        let e = Engine.of_config { Oracle.default_config with Oracle.jobs = j } kb in
        let tax, dt = wall (fun () -> Engine.classify e) in
        (j, tax, dt))
      widths
  in
  let _, tax1, cls1 =
    match classification with r :: _ -> r | [] -> assert false
  in
  List.iter
    (fun (j, tax, dt) ->
      if tax <> tax1 then
        failwith
          (Printf.sprintf "S6c: taxonomy at jobs=%d differs from jobs=1" j);
      Printf.printf "  classify     jobs=%d  %8.3fs  speedup %.2fx\n%!" j dt
        (cls1 /. dt))
    classification;
  (* the batched query grid: every (individual, atom) pair, both
     information bits, one Oracle.check_all fan-out per run (this is the
     path Para.retrieve / contradictions and the Cq front end share) *)
  let grid =
    List.map
      (fun j ->
        let t = Para.create ~config:{ Oracle.default_config with Oracle.jobs = j } kb in
        let cs, dt = wall (fun () -> Para.contradictions t) in
        (j, cs, dt))
      widths
  in
  let _, grid1_answers, grid1 =
    match grid with r :: _ -> r | [] -> assert false
  in
  List.iter
    (fun (j, cs, dt) ->
      if cs <> grid1_answers then
        failwith
          (Printf.sprintf "S6c: grid answers at jobs=%d differ from jobs=1" j);
      Printf.printf "  query grid   jobs=%d  %8.3fs  speedup %.2fx\n%!" j dt
        (grid1 /. dt))
    grid;
  (* a conjunctive-query batch over the same pool-backed oracle *)
  let queries =
    [ Cq.make ~head:[ "x" ]
        ~body:[ Cq.Concept_atom (Concept.Atom "C0", Cq.Var "x") ];
      Cq.make ~head:[ "x"; "y" ]
        ~body:
          [ Cq.Concept_atom (Concept.Atom "C0", Cq.Var "x");
            Cq.Role_atom (Role.name "r0", Cq.Var "x", Cq.Var "y") ] ]
  in
  let cq =
    List.map
      (fun j ->
        let t = Para.create ~config:{ Oracle.default_config with Oracle.jobs = j } kb in
        let ans, dt = wall (fun () -> List.map (Cq.answers t) queries) in
        (j, ans, dt))
      widths
  in
  let _, cq1_answers, cq1 = match cq with r :: _ -> r | [] -> assert false in
  List.iter
    (fun (j, ans, dt) ->
      if ans <> cq1_answers then
        failwith
          (Printf.sprintf "S6c: Cq answers at jobs=%d differ from jobs=1" j);
      Printf.printf "  cq batch     jobs=%d  %8.3fs  speedup %.2fx\n%!" j dt
        (cq1 /. dt))
    cq;
  let series name base rows =
    Printf.sprintf "  %S: [\n%s\n  ]" name
      (String.concat ",\n"
         (List.map
            (fun (j, _, dt) ->
              Printf.sprintf
                "    {\"jobs\": %d, \"seconds\": %.6f, \"speedup\": %.3f, \
                 \"answers_identical\": true}"
                j dt (base /. dt))
            rows))
  in
  let detail =
    Printf.sprintf
      "{\n\
      \  \"recommended_domain_count\": %d,\n\
      \  \"kb\": {\"seed\": 29, \"concepts\": 14, \"individuals\": 10, \
       \"tbox\": 20, \"abox\": 24},\n\
       %s,\n\
       %s,\n\
       %s\n\
       }"
      cores
      (series "classification" cls1 classification)
      (series "query_grid" grid1 grid)
      (series "cq_batch" cq1 cq)
  in
  write_bench "BENCH_oracle.json" ~experiment:"S6c_domain_pool"
    ~metrics:
      [ ("answers_identical", "1");
        ("classify_seconds_j1", Printf.sprintf "%.6f" cls1);
        ("query_grid_seconds_j1", Printf.sprintf "%.6f" grid1);
        ("cq_batch_seconds_j1", Printf.sprintf "%.6f" cq1) ]
    ~detail

(* ------------------------------------------------------------------ *)
(* S7: Dl_obs instrumentation overhead.  Two regimes matter:

   - disabled (the default): every hot-path hook is a single
     [if !Obs.on] test, so the per-operation cost is measured directly
     by a tight guard loop and scaled by the number of hook sites an
     instrumented run actually crosses;
   - enabled (a sink was requested): counters become Atomic ops and
     spans allocate + lock, measured as wall-clock delta on the S6c
     classification workload.

   Answers must be byte-identical either way; the taxonomy is asserted
   equal across regimes before any number is reported. *)

let report_obs_overhead () =
  section "S7: Dl_obs overhead (disabled guard cost, enabled wall cost)";
  let kb =
    Gen.kb4
      { Gen.default with
        seed = 29;
        n_concepts = 14;
        n_individuals = 10;
        n_tbox = 20;
        n_abox = 24;
        max_depth = 1;
        inconsistency_rate = 0.1 }
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  let median xs =
    let a = List.sort compare xs in
    List.nth a (List.length a / 2)
  in
  let runs = 5 in
  let classify_once () = Engine.classify (Engine.of_config { Oracle.default_config with Oracle.jobs = 2 } kb) in
  let time_runs () =
    List.init runs (fun _ ->
        let tax, dt = wall classify_once in
        (tax, dt))
  in
  let was_enabled = Obs.enabled () in
  Obs.set_enabled false;
  (* warm-up before any timed regime: the first classify of the process
     pays allocator/code warm-up that would otherwise inflate whichever
     regime happens to run first *)
  ignore (classify_once ());
  let disabled = time_runs () in
  (* flight recorder armed (rings only, no dump path), every Obs sink
     still off and the slow-query log disarmed — the always-on
     diagnostic regime the <5% budget covers *)
  Flight.reset ();
  Flight.arm ();
  let flight = time_runs () in
  Flight.disarm ();
  let flight_events = Flight.events_recorded () in
  Flight.reset ();
  Obs.set_enabled true;
  Obs.reset ();
  let enabled = time_runs () in
  let counter_ops =
    List.fold_left (fun n (_, c) -> n + c) 0 (Obs.counters ())
  in
  let span_records = Obs.span_count () in
  Obs.reset ();
  Obs.set_enabled was_enabled;
  let tax_disabled = fst (List.hd disabled) in
  List.iter
    (fun (tax, _) ->
      if tax <> tax_disabled then
        failwith "S7: taxonomy differs between Obs on and Obs off")
    (enabled @ flight);
  (* the disabled hot path is one load + branch per hook site; measure it
     directly so the "overhead when off" claim is not lost in run-to-run
     wall-clock noise of the full workload *)
  let guard_iters = 50_000_000 in
  let c = Obs.counter "bench.s7.guard" in
  Obs.set_enabled false;
  let (), guard_total = wall (fun () ->
      for _ = 1 to guard_iters do
        Obs.incr c
      done)
  in
  Obs.set_enabled was_enabled;
  let guard_ns = guard_total /. float_of_int guard_iters *. 1e9 in
  (* same idea for the flight recorder's disarmed hot path: one ref load
     + branch per hook site when off *)
  let (), fguard_total =
    wall (fun () ->
        for _ = 1 to guard_iters do
          if !Flight.on then Flight.record "bench.s7" 0 0 ""
        done)
  in
  let flight_guard_ns = fguard_total /. float_of_int guard_iters *. 1e9 in
  let t_off = median (List.map snd disabled) in
  let t_flight = median (List.map snd flight) in
  let t_on = median (List.map snd enabled) in
  let ops_per_run = counter_ops / runs in
  let spans_per_run = span_records / runs in
  (* per enabled run, [ops_per_run] counter bumps happened; the disabled
     run crosses the same hook sites but pays only the guard *)
  let disabled_overhead_pct =
    guard_ns *. float_of_int ops_per_run /. 1e9 /. t_off *. 100.
  in
  let enabled_overhead_pct = (t_on -. t_off) /. t_off *. 100. in
  let flight_overhead_pct = (t_flight -. t_off) /. t_off *. 100. in
  let flight_events_per_run = flight_events / runs in
  Printf.printf "  classify (jobs=2, S6c KB), median of %d runs:\n" runs;
  Printf.printf "    disabled      %8.4fs\n" t_off;
  Printf.printf "    flight armed  %8.4fs   (+%.1f%%, %d events/run)\n"
    t_flight flight_overhead_pct flight_events_per_run;
  Printf.printf "    enabled       %8.4fs   (+%.1f%%)\n" t_on
    enabled_overhead_pct;
  Printf.printf "  guard (if !Obs.on) cost:      %6.2f ns/op\n" guard_ns;
  Printf.printf "  guard (if !Flight.on) cost:   %6.2f ns/op\n" flight_guard_ns;
  Printf.printf "  hook crossings per run:       %6d counter ops, %d spans\n"
    ops_per_run spans_per_run;
  Printf.printf "  disabled-path overhead:       %6.3f%% of run time%s\n"
    disabled_overhead_pct
    (if disabled_overhead_pct <= 3.0 then "  (within 3% budget)"
     else "  (EXCEEDS 3% budget)");
  Printf.printf "  flight-armed overhead:        %6.3f%% of run time%s\n"
    flight_overhead_pct
    (if flight_overhead_pct <= 5.0 then "  (within 5% budget)"
     else "  (EXCEEDS 5% budget)");
  Printf.printf "  answers identical on/off:     true\n";
  write_bench "BENCH_obs.json" ~experiment:"S7_obs_overhead"
    ~metrics:
      [ ("runs", string_of_int runs);
        ("median_seconds_disabled", Printf.sprintf "%.6f" t_off);
        ("median_seconds_flight_armed", Printf.sprintf "%.6f" t_flight);
        ("median_seconds_enabled", Printf.sprintf "%.6f" t_on);
        ("enabled_overhead_pct", Printf.sprintf "%.3f" enabled_overhead_pct);
        ("flight_overhead_pct", Printf.sprintf "%.3f" flight_overhead_pct);
        ("flight_overhead_budget_pct", "5.0");
        ("flight_events_per_run", string_of_int flight_events_per_run);
        ("flight_guard_ns_per_op", Printf.sprintf "%.3f" flight_guard_ns);
        ("guard_ns_per_op", Printf.sprintf "%.3f" guard_ns);
        ("counter_ops_per_enabled_run", string_of_int ops_per_run);
        ("spans_per_enabled_run", string_of_int spans_per_run);
        ("disabled_overhead_pct", Printf.sprintf "%.4f" disabled_overhead_pct);
        ("disabled_overhead_budget_pct", "3.0");
        ("answers_identical", "1") ]
    ~detail:
      "{\"kb\": {\"seed\": 29, \"concepts\": 14, \"individuals\": 10, \
       \"tbox\": 20, \"abox\": 24}, \"workload\": \"classify jobs=2\"}"

(* ------------------------------------------------------------------ *)
(* S8: incremental deltas vs from-scratch rebuild.  One evolving KB, a
   fixed delta script (new components, an in-place assertion, a
   retraction), and after every delta the full contradiction grid is
   re-answered two ways:

   - rebuild: a fresh session over the delta-applied KB (the only option
     before Session.apply existed) — every verdict pays its tableau call
     again;
   - incremental: one live session, Session.apply per delta — verdicts
     whose provenance avoids the touched components survive and answer
     from cache.

   Grids must be identical at every step; the incremental protocol must
   pay strictly fewer tableau calls in total. *)

let report_incremental () =
  section "S8: incremental deltas vs rebuild -> BENCH_delta.json";
  let kb =
    Gen.kb4
      { Gen.default with
        seed = 31;
        n_concepts = 10;
        n_individuals = 8;
        n_tbox = 14;
        n_abox = 18;
        max_depth = 1;
        inconsistency_rate = 0.1 }
  in
  let abox_delta add retract =
    { Delta.add_abox = add; retract_abox = retract; add_tbox = [] }
  in
  let deltas =
    [ (* a fresh two-individual component *)
      abox_delta
        [ Axiom.Instance_of ("u0", Concept.Atom "C0");
          Axiom.Role_assertion ("u0", Role.name "r0", "u1") ]
        [];
      (* another isolated newcomer *)
      abox_delta [ Axiom.Instance_of ("u2", Concept.Atom "C1") ] [];
      (* touch an existing individual's component *)
      abox_delta [ Axiom.Instance_of ("a0", Concept.Atom "C2") ] [];
      (* retract a told assertion *)
      abox_delta [] [ List.hd kb.Kb4.abox ] ]
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  let grid t = (Para.satisfiable t, Para.contradictions t) in
  (* incremental protocol: one session, apply + re-query per step *)
  let s = Session.create kb in
  let p = Para.of_session s in
  let calls () = (Oracle.stats (Session.oracle s)).Oracle.tableau_calls in
  let _, warm_dt = wall (fun () -> grid p) in
  Printf.printf "  warm-up grid: %.3fs, %d tableau calls\n%!" warm_dt (calls ());
  let incremental =
    List.map
      (fun d ->
        let c0 = calls () in
        let (st, answers), dt =
          wall (fun () ->
              let st = Session.apply s d in
              (st, grid p))
        in
        (answers, calls () - c0, dt, st))
      deltas
  in
  (* rebuild protocol: fresh stack over the accumulated KB at each step *)
  let rebuild =
    let acc = ref kb in
    List.map
      (fun d ->
        acc := Delta.apply_kb4 !acc d;
        let t = Para.create !acc in
        let answers, dt = wall (fun () -> grid t) in
        let calls =
          (Oracle.stats (Para.oracle t)).Oracle.tableau_calls
        in
        (answers, calls, dt))
      deltas
  in
  let rows = List.combine incremental rebuild in
  List.iteri
    (fun i ((ia, ic, idt, st), (ra, rc, rdt)) ->
      if ia <> ra then
        failwith
          (Printf.sprintf "S8: delta %d: incremental answers differ from \
                           rebuild" (i + 1));
      Printf.printf
        "  delta %d: rebuild %4d calls %8.4fs | incremental %4d calls \
         %8.4fs  (%d evicted, %d retained)\n%!"
        (i + 1) rc rdt ic idt st.Oracle.evicted st.Oracle.retained)
    rows;
  let total f = List.fold_left (fun n r -> n + f r) 0 rows in
  let ic_total = total (fun ((_, ic, _, _), _) -> ic)
  and rc_total = total (fun (_, (_, rc, _)) -> rc) in
  Printf.printf "  total tableau calls: rebuild %d, incremental %d%s\n" rc_total
    ic_total
    (if ic_total < rc_total then "  (incremental strictly fewer)"
     else "  (NO SAVING)");
  if ic_total >= rc_total then
    failwith "S8: incremental protocol did not save tableau calls";
  let detail =
    Printf.sprintf
      "{\n\
      \  \"kb\": {\"seed\": 31, \"concepts\": 10, \"individuals\": 8, \
       \"tbox\": 14, \"abox\": 18},\n\
      \  \"workload\": \"satisfiability + contradiction grid per delta\",\n\
      \  \"steps\": [\n%s\n  ]\n\
       }"
      (String.concat ",\n"
         (List.mapi
            (fun i ((_, ic, idt, st), (_, rc, rdt)) ->
              Printf.sprintf
                "    {\"delta\": %d, \"rebuild_calls\": %d, \
                 \"rebuild_seconds\": %.6f, \"incremental_calls\": %d, \
                 \"incremental_seconds\": %.6f, \"evicted\": %d, \
                 \"retained\": %d, \"flushed\": %b}"
                (i + 1) rc rdt ic idt st.Oracle.evicted st.Oracle.retained
                st.Oracle.flushed)
            rows))
  in
  write_bench "BENCH_delta.json" ~experiment:"S8_incremental_deltas"
    ~metrics:
      [ ("total_tableau_calls_rebuild", string_of_int rc_total);
        ("total_tableau_calls_incremental", string_of_int ic_total);
        ("incremental_strictly_fewer", if ic_total < rc_total then "1" else "0");
        ("answers_identical", "1") ]
    ~detail

(* ------------------------------------------------------------------ *)
(* S9: persistent snapshots and the warm server vs cold per-query
   sessions.  Three ways to answer the same atomic query grid:

   - cold: a fresh Session per query — what every separate `dl4 query`
     CLI invocation pays (minus process start-up, which only widens the
     gap in the daemon's favour);
   - snapshot: serialize a warm session through the dl4-snap codec,
     decode + restore, re-answer the grid — must pay ZERO tableau calls
     because every atomic verdict travels in the snapshot;
   - serve: NDJSON round trips through [Serve.handle] on a warm daemon
     state — the in-process core of a `dl4 serve` socket round trip.

   All three must produce identical truth values; the serve round trip
   must beat the cold path by >= 10x (gated in GATES.json). *)

let report_serve () =
  section "S9: snapshot restore + warm serve vs cold sessions -> BENCH_serve.json";
  let kb =
    Gen.kb4
      { Gen.default with
        seed = 41;
        n_concepts = 10;
        n_individuals = 8;
        n_tbox = 14;
        n_abox = 18;
        max_depth = 1;
        inconsistency_rate = 0.1 }
  in
  let signature = Kb4.signature kb in
  let queries =
    List.concat_map
      (fun a -> List.map (fun c -> (a, c)) signature.Axiom.concepts)
      signature.Axiom.individuals
  in
  let n = List.length queries in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  (* the warming [dl4 snapshot] performs: consistency, the full atomic
     grid (both polarities), classification *)
  let warm_session () =
    let s = Session.create kb in
    let p = Para.of_session s in
    ignore (Para.satisfiable p : bool);
    ignore (Para.contradictions p : (string * string) list);
    ignore (Engine.classification (Session.engine s) : Classify.t);
    s
  in
  let cold_answers, cold_total =
    wall (fun () ->
        List.map
          (fun (a, c) ->
            let p = Para.of_session (Session.create kb) in
            Truth.to_string (Para.instance_truth p a (Concept.Atom c)))
          queries)
  in
  (* snapshot round trip through the real codec, then the grid again *)
  let warm = warm_session () in
  let bytes_, snap_dt = wall (fun () -> Store.to_string (Store.capture warm)) in
  let restored, restore_dt =
    wall (fun () ->
        match Store.of_string bytes_ with
        | Error e -> failwith ("S9: decode: " ^ Store.error_to_string e)
        | Ok snap -> (
            match Store.restore ~kb snap with
            | Ok s -> s
            | Error e -> failwith ("S9: restore: " ^ Store.error_to_string e)))
  in
  let snap_answers, snap_total =
    wall (fun () ->
        let p = Para.of_session restored in
        List.map
          (fun (a, c) ->
            Truth.to_string (Para.instance_truth p a (Concept.Atom c)))
          queries)
  in
  let snap_calls =
    (Engine.stats (Session.engine restored)).Engine.tableau_calls
  in
  (* warm serve: protocol round trips against the daemon's handler *)
  let srv = Serve.create (warm_session ()) in
  let serve_answers, serve_total =
    wall (fun () ->
        List.map
          (fun (a, c) ->
            let req =
              Printf.sprintf
                {|{"op":"query","individual":"%s","concept":"%s"}|} a c
            in
            let resp = Serve.handle srv req in
            match Json_lite.parse resp with
            | Error e -> failwith ("S9: serve response unparsable: " ^ e)
            | Ok j -> (
                match
                  Option.bind (Json_lite.member "truth" j) Json_lite.to_str
                with
                | Some t -> t
                | None -> failwith ("S9: serve response lacks truth: " ^ resp)))
          queries)
  in
  let identical = cold_answers = snap_answers && cold_answers = serve_answers in
  if not identical then failwith "S9: answers differ across cold/snapshot/serve";
  if snap_calls <> 0 then
    failwith
      (Printf.sprintf "S9: snapshot-restored grid paid %d tableau calls"
         snap_calls);
  let per_q total = total /. float_of_int n *. 1000. in
  let cold_ms = per_q cold_total in
  let warm_roundtrip_ms = per_q serve_total in
  let warm_speedup = cold_ms /. Float.max warm_roundtrip_ms 1e-9 in
  Printf.printf "  %d queries (full atomic grid), snapshot %d bytes\n" n
    (String.length bytes_);
  Printf.printf "  cold session per query:   %8.4f ms\n" cold_ms;
  Printf.printf "  snapshot encode/decode+restore: %.4fs / %.4fs;  grid \
                 %8.4f ms/q, %d tableau calls\n"
    snap_dt restore_dt (per_q snap_total) snap_calls;
  Printf.printf "  warm serve round trip:    %8.4f ms  (speedup %.0fx)\n"
    warm_roundtrip_ms warm_speedup;
  Printf.printf "  answers identical across the three paths: %b\n" identical;
  write_bench "BENCH_serve.json" ~experiment:"S9_snapshot_serve"
    ~metrics:
      [ ("queries", string_of_int n);
        ("cold_ms", Printf.sprintf "%.4f" cold_ms);
        ("warm_roundtrip_ms", Printf.sprintf "%.4f" warm_roundtrip_ms);
        ("warm_speedup", Printf.sprintf "%.1f" warm_speedup);
        ("warm_snapshot_tableau_calls", string_of_int snap_calls);
        ("snapshot_bytes", string_of_int (String.length bytes_));
        ("answers_identical", if identical then "1" else "0") ]
    ~detail:
      (Printf.sprintf
         "{\"kb\": {\"seed\": 41, \"concepts\": 10, \"individuals\": 8, \
          \"tbox\": 14, \"abox\": 18},\n\
         \  \"workload\": \"full atomic instance-truth grid\",\n\
         \  \"snapshot_encode_seconds\": %.6f,\n\
         \  \"snapshot_restore_seconds\": %.6f,\n\
         \  \"snapshot_grid_ms_per_query\": %.4f}"
         snap_dt restore_dt (per_q snap_total))

(* ------------------------------------------------------------------ *)
(* S10: pluggable backends on a Horn-heavy workload.  The same
   classification plus instance-grid workload runs three times — backend
   pinned to the tableau, pinned to the Horn/EL completion engine, and
   under the auto router.  Answers must be identical; auto must send at
   least 90% of the computed verdicts to the completion backend and beat
   the pinned tableau (both gated in GATES.json). *)

let report_backends () =
  section "S10: tableau vs horn vs auto on a Horn workload -> BENCH_backend.json";
  (* a pure concept tree (squarely in the fragment) plus a handful of
     leaf memberships so the instance grid is exercised too *)
  let kb =
    let base =
      Kb4.of_classical ~inclusion:Kb4.Internal
        (Gen.taxonomy ~depth:4 ~branching:3)
    in
    List.fold_left Kb4.add_abox base
      [ Axiom.Instance_of ("i0", Concept.Atom "C4_0");
        Axiom.Instance_of ("i1", Concept.Atom "C4_40");
        Axiom.Instance_of ("i2", Concept.Atom "C4_80");
        Axiom.Instance_of ("i2", Concept.Not (Concept.Atom "C0_0")) ]
  in
  let signature = Kb4.signature kb in
  let grid =
    List.concat_map
      (fun a ->
        List.map (fun c -> (a, Concept.Atom c)) signature.Axiom.concepts)
      signature.Axiom.individuals
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  let run backend =
    let s =
      Session.create
        ~config:{ Session.default_config with backend } kb
    in
    let e = Session.engine s in
    let p = Para.of_session s in
    let out, dt =
      wall (fun () ->
          let tax = Para.classify p in
          let truths =
            List.map (fun (a, c) -> Para.instance_truth p a c) grid
          in
          (tax, truths))
    in
    (out, dt, Engine.stats e)
  in
  let tab_out, tab_dt, tab_st = run Backend.Tableau in
  let horn_out, horn_dt, _ = run Backend.Horn in
  let auto_out, auto_dt, auto_st = run Backend.Auto in
  let identical = tab_out = horn_out && tab_out = auto_out in
  if not identical then
    failwith "S10: answers differ across tableau/horn/auto";
  let count routes b =
    List.assoc_opt b routes |> Option.value ~default:0
  in
  let horn_routed = count auto_st.Engine.routes "horn" in
  let total_routed =
    List.fold_left (fun acc (_, n) -> acc + n) 0 auto_st.Engine.routes
  in
  let fraction =
    if total_routed = 0 then 0.
    else float_of_int horn_routed /. float_of_int total_routed
  in
  let speedup = tab_dt /. Float.max auto_dt 1e-9 in
  Printf.printf
    "  %d concepts, %d grid cells;  tableau %.3fs  horn %.3fs  auto %.3fs\n"
    (List.length signature.Axiom.concepts)
    (List.length grid) tab_dt horn_dt auto_dt;
  Printf.printf "  auto routed %d/%d verdicts to horn (%.1f%%), speedup %.1fx\n"
    horn_routed total_routed (100. *. fraction) speedup;
  Printf.printf "  answers identical across the three backends: %b\n" identical;
  write_bench "BENCH_backend.json" ~experiment:"S10_backends"
    ~metrics:
      [ ("answers_identical", if identical then "1" else "0");
        ("horn_route_fraction", Printf.sprintf "%.4f" fraction);
        ("speedup_auto_vs_tableau", Printf.sprintf "%.2f" speedup);
        ("tableau_verdicts", string_of_int (count tab_st.Engine.routes "tableau"));
        ("tableau_seconds", Printf.sprintf "%.4f" tab_dt);
        ("horn_seconds", Printf.sprintf "%.4f" horn_dt);
        ("auto_seconds", Printf.sprintf "%.4f" auto_dt) ]
    ~detail:
      (Printf.sprintf
         "{\"kb\": \"taxonomy depth 4 branching 3 + 4 leaf assertions\",\n\
         \  \"workload\": \"classify + full atomic instance-truth grid\",\n\
         \  \"auto_routes\": {%s}}"
         (String.concat ", "
            (List.map
               (fun (b, n) -> Printf.sprintf "\"%s\": %d" b n)
               auto_st.Engine.routes)))

(* ------------------------------------------------------------------ *)
(* S11: what does the PR 8 telemetry plane cost per request?

   Two measurements combine into the gated ratio:

   - the *marginal* cost of arming: the same warm atomic grid runs
     through [Serve.handle] on a disarmed daemon ([~telemetry:false])
     and a fully armed one (registry + trace minting + access log),
     interleaved round by round so allocator and scheduler drift hits
     both sides equally, min-of-rounds each.  In-process paired diffs
     are stable to ~0.1 us/query.

   - the *real* round trip a client pays: one armed daemon serving the
     grid over its unix socket via [Serve.request] (connect + write +
     read per query), min-of-rounds.

   overhead_pct = marginal / socket round trip.  We deliberately do
   NOT compare two socket daemons against each other: per-thread
   placement bias makes that differ by +-20% across runs, drowning a
   ~1 us marginal.  The ratio of a paired in-process diff to a single
   daemon's absolute round trip is what a client actually experiences
   and is reproducible.  Answers must be identical armed vs disarmed
   and the ratio must stay within 5% (gated in GATES.json). *)

let report_telemetry () =
  section "S11: telemetry-armed vs disarmed serve round trips -> BENCH_telemetry.json";
  let kb =
    Gen.kb4
      { Gen.default with
        seed = 41;
        n_concepts = 10;
        n_individuals = 8;
        n_tbox = 14;
        n_abox = 18;
        max_depth = 1;
        inconsistency_rate = 0.1 }
  in
  let signature = Kb4.signature kb in
  let reqs =
    List.concat_map
      (fun a ->
        List.map
          (fun c ->
            Printf.sprintf
              {|{"op":"query","individual":"%s","concept":"%s"}|} a c)
          signature.Axiom.concepts)
      signature.Axiom.individuals
  in
  let n = List.length reqs in
  let warm_session () =
    let s = Session.create kb in
    let p = Para.of_session s in
    ignore (Para.satisfiable p : bool);
    ignore (Para.contradictions p : (string * string) list);
    ignore (Engine.classification (Session.engine s) : Classify.t);
    s
  in
  let truth_of resp =
    match Json_lite.parse resp with
    | Error e -> failwith ("S11: serve response unparsable: " ^ e)
    | Ok j -> (
        match Option.bind (Json_lite.member "truth" j) Json_lite.to_str with
        | Some t -> t
        | None -> failwith ("S11: serve response lacks truth: " ^ resp))
  in
  let grid srv = List.map (fun req -> truth_of (Serve.handle srv req)) reqs in
  let rounds = 100 in
  let access = Filename.temp_file "dl4_bench_s11" ".access.jsonl" in
  let disarmed = Serve.create ~telemetry:false (warm_session ()) in
  let armed = Serve.create ~access_log:access (warm_session ()) in
  (* warm both verdict caches before timing anything *)
  let off_answers = grid disarmed in
  let on_answers = grid armed in
  let identical = off_answers = on_answers in
  if not identical then failwith "S11: answers differ armed vs disarmed";
  let timed srv =
    let t0 = Unix.gettimeofday () in
    ignore (grid srv : string list);
    Unix.gettimeofday () -. t0
  in
  let off_dt = ref Float.infinity and on_dt = ref Float.infinity in
  for _ = 1 to rounds do
    off_dt := Float.min !off_dt (timed disarmed);
    on_dt := Float.min !on_dt (timed armed)
  done;
  Serve.sync armed;
  let per_q dt = dt /. float_of_int n *. 1e6 in
  let marginal_us = per_q !on_dt -. per_q !off_dt in
  (* denominator: what a client pays per query against a live armed
     daemon, connect-per-request over the unix socket *)
  let sock = Filename.temp_file "dl4_bench_s11" ".sock" in
  Sys.remove sock;
  let daemon = Serve.create ~access_log:access (warm_session ()) in
  let th = Thread.create (fun () -> Serve.run ~socket_path:sock daemon) () in
  let rec wait_bind k =
    if Sys.file_exists sock then ()
    else if k = 0 then failwith "S11: daemon did not bind"
    else begin Thread.delay 0.01; wait_bind (k - 1) end
  in
  wait_bind 500;
  let sock_grid () =
    List.iter
      (fun req -> ignore (Serve.request ~socket_path:sock req : string))
      reqs
  in
  sock_grid ();
  let rt_dt = ref Float.infinity in
  for _ = 1 to 15 do
    let t0 = Unix.gettimeofday () in
    sock_grid ();
    rt_dt := Float.min !rt_dt (Unix.gettimeofday () -. t0)
  done;
  ignore (Serve.request ~socket_path:sock {|{"op":"shutdown"}|} : string);
  Thread.join th;
  let roundtrip_us = per_q !rt_dt in
  let overhead_pct = Float.max 0. marginal_us /. roundtrip_us *. 100. in
  (* the armed daemons must have left access-log lines behind *)
  let access_lines =
    let ic = open_in access in
    let rec count k =
      match input_line ic with
      | _ -> count (k + 1)
      | exception End_of_file -> close_in ic; k
    in
    count 0
  in
  Sys.remove access;
  Printf.printf "  %d warm queries/round, marginal from %d interleaved rounds\n"
    n rounds;
  Printf.printf "  in-process handle: disarmed %8.3f us/q, armed %8.3f us/q\n"
    (per_q !off_dt) (per_q !on_dt);
  Printf.printf "  marginal cost of arming: %+.3f us/q\n" marginal_us;
  Printf.printf "  socket round trip (armed daemon): %8.3f us/q\n" roundtrip_us;
  Printf.printf "  client-visible overhead: %.2f%%\n" overhead_pct;
  Printf.printf "  access-log lines from the armed runs: %d\n" access_lines;
  Printf.printf "  answers identical armed vs disarmed: %b\n" identical;
  write_bench "BENCH_telemetry.json" ~experiment:"S11_telemetry_overhead"
    ~metrics:
      [ ("queries", string_of_int n);
        ("rounds", string_of_int rounds);
        ("disarmed_us_per_query", Printf.sprintf "%.3f" (per_q !off_dt));
        ("armed_us_per_query", Printf.sprintf "%.3f" (per_q !on_dt));
        ("marginal_us_per_query", Printf.sprintf "%.3f" marginal_us);
        ("socket_roundtrip_us", Printf.sprintf "%.3f" roundtrip_us);
        ("telemetry_overhead_pct", Printf.sprintf "%.2f" overhead_pct);
        ("access_log_lines", string_of_int access_lines);
        ("answers_identical", if identical then "1" else "0") ]
    ~detail:
      (Printf.sprintf
         "{\"kb\": {\"seed\": 41, \"concepts\": 10, \"individuals\": 8, \
          \"tbox\": 14, \"abox\": 18},\n\
         \  \"marginal\": \"armed minus disarmed Serve.handle us/query, \
          interleaved min of %d rounds each\",\n\
         \  \"roundtrip\": \"Serve.request vs one armed daemon thread, \
          connect per request, min of 15 rounds\",\n\
         \  \"overhead\": \"max(0, marginal) / roundtrip\",\n\
         \  \"armed\": \"registry + trace IDs + deferred-render access log\",\n\
         \  \"disarmed\": \"Serve.create ~telemetry:false\"}"
         rounds)

(* ------------------------------------------------------------------ *)
(* S12: cost-based CQ planner vs syntactic atom order *)

(* A deliberately skewed KB: one rare concept (2 told instances), one
   common one (40), a sparse role between them — and a query whose body
   is written in the pessimal order (common atom first), so the
   syntactic baseline pays a full [common × individuals] role grid
   while the cost plan starts from the rare side.  Probe counts are
   deterministic (fresh cold session per measured run, jobs = 1), so
   they double as regression anchors. *)
let report_planner () =
  section "S12: cost-based CQ planner vs syntactic order -> BENCH_planner.json";
  let n_common = 40 in
  let kb =
    let base =
      Kb4.of_classical ~inclusion:Kb4.Internal
        (Axiom.make
           ~tbox:[ Axiom.Concept_sub (Concept.Atom "Rare", Concept.Atom "Flagged") ]
           ~abox:[])
    in
    let commons =
      List.init n_common (fun i ->
          Axiom.Instance_of (Printf.sprintf "c%d" i, Concept.Atom "Common"))
    in
    let rares =
      [ Axiom.Instance_of ("r0", Concept.Atom "Rare");
        Axiom.Instance_of ("r1", Concept.Atom "Rare") ]
    in
    let links =
      List.map
        (fun (a, b) -> Axiom.Role_assertion (a, Role.name "links", b))
        [ ("c0", "r0"); ("c0", "r1"); ("c1", "r0");
          ("c1", "r1"); ("c2", "r0"); ("c3", "r1") ]
    in
    List.fold_left Kb4.add_abox base (commons @ rares @ links)
  in
  let parse_cq src =
    match Cq.parse src with
    | Ok q -> q
    | Error msg -> failwith ("S12: bad cq " ^ src ^ ": " ^ msg)
  in
  (* body written common-first: the worst order a naive planner inherits *)
  let q = parse_cq "?x, ?y <- Common(?x), links(?x, ?y), Rare(?y)" in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  (* each measured run pays its probes from a cold cache: fresh session,
     single domain, compile (probe-free) outside the timed region *)
  let measure ?threshold ?force ~order qry =
    let s =
      Session.create
        ~config:{ Session.default_config with Session.jobs = 1 } kb
    in
    let p = Para.of_session s in
    let plan = Cq.compile ?threshold ?force ~order p qry in
    let answers, dt = wall (fun () -> Cq.run plan) in
    let totals = Session.cost_totals s in
    let probes = totals.Oracle.verdicts + totals.Oracle.cache_served in
    (answers, dt, probes, Cq.strategy_counts plan)
  in
  let plan_ans, plan_dt, plan_probes, _ = measure ~order:`Cost q in
  let syn_ans, syn_dt, syn_probes, _ = measure ~order:`Syntactic q in
  (* reference: the PR-2 staged enumerator on its own fresh session *)
  let ref_ans =
    let s =
      Session.create
        ~config:{ Session.default_config with Session.jobs = 1 } kb
    in
    Cq.answers_staged (Para.of_session s) q
  in
  let identical = plan_ans = syn_ans && plan_ans = ref_ans in
  if not identical then failwith "S12: answers differ across plans";
  (* a 3-atom chain with shared join keys: fan-in makes the hash side
     strictly cheaper, so the adaptive pick lands on hash_join once the
     threshold admits it — and answers must not move *)
  let q3 = parse_cq "?x <- Rare(?z), links(?y, ?z), links(?x, ?y)" in
  let hash_ans, _, _, hash_strategies = measure ~threshold:2 ~order:`Cost q3 in
  let nested_ans, _, _, _ =
    measure ~force:Cq.Plan.Nested_loop ~order:`Cost q3
  in
  let hash_picks =
    List.assoc_opt "hash_join" hash_strategies |> Option.value ~default:0
  in
  let identical3 = hash_ans = nested_ans in
  if not identical3 then failwith "S12: answers differ hash vs nested";
  let probe_speedup = float_of_int syn_probes /. float_of_int (max 1 plan_probes) in
  let wall_speedup = syn_dt /. Float.max plan_dt 1e-9 in
  Printf.printf "  %d individuals, %d designated answers\n"
    (n_common + 2) (List.length plan_ans);
  Printf.printf "  probes: cost plan %d, syntactic %d (%.1fx fewer)\n"
    plan_probes syn_probes probe_speedup;
  Printf.printf "  wall:   cost plan %.4fs, syntactic %.4fs (%.1fx faster)\n"
    plan_dt syn_dt wall_speedup;
  Printf.printf "  hash_join picks on the fan-in chain: %d\n" hash_picks;
  Printf.printf "  answers identical across plans and reference: %b\n"
    (identical && identical3);
  write_bench "BENCH_planner.json" ~experiment:"S12_cq_planner"
    ~metrics:
      [ ("answers_identical",
         if identical && identical3 then "1" else "0");
        ("planner_probes", string_of_int plan_probes);
        ("syntactic_probes", string_of_int syn_probes);
        ("probe_speedup", Printf.sprintf "%.2f" probe_speedup);
        ("wall_speedup", Printf.sprintf "%.2f" wall_speedup);
        ("hash_join_picks", string_of_int hash_picks);
        ("planner_seconds", Printf.sprintf "%.4f" plan_dt);
        ("syntactic_seconds", Printf.sprintf "%.4f" syn_dt) ]
    ~detail:
      (Printf.sprintf
         "{\"kb\": \"2 Rare + %d Common individuals, 6 told links pairs\",\n\
         \  \"query\": \"?x, ?y <- Common(?x), links(?x, ?y), Rare(?y)\",\n\
         \  \"chain_query\": \"?x <- Rare(?z), links(?y, ?z), links(?x, ?y)\",\n\
         \  \"probes\": \"oracle verdicts + cache-served checks on a fresh \
          cold session per run\",\n\
         \  \"reference\": \"Cq.answers_staged on its own fresh session\"}"
         n_common)

(* ------------------------------------------------------------------ *)
(* S13: the audit plane — census cost vs the per-fact naive reference,
   and exactly-B CQ answers through the plan path vs the naive sweep *)

let report_audit () =
  section "S13: inconsistency census + exactly-B queries -> BENCH_audit.json";
  (* synthetic mixed-consistency KB: a broad Common population, a few
     Rare individuals, told links, and every 7th individual poisoned
     with Common & ~Common — so the census sees all of t/f/B/N *)
  let n = 30 in
  let kb =
    let base =
      Kb4.of_classical ~inclusion:Kb4.Internal
        (Axiom.make
           ~tbox:
             [ Axiom.Concept_sub (Concept.Atom "Rare", Concept.Atom "Flagged") ]
           ~abox:[])
    in
    let commons =
      List.init n (fun i ->
          Axiom.Instance_of (Printf.sprintf "c%d" i, Concept.Atom "Common"))
    in
    let poisons =
      List.filteri (fun i _ -> i mod 7 = 0) commons
      |> List.map (function
           | Axiom.Instance_of (a, c) -> Axiom.Instance_of (a, Concept.Not c)
           | ax -> ax)
    in
    let rares =
      [ Axiom.Instance_of ("r0", Concept.Atom "Rare");
        Axiom.Instance_of ("r1", Concept.Atom "Rare") ]
    in
    let links =
      List.map
        (fun (a, b) -> Axiom.Role_assertion (a, Role.name "links", b))
        [ ("c0", "r0"); ("c0", "r1"); ("c1", "r0");
          ("c1", "r1"); ("c2", "r0"); ("c3", "r1") ]
    in
    List.fold_left Kb4.add_abox base (commons @ poisons @ rares @ links)
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  (* every measured run pays from a cold cache: fresh single-domain
     session, probes = verdicts + cache-served checks *)
  let fresh () =
    let s =
      Session.create
        ~config:{ Session.default_config with Session.jobs = 1 } kb
    in
    (s, Para.of_session s)
  in
  let budget s =
    let totals = Session.cost_totals s in
    (totals.Oracle.verdicts + totals.Oracle.cache_served, totals.Oracle.runs)
  in
  (* census: batched grids vs the per-fact reference *)
  let s1, p1 = fresh () in
  let census, census_dt = wall (fun () -> Audit.census p1) in
  let census_probes, census_tableau = budget s1 in
  let s2, p2 = fresh () in
  let naive, naive_dt = wall (fun () -> Audit.census_naive p2) in
  let naive_probes, _ = budget s2 in
  let render (cs : Audit.census) =
    List.map
      (fun (f, v) -> Audit.fact_to_string f ^ "=" ^ Truth.to_string v)
      cs.Audit.cs_entries
  in
  let census_identical = render census = render naive in
  if not census_identical then failwith "S13: census differs from naive";
  (* exactly-B answers: plan path (batched joins dedupe probes) vs the
     naive per-binding sweep *)
  let q =
    match Cq.parse "?x, ?y <- Common(?x), links(?x, ?y), Rare(?y)" with
    | Ok q -> q
    | Error msg -> failwith ("S13: bad cq: " ^ msg)
  in
  let values = [ Truth.Both; Truth.Neither ] in
  let s3, p3 = fresh () in
  let plan = Cq.compile ~order:`Cost p3 q in
  let plan_ans, plan_dt = wall (fun () -> Cq.run_exactly plan ~values) in
  let plan_probes, _ = budget s3 in
  let s4, p4 = fresh () in
  let naive_ans, naive_exact_dt =
    wall (fun () -> Cq.answers_exactly_naive p4 ~values q)
  in
  let naive_exact_probes, _ = budget s4 in
  let exact_identical = plan_ans = naive_ans in
  if not exact_identical then failwith "S13: exactly answers differ";
  let probe_speedup =
    float_of_int naive_exact_probes /. float_of_int (max 1 plan_probes)
  in
  let wall_speedup = naive_exact_dt /. Float.max plan_dt 1e-9 in
  Printf.printf "  census: %d facts (%d B, ratio %.3f) in %.4fs, %d probes \
                 (%d tableau calls); naive %.4fs, %d probes\n"
    (List.length census.Audit.cs_entries)
    (Audit.count census Truth.Both)
    (Audit.inconsistency_ratio census)
    census_dt census_probes census_tableau naive_dt naive_probes;
  Printf.printf "  exactly-{B,N}: %d answers; plan %d probes %.4fs, naive \
                 sweep %d probes %.4fs (%.1fx fewer probes, %.1fx faster)\n"
    (List.length plan_ans) plan_probes plan_dt naive_exact_probes
    naive_exact_dt probe_speedup wall_speedup;
  write_bench "BENCH_audit.json" ~experiment:"S13_audit"
    ~metrics:
      [ ("census_identical", if census_identical then "1" else "0");
        ("answers_identical", if exact_identical then "1" else "0");
        ("census_facts", string_of_int (List.length census.Audit.cs_entries));
        ("census_b_count", string_of_int (Audit.count census Truth.Both));
        ("census_probes", string_of_int census_probes);
        ("census_tableau_calls", string_of_int census_tableau);
        ("naive_census_probes", string_of_int naive_probes);
        ("census_seconds", Printf.sprintf "%.4f" census_dt);
        ("naive_census_seconds", Printf.sprintf "%.4f" naive_dt);
        ("exact_plan_probes", string_of_int plan_probes);
        ("exact_naive_probes", string_of_int naive_exact_probes);
        ("exact_probe_speedup", Printf.sprintf "%.2f" probe_speedup);
        ("exact_wall_speedup", Printf.sprintf "%.2f" wall_speedup) ]
    ~detail:
      (Printf.sprintf
         "{\"kb\": \"%d Common individuals (every 7th also ~Common), 2 \
          Rare, 6 links pairs\",\n\
         \  \"census\": \"individuals x atomic concepts grid + told role \
          assertions, batched vs per-fact naive, fresh cold session per \
          run\",\n\
         \  \"query\": \"?x, ?y <- Common(?x), links(?x, ?y), Rare(?y) \
          with --exactly B,N\",\n\
         \  \"probes\": \"oracle verdicts + cache-served checks\"}"
         n)

(* ------------------------------------------------------------------ *)
(* Timing benches *)

let paper_benches () =
  [ bench "example1_instance_query" (fun () ->
        let t = Para.create Paper_examples.example1 in
        Para.instance_truth t "bill" (Concept.Atom "Doctor"));
    bench "example2_instance_query" (fun () ->
        let t = Para.create Paper_examples.example2 in
        Para.instance_truth t "john" (Concept.Atom "ReadPatientRecordTeam"));
    bench "example3_satisfiability" (fun () ->
        Tableau.kb_satisfiable (Transform.kb Paper_examples.example3));
    bench "example3_classical_unsat" (fun () ->
        Tableau.kb_satisfiable Paper_examples.example3_classical);
    bench "example4_satisfiability" (fun () ->
        Tableau.kb_satisfiable (Transform.kb Paper_examples.example4));
    bench "example4_table4_enumeration" (fun () ->
        Seq.fold_left (fun n _ -> n + 1) 0 (Enum.models4 Paper_examples.example4))
  ]

(* S1: the transformation is linear time (the paper: "polynomial"). *)
let transform_benches () =
  List.map
    (fun n ->
      let kb =
        Gen.kb4
          { Gen.default with
            seed = n;
            n_concepts = max 10 (n / 10);
            n_individuals = max 10 (n / 10);
            n_tbox = n / 2;
            n_abox = n / 2 }
      in
      bench (Printf.sprintf "transform_%05d_axioms" n) (fun () ->
          Transform.kb kb))
    [ 100; 400; 1600; 6400 ]

(* S2: classical vs four-valued satisfiability cost on the same ontology,
   consistent and with injected contradictions.  Same complexity class
   (Theorem 6); the gap is a constant factor from the doubled signature. *)
let reasoning_benches () =
  List.concat_map
    (fun n ->
      (* consistent workload: negation-free, so both readings are
         satisfiable and the comparison is signature-for-signature fair *)
      let p =
        { Gen.default with
          seed = 11;
          n_concepts = max 6 (n / 4);
          n_individuals = max 6 (n / 4);
          n_tbox = n / 2;
          n_abox = n / 2;
          max_depth = 1;
          inconsistency_rate = 0.0;
          material_fraction = 0.2;
          allow_negation = false }
      in
      let kb4 = Gen.kb4 p in
      let classical = Gen.classical p in
      let kbar = Transform.kb kb4 in
      (* inconsistent workload: same shape with negations and injected
         contradictions; the classical reading trivializes (fast unsat),
         the four-valued one keeps reasoning *)
      let p_inc = { p with allow_negation = true } in
      let kb4_inc =
        Gen.inject_contradictions ~seed:13 ~count:(max 1 (n / 10)) (Gen.kb4 p_inc)
      in
      let classical_inc = Gen.classical p_inc in
      let kbar_inc = Transform.kb kb4_inc in
      (* chronological backtracking is worst-case exponential; a branch
         budget keeps pathological draws from stalling the harness (blown
         budgets read as `false` and are noted in EXPERIMENTS.md) *)
      let sat kb () =
        try Tableau.kb_satisfiable ~max_branches:50_000 kb
        with Tableau.Resource_limit _ -> false
      in
      [ bench (Printf.sprintf "consistent_classical_%04d" n) (sat classical);
        bench (Printf.sprintf "consistent_fourvalued_%04d" n) (sat kbar);
        bench (Printf.sprintf "inconsistent_classical_%04d" n) (sat classical_inc);
        bench (Printf.sprintf "inconsistent_fourvalued_%04d" n) (sat kbar_inc) ])
    [ 40; 80; 160 ]

let query_benches () =
  List.map
    (fun n ->
      let kb =
        Gen.kb4
          { Gen.default with
            seed = 23;
            n_concepts = max 6 (n / 4);
            n_individuals = max 6 (n / 4);
            n_tbox = n / 2;
            n_abox = n / 2;
            max_depth = 1;
            inconsistency_rate = 0.1 }
      in
      let t = Para.create kb in
      bench (Printf.sprintf "instance_truth_%04d" n) (fun () ->
          Para.instance_truth t "a0" (Concept.Atom "C0")))
    [ 40; 80; 160 ]

(* S5 (ours): native four-valued tableau vs the transformation pipeline *)
let engine_benches () =
  List.concat_map
    (fun (label, kb) ->
      [ bench (label ^ "_transformation") (fun () ->
            Tableau.kb_satisfiable (Transform.kb kb));
        bench (label ^ "_native") (fun () ->
            Tableau4.satisfiable (Tableau4.create kb)) ])
    [ ("example1", Paper_examples.example1);
      ("example3", Paper_examples.example3);
      ("example4", Paper_examples.example4);
      ("chains16", Gen.exception_chains ~n:16) ]

(* S6 timing: naive vs engine classification, and cold vs warm cache.  The
   warm engine is created (and pre-warmed) once, so every measured run is
   answered from the verdict cache. *)
let engine_classification_benches () =
  List.concat_map
    (fun (label, kb) ->
      [ bench ("classify_naive_" ^ label) (fun () ->
            Para.classify_naive (Para.create kb));
        bench ("classify_engine_" ^ label) (fun () ->
            Engine.classify (Engine.of_config Oracle.default_config kb)) ])
    [ ("example3", Paper_examples.example3);
      ("chains8", Gen.exception_chains ~n:8) ]

let engine_cache_benches () =
  let kb =
    Gen.kb4
      { Gen.default with
        seed = 17;
        n_concepts = 8;
        n_individuals = 8;
        n_tbox = 12;
        n_abox = 20;
        max_depth = 1;
        inconsistency_rate = 0.1 }
  in
  let signature = Kb4.signature kb in
  let queries =
    List.concat_map
      (fun a -> List.map (fun c -> (a, c)) signature.Axiom.concepts)
      signature.Axiom.individuals
  in
  let batch e =
    List.iter
      (fun (a, c) -> ignore (Engine.instance_truth e a (Concept.Atom c)))
      queries
  in
  let warm = Engine.of_config Oracle.default_config kb in
  batch warm;
  [ bench "query_batch_cold_cache" (fun () -> batch (Engine.of_config Oracle.default_config kb));
    bench "query_batch_warm_cache" (fun () -> batch warm);
    bench "realize_cold" (fun () -> Engine.realization (Engine.of_config Oracle.default_config kb)) ]

let ablation_benches () =
  List.map
    (fun kind ->
      let name =
        match kind with
        | Kb4.Material -> "material"
        | Kb4.Internal -> "internal"
        | Kb4.Strong -> "strong"
      in
      let kb =
        Kb4.make
          ~tbox:
            (List.init 20 (fun i ->
                 Kb4.Concept_inclusion
                   ( kind,
                     Concept.Atom (Printf.sprintf "A%d" i),
                     Concept.Atom (Printf.sprintf "A%d" (i + 1)) )))
          ~abox:[ Axiom.Instance_of ("x", Concept.Atom "A0") ]
      in
      let t = Para.create kb in
      bench ("chain20_" ^ name) (fun () ->
          Para.instance_truth t "x" (Concept.Atom "A20")))
    Kb4.all_inclusions

let () =
  section "dl4 evaluation harness";
  Printf.printf
    "The reproduced paper has no measured tables; the EX* reports regenerate\n\
     its worked examples and Table 4, and S1-S4 are the synthetic evaluation\n\
     defined in DESIGN.md.  Timings are OLS estimates (bechamel).\n";
  report_paper_examples ();
  report_table4 ();
  report_quality ();
  report_ablation ();
  report_engine_classification ();
  report_engine_cache ();
  report_engine_parallel ();
  report_obs_overhead ();
  report_incremental ();
  report_serve ();
  report_backends ();
  report_telemetry ();
  report_planner ();
  report_audit ();
  section "timing series (S1-S4)";
  run_group ~name:"paper" (paper_benches ());
  run_group ~name:"scale_transform" (transform_benches ());
  run_group ~name:"scale_reasoning" (reasoning_benches ());
  run_group ~name:"scale_query" (query_benches ());
  run_group ~name:"engines" (engine_benches ());
  run_group ~name:"classification" (engine_classification_benches ());
  run_group ~name:"verdict_cache" (engine_cache_benches ());
  run_group ~name:"ablation" (ablation_benches ());
  Printf.printf "\ndone.\n"
