(* dl4 — command-line front end for the paraconsistent OWL DL reasoner.

   Subcommands: check, query, classify, realize, update, retrieve,
   transform, models, explain, repair, stats, convert.
   Knowledge bases are read in the surface syntax of [Surface] (see
   README.md for the grammar). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_kb4 path =
  match Surface.parse_kb4 (read_file path) with
  | Ok kb -> kb
  | Error e ->
      Format.eprintf "%s: %a@." path Surface.pp_error e;
      exit 2

let load_kb path =
  match Surface.parse_kb (read_file path) with
  | Ok kb -> kb
  | Error e ->
      Format.eprintf "%s: %a@." path Surface.pp_error e;
      exit 2

let load_concept src =
  match Surface.parse_concept src with
  | Ok c -> c
  | Error e ->
      Format.eprintf "concept %S: %a@." src Surface.pp_error e;
      exit 2

let load_owl path =
  match Owl_functional.parse_ontology (read_file path) with
  | Ok kb -> kb
  | Error e ->
      Format.eprintf "%s: %a@." path Owl_functional.pp_error e;
      exit 2

let file_arg =
  Arg.(
    required
    & pos 0 (some non_dir_file) None
    & info [] ~docv:"FILE" ~doc:"Knowledge base in dl4 surface syntax.")

let classical_flag =
  Arg.(
    value & flag
    & info [ "classical" ]
        ~doc:"Read the file as a classical SHOIN(D) KB (inclusions use <<).")

let owl_flag =
  Arg.(
    value & flag
    & info [ "owl" ]
        ~doc:
          "Read the file as OWL 2 functional-style syntax (classical \
           semantics; inclusions are treated as internal in four-valued \
           mode).")

let max_nodes_arg =
  Arg.(
    value & opt int 20_000
    & info [ "max-nodes" ] ~docv:"N"
        ~doc:"Tableau completion-graph node limit.")

let cache_size_arg =
  Arg.(
    value
    & opt int Engine.default_cache_capacity
    & info [ "cache-size" ] ~docv:"N"
        ~doc:"Capacity of the LRU verdict cache (number of tableau verdicts).")

let no_cache_flag =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Disable the verdict cache: every query pays its tableau calls.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Size of the oracle's domain pool.  Batched query work \
           (classification rows, realization, retrieval grids) is sharded \
           across $(docv) OCaml domains, each with its own tableau \
           reasoner; answers are identical whatever the pool width.")

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the uniform statistics footer (the Obs registry): tableau \
           runs and rule firings, verdict-cache hits, oracle batches, \
           classification/realization work.  Identical across subcommands.")

let metrics_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE"
        ~doc:"Write the metrics registry as a flat JSON object to $(docv).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON timeline of the run's spans \
           (tableau runs, oracle batches and worker shards, engine phases) \
           to $(docv); load it in about:tracing or ui.perfetto.dev.")

let obs_term =
  let pack stats metrics trace = (stats, metrics, trace) in
  Term.(const pack $ stats_flag $ metrics_json_arg $ trace_arg)

(* Run a subcommand under a root span with the observability sinks the
   user asked for.  Arming happens before any KB is loaded, so the root
   span covers parsing, reduction and reasoning — (almost) the whole
   wall time of the invocation. *)
let with_obs ~cmd (stats, metrics, trace) run =
  if stats || metrics <> None || trace <> None then Obs.set_enabled true;
  let sp = Obs.enter ~cat:"cli" ("cli." ^ cmd) in
  match run () with
  | code ->
      Obs.exit_span sp;
      if stats then Obs.print_footer ();
      Option.iter Obs.write_metrics_json metrics;
      Option.iter Obs.write_trace trace;
      code
  | exception e ->
      Obs.exit_span sp;
      raise e

let make_engine ~jobs ~max_nodes ~cache_size ~no_cache kb =
  Engine.create ~jobs
    ~cache_capacity:(if no_cache then 0 else cache_size)
    ~max_nodes kb

(* ------------------------------------------------------------------ *)

let check_cmd =
  let run file classical owl max_nodes jobs obs =
    with_obs ~cmd:"check" obs (fun () ->
        if classical || owl then begin
          let kb = if owl then load_owl file else load_kb file in
          let r = Reasoner.create ~max_nodes kb in
          List.iter (Format.printf "warning: %s@.") (Reasoner.validate r);
          if Reasoner.is_consistent r then begin
            Format.printf "consistent@.";
            0
          end
          else begin
            Format.printf
              "INCONSISTENT: under two-valued semantics every conclusion \
               follows@.";
            1
          end
        end
        else begin
          let kb = load_kb4 file in
          let t = Para.create ~jobs ~max_nodes kb in
          if not (Para.satisfiable t) then begin
            Format.printf "four-valued UNSATISFIABLE@.";
            1
          end
          else begin
            Format.printf "four-valued satisfiable@.";
            (match Para.contradictions t with
            | [] -> Format.printf "no localized contradictions@."
            | cs ->
                Format.printf "localized contradictions (value TOP):@.";
                List.iter (fun (a, c) -> Format.printf "  %s : %s@." a c) cs);
            0
          end
        end)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Check satisfiability; in four-valued mode also report the \
          localized contradictions.")
    Term.(
      const run $ file_arg $ classical_flag $ owl_flag $ max_nodes_arg
      $ jobs_arg $ obs_term)

let query_cmd =
  let individual =
    Arg.(
      required
      & opt (some string) None
      & info [ "i"; "individual" ] ~docv:"NAME" ~doc:"Individual to query.")
  in
  let concept_src =
    Arg.(
      required
      & opt (some string) None
      & info [ "c"; "concept" ] ~docv:"CONCEPT"
          ~doc:"Concept expression in surface syntax.")
  in
  let run file ind csrc max_nodes jobs obs =
    with_obs ~cmd:"query" obs (fun () ->
        let kb = load_kb4 file in
        let c = load_concept csrc in
        let t = Para.create ~jobs ~max_nodes kb in
        let v = Para.instance_truth t ind c in
        Format.printf "%s : %s  =  %a@." ind (Concept.to_string c) Truth.pp v;
        (match v with
        | Truth.True -> Format.printf "supported: yes;  denied: no@."
        | Truth.False -> Format.printf "supported: no;  denied: yes@."
        | Truth.Both ->
            Format.printf "supported: yes;  denied: yes  (contradiction)@."
        | Truth.Neither -> Format.printf "supported: no;  denied: no@.");
        0)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Four-valued instance query: the Belnap value the KB supports for \
          C(a).")
    Term.(
      const run $ file_arg $ individual $ concept_src $ max_nodes_arg
      $ jobs_arg $ obs_term)

let classify_cmd =
  let run file max_nodes cache_size no_cache jobs obs =
    with_obs ~cmd:"classify" obs (fun () ->
        let kb = load_kb4 file in
        let e = make_engine ~jobs ~max_nodes ~cache_size ~no_cache kb in
        List.iter
          (fun (cls, direct) ->
            let lhs = String.concat " = " cls in
            match direct with
            | [] -> Format.printf "%s@." lhs
            | _ -> Format.printf "%s < %s@." lhs (String.concat ", " direct))
          (Engine.taxonomy e);
        0)
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:
         "Reduced taxonomy under internal inclusion: equivalence classes \
          with their direct super-classes.  Classification is told-subsumer \
          seeded and DAG-pruned; the stats line reports the tableau calls \
          saved over the naive all-pairs loop.")
    Term.(
      const run $ file_arg $ max_nodes_arg $ cache_size_arg $ no_cache_flag
      $ jobs_arg $ obs_term)

let realize_cmd =
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Also print the full Belnap truth value grid (default: only the \
             most-specific types and the contradictions).")
  in
  let run file all max_nodes cache_size no_cache jobs obs =
    with_obs ~cmd:"realize" obs (fun () ->
        let kb = load_kb4 file in
        let e = make_engine ~jobs ~max_nodes ~cache_size ~no_cache kb in
        List.iter
          (fun (entry : Realize.entry) ->
            let tops =
              List.filter_map
                (fun (c, v) -> if v = Truth.Both then Some c else None)
                entry.Realize.types
            in
            Format.printf "%s : %s%s@." entry.Realize.name
              (match entry.Realize.most_specific with
              | [] -> "(no told-positive atomic type)"
              | msc -> String.concat ", " msc)
              (match tops with
              | [] -> ""
              | _ -> "  [TOP: " ^ String.concat ", " tops ^ "]");
            if all then
              List.iter
                (fun (c, v) ->
                  if v <> Truth.Neither then
                    Format.printf "    %-20s %a@." c Truth.pp v)
                entry.Realize.types)
          (Engine.realization e).Realize.entries;
        0)
  in
  Cmd.v
    (Cmd.info "realize"
       ~doc:
         "ABox realization: the most-specific atomic types of every \
          individual with their Belnap values, computed with instance checks \
          pruned through the classified hierarchy.")
    Term.(
      const run $ file_arg $ all $ max_nodes_arg $ cache_size_arg
      $ no_cache_flag $ jobs_arg $ obs_term)

let update_cmd =
  let delta_args =
    Arg.(
      value & opt_all non_dir_file []
      & info [ "delta" ] ~docv:"FILE"
          ~doc:
            "Delta script to replay (repeatable; applied in order).  Each \
             file holds one or more deltas separated by lines starting with \
             ---; a delta is one statement per line in the surface syntax, \
             prefixed with + (add) or - (retract an ABox assertion).  TBox \
             changes are monotone additions.")
  in
  let load_deltas path =
    match Delta.parse_script (read_file path) with
    | Ok ds -> ds
    | Error e ->
        Format.eprintf "%s: %s@." path e;
        exit 2
  in
  let run file deltas max_nodes cache_size no_cache jobs obs =
    with_obs ~cmd:"update" obs (fun () ->
        let kb = load_kb4 file in
        if deltas = [] then begin
          Format.eprintf "update: pass at least one --delta FILE@.";
          2
        end
        else begin
          let config =
            { Session.default_config with
              jobs;
              max_nodes;
              cache_capacity = (if no_cache then 0 else cache_size) }
          in
          let s = Session.create ~config kb in
          let p = Para.of_session s in
          (* warm the stack before replaying so the per-delta stats show
             what selective invalidation retains *)
          Format.printf "initial: %s, %d contradictions@."
            (if Para.satisfiable p then "satisfiable" else "UNSATISFIABLE")
            (List.length (Para.contradictions p));
          let n = ref 0 in
          List.iter
            (fun path ->
              List.iter
                (fun d ->
                  incr n;
                  let st = Session.apply s d in
                  Format.printf "delta %d: %a@." !n Oracle.pp_apply_stats st)
                (load_deltas path))
            deltas;
          Format.printf "final: %s, %d contradictions@."
            (if Para.satisfiable p then "satisfiable" else "UNSATISFIABLE")
            (List.length (Para.contradictions p));
          if Para.satisfiable p then 0 else 1
        end)
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Replay incremental KB deltas against a live session.  Each delta \
          is applied in place; cached verdicts whose provenance avoids the \
          touched individuals and concepts are retained, the rest are \
          selectively evicted (see the per-delta stats lines).")
    Term.(
      const run $ file_arg $ delta_args $ max_nodes_arg $ cache_size_arg
      $ no_cache_flag $ jobs_arg $ obs_term)

let transform_cmd =
  let run file =
    let kb = load_kb4 file in
    print_string (Surface.kb_to_string (Transform.kb kb));
    0
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:
         "Print the classical induced KB (Definition 7) in surface syntax \
          (parseable with --classical).")
    Term.(const run $ file_arg)

let models_cmd =
  let extra =
    Arg.(
      value & opt int 0
      & info [ "extra" ] ~docv:"N" ~doc:"Anonymous domain elements to add.")
  in
  let limit =
    Arg.(
      value & opt int 10
      & info [ "limit" ] ~docv:"N" ~doc:"Maximum number of models to print.")
  in
  let run file extra limit =
    let kb = load_kb4 file in
    let count = ref 0 in
    Seq.iter
      (fun m ->
        incr count;
        Format.printf "--- model %d ---@.%a@." !count Interp4.pp m)
      (Seq.take limit (Enum.models4 ~extra kb));
    if !count = 0 then Format.printf "no four-valued model over this domain@.";
    0
  in
  Cmd.v
    (Cmd.info "models"
       ~doc:
         "Enumerate four-valued models over the KB's individuals (plus \
          --extra anonymous elements).  Exponential; small KBs only.")
    Term.(const run $ file_arg $ extra $ limit)

let retrieve_cmd =
  let concept_src =
    Arg.(
      required
      & opt (some string) None
      & info [ "c"; "concept" ] ~docv:"CONCEPT"
          ~doc:"Concept expression in surface syntax.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Also print individuals with value f or BOT (default: only \
                designated answers).")
  in
  let run file csrc all max_nodes jobs obs =
    with_obs ~cmd:"retrieve" obs (fun () ->
        let kb = load_kb4 file in
        let c = load_concept csrc in
        let t = Para.create ~jobs ~max_nodes kb in
        List.iter
          (fun (a, v) ->
            if all || Truth.designated v then
              Format.printf "  %-20s %a@." a Truth.pp v)
          (Para.retrieve t c);
        0)
  in
  Cmd.v
    (Cmd.info "retrieve"
       ~doc:"Four-valued instance retrieval: the Belnap value of C(a) for \
             every named individual.")
    Term.(
      const run $ file_arg $ concept_src $ all $ max_nodes_arg $ jobs_arg
      $ obs_term)

let explain_cmd =
  let individual =
    Arg.(
      value
      & opt (some string) None
      & info [ "i"; "individual" ] ~docv:"NAME" ~doc:"Individual to explain.")
  in
  let concept_src =
    Arg.(
      value
      & opt (some string) None
      & info [ "c"; "concept" ] ~docv:"CONCEPT" ~doc:"Concept expression.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Enumerate several justifications (up to 10).")
  in
  let run file ind csrc all max_nodes jobs obs =
    with_obs ~cmd:"explain" obs (fun () ->
        let kb = load_kb4 file in
        match (ind, csrc) with
        | Some ind, Some csrc ->
            let c = load_concept csrc in
            let t = Para.create ~max_nodes kb in
            let v = Para.instance_truth t ind c in
            Format.printf "%s : %s = %a@." ind (Concept.to_string c) Truth.pp
              v;
            let queries =
              match v with
              | Truth.True -> [ Explain.Instance (ind, c) ]
              | Truth.False -> [ Explain.Not_instance (ind, c) ]
              | Truth.Both -> [ Explain.Contradiction (ind, c) ]
              | Truth.Neither -> []
            in
            if queries = [] then
              Format.printf "nothing to explain: no supported information@.";
            List.iter
              (fun q ->
                let js =
                  if all then Explain.all_justifications ~max_nodes kb q
                  else Option.to_list (Explain.justification ~max_nodes kb q)
                in
                List.iteri
                  (fun i j ->
                    Format.printf "@.justification %d for %a:@.%s" (i + 1)
                      Explain.pp_query q
                      (Surface.kb4_to_string j))
                  js)
              queries;
            0
        | _ ->
            (* no query: the contradictions scan is a batched grid — give it
               the pool; the per-candidate justification probes stay serial *)
            let t = Para.create ~jobs ~max_nodes kb in
            let explained = Explain.contradictions_explained ~max_nodes t in
            if explained = [] then
              Format.printf "no localized contradictions@."
            else
              List.iter
                (fun (a, cname, j) ->
                  Format.printf "%s : %s = TOP, because:@.%s@." a cname
                    (Surface.kb4_to_string j))
                explained;
            0)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Pinpoint the axioms responsible for an answer (or for every \
          localized contradiction when no query is given).")
    Term.(
      const run $ file_arg $ individual $ concept_src $ all $ max_nodes_arg
      $ jobs_arg $ obs_term)

let repair_cmd =
  let run file =
    let kb = load_kb file in
    print_string (Surface.kb_to_string (Baselines.stratified_repair kb));
    0
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Print a maximal consistent sub-KB of a classical KB \
          (stratification baseline; TBox preferred over ABox).")
    Term.(const run $ file_arg)

let stats_cmd =
  let run file classical owl =
    let stats =
      if owl then Kb_stats.of_kb (load_owl file)
      else if classical then Kb_stats.of_kb (load_kb file)
      else Kb_stats.of_kb4 (load_kb4 file)
    in
    Format.printf "%a@." Kb_stats.pp stats;
    0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Knowledge-base metrics and DL expressivity (e.g. SHOIN(D)).")
    Term.(const run $ file_arg $ classical_flag $ owl_flag)

let convert_cmd =
  let to_owl =
    Arg.(
      value & flag
      & info [ "to-owl" ]
          ~doc:"Convert dl4 surface syntax (classical mode, <<) to OWL \
                functional syntax.")
  in
  let from_owl =
    Arg.(
      value & flag
      & info [ "from-owl" ]
          ~doc:"Convert OWL functional syntax to dl4 surface syntax.")
  in
  let run file to_owl from_owl =
    if to_owl then begin
      print_string (Owl_functional.to_functional (load_kb file));
      0
    end
    else if from_owl then begin
      print_string (Surface.kb_to_string (load_owl file));
      0
    end
    else begin
      Format.eprintf "convert: pass --to-owl or --from-owl@.";
      2
    end
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Convert between the dl4 surface syntax and OWL 2 \
             functional-style syntax.")
    Term.(const run $ file_arg $ to_owl $ from_owl)

let main =
  Cmd.group
    (Cmd.info "dl4" ~version:"1.0.0"
       ~doc:
         "Paraconsistent reasoning with inconsistent OWL DL ontologies via \
          four-valued description logic SHOIN(D)4.")
    [ check_cmd;
      query_cmd;
      classify_cmd;
      realize_cmd;
      update_cmd;
      transform_cmd;
      models_cmd;
      retrieve_cmd;
      explain_cmd;
      repair_cmd;
      stats_cmd;
      convert_cmd ]

let () = exit (Cmd.eval' main)
