(* dl4 — command-line front end for the paraconsistent OWL DL reasoner.

   Subcommands: check, query, classify, realize, update, retrieve,
   transform, models, explain, repair, stats, convert.
   Knowledge bases are read in the surface syntax of [Surface] (see
   README.md for the grammar). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_kb4 path =
  match Surface.parse_kb4 (read_file path) with
  | Ok kb -> kb
  | Error e ->
      Format.eprintf "%s: %a@." path Surface.pp_error e;
      exit 2

let load_kb path =
  match Surface.parse_kb (read_file path) with
  | Ok kb -> kb
  | Error e ->
      Format.eprintf "%s: %a@." path Surface.pp_error e;
      exit 2

let load_concept src =
  match Surface.parse_concept src with
  | Ok c -> c
  | Error e ->
      Format.eprintf "concept %S: %a@." src Surface.pp_error e;
      exit 2

let load_owl path =
  match Owl_functional.parse_ontology (read_file path) with
  | Ok kb -> kb
  | Error e ->
      Format.eprintf "%s: %a@." path Owl_functional.pp_error e;
      exit 2

let file_arg =
  Arg.(
    required
    & pos 0 (some non_dir_file) None
    & info [] ~docv:"FILE" ~doc:"Knowledge base in dl4 surface syntax.")

let classical_flag =
  Arg.(
    value & flag
    & info [ "classical" ]
        ~doc:"Read the file as a classical SHOIN(D) KB (inclusions use <<).")

let owl_flag =
  Arg.(
    value & flag
    & info [ "owl" ]
        ~doc:
          "Read the file as OWL 2 functional-style syntax (classical \
           semantics; inclusions are treated as internal in four-valued \
           mode).")

let max_nodes_arg =
  Arg.(
    value & opt int 20_000
    & info [ "max-nodes" ] ~docv:"N"
        ~doc:"Tableau completion-graph node limit.")

let max_branches_arg =
  Arg.(
    value & opt int max_int
    & info [ "max-branches" ] ~docv:"N"
        ~doc:
          "Tableau branch budget per run (default unlimited).  A run that \
           explores more than $(docv) nondeterministic alternatives is \
           aborted: dl4 exits with code 3, and when the flight recorder is \
           armed (--flight or DL4_FLIGHT) its rings are dumped at the trip \
           point.")

let cache_size_arg =
  Arg.(
    value
    & opt int Engine.default_cache_capacity
    & info [ "cache-size" ] ~docv:"N"
        ~doc:"Capacity of the LRU verdict cache (number of tableau verdicts).")

let no_cache_flag =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Disable the verdict cache: every query pays its tableau calls.")

let backend_arg =
  let backend_conv =
    Arg.conv
      ( (fun s ->
          match Backend.choice_of_string s with
          | Ok c -> Ok c
          | Error e -> Error (`Msg e)),
        fun ppf c -> Format.pp_print_string ppf (Backend.choice_to_string c) )
  in
  Arg.(
    value
    & opt backend_conv Backend.Auto
    & info [ "backend" ] ~docv:"B"
        ~env:(Cmd.Env.info "DL4_BACKEND")
        ~doc:
          "Reasoning backend: $(b,auto) (default) routes each verdict to \
           the cheapest complete backend — the Horn/EL completion engine \
           when the transformed KB lies in its fragment (see 'dl4 \
           fragment'), the tableau otherwise; $(b,tableau) pins every \
           verdict to the tableau; $(b,horn) requires the fragment and \
           fails on KBs outside it.  Whatever the choice, answers are \
           identical — only the work profile changes.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Size of the oracle's domain pool.  Batched query work \
           (classification rows, realization, retrieval grids) is sharded \
           across $(docv) OCaml domains, each with its own tableau \
           reasoner; answers are identical whatever the pool width.")

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the uniform statistics footer (the Obs registry): tableau \
           runs and rule firings, verdict-cache hits, oracle batches, \
           classification/realization work.  Identical across subcommands.")

let metrics_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE"
        ~doc:"Write the metrics registry as a flat JSON object to $(docv).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON timeline of the run's spans \
           (tableau runs, oracle batches and worker shards, engine phases) \
           to $(docv); load it in about:tracing or ui.perfetto.dev.")

let slow_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "slow-log" ] ~docv:"FILE"
        ~doc:
          "Append one JSONL record per slow verdict (cost record, \
           provenance symbols, cache disposition) to $(docv).  A verdict is \
           slow when its tableau wall time reaches the --slow-ms threshold.")

let slow_ms_arg =
  Arg.(
    value & opt float 100.0
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:"Slow-verdict threshold for --slow-log, in milliseconds.")

let flight_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight" ] ~docv:"FILE"
        ~doc:
          "Arm the flight recorder and dump its per-domain event rings to \
           $(docv) at the end of the run (and immediately on a \
           max-nodes/max-branches trip).")

let flight_depth_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "flight-depth" ] ~docv:"N"
        ~doc:
          "Flight-recorder ring depth per domain (default 1024; the \
           DL4_FLIGHT_DEPTH environment variable sets the same knob).  \
           Rings keep the depth they were created with, so this takes \
           effect before any recording starts.")

let obs_term =
  let pack stats metrics trace slow_log slow_ms flight flight_depth =
    (stats, metrics, trace, slow_log, slow_ms, flight, flight_depth)
  in
  Term.(
    const pack $ stats_flag $ metrics_json_arg $ trace_arg $ slow_log_arg
    $ slow_ms_arg $ flight_arg $ flight_depth_arg)

(* Run a subcommand under a root span with the observability sinks the
   user asked for.  Arming happens before any KB is loaded, so the root
   span covers parsing, reduction and reasoning — (almost) the whole
   wall time of the invocation.  Sinks flush on every path, including a
   tableau resource-limit trip (exit 3): a truncated run is exactly the
   one whose footer, metrics and flight dump are worth reading. *)
let with_obs ~cmd (stats, metrics, trace, slow_log, slow_ms, flight, flight_depth)
    run =
  if stats || metrics <> None || trace <> None then Obs.set_enabled true;
  Option.iter (fun p -> Obs.arm_slow_log ~threshold_ms:slow_ms p) slow_log;
  Option.iter Flight.set_capacity flight_depth;
  Option.iter (fun p -> Flight.arm ~path:p ()) flight;
  (* one trace ID per CLI invocation: every cost record, span, slow-log
     line and flight event of this run carries it.  The serve loop
     re-mints per request on top of this. *)
  let trace_id = Obs.new_trace_id () in
  Obs.set_trace_id trace_id;
  let finish code =
    if stats then Obs.print_footer ();
    Option.iter Obs.write_metrics_json metrics;
    Option.iter Obs.write_trace trace;
    Option.iter Flight.write flight;
    code
  in
  let sp = Obs.enter ~cat:"cli" ("cli." ^ cmd) in
  Obs.set_attr sp "trace_id" trace_id;
  match run () with
  | code ->
      Obs.exit_span sp;
      finish code
  | exception Backend.Unsupported msg ->
      Obs.exit_span sp;
      Format.eprintf
        "dl4 %s: %s@.hint: run 'dl4 fragment' for the full diagnosis, or \
         drop --backend horn@."
        cmd msg;
      finish 2
  | exception Tableau.Resource_limit msg ->
      Obs.exit_span sp;
      Format.eprintf "dl4 %s: tableau resource limit: %s@." cmd msg;
      (match Flight.armed_path () with
      | Some p -> Format.eprintf "flight recording dumped to %s@." p
      | None ->
          Format.eprintf
            "hint: re-run with --flight FILE (or DL4_FLIGHT=1) to capture \
             the events leading up to the trip@.");
      finish 3
  | exception e ->
      Obs.exit_span sp;
      raise e

(* ------------------------------------------------------------------ *)
(* Snapshot plumbing: every reasoning subcommand can warm-start from a
   dl4-snap file.  Loading is strictly best-effort — any validation
   failure (corruption, version skew, different KB) warns and falls
   back to a cold build, because a wrong warm cache would mean wrong
   answers while a cold build only means wasted time. *)

let from_snapshot_arg =
  Arg.(
    value
    & opt (some non_dir_file) None
    & info [ "from-snapshot" ] ~docv:"SNAP"
        ~doc:
          "Warm-start from a snapshot written by 'dl4 snapshot' (or the \
           serve daemon's autosave).  The snapshot must have been taken \
           over exactly this KB; on mismatch, corruption, truncation or \
           version skew dl4 warns and builds cold.  Cached verdicts, the \
           classification index and the cost history carry over, so \
           repeated queries pay zero tableau calls.  --cache-size, \
           --max-nodes and --max-branches are taken from the snapshot \
           (--jobs still applies).")

let make_config ~jobs ~max_nodes ~max_branches ~cache_size ~no_cache ~backend =
  { Session.jobs;
    max_nodes;
    max_branches;
    cache_capacity = (if no_cache then 0 else cache_size);
    backend }

let session_of ~config ~from_snapshot kb =
  match from_snapshot with
  | None -> Session.create ~config kb
  | Some path -> (
      match Store.load_session ~jobs:config.Session.jobs ~kb path with
      | Ok s -> s
      | Error e ->
          Format.eprintf "warning: ignoring snapshot %s (%s); building cold@."
            path (Store.error_to_string e);
          Session.create ~config kb)

(* Warm the session the way the snapshot/serve paths want it: the
   consistency bit, the full individuals-by-atoms truth grid (covers
   every atomic instance query in both polarities) and the
   classification index. *)
let warm_session s =
  let p = Para.of_session s in
  ignore (Para.satisfiable p : bool);
  ignore (Para.contradictions p : (string * string) list);
  ignore (Engine.classification (Session.engine s) : Classify.t)

(* ------------------------------------------------------------------ *)

let check_cmd =
  let run file classical owl max_nodes max_branches jobs backend from_snapshot
      obs =
    with_obs ~cmd:"check" obs (fun () ->
        if classical || owl then begin
          let kb = if owl then load_owl file else load_kb file in
          let r = Reasoner.create ~max_nodes ~max_branches kb in
          List.iter (Format.printf "warning: %s@.") (Reasoner.validate r);
          if Reasoner.is_consistent r then begin
            Format.printf "consistent@.";
            0
          end
          else begin
            Format.printf
              "INCONSISTENT: under two-valued semantics every conclusion \
               follows@.";
            1
          end
        end
        else begin
          let kb = load_kb4 file in
          let config =
            make_config ~jobs ~max_nodes ~max_branches
              ~cache_size:Engine.default_cache_capacity ~no_cache:false
              ~backend
          in
          let t = Para.of_session (session_of ~config ~from_snapshot kb) in
          if not (Para.satisfiable t) then begin
            Format.printf "four-valued UNSATISFIABLE@.";
            1
          end
          else begin
            Format.printf "four-valued satisfiable@.";
            (match Para.contradictions t with
            | [] -> Format.printf "no localized contradictions@."
            | cs ->
                Format.printf "localized contradictions (value TOP):@.";
                List.iter (fun (a, c) -> Format.printf "  %s : %s@." a c) cs);
            0
          end
        end)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Check satisfiability; in four-valued mode also report the \
          localized contradictions.")
    Term.(
      const run $ file_arg $ classical_flag $ owl_flag $ max_nodes_arg
      $ max_branches_arg $ jobs_arg $ backend_arg $ from_snapshot_arg
      $ obs_term)

(* Shared by `query --explain` and `explain-plan`: pretty-print the plan
   with estimated vs (after execution) actual per-step cardinalities. *)
let print_plan_text (v : Cq.Plan.view) =
  Format.printf "query: %s@." v.Cq.Plan.v_query;
  Format.printf "binding order: %s   individuals: %d   order: %s@."
    (String.concat ", " (List.map (fun x -> "?" ^ x) v.Cq.Plan.v_vars))
    v.Cq.Plan.v_individuals v.Cq.Plan.v_order;
  Format.printf "hash-join threshold: %d%s@." v.Cq.Plan.v_threshold
    (match v.Cq.Plan.v_forced with
    | None -> ""
    | Some s -> "   forced strategy: " ^ s);
  List.iteri
    (fun i (s : Cq.Plan.step_view) ->
      Format.printf "  %d. %s" (i + 1) s.Cq.Plan.sv_atom;
      if s.Cq.Plan.sv_filter then Format.printf "  [filter]"
      else
        Format.printf "  [binds %s]"
          (String.concat ", "
             (List.map (fun x -> "?" ^ x) s.Cq.Plan.sv_binds));
      Format.printf "  est_rows=%d est_probe_ns=%.0f" s.Cq.Plan.sv_est_rows
        s.Cq.Plan.sv_est_cost_ns;
      (match s.Cq.Plan.sv_strategy with
      | Some st when not s.Cq.Plan.sv_filter -> Format.printf " strategy=%s" st
      | _ -> ());
      (match (s.Cq.Plan.sv_actual_rows, s.Cq.Plan.sv_probes) with
      | Some rows, Some probes ->
          Format.printf " actual_rows=%d probes=%d" rows probes
      | _ -> ());
      Format.printf "@.")
    v.Cq.Plan.v_steps

let cq_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cq" ] ~docv:"CQ"
        ~doc:
          "Conjunctive query, e.g. '?x <- Doctor(?x), hasPatient(?x, ?y)'. \
           Variables are ?-prefixed, bare terms are individuals; without \
           '<-' every variable is projected.")

let load_cq src =
  match Cq.parse src with
  | Ok q -> q
  | Error msg ->
      Format.eprintf "cq %S: %s@." src msg;
      exit 2

let query_cmd =
  let individual =
    Arg.(
      value
      & opt (some string) None
      & info [ "i"; "individual" ] ~docv:"NAME" ~doc:"Individual to query.")
  in
  let concept_src =
    Arg.(
      value
      & opt (some string) None
      & info [ "c"; "concept" ] ~docv:"CONCEPT"
          ~doc:"Concept expression in surface syntax.")
  in
  let explain_flag =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "With --cq: after execution, print the chosen plan with \
             estimated vs actual per-step cardinalities, probe counts and \
             the join strategies picked.")
  in
  let exactly =
    Arg.(
      value
      & opt (some string) None
      & info [ "exactly" ] ~docv:"VALUES"
          ~doc:
            "With --cq: instead of the designated answers, return the \
             tuples whose conjunction takes exactly one of the given \
             truth values (comma-separated from t, f, B/TOP, N/BOT) — \
             e.g. --exactly B lists the exactly-contradictory matches, \
             --exactly B,N everything undecided-or-conflicting.")
  in
  let run file ind csrc cq explain exactly max_nodes max_branches jobs backend
      from_snapshot obs =
    with_obs ~cmd:"query" obs (fun () ->
        let kb = load_kb4 file in
        let config =
          make_config ~jobs ~max_nodes ~max_branches
            ~cache_size:Engine.default_cache_capacity ~no_cache:false ~backend
        in
        let t = Para.of_session (session_of ~config ~from_snapshot kb) in
        match cq with
        | Some src ->
            let q = load_cq src in
            let plan = Cq.compile t q in
            let answers =
              match exactly with
              | None -> Cq.run plan
              | Some spec -> (
                  match Truth.set_of_string spec with
                  | Error msg ->
                      Format.eprintf "--exactly %S: %s@." spec msg;
                      exit 2
                  | Ok values -> Cq.run_exactly plan ~values)
            in
            if answers = [] then
              Format.printf "%s@."
                (if exactly = None then "no designated answers"
                 else "no answers with exactly those values")
            else
              List.iter
                (fun (tuple, v) ->
                  Format.printf "%s  =  %a@." (String.concat ", " tuple)
                    Truth.pp v)
                answers;
            if explain then print_plan_text (Cq.explain plan);
            0
        | None -> (
            match (ind, csrc) with
            | Some ind, Some csrc ->
                let c = load_concept csrc in
                let v = Para.instance_truth t ind c in
                Format.printf "%s : %s  =  %a@." ind (Concept.to_string c)
                  Truth.pp v;
                (match v with
                | Truth.True -> Format.printf "supported: yes;  denied: no@."
                | Truth.False -> Format.printf "supported: no;  denied: yes@."
                | Truth.Both ->
                    Format.printf
                      "supported: yes;  denied: yes  (contradiction)@."
                | Truth.Neither -> Format.printf "supported: no;  denied: no@.");
                0
            | _ ->
                Format.eprintf
                  "dl4 query: provide either --cq, or both --individual and \
                   --concept@.";
                2))
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Four-valued query: the Belnap value the KB supports for C(a), or \
          the designated answers of a conjunctive query (--cq).")
    Term.(
      const run $ file_arg $ individual $ concept_src $ cq_arg $ explain_flag
      $ exactly $ max_nodes_arg $ max_branches_arg $ jobs_arg $ backend_arg
      $ from_snapshot_arg $ obs_term)

(* dl4 audit: the contradiction census of the KB as a dl4-audit/1
   report — the offline face of the serve daemon's [audit] op. *)
let audit_cmd =
  let top =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"K"
          ~doc:
            "Rank the $(docv) most-contradictory individuals and concepts \
             in the report.")
  in
  let exactly =
    Arg.(
      value
      & opt (some string) None
      & info [ "exactly" ] ~docv:"VALUES"
          ~doc:
            "Also list every audited fact whose exact value is in the \
             comma-separated set (from t, f, B/TOP, N/BOT), e.g. \
             --exactly B for the contradicted facts.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the report to $(docv) atomically (tmp + rename) instead \
             of stdout, so a concurrent reader never sees a torn file.")
  in
  let run file top exactly out max_nodes max_branches cache_size no_cache
      jobs backend from_snapshot obs =
    with_obs ~cmd:"audit" obs (fun () ->
        if top < 0 then begin
          Format.eprintf "--top must be non-negative@.";
          exit 2
        end;
        let exactly =
          match exactly with
          | None -> None
          | Some spec -> (
              match Truth.set_of_string spec with
              | Error msg ->
                  Format.eprintf "--exactly %S: %s@." spec msg;
                  exit 2
              | Ok values -> Some values)
        in
        let kb = load_kb4 file in
        let config =
          make_config ~jobs ~max_nodes ~max_branches ~cache_size ~no_cache
            ~backend
        in
        let t = Para.of_session (session_of ~config ~from_snapshot kb) in
        let report =
          Audit.report_json ~top ?exactly t (Audit.census t)
        in
        (match out with
        | None -> print_endline report
        | Some path ->
            let tmp = path ^ ".tmp" in
            let oc = open_out tmp in
            output_string oc report;
            output_char oc '\n';
            close_out oc;
            Sys.rename tmp path);
        0)
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Sweep every named individual against every atomic concept (and \
          every told role assertion) through the four-valued semantics and \
          report the KB's health as one dl4-audit/1 JSON object: per-value \
          counts, the degree-of-inconsistency ratio |TOP|/|decided|, \
          per-concept contradiction rates and the most-contradictory \
          individuals and concepts with provenance.")
    Term.(
      const run $ file_arg $ top $ exactly $ out $ max_nodes_arg
      $ max_branches_arg $ cache_size_arg $ no_cache_flag $ jobs_arg
      $ backend_arg $ from_snapshot_arg $ obs_term)

let classify_cmd =
  let run file max_nodes max_branches cache_size no_cache jobs backend
      from_snapshot obs =
    with_obs ~cmd:"classify" obs (fun () ->
        let kb = load_kb4 file in
        let config =
          make_config ~jobs ~max_nodes ~max_branches ~cache_size ~no_cache
            ~backend
        in
        let e = Session.engine (session_of ~config ~from_snapshot kb) in
        List.iter
          (fun (cls, direct) ->
            let lhs = String.concat " = " cls in
            match direct with
            | [] -> Format.printf "%s@." lhs
            | _ -> Format.printf "%s < %s@." lhs (String.concat ", " direct))
          (Engine.taxonomy e);
        0)
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:
         "Reduced taxonomy under internal inclusion: equivalence classes \
          with their direct super-classes.  Classification is told-subsumer \
          seeded and DAG-pruned; the stats line reports the tableau calls \
          saved over the naive all-pairs loop.")
    Term.(
      const run $ file_arg $ max_nodes_arg $ max_branches_arg $ cache_size_arg
      $ no_cache_flag $ jobs_arg $ backend_arg $ from_snapshot_arg $ obs_term)

let realize_cmd =
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Also print the full Belnap truth value grid (default: only the \
             most-specific types and the contradictions).")
  in
  let run file all max_nodes max_branches cache_size no_cache jobs backend
      from_snapshot obs =
    with_obs ~cmd:"realize" obs (fun () ->
        let kb = load_kb4 file in
        let config =
          make_config ~jobs ~max_nodes ~max_branches ~cache_size ~no_cache
            ~backend
        in
        let e = Session.engine (session_of ~config ~from_snapshot kb) in
        List.iter
          (fun (entry : Realize.entry) ->
            let tops =
              List.filter_map
                (fun (c, v) -> if v = Truth.Both then Some c else None)
                entry.Realize.types
            in
            Format.printf "%s : %s%s@." entry.Realize.name
              (match entry.Realize.most_specific with
              | [] -> "(no told-positive atomic type)"
              | msc -> String.concat ", " msc)
              (match tops with
              | [] -> ""
              | _ -> "  [TOP: " ^ String.concat ", " tops ^ "]");
            if all then
              List.iter
                (fun (c, v) ->
                  if v <> Truth.Neither then
                    Format.printf "    %-20s %a@." c Truth.pp v)
                entry.Realize.types)
          (Engine.realization e).Realize.entries;
        0)
  in
  Cmd.v
    (Cmd.info "realize"
       ~doc:
         "ABox realization: the most-specific atomic types of every \
          individual with their Belnap values, computed with instance checks \
          pruned through the classified hierarchy.")
    Term.(
      const run $ file_arg $ all $ max_nodes_arg $ max_branches_arg
      $ cache_size_arg $ no_cache_flag $ jobs_arg $ backend_arg
      $ from_snapshot_arg $ obs_term)

let update_cmd =
  let delta_args =
    Arg.(
      value & opt_all non_dir_file []
      & info [ "delta" ] ~docv:"FILE"
          ~doc:
            "Delta script to replay (repeatable; applied in order).  Each \
             file holds one or more deltas separated by lines starting with \
             ---; a delta is one statement per line in the surface syntax, \
             prefixed with + (add) or - (retract an ABox assertion).  TBox \
             changes are monotone additions.")
  in
  (* parse failures report and return [None] instead of exiting so the
     error path still flows through [with_obs]'s sink flush — the
     --stats footer and --metrics-json stay uniform with every other
     subcommand even when a delta script is malformed *)
  let load_deltas path =
    match Delta.parse_script (read_file path) with
    | Ok ds -> Some ds
    | Error e ->
        Format.eprintf "%s: %s@." path e;
        None
  in
  let run file deltas max_nodes max_branches cache_size no_cache jobs backend
      from_snapshot obs =
    with_obs ~cmd:"update" obs (fun () ->
        let kb = load_kb4 file in
        if deltas = [] then begin
          Format.eprintf "update: pass at least one --delta FILE@.";
          2
        end
        else begin
          let scripts = List.map load_deltas deltas in
          if List.exists Option.is_none scripts then 2
          else begin
            let config =
              make_config ~jobs ~max_nodes ~max_branches ~cache_size ~no_cache
                ~backend
            in
            let s = session_of ~config ~from_snapshot kb in
            let p = Para.of_session s in
            (* warm the stack before replaying so the per-delta stats show
               what selective invalidation retains *)
            Format.printf "initial: %s, %d contradictions@."
              (if Para.satisfiable p then "satisfiable" else "UNSATISFIABLE")
              (List.length (Para.contradictions p));
            let n = ref 0 in
            List.iter
              (fun ds ->
                List.iter
                  (fun d ->
                    incr n;
                    let st = Session.apply s d in
                    Format.printf "delta %d: %a@." !n Oracle.pp_apply_stats st)
                  ds)
              (List.filter_map Fun.id scripts);
            Format.printf "final: %s, %d contradictions@."
              (if Para.satisfiable p then "satisfiable" else "UNSATISFIABLE")
              (List.length (Para.contradictions p));
            if Para.satisfiable p then 0 else 1
          end
        end)
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Replay incremental KB deltas against a live session.  Each delta \
          is applied in place; cached verdicts whose provenance avoids the \
          touched individuals and concepts are retained, the rest are \
          selectively evicted (see the per-delta stats lines).")
    Term.(
      const run $ file_arg $ delta_args $ max_nodes_arg $ max_branches_arg
      $ cache_size_arg $ no_cache_flag $ jobs_arg $ backend_arg
      $ from_snapshot_arg $ obs_term)

let transform_cmd =
  let run file =
    let kb = load_kb4 file in
    print_string (Surface.kb_to_string (Transform.kb kb));
    0
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:
         "Print the classical induced KB (Definition 7) in surface syntax \
          (parseable with --classical).")
    Term.(const run $ file_arg)

let models_cmd =
  let extra =
    Arg.(
      value & opt int 0
      & info [ "extra" ] ~docv:"N" ~doc:"Anonymous domain elements to add.")
  in
  let limit =
    Arg.(
      value & opt int 10
      & info [ "limit" ] ~docv:"N" ~doc:"Maximum number of models to print.")
  in
  let run file extra limit =
    let kb = load_kb4 file in
    let count = ref 0 in
    Seq.iter
      (fun m ->
        incr count;
        Format.printf "--- model %d ---@.%a@." !count Interp4.pp m)
      (Seq.take limit (Enum.models4 ~extra kb));
    if !count = 0 then Format.printf "no four-valued model over this domain@.";
    0
  in
  Cmd.v
    (Cmd.info "models"
       ~doc:
         "Enumerate four-valued models over the KB's individuals (plus \
          --extra anonymous elements).  Exponential; small KBs only.")
    Term.(const run $ file_arg $ extra $ limit)

let retrieve_cmd =
  let concept_src =
    Arg.(
      required
      & opt (some string) None
      & info [ "c"; "concept" ] ~docv:"CONCEPT"
          ~doc:"Concept expression in surface syntax.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Also print individuals with value f or BOT (default: only \
                designated answers).")
  in
  let run file csrc all max_nodes max_branches jobs backend from_snapshot obs =
    with_obs ~cmd:"retrieve" obs (fun () ->
        let kb = load_kb4 file in
        let c = load_concept csrc in
        let config =
          make_config ~jobs ~max_nodes ~max_branches
            ~cache_size:Engine.default_cache_capacity ~no_cache:false ~backend
        in
        let t = Para.of_session (session_of ~config ~from_snapshot kb) in
        List.iter
          (fun (a, v) ->
            if all || Truth.designated v then
              Format.printf "  %-20s %a@." a Truth.pp v)
          (Para.retrieve t c);
        0)
  in
  Cmd.v
    (Cmd.info "retrieve"
       ~doc:"Four-valued instance retrieval: the Belnap value of C(a) for \
             every named individual.")
    Term.(
      const run $ file_arg $ concept_src $ all $ max_nodes_arg
      $ max_branches_arg $ jobs_arg $ backend_arg $ from_snapshot_arg
      $ obs_term)

let explain_cmd =
  let individual =
    Arg.(
      value
      & opt (some string) None
      & info [ "i"; "individual" ] ~docv:"NAME" ~doc:"Individual to explain.")
  in
  let concept_src =
    Arg.(
      value
      & opt (some string) None
      & info [ "c"; "concept" ] ~docv:"CONCEPT" ~doc:"Concept expression.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Enumerate several justifications (up to 10).")
  in
  let run file ind csrc all max_nodes jobs obs =
    with_obs ~cmd:"explain" obs (fun () ->
        let kb = load_kb4 file in
        match (ind, csrc) with
        | Some ind, Some csrc ->
            let c = load_concept csrc in
            let t = Para.create ~config:{ Oracle.default_config with Oracle.max_nodes = max_nodes } kb in
            let v = Para.instance_truth t ind c in
            Format.printf "%s : %s = %a@." ind (Concept.to_string c) Truth.pp
              v;
            let queries =
              match v with
              | Truth.True -> [ Explain.Instance (ind, c) ]
              | Truth.False -> [ Explain.Not_instance (ind, c) ]
              | Truth.Both -> [ Explain.Contradiction (ind, c) ]
              | Truth.Neither -> []
            in
            if queries = [] then
              Format.printf "nothing to explain: no supported information@.";
            List.iter
              (fun q ->
                let js =
                  if all then Explain.all_justifications ~max_nodes kb q
                  else Option.to_list (Explain.justification ~max_nodes kb q)
                in
                List.iteri
                  (fun i j ->
                    Format.printf "@.justification %d for %a:@.%s" (i + 1)
                      Explain.pp_query q
                      (Surface.kb4_to_string j))
                  js)
              queries;
            0
        | _ ->
            (* no query: the contradictions scan is a batched grid — give it
               the pool; the per-candidate justification probes stay serial *)
            let t = Para.create ~config:{ Oracle.default_config with Oracle.jobs = jobs; max_nodes = max_nodes } kb in
            let explained = Explain.contradictions_explained ~max_nodes t in
            if explained = [] then
              Format.printf "no localized contradictions@."
            else
              List.iter
                (fun (a, cname, j) ->
                  Format.printf "%s : %s = TOP, because:@.%s@." a cname
                    (Surface.kb4_to_string j))
                explained;
            0)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Pinpoint the axioms responsible for an answer (or for every \
          localized contradiction when no query is given).")
    Term.(
      const run $ file_arg $ individual $ concept_src $ all $ max_nodes_arg
      $ jobs_arg $ obs_term)

let explain_plan_cmd =
  let cq_required =
    Arg.(
      required
      & opt (some string) None
      & info [ "cq" ] ~docv:"CQ"
          ~doc:
            "Conjunctive query to plan, e.g. '?x <- Doctor(?x), \
             hasPatient(?x, ?y)'.")
  in
  let join_arg =
    let join_conv =
      Arg.conv
        ( (fun s ->
            match Cq.Plan.strategy_of_name s with
            | Some st -> Ok st
            | None -> Error (`Msg ("unknown join strategy " ^ s))),
          fun ppf st ->
            Format.pp_print_string ppf (Cq.Plan.strategy_name st) )
    in
    Arg.(
      value
      & opt (some join_conv) None
      & info [ "join" ] ~docv:"S"
          ~doc:
            "Force every extension step to one join strategy: $(b,nested) \
             or $(b,hash) (default: adaptive by intermediate binding-set \
             cardinality; the DL4_JOIN environment variable sets the same \
             knob).")
  in
  let threshold_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "threshold" ] ~docv:"N"
          ~doc:
            "Binding-set cardinality at which extension steps switch from \
             nested-loop to hash-join (default 8; DL4_JOIN_THRESHOLD sets \
             the same knob).")
  in
  let order_arg =
    let order_conv =
      Arg.conv
        ( (fun s ->
            match s with
            | "cost" -> Ok `Cost
            | "syntactic" -> Ok `Syntactic
            | _ -> Error (`Msg ("unknown order " ^ s))),
          fun ppf o ->
            Format.pp_print_string ppf
              (match o with `Cost -> "cost" | `Syntactic -> "syntactic") )
    in
    Arg.(
      value & opt order_conv `Cost
      & info [ "order" ] ~docv:"O"
          ~doc:
            "Atom order: $(b,cost) (default, cheapest-first by estimated \
             selectivity × probe cost) or $(b,syntactic) (body order — the \
             bench baseline).")
  in
  let execute_flag =
    Arg.(
      value & flag
      & info [ "execute" ]
          ~doc:
            "Run the plan before printing it, so the description carries \
             actual per-step cardinalities, probe counts and the join \
             strategies picked.")
  in
  let text_flag =
    Arg.(
      value & flag
      & info [ "text" ]
          ~doc:
            "Human-readable rendering instead of the default single-line \
             dl4-plan/1 JSON.")
  in
  let run file cqsrc join threshold order execute text max_nodes max_branches
      jobs backend from_snapshot obs =
    with_obs ~cmd:"explain-plan" obs (fun () ->
        let kb = load_kb4 file in
        let q = load_cq cqsrc in
        let config =
          make_config ~jobs ~max_nodes ~max_branches
            ~cache_size:Engine.default_cache_capacity ~no_cache:false ~backend
        in
        let t = Para.of_session (session_of ~config ~from_snapshot kb) in
        let plan = Cq.compile ?threshold ?force:join ~order t q in
        if execute then
          ignore (Cq.run plan : (string list * Truth.t) list);
        if text then print_plan_text (Cq.explain plan)
        else print_endline (Cq.explain_json plan);
        0)
  in
  Cmd.v
    (Cmd.info "explain-plan"
       ~doc:
         "Compile a conjunctive query into its cost-based execution plan \
          and print the stable machine-readable description (dl4-plan/1) \
          without running it (unless --execute).")
    Term.(
      const run $ file_arg $ cq_required $ join_arg $ threshold_arg
      $ order_arg $ execute_flag $ text_flag $ max_nodes_arg
      $ max_branches_arg $ jobs_arg $ backend_arg $ from_snapshot_arg
      $ obs_term)

let repair_cmd =
  let run file =
    let kb = load_kb file in
    print_string (Surface.kb_to_string (Baselines.stratified_repair kb));
    0
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Print a maximal consistent sub-KB of a classical KB \
          (stratification baseline; TBox preferred over ABox).")
    Term.(const run $ file_arg)

let stats_cmd =
  let run file classical owl =
    let stats =
      if owl then Kb_stats.of_kb (load_owl file)
      else if classical then Kb_stats.of_kb (load_kb file)
      else Kb_stats.of_kb4 (load_kb4 file)
    in
    Format.printf "%a@." Kb_stats.pp stats;
    0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Knowledge-base metrics and DL expressivity (e.g. SHOIN(D)).")
    Term.(const run $ file_arg $ classical_flag $ owl_flag)

let fragment_cmd =
  let run file classical owl =
    let verdict =
      if classical || owl then
        let kb = if owl then load_owl file else load_kb file in
        match Fragment.check kb with
        | Fragment.Eligible -> Ok ()
        | Fragment.Ineligible { offender; reason } ->
            let axiom =
              match offender with
              | Fragment.Tbox ax -> Format.asprintf "%a" Axiom.pp_tbox_axiom ax
              | Fragment.Abox ax -> Format.asprintf "%a" Axiom.pp_abox_axiom ax
            in
            Error (axiom, reason)
      else
        match Fragment.check_kb4 (load_kb4 file) with
        | Ok () -> Ok ()
        | Error (offender, reason) ->
            let axiom =
              match offender with
              | `Tbox ax -> Format.asprintf "%a" Kb4.pp_tbox_axiom ax
              | `Abox ax -> Format.asprintf "%a" Axiom.pp_abox_axiom ax
            in
            Error (axiom, reason)
    in
    match verdict with
    | Ok () ->
        Format.printf
          "Horn fragment: eligible@.the completion backend decides every \
           routed query for this KB (--backend auto routes to it)@.";
        0
    | Error (axiom, reason) ->
        Format.printf "Horn fragment: NOT eligible (%s)@." reason;
        Format.printf "first offending axiom:@.  | %s@." axiom;
        Format.printf
          "queries on this KB take the tableau backend (--backend horn \
           would fail)@.";
        1
  in
  Cmd.v
    (Cmd.info "fragment"
       ~doc:
         "Classify the KB against the Horn/EL fragment the completion \
          backend decides.  In four-valued mode (the default) the verdict \
          is about the transformed classical KB of Definition 7, but the \
          offending axiom reported is the four-valued axiom whose \
          translation breaks the fragment.  Exits 0 when eligible, 1 when \
          not.")
    Term.(const run $ file_arg $ classical_flag $ owl_flag)

let convert_cmd =
  let to_owl =
    Arg.(
      value & flag
      & info [ "to-owl" ]
          ~doc:"Convert dl4 surface syntax (classical mode, <<) to OWL \
                functional syntax.")
  in
  let from_owl =
    Arg.(
      value & flag
      & info [ "from-owl" ]
          ~doc:"Convert OWL functional syntax to dl4 surface syntax.")
  in
  let run file to_owl from_owl =
    if to_owl then begin
      print_string (Owl_functional.to_functional (load_kb file));
      0
    end
    else if from_owl then begin
      print_string (Surface.kb_to_string (load_owl file));
      0
    end
    else begin
      Format.eprintf "convert: pass --to-owl or --from-owl@.";
      2
    end
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Convert between the dl4 surface syntax and OWL 2 \
             functional-style syntax.")
    Term.(const run $ file_arg $ to_owl $ from_owl)

(* ------------------------------------------------------------------ *)
(* dl4 profile — offline analysis of the diagnostic artefacts the other
   subcommands write: a --metrics-json registry dump, a --trace Chrome
   timeline, a --slow-log JSONL file and a --flight recorder dump. *)

let profile_cmd =
  let metrics =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Metrics registry JSON written by --metrics-json.")
  in
  let trace =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Chrome trace_event timeline written by --trace.")
  in
  let slow =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "slow-log" ] ~docv:"FILE"
          ~doc:"Slow-query JSONL log written by --slow-log or DL4_SLOW_LOG.")
  in
  let flight =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:"Flight-recorder dump written by --flight or DL4_FLIGHT.")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K" ~doc:"Rows per hotspot table.")
  in
  let parse_json path =
    match Json_lite.parse (read_file path) with
    | Ok j -> Some j
    | Error e ->
        Format.eprintf "%s: %s@." path e;
        None
  in
  let num j = Option.value ~default:Float.nan (Json_lite.to_num j) in
  let mem_num name j =
    match Json_lite.member name j with Some v -> num v | None -> Float.nan
  in
  let mem_str name j =
    match Json_lite.member name j with
    | Some v -> Option.value ~default:"" (Json_lite.to_str v)
    | None -> ""
  in
  let take k l = List.filteri (fun i _ -> i < k) l in
  let ms ns = ns /. 1e6 in
  (* [name.count]/[name.sum_ns]/[name.buckets] triples back into
     histograms; every other numeric key is a counter or gauge. *)
  let profile_metrics top j =
    let kvs = match j with Json_lite.Obj kvs -> kvs | _ -> [] in
    let strip key suffix =
      if String.ends_with ~suffix key then
        Some (String.sub key 0 (String.length key - String.length suffix))
      else None
    in
    let hist = Hashtbl.create 16 in
    let hist_field key suffix =
      match strip key suffix with
      | None -> None
      | Some base ->
          if not (Hashtbl.mem hist base) then
            Hashtbl.add hist base (ref 0, ref 0.0, ref []);
          Some (Hashtbl.find hist base)
    in
    let scalars =
      List.filter
        (fun (key, v) ->
          match hist_field key ".count" with
          | Some (c, _, _) ->
              c := int_of_float (num v);
              false
          | None -> (
              match hist_field key ".sum_ns" with
              | Some (_, s, _) ->
                  s := num v;
                  false
              | None -> (
                  match hist_field key ".buckets" with
                  | Some (_, _, b) ->
                      (match v with
                      | Json_lite.Arr pairs ->
                          b :=
                            List.filter_map
                              (function
                                | Json_lite.Arr [ i; c ] ->
                                    Some
                                      (int_of_float (num i),
                                       int_of_float (num c))
                                | _ -> None)
                              pairs
                      | _ -> ());
                      false
                  | None -> true)))
        kvs
    in
    let hists =
      Hashtbl.fold (fun base (c, s, b) acc -> (base, !c, !s, !b) :: acc) hist []
      |> List.sort (fun (_, _, s1, _) (_, _, s2, _) -> compare s2 s1)
    in
    if hists <> [] then begin
      Format.printf "@.timings (from log2 buckets; quantiles exact only at \
                     bucket boundaries, within 2x inside):@.";
      Format.printf "  %-34s %9s %11s %9s %9s %9s %9s@." "histogram" "count"
        "total_ms" "mean_ms" "p50_ms" "p90_ms" "p99_ms";
      List.iter
        (fun (base, count, sum_ns, buckets) ->
          let q p = ms (Obs.quantile_of_buckets buckets p) in
          Format.printf "  %-34s %9d %11.2f %9.3f %9.3f %9.3f %9.3f@." base
            count (ms sum_ns)
            (if count = 0 then 0.0 else ms (sum_ns /. float_of_int count))
            (q 0.5) (q 0.9) (q 0.99))
        (take top hists)
    end;
    let counters =
      List.filter_map
        (fun (key, v) ->
          let x = num v in
          if Float.is_nan x || x = 0.0 then None else Some (key, x))
        scalars
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    if counters <> [] then begin
      Format.printf "@.top counters/gauges:@.";
      List.iter
        (fun (key, v) -> Format.printf "  %-44s %14.0f@." key v)
        (take top counters)
    end
  in
  (* hotspots by inclusive span time: total/call-count per span name,
     and the per-category split of the total recorded time *)
  let profile_trace top j =
    let events =
      match Json_lite.member "traceEvents" j with
      | Some (Json_lite.Arr l) -> l
      | _ -> []
    in
    let by_name = Hashtbl.create 16 and by_cat = Hashtbl.create 8 in
    let add tbl key dur =
      let c, t =
        match Hashtbl.find_opt tbl key with Some x -> x | None -> (0, 0.0)
      in
      Hashtbl.replace tbl key (c + 1, t +. dur)
    in
    List.iter
      (fun e ->
        let dur_us = mem_num "dur" e in
        if not (Float.is_nan dur_us) then begin
          add by_name (mem_str "name" e) dur_us;
          add by_cat (mem_str "cat" e) dur_us
        end)
      events;
    let rows tbl =
      Hashtbl.fold (fun k (c, t) acc -> (k, c, t) :: acc) tbl []
      |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
    in
    let names = rows by_name in
    Format.printf "@.span hotspots (inclusive time over %d events):@."
      (List.length events);
    Format.printf "  %-34s %9s %11s %11s@." "span" "calls" "total_ms"
      "mean_ms";
    List.iter
      (fun (name, calls, total_us) ->
        Format.printf "  %-34s %9d %11.2f %11.3f@." name calls
          (total_us /. 1e3)
          (total_us /. 1e3 /. float_of_int calls))
      (take top names);
    let cats = rows by_cat in
    let grand = List.fold_left (fun a (_, _, t) -> a +. t) 0.0 cats in
    if grand > 0.0 then begin
      Format.printf "@.by category:@.";
      List.iter
        (fun (cat, _, total_us) ->
          Format.printf "  %-34s %11.2f ms  %5.1f%%@." cat (total_us /. 1e3)
            (100.0 *. total_us /. grand))
        cats
    end
  in
  let profile_slow top path =
    let lines =
      String.split_on_char '\n' (read_file path)
      |> List.filter (fun l -> String.trim l <> "")
    in
    let records =
      List.filter_map (fun l -> Result.to_option (Json_lite.parse l)) lines
    in
    Format.printf "@.slow queries (%d records, %d parsed):@."
      (List.length lines) (List.length records);
    Format.printf "  %-10s %-44s %-8s %9s %7s %8s@." "wall_ms" "query"
      "backend" "nodes" "runs" "branches";
    let sorted =
      List.sort
        (fun a b -> compare (mem_num "wall_ms" b) (mem_num "wall_ms" a))
        records
    in
    List.iter
      (fun r ->
        Format.printf "  %-10.2f %-44s %-8s %9.0f %7.0f %8.0f@."
          (mem_num "wall_ms" r)
          (mem_str "query" r) (mem_str "backend" r) (mem_num "nodes" r)
          (mem_num "runs" r)
          (mem_num "branches" r))
      (take top sorted)
  in
  let profile_flight top j =
    let domains =
      match Json_lite.member "domains" j with
      | Some (Json_lite.Arr l) -> l
      | _ -> []
    in
    let kinds = Hashtbl.create 16 in
    let trips = ref [] in
    let total = ref 0 and dropped = ref 0 in
    List.iter
      (fun d ->
        total := !total + int_of_float (mem_num "total" d);
        dropped := !dropped + int_of_float (mem_num "dropped" d);
        match Json_lite.member "events" d with
        | Some (Json_lite.Arr evs) ->
            List.iter
              (fun e ->
                let kind = mem_str "kind" e in
                Hashtbl.replace kinds kind
                  (1
                  + Option.value ~default:0 (Hashtbl.find_opt kinds kind));
                if kind = "trip" then
                  trips :=
                    (mem_num "ns" e, mem_str "note" e, mem_num "tid" d)
                    :: !trips)
              evs
        | _ -> ())
      domains;
    Format.printf
      "@.flight recording (%s): %d domains, %d events recorded, %d rotated \
       out, %.0f dropped from extra domains@."
      (mem_str "schema" j) (List.length domains) !total !dropped
      (mem_num "overflow_dropped" j);
    List.iter
      (fun (ns, note, tid) ->
        Format.printf "  TRIP at +%.3f ms on domain %.0f: %s@." (ms ns) tid
          note)
      (List.rev !trips);
    let by_kind =
      Hashtbl.fold (fun k c acc -> (k, c) :: acc) kinds []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    Format.printf "  retained events by kind:@.";
    List.iter
      (fun (k, c) -> Format.printf "    %-32s %9d@." k c)
      (take top by_kind)
  in
  let run metrics trace slow flight top =
    if metrics = None && trace = None && slow = None && flight = None then begin
      Format.eprintf
        "profile: pass at least one of --metrics, --trace, --slow-log, \
         --flight@.";
      2
    end
    else begin
      let failed = ref false in
      let with_file path f =
        match parse_json path with
        | Some j -> f j
        | None -> failed := true
      in
      Option.iter (fun p -> with_file p (profile_metrics top)) metrics;
      Option.iter (fun p -> with_file p (profile_trace top)) trace;
      Option.iter (profile_slow top) slow;
      Option.iter (fun p -> with_file p (profile_flight top)) flight;
      if !failed then 2 else 0
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Analyse diagnostic artefacts offline: hotspot tables and \
          p50/p90/p99 latencies from a --metrics-json dump, inclusive span \
          hotspots from a --trace timeline, the slowest verdicts of a \
          --slow-log file and the event mix of a --flight recording.")
    Term.(const run $ metrics $ trace $ slow $ flight $ top)

(* ------------------------------------------------------------------ *)
(* dl4 snapshot / serve / client — the persistent-store subsystem. *)

let snapshot_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"SNAP"
          ~doc:"Snapshot file to write (conventionally *.snap).")
  in
  let cold =
    Arg.(
      value & flag
      & info [ "cold" ]
          ~doc:
            "Skip warming: snapshot only the transformed KB and whatever \
             state exists (useful to freeze a session's exact state).  By \
             default the session is warmed first — consistency, the full \
             atomic truth grid and the classification index — so restored \
             sessions answer atomic queries with zero tableau calls.")
  in
  let run file out cold max_nodes max_branches cache_size no_cache jobs backend
      from_snapshot obs =
    with_obs ~cmd:"snapshot" obs (fun () ->
        let kb = load_kb4 file in
        let config =
          make_config ~jobs ~max_nodes ~max_branches ~cache_size ~no_cache
            ~backend
        in
        let s = session_of ~config ~from_snapshot kb in
        if not cold then warm_session s;
        let snap = Store.capture s in
        match Store.save snap out with
        | Error e ->
            Format.eprintf "snapshot: %s@." (Store.error_to_string e);
            2
        | Ok () ->
            Format.printf "wrote %s@.%a@." out Store.pp_summary snap;
            0)
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Build (and by default warm) a session over the KB and freeze it \
          to a versioned snapshot file.  Any subcommand can then \
          warm-start from it with --from-snapshot; 'dl4 serve' can load \
          and autosave it.")
    Term.(
      const run $ file_arg $ out $ cold $ max_nodes_arg $ max_branches_arg
      $ cache_size_arg $ no_cache_flag $ jobs_arg $ backend_arg
      $ from_snapshot_arg $ obs_term)

let serve_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket path to listen on (created, and removed \
                on shutdown).")
  in
  let snapshot_to =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot-to" ] ~docv:"SNAP"
          ~doc:
            "Autosave target: the daemon snapshots its warm state here \
             when idle (see --idle-save), on the 'snapshot' request and at \
             shutdown.  Defaults to the --from-snapshot path when that is \
             given.")
  in
  let idle_save =
    Arg.(
      value & opt float 30.0
      & info [ "idle-save" ] ~docv:"SEC"
          ~doc:
            "Seconds of idle traffic after which a dirty session (new \
             verdicts or applied deltas since the last save) is \
             autosaved.  0 disables the idle tick.")
  in
  let cold =
    Arg.(
      value & flag
      & info [ "cold" ]
          ~doc:"Do not pre-warm the session before serving (default: warm \
                consistency, the atomic truth grid and classification).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write a Prometheus-style text exposition of the daemon's \
             telemetry registry to $(docv), atomically (tmp + rename), \
             at startup, at shutdown and at most every --metrics-interval \
             seconds while serving.  Point a scraper or 'watch cat' at \
             it.")
  in
  let metrics_interval =
    Arg.(
      value & opt float 5.0
      & info [ "metrics-interval" ] ~docv:"SEC"
          ~doc:"Seconds between --metrics-out rewrites (clamped to >= \
                0.05).")
  in
  let access_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSONL line per request to $(docv): timestamp, \
             trace ID, op, outcome, wall ns, backend routes, cache hits, \
             tableau calls.  Buffered (flushed on the metrics tick and at \
             shutdown); rotated once to $(docv).1 when it would exceed \
             --access-log-rotate bytes.")
  in
  let access_log_rotate =
    Arg.(
      value
      & opt int Serve.default_access_log_max_bytes
      & info [ "access-log-rotate" ] ~docv:"BYTES"
          ~doc:"Rotate the access log when it would exceed $(docv) bytes \
                (default 16 MiB, clamped to >= 1024).")
  in
  let no_telemetry =
    Arg.(
      value & flag
      & info [ "no-telemetry" ]
          ~doc:
            "Disarm the per-request telemetry plane: no trace IDs, no \
             per-op registry, no 'metrics' op, no access log.  Exists as \
             the baseline bench S11 measures overhead against; leave it \
             off in production.")
  in
  let drift_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "drift-log" ] ~docv:"FILE"
          ~doc:
            "Track truth-value drift: bracket every 'update' request with \
             a census and append one JSONL record per delta that changed \
             any fact's exact value (e.g. t -> TOP when a delta poisons \
             the KB) to $(docv).  Arming this makes updates pay up to two \
             censuses each.")
  in
  let run file socket snapshot_to idle_save cold metrics_out metrics_interval
      access_log access_log_rotate no_telemetry drift_log max_nodes
      max_branches cache_size no_cache jobs backend from_snapshot obs =
    with_obs ~cmd:"serve" obs (fun () ->
        let kb = load_kb4 file in
        let config =
          make_config ~jobs ~max_nodes ~max_branches ~cache_size ~no_cache
            ~backend
        in
        let s = session_of ~config ~from_snapshot kb in
        if not cold then warm_session s;
        let snapshot_path =
          match snapshot_to with Some _ -> snapshot_to | None -> from_snapshot
        in
        let t =
          Serve.create ?snapshot_path ~telemetry:(not no_telemetry)
            ?access_log ~access_log_max_bytes:access_log_rotate ?drift_log s
        in
        Format.printf "dl4 serve: listening on %s (NDJSON; ops: check query \
                       retrieve classify update stats metrics audit \
                       snapshot shutdown)@."
          socket;
        Serve.run ~idle_save ?metrics_out ~metrics_interval
          ~socket_path:socket t;
        Format.printf "dl4 serve: shut down@.";
        0)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running daemon: hold one warm session over the KB and \
          answer newline-delimited JSON requests on a Unix-domain socket.  \
          Every response carries the request's trace ID and marginal cost \
          (tableau calls, cache hits, wall time) so clients can verify \
          they are being served warm and correlate the daemon's logs.  \
          Query it with 'dl4 client' or nc, watch it with 'dl4 top', \
          scrape it with --metrics-out.")
    Term.(
      const run $ file_arg $ socket $ snapshot_to $ idle_save $ cold
      $ metrics_out $ metrics_interval $ access_log $ access_log_rotate
      $ no_telemetry $ drift_log $ max_nodes_arg $ max_branches_arg
      $ cache_size_arg $ no_cache_flag $ jobs_arg $ backend_arg
      $ from_snapshot_arg $ obs_term)

let client_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Socket of a running dl4 serve.")
  in
  let request =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REQUEST"
          ~doc:"One JSON request object, e.g. \
                '{\"op\":\"query\",\"individual\":\"tweety\",\
                \"concept\":\"Fly\"}'.")
  in
  let timeout =
    Arg.(
      value & opt int 0
      & info [ "timeout" ] ~docv:"MS"
          ~doc:
            "Give up after $(docv) milliseconds waiting on the daemon \
             (connect, send or receive), exit 1 with a clear message \
             instead of hanging forever.  0 (the default) waits \
             indefinitely.")
  in
  let run socket timeout request =
    let timeout_ms = if timeout > 0 then Some timeout else None in
    match Serve.request ?timeout_ms ~socket_path:socket request with
    | response -> (
        print_endline response;
        (* a protocol-level error ("ok":false) must surface in the exit
           code — scripts and CI legs check $? and previously saw 0 *)
        match Json_lite.parse response with
        | Ok j -> (
            match Json_lite.member "ok" j with
            | Some (Json_lite.Bool true) -> 0
            | Some _ -> 1
            | None -> 0)
        | Error _ -> 0)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _) ->
        Format.eprintf
          "client: %s: timed out after %d ms waiting for the daemon@." socket
          timeout;
        1
    | exception Unix.Unix_error (err, _, _) ->
        Format.eprintf "client: %s: %s@." socket (Unix.error_message err);
        2
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request line to a running 'dl4 serve' daemon and print \
          the response line (a netcat-free way to drive the protocol, \
          used by the CI smoke test).")
    Term.(const run $ socket $ timeout $ request)

(* dl4 top: poll a running daemon's [metrics] op and render a live
   terminal dashboard — the operator's view of the telemetry plane. *)
let top_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Socket of a running dl4 serve.")
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SEC"
          ~doc:"Seconds between polls (clamped to >= 0.1).")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:"Render $(docv) frames, then exit 0.  0 (the default) \
                polls until interrupted or the daemon goes away.")
  in
  let no_clear =
    Arg.(
      value & flag
      & info [ "no-clear" ]
          ~doc:"Do not clear the screen between frames (append frames \
                instead) — for transcripts, pipes and CI.")
  in
  let pretty_ns ns =
    if Float.is_nan ns then "-"
    else if ns < 1e3 then Printf.sprintf "%.0fns" ns
    else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
    else if ns < 1e9 then Printf.sprintf "%.1fms" (ns /. 1e6)
    else Printf.sprintf "%.2fs" (ns /. 1e9)
  in
  let pretty_uptime s =
    if s < 60. then Printf.sprintf "%.0fs" s
    else if s < 3600. then Printf.sprintf "%.0fm%02.0fs" (Float.of_int (int_of_float s / 60)) (Float.rem s 60.)
    else
      Printf.sprintf "%dh%02dm" (int_of_float s / 3600)
        (int_of_float s mod 3600 / 60)
  in
  let num ~default name j =
    match Option.bind (Json_lite.member name j) Json_lite.to_num with
    | Some f -> f
    | None -> default
  in
  let render socket j cache =
    let uptime = num ~default:0.0 "uptime_s" j in
    let requests = int_of_float (num ~default:0.0 "requests" j) in
    let errors = int_of_float (num ~default:0.0 "errors" j) in
    let hits = num ~default:0.0 "hits" cache in
    let misses = num ~default:0.0 "misses" cache in
    let hit_rate =
      if hits +. misses <= 0.0 then Float.nan
      else 100.0 *. hits /. (hits +. misses)
    in
    Format.printf "dl4 top — %s — up %s — %d requests (%d errors) — cache hit rate %s@."
      socket (pretty_uptime uptime) requests errors
      (if Float.is_nan hit_rate then "-"
       else Printf.sprintf "%.1f%%" hit_rate);
    (* the KB-health row: present once the daemon has refreshed its
       snapshot; census numbers appear after the first audit *)
    (match Json_lite.member "kb" j with
    | Some kb ->
        let kint name = int_of_float (num ~default:0.0 name kb) in
        let truth =
          match Json_lite.member "truth" kb with
          | Some (Json_lite.Obj fields) ->
              Printf.sprintf " — truth %s — inconsistency %.2f%%"
                (String.concat " "
                   (List.map
                      (fun (v, n) ->
                        Printf.sprintf "%s:%.0f" v
                          (Option.value ~default:0.0 (Json_lite.to_num n)))
                      fields))
                (100.0 *. num ~default:0.0 "inconsistency_ratio" kb)
          | _ -> ""
        in
        Format.printf
          "  KB: %d individuals — %d tbox + %d abox axioms — %d cached \
           verdicts%s@."
          (kint "individuals") (kint "tbox_axioms") (kint "abox_axioms")
          (kint "cached_verdicts") truth
    | None -> ());
    Format.printf "@.  %-10s %6s %5s %10s %10s %10s   %s@." "OP" "REQ" "ERR"
      "P50" "P90" "P99" "ROUTES";
    let ops =
      match Option.bind (Json_lite.member "ops" j) Json_lite.to_list with
      | Some l -> l
      | None -> []
    in
    List.iter
      (fun op ->
        let name =
          Option.value ~default:"?"
            (Option.bind (Json_lite.member "op" op) Json_lite.to_str)
        in
        let counter_mix field =
          match Json_lite.member field op with
          | Some (Json_lite.Obj fields) ->
              String.concat "  "
                (List.map
                   (fun (b, v) ->
                     Printf.sprintf "%s %.0f" b
                       (Option.value ~default:0.0 (Json_lite.to_num v)))
                   fields)
          | _ -> ""
        in
        let routes =
          match (counter_mix "routes", counter_mix "strategies") with
          | r, "" -> r
          | "", s -> s
          | r, s -> r ^ "  " ^ s
        in
        Format.printf "  %-10s %6.0f %5.0f %10s %10s %10s   %s@." name
          (num ~default:0.0 "requests" op)
          (num ~default:0.0 "errors" op)
          (pretty_ns (num ~default:Float.nan "p50_ns" op))
          (pretty_ns (num ~default:Float.nan "p90_ns" op))
          (pretty_ns (num ~default:Float.nan "p99_ns" op))
          routes)
      ops;
    Format.printf "@."
  in
  let run socket interval count no_clear =
    let interval = Float.max 0.1 interval in
    let poll () =
      match
        Serve.request ~timeout_ms:5000 ~socket_path:socket "{\"op\":\"metrics\"}"
      with
      | response -> (
          match Json_lite.parse response with
          | Error msg -> Error (Printf.sprintf "unparsable response: %s" msg)
          | Ok j -> (
              match Json_lite.member "ok" j with
              | Some (Json_lite.Bool true) -> (
                  match Json_lite.member "metrics" j with
                  | Some m ->
                      let cache =
                        Option.value ~default:Json_lite.Null
                          (Json_lite.member "cache" j)
                      in
                      Ok (m, cache)
                  | None -> Error "response carries no metrics object")
              | _ ->
                  let msg =
                    Option.value ~default:"daemon refused the metrics op"
                      (Option.bind (Json_lite.member "error" j)
                         Json_lite.to_str)
                  in
                  Error msg))
      | exception Unix.Unix_error (err, _, _) ->
          Error (Unix.error_message err)
    in
    let rec frames n =
      match poll () with
      | Error msg ->
          Format.eprintf "dl4 top: %s: %s@." socket msg;
          2
      | Ok (m, cache) ->
          if not no_clear then print_string "\027[H\027[2J";
          render socket m cache;
          if count > 0 && n + 1 >= count then 0
          else begin
            Unix.sleepf interval;
            frames (n + 1)
          end
    in
    frames 0
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a running 'dl4 serve' daemon: polls the \
          'metrics' op and renders per-op p50/p90/p99 latency, the \
          backend route mix, error counts, cache hit rate and uptime.")
    Term.(const run $ socket $ interval $ count $ no_clear)

let main =
  Cmd.group
    (Cmd.info "dl4" ~version:"1.0.0"
       ~doc:
         "Paraconsistent reasoning with inconsistent OWL DL ontologies via \
          four-valued description logic SHOIN(D)4.")
    [ check_cmd;
      query_cmd;
      audit_cmd;
      classify_cmd;
      realize_cmd;
      update_cmd;
      transform_cmd;
      models_cmd;
      retrieve_cmd;
      explain_cmd;
      explain_plan_cmd;
      repair_cmd;
      stats_cmd;
      fragment_cmd;
      convert_cmd;
      profile_cmd;
      snapshot_cmd;
      serve_cmd;
      client_cmd;
      top_cmd ]

let () = exit (Cmd.eval' main)
