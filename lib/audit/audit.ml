(* The inconsistency audit plane: census, report, drift.  Every verdict
   routes through the Para grid paths (and so the oracle); this module
   never calls the tableau directly. *)

type fact =
  | Concept_fact of string * string
  | Role_fact of string * Role.t * string

let fact_to_string = function
  | Concept_fact (a, c) -> c ^ "(" ^ a ^ ")"
  | Role_fact (a, r, b) -> Role.to_string r ^ "(" ^ a ^ ", " ^ b ^ ")"

type census = {
  cs_individuals : int;
  cs_concepts : int;
  cs_role_facts : int;
  cs_entries : (fact * Truth.t) list;
}

(* the swept fact space, in the stable order both census variants use *)
let fact_space para =
  let kb = Para.kb para in
  let signature = Kb4.signature kb in
  let individuals = signature.Axiom.individuals in
  let concepts = List.sort_uniq String.compare signature.Axiom.concepts in
  let grid =
    List.concat_map
      (fun a -> List.map (fun c -> (a, c)) concepts)
      individuals
  in
  let role_facts =
    List.sort_uniq compare
      (List.filter_map
         (function
           | Axiom.Role_assertion (a, r, b) -> Some (a, r, b)
           | _ -> None)
         kb.Kb4.abox)
  in
  (individuals, concepts, grid, role_facts)

let make_census ~individuals ~concepts ~role_facts entries =
  { cs_individuals = List.length individuals;
    cs_concepts = List.length concepts;
    cs_role_facts = List.length role_facts;
    cs_entries = entries }

let census para =
  Obs.with_span ~cat:"audit" "audit.census" (fun () ->
      let individuals, concepts, grid, role_facts = fact_space para in
      let concept_entries =
        List.map2
          (fun (a, c) (_, _, v) -> (Concept_fact (a, c), v))
          grid
          (Para.instance_truths para
             (List.map (fun (a, c) -> (a, Concept.Atom c)) grid))
      in
      let role_entries =
        List.map
          (fun (a, r, b, v) -> (Role_fact (a, r, b), v))
          (Para.role_truths para role_facts)
      in
      make_census ~individuals ~concepts ~role_facts
        (concept_entries @ role_entries))

let census_naive para =
  let individuals, concepts, grid, role_facts = fact_space para in
  let concept_entries =
    List.map
      (fun (a, c) ->
        (Concept_fact (a, c), Para.instance_truth para a (Concept.Atom c)))
      grid
  in
  let role_entries =
    List.map
      (fun (a, r, b) -> (Role_fact (a, r, b), Para.role_truth para a r b))
      role_facts
  in
  make_census ~individuals ~concepts ~role_facts
    (concept_entries @ role_entries)

(* ---- derived health numbers --------------------------------------- *)

let count cs v =
  List.fold_left
    (fun n (_, v') -> if Truth.equal v v' then n + 1 else n)
    0 cs.cs_entries

let decided cs =
  List.fold_left
    (fun n (_, v) ->
      match v with
      | Truth.True | Truth.False | Truth.Both -> n + 1
      | Truth.Neither -> n)
    0 cs.cs_entries

let inconsistency_ratio cs =
  let d = decided cs in
  if d = 0 then 0. else float_of_int (count cs Truth.Both) /. float_of_int d

let tbl_add tbl k n =
  Hashtbl.replace tbl k (n + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let per_concept cs =
  let b = Hashtbl.create 16 and dec = Hashtbl.create 16 in
  List.iter
    (fun (f, v) ->
      match f with
      | Concept_fact (_, c) ->
          (match v with
          | Truth.Both ->
              tbl_add b c 1;
              tbl_add dec c 1
          | Truth.True | Truth.False -> tbl_add dec c 1
          | Truth.Neither -> ());
          (* make sure every swept concept appears, decided or not *)
          tbl_add dec c 0
      | Role_fact _ -> ())
    cs.cs_entries;
  List.sort
    (fun (c1, _, _) (c2, _, _) -> String.compare c1 c2)
    (Hashtbl.fold
       (fun c d acc ->
         (c, Option.value ~default:0 (Hashtbl.find_opt b c), d) :: acc)
       dec [])

let top_of tally k =
  let ranked =
    List.sort
      (fun (n1, x1) (n2, x2) ->
        match Int.compare n2 n1 with 0 -> String.compare x1 x2 | c -> c)
      (Hashtbl.fold (fun x n acc -> if n > 0 then (n, x) :: acc else acc)
         tally [])
  in
  List.filteri (fun i _ -> i < k) (List.map (fun (n, x) -> (x, n)) ranked)

let top_individuals cs ~k =
  let tally = Hashtbl.create 16 in
  List.iter
    (fun (f, v) ->
      if Truth.equal v Truth.Both then
        match f with
        | Concept_fact (a, _) -> tbl_add tally a 1
        | Role_fact (a, _, b) ->
            tbl_add tally a 1;
            if a <> b then tbl_add tally b 1)
    cs.cs_entries;
  top_of tally k

let top_concepts cs ~k =
  let tally = Hashtbl.create 16 in
  List.iter
    (fun (f, v) ->
      match (f, v) with
      | Concept_fact (_, c), Truth.Both -> tbl_add tally c 1
      | _ -> ())
    cs.cs_entries;
  top_of tally k

(* ---- the dl4-audit/1 report --------------------------------------- *)

let schema = "dl4-audit/1"

(* hand-rolled JSON, like every export sink in this stack *)
let jstr b s = Buffer.add_string b ("\"" ^ Obs.json_escape s ^ "\"")

let jlist b xs f =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      f x)
    xs;
  Buffer.add_char b ']'

(* union of the oracle provenance of an individual's ⊤-valued concept
   facts — present only while the verdicts are cache-resident *)
let provenance_of para cs a =
  let oracle = Para.oracle para in
  let inds = ref [] and cons = ref [] in
  let add (p : Oracle.prov_entry) =
    inds := p.Oracle.individuals @ !inds;
    cons := p.Oracle.concepts @ !cons
  in
  List.iter
    (fun (f, v) ->
      match f with
      | Concept_fact (a', c) when a' = a && Truth.equal v Truth.Both ->
          List.iter
            (fun q -> Option.iter add (Oracle.provenance oracle q))
            [ Oracle.Instance (a, Concept.Atom c);
              Oracle.Not_instance (a, Concept.Atom c) ]
      | _ -> ())
    cs.cs_entries;
  ( List.sort_uniq String.compare !inds,
    List.sort_uniq String.compare !cons )

let report_json ?(top = 5) ?exactly para cs =
  let b = Buffer.create 1024 in
  let stats = Kb_stats.of_kb4 (Para.kb para) in
  Buffer.add_string b "{\"schema\":";
  jstr b schema;
  Buffer.add_string b ",\"kb\":{\"individuals\":";
  Buffer.add_string b (string_of_int cs.cs_individuals);
  Buffer.add_string b ",\"concepts\":";
  Buffer.add_string b (string_of_int cs.cs_concepts);
  Buffer.add_string b ",\"role_facts\":";
  Buffer.add_string b (string_of_int cs.cs_role_facts);
  Buffer.add_string b ",\"tbox_axioms\":";
  Buffer.add_string b (string_of_int stats.Kb_stats.tbox_axioms);
  Buffer.add_string b ",\"abox_axioms\":";
  Buffer.add_string b (string_of_int stats.Kb_stats.abox_axioms);
  Buffer.add_string b "},\"counts\":{";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      jstr b (Truth.short_string v);
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int (count cs v)))
    Truth.all;
  Buffer.add_string b "},\"decided\":";
  Buffer.add_string b (string_of_int (decided cs));
  Buffer.add_string b ",\"inconsistency_ratio\":";
  Buffer.add_string b (Obs.json_float (inconsistency_ratio cs));
  Buffer.add_string b ",\"per_concept\":";
  jlist b (per_concept cs) (fun (c, bc, dc) ->
      Buffer.add_string b "{\"concept\":";
      jstr b c;
      Buffer.add_string b ",\"B\":";
      Buffer.add_string b (string_of_int bc);
      Buffer.add_string b ",\"decided\":";
      Buffer.add_string b (string_of_int dc);
      Buffer.add_string b ",\"b_rate\":";
      Buffer.add_string b
        (Obs.json_float
           (if dc = 0 then 0. else float_of_int bc /. float_of_int dc));
      Buffer.add_char b '}');
  Buffer.add_string b ",\"top_individuals\":";
  jlist b (top_individuals cs ~k:top) (fun (a, n) ->
      let p_inds, p_cons = provenance_of para cs a in
      Buffer.add_string b "{\"individual\":";
      jstr b a;
      Buffer.add_string b ",\"B\":";
      Buffer.add_string b (string_of_int n);
      Buffer.add_string b ",\"provenance\":{\"individuals\":";
      jlist b p_inds (jstr b);
      Buffer.add_string b ",\"concepts\":";
      jlist b p_cons (jstr b);
      Buffer.add_string b "}}");
  Buffer.add_string b ",\"top_concepts\":";
  jlist b (top_concepts cs ~k:top) (fun (c, n) ->
      Buffer.add_string b "{\"concept\":";
      jstr b c;
      Buffer.add_string b ",\"B\":";
      Buffer.add_string b (string_of_int n);
      Buffer.add_char b '}');
  (match exactly with
  | None -> ()
  | Some values ->
      Buffer.add_string b ",\"exactly\":";
      jlist b values (fun v -> jstr b (Truth.short_string v));
      Buffer.add_string b ",\"facts\":";
      jlist b
        (List.filter (fun (_, v) -> List.mem v values) cs.cs_entries)
        (fun (f, v) ->
          Buffer.add_string b "{\"fact\":";
          jstr b (fact_to_string f);
          Buffer.add_string b ",\"value\":";
          jstr b (Truth.to_string v);
          Buffer.add_char b '}'));
  Buffer.add_char b '}';
  Buffer.contents b

(* ---- drift --------------------------------------------------------- *)

type transition = {
  tr_fact : fact;
  tr_from : Truth.t option;
  tr_to : Truth.t option;
}

let diff before after =
  let old = Hashtbl.create 64 in
  List.iter (fun (f, v) -> Hashtbl.replace old f v) before.cs_entries;
  let survived =
    List.filter_map
      (fun (f, v) ->
        match Hashtbl.find_opt old f with
        | Some v0 ->
            Hashtbl.remove old f;
            if Truth.equal v0 v then None
            else Some { tr_fact = f; tr_from = Some v0; tr_to = Some v }
        | None -> Some { tr_fact = f; tr_from = None; tr_to = Some v })
      after.cs_entries
  in
  let vanished =
    List.filter_map
      (fun (f, v) ->
        if Hashtbl.mem old f then
          Some { tr_fact = f; tr_from = Some v; tr_to = None }
        else None)
      before.cs_entries
  in
  survived @ vanished

let drift_line ?trace ~ts_unix ~before ~after () =
  match diff before after with
  | [] -> None
  | changed ->
      let b = Buffer.create 256 in
      let side = function
        | None -> "-"
        | Some v -> Truth.to_string v
      in
      Buffer.add_string b "{\"ts_unix\":";
      (* epoch with full ms precision: json_float's %.6g would truncate *)
      Buffer.add_string b (Printf.sprintf "%.3f" ts_unix);
      (match trace with
      | None -> ()
      | Some t ->
          Buffer.add_string b ",\"trace\":";
          jstr b t);
      Buffer.add_string b ",\"changed\":";
      jlist b changed (fun tr ->
          Buffer.add_string b "{\"fact\":";
          jstr b (fact_to_string tr.tr_fact);
          Buffer.add_string b ",\"from\":";
          jstr b (side tr.tr_from);
          Buffer.add_string b ",\"to\":";
          jstr b (side tr.tr_to);
          Buffer.add_char b '}');
      Buffer.add_string b ",\"counts\":{";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          jstr b (Truth.short_string v);
          Buffer.add_char b ':';
          Buffer.add_string b (string_of_int (count after v)))
        Truth.all;
      Buffer.add_string b "},\"inconsistency_ratio\":";
      Buffer.add_string b (Obs.json_float (inconsistency_ratio after));
      Buffer.add_char b '}';
      Some (Buffer.contents b)
