(** KB inconsistency auditing: the contradiction census, its stable
    [dl4-audit/1] report, and census-to-census drift records.

    The four-valued semantics assigns every fact one of [t]/[f]/⊤/⊥;
    {!census} sweeps the told fact space — named individuals × atomic
    concepts, plus the told role assertions — through the batched
    {!Para.instance_truths}/{!Para.role_truths} grids and tabulates the
    exact value of every fact.  From the census come the KB-health
    numbers an operator watches: per-value counts, the
    degree-of-inconsistency ratio |⊤| / |decided|, the most-contradictory
    individuals and concepts (with per-verdict provenance when the oracle
    retains it), and per-concept ⊤-rates.  {!diff} compares two censuses
    fact by fact, which is how `dl4 serve` reports a delta poisoning the
    KB ([t]→⊤ transitions) to its drift log. *)

type fact =
  | Concept_fact of string * string  (** individual, atomic concept *)
  | Role_fact of string * Role.t * string  (** told role assertion *)

val fact_to_string : fact -> string
(** [Doctor(john)] / [hasPatient(bill, mary)]. *)

type census = {
  cs_individuals : int;  (** named individuals swept *)
  cs_concepts : int;  (** atomic concepts swept *)
  cs_role_facts : int;  (** told role assertions swept *)
  cs_entries : (fact * Truth.t) list;
      (** every audited fact with its exact value, in a stable order:
          the (individual × sorted concept) grid first — individuals in
          signature order — then the sorted role assertions *)
}

val census : Para.t -> census
(** Sweep the fact space as two batched oracle grids (one
    {!Para.instance_truths} call for the concept grid, one
    {!Para.role_truths} call for the role assertions), so the domain
    pool overlaps the tableau work and repeated questions share one
    verdict. *)

val census_naive : Para.t -> census
(** The per-fact reference: one sequential two-probe
    {!Para.instance_truth}/{!Para.role_truth} call per fact.  Same
    entries as {!census}, in the same order — the differential-testing
    ground truth. *)

(** {1 Derived health numbers} *)

val count : census -> Truth.t -> int
val decided : census -> int
(** Facts carrying any information: value [t], [f] or ⊤. *)

val inconsistency_ratio : census -> float
(** |⊤| / |decided| — the degree of inconsistency ([0.] when nothing is
    decided). *)

val per_concept : census -> (string * int * int) list
(** Per atomic concept: (name, ⊤-count, decided count), every swept
    concept, sorted by name. *)

val top_individuals : census -> k:int -> (string * int) list
(** The at-most-[k] individuals with the most ⊤-valued facts (role facts
    count toward both endpoints), most contradictory first, ties by
    name; individuals with no contradiction are omitted. *)

val top_concepts : census -> k:int -> (string * int) list
(** The at-most-[k] atomic concepts with the most ⊤-valued grid entries,
    most contradictory first, ties by name; zero entries omitted. *)

val schema : string
(** ["dl4-audit/1"]. *)

val report_json :
  ?top:int -> ?exactly:Truth.t list -> Para.t -> census -> string
(** The stable one-line [dl4-audit/1] report: KB dimensions, per-value
    counts, [decided], [inconsistency_ratio], [per_concept] breakdown
    (with ⊤-rates), and the top-[top] (default 5) individuals and
    concepts — each top individual carrying the union of the oracle
    provenance of its contradictory facts, when retained.  With
    [?exactly], a [facts] array additionally lists every audited fact
    whose value is exactly in the set. *)

(** {1 Drift} *)

type transition = {
  tr_fact : fact;
  tr_from : Truth.t option;  (** [None]: fact absent before the delta *)
  tr_to : Truth.t option;  (** [None]: fact absent after the delta *)
}

val diff : census -> census -> transition list
(** Fact-by-fact comparison of two censuses: facts whose value changed
    (e.g. [t]→⊤ — a delta poisoning the KB), facts that appeared, facts
    that vanished.  Ordered as the new census orders surviving facts,
    vanished facts last. *)

val drift_line :
  ?trace:string -> ts_unix:float -> before:census -> after:census -> unit ->
  string option
(** One JSONL drift record for an applied delta — [None] when nothing
    changed.  Carries the changed facts with their old/new values
    (["-"] for absent), the new per-value counts and the new ratio, in
    the access-log/slow-log sink style. *)
