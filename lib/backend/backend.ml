type query =
  | Consistent
  | Concept_sat of Concept.t
  | Instance of string * Concept.t
  | Not_instance of string * Concept.t
  | Role_pos of string * Role.t * string
  | Role_neg of string * Role.t * string

let query_kind = function
  | Consistent -> "consistent"
  | Concept_sat _ -> "concept_sat"
  | Instance _ -> "instance"
  | Not_instance _ -> "not_instance"
  | Role_pos _ -> "role_pos"
  | Role_neg _ -> "role_neg"

let query_to_string = function
  | Consistent -> "consistent?"
  | Concept_sat c -> "sat? " ^ Concept.to_string c
  | Instance (a, c) -> a ^ " : " ^ Concept.to_string c
  | Not_instance (a, c) -> a ^ " : not " ^ Concept.to_string c
  | Role_pos (a, r, b) -> Role.to_string r ^ "(" ^ a ^ ", " ^ b ^ ")"
  | Role_neg (a, r, b) -> "not " ^ Role.to_string r ^ "(" ^ a ^ ", " ^ b ^ ")"

type choice = Auto | Tableau | Horn

let choice_of_string = function
  | "auto" -> Ok Auto
  | "tableau" -> Ok Tableau
  | "horn" -> Ok Horn
  | s -> Error (Printf.sprintf "unknown backend %S (expected auto|tableau|horn)" s)

let choice_to_string = function
  | Auto -> "auto"
  | Tableau -> "tableau"
  | Horn -> "horn"

exception Unsupported of string

module type S = sig
  type t

  val name : string
  val complete_for : Axiom.kb -> bool
  val create : max_nodes:int -> max_branches:int -> Axiom.kb -> t
  val can_answer : t -> query -> bool
  val eval : ?prov:Tableau.prov -> t -> query -> bool
  val stats : t -> Tableau.stats
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed

let pack (type a) (module B : S with type t = a) (inst : a) =
  Packed ((module B), inst)

let name (Packed ((module B), _)) = B.name
let can_answer (Packed ((module B), inst)) q = B.can_answer inst q
let eval ?prov (Packed ((module B), inst)) q = B.eval ?prov inst q
let stats (Packed ((module B), inst)) = B.stats inst
