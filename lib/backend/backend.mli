(** The pluggable decision-procedure interface.

    Every boolean verdict in the system is one of the six [query] forms
    below, asked against the transformed classical KB (K̄).  A backend is
    a decision procedure for some (possibly partial) slice of that
    vocabulary: the tableau answers everything; fragment-specialized
    backends such as the Horn/EL completion engine answer the queries
    whose shape they can decide, on the KBs they are complete for.

    The oracle owns routing: it consults [complete_for] once per KB
    build and [can_answer] once per query, never a backend's internals.
    Nothing outside [lib/engine] may call a backend's [eval] directly —
    verdicts must flow through [Oracle.check] so caching, provenance,
    cost accounting and invalidation stay sound (the differential suite
    greps for violations). *)

(** The closed query vocabulary, shared with [Oracle].  Concepts are the
    user-level four-valued concepts; each backend applies the Definition
    5–7 transform ([Transform]) internally, exactly like the tableau
    path always has. *)
type query =
  | Consistent
  | Concept_sat of Concept.t
  | Instance of string * Concept.t
  | Not_instance of string * Concept.t
  | Role_pos of string * Role.t * string
  | Role_neg of string * Role.t * string

val query_kind : query -> string
(** Short stable tag: ["consistent"], ["concept_sat"], ["instance"],
    ["not_instance"], ["role_pos"], ["role_neg"].  Keys cost records and
    profile grouping. *)

val query_to_string : query -> string
(** Printable form for diagnostics and the slow-query log. *)

(** Backend selection policy, configured per session ([--backend]).
    [Auto] routes each verdict to the cheapest complete backend;
    [Tableau] forces the general tableau; [Horn] forces the completion
    engine and refuses KBs outside its fragment. *)
type choice = Auto | Tableau | Horn

val choice_of_string : string -> (choice, string) result
val choice_to_string : choice -> string

exception Unsupported of string
(** Raised when a forced backend ([choice = Horn]) is asked to build
    against a KB outside its complete fragment.  The payload names the
    first offending axiom. *)

(** What a decision procedure must provide to be routable. *)
module type S = sig
  type t

  val name : string
  (** Stable identifier recorded in cost records and route stats. *)

  val complete_for : Axiom.kb -> bool
  (** [complete_for kbar] — is this backend a sound {e and complete}
      decision procedure on the transformed KB [kbar], for every query
      it claims via [can_answer]?  Consulted once per (re)build. *)

  val create : max_nodes:int -> max_branches:int -> Axiom.kb -> t
  (** Build an instance against K̄.  Resource limits carry the oracle
      config's meaning: a backend that exceeds its node budget raises
      [Tableau.Resource_limit] like the tableau does.
      @raise Unsupported if the KB is outside the backend's fragment. *)

  val can_answer : t -> query -> bool
  (** Per-query capability: syntactic check, never mutates. A [true]
      here is a completeness claim for this query on this KB. *)

  val eval : ?prov:Tableau.prov -> t -> query -> bool
  (** Decide one query.  Must agree with the tableau on every query it
      [can_answer].  When [prov] is given, the backend records every
      individual and (demangled) atomic concept the verdict depends on
      — the oracle's invalidation contract. *)

  val stats : t -> Tableau.stats
  (** Live work counters in the tableau's vocabulary (cells are diffed
      around each [eval] for per-verdict cost records).  Backends map
      their own work onto the closest cells and leave the rest zero. *)
end

(** A backend instance packed with its implementation — what the oracle
    routes to. *)
type packed

val pack : (module S with type t = 'a) -> 'a -> packed
val name : packed -> string
val can_answer : packed -> query -> bool
val eval : ?prov:Tableau.prov -> packed -> query -> bool
val stats : packed -> Tableau.stats
