type t = Reasoner.t

let name = "tableau"
let complete_for (_ : Axiom.kb) = true
let create ~max_nodes ~max_branches kb = Reasoner.create ~max_nodes ~max_branches kb
let of_reasoner r = r
let reasoner t = t
let can_answer _ (_ : Backend.query) = true

(* The query → tableau-run mapping, moved verbatim from [Oracle.eval]:
   each four-valued verdict is a classical (un)satisfiability question
   over K̄ per Definition 7. *)
let eval ?prov t = function
  | Backend.Consistent -> Reasoner.is_consistent ?prov t
  | Backend.Concept_sat c -> Reasoner.concept_satisfiable ?prov t c
  | Backend.Instance (a, c) ->
      not (Reasoner.consistent_with ?prov t [ Transform.instance_query c a ])
  | Backend.Not_instance (a, c) ->
      not
        (Reasoner.consistent_with ?prov t
           [ Transform.negative_instance_query c a ])
  | Backend.Role_pos (a, r, b) ->
      Reasoner.role_entailed ?prov t a (Transform.plus_role r) b
  | Backend.Role_neg (a, r, b) ->
      not
        (Reasoner.consistent_with ?prov t
           [ Axiom.Role_assertion (a, Transform.eq_role r, b) ])

let stats = Reasoner.stats
