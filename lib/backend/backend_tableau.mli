(** The general tableau as a [Backend.S] — the universal fallback.

    A zero-behavior-change wrapper: [eval] is byte-for-byte the query
    mapping the oracle always used ([Reasoner.is_consistent],
    [consistent_with] over [Transform.instance_query], …), so routing
    through this module cannot change any verdict, cost cell or
    provenance entry. *)

include Backend.S

val of_reasoner : Reasoner.t -> t
(** Wrap an existing reasoner (shares its state — the oracle wraps its
    primary so [Reasoner.apply_delta] keeps working through the same
    instance). *)

val reasoner : t -> Reasoner.t
