type term = Var of string | Ind of string

type atom =
  | Concept_atom of Concept.t * term
  | Role_atom of Role.t * term * term
  | Exact of Truth.t list * atom

type t = { head : string list; body : atom list }

module Strings = Set.Make (String)

let term_vars = function Var v -> [ v ] | Ind _ -> []

let rec atom_vars = function
  | Concept_atom (_, t) -> term_vars t
  | Role_atom (_, t1, t2) -> term_vars t1 @ term_vars t2
  | Exact (_, a) -> atom_vars a

(* the base (probe-able) atom under any stack of exact-value selectors *)
let rec base_atom = function Exact (_, a) -> base_atom a | a -> a

(* the characteristic function of an exact-value selector: a classical
   (two-valued) verdict on the inner atom's Belnap value — [t] when the
   value is exactly in the requested set, [f] otherwise.  Classicality is
   what lets selector atoms ride the designated-answer machinery (incl.
   pruning) unchanged. *)
let characteristic values v =
  if List.mem v values then Truth.True else Truth.False

(* the composed selector of an atom (identity for plain atoms), applied
   outermost-last so nested selectors mean what they say *)
let rec selector = function
  | Exact (values, a) ->
      let inner = selector a in
      fun v -> characteristic values (inner v)
  | Concept_atom _ | Role_atom _ -> Fun.id

let variables q =
  Strings.elements
    (List.fold_left
       (fun acc a -> Strings.union acc (Strings.of_list (atom_vars a)))
       Strings.empty q.body)

let make ~head ~body =
  let q = { head; body } in
  let vs = Strings.of_list (variables q) in
  List.iter
    (fun v ->
      if not (Strings.mem v vs) then
        invalid_arg ("Cq.make: head variable " ^ v ^ " not in body"))
    head;
  q

let resolve binding = function
  | Ind a -> a
  | Var v -> (
      match List.assoc_opt v binding with
      | Some a -> a
      | None -> invalid_arg ("Cq: unbound variable " ^ v))

let rec truth_of_atom para binding = function
  | Concept_atom (c, t) -> Para.instance_truth para (resolve binding t) c
  | Role_atom (r, t1, t2) ->
      Para.role_truth para (resolve binding t1) r (resolve binding t2)
  | Exact (values, a) -> characteristic values (truth_of_atom para binding a)

let truth_of_binding_naive para q binding =
  List.fold_left
    (fun acc atom -> Truth.conj acc (truth_of_atom para binding atom))
    Truth.True q.body

(* [f] is absorbing for the ≤t-meet (it is the ≤t-bottom), so once the
   running meet hits [False] the remaining atoms cannot change the value —
   stop paying oracle calls for them. *)
let truth_of_binding para q binding =
  let rec go acc = function
    | [] -> acc
    | _ when Truth.equal acc Truth.False -> Truth.False
    | atom :: rest -> go (Truth.conj acc (truth_of_atom para binding atom)) rest
  in
  go Truth.True q.body

(* ------------------------------------------------------------------ *)
(* Printable form (also the serve protocol's query syntax, see [parse]) *)

let term_to_string = function Var v -> "?" ^ v | Ind a -> a

let rec atom_to_string = function
  | Concept_atom (c, t) -> Concept.to_string c ^ "(" ^ term_to_string t ^ ")"
  | Role_atom (r, t1, t2) ->
      Role.to_string r ^ "(" ^ term_to_string t1 ^ ", " ^ term_to_string t2
      ^ ")"
  | Exact (values, a) ->
      atom_to_string a ^ "={"
      ^ String.concat "," (List.map Truth.short_string values)
      ^ "}"

let to_string q =
  String.concat ", " (List.map (fun v -> "?" ^ v) q.head)
  ^ " <- "
  ^ String.concat ", " (List.map atom_to_string q.body)

(* ------------------------------------------------------------------ *)
(* The PR 2 staged enumerator.  Variables are bound in [variables q]
   order (as the naive cross product does); an atom is assigned to the
   stage of the last variable it mentions and is evaluated the moment
   that variable is bound, so a prefix whose running meet is already [f]
   refutes the whole subtree of completions at once.  Demoted to a
   differential-test reference next to the [_naive] paths now that the
   cost-based [Plan] below owns the production path. *)
let fold_bindings ~prune para q ~init ~f =
  let individuals = (Kb4.signature (Para.kb para)).individuals in
  let vars = variables q in
  let index = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.replace index v (i + 1)) vars;
  let stages = Array.make (List.length vars + 1) [] in
  List.iter
    (fun atom ->
      let s =
        List.fold_left
          (fun m v -> max m (Hashtbl.find index v))
          0 (atom_vars atom)
      in
      stages.(s) <- atom :: stages.(s))
    (List.rev q.body);
  (* the [rev] above keeps each stage in body order *)
  let eval_stage binding acc s =
    List.fold_left
      (fun acc atom ->
        if Truth.equal acc Truth.False then Truth.False
        else Truth.conj acc (truth_of_atom para binding atom))
      acc stages.(s)
  in
  let rec go out binding acc stage = function
    | [] -> f out (List.rev binding) acc
    | v :: rest ->
        List.fold_left
          (fun out a ->
            let binding = (v, a) :: binding in
            let acc =
              if Truth.equal acc Truth.False then Truth.False
              else eval_stage binding acc stage
            in
            if prune && Truth.equal acc Truth.False then out
            else go out binding acc (stage + 1) rest)
          out individuals
  in
  let acc0 = eval_stage [] Truth.True 0 in
  if prune && Truth.equal acc0 Truth.False then init
  else go init [] acc0 1 vars

let all_bindings_staged para q =
  List.rev
    (fold_bindings ~prune:false para q ~init:[] ~f:(fun out binding v ->
         (binding, v) :: out))

let all_bindings_naive para q =
  let individuals = (Kb4.signature (Para.kb para)).individuals in
  let rec bind acc = function
    | [] -> [ List.rev acc ]
    | v :: rest ->
        List.concat_map (fun a -> bind ((v, a) :: acc) rest) individuals
  in
  List.map
    (fun binding -> (binding, truth_of_binding_naive para q binding))
    (bind [] (variables q))

let project q binding = List.map (fun h -> List.assoc h binding) q.head

(* deduplicate projected tuples, keeping the ≤k-strongest value seen: a
   tuple supported cleanly (t) by one binding and contradictorily (⊤) by
   another reports t if any clean support exists *)
let dedup_designated tuples =
  let dedup =
    List.fold_left
      (fun acc (tuple, v) ->
        match List.assoc_opt tuple acc with
        | None -> (tuple, v) :: acc
        | Some Truth.Both when Truth.equal v Truth.True ->
            (tuple, v) :: List.remove_assoc tuple acc
        | Some _ -> acc)
      [] tuples
  in
  List.stable_sort
    (fun (_, v1) (_, v2) -> Truth.compare v1 v2)
    (List.rev dedup)

let answers_staged para q =
  dedup_designated
    (List.rev
       (fold_bindings ~prune:true para q ~init:[] ~f:(fun out binding v ->
            if Truth.designated v then (project q binding, v) :: out
            else out)))

let answers_naive para q =
  dedup_designated
    (List.filter_map
       (fun (binding, v) ->
         if Truth.designated v then Some (project q binding, v) else None)
       (all_bindings_naive para q))

(* Exact-value answers keep every requested value (not only designated
   ones), so deduplication is by (tuple, value) pair — first occurrence in
   enumeration order — followed by the same ≤t-rank sort the designated
   surface uses.  Both the plan path and the naive reference feed this
   one function over identically-ordered binding lists, which is what
   makes the two outputs byte-identical. *)
let dedup_exact tuples =
  let seen = Hashtbl.create 16 in
  let dedup =
    List.filter
      (fun tv ->
        if Hashtbl.mem seen tv then false
        else begin
          Hashtbl.replace seen tv ();
          true
        end)
      tuples
  in
  List.stable_sort (fun (_, v1) (_, v2) -> Truth.compare v1 v2) dedup

let exactly_of_bindings q ~values bindings =
  dedup_exact
    (List.filter_map
       (fun (binding, v) ->
         if List.mem v values then Some (project q binding, v) else None)
       bindings)

let answers_exactly_naive para ~values q =
  exactly_of_bindings q ~values (all_bindings_naive para q)

(* ------------------------------------------------------------------ *)
(* The cost-based planner.

   [compile] turns a query into an explicit, explainable [Plan.t]:

   - per-atom selectivity is estimated from told information — ABox
     assertions folded through the told-subsumption closure (upgraded to
     the classification index when it has already been built; [compile]
     never triggers a build) for concept atoms, told role-edge fan-out
     through the told role hierarchy for role atoms — and the per-kind
     observed verdict costs of the session's cost records;
   - atoms are ordered greedily cheapest-first: filters (all variables
     already bound) immediately, then among atoms connected to the bound
     variables the one with the smallest estimated (cardinality × probe
     cost), so the most selective variables bind early;
   - the join strategy for each extension step is picked adaptively at
     RUN time from the actual intermediate binding-set cardinality:
     nested-loop with substitution below [threshold] rows, hash-join on
     the shared variables above it (the atom's relation is materialized
     once over the distinct bound tuples as one batched oracle fan-out,
     then hash-merged) — so a mis-estimated plan still executes soundly
     and still switches strategy on real cardinalities.

   Correctness note for pruning: the prune regime serves only the
   designated-answer surface, and a row whose running conjunction is
   not designated can never recover — [conj Neither x] is [Neither] or
   [f] for every [x], and [f] is absorbing — so prune drops every
   non-designated row (and non-designated relation entry: [conj r v0]
   with [v0] in {[Neither], [f]} lands in {[Neither], [f]} for
   designated [r]).  The non-prune regime keeps rows and relation
   total: [Truth.conj Both Neither = False], so a [Neither] entry can
   still flip a surviving row to [f]. *)

(* observed strategy picks, mirrored into the Obs registry *)
let c_plan_nested = Obs.counter "cq.plan.nested_loop"
let c_plan_hash = Obs.counter "cq.plan.hash_join"

module Plan = struct
  type strategy = Nested_loop | Hash_join

  let strategy_name = function
    | Nested_loop -> "nested_loop"
    | Hash_join -> "hash_join"

  let strategy_of_name = function
    | "nested" | "nested_loop" -> Some Nested_loop
    | "hash" | "hash_join" -> Some Hash_join
    | _ -> None

  type slot_term = Slot of int | Const of string

  type step = {
    p_atom : atom;
    p_terms : slot_term list;  (* positional: 1 concept / 2 role terms *)
    p_new : int list;  (* slots first bound here (distinct) *)
    p_est_rows : int;  (* estimated output cardinality at compile time *)
    p_est_cost_ns : float;  (* estimated oracle cost of one atom probe *)
    mutable p_strategy : strategy option;  (* run-time pick; filters None *)
    mutable p_actual_rows : int;  (* binding-set size after this step *)
    mutable p_probes : int;  (* atom evaluations paid at this step *)
  }

  type plan = {
    pl_para : Para.t;
    pl_query : t;
    pl_vars : string array;  (* binding order: slot i holds pl_vars.(i) *)
    pl_threshold : int;
    pl_forced : strategy option;
    pl_order : [ `Cost | `Syntactic ];
    pl_steps : step list;
    mutable pl_executed : bool;
  }

  (* read-side views: the stable, JSON-renderable plan description *)

  type step_view = {
    sv_atom : string;
    sv_kind : string;  (* "concept" | "role" *)
    sv_binds : string list;
    sv_filter : bool;
    sv_est_rows : int;
    sv_est_cost_ns : float;
    sv_strategy : string option;  (* after execution; filters "filter" *)
    sv_actual_rows : int option;
    sv_probes : int option;
  }

  type view = {
    v_query : string;
    v_vars : string list;
    v_individuals : int;
    v_threshold : int;
    v_forced : string option;
    v_order : string;
    v_executed : bool;
    v_steps : step_view list;
  }
end

type plan = Plan.plan

(* ---- told statistics ---------------------------------------------- *)

let rec conjunct_atoms = function
  | Concept.Atom a -> [ a ]
  | Concept.And (c, d) -> conjunct_atoms c @ conjunct_atoms d
  | _ -> []

type statistics = {
  st_n : int;
  st_counts : (string, int) Hashtbl.t;  (* atom -> told instance count *)
  st_pairs : (string, int) Hashtbl.t;  (* base role -> told edge count *)
  st_srcs : (string, int) Hashtbl.t;  (* base role -> distinct sources *)
  st_probe_ns : string -> float;  (* query kind -> observed avg ns *)
}

let tbl_get tbl k = Option.value ~default:0 (Hashtbl.find_opt tbl k)
let tbl_add tbl k n = Hashtbl.replace tbl k (n + tbl_get tbl k)

(* reflexive-transitive closure over an edge table, memo-free (the
   signatures involved are small; cycles are handled by the seen set) *)
let closure edges a =
  let rec go seen = function
    | [] -> seen
    | x :: rest ->
        if List.mem x seen then go seen rest
        else
          go (x :: seen)
            (Option.value ~default:[] (Hashtbl.find_opt edges x) @ rest)
  in
  go [] [ a ]

let statistics para =
  let kb = Para.kb para in
  let signature = Kb4.signature kb in
  let n = List.length signature.Axiom.individuals in
  (* concept supers: prefer the classification index when it is already
     built (exact subsumptions); otherwise the told closure.  Never
     force a build here — compiling must stay cheap. *)
  let concept_supers =
    match Engine.classification_if_built (Para.engine para) with
    | Some cls ->
        let h = Hashtbl.create 16 in
        List.iter
          (fun (a, sups) -> Hashtbl.replace h a (a :: sups))
          cls.Classify.supers;
        fun a -> Option.value ~default:[ a ] (Hashtbl.find_opt h a)
    | None ->
        let edges = Hashtbl.create 16 in
        List.iter
          (fun (a, b) ->
            Hashtbl.replace edges a
              (b :: Option.value ~default:[] (Hashtbl.find_opt edges a)))
          (Engine.told_subsumptions kb);
        fun a -> closure edges a
  in
  let role_supers =
    let edges = Hashtbl.create 8 in
    List.iter
      (function
        | Kb4.Role_inclusion ((Kb4.Internal | Kb4.Strong), r, s) ->
            let a = Role.base r and b = Role.base s in
            Hashtbl.replace edges a
              (b :: Option.value ~default:[] (Hashtbl.find_opt edges a))
        | _ -> ())
      kb.Kb4.tbox;
    fun r -> closure edges r
  in
  let seen_inst : (string * string, unit) Hashtbl.t = Hashtbl.create 64 in
  let seen_src : (string * string, unit) Hashtbl.t = Hashtbl.create 32 in
  let counts = Hashtbl.create 16 in
  let pairs = Hashtbl.create 8 in
  let srcs = Hashtbl.create 8 in
  List.iter
    (function
      | Axiom.Instance_of (i, c) ->
          List.iter
            (fun a ->
              List.iter
                (fun s ->
                  if not (Hashtbl.mem seen_inst (s, i)) then begin
                    Hashtbl.replace seen_inst (s, i) ();
                    tbl_add counts s 1
                  end)
                (concept_supers a))
            (conjunct_atoms c)
      | Axiom.Role_assertion (x, r, _) ->
          List.iter
            (fun s ->
              tbl_add pairs s 1;
              if not (Hashtbl.mem seen_src (s, x)) then begin
                Hashtbl.replace seen_src (s, x) ();
                tbl_add srcs s 1
              end)
            (role_supers (Role.base r))
      | _ -> ())
    kb.Kb4.abox;
  (* observed per-verdict cost: per query kind from the retained cost
     records, global average as fallback, 1.0 when the session is cold
     (a cold compile is then fully deterministic) *)
  let session = Para.session para in
  let totals = Session.cost_totals session in
  let global =
    if totals.Oracle.verdicts > 0 then
      totals.Oracle.wall_ns /. float_of_int totals.Oracle.verdicts
    else 1.0
  in
  let by_kind : (string, float * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (c : Oracle.cost) ->
      let sum, cnt =
        Option.value ~default:(0.0, 0) (Hashtbl.find_opt by_kind c.Oracle.c_kind)
      in
      Hashtbl.replace by_kind c.Oracle.c_kind
        (sum +. c.Oracle.c_wall_ns, cnt + 1))
    (Session.costs session);
  let probe_ns kind =
    match Hashtbl.find_opt by_kind kind with
    | Some (sum, cnt) when cnt > 0 -> sum /. float_of_int cnt
    | _ -> global
  in
  { st_n = n; st_counts = counts; st_pairs = pairs; st_srcs = srcs;
    st_probe_ns = probe_ns }

(* estimated number of individuals with a designated value for [c],
   from told information only — an ordering signal, not a bound *)
let rec est_concept st c =
  let n = st.st_n in
  match c with
  | Concept.Top -> n
  | Concept.Bottom -> 0
  | Concept.Atom a -> min n (tbl_get st.st_counts a)
  | Concept.Not c -> max 0 (n - est_concept st c)
  | Concept.And (c, d) -> min (est_concept st c) (est_concept st d)
  | Concept.Or (c, d) -> min n (est_concept st c + est_concept st d)
  | Concept.One_of os -> min n (List.length os)
  | Concept.Exists (r, _) | Concept.At_least (_, r) ->
      min n (tbl_get st.st_srcs (Role.base r))
  | Concept.Forall _ | Concept.At_most _ -> n
  | Concept.Data_exists _ | Concept.Data_at_least _ -> (n + 1) / 2
  | Concept.Data_forall _ | Concept.Data_at_most _ -> n

let est_pairs st r = tbl_get st.st_pairs (Role.base r)

(* estimated output rows contributed by [atom] once the variables in
   [bound] are fixed: the cardinality signal the greedy order minimizes *)
let rec est_atom_rows st bound atom =
  let free t =
    match t with Var v -> not (Strings.mem v bound) | Ind _ -> false
  in
  match atom with
  | Concept_atom (c, t) -> if free t then est_concept st c else 1
  | Role_atom (r, t1, t2) -> (
      let pairs = est_pairs st r in
      match (free t1, free t2) with
      | false, false -> 1
      | true, true -> pairs
      | _ -> max 1 (pairs / max 1 st.st_n))
  | Exact (_, a) ->
      (* the selector reshuffles which rows survive, not how many the
         probe fan-out produces — estimate on the inner atom *)
      est_atom_rows st bound a

let rec probe_cost st = function
  | Concept_atom _ -> st.st_probe_ns "instance" +. st.st_probe_ns "not_instance"
  | Role_atom _ -> st.st_probe_ns "role_pos" +. st.st_probe_ns "role_neg"
  | Exact (_, a) -> probe_cost st a

let default_threshold = 8

let env_forced () =
  match Sys.getenv_opt "DL4_JOIN" with
  | Some s -> Plan.strategy_of_name s
  | None -> None

let env_threshold () =
  match Sys.getenv_opt "DL4_JOIN_THRESHOLD" with
  | Some s -> ( match int_of_string_opt s with
      | Some t -> max 0 t
      | None -> default_threshold)
  | None -> default_threshold

let compile ?threshold ?force ?(order = `Cost) para q =
  let st = statistics para in
  let threshold =
    match threshold with Some t -> max 0 t | None -> env_threshold ()
  in
  let forced = match force with Some _ as f -> f | None -> env_forced () in
  (* greedy cheapest-first order: filters immediately, then the
     connected atom with the smallest estimated rows × probe cost;
     syntactic index breaks ties so plans are deterministic *)
  let indexed = List.mapi (fun i a -> (i, a)) q.body in
  let ordered =
    match order with
    | `Syntactic -> indexed
    | `Cost ->
        let rec pick bound acc = function
          | [] -> List.rev acc
          | remaining ->
              let score (i, a) =
                let vs = Strings.of_list (atom_vars a) in
                let new_vars = Strings.diff vs bound in
                if Strings.is_empty new_vars then (0, 0, probe_cost st a, i)
                else
                  let connected =
                    Strings.is_empty bound
                    || not (Strings.is_empty (Strings.inter vs bound))
                  in
                  let rows = est_atom_rows st bound a in
                  ( 1,
                    (if connected then 0 else 1),
                    float_of_int rows *. probe_cost st a,
                    i )
              in
              let best =
                List.fold_left
                  (fun best cand ->
                    if compare (score cand) (score best) < 0 then cand
                    else best)
                  (List.hd remaining) (List.tl remaining)
              in
              let bound =
                Strings.union bound (Strings.of_list (atom_vars (snd best)))
              in
              pick bound (best :: acc)
                (List.filter (fun (i, _) -> i <> fst best) remaining)
        in
        pick Strings.empty [] indexed
  in
  (* slot assignment in first-binding order *)
  let slots = Hashtbl.create 8 in
  let var_order = ref [] in
  let slot_of v =
    match Hashtbl.find_opt slots v with
    | Some s -> s
    | None ->
        let s = Hashtbl.length slots in
        Hashtbl.replace slots v s;
        var_order := v :: !var_order;
        s
  in
  let bound = ref Strings.empty in
  let steps =
    List.map
      (fun (_, a) ->
        let terms =
          match base_atom a with
          | Concept_atom (_, t) -> [ t ]
          | Role_atom (_, t1, t2) -> [ t1; t2 ]
          | Exact _ -> assert false
        in
        let est_rows = est_atom_rows st !bound a in
        let fresh =
          List.sort_uniq compare
            (List.filter_map
               (function
                 | Var v when not (Strings.mem v !bound) -> Some v
                 | _ -> None)
               terms)
        in
        let slot_terms =
          List.map
            (function Var v -> Plan.Slot (slot_of v) | Ind i -> Plan.Const i)
            terms
        in
        let new_slots = List.map (Hashtbl.find slots) fresh in
        bound := Strings.union !bound (Strings.of_list fresh);
        { Plan.p_atom = a;
          p_terms = slot_terms;
          p_new = List.sort_uniq compare new_slots;
          p_est_rows = est_rows;
          p_est_cost_ns = probe_cost st a;
          p_strategy = None;
          p_actual_rows = -1;
          p_probes = -1 })
      ordered
  in
  { Plan.pl_para = para;
    pl_query = q;
    pl_vars = Array.of_list (List.rev !var_order);
    pl_threshold = threshold;
    pl_forced = forced;
    pl_order = order;
    pl_steps = steps;
    pl_executed = false }

(* ---- execution ---------------------------------------------------- *)

type row = { r_vals : string array; r_truth : Truth.t }

let ground_term vals = function Plan.Const a -> a | Plan.Slot i -> vals.(i)

let eval_step para (step : Plan.step) vals =
  let sel = selector step.Plan.p_atom in
  sel
    (match (base_atom step.Plan.p_atom, step.Plan.p_terms) with
    | Concept_atom (c, _), [ t ] ->
        Para.instance_truth para (ground_term vals t) c
    | Role_atom (r, _, _), [ t1; t2 ] ->
        Para.role_truth para (ground_term vals t1) r (ground_term vals t2)
    | _ -> assert false)

(* one batched oracle fan-out for a hash-join materialization: ground
   every (key, candidate) combination of the step's atom and submit the
   whole relation as one [check_all] batch, so the domain pool overlaps
   the work and repeated questions share one verdict *)
let eval_batch para (step : Plan.step) grounds =
  let sel = selector step.Plan.p_atom in
  match base_atom step.Plan.p_atom with
  | Concept_atom (c, _) ->
      List.map
        (fun (_, _, v) -> sel v)
        (Para.instance_truths para
           (List.map
              (fun vals ->
                match step.Plan.p_terms with
                | [ t ] -> (ground_term vals t, c)
                | _ -> assert false)
              grounds))
  | Role_atom (r, _, _) ->
      List.map
        (fun (_, _, _, v) -> sel v)
        (Para.role_truths para
           (List.map
              (fun vals ->
                match step.Plan.p_terms with
                | [ t1; t2 ] -> (ground_term vals t1, r, ground_term vals t2)
                | _ -> assert false)
              grounds))
  | Exact _ -> assert false

(* the prune regime's row filter: only designated prefixes can still
   reach a designated answer (see the correctness note above) *)
let pruned ~prune v = prune && not (Truth.designated v)

let exec (plan : plan) ~prune =
  let para = plan.Plan.pl_para in
  let individuals = (Kb4.signature (Para.kb para)).Axiom.individuals in
  let nvars = Array.length plan.Plan.pl_vars in
  let table = ref [ { r_vals = Array.make nvars ""; r_truth = Truth.True } ] in
  List.iter
    (fun (step : Plan.step) ->
      (* rows already valued [f] (non-prune regime only) extend by pure
         cross product: absorption says no probe can change them *)
      let live, dead =
        List.partition
          (fun r -> not (Truth.equal r.r_truth Truth.False))
          !table
      in
      (match step.Plan.p_new with
      | [] ->
          let probes = ref 0 in
          let live' =
            List.filter_map
              (fun r ->
                incr probes;
                let v = Truth.conj r.r_truth (eval_step para step r.r_vals) in
                if pruned ~prune v then None
                else Some { r with r_truth = v })
              live
          in
          step.Plan.p_strategy <- None;
          step.Plan.p_probes <- !probes;
          table := live' @ dead
      | new_slots ->
          (* candidate assignments for the slots this atom binds *)
          let cands =
            List.fold_left
              (fun acc s ->
                List.concat_map
                  (fun partial ->
                    List.map (fun a -> (s, a) :: partial) individuals)
                  acc)
              [ [] ] new_slots
          in
          let n_cands = List.length cands in
          let bound_slots =
            List.sort_uniq compare
              (List.filter_map
                 (function
                   | Plan.Slot s when not (List.mem s new_slots) -> Some s
                   | _ -> None)
                 step.Plan.p_terms)
          in
          let key_of r = List.map (fun s -> (s, r.r_vals.(s))) bound_slots in
          let keys =
            List.sort_uniq compare (List.map key_of live)
          in
          let rows = List.length live in
          let nested_probes = rows * n_cands in
          let hash_probes = List.length keys * n_cands in
          let strategy =
            match plan.Plan.pl_forced with
            | Some s -> s
            | None ->
                if rows >= plan.Plan.pl_threshold
                   && hash_probes < nested_probes
                then Plan.Hash_join
                else Plan.Nested_loop
          in
          let extend r assigns =
            let vals = Array.copy r.r_vals in
            List.iter (fun (s, a) -> vals.(s) <- a) assigns;
            vals
          in
          let out = ref [] in
          let probes = ref 0 in
          (match strategy with
          | Plan.Nested_loop ->
              List.iter
                (fun r ->
                  List.iter
                    (fun cand ->
                      let vals = extend r cand in
                      incr probes;
                      let v = Truth.conj r.r_truth (eval_step para step vals) in
                      if not (pruned ~prune v) then
                        out := { r_vals = vals; r_truth = v } :: !out)
                    cands)
                live
          | Plan.Hash_join ->
              let combos =
                List.concat_map
                  (fun key -> List.map (fun cand -> (key, cand)) cands)
                  keys
              in
              let scratch = { r_vals = Array.make nvars ""; r_truth = Truth.True } in
              let grounds =
                List.map
                  (fun (key, cand) -> extend scratch (key @ cand))
                  combos
              in
              let values = eval_batch para step grounds in
              probes := List.length combos;
              (* relation keyed by the shared (bound) slots; the prune
                 regime keeps only designated entries (a non-designated
                 [v0] cannot produce a designated conjunction), the
                 non-prune regime keeps the relation total *)
              let rel = Hashtbl.create (max 16 (List.length keys)) in
              List.iter2
                (fun (key, cand) v ->
                  if not (pruned ~prune v) then
                    Hashtbl.replace rel key
                      ((cand, v)
                      :: Option.value ~default:[] (Hashtbl.find_opt rel key)))
                combos values;
              List.iter
                (fun r ->
                  match Hashtbl.find_opt rel (key_of r) with
                  | None -> ()
                  | Some entries ->
                      List.iter
                        (fun (cand, v0) ->
                          let v = Truth.conj r.r_truth v0 in
                          if not (pruned ~prune v) then
                            out :=
                              { r_vals = extend r cand; r_truth = v } :: !out)
                        entries)
                live);
          List.iter
            (fun r ->
              List.iter
                (fun cand ->
                  out := { r_vals = extend r cand; r_truth = Truth.False }
                         :: !out)
                cands)
            dead;
          step.Plan.p_strategy <- Some strategy;
          step.Plan.p_probes <- !probes;
          table := !out);
      step.Plan.p_actual_rows <- List.length !table)
    plan.Plan.pl_steps;
  plan.Plan.pl_executed <- true;
  List.iter
    (fun (step : Plan.step) ->
      match step.Plan.p_strategy with
      | Some Plan.Nested_loop -> Obs.add c_plan_nested 1
      | Some Plan.Hash_join -> Obs.add c_plan_hash 1
      | None -> ())
    plan.Plan.pl_steps;
  !table

(* Replays the staged/naive enumeration order (variables in sorted
   order, individuals in signature order), so every strategy and atom
   order produces byte-identical output lists. *)
let canonical_rows (plan : plan) rows =
  let individuals = (Kb4.signature (Para.kb plan.Plan.pl_para)).Axiom.individuals in
  let rank = Hashtbl.create 32 in
  List.iteri (fun i a -> Hashtbl.replace rank a i) individuals;
  let sorted_vars = variables plan.Plan.pl_query in
  let slot = Hashtbl.create 8 in
  Array.iteri (fun i v -> Hashtbl.replace slot v i) plan.Plan.pl_vars;
  let slots = List.map (Hashtbl.find slot) sorted_vars in
  List.map snd
    (List.sort
       (fun (k1, _) (k2, _) -> compare k1 k2)
       (List.map
          (fun r ->
            ( List.map (fun s -> Hashtbl.find rank r.r_vals.(s)) slots, r ))
          rows))

let binding_of (plan : plan) r =
  let slot = Hashtbl.create 8 in
  Array.iteri (fun i v -> Hashtbl.replace slot v i) plan.Plan.pl_vars;
  List.map
    (fun v -> (v, r.r_vals.(Hashtbl.find slot v)))
    (variables plan.Plan.pl_query)

let run plan =
  Obs.with_span ~cat:"core" "cq.plan.run" (fun () ->
      let rows = canonical_rows plan (exec plan ~prune:true) in
      dedup_designated
        (List.filter_map
           (fun r ->
             if Truth.designated r.r_truth then
               Some (project plan.Plan.pl_query (binding_of plan r), r.r_truth)
             else None)
           rows))

let run_bindings plan =
  Obs.with_span ~cat:"core" "cq.plan.run_bindings" (fun () ->
      List.map
        (fun r -> (binding_of plan r, r.r_truth))
        (canonical_rows plan (exec plan ~prune:false)))

(* Exact-value execution must use the non-prune regime: selecting [f] or
   ⊥ tuples means keeping exactly the rows pruning is licensed to drop. *)
let run_exactly plan ~values =
  Obs.with_span ~cat:"core" "cq.plan.run_exactly" (fun () ->
      exactly_of_bindings plan.Plan.pl_query ~values
        (List.map
           (fun r -> (binding_of plan r, r.r_truth))
           (canonical_rows plan (exec plan ~prune:false))))

let strategy_counts (plan : plan) =
  let nested = ref 0 and hash = ref 0 in
  List.iter
    (fun (s : Plan.step) ->
      match s.Plan.p_strategy with
      | Some Plan.Nested_loop -> incr nested
      | Some Plan.Hash_join -> incr hash
      | None -> ())
    plan.Plan.pl_steps;
  List.filter
    (fun (_, n) -> n > 0)
    [ ("hash_join", !hash); ("nested_loop", !nested) ]

(* ---- explain: the stable plan description ------------------------- *)

let explain (plan : plan) =
  let step_view (s : Plan.step) =
    let slot i = plan.Plan.pl_vars.(i) in
    { Plan.sv_atom = atom_to_string s.Plan.p_atom;
      sv_kind =
        (match base_atom s.Plan.p_atom with
        | Concept_atom _ -> "concept"
        | Role_atom _ -> "role"
        | Exact _ -> assert false);
      sv_binds = List.map slot s.Plan.p_new;
      sv_filter = s.Plan.p_new = [];
      sv_est_rows = s.Plan.p_est_rows;
      sv_est_cost_ns = s.Plan.p_est_cost_ns;
      sv_strategy =
        (if not plan.Plan.pl_executed then None
         else
           match s.Plan.p_strategy with
           | Some st -> Some (Plan.strategy_name st)
           | None -> Some "filter");
      sv_actual_rows =
        (if s.Plan.p_actual_rows >= 0 then Some s.Plan.p_actual_rows else None);
      sv_probes = (if s.Plan.p_probes >= 0 then Some s.Plan.p_probes else None)
    }
  in
  { Plan.v_query = to_string plan.Plan.pl_query;
    v_vars = Array.to_list plan.Plan.pl_vars;
    v_individuals =
      List.length (Kb4.signature (Para.kb plan.Plan.pl_para)).Axiom.individuals;
    v_threshold = plan.Plan.pl_threshold;
    v_forced = Option.map Plan.strategy_name plan.Plan.pl_forced;
    v_order =
      (match plan.Plan.pl_order with `Cost -> "cost" | `Syntactic -> "syntactic");
    v_executed = plan.Plan.pl_executed;
    v_steps = List.map step_view plan.Plan.pl_steps }

let plan_schema = "dl4-plan/1"

(* hand-rolled JSON, like every export sink in this stack; no [Printf]
   in lib/core (test_obs guards that), so plain Buffer plumbing *)
let explain_json plan =
  let v = explain plan in
  let b = Buffer.create 512 in
  let str s = Buffer.add_string b ("\"" ^ Obs.json_escape s ^ "\"") in
  let opt_int = function
    | None -> Buffer.add_string b "null"
    | Some n -> Buffer.add_string b (string_of_int n)
  in
  Buffer.add_string b "{\"schema\":";
  str plan_schema;
  Buffer.add_string b ",\"query\":";
  str v.Plan.v_query;
  Buffer.add_string b ",\"vars\":[";
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      str x)
    v.Plan.v_vars;
  Buffer.add_string b "],\"individuals\":";
  Buffer.add_string b (string_of_int v.Plan.v_individuals);
  Buffer.add_string b ",\"threshold\":";
  Buffer.add_string b (string_of_int v.Plan.v_threshold);
  Buffer.add_string b ",\"forced\":";
  (match v.Plan.v_forced with None -> Buffer.add_string b "null" | Some s -> str s);
  Buffer.add_string b ",\"order\":";
  str v.Plan.v_order;
  Buffer.add_string b ",\"executed\":";
  Buffer.add_string b (if v.Plan.v_executed then "true" else "false");
  Buffer.add_string b ",\"steps\":[";
  List.iteri
    (fun i (s : Plan.step_view) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"atom\":";
      str s.Plan.sv_atom;
      Buffer.add_string b ",\"kind\":";
      str s.Plan.sv_kind;
      Buffer.add_string b ",\"binds\":[";
      List.iteri
        (fun j x ->
          if j > 0 then Buffer.add_char b ',';
          str x)
        s.Plan.sv_binds;
      Buffer.add_string b "],\"filter\":";
      Buffer.add_string b (if s.Plan.sv_filter then "true" else "false");
      Buffer.add_string b ",\"est_rows\":";
      Buffer.add_string b (string_of_int s.Plan.sv_est_rows);
      Buffer.add_string b ",\"est_cost_ns\":";
      Buffer.add_string b (Obs.json_float s.Plan.sv_est_cost_ns);
      Buffer.add_string b ",\"strategy\":";
      (match s.Plan.sv_strategy with
      | None -> Buffer.add_string b "null"
      | Some st -> str st);
      Buffer.add_string b ",\"actual_rows\":";
      opt_int s.Plan.sv_actual_rows;
      Buffer.add_string b ",\"probes\":";
      opt_int s.Plan.sv_probes;
      Buffer.add_char b '}')
    v.Plan.v_steps;
  Buffer.add_string b "]}";
  Buffer.contents b

(* ---- the public query API, as thin wrappers over the planner ------ *)

let answers para q =
  Obs.with_span ~cat:"core" "cq.answers" (fun () -> run (compile para q))

let all_bindings para q =
  Obs.with_span ~cat:"core" "cq.all_bindings" (fun () ->
      run_bindings (compile para q))

let answers_exactly para ~values q =
  Obs.with_span ~cat:"core" "cq.answers_exactly" (fun () ->
      run_exactly (compile para q) ~values)

(* ------------------------------------------------------------------ *)
(* Surface syntax:  [?x, ?y <- Doctor(?x), hasPatient(?x, ?y)]
   Variables are [?]-prefixed; bare terms are individuals.  Without a
   [<-] the whole string is the body and every variable is projected
   (sorted).  Concept prefixes parse with the full [Surface] concept
   grammar; a role atom takes two arguments and accepts the [r^-]
   inverse spelling. *)

let split_top_level sep s =
  let parts = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' | '{' | '[' ->
          incr depth;
          Buffer.add_char buf c
      | ')' | '}' | ']' ->
          decr depth;
          Buffer.add_char buf c
      | c when c = sep && !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev !parts

let parse_term s =
  let s = String.trim s in
  if s = "" then Error "empty term"
  else if s.[0] = '?' then
    let v = String.sub s 1 (String.length s - 1) in
    if v = "" then Error "empty variable name after '?'" else Ok (Var v)
  else Ok (Ind s)

(* an exact-value selector suffix: [=B] or [={B,N}] after the closing
   paren (braces keep multi-value sets intact through the top-level comma
   split) *)
let parse_value_set s =
  let s = String.trim s in
  let n = String.length s in
  let s =
    if n >= 2 && s.[0] = '{' && s.[n - 1] = '}' then String.sub s 1 (n - 2)
    else s
  in
  Truth.set_of_string s

let rec parse_atom s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then Error "empty atom"
  else if s.[n - 1] <> ')' then (
    match String.rindex_opt s '=' with
    | Some i when i > 0 && String.contains (String.sub s 0 i) ')' -> (
        match
          ( parse_atom (String.sub s 0 i),
            parse_value_set (String.sub s (i + 1) (n - i - 1)) )
        with
        | Ok a, Ok values -> Ok (Exact (values, a))
        | (Error _ as e), _ -> e
        | _, Error e -> Error (e ^ " in atom " ^ s))
    | _ -> Error ("atom " ^ s ^ " does not end with ')'"))
  else
    match String.rindex_opt s '(' with
    | None -> Error ("atom " ^ s ^ " has no argument list")
    | Some i ->
        let prefix = String.trim (String.sub s 0 i) in
        let args =
          List.map String.trim
            (String.split_on_char ',' (String.sub s (i + 1) (n - i - 2)))
        in
        let terms =
          List.fold_right
            (fun a acc ->
              match (parse_term a, acc) with
              | Ok t, Ok ts -> Ok (t :: ts)
              | (Error _ as e), _ -> e
              | _, (Error _ as e) -> e)
            args (Ok [])
        in
        if prefix = "" then Error ("atom " ^ s ^ " has no predicate")
        else (
          match terms with
          | Error e -> Error (e ^ " in atom " ^ s)
          | Ok [ t ] -> (
              match Surface.parse_concept prefix with
              | Ok c -> Ok (Concept_atom (c, t))
              | Error e ->
                  Error
                    ("cannot parse concept " ^ prefix ^ ": " ^ e.Surface.message))
          | Ok [ t1; t2 ] ->
              let role =
                if String.length prefix > 2
                   && String.sub prefix (String.length prefix - 2) 2 = "^-"
                then
                  Role.inv
                    (Role.name
                       (String.trim
                          (String.sub prefix 0 (String.length prefix - 2))))
                else Role.name prefix
              in
              if String.contains (Role.base role) ' ' then
                Error ("invalid role name in atom " ^ s)
              else Ok (Role_atom (role, t1, t2))
          | Ok _ -> Error ("atom " ^ s ^ " must have 1 or 2 arguments"))

let find_arrow s =
  let n = String.length s in
  let rec go i =
    if i + 1 >= n then None
    else if s.[i] = '<' && s.[i + 1] = '-' then Some i
    else go (i + 1)
  in
  go 0

let parse src =
  let head_src, body_src =
    match find_arrow src with
    | Some i ->
        ( Some (String.sub src 0 i),
          String.sub src (i + 2) (String.length src - i - 2) )
    | None -> (None, src)
  in
  let atom_srcs =
    List.filter
      (fun s -> String.trim s <> "")
      (split_top_level ',' body_src)
  in
  if atom_srcs = [] then Error "empty query body"
  else
    let body =
      List.fold_right
        (fun s acc ->
          match (parse_atom s, acc) with
          | Ok a, Ok atoms -> Ok (a :: atoms)
          | (Error _ as e), _ -> e
          | _, (Error _ as e) -> e)
        atom_srcs (Ok [])
    in
    match body with
    | Error e -> Error e
    | Ok body -> (
        let head =
          match head_src with
          | None -> Ok (variables { head = []; body })
          | Some h ->
              List.fold_right
                (fun s acc ->
                  match acc with
                  | Error _ as e -> e
                  | Ok vs ->
                      let s = String.trim s in
                      if s = "" then Ok vs
                      else if String.length s > 1 && s.[0] = '?' then
                        Ok (String.sub s 1 (String.length s - 1) :: vs)
                      else
                        Error
                          ("head term " ^ s
                         ^ " is not a ?-prefixed variable"))
                (String.split_on_char ',' h)
                (Ok [])
        in
        match head with
        | Error e -> Error e
        | Ok head -> (
            match make ~head ~body with
            | q -> Ok q
            | exception Invalid_argument msg -> Error msg))
