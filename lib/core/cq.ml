type term = Var of string | Ind of string

type atom =
  | Concept_atom of Concept.t * term
  | Role_atom of Role.t * term * term

type t = { head : string list; body : atom list }

module Strings = Set.Make (String)

let term_vars = function Var v -> [ v ] | Ind _ -> []

let atom_vars = function
  | Concept_atom (_, t) -> term_vars t
  | Role_atom (_, t1, t2) -> term_vars t1 @ term_vars t2

let variables q =
  Strings.elements
    (List.fold_left
       (fun acc a -> Strings.union acc (Strings.of_list (atom_vars a)))
       Strings.empty q.body)

let make ~head ~body =
  let q = { head; body } in
  let vs = Strings.of_list (variables q) in
  List.iter
    (fun v ->
      if not (Strings.mem v vs) then
        invalid_arg ("Cq.make: head variable " ^ v ^ " not in body"))
    head;
  q

let resolve binding = function
  | Ind a -> a
  | Var v -> (
      match List.assoc_opt v binding with
      | Some a -> a
      | None -> invalid_arg ("Cq: unbound variable " ^ v))

let truth_of_atom para binding = function
  | Concept_atom (c, t) -> Para.instance_truth para (resolve binding t) c
  | Role_atom (r, t1, t2) ->
      Para.role_truth para (resolve binding t1) r (resolve binding t2)

let truth_of_binding_naive para q binding =
  List.fold_left
    (fun acc atom -> Truth.conj acc (truth_of_atom para binding atom))
    Truth.True q.body

(* [f] is absorbing for the ≤t-meet (it is the ≤t-bottom), so once the
   running meet hits [False] the remaining atoms cannot change the value —
   stop paying oracle calls for them. *)
let truth_of_binding para q binding =
  let rec go acc = function
    | [] -> acc
    | _ when Truth.equal acc Truth.False -> Truth.False
    | atom :: rest -> go (Truth.conj acc (truth_of_atom para binding atom)) rest
  in
  go Truth.True q.body

(* Staged enumeration.  Variables are bound in [variables q] order (as the
   naive cross product does); an atom is assigned to the stage of the last
   variable it mentions and is evaluated the moment that variable is bound,
   so a prefix whose running meet is already [f] refutes the whole subtree
   of completions at once.  With [prune], refuted subtrees are cut (the
   [answers] regime: [f] is never designated); without it every completion
   is still yielded — valued [f] by absorption, with no further oracle
   calls. *)
let fold_bindings ~prune para q ~init ~f =
  let individuals = (Kb4.signature (Para.kb para)).individuals in
  let vars = variables q in
  let index = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.replace index v (i + 1)) vars;
  let stages = Array.make (List.length vars + 1) [] in
  List.iter
    (fun atom ->
      let s =
        List.fold_left
          (fun m v -> max m (Hashtbl.find index v))
          0 (atom_vars atom)
      in
      stages.(s) <- atom :: stages.(s))
    (List.rev q.body);
  (* the [rev] above keeps each stage in body order *)
  let eval_stage binding acc s =
    List.fold_left
      (fun acc atom ->
        if Truth.equal acc Truth.False then Truth.False
        else Truth.conj acc (truth_of_atom para binding atom))
      acc stages.(s)
  in
  let rec go out binding acc stage = function
    | [] -> f out (List.rev binding) acc
    | v :: rest ->
        List.fold_left
          (fun out a ->
            let binding = (v, a) :: binding in
            let acc =
              if Truth.equal acc Truth.False then Truth.False
              else eval_stage binding acc stage
            in
            if prune && Truth.equal acc Truth.False then out
            else go out binding acc (stage + 1) rest)
          out individuals
  in
  let acc0 = eval_stage [] Truth.True 0 in
  if prune && Truth.equal acc0 Truth.False then init
  else go init [] acc0 1 vars

let all_bindings para q =
  Obs.with_span ~cat:"core" "cq.all_bindings" (fun () ->
      List.rev
        (fold_bindings ~prune:false para q ~init:[] ~f:(fun out binding v ->
             (binding, v) :: out)))

let all_bindings_naive para q =
  let individuals = (Kb4.signature (Para.kb para)).individuals in
  let rec bind acc = function
    | [] -> [ List.rev acc ]
    | v :: rest ->
        List.concat_map (fun a -> bind ((v, a) :: acc) rest) individuals
  in
  List.map
    (fun binding -> (binding, truth_of_binding_naive para q binding))
    (bind [] (variables q))

let project q binding = List.map (fun h -> List.assoc h binding) q.head

(* deduplicate projected tuples, keeping the ≤k-strongest value seen: a
   tuple supported cleanly (t) by one binding and contradictorily (⊤) by
   another reports t if any clean support exists *)
let dedup_designated tuples =
  let dedup =
    List.fold_left
      (fun acc (tuple, v) ->
        match List.assoc_opt tuple acc with
        | None -> (tuple, v) :: acc
        | Some Truth.Both when Truth.equal v Truth.True ->
            (tuple, v) :: List.remove_assoc tuple acc
        | Some _ -> acc)
      [] tuples
  in
  List.stable_sort
    (fun (_, v1) (_, v2) -> Truth.compare v1 v2)
    (List.rev dedup)

let answers para q =
  Obs.with_span ~cat:"core" "cq.answers" (fun () ->
      dedup_designated
        (List.rev
           (fold_bindings ~prune:true para q ~init:[] ~f:(fun out binding v ->
                if Truth.designated v then (project q binding, v) :: out
                else out))))

let answers_naive para q =
  dedup_designated
    (List.filter_map
       (fun (binding, v) ->
         if Truth.designated v then Some (project q binding, v) else None)
       (all_bindings_naive para q))
