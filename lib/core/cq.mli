(** Grounded conjunctive queries over a [SHOIN(D)4] knowledge base.

    A query is a conjunction of concept and role atoms over variables and
    individuals, e.g. [Q(x) ← Doctor(x) ∧ hasPatient(x, y)].  Semantics is
    {e grounded}: variables range over the named individuals of the KB (no
    existential unnamed witnesses), which is the usual pragmatic regime for
    instance retrieval front-ends.

    Answers are four-valued: the value of a grounded body is the ≤t-meet of
    its atoms' Belnap values (so one contradictory atom taints the tuple to
    ⊤, one denied atom makes it f).  [answers] returns the tuples whose
    value is designated (t or ⊤), most certain first.

    Every atom evaluation routes through the {!Para} oracle.  Since this
    PR the production path is an explicit compile → plan → execute
    pipeline: {!compile} builds a cost-ordered {!Plan.t} from told
    statistics and the session's observed verdict costs, {!run} executes
    it with an adaptive join strategy, and {!explain} renders the plan as
    a stable, JSON-serializable description.  {!answers} and
    {!all_bindings} remain as thin wrappers; the [_staged] (PR 2) and
    [_naive] variants are kept as differential-testing references — same
    answers, more oracle traffic. *)

type term =
  | Var of string
  | Ind of string

type atom =
  | Concept_atom of Concept.t * term
  | Role_atom of Role.t * term * term
  | Exact of Truth.t list * atom
      (** Exact-truth-value selector (Bienvenu, Bourgaux & Kozhemiachenko
          2024): [Exact (vs, a)] evaluates the inner atom and maps its
          Belnap value through the characteristic function of [vs] — [t]
          when the value is {e exactly} one of [vs], [f] otherwise.  The
          result is classical (two-valued), so selector atoms compose with
          conjunction and ride the designated-answer surface — e.g.
          [Exact ([Both], Concept_atom (c, Var "x"))] retrieves the
          exactly-contradictory individuals of [c] through {!answers}. *)

type t = {
  head : string list;  (** distinguished variables, in answer-tuple order *)
  body : atom list;
}

val make : head:string list -> body:atom list -> t
(** @raise Invalid_argument if a head variable does not occur in the body. *)

val variables : t -> string list
(** All variables of the body (sorted). *)

val parse : string -> (t, string) result
(** Surface syntax: [?x, ?y <- Doctor(?x), hasPatient(?x, ?y)].
    [?]-prefixed terms are variables, bare terms individuals; concept
    prefixes use the full {!Surface} concept grammar; a role atom takes
    two arguments and accepts the [r^-] inverse spelling.  Without a
    [<-] the whole string is the body and every variable is projected
    (sorted).  An atom may carry an exact-value selector suffix —
    [Doctor(?x)=B] or [hasPatient(?x, ?y)={B,N}] — parsed to {!Exact}
    (value names as in {!Truth.of_string}; braces keep multi-value sets
    intact through the comma split). *)

val to_string : t -> string
(** Printable form, re-parsable by {!parse}. *)

val truth_of_binding : Para.t -> t -> (string * string) list -> Truth.t
(** The Belnap value of the body under a complete variable binding.
    Short-circuits: atoms after the running meet hits [f] are not
    evaluated (sound because [f] is absorbing for {!Truth.conj}). *)

val truth_of_binding_naive : Para.t -> t -> (string * string) list -> Truth.t
(** The full fold over every atom — no short-circuit.  Same value as
    {!truth_of_binding}. *)

(** The first-class query plan: an explainable artifact between parsing
    and execution. *)
module Plan : sig
  type strategy = Nested_loop | Hash_join

  val strategy_name : strategy -> string
  (** ["nested_loop"] / ["hash_join"] — the spelling used by plan JSON,
      telemetry and the [DL4_JOIN] override. *)

  val strategy_of_name : string -> strategy option
  (** Accepts ["nested"]/["nested_loop"] and ["hash"]/["hash_join"]. *)

  type plan
  (** A compiled query bound to its {!Para.t}.  Mutable: executing it
      records per-step actual cardinalities, probe counts and the
      strategies picked, which {!explain} then reports. *)

  (** Read-side views — the stable, JSON-renderable plan description. *)

  type step_view = {
    sv_atom : string;  (** printable atom *)
    sv_kind : string;  (** ["concept"] or ["role"] *)
    sv_binds : string list;  (** variables first bound at this step *)
    sv_filter : bool;  (** true when all variables were already bound *)
    sv_est_rows : int;  (** compile-time output-cardinality estimate *)
    sv_est_cost_ns : float;  (** observed avg cost of one atom probe *)
    sv_strategy : string option;
        (** after execution: ["nested_loop"], ["hash_join"] or
            ["filter"]; [None] before execution *)
    sv_actual_rows : int option;  (** binding-set size after this step *)
    sv_probes : int option;  (** atom evaluations paid at this step *)
  }

  type view = {
    v_query : string;
    v_vars : string list;  (** binding order chosen by the planner *)
    v_individuals : int;
    v_threshold : int;  (** hash-join cardinality threshold *)
    v_forced : string option;  (** strategy override, if any *)
    v_order : string;  (** ["cost"] or ["syntactic"] *)
    v_executed : bool;
    v_steps : step_view list;
  }
end

type plan = Plan.plan

val compile :
  ?threshold:int ->
  ?force:Plan.strategy ->
  ?order:[ `Cost | `Syntactic ] ->
  Para.t ->
  t ->
  plan
(** Compile a cost-based plan.  Per-atom selectivity is estimated from
    told information (ABox assertions closed under told subsumption —
    upgraded to the classification index when one has already been
    built; compiling never triggers a build — and told role-edge
    fan-out) and per-verdict-kind observed costs from the session's
    cost records; atoms are ordered greedily cheapest-first so the most
    selective variables bind early.  [threshold] is the binding-set
    cardinality at which extension steps switch from nested-loop to
    hash-join (default 8, overridable via [DL4_JOIN_THRESHOLD]);
    [force] pins every extension step to one strategy (also via
    [DL4_JOIN=nested|hash]); [order:`Syntactic] keeps body order —
    the bench baseline.  Compiling performs no oracle probes. *)

val run : plan -> (string list * Truth.t) list
(** Execute the plan and return designated answer tuples (projected to
    [head]), deduplicated, tuples valued [t] before ⊤ — the same list,
    byte for byte, as {!answers_naive}, under every atom order and join
    strategy.  Join strategy per extension step is decided at run time
    from the {e actual} intermediate binding-set cardinality, so a
    mis-estimated plan degrades in speed, never in correctness.  A plan
    may be run repeatedly; each run overwrites the recorded actuals. *)

val run_bindings : plan -> ((string * string) list * Truth.t) list
(** Execute without pruning and return every complete binding with its
    value — including [f] and ⊥ ones.  Same contents and order as
    {!all_bindings_naive}. *)

val run_exactly : plan -> values:Truth.t list -> (string list * Truth.t) list
(** Execute the plan {e without pruning} (selecting [f] or ⊥ tuples means
    keeping exactly the rows pruning drops) and return the projected
    tuples whose body value is exactly one of [values], deduplicated by
    (tuple, value) pair, ≤t-stronger values first — byte-identical to
    {!answers_exactly_naive} under every atom order, join strategy, jobs
    setting and backend. *)

val explain : plan -> Plan.view
(** The stable plan description; includes per-step actuals once the plan
    has been executed. *)

val explain_json : plan -> string
(** {!explain} rendered as one-line JSON (schema tag ["dl4-plan/1"]). *)

val strategy_counts : plan -> (string * int) list
(** Strategy picks recorded by the last execution, as
    [("hash_join", n); ("nested_loop", m)] with zero entries omitted —
    the shape fed to the serve telemetry registry. *)

val answers : Para.t -> t -> (string list * Truth.t) list
(** Designated answer tuples (projected to [head]), deduplicated, with
    tuples valued [t] before tuples valued ⊤.  Thin wrapper:
    [run (compile para q)]. *)

val all_bindings : Para.t -> t -> ((string * string) list * Truth.t) list
(** Every complete binding with its value — including [f] and ⊥ ones; for
    diagnosis and tests.  Thin wrapper: [run_bindings (compile para q)]. *)

val answers_exactly :
  Para.t -> values:Truth.t list -> t -> (string list * Truth.t) list
(** Exact-value answers ([dl4 query --cq ... --exactly]): the tuples whose
    body value is exactly one of [values].  Thin wrapper:
    [run_exactly (compile para q) ~values]. *)

val answers_exactly_naive :
  Para.t -> values:Truth.t list -> t -> (string list * Truth.t) list
(** Exact-value answers via the unpruned cross product — the ground-truth
    differential reference for {!answers_exactly}. *)

val answers_staged : Para.t -> t -> (string list * Truth.t) list
(** The PR 2 staged enumerator with refuted-prefix subtree pruning —
    kept as a differential reference.  Same output as {!answers}. *)

val all_bindings_staged :
  Para.t -> t -> ((string * string) list * Truth.t) list
(** Staged enumeration without pruning — differential reference; same
    contents and order as {!all_bindings}. *)

val answers_naive : Para.t -> t -> (string list * Truth.t) list
(** Answers via the unpruned cross product — the ground-truth
    differential reference. *)

val all_bindings_naive :
  Para.t -> t -> ((string * string) list * Truth.t) list
(** The original cross-product enumeration, one full
    {!truth_of_binding_naive} per binding.  Same contents as
    {!all_bindings}, in the same order. *)
