(** Grounded conjunctive queries over a [SHOIN(D)4] knowledge base.

    A query is a conjunction of concept and role atoms over variables and
    individuals, e.g. [Q(x) ← Doctor(x) ∧ hasPatient(x, y)].  Semantics is
    {e grounded}: variables range over the named individuals of the KB (no
    existential unnamed witnesses), which is the usual pragmatic regime for
    instance retrieval front-ends.

    Answers are four-valued: the value of a grounded body is the ≤t-meet of
    its atoms' Belnap values (so one contradictory atom taints the tuple to
    ⊤, one denied atom makes it f).  [answers] returns the tuples whose
    value is designated (t or ⊤), most certain first.

    Every atom evaluation routes through the {!Para} oracle, and since PR 2
    the evaluation is {e staged}: atoms are checked as soon as their last
    variable is bound, so a refuted prefix ([f], the absorbing ≤t-bottom)
    prunes the whole subtree of completions instead of grounding the full
    |individuals|^|vars| cross product.  The [_naive] variants keep the
    original unstaged implementations as differential-testing references —
    same answers, more oracle traffic. *)

type term =
  | Var of string
  | Ind of string

type atom =
  | Concept_atom of Concept.t * term
  | Role_atom of Role.t * term * term

type t = {
  head : string list;  (** distinguished variables, in answer-tuple order *)
  body : atom list;
}

val make : head:string list -> body:atom list -> t
(** @raise Invalid_argument if a head variable does not occur in the body. *)

val variables : t -> string list
(** All variables of the body (sorted). *)

val truth_of_binding : Para.t -> t -> (string * string) list -> Truth.t
(** The Belnap value of the body under a complete variable binding.
    Short-circuits: atoms after the running meet hits [f] are not
    evaluated (sound because [f] is absorbing for {!Truth.conj}). *)

val truth_of_binding_naive : Para.t -> t -> (string * string) list -> Truth.t
(** The full fold over every atom — no short-circuit.  Same value as
    {!truth_of_binding}. *)

val answers : Para.t -> t -> (string list * Truth.t) list
(** Designated answer tuples (projected to [head]), deduplicated, with
    tuples valued [t] before tuples valued ⊤.  Enumerates with staged
    evaluation and subtree pruning. *)

val answers_naive : Para.t -> t -> (string list * Truth.t) list
(** Answers via the unpruned cross product — the differential reference. *)

val all_bindings : Para.t -> t -> ((string * string) list * Truth.t) list
(** Every complete binding with its value — including [f] and ⊥ ones; for
    diagnosis and tests.  Staged evaluation: refuted prefixes still yield
    their completions (valued [f] by absorption) without further oracle
    calls. *)

val all_bindings_naive :
  Para.t -> t -> ((string * string) list * Truth.t) list
(** The original cross-product enumeration, one full
    {!truth_of_binding_naive} per binding.  Same contents as
    {!all_bindings}, in the same order. *)
