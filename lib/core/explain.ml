type query =
  | Instance of string * Concept.t
  | Not_instance of string * Concept.t
  | Contradiction of string * Concept.t
  | Inclusion of Kb4.inclusion * Concept.t * Concept.t
  | Unsatisfiable

let pp_query ppf = function
  | Instance (a, c) -> Format.fprintf ppf "%s : %a" a Concept.pp c
  | Not_instance (a, c) -> Format.fprintf ppf "%s : ~(%a)" a Concept.pp c
  | Contradiction (a, c) -> Format.fprintf ppf "%s : %a = TOP" a Concept.pp c
  | Inclusion (k, c, d) ->
      Format.fprintf ppf "%a %s %a" Concept.pp c (Kb4.inclusion_symbol k)
        Concept.pp d
  | Unsatisfiable -> Format.pp_print_string ppf "unsatisfiable"

(* Each candidate sub-KB gets its own oracle (via [Para.create]): a
   contraction changes the induced K̄, so verdicts cached for one candidate
   are meaningless for the next.  The per-oracle cache still dedups the
   repeated probes within one candidate. *)
let holds ?max_nodes kb query =
  let config =
    match max_nodes with
    | None -> Session.default_config
    | Some max_nodes -> { Session.default_config with Session.max_nodes }
  in
  let t = Para.create ~config kb in
  match query with
  | Instance (a, c) -> Para.entails_instance t a c
  | Not_instance (a, c) -> Para.entails_not_instance t a c
  | Contradiction (a, c) ->
      Para.entails_instance t a c && Para.entails_not_instance t a c
  | Inclusion (k, c, d) -> Para.entails_inclusion t k c d
  | Unsatisfiable -> not (Para.satisfiable t)

(* Axioms as a uniform list, so contraction can treat TBox and ABox alike. *)
type tagged = T of Kb4.tbox_axiom | A of Axiom.abox_axiom

let to_tagged (kb : Kb4.t) =
  List.map (fun ax -> T ax) kb.tbox @ List.map (fun ax -> A ax) kb.abox

let of_tagged axs =
  List.fold_left
    (fun kb -> function
      | T ax -> Kb4.add_tbox kb ax
      | A ax -> Kb4.add_abox kb ax)
    Kb4.empty axs

let tagged_equal a b =
  match (a, b) with
  | T x, T y -> Kb4.compare_tbox_axiom x y = 0
  | A x, A y -> Axiom.compare_abox_axiom x y = 0
  | T _, A _ | A _, T _ -> false

(* Deletion-based contraction: walk the axioms once, dropping each axiom
   whose removal preserves the entailment. *)
let contract ?max_nodes axs query =
  let rec go kept = function
    | [] -> List.rev kept
    | ax :: rest ->
        let without = List.rev_append kept rest in
        if holds ?max_nodes (of_tagged without) query then go kept rest
        else go (ax :: kept) rest
  in
  go [] axs

let justification ?max_nodes kb query =
  Obs.with_span ~cat:"core" "explain.justification" (fun () ->
      if not (holds ?max_nodes kb query) then None
      else Some (of_tagged (contract ?max_nodes (to_tagged kb) query)))

(* Reiter-style hitting-set tree enumeration. *)
let all_justifications ?max_nodes ?(limit = 10) kb query =
  let seen : Kb4.t list ref = ref [] in
  let same_kb (k1 : Kb4.t) (k2 : Kb4.t) =
    List.length k1.tbox = List.length k2.tbox
    && List.length k1.abox = List.length k2.abox
    && List.for_all
         (fun ax -> List.exists (fun ax' -> Kb4.compare_tbox_axiom ax ax' = 0) k2.tbox)
         k1.tbox
    && List.for_all
         (fun ax ->
           List.exists (fun ax' -> Axiom.compare_abox_axiom ax ax' = 0) k2.abox)
         k1.abox
  in
  let rec explore axs =
    if List.length !seen >= limit then ()
    else if not (holds ?max_nodes (of_tagged axs) query) then ()
    else begin
      let j = of_tagged (contract ?max_nodes axs query) in
      if not (List.exists (same_kb j) !seen) then seen := j :: !seen;
      (* branch on removing each axiom of the justification *)
      List.iter
        (fun ax ->
          if List.length !seen < limit then
            explore (List.filter (fun ax' -> not (tagged_equal ax ax')) axs))
        (to_tagged j)
    end
  in
  explore (to_tagged kb);
  List.rev !seen

let contradictions_explained ?max_nodes t =
  Obs.with_span ~cat:"core" "explain.contradictions" (fun () ->
      List.filter_map
        (fun (a, concept_name) ->
          let q = Contradiction (a, Concept.Atom concept_name) in
          match justification ?max_nodes (Para.kb t) q with
          | Some j -> Some (a, concept_name, j)
          | None -> None)
        (Para.contradictions t))
