(* Every boolean entailment verdict of this module routes through
   [Engine.Oracle] (the cache- and pool-owning choke point); there are no
   direct tableau calls in the query paths below. *)

type t = { engine : Engine.t }

let create ?config kb = { engine = Session.engine (Session.create ?config kb) }

let of_engine engine = { engine }
let of_session s = { engine = Session.engine s }
let session t = Session.of_engine t.engine
let apply t d = Engine.apply t.engine d
let engine t = t.engine
let oracle t = Engine.oracle t.engine
let kb t = Engine.kb t.engine
let classical_kb t = Oracle.classical_kb (oracle t)
let classical_reasoner t = Oracle.reasoner (oracle t)
let satisfiable t = Engine.satisfiable t.engine
let entails_instance t a c = Engine.entails_instance t.engine a c
let entails_not_instance t a c = Engine.entails_not_instance t.engine a c
let instance_truth t a c = Engine.instance_truth t.engine a c
let entails_inclusion t kind c d = Engine.entails_inclusion t.engine kind c d
let role_truth t a r b = Engine.role_truth t.engine a r b
let atomic_subsumes t a b = Engine.subsumes t.engine a b

let signature_atoms t =
  (* [Axiom.signature] already deduplicates, but classification would pay
     every duplicate with a full row of tableau calls — keep the guarantee
     local *)
  List.sort_uniq String.compare (Kb4.signature (kb t)).concepts

let classify_naive t =
  let atoms = signature_atoms t in
  List.map
    (fun a ->
      let candidates = List.filter (fun b -> b <> a) atoms in
      (a, List.filter (atomic_subsumes t a) candidates))
    atoms

let classify t = Engine.classify t.engine
let taxonomy t = Engine.taxonomy t.engine

(* Batched grid evaluation: both information bits of every pair are
   submitted to the oracle as one batch, so the pool overlaps the tableau
   work and repeated pairs share one verdict. *)
let instance_truths t pairs =
  let sp = Obs.enter ~cat:"core" "para.grid" in
  if Obs.live sp then Obs.set_attr sp "pairs" (string_of_int (List.length pairs));
  let queries =
    List.concat_map
      (fun (a, c) -> [ Oracle.Instance (a, c); Oracle.Not_instance (a, c) ])
      pairs
  in
  let verdicts =
    Fun.protect
      ~finally:(fun () -> Obs.exit_span sp)
      (fun () -> Oracle.check_all (oracle t) queries)
  in
  let rec zip pairs verdicts =
    match (pairs, verdicts) with
    | [], [] -> []
    | (a, c) :: ps, told_true :: told_false :: vs ->
        (a, c, Truth.of_pair ~told_true ~told_false) :: zip ps vs
    | _ -> assert false
  in
  zip pairs verdicts

(* The role-edge twin of [instance_truths], for the planner's hash-join
   materialization: both information bits of every triple go out as one
   batch. *)
let role_truths t triples =
  let sp = Obs.enter ~cat:"core" "para.role_grid" in
  if Obs.live sp then
    Obs.set_attr sp "triples" (string_of_int (List.length triples));
  let queries =
    List.concat_map
      (fun (a, r, b) -> [ Oracle.Role_pos (a, r, b); Oracle.Role_neg (a, r, b) ])
      triples
  in
  let verdicts =
    Fun.protect
      ~finally:(fun () -> Obs.exit_span sp)
      (fun () -> Oracle.check_all (oracle t) queries)
  in
  let rec zip triples verdicts =
    match (triples, verdicts) with
    | [], [] -> []
    | (a, r, b) :: ts, told_true :: told_false :: vs ->
        (a, r, b, Truth.of_pair ~told_true ~told_false) :: zip ts vs
    | _ -> assert false
  in
  zip triples verdicts

(* Exact-value verdicts: the four-valued transform already gives the
   pos/neg pair of every fact, so the exact Belnap value is decided from
   two oracle probes — batched through the grid paths above. *)
type value = [ `T | `F | `B | `N ]

let value_of_truth = function
  | Truth.True -> `T
  | Truth.False -> `F
  | Truth.Both -> `B
  | Truth.Neither -> `N

let truth_of_value = function
  | `T -> Truth.True
  | `F -> Truth.False
  | `B -> Truth.Both
  | `N -> Truth.Neither

let truth_value t a c =
  match instance_truths t [ (a, c) ] with
  | [ (_, _, v) ] -> value_of_truth v
  | _ -> assert false

let role_truth_value t a r b =
  match role_truths t [ (a, r, b) ] with
  | [ (_, _, _, v) ] -> value_of_truth v
  | _ -> assert false

let grid_pairs (signature : Axiom.signature) =
  List.concat_map
    (fun a -> List.map (fun c -> (a, c)) signature.Axiom.concepts)
    signature.Axiom.individuals

let contradictions t =
  let pairs = grid_pairs (Kb4.signature (kb t)) in
  List.filter_map
    (fun ((a, c), (_, _, v)) ->
      match v with
      | Truth.Both -> Some (a, c)
      | Truth.True | Truth.False | Truth.Neither -> None)
    (List.combine pairs
       (instance_truths t
          (List.map (fun (a, c) -> (a, Concept.Atom c)) pairs)))

let truth_table t ~individuals ~concepts =
  List.map
    (fun a ->
      ( a,
        List.map
          (fun (_, c, v) -> (c, v))
          (instance_truths t (List.map (fun c -> (a, c)) concepts)) ))
    individuals

let retrieve t c =
  List.map
    (fun (a, _, v) -> (a, v))
    (instance_truths t
       (List.map (fun a -> (a, c)) (Kb4.signature (kb t)).individuals))

let retrieve_naive t c =
  List.map
    (fun a -> (a, instance_truth t a c))
    (Kb4.signature (kb t)).individuals

let retrieve_instances t c =
  List.filter_map
    (fun (a, v) -> if Truth.designated v then Some a else None)
    (retrieve t c)

let inconsistency_degree t =
  let pairs = grid_pairs (Kb4.signature (kb t)) in
  let informative = ref 0 and contradictory = ref 0 in
  List.iter
    (fun (_, _, v) ->
      match v with
      | Truth.Both ->
          incr informative;
          incr contradictory
      | Truth.True | Truth.False -> incr informative
      | Truth.Neither -> ())
    (instance_truths t (List.map (fun (a, c) -> (a, Concept.Atom c)) pairs));
  if !informative = 0 then 0.
  else float_of_int !contradictory /. float_of_int !informative

let find_model4 t =
  match Reasoner.find_model (classical_reasoner t) with
  | None -> None
  | Some m ->
      let candidate =
        Induced.four_of_classical ~signature:(Kb4.signature (kb t)) m
      in
      if Interp4.is_model candidate (kb t) then Some candidate else None
