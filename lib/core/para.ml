type t = {
  kb : Kb4.t;
  classical_kb : Axiom.kb;
  reasoner : Reasoner.t;
}

let create ?max_nodes ?max_branches kb =
  let classical_kb = Transform.kb kb in
  { kb;
    classical_kb;
    reasoner = Reasoner.create ?max_nodes ?max_branches classical_kb }

let kb t = t.kb
let classical_kb t = t.classical_kb
let classical_reasoner t = t.reasoner

let satisfiable t = Reasoner.is_consistent t.reasoner

let entails_instance t a c =
  not (Reasoner.consistent_with t.reasoner [ Transform.instance_query c a ])

let entails_not_instance t a c =
  not
    (Reasoner.consistent_with t.reasoner [ Transform.negative_instance_query c a ])

let instance_truth t a c =
  Truth.of_pair
    ~told_true:(entails_instance t a c)
    ~told_false:(entails_not_instance t a c)

let entails_inclusion t kind c d =
  List.for_all
    (fun test -> not (Reasoner.concept_satisfiable t.reasoner test))
    (Transform.inclusion_tests kind c d)

let role_truth t a r b =
  let told_true = Reasoner.role_entailed t.reasoner a (Transform.plus_role r) b in
  let told_false =
    not
      (Reasoner.consistent_with t.reasoner
         [ Axiom.Role_assertion (a, Transform.eq_role r, b) ])
  in
  Truth.of_pair ~told_true ~told_false

let atomic_subsumes t a b =
  entails_inclusion t Kb4.Internal (Concept.Atom a) (Concept.Atom b)

let signature_atoms t =
  (* [Axiom.signature] already deduplicates, but classification would pay
     every duplicate with a full row of tableau calls — keep the guarantee
     local *)
  List.sort_uniq String.compare (Kb4.signature t.kb).concepts

let classify_naive t =
  let atoms = signature_atoms t in
  List.map
    (fun a ->
      let candidates = List.filter (fun b -> b <> a) atoms in
      (a, List.filter (atomic_subsumes t a) candidates))
    atoms

let classify t =
  (Classify.run ~atoms:(signature_atoms t)
     ~told:(Engine.told_subsumptions t.kb)
     ~test:(atomic_subsumes t))
    .Classify.supers

let taxonomy t = Classify.taxonomy (classify t)

let contradictions t =
  let signature = Kb4.signature t.kb in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun c ->
          match instance_truth t a (Concept.Atom c) with
          | Truth.Both -> Some (a, c)
          | Truth.True | Truth.False | Truth.Neither -> None)
        signature.concepts)
    signature.individuals

let truth_table t ~individuals ~concepts =
  List.map
    (fun a ->
      (a, List.map (fun c -> (c, instance_truth t a c)) concepts))
    individuals

let retrieve t c =
  List.map
    (fun a -> (a, instance_truth t a c))
    (Kb4.signature t.kb).individuals

let retrieve_instances t c =
  List.filter_map
    (fun (a, v) -> if Truth.designated v then Some a else None)
    (retrieve t c)

let inconsistency_degree t =
  let signature = Kb4.signature t.kb in
  let informative = ref 0 and contradictory = ref 0 in
  List.iter
    (fun a ->
      List.iter
        (fun c ->
          match instance_truth t a (Concept.Atom c) with
          | Truth.Both ->
              incr informative;
              incr contradictory
          | Truth.True | Truth.False -> incr informative
          | Truth.Neither -> ())
        signature.concepts)
    signature.individuals;
  if !informative = 0 then 0.
  else float_of_int !contradictory /. float_of_int !informative

let find_model4 t =
  match Reasoner.find_model t.reasoner with
  | None -> None
  | Some m ->
      let candidate =
        Induced.four_of_classical ~signature:(Kb4.signature t.kb) m
      in
      if Interp4.is_model candidate t.kb then Some candidate else None
