(** Paraconsistent reasoning with inconsistent OWL DL ontologies — the
    paper's contribution, as a library.

    A {!t} wraps a [SHOIN(D)4] knowledge base [K] together with its
    classical induced KB [K̄] (Definition 7).  By Theorem 6, the
    four-valued models of [K] correspond exactly to the classical models of
    [K̄], so every four-valued reasoning task below is answered by
    classical reasoning over [K̄] — "mature reasoning mechanisms of
    classical description logic remain useful" (§6).

    Since PR 2, every boolean entailment verdict of this module routes
    through one {!Engine.Oracle} (reachable via {!oracle}): a shared
    canonical-keyed verdict cache plus an optional OCaml 5 domain pool, so
    repeated and batch query traffic (retrieval, contradiction scans,
    conjunctive queries) pays each distinct tableau question once and can
    overlap the tableau work across domains ([?jobs]).

    The flagship query is {!instance_truth}: the Belnap value the knowledge
    base supports for [C(a)] —

    - [True]: there is information that [a] is a [C] and none that it is
      not;
    - [False]: information that it is not, none that it is;
    - [Both] (⊤): the KB is contradictory about [C(a)] — the contradiction
      is {e localized} here instead of trivializing the KB;
    - [Neither] (⊥): the KB says nothing about [C(a)]. *)

type t

val create : ?config:Session.config -> Kb4.t -> t
(** Build the query layer over a fresh session; [config] defaults to
    {!Session.default_config}.  Equivalent to
    [of_session (Session.create ?config kb)]. *)

val of_session : Session.t -> t
(** The paper-level query API over a session's shared stack (one oracle,
    one cache, one pool — verdicts paid through the session's engine are
    cache hits here and vice versa). *)

val session : t -> Session.t
(** The session facade over this instance's engine (same shared stack;
    e.g. for {!Session.apply} or {!Session.config}). *)

val of_engine : Engine.t -> t
(** Wrap an existing engine.  The wrapper is stateless: it shares the
    engine's oracle — verdict cache, domain pool and
    classification/realization indexes — so a verdict or index built
    through either wrapper serves both. *)

val engine : t -> Engine.t

val apply : t -> Delta.t -> Oracle.apply_stats
(** Incremental update of the underlying KB — see {!Session.apply} and
    {!Oracle.apply} for the invalidation contract.  All wrappers of the
    same engine observe the updated KB. *)

val oracle : t -> Oracle.t
val kb : t -> Kb4.t
val classical_kb : t -> Axiom.kb
(** The induced [K̄] of Definition 7. *)

val classical_reasoner : t -> Reasoner.t
(** The oracle's coordinating reasoner — for non-verdict services (model
    extraction, tableau statistics), not a query back door. *)

val satisfiable : t -> bool
(** Four-valued satisfiability of [K], decided as classical satisfiability
    of [K̄] (Theorem 6).  Unlike classical [SHOIN(D)], most inconsistent
    ontologies are four-valued satisfiable; unsatisfiability arises only
    from hard constraints (⊥-assertions, number-restriction conflicts on
    told information, ≠-clashes). *)

val entails_instance : t -> string -> Concept.t -> bool
(** [entails_instance t a c] is [K ⊨⁴ C(a)]: does every four-valued model
    put [aᴵ ∈ proj⁺(Cᴵ)]?  Decided as inconsistency of
    [K̄ ∪ {ā : ¬C̄}]. *)

val entails_not_instance : t -> string -> Concept.t -> bool
(** [K ⊨⁴ (¬C)(a)] — "is there information that [a] is not a [C]?". *)

val instance_truth : t -> string -> Concept.t -> Truth.t
(** Combines the two entailments into the supported Belnap value. *)

val instance_truths :
  t -> (string * Concept.t) list -> (string * Concept.t * Truth.t) list
(** Batched {!instance_truth}: both information bits of every pair are
    submitted to the oracle as one {!Oracle.check_all} batch, in input
    order — the building block of {!retrieve}, {!contradictions},
    {!truth_table} and {!inconsistency_degree}. *)

val role_truths :
  t ->
  (string * Role.t * string) list ->
  (string * Role.t * string * Truth.t) list
(** Batched {!role_truth}, in input order — the role-edge twin of
    {!instance_truths}, used by the query planner's hash-join
    materialization. *)

(** {1 Exact-value verdicts}

    The audit surface of Bienvenu, Bourgaux & Kozhemiachenko 2024: ask for
    the {e exact} Belnap value of a fact, not merely ≥t entailment. *)

type value = [ `T | `F | `B | `N ]
(** The four values as a polymorphic-variant view, for callers that want an
    exhaustive match without depending on [Truth.t]. *)

val value_of_truth : Truth.t -> value
val truth_of_value : value -> Truth.t

val truth_value : t -> string -> Concept.t -> value
(** [truth_value t a c] is the exact value of [C(a)], decided from the
    pos/neg pair of the four-valued transform via two batched oracle
    probes.  [value_of_truth (instance_truth t a c)], one batch. *)

val role_truth_value : t -> string -> Role.t -> string -> value
(** Role analogue of {!truth_value} for [R(a,b)]. *)

val entails_inclusion : t -> Kb4.inclusion -> Concept.t -> Concept.t -> bool
(** Corollary 7: [C ⊑kind D] holds in [K] iff the corresponding test
    concepts are unsatisfiable w.r.t. [K̄]. *)

val role_truth : t -> string -> Role.t -> string -> Truth.t
(** Supported Belnap value for [R(a, b)]: told-true iff [K̄ ⊨ R⁺(a,b)],
    told-false iff [K̄ ∪ {R⁼(a,b)}] is inconsistent (the negative part of
    [Rᴵ] is the complement of [R⁼] under Definition 8). *)

val classify : t -> (string * string list) list
(** Atomic concept hierarchy under internal inclusion ⊏ (the inclusion whose
    satisfaction mirrors classical ⊑ on told-positive information).
    Delegates to the engine's {!Classify} index: told-subsumer seeding plus
    DAG-pruned search, rows sharded across the domain pool, so most pairs
    are answered without a tableau call.  Built once and cached.  Same
    contents as {!classify_naive}. *)

val classify_naive : t -> (string * string list) list
(** The O(n²) all-pairs baseline — one oracle subsumption test per ordered
    pair of distinct atoms, no told seeding or DAG pruning.  Kept as the
    differential-testing and benchmarking reference for {!classify}. *)

val taxonomy : t -> (string list * string list) list
(** The classification as a reduced taxonomy: equivalence classes of atomic
    concepts (each led by its canonical representative) paired with their
    {e direct} super-class representatives (transitive reduction of
    {!classify}). *)

val contradictions : t -> (string * string) list
(** All (individual, atomic concept) pairs whose {!instance_truth} is [Both]
    — the localized contradictions of the ontology.  Quadratic in the
    signature; evaluated as one batched grid so the domain pool shares the
    work.  Meant for diagnosis and the evaluation harness. *)

val truth_table : t -> individuals:string list -> concepts:Concept.t list ->
  (string * (Concept.t * Truth.t) list) list
(** [truth_table t ~individuals ~concepts] evaluates {!instance_truth} on
    the grid (batched) — the shape of the paper's Table 4. *)

val retrieve : t -> Concept.t -> (string * Truth.t) list
(** The supported Belnap value of [C(a)] for every named individual of the
    KB — four-valued instance retrieval, submitted as one oracle batch. *)

val retrieve_naive : t -> Concept.t -> (string * Truth.t) list
(** The pre-refactor sequential loop (one {!instance_truth} per
    individual).  Same answers as {!retrieve}; kept as its
    differential-testing reference. *)

val retrieve_instances : t -> Concept.t -> string list
(** The individuals whose value for [C] is designated ([t] or ⊤). *)

val inconsistency_degree : t -> float
(** Fraction of entries of the (individual × atomic concept) grid that are
    valued ⊤, among the entries carrying any information (value ≠ ⊥) — a
    simple inconsistency measure in the style of the paraconsistency
    literature.  [0.] for contradiction-free KBs (and for empty grids). *)

val find_model4 : t -> Interp4.t option
(** A verified finite four-valued model of [K], obtained by extracting a
    classical model of [K̄] from the tableau and reading it back through
    Definition 9.  [None] if [K] is 4-unsatisfiable or no finite model was
    constructed. *)
