module SS = Set.Make (String)

type stats = {
  atoms : int;
  naive_tests : int;
  tableau_tests : int;
  told_hits : int;
  dag_hits : int;
}

let tableau_calls_saved s = s.naive_tests - s.tableau_tests

let pp_stats ppf s =
  Format.fprintf ppf
    "%d atoms: %d tableau calls (naive %d; saved %d = %d told + %d dag)"
    s.atoms s.tableau_tests s.naive_tests (tableau_calls_saved s) s.told_hits
    s.dag_hits

type t = { supers : (string * string list) list; stats : stats }

(* ------------------------------------------------------------------ *)
(* Preparation: everything derivable from the signature and the told
   axioms alone.  The result is read-only, so shards of the row loop can
   share one [prep] across domains. *)

type prep = {
  atoms : string list;  (* sorted, unique *)
  order : string list;  (* top-down topological order of the told DAG *)
  closure : (string, SS.t) Hashtbl.t;  (* fully populated, never mutated *)
}

let prepare ~atoms ~told =
  let atoms = List.sort_uniq String.compare atoms in
  let atom_set = SS.of_list atoms in
  (* direct told edges, restricted to the signature *)
  let told_edges = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      if a <> b && SS.mem a atom_set && SS.mem b atom_set then
        let cur =
          Option.value ~default:SS.empty (Hashtbl.find_opt told_edges a)
        in
        Hashtbl.replace told_edges a (SS.add b cur))
    told;
  (* reflexive-transitive closure of the told graph, computed eagerly for
     every atom (iterative DFS: told cycles — equivalent atoms — are
     allowed), so the table is read-only by the time workers see it *)
  let closure = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let seen = ref (SS.singleton a) in
      let stack = ref [ a ] in
      while !stack <> [] do
        let x = List.hd !stack in
        stack := List.tl !stack;
        SS.iter
          (fun y ->
            if not (SS.mem y !seen) then begin
              seen := SS.add y !seen;
              stack := y :: !stack
            end)
          (Option.value ~default:SS.empty (Hashtbl.find_opt told_edges x))
      done;
      Hashtbl.add closure a !seen)
    atoms;
  let told_sup a =
    Option.value ~default:SS.empty (Hashtbl.find_opt closure a)
  in
  (* top-down order: an atom's told subsumers come before it.  Sorting by
     closure cardinality is a topological order of the told DAG (strict told
     subsumers have strictly smaller closures); told-equivalent atoms tie,
     where either order prunes equally well. *)
  let order =
    List.sort
      (fun a b ->
        let c =
          Int.compare (SS.cardinal (told_sup a)) (SS.cardinal (told_sup b))
        in
        if c <> 0 then c else String.compare a b)
      atoms
  in
  { atoms; order; closure }

let atoms p = p.atoms
let order p = p.order

let told_sup p a =
  Option.value ~default:SS.empty (Hashtbl.find_opt p.closure a)

(* ------------------------------------------------------------------ *)
(* The row loop: one atom's supers, with told seeding and DAG pruning.
   [rows] walks a shard of the classification order sequentially, carrying
   a shard-local results table so positive verdicts of earlier rows keep
   pruning later ones.  The final supers are the exact subsumption
   relation whatever the sharding — pruning only skips tests whose answer
   is already implied — so shard-parallel runs stay byte-identical. *)

type row = {
  atom : string;
  row_supers : SS.t;
  row_tests : int;
  row_told : int;
  row_dag : int;
}

let rows p ~test shard =
  let results = Hashtbl.create 16 in
  List.map
    (fun a ->
      let seeds = SS.remove a (told_sup p a) in
      let row_told = SS.cardinal seeds in
      let tests = ref 0 and dag = ref 0 in
      let pos = ref seeds and neg = ref SS.empty in
      List.iter
        (fun b ->
          if b <> a && (not (SS.mem b !pos)) && not (SS.mem b !neg) then
            if SS.exists (fun c -> c <> b && SS.mem c !neg) (told_sup p b)
            then begin
              (* a ⋢ c for a told subsumer c of b, so a ⋢ b *)
              neg := SS.add b !neg;
              incr dag
            end
            else begin
              incr tests;
              if test a b then begin
                pos := SS.add b !pos;
                let known_b =
                  match Hashtbl.find_opt results b with
                  | Some sb -> SS.union (told_sup p b) sb
                  | None -> told_sup p b
                in
                let extra = SS.diff (SS.remove a (SS.remove b known_b)) !pos in
                dag := !dag + SS.cardinal extra;
                pos := SS.union !pos extra
              end
              else neg := SS.add b !neg
            end)
        p.order;
      Hashtbl.replace results a !pos;
      { atom = a;
        row_supers = !pos;
        row_tests = !tests;
        row_told;
        row_dag = !dag })
    shard

let collect p row_list =
  let by_atom = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace by_atom r.atom r) row_list;
  let supers =
    List.map
      (fun a ->
        match Hashtbl.find_opt by_atom a with
        | Some r -> (a, SS.elements r.row_supers)
        | None -> invalid_arg ("Classify.collect: missing row for " ^ a))
      p.atoms
  in
  let n = List.length p.atoms in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 row_list in
  { supers;
    stats =
      { atoms = n;
        naive_tests = n * (n - 1);
        tableau_tests = sum (fun r -> r.row_tests);
        told_hits = sum (fun r -> r.row_told);
        dag_hits = sum (fun r -> r.row_dag) } }

let run ~atoms ~told ~test =
  let p = prepare ~atoms ~told in
  collect p (rows p ~test p.order)

let supers_fn t a = try List.assoc a t.supers with Not_found -> []

(* Group equivalent atoms and reduce the subsumption DAG to direct edges
   (previously inlined in [Para.taxonomy]). *)
let taxonomy hierarchy =
  let supers a = try List.assoc a hierarchy with Not_found -> [] in
  let equiv a b = List.mem b (supers a) && List.mem a (supers b) in
  let atoms = List.map fst hierarchy in
  (* canonical representative: first member in signature order *)
  let repr a = List.find (fun b -> equiv a b || b = a) atoms in
  let classes =
    List.filter_map
      (fun a ->
        if repr a = a then
          Some (a :: List.filter (fun b -> b <> a && equiv a b) atoms)
        else None)
      atoms
  in
  let strict_supers a = List.filter (fun b -> not (equiv a b)) (supers a) in
  List.map
    (fun cls ->
      let a = List.hd cls in
      let ss = strict_supers a in
      (* direct supers: not implied through another strict super *)
      let direct =
        List.filter
          (fun b ->
            (not
               (List.exists (fun c -> c <> b && List.mem b (strict_supers c)) ss))
            && repr b = b)
          ss
      in
      (cls, direct))
    classes
