(** TBox classification by told-subsumer seeding and DAG-pruned search,
    replacing the naive all-pairs subsumption loop.

    [run] computes, for every atomic concept, its full set of atomic
    subsumers under a subsumption oracle [test], but answers most pairs
    without consulting the oracle:

    - {e told seeding}: subsumptions syntactically present in the TBox
      (closed under reflexive-transitive closure) are taken as positives for
      free;
    - {e positive propagation}: once [a ⊑ b] is established, every known
      subsumer of [b] (told, or computed when [b] was classified earlier) is
      a subsumer of [a];
    - {e negative pruning}: candidates are visited top-down (told subsumers
      before their subsumees), so when [a ⋢ c] is settled, every candidate
      [b] with a told path [b ⊑ c] is refuted without a test.

    Preconditions for agreement with the naive loop: [test] must be a
    preorder (reflexive, transitive) and every [told] pair must be entailed
    by [test].  Both hold for DL subsumption with told axioms drawn from the
    same TBox. *)

type stats = {
  atoms : int;
  naive_tests : int;    (** the all-pairs baseline: [n * (n - 1)] oracle calls *)
  tableau_tests : int;  (** oracle calls actually made *)
  told_hits : int;      (** pairs answered by the told closure *)
  dag_hits : int;       (** pairs answered by propagation or pruning *)
}

val tableau_calls_saved : stats -> int
(** [naive_tests - tableau_tests]. *)

val pp_stats : Format.formatter -> stats -> unit

type t = {
  supers : (string * string list) list;
      (** for each atom (sorted), its sorted atomic subsumers, self excluded
          — the same shape and contents as the naive all-pairs loop *)
  stats : stats;
}

val run :
  atoms:string list ->
  told:(string * string) list ->
  test:(string -> string -> bool) ->
  t
(** [atoms] are deduplicated and sorted; [told] pairs mentioning unknown
    atoms are ignored.  Equivalent to
    [collect p (rows p ~test (order p))] on [prepare ~atoms ~told]. *)

(** {1 Sharded driving}

    The row loop decomposes so independent shards of the classification
    order can run on separate domains (see {!Oracle.map_batches}): [prepare]
    precomputes the read-only told closure and order, [rows] walks one shard
    (carrying shard-local positive propagation), [collect] reassembles rows
    into signature order and sums the statistics.  The resulting [supers]
    are byte-identical whatever the sharding; only the stats (how many
    tests each pruning rule saved) depend on it. *)

type prep
(** Read-only preprocessing of the signature and told axioms; safe to share
    across domains. *)

val prepare : atoms:string list -> told:(string * string) list -> prep
val atoms : prep -> string list
(** Sorted, deduplicated. *)

val order : prep -> string list
(** The top-down classification order — the canonical work list to shard. *)

type row
(** One atom's computed supers plus its per-row statistics. *)

val rows : prep -> test:(string -> string -> bool) -> string list -> row list
(** Classify a shard of {!order} sequentially, in the given order. *)

val collect : prep -> row list -> t
(** Reassemble rows (one per atom of the signature, any order) into {!t}.
    @raise Invalid_argument if an atom's row is missing. *)

val supers_fn : t -> string -> string list
(** Lookup into {!t.supers} ([[]] for unknown atoms). *)

val taxonomy : (string * string list) list -> (string list * string list) list
(** Reduce a full subsumer map to a taxonomy: equivalence classes of atoms
    (each led by its canonical, first-in-order representative) paired with
    their {e direct} super-class representatives (transitive reduction). *)
