(* Typed knowledge-base deltas: add/retract ABox assertions, monotone TBox
   additions.  A delta is expressed in the user-level four-valued
   vocabulary; the oracle maps it through the axiom-local incremental path
   of the transform layer ([Transform.abox_delta]/[tbox_delta]) when
   applying it to the classical induced KB. *)

type t = {
  add_abox : Axiom.abox_axiom list;
  retract_abox : Axiom.abox_axiom list;
  add_tbox : Kb4.tbox_axiom list;
}

let empty = { add_abox = []; retract_abox = []; add_tbox = [] }

let is_empty d =
  d.add_abox = [] && d.retract_abox = [] && d.add_tbox = []

let touches_abox d = d.add_abox <> [] || d.retract_abox <> []

(* Remove the first structurally-equal occurrence of each retraction;
   absent retractions are ignored.  Must mirror
   [Reasoner.apply_delta]'s removal on the classical side so the
   four-valued KB and [K̄] stay in Definition-7 correspondence. *)
let remove_each axs abox =
  List.fold_left
    (fun abox ax ->
      let rec drop = function
        | [] -> []
        | hd :: tl -> if hd = ax then tl else hd :: drop tl
      in
      drop abox)
    abox axs

let apply_kb4 (kb : Kb4.t) d =
  { Kb4.tbox = kb.Kb4.tbox @ d.add_tbox;
    abox = remove_each d.retract_abox kb.Kb4.abox @ d.add_abox }

(* ------------------------------------------------------------------ *)
(* Touched symbols *)

let abox_axiom_individuals (ax : Axiom.abox_axiom) =
  match ax with
  | Axiom.Instance_of (a, c) -> a :: Concept.individual_names c
  | Axiom.Role_assertion (a, _, b) -> [ a; b ]
  | Axiom.Data_assertion (a, _, _) -> [ a ]
  | Axiom.Same (a, b) | Axiom.Different (a, b) -> [ a; b ]

let individuals d =
  List.sort_uniq String.compare
    (List.concat_map abox_axiom_individuals (d.add_abox @ d.retract_abox))

let abox_axiom_atoms (ax : Axiom.abox_axiom) =
  match ax with
  | Axiom.Instance_of (_, c) -> Concept.atom_names c
  | Axiom.Role_assertion _ | Axiom.Data_assertion _ | Axiom.Same _
  | Axiom.Different _ ->
      []

let tbox_axiom_atoms (ax : Kb4.tbox_axiom) =
  match ax with
  | Kb4.Concept_inclusion (_, c, d) ->
      Concept.atom_names c @ Concept.atom_names d
  | Kb4.Role_inclusion _ | Kb4.Data_role_inclusion _ | Kb4.Transitive _ -> []

let atoms d =
  List.sort_uniq String.compare
    (List.concat_map abox_axiom_atoms (d.add_abox @ d.retract_abox)
    @ List.concat_map tbox_axiom_atoms d.add_tbox)

(* ------------------------------------------------------------------ *)
(* Surface syntax: one statement per line, '+' adds, '-' retracts.

     # comments and blank lines are fine
     + tweety : Fly.
     + Penguin < Bird.
     - hasWing(tweety, w).

   Retractions must be ABox assertions (TBox additions are monotone by
   design: retracting an axiom invalidates arbitrary unfolding state, so
   it is deliberately not expressible).  A replay script is a sequence of
   such deltas separated by lines starting with "---". *)

(* Each line is parsed individually (the grammar promises one statement
   per line), so a failure can report the offending line verbatim next
   to its file-absolute number — batch-parsing the concatenated
   payloads, as an earlier version did, loses both. *)
exception Parse_fail of string

let parse ?(first_line = 1) text =
  let lines = String.split_on_char '\n' text in
  let fail lineno line fmt =
    Format.kasprintf
      (fun msg -> raise (Parse_fail (Format.sprintf "line %d: %S: %s" lineno line msg)))
      fmt
  in
  try
    let added = ref [] and retracted = ref [] in
    List.iteri
      (fun i raw ->
        let line = String.trim raw in
        let lineno = i + first_line in
        if line = "" || line.[0] = '#' then ()
        else
          let payload =
            String.trim (String.sub line 1 (String.length line - 1))
          in
          match line.[0] with
          | ('+' | '-') as sign -> (
              match Surface.parse_kb4 payload with
              | Error e ->
                  fail lineno line "%s (at offset %d of the statement)"
                    e.Surface.message e.Surface.offset
              | Ok kb ->
                  if sign = '+' then added := kb :: !added
                  else if kb.Kb4.tbox <> [] then
                    fail lineno line
                      "retracting TBox axioms is not supported (TBox deltas \
                       are monotone additions)"
                  else retracted := kb :: !retracted)
          | _ ->
              fail lineno line
                "expected '+ <statement>.' or '- <statement>.'")
      lines;
    let adds = List.rev !added and dels = List.rev !retracted in
    Ok
      { add_abox = List.concat_map (fun (kb : Kb4.t) -> kb.Kb4.abox) adds;
        retract_abox = List.concat_map (fun (kb : Kb4.t) -> kb.Kb4.abox) dels;
        add_tbox = List.concat_map (fun (kb : Kb4.t) -> kb.Kb4.tbox) adds }
  with Parse_fail e -> Error e

let parse_script text =
  (* each chunk carries the 1-based file line its first line sits on, so
     per-line parse errors point into the script, not into the chunk *)
  let rec chunks acc start cur line_no = function
    | [] -> List.rev ((start, List.rev cur) :: acc)
    | line :: rest ->
        if String.length (String.trim line) >= 3
           && String.sub (String.trim line) 0 3 = "---"
        then
          chunks ((start, List.rev cur) :: acc) (line_no + 1) [] (line_no + 1)
            rest
        else chunks acc start (line :: cur) (line_no + 1) rest
  in
  let rec collect i = function
    | [] -> Ok []
    | (start, chunk) :: rest -> (
        match parse ~first_line:start (String.concat "\n" chunk) with
        | Error e -> Error (Format.asprintf "delta %d: %s" (i + 1) e)
        | Ok d -> (
            match collect (i + 1) rest with
            | Error _ as e -> e
            | Ok ds -> Ok (if is_empty d then ds else d :: ds)))
  in
  collect 0 (chunks [] 1 [] 1 (String.split_on_char '\n' text))

let pp ppf d =
  List.iter (fun ax -> Format.fprintf ppf "+ %a@." Kb4.pp_tbox_axiom ax) d.add_tbox;
  List.iter (fun ax -> Format.fprintf ppf "+ %a@." Axiom.pp_abox_axiom ax) d.add_abox;
  List.iter
    (fun ax -> Format.fprintf ppf "- %a@." Axiom.pp_abox_axiom ax)
    d.retract_abox

let to_string d = Format.asprintf "%a" pp d
