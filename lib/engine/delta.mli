(** Typed knowledge-base deltas.

    A delta edits the four-valued KB [K] in place: ABox assertions can be
    added and retracted, TBox axioms can only be {e added} (monotone —
    retracting an inclusion invalidates arbitrary absorbed/unfolded state,
    so it deliberately has no spelling).  Deltas are expressed in the
    user-level vocabulary; {!Oracle.apply} pushes them through the
    axiom-local incremental path of the transform layer
    ({!Transform.abox_delta} / {!Transform.tbox_delta}) so the classical
    induced KB [K̄] is updated without being re-transformed. *)

type t = {
  add_abox : Axiom.abox_axiom list;
  retract_abox : Axiom.abox_axiom list;
      (** each retraction removes the first structurally-equal occurrence;
          absent retractions are ignored *)
  add_tbox : Kb4.tbox_axiom list;
}

val empty : t
val is_empty : t -> bool

val touches_abox : t -> bool
(** Does the delta add or retract any ABox assertion? *)

val apply_kb4 : Kb4.t -> t -> Kb4.t
(** Pure application: retractions first, then additions appended. *)

val individuals : t -> string list
(** The named individuals the delta touches: subjects of every added or
    retracted assertion, plus nominal references inside asserted concepts.
    Sorted, deduplicated.  Seeds the connected-component closure that
    decides which cached verdicts a delta can affect. *)

val atoms : t -> string list
(** User-level atomic concept names occurring anywhere in the delta.
    Sorted, deduplicated. *)

(** {1 Surface syntax}

    One statement per line in the dl4 surface syntax, prefixed by [+]
    (add) or [-] (retract); blank lines and [#] comments are ignored:

    {v
    + tweety : Fly.
    + Penguin < Bird.
    - hasWing(tweety, w).
    v}

    Retractions must be ABox assertions.  A replay script is a sequence of
    such deltas separated by lines starting with [---]. *)

val parse : ?first_line:int -> string -> (t, string) result
(** One delta.  Lines are parsed individually, so an error pinpoints the
    offending line: [line M: "the line's text": reason].  [first_line]
    (default [1]) offsets reported line numbers — {!parse_script} uses it
    so errors point into the script file rather than into the chunk. *)

val parse_script : string -> (t list, string) result
(** A [---]-separated sequence of deltas, empty chunks skipped.  Parse
    errors are reported as [delta N: line M: "text": ...] with [M]
    counted from the start of the script, not of the chunk, and the
    offending line quoted verbatim. *)

val pp : Format.formatter -> t -> unit
(** Prints in the [+]/[-] surface syntax above. *)

val to_string : t -> string
