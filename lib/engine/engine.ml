type t = {
  oracle : Oracle.t;
  mutable classification : Classify.t option;
  mutable realization : Realize.t option;
}

let default_cache_capacity = Oracle.default_cache_capacity

let of_oracle oracle = { oracle; classification = None; realization = None }
let of_config config kb = of_oracle (Oracle.of_config config kb)

let oracle t = t.oracle
let kb t = Oracle.kb t.oracle
let reasoner t = Oracle.reasoner t.oracle
let satisfiable t = Oracle.check t.oracle Oracle.Consistent
let entails_instance t a c = Oracle.check t.oracle (Oracle.Instance (a, c))

let entails_not_instance t a c =
  Oracle.check t.oracle (Oracle.Not_instance (a, c))

let instance_truth t a c =
  Truth.of_pair
    ~told_true:(entails_instance t a c)
    ~told_false:(entails_not_instance t a c)

let role_truth t a r b =
  Truth.of_pair
    ~told_true:(Oracle.check t.oracle (Oracle.Role_pos (a, r, b)))
    ~told_false:(Oracle.check t.oracle (Oracle.Role_neg (a, r, b)))

let concept_satisfiable t c = Oracle.check t.oracle (Oracle.Concept_sat c)

let entails_inclusion t kind c d =
  List.for_all
    (fun test -> not (concept_satisfiable t test))
    (Transform.inclusion_tests kind c d)

let subsumes t a b =
  entails_inclusion t Kb4.Internal (Concept.Atom a) (Concept.Atom b)

(* Atoms in conjunctive positions of a right-hand side: [A ⊏ B ⊓ (C ⊓ D)]
   tells us [A ⊑ B], [A ⊑ C], [A ⊑ D] (Definition 6 maps internal/strong
   inclusions to classical inclusions of the positive translations). *)
let rec conjunct_atoms = function
  | Concept.Atom b -> [ b ]
  | Concept.And (x, y) -> conjunct_atoms x @ conjunct_atoms y
  | _ -> []

let told_subsumptions (kb : Kb4.t) =
  List.concat_map
    (function
      | Kb4.Concept_inclusion ((Kb4.Internal | Kb4.Strong), Concept.Atom a, rhs)
        ->
          List.map (fun b -> (a, b)) (conjunct_atoms rhs)
      | _ -> [])
    kb.Kb4.tbox

(* The subsumption test a row submits to the oracle, inlined from
   [subsumes] so shard workers route through their confined [check]. *)
let subsumption_test check a b =
  List.for_all
    (fun test -> not (check (Oracle.Concept_sat test)))
    (Transform.inclusion_tests Kb4.Internal (Concept.Atom a) (Concept.Atom b))

(* Registry mirrors of the per-run Classify/Realize stats, recorded at
   collect time (the per-row counts are summed there). *)
let c_cls_tests = Obs.counter "classify.tableau_tests"
let c_cls_told = Obs.counter "classify.told_hits"
let c_cls_dag = Obs.counter "classify.dag_hits"
let c_rlz_pos = Obs.counter "realize.positive_checks"
let c_rlz_neg = Obs.counter "realize.negative_checks"
let c_rlz_pruned = Obs.counter "realize.pruned"

let classification t =
  match t.classification with
  | Some c -> c
  | None ->
      let c =
        Obs.with_span ~cat:"engine" "engine.classify" (fun () ->
            let atoms = (Kb4.signature (kb t)).Axiom.concepts in
            let prep =
              Obs.with_span ~cat:"engine" "classify.prepare" (fun () ->
                  Classify.prepare ~atoms ~told:(told_subsumptions (kb t)))
            in
            let shards = Oracle.shard t.oracle (Classify.order prep) in
            let rows =
              List.concat
                (Oracle.map_batches t.oracle shards ~f:(fun ~check shard ->
                     Classify.rows prep ~test:(subsumption_test check) shard))
            in
            Obs.with_span ~cat:"engine" "classify.collect" (fun () ->
                let c = Classify.collect prep rows in
                let s = c.Classify.stats in
                Obs.add c_cls_tests s.Classify.tableau_tests;
                Obs.add c_cls_told s.Classify.told_hits;
                Obs.add c_cls_dag s.Classify.dag_hits;
                c))
      in
      t.classification <- Some c;
      c

let classify t = (classification t).Classify.supers
let taxonomy t = Classify.taxonomy (classify t)

(* Snapshot export/import: the classification index is a pure function
   of the TBox and the concept signature, so a saved index is valid for
   any engine over an identical KB — the store layer validates KB
   equality before restoring. *)
let classification_if_built t = t.classification
let restore_classification t c = t.classification <- Some c

let realization t =
  match t.realization with
  | Some r -> r
  | None ->
      let cls = classification t in
      let r =
        Obs.with_span ~cat:"engine" "engine.realize" (fun () ->
            let signature = Kb4.signature (kb t) in
            let prep =
              Obs.with_span ~cat:"engine" "realize.prepare" (fun () ->
                  Realize.prepare ~individuals:signature.Axiom.individuals
                    ~atoms:signature.Axiom.concepts
                    ~supers:(Classify.supers_fn cls))
            in
            let shards = Oracle.shard t.oracle (Realize.individuals prep) in
            let rows =
              List.concat
                (Oracle.map_batches t.oracle shards ~f:(fun ~check shard ->
                     Realize.rows prep
                       ~check_pos:(fun a c ->
                         check (Oracle.Instance (a, Concept.Atom c)))
                       ~check_neg:(fun a c ->
                         check (Oracle.Not_instance (a, Concept.Atom c)))
                       shard))
            in
            Obs.with_span ~cat:"engine" "realize.collect" (fun () ->
                let r = Realize.collect prep rows in
                let s = r.Realize.stats in
                Obs.add c_rlz_pos s.Realize.positive_checks;
                Obs.add c_rlz_neg s.Realize.negative_checks;
                Obs.add c_rlz_pruned s.Realize.pruned;
                r))
      in
      t.realization <- Some r;
      r

(* A delta invalidates the engine-level indexes by the same dependency
   reasoning the oracle applies to verdicts.  Classification is a pure
   function of the TBox and the concept signature: an ABox-only delta
   that introduces no new atomic concepts (and did not flush — flushes
   cover TBox growth, nominal interference and consistency transitions)
   keeps it warm.  Realization names individuals directly, so any
   non-empty delta drops it (rebuilt lazily, re-using surviving cached
   verdicts). *)
let apply t (d : Delta.t) =
  let atoms_before = (Kb4.signature (kb t)).Axiom.concepts in
  let s = Oracle.apply t.oracle d in
  let atoms_after = (Kb4.signature (kb t)).Axiom.concepts in
  if d.Delta.add_tbox <> [] || s.Oracle.flushed || atoms_before <> atoms_after
  then t.classification <- None;
  if not (Delta.is_empty d) then t.realization <- None;
  s

type stats = {
  cache : Verdict_cache.stats;
  tableau_calls : int;
  jobs : int;
  batches : int;
  parallel_calls : int;
  routes : (string * int) list;
  classification : Classify.stats option;
  realization : Realize.stats option;
}

let stats (t : t) =
  let o = Oracle.stats t.oracle in
  { cache = o.Oracle.cache;
    tableau_calls = o.Oracle.tableau_calls;
    jobs = o.Oracle.jobs;
    batches = o.Oracle.batches;
    parallel_calls = o.Oracle.parallel_calls;
    routes = o.Oracle.routes;
    classification = Option.map (fun c -> c.Classify.stats) t.classification;
    realization = Option.map (fun r -> r.Realize.stats) t.realization }

let pp_stats ppf s =
  Oracle.pp_stats ppf
    { Oracle.cache = s.cache;
      tableau_calls = s.tableau_calls;
      jobs = s.jobs;
      batches = s.batches;
      parallel_calls = s.parallel_calls;
      routes = s.routes };
  Option.iter
    (fun c -> Format.fprintf ppf "@.classification: %a" Classify.pp_stats c)
    s.classification;
  Option.iter
    (fun r -> Format.fprintf ppf "@.realization: %a" Realize.pp_stats r)
    s.realization
