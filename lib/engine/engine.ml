(* Query keys: every reasoning service bottoms out in a boolean tableau
   verdict, distinguished by what is added to K̄ — a fresh-individual concept
   satisfiability test or a (possibly negated) instance query. *)
module Key = struct
  type t =
    | Sat of Qkey.t
    | Instance of string * Qkey.t
    | Not_instance of string * Qkey.t

  let equal a b =
    match (a, b) with
    | Sat k1, Sat k2 -> Qkey.equal k1 k2
    | Instance (x, k1), Instance (y, k2)
    | Not_instance (x, k1), Not_instance (y, k2) ->
        String.equal x y && Qkey.equal k1 k2
    | _ -> false

  let hash = function
    | Sat k -> 3 * Qkey.hash k
    | Instance (x, k) -> (5 * Qkey.hash k) + Hashtbl.hash x
    | Not_instance (x, k) -> (7 * Qkey.hash k) + Hashtbl.hash x
end

module Cache = Verdict_cache.Make (Key)

type t = {
  kb : Kb4.t;
  reasoner : Reasoner.t;
  cache : bool Cache.t;
  mutable tableau_calls : int;
  mutable classification : Classify.t option;
  mutable realization : Realize.t option;
}

let default_cache_capacity = 4096

let create ?(cache_capacity = default_cache_capacity) ?max_nodes ?max_branches
    kb =
  { kb;
    reasoner = Reasoner.create ?max_nodes ?max_branches (Transform.kb kb);
    cache = Cache.create ~capacity:cache_capacity;
    tableau_calls = 0;
    classification = None;
    realization = None }

let kb t = t.kb
let reasoner t = t.reasoner

let verdict t key compute =
  Cache.find_or_add t.cache key (fun () ->
      t.tableau_calls <- t.tableau_calls + 1;
      compute ())

let satisfiable t = Reasoner.is_consistent t.reasoner

let entails_instance t a c =
  verdict t
    (Key.Instance (a, Qkey.of_concept c))
    (fun () ->
      not (Reasoner.consistent_with t.reasoner [ Transform.instance_query c a ]))

let entails_not_instance t a c =
  verdict t
    (Key.Not_instance (a, Qkey.of_concept c))
    (fun () ->
      not
        (Reasoner.consistent_with t.reasoner
           [ Transform.negative_instance_query c a ]))

let instance_truth t a c =
  Truth.of_pair
    ~told_true:(entails_instance t a c)
    ~told_false:(entails_not_instance t a c)

let concept_satisfiable t c =
  verdict t
    (Key.Sat (Qkey.of_concept c))
    (fun () -> Reasoner.concept_satisfiable t.reasoner c)

let entails_inclusion t kind c d =
  List.for_all
    (fun test -> not (concept_satisfiable t test))
    (Transform.inclusion_tests kind c d)

let subsumes t a b =
  entails_inclusion t Kb4.Internal (Concept.Atom a) (Concept.Atom b)

(* Atoms in conjunctive positions of a right-hand side: [A ⊏ B ⊓ (C ⊓ D)]
   tells us [A ⊑ B], [A ⊑ C], [A ⊑ D] (Definition 6 maps internal/strong
   inclusions to classical inclusions of the positive translations). *)
let rec conjunct_atoms = function
  | Concept.Atom b -> [ b ]
  | Concept.And (x, y) -> conjunct_atoms x @ conjunct_atoms y
  | _ -> []

let told_subsumptions (kb : Kb4.t) =
  List.concat_map
    (function
      | Kb4.Concept_inclusion ((Kb4.Internal | Kb4.Strong), Concept.Atom a, rhs)
        ->
          List.map (fun b -> (a, b)) (conjunct_atoms rhs)
      | _ -> [])
    kb.Kb4.tbox

let classification t =
  match t.classification with
  | Some c -> c
  | None ->
      let atoms = (Kb4.signature t.kb).Axiom.concepts in
      let c =
        Classify.run ~atoms
          ~told:(told_subsumptions t.kb)
          ~test:(fun a b -> subsumes t a b)
      in
      t.classification <- Some c;
      c

let classify t = (classification t).Classify.supers
let taxonomy t = Classify.taxonomy (classify t)

let realization t =
  match t.realization with
  | Some r -> r
  | None ->
      let cls = classification t in
      let signature = Kb4.signature t.kb in
      let r =
        Realize.run ~individuals:signature.Axiom.individuals
          ~atoms:signature.Axiom.concepts
          ~supers:(Classify.supers_fn cls)
          ~check_pos:(fun a c -> entails_instance t a (Concept.Atom c))
          ~check_neg:(fun a c -> entails_not_instance t a (Concept.Atom c))
      in
      t.realization <- Some r;
      r

type stats = {
  cache : Verdict_cache.stats;
  tableau_calls : int;
  classification : Classify.stats option;
  realization : Realize.stats option;
}

let stats (t : t) =
  { cache = Cache.stats t.cache;
    tableau_calls = t.tableau_calls;
    classification = Option.map (fun c -> c.Classify.stats) t.classification;
    realization = Option.map (fun r -> r.Realize.stats) t.realization }

let pp_stats ppf s =
  Format.fprintf ppf "cache: %a@.tableau calls paid: %d" Verdict_cache.pp_stats
    s.cache s.tableau_calls;
  Option.iter
    (fun c -> Format.fprintf ppf "@.classification: %a" Classify.pp_stats c)
    s.classification;
  Option.iter
    (fun r -> Format.fprintf ppf "@.realization: %a" Realize.pp_stats r)
    s.realization
