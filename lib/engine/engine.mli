(** The memoizing classification & realization engine over the four-valued
    reduction — the query-traffic front end of the stack.

    An {!t} is a thin index layer over one {!Oracle}: the oracle owns the
    classical induced KB [K̄] (Definition 7), the verdict cache and the
    domain pool; the engine adds the lazily-built classification
    ({!Classify}) and realization ({!Realize}) indexes and drives their row
    loops through the oracle's batched fan-out, so independent rows run on
    separate domains when the oracle has a pool.  One-shot callers get the
    same answers as {!Para}; repeated query traffic is served from the
    cache and the indexes instead of re-running the tableau. *)

type t

val create :
  ?jobs:int ->
  ?cache_capacity:int ->
  ?max_nodes:int ->
  ?max_branches:int ->
  Kb4.t ->
  t
(** [jobs] (default 1) is the width of the oracle's domain pool.
    [cache_capacity] defaults to 4096 verdicts; [0] disables caching
    entirely (every query pays its tableau calls, as with bare {!Para}). *)

val of_oracle : Oracle.t -> t
(** Build the index layer over an existing oracle (sharing its cache and
    pool with other consumers, e.g. {!Para}). *)

val oracle : t -> Oracle.t
val default_cache_capacity : int
val kb : t -> Kb4.t
val reasoner : t -> Reasoner.t

(** {1 Cached reasoning services}

    Same semantics as the corresponding {!Para} queries; every verdict
    routes through {!Oracle.check} and is memoized under canonical query
    keys. *)

val satisfiable : t -> bool
val entails_instance : t -> string -> Concept.t -> bool
val entails_not_instance : t -> string -> Concept.t -> bool
val instance_truth : t -> string -> Concept.t -> Truth.t
val role_truth : t -> string -> Role.t -> string -> Truth.t
val entails_inclusion : t -> Kb4.inclusion -> Concept.t -> Concept.t -> bool
val concept_satisfiable : t -> Concept.t -> bool

val subsumes : t -> string -> string -> bool
(** Atomic internal subsumption [⊏] — the classification oracle. *)

(** {1 Told information} *)

val told_subsumptions : Kb4.t -> (string * string) list
(** Atomic subsumptions syntactically present in the TBox: one [(a, b)] per
    internal or strong inclusion with atomic left-hand side [a] and [b]
    ranging over the atoms in conjunctive positions of the right-hand side.
    Sound for internal subsumption by Definition 6. *)

(** {1 Indexes} *)

val classification : t -> Classify.t
(** Built on first use with told seeding and DAG pruning, rows sharded
    across the oracle's domain pool; cached.  Contents are byte-identical
    whatever the pool width. *)

val classify : t -> (string * string list) list
(** Same contents as the naive all-pairs loop ({!Para.classify_naive}). *)

val taxonomy : t -> (string list * string list) list

val realization : t -> Realize.t
(** Built on first use on top of {!classification}, individuals sharded
    across the pool; cached. *)

(** {1 Statistics} *)

type stats = {
  cache : Verdict_cache.stats;
  tableau_calls : int;
      (** tableau invocations actually paid (cache misses do, hits don't) *)
  jobs : int;
  batches : int;  (** parallel fan-outs executed by the oracle *)
  parallel_calls : int;  (** verdicts computed off the coordinating domain *)
  classification : Classify.stats option;  (** [None] until built *)
  realization : Realize.stats option;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
