(** The memoizing classification & realization engine over the four-valued
    reduction — the query-traffic front end of the stack.

    An {!t} owns the classical induced KB [K̄] (Definition 7), one tableau
    reasoner over it, a bounded LRU {!Verdict_cache} of tableau verdicts
    keyed by canonical {!Qkey} query keys, and lazily-built classification
    ({!Classify}) and realization ({!Realize}) indexes.  One-shot callers
    get the same answers as {!Para}; repeated query traffic is served from
    the cache and the indexes instead of re-running the tableau. *)

type t

val create :
  ?cache_capacity:int -> ?max_nodes:int -> ?max_branches:int -> Kb4.t -> t
(** [cache_capacity] defaults to 4096 verdicts; [0] disables caching
    entirely (every query pays its tableau calls, as with bare {!Para}). *)

val default_cache_capacity : int
val kb : t -> Kb4.t
val reasoner : t -> Reasoner.t

(** {1 Cached reasoning services}

    Same semantics as the corresponding {!Para} queries; verdicts are
    memoized under canonical query keys. *)

val satisfiable : t -> bool
val entails_instance : t -> string -> Concept.t -> bool
val entails_not_instance : t -> string -> Concept.t -> bool
val instance_truth : t -> string -> Concept.t -> Truth.t
val entails_inclusion : t -> Kb4.inclusion -> Concept.t -> Concept.t -> bool

val subsumes : t -> string -> string -> bool
(** Atomic internal subsumption [⊏] — the classification oracle. *)

(** {1 Told information} *)

val told_subsumptions : Kb4.t -> (string * string) list
(** Atomic subsumptions syntactically present in the TBox: one [(a, b)] per
    internal or strong inclusion with atomic left-hand side [a] and [b]
    ranging over the atoms in conjunctive positions of the right-hand side.
    Sound for internal subsumption by Definition 6. *)

(** {1 Indexes} *)

val classification : t -> Classify.t
(** Built on first use with told seeding and DAG pruning; cached. *)

val classify : t -> (string * string list) list
(** Same contents as the naive all-pairs loop ({!Para.classify_naive}). *)

val taxonomy : t -> (string list * string list) list

val realization : t -> Realize.t
(** Built on first use on top of {!classification}; cached. *)

(** {1 Statistics} *)

type stats = {
  cache : Verdict_cache.stats;
  tableau_calls : int;
      (** tableau invocations actually paid (cache misses do, hits don't) *)
  classification : Classify.stats option;  (** [None] until built *)
  realization : Realize.stats option;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
