(** The memoizing classification & realization engine over the four-valued
    reduction — the query-traffic front end of the stack.

    An {!t} is a thin index layer over one {!Oracle}: the oracle owns the
    classical induced KB [K̄] (Definition 7), the verdict cache and the
    domain pool; the engine adds the lazily-built classification
    ({!Classify}) and realization ({!Realize}) indexes and drives their row
    loops through the oracle's batched fan-out, so independent rows run on
    separate domains when the oracle has a pool.  One-shot callers get the
    same answers as {!Para}; repeated query traffic is served from the
    cache and the indexes instead of re-running the tableau. *)

type t

val of_config : Oracle.config -> Kb4.t -> t
(** The canonical constructor: build a fresh oracle from the unified
    {!Oracle.config} and wrap it.  {!Session.create} routes through
    this. *)

val of_oracle : Oracle.t -> t
(** Build the index layer over an existing oracle.  The wrapper adds no
    state of its own below the classification/realization indexes: it
    shares the oracle's verdict cache and domain pool with every other
    consumer of the same oracle (e.g. a {!Para} built over it), so a
    verdict paid through one wrapper is a cache hit through another. *)

val oracle : t -> Oracle.t
val default_cache_capacity : int
val kb : t -> Kb4.t
val reasoner : t -> Reasoner.t

(** {1 Cached reasoning services}

    Same semantics as the corresponding {!Para} queries; every verdict
    routes through {!Oracle.check} and is memoized under canonical query
    keys. *)

val satisfiable : t -> bool
val entails_instance : t -> string -> Concept.t -> bool
val entails_not_instance : t -> string -> Concept.t -> bool
val instance_truth : t -> string -> Concept.t -> Truth.t
val role_truth : t -> string -> Role.t -> string -> Truth.t
val entails_inclusion : t -> Kb4.inclusion -> Concept.t -> Concept.t -> bool
val concept_satisfiable : t -> Concept.t -> bool

val subsumes : t -> string -> string -> bool
(** Atomic internal subsumption [⊏] — the classification oracle. *)

(** {1 Told information} *)

val told_subsumptions : Kb4.t -> (string * string) list
(** Atomic subsumptions syntactically present in the TBox: one [(a, b)] per
    internal or strong inclusion with atomic left-hand side [a] and [b]
    ranging over the atoms in conjunctive positions of the right-hand side.
    Sound for internal subsumption by Definition 6. *)

(** {1 Indexes} *)

val classification : t -> Classify.t
(** Built on first use with told seeding and DAG pruning, rows sharded
    across the oracle's domain pool; cached.  Contents are byte-identical
    whatever the pool width. *)

val classify : t -> (string * string list) list
(** Same contents as the naive all-pairs loop ({!Para.classify_naive}). *)

val taxonomy : t -> (string list * string list) list

val realization : t -> Realize.t
(** Built on first use on top of {!classification}, individuals sharded
    across the pool; cached. *)

(** {1 Snapshot export / import}

    The classification index is a pure function of the TBox and concept
    signature, so it transfers between engines over identical KBs.
    {!Dl_store} validates KB equality before calling
    {!restore_classification}; calling it with an index built over a
    different KB silently serves wrong taxonomies — never do that. *)

val classification_if_built : t -> Classify.t option
(** The index if it has been built (by {!classification} or a restore);
    [None] otherwise.  Never triggers a build. *)

val restore_classification : t -> Classify.t -> unit

(** {1 Incremental update} *)

val apply : t -> Delta.t -> Oracle.apply_stats
(** {!Oracle.apply} plus index maintenance: classification survives an
    ABox-only delta that neither flushed the cache nor introduced new
    atomic concepts (it is a pure function of TBox and concept
    signature); realization is dropped on any non-empty delta and
    rebuilt lazily, re-using every cached verdict that survived. *)

(** {1 Statistics} *)

type stats = {
  cache : Verdict_cache.stats;
  tableau_calls : int;
      (** tableau invocations actually paid (cache misses do, hits don't) *)
  jobs : int;
  batches : int;  (** parallel fan-outs executed by the oracle *)
  parallel_calls : int;  (** verdicts computed off the coordinating domain *)
  routes : (string * int) list;  (** computed verdicts per backend *)
  classification : Classify.stats option;  (** [None] until built *)
  realization : Realize.stats option;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
