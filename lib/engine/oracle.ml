(* The query vocabulary lives in [Backend] (PR 7) so decision procedures
   can be written against it without depending on the oracle; the alias
   keeps [Oracle.Consistent] etc. valid for every existing caller. *)
type query = Backend.query =
  | Consistent
  | Concept_sat of Concept.t
  | Instance of string * Concept.t
  | Not_instance of string * Concept.t
  | Role_pos of string * Role.t * string
  | Role_neg of string * Role.t * string

(* Canonical cache keys: concepts go through [Qkey] so syntactically
   different but canonically identical queries share one verdict. *)
module Key = struct
  type t =
    | K_consistent
    | K_sat of Qkey.t
    | K_instance of string * Qkey.t
    | K_not_instance of string * Qkey.t
    | K_role_pos of string * Role.t * string
    | K_role_neg of string * Role.t * string

  let equal a b =
    match (a, b) with
    | K_consistent, K_consistent -> true
    | K_sat k1, K_sat k2 -> Qkey.equal k1 k2
    | K_instance (x, k1), K_instance (y, k2)
    | K_not_instance (x, k1), K_not_instance (y, k2) ->
        String.equal x y && Qkey.equal k1 k2
    | K_role_pos (a1, r1, b1), K_role_pos (a2, r2, b2)
    | K_role_neg (a1, r1, b1), K_role_neg (a2, r2, b2) ->
        String.equal a1 a2 && Role.equal r1 r2 && String.equal b1 b2
    | _ -> false

  let hash = function
    | K_consistent -> 0x5eed
    | K_sat k -> 3 * Qkey.hash k
    | K_instance (x, k) -> (5 * Qkey.hash k) + Hashtbl.hash x
    | K_not_instance (x, k) -> (7 * Qkey.hash k) + Hashtbl.hash x
    | K_role_pos (a, r, b) -> 11 * Hashtbl.hash (a, Role.to_string r, b)
    | K_role_neg (a, r, b) -> 13 * Hashtbl.hash (a, Role.to_string r, b)
end

module Cache = Verdict_cache.Make (Key)
module KH = Hashtbl.Make (Key)

let key_of = function
  | Consistent -> Key.K_consistent
  | Concept_sat c -> Key.K_sat (Qkey.of_concept c)
  | Instance (a, c) -> Key.K_instance (a, Qkey.of_concept c)
  | Not_instance (a, c) -> Key.K_not_instance (a, Qkey.of_concept c)
  | Role_pos (a, r, b) -> Key.K_role_pos (a, r, b)
  | Role_neg (a, r, b) -> Key.K_role_neg (a, r, b)

(* Registry mirrors of the per-instance counters below. *)
let c_tableau_calls = Obs.counter "oracle.tableau_calls"
let c_batches = Obs.counter "oracle.batches"
let c_parallel_calls = Obs.counter "oracle.worker_verdicts"
let c_slow = Obs.counter "oracle.slow_verdicts"
let c_route_tableau = Obs.counter "oracle.route.tableau"
let c_route_horn = Obs.counter "oracle.route.horn"
let g_cache_size = Obs.gauge "oracle.cache.size"
let h_eval = Obs.histogram "oracle.eval_ns"

(* Per-verdict provenance: what a tableau run touched while computing a
   verdict — the dependency set for selective cache invalidation. *)
type prov_entry = { individuals : string list; concepts : string list }

(* Per-verdict cost record: the tableau work one computed verdict paid,
   attributed at the check/check_all boundary.  Recorded unconditionally
   (like provenance) by diffing the computing reasoner's stats cells
   around the eval — no Obs sink needs to be armed. *)
type cost = {
  c_query : string;  (* printable form of the query *)
  c_kind : string;  (* query_kind *)
  c_backend : string;  (* which decision procedure computed it *)
  c_trace : string;  (* trace ID of the request that paid for it *)
  c_wall_ns : float;
  c_runs : int;  (* tableau runs the verdict needed *)
  c_nodes : int;
  c_merges : int;
  c_branches : int;
  c_backtracks : int;
  c_clashes : int;
  c_blocking : int;
  c_rule_firings : int array;  (* indexed like Tableau.rule_names *)
  c_shard : int;  (* id of the domain that computed it *)
  mutable c_hits : int;  (* cache hits served since computation *)
}

let cost_rules c =
  Array.to_list
    (Array.mapi (fun i n -> (Tableau.rule_names.(i), n)) c.c_rule_firings)
  |> List.filter (fun (_, n) -> n > 0)

(* Session-level aggregate, maintained independently of cache eviction
   so long sessions keep honest totals while per-key records stay
   bounded by cache residency. *)
type cost_totals = {
  verdicts : int;  (* computed (cache misses paid with a tableau) *)
  cache_served : int;  (* checks answered from the cache *)
  slow : int;  (* verdicts at or over the slow-log threshold *)
  wall_ns : float;
  runs : int;
  nodes : int;
  merges : int;
  branches : int;
  backtracks : int;
  clashes : int;
  blocking : int;
  rule_firings : (string * int) list;  (* non-zero, by rule name *)
  backends : (string * int) list;  (* computed verdicts per backend *)
}

type cost_acc = {
  mutable a_verdicts : int;
  mutable a_served : int;
  mutable a_slow : int;
  mutable a_wall : float;
  mutable a_runs : int;
  mutable a_nodes : int;
  mutable a_merges : int;
  mutable a_branches : int;
  mutable a_backtracks : int;
  mutable a_clashes : int;
  mutable a_blocking : int;
  a_rules : int array;
  a_backends : (string, int) Hashtbl.t;
}

let fresh_acc () =
  { a_verdicts = 0;
    a_served = 0;
    a_slow = 0;
    a_wall = 0.0;
    a_runs = 0;
    a_nodes = 0;
    a_merges = 0;
    a_branches = 0;
    a_backtracks = 0;
    a_clashes = 0;
    a_blocking = 0;
    a_rules = Array.make (Array.length Tableau.rule_names) 0;
    a_backends = Hashtbl.create 4 }

type config = {
  jobs : int;
  cache_capacity : int;
  max_nodes : int;
  max_branches : int;
  backend : Backend.choice;
}

let default_cache_capacity = 4096

let default_config =
  { jobs = 1;
    cache_capacity = default_cache_capacity;
    max_nodes = 20_000;
    max_branches = max_int;
    backend = Backend.Tableau }

(* A per-domain backend stack: the universal tableau plus (when the
   session's routing policy and the KB's fragment allow it) a Horn
   completion instance.  Each domain of the pool gets its own stack —
   backends are as mutable as the reasoners they wrap. *)
type stack = {
  s_tab : Backend.packed;
  s_horn : Backend.packed option;
}

(* Route one query to the cheapest complete backend: the completion
   engine whenever it is present (the KB is in its fragment) and claims
   the query's shape; the tableau is the general fallback. *)
let route stack q =
  match stack.s_horn with
  | Some h when Backend.can_answer h q -> h
  | _ -> stack.s_tab

(* Build the optional Horn side of a stack.  [Auto] probes the fragment
   detector; [Horn] builds unconditionally so an ineligible KB raises
   [Backend.Unsupported] with the first offending axiom. *)
let build_horn (config : config) classical_kb =
  match config.backend with
  | Backend.Tableau -> None
  | Backend.Auto when not (Horn_backend.complete_for classical_kb) -> None
  | Backend.Auto | Backend.Horn ->
      Some
        (Backend.pack
           (module Horn_backend)
           (Horn_backend.create ~max_nodes:config.max_nodes
              ~max_branches:config.max_branches classical_kb))

let stack_of_reasoner config classical_kb r =
  { s_tab = Backend.pack (module Backend_tableau) (Backend_tableau.of_reasoner r);
    s_horn = build_horn config classical_kb }

type t = {
  mutable kb : Kb4.t;
  mutable classical_kb : Axiom.kb;
  config : config;
  primary : Reasoner.t;
  mutable stack : stack;
      (* the coordinating domain's backends; [s_tab] wraps [primary],
         the Horn side is rebuilt by [apply] (deltas can change both the
         KB and its fragment eligibility) *)
  mutable workers : stack array option;
      (* pool stacks, length [jobs - 1]; created on first parallel batch,
         discarded by [apply] (they are rebuilt against the updated KB) *)
  cache : bool Cache.t;
  prov : prov_entry KH.t;
      (* per-key provenance, recorded unconditionally for every computed
         verdict; worker provenance folds in after join like verdict logs *)
  ind_index : (string, Key.t list ref) Hashtbl.t;
      (* individual name -> keys whose provenance mentions it *)
  atom_index : (string, Key.t list ref) Hashtbl.t;
      (* user-level atomic concept -> keys whose provenance mentions it *)
  costs : cost KH.t;
      (* per-key cost records, lifetime tied to cache residency like
         [prov]; session totals live in [acc] and survive eviction *)
  acc : cost_acc;
  mutable tableau_calls : int;
  mutable batches : int;
  mutable parallel_calls : int;
}

let of_config (config : config) kb =
  let config = { config with jobs = max 1 config.jobs } in
  let classical_kb = Transform.kb kb in
  let prov = KH.create 64 in
  let ind_index = Hashtbl.create 64 in
  let atom_index = Hashtbl.create 64 in
  (* Provenance lifetime is tied to cache residency: when the LRU makes
     room (a capacity eviction, not an explicit invalidation), the
     evicted key's provenance entry and index postings go with it.
     Without this, a capacity-evicted key recomputed after a delta would
     keep its pre-delta provenance, and the dependency index would
     under-approximate it — breaking the invalidation contract. *)
  let unpost index sym k =
    match Hashtbl.find_opt index sym with
    | None -> ()
    | Some keys ->
        keys := List.filter (fun k' -> not (Key.equal k' k)) !keys;
        if !keys = [] then Hashtbl.remove index sym
  in
  let cache = Cache.create ~capacity:config.cache_capacity in
  let costs = KH.create 64 in
  Cache.on_evict cache (fun k ->
      KH.remove costs k;
      match KH.find_opt prov k with
      | None -> ()
      | Some e ->
          KH.remove prov k;
          List.iter (fun s -> unpost ind_index s k) e.individuals;
          List.iter (fun s -> unpost atom_index s k) e.concepts);
  let primary =
    Reasoner.create ~max_nodes:config.max_nodes
      ~max_branches:config.max_branches classical_kb
  in
  { kb;
    classical_kb;
    config;
    primary;
    stack = stack_of_reasoner config classical_kb primary;
    workers = None;
    cache;
    prov;
    ind_index;
    atom_index;
    costs;
    acc = fresh_acc ();
    tableau_calls = 0;
    batches = 0;
    parallel_calls = 0 }

let kb t = t.kb
let classical_kb t = t.classical_kb
let reasoner t = t.primary
let config t = t.config
let jobs t = t.config.jobs

(* The query → decision-procedure mapping that used to live here is now
   [Backend_tableau.eval]; verdicts are computed by whichever backend
   [route] picks from the evaluating domain's stack. *)

let query_kind = Backend.query_kind
let query_to_string = Backend.query_to_string

(* Seed a fresh provenance sink with the query's own symbols.  A tableau
   run that closes before any rule fires on a query individual would
   otherwise record nothing for it, yet the verdict plainly depends on the
   query: the seed makes the dependency explicit so selective invalidation
   ([apply]) is sound even for verdicts decided "for free". *)
let seed_prov p q =
  let concept c =
    List.iter (Tableau.prov_add_ind p) (Concept.individual_names c);
    List.iter (Tableau.prov_add_atom p) (Concept.atom_names c)
  in
  match q with
  | Consistent -> ()
  | Concept_sat c -> concept c
  | Instance (a, c) | Not_instance (a, c) ->
      Tableau.prov_add_ind p a;
      concept c
  | Role_pos (a, _, b) | Role_neg (a, _, b) ->
      Tableau.prov_add_ind p a;
      Tableau.prov_add_ind p b

(* The cost of one eval: the diff of the computing backend's stats
   cells around the run, plus wall time. *)
let cost_of_diff ~backend q wall_ns (s0 : Tableau.stats) (s1 : Tableau.stats) =
  { c_query = query_to_string q;
    c_kind = query_kind q;
    c_backend = backend;
    (* worker domains read the coordinator's installed ID, so sharded
       evals stay correlated with the request that batched them *)
    c_trace = Obs.trace_id ();
    c_wall_ns = wall_ns;
    c_runs = s1.runs - s0.runs;
    c_nodes = s1.nodes_created - s0.nodes_created;
    c_merges = s1.merges - s0.merges;
    c_branches = s1.branches_explored - s0.branches_explored;
    c_backtracks = s1.backtracks - s0.backtracks;
    c_clashes = s1.clashes - s0.clashes;
    c_blocking = s1.blocking_events - s0.blocking_events;
    c_rule_firings =
      Array.init
        (Array.length s1.rule_firings)
        (fun i -> s1.rule_firings.(i) - s0.rule_firings.(i));
    c_shard = (Domain.self () :> int);
    c_hits = 0 }

(* [eval] with provenance and cost capture (both always on — the
   dependency index needs every verdict's provenance, and the cost
   records feed the slow-query log which is independent of Obs arming)
   plus observability: when sinks are armed, each verdict additionally
   gets a span timed into the eval-latency histogram. *)
let eval_obs stack q =
  let b = route stack q in
  let backend = Backend.name b in
  let prov = Tableau.fresh_prov () in
  seed_prov prov q;
  let entry () =
    { individuals = Tableau.prov_individuals prov;
      concepts = Tableau.prov_concepts prov }
  in
  let s0 = Tableau.copy_stats (Backend.stats b) in
  let t0 = Unix.gettimeofday () in
  let finish v =
    let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
    ignore (v : bool);
    cost_of_diff ~backend q wall_ns s0 (Backend.stats b)
  in
  if not !Obs.on then
    let v = Backend.eval ~prov b q in
    (v, entry (), finish v)
  else begin
    let sp = Obs.enter ~cat:"oracle" "oracle.eval" in
    Obs.set_attr sp "query" (query_kind q);
    Obs.set_attr sp "backend" backend;
    let tid = Obs.trace_id () in
    if tid <> "" then Obs.set_attr sp "trace_id" tid;
    match Backend.eval ~prov b q with
    | v ->
        let entry = entry () in
        Obs.set_attr sp "verdict" (string_of_bool v);
        Obs.set_attr sp "individuals" (String.concat " " entry.individuals);
        Obs.exit_timed sp h_eval;
        (v, entry, finish v)
    | exception e ->
        Obs.set_attr sp "exn" (Printexc.to_string e);
        Obs.exit_timed sp h_eval;
        raise e
  end

(* Store a verdict's provenance and index it under every symbol it
   mentions.  With a disabled cache (capacity 0) nothing is recorded:
   no verdict can be retained, so there is nothing to invalidate, and
   recording would grow without bound.  When a key is re-computed while
   an entry is still live (a pool worker re-deriving a cached key, or
   overlap across batches), only the symbols the old entry did not
   mention are posted — the index must always cover the recorded
   provenance; stale postings left behind are a sound over-approximation
   (re-evicting is conservative, never wrong). *)
let record_prov t k (entry : prov_entry) =
  if t.config.cache_capacity > 0 then begin
    let old = KH.find_opt t.prov k in
    KH.replace t.prov k entry;
    let old_inds, old_atoms =
      match old with
      | None -> ([], [])
      | Some e -> (e.individuals, e.concepts)
    in
    let post index old_syms sym =
      if not (List.mem sym old_syms) then
        match Hashtbl.find_opt index sym with
        | Some keys -> keys := k :: !keys
        | None -> Hashtbl.replace index sym (ref [ k ])
    in
    List.iter (post t.ind_index old_inds) entry.individuals;
    List.iter (post t.atom_index old_atoms) entry.concepts
  end

(* One slow verdict as a JSONL record: the cost record, the provenance
   symbols and the cache's disposition of the verdict. *)
let slow_json t (c : cost) (p : prov_entry) =
  let b = Buffer.create 256 in
  let str s = "\"" ^ Obs.json_escape s ^ "\"" in
  let field k v =
    if Buffer.length b > 1 then Buffer.add_char b ',';
    Buffer.add_string b (str k);
    Buffer.add_char b ':';
    Buffer.add_string b v
  in
  let str_list l = "[" ^ String.concat "," (List.map str l) ^ "]" in
  Buffer.add_char b '{';
  field "ts_unix" (Obs.json_float (Unix.time ()));
  field "trace_id" (str c.c_trace);
  field "query" (str c.c_query);
  field "kind" (str c.c_kind);
  field "backend" (str c.c_backend);
  field "wall_ms" (Obs.json_float (c.c_wall_ns /. 1e6));
  field "runs" (string_of_int c.c_runs);
  field "nodes" (string_of_int c.c_nodes);
  field "merges" (string_of_int c.c_merges);
  field "branches" (string_of_int c.c_branches);
  field "backtracks" (string_of_int c.c_backtracks);
  field "clashes" (string_of_int c.c_clashes);
  field "blocking" (string_of_int c.c_blocking);
  field "rules"
    ("{"
    ^ String.concat ","
        (List.map
           (fun (n, v) -> str n ^ ":" ^ string_of_int v)
           (cost_rules c))
    ^ "}");
  field "shard" (string_of_int c.c_shard);
  field "individuals" (str_list p.individuals);
  field "concepts" (str_list p.concepts);
  field "cache_stored" (string_of_bool (t.config.cache_capacity > 0));
  field "cache_size" (string_of_int (Cache.length t.cache));
  Buffer.add_char b '}';
  Buffer.contents b

(* Account one computed verdict: per-key record (when the cache can
   retain it), session totals (always), slow-query log (when armed and
   over threshold).  Coordinator-side only — worker costs fold in after
   join, like verdicts and provenance. *)
let record_cost t k (c : cost) (p : prov_entry) =
  let a = t.acc in
  a.a_verdicts <- a.a_verdicts + 1;
  Hashtbl.replace a.a_backends c.c_backend
    (1 + Option.value ~default:0 (Hashtbl.find_opt a.a_backends c.c_backend));
  Obs.incr (if String.equal c.c_backend "horn" then c_route_horn else c_route_tableau);
  a.a_wall <- a.a_wall +. c.c_wall_ns;
  a.a_runs <- a.a_runs + c.c_runs;
  a.a_nodes <- a.a_nodes + c.c_nodes;
  a.a_merges <- a.a_merges + c.c_merges;
  a.a_branches <- a.a_branches + c.c_branches;
  a.a_backtracks <- a.a_backtracks + c.c_backtracks;
  a.a_clashes <- a.a_clashes + c.c_clashes;
  a.a_blocking <- a.a_blocking + c.c_blocking;
  Array.iteri
    (fun i n -> a.a_rules.(i) <- a.a_rules.(i) + n)
    c.c_rule_firings;
  if t.config.cache_capacity > 0 then KH.replace t.costs k c;
  if c.c_wall_ns /. 1e6 >= Obs.slow_threshold_ms () then begin
    a.a_slow <- a.a_slow + 1;
    Obs.incr c_slow;
    Obs.slow_log_write (slow_json t c p)
  end

let check t q =
  let k = key_of q in
  let computed = ref false in
  let v =
    Cache.find_or_add t.cache k (fun () ->
        computed := true;
        t.tableau_calls <- t.tableau_calls + 1;
        Obs.incr c_tableau_calls;
        let v, p, c = eval_obs t.stack q in
        record_prov t k p;
        record_cost t k c p;
        v)
  in
  if not !computed then begin
    t.acc.a_served <- t.acc.a_served + 1;
    match KH.find_opt t.costs k with
    | Some c -> c.c_hits <- c.c_hits + 1
    | None -> ()
  end;
  Obs.set_gauge g_cache_size (float_of_int (Cache.length t.cache));
  v

let worker_stacks t =
  match t.workers with
  | Some ws -> ws
  | None ->
      let ws =
        Array.init (t.config.jobs - 1) (fun _ ->
            stack_of_reasoner t.config t.classical_kb
              (Reasoner.create ~max_nodes:t.config.max_nodes
                 ~max_branches:t.config.max_branches t.classical_kb))
      in
      t.workers <- Some ws;
      ws

(* One worker domain: run its lane with a confined reasoner and a private
   memo, logging every verdict it computed (with its provenance) so the
   coordinator can fold the work into the shared cache.  The shard span
   attaches to the coordinator's batch span via [?parent] — worker domains
   have their own (empty) span stacks. *)
let run_worker ?parent reasoner f lane =
  let sp = Obs.enter ?parent ~cat:"oracle" "oracle.shard" in
  if Obs.live sp then begin
    Obs.set_attr sp "domain" (string_of_int (Domain.self () :> int));
    Obs.set_attr sp "items" (string_of_int (List.length lane))
  end;
  let memo = KH.create 64 in
  let log = ref [] in
  let check q =
    let k = key_of q in
    match KH.find_opt memo k with
    | Some v -> v
    | None ->
        let v, p, c = eval_obs reasoner q in
        KH.add memo k v;
        log := (k, v, p, c) :: !log;
        v
  in
  let result =
    match List.map (fun (i, item) -> (i, f ~check item)) lane with
    | out -> Ok (out, List.rev !log)
    | exception e -> Error e
  in
  Obs.exit_span sp;
  result

let map_batches t items ~f =
  let sequential () =
    Obs.with_span ~cat:"oracle" "oracle.batch" (fun () ->
        List.map (fun item -> f ~check:(check t) item) items)
  in
  match items with
  | [] | [ _ ] -> sequential ()
  | _ when t.config.jobs <= 1 -> sequential ()
  | _ ->
      let workers = worker_stacks t in
      let sp = Obs.enter ~cat:"oracle" "oracle.batch" in
      if Obs.live sp then begin
        Obs.set_attr sp "jobs" (string_of_int t.config.jobs);
        Obs.set_attr sp "items" (string_of_int (List.length items))
      end;
      let lanes = Array.make (Array.length workers + 1) [] in
      List.iteri
        (fun i item ->
          let l = i mod Array.length lanes in
          lanes.(l) <- (i, item) :: lanes.(l))
        items;
      let lane l = List.rev lanes.(l) in
      let domains =
        Array.init (Array.length workers) (fun w ->
            Domain.spawn (fun () ->
                run_worker ~parent:sp workers.(w) f (lane (w + 1))))
      in
      (* coordinator lane runs against the shared cache while workers are in
         flight; exceptions are deferred until every domain is joined *)
      let lane0 =
        let sp0 = Obs.enter ~parent:sp ~cat:"oracle" "oracle.shard" in
        if Obs.live sp0 then begin
          Obs.set_attr sp0 "domain" (string_of_int (Domain.self () :> int));
          Obs.set_attr sp0 "items" (string_of_int (List.length (lane 0)))
        end;
        let r =
          match
            List.map (fun (i, item) -> (i, f ~check:(check t) item)) (lane 0)
          with
          | out -> Ok out
          | exception e -> Error e
        in
        Obs.exit_span sp0;
        r
      in
      let results = Array.map Domain.join domains in
      t.batches <- t.batches + 1;
      Obs.incr c_batches;
      let failure = ref None in
      let keep_first e = if !failure = None then failure := Some e in
      let outs = ref [] in
      Array.iter
        (function
          | Ok (out, log) ->
              List.iter
                (fun (k, v, p, c) ->
                  t.tableau_calls <- t.tableau_calls + 1;
                  t.parallel_calls <- t.parallel_calls + 1;
                  Obs.incr c_tableau_calls;
                  Obs.incr c_parallel_calls;
                  Cache.add t.cache k v;
                  record_prov t k p;
                  record_cost t k c p)
                log;
              outs := out :: !outs
          | Error e -> keep_first e)
        results;
      (match lane0 with
      | Ok out -> outs := out :: !outs
      | Error e -> keep_first e);
      Obs.exit_span sp;
      (match !failure with Some e -> raise e | None -> ());
      List.concat !outs
      |> List.sort (fun (i, _) (j, _) -> Int.compare i j)
      |> List.map snd

let shard t items =
  let jobs = t.config.jobs in
  if jobs <= 1 then if items = [] then [] else [ items ]
  else begin
    let lanes = Array.make jobs [] in
    List.iteri (fun i item -> lanes.(i mod jobs) <- item :: lanes.(i mod jobs)) items;
    Array.to_list lanes |> List.filter_map (function [] -> None | l -> Some (List.rev l))
  end

let check_all t qs =
  if t.config.jobs <= 1 then
    Obs.with_span ~cat:"oracle" "oracle.check_all" (fun () ->
        List.map (check t) qs)
  else begin
    let sp = Obs.enter ~cat:"oracle" "oracle.check_all" in
    (* distinct uncached keys, in first-occurrence order *)
    let seen = KH.create 64 in
    let pending =
      List.filter
        (fun q ->
          let k = key_of q in
          if KH.mem seen k then false
          else begin
            KH.add seen k ();
            not (Cache.mem t.cache k)
          end)
        qs
    in
    if Obs.live sp then begin
      Obs.set_attr sp "queries" (string_of_int (List.length qs));
      Obs.set_attr sp "pending" (string_of_int (List.length pending))
    end;
    let finish r = Obs.exit_span sp; r in
    match
      let computed = KH.create 64 in
      List.iter
        (fun (k, v) -> KH.replace computed k v)
        (List.concat
           (map_batches t (shard t pending) ~f:(fun ~check lane ->
                List.map (fun q -> (key_of q, check q)) lane)));
      List.map
        (fun q ->
          match KH.find_opt computed (key_of q) with
          | Some v -> v
          | None -> check t q)
        qs
    with
    | r -> finish r
    | exception e ->
        Obs.exit_span sp;
        raise e
  end

let provenance t q = KH.find_opt t.prov (key_of q)

let provenances t =
  KH.fold (fun _ p acc -> p :: acc) t.prov []

let cost t q = KH.find_opt t.costs (key_of q)

let costs t =
  KH.fold (fun _ c acc -> c :: acc) t.costs []
  |> List.sort (fun a b -> Float.compare b.c_wall_ns a.c_wall_ns)

let cost_totals t =
  let a = t.acc in
  { verdicts = a.a_verdicts;
    cache_served = a.a_served;
    slow = a.a_slow;
    wall_ns = a.a_wall;
    runs = a.a_runs;
    nodes = a.a_nodes;
    merges = a.a_merges;
    branches = a.a_branches;
    backtracks = a.a_backtracks;
    clashes = a.a_clashes;
    blocking = a.a_blocking;
    rule_firings =
      Array.to_list
        (Array.mapi (fun i n -> (Tableau.rule_names.(i), n)) a.a_rules)
      |> List.filter (fun (_, n) -> n > 0);
    backends =
      Hashtbl.fold (fun b n acc -> (b, n) :: acc) a.a_backends []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b) }

(* ------------------------------------------------------------------ *)
(* Snapshot export / import (PR 6).  The persistence layer must not see
   the cache's internal key type, so the export vocabulary is the public
   [query] (keys canonicalize idempotently: [key_of (query_of_key k) = k],
   because [Concept.canon] is a retraction), paired with the verdict and
   the satellite prov/cost records whose lifetime is tied to residency. *)

type export_entry = {
  x_query : query;
  x_verdict : bool;
  x_prov : prov_entry option;
  x_cost : cost option;
}

let query_of_key = function
  | Key.K_consistent -> Consistent
  | Key.K_sat k -> Concept_sat (Qkey.concept k)
  | Key.K_instance (a, k) -> Instance (a, Qkey.concept k)
  | Key.K_not_instance (a, k) -> Not_instance (a, Qkey.concept k)
  | Key.K_role_pos (a, r, b) -> Role_pos (a, r, b)
  | Key.K_role_neg (a, r, b) -> Role_neg (a, r, b)

let export_entries t =
  List.map
    (fun (k, v) ->
      { x_query = query_of_key k;
        x_verdict = v;
        x_prov = KH.find_opt t.prov k;
        x_cost = KH.find_opt t.costs k })
    (Cache.entries t.cache)

let import_entry t e =
  let k = key_of e.x_query in
  Cache.add t.cache k e.x_verdict;
  (* [add] is a no-op at capacity 0, and an import overflowing the
     capacity evicts older imports through the regular on_evict hook —
     only record satellites for keys the cache actually retained *)
  if Cache.mem t.cache k then begin
    Option.iter (record_prov t k) e.x_prov;
    Option.iter
      (fun c -> if t.config.cache_capacity > 0 then KH.replace t.costs k c)
      e.x_cost
  end

let import_entries t es =
  List.iter (import_entry t) es;
  Cache.length t.cache

let rule_index =
  let tbl = Hashtbl.create 32 in
  Array.iteri (fun i n -> Hashtbl.replace tbl n i) Tableau.rule_names;
  fun name -> Hashtbl.find_opt tbl name

let import_totals t (s : cost_totals) =
  let a = t.acc in
  a.a_verdicts <- a.a_verdicts + s.verdicts;
  a.a_served <- a.a_served + s.cache_served;
  a.a_slow <- a.a_slow + s.slow;
  a.a_wall <- a.a_wall +. s.wall_ns;
  a.a_runs <- a.a_runs + s.runs;
  a.a_nodes <- a.a_nodes + s.nodes;
  a.a_merges <- a.a_merges + s.merges;
  a.a_branches <- a.a_branches + s.branches;
  a.a_backtracks <- a.a_backtracks + s.backtracks;
  a.a_clashes <- a.a_clashes + s.clashes;
  a.a_blocking <- a.a_blocking + s.blocking;
  List.iter
    (fun (name, n) ->
      (* rule names unknown to this build (a snapshot from a different
         rule set) are dropped — the per-rule split is diagnostic only *)
      match rule_index name with
      | Some i -> a.a_rules.(i) <- a.a_rules.(i) + n
      | None -> ())
    s.rule_firings;
  List.iter
    (fun (b, n) ->
      Hashtbl.replace a.a_backends b
        (n + Option.value ~default:0 (Hashtbl.find_opt a.a_backends b)))
    s.backends

let restore_cache_stats t (s : Verdict_cache.stats) =
  Cache.restore_stats t.cache ~hits:s.Verdict_cache.hits
    ~misses:s.Verdict_cache.misses ~evictions:s.Verdict_cache.evictions

let cache_stats t = Cache.stats t.cache

let pp_cost ppf (c : cost) =
  Format.fprintf ppf "%8.2f ms  %6d nodes  %5d branches  %4d clashes  %s"
    (c.c_wall_ns /. 1e6) c.c_nodes c.c_branches c.c_clashes c.c_query

let pp_cost_totals ppf (s : cost_totals) =
  Format.fprintf ppf
    "%d verdicts computed (%.2f ms tableau wall), %d served from cache, %d \
     slow@ %d runs, %d nodes, %d branches, %d backtracks, %d clashes, %d \
     merges, %d blocking events"
    s.verdicts (s.wall_ns /. 1e6) s.cache_served s.slow s.runs s.nodes
    s.branches s.backtracks s.clashes s.merges s.blocking

(* ------------------------------------------------------------------ *)
(* Incremental update *)

type apply_stats = {
  evicted : int;
  retained : int;
  flushed : bool;
  consistency_flipped : bool;
  recheck_calls : int;
}

let pp_apply_stats ppf s =
  Format.fprintf ppf "%d evicted / %d retained%s%s (%d recheck calls)"
    s.evicted s.retained
    (if s.flushed then ", full flush" else "")
    (if s.consistency_flipped then ", consistency flipped" else "")
    s.recheck_calls

(* Drop everything derived: verdicts, provenance, both indexes.  Keeps
   the cache's hit/miss counters (a flush is not a capacity eviction). *)
let flush_all t =
  Cache.purge t.cache;
  KH.reset t.prov;
  KH.reset t.costs;
  Hashtbl.reset t.ind_index;
  Hashtbl.reset t.atom_index

let evict_key t k =
  ignore (Cache.remove t.cache k : bool);
  KH.remove t.prov k;
  KH.remove t.costs k

(* Drop every key posted under [sym].  Stale postings (keys already
   evicted through another symbol and possibly recomputed since) are
   over-approximations: re-evicting a live verdict is sound, just
   conservative. *)
let evict_symbol t index sym =
  match Hashtbl.find_opt index sym with
  | None -> ()
  | Some keys ->
      Hashtbl.remove index sym;
      List.iter (evict_key t) !keys

(* Connected components of the told classical ABox graph (role and
   data assertions, Same/Different, nominal references inside asserted
   concepts), restricted to the components of [seeds].  A verdict whose
   provenance avoids every individual of the delta's components cannot
   change: the tableau for it never visits the delta's part of the ABox
   (disjoint forests), so its run — and verdict — is literally identical. *)
let component_closure abox seeds =
  let parent : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None ->
        Hashtbl.replace parent x x;
        x
    | Some p when String.equal p x -> x
    | Some p ->
        let r = find p in
        Hashtbl.replace parent x r;
        r
  in
  let union a b =
    let ra = find a and rb = find b in
    if not (String.equal ra rb) then Hashtbl.replace parent ra rb
  in
  let link_all = function
    | [] -> ()
    | x :: rest -> List.iter (union x) rest
  in
  List.iter
    (fun (ax : Axiom.abox_axiom) ->
      match ax with
      | Axiom.Instance_of (a, c) -> link_all (a :: Concept.individual_names c)
      | Axiom.Role_assertion (a, _, b) -> union a b
      | Axiom.Data_assertion (a, _, _) -> ignore (find a : string)
      | Axiom.Same (a, b) | Axiom.Different (a, b) -> union a b)
    abox;
  List.iter (fun s -> ignore (find s : string)) seeds;
  (* snapshot keys first: [find] path-compresses, and mutating a table
     while folding over it is undefined *)
  let names = Hashtbl.fold (fun x _ acc -> x :: acc) parent [] in
  let roots =
    List.sort_uniq String.compare (List.map find seeds)
  in
  List.filter (fun x -> List.mem (find x) roots) names
  |> List.sort_uniq String.compare

(* Do any classical TBox concepts mention a nominal?  If so, ABox
   individuals can leak into concept satisfiability (a {o} in the TBox
   pins o's told assertions into every model), and the disjoint-forest
   argument behind [component_closure] breaks — ABox deltas then force a
   full flush. *)
let tbox_has_nominal tbox =
  let concept c =
    List.exists
      (function Concept.One_of _ -> true | _ -> false)
      (Concept.subconcepts c)
  in
  List.exists
    (function
      | Axiom.Concept_sub (c, d) -> concept c || concept d
      | Axiom.Role_sub _ | Axiom.Data_role_sub _ | Axiom.Transitive _ -> false)
    tbox

(* Registry mirrors for the update path, so the uniform `--stats` footer
   reflects delta work like it reflects query work. *)
let c_deltas = Obs.counter "oracle.delta.applied"
let c_delta_evicted = Obs.counter "oracle.delta.evicted"
let c_delta_flushes = Obs.counter "oracle.delta.flushes"
let c_delta_recheck = Obs.counter "oracle.delta.recheck_calls"

let apply t (d : Delta.t) =
  if Delta.is_empty d then
    { evicted = 0;
      retained = Cache.length t.cache;
      flushed = false;
      consistency_flipped = false;
      recheck_calls = 0 }
  else
    Obs.with_span ~cat:"oracle" "oracle.apply" @@ fun () ->
    begin
    let calls0 = t.tableau_calls in
    (* the transition guard below needs the pre-delta status — read it
       before mutating (pays one tableau call if not already cached) *)
    let pre = check t Consistent in
    let ctbox = Transform.tbox_delta d.add_tbox in
    let cadd = Transform.abox_delta d.add_abox in
    let cretract = Transform.abox_delta d.retract_abox in
    (* TBox additions: an axiom the preprocessor will absorb (atomic LHS)
       only strengthens the unfolding of that one atom — evict verdicts
       whose provenance mentions the (demangled) atom.  Anything else
       (GCIs, role axioms, transitivity) changes global saturation and
       forces a full flush. *)
    let tbox_flush, evict_atoms =
      List.fold_left
        (fun (flush, atoms) ax ->
          match Tableau.absorbable_lhs ax with
          | None -> (true, atoms)
          | Some a -> (
              match Mangle.atom_origin a with
              | Mangle.Pos x | Mangle.Neg x | Mangle.Plain x ->
                  (flush, x :: atoms)))
        (false, []) ctbox
    in
    let abox_touched = Delta.touches_abox d in
    (* Nominals break the disjoint-forest locality argument in both
       directions.  An added TBox axiom whose body mentions a nominal —
       even an absorbable one — names an ABox individual, so it can merge
       previously disjoint components without touching a single ABox
       assertion (e.g. [A ⊑ {o} ⊓ C] pulls every A-instance onto [o]):
       such a delta always forces a full flush, independent of
       [abox_touched].  Conversely, a nominal-free TBox delta leaves ABox
       edits unsafe only when the {e pre-existing} TBox pins individuals
       via nominals. *)
    let nominal_guard =
      tbox_has_nominal ctbox
      || (abox_touched && tbox_has_nominal t.classical_kb.Axiom.tbox)
    in
    let flush = tbox_flush || nominal_guard in
    (* component closure over the PRE-delta ABox plus the added
       assertions: retracting an edge can only shrink a component, so the
       pre-delta graph over-approximates; added edges can bridge two old
       components, so they must be in the graph too *)
    let touched_inds =
      if flush || not abox_touched then []
      else
        component_closure
          (t.classical_kb.Axiom.abox @ cadd)
          (Delta.individuals d)
    in
    (* structural update: K in place, K̄ through the reasoner's
       incremental prep (told indexes, absorption, hierarchy refresh),
       pool reasoners dropped (rebuilt lazily against the new KB) *)
    t.kb <- Delta.apply_kb4 t.kb d;
    Reasoner.apply_delta t.primary ~add_abox:cadd ~retract_abox:cretract
      ~add_tbox:ctbox;
    t.classical_kb <- Reasoner.kb t.primary;
    (* re-stack: fragment eligibility can change with the KB (a delta can
       push K̄ out of — or back into — the Horn fragment) *)
    t.stack <- stack_of_reasoner t.config t.classical_kb t.primary;
    t.workers <- None;
    let size0 = Cache.length t.cache in
    if flush then flush_all t
    else begin
      (* global consistency always depends on the delta: a new component
         can be inconsistent all by itself *)
      evict_key t Key.K_consistent;
      List.iter (evict_symbol t t.ind_index) touched_inds;
      List.iter (evict_symbol t t.atom_index) evict_atoms
    end;
    let evicted = size0 - Cache.length t.cache in
    (* consistency-transition guard: if the status flipped, every retained
       verdict is suspect (inconsistency is global — it decides all
       entailments at once), so flush what survived.  Inconsistent on
       both sides retains everything: those verdicts are already the
       trivially-determined ones. *)
    let post = check t Consistent in
    let flipped = post <> pre in
    let evicted =
      if flipped && not flush then begin
        let consistency_prov = KH.find_opt t.prov Key.K_consistent in
        let n = Cache.length t.cache in
        flush_all t;
        Cache.add t.cache Key.K_consistent post;
        (match consistency_prov with
        | Some e -> record_prov t Key.K_consistent e
        | None -> ());
        evicted + n - Cache.length t.cache
      end
      else evicted
    in
    let st =
      { evicted;
        retained = Cache.length t.cache;
        flushed = flush || flipped;
        consistency_flipped = flipped;
        recheck_calls = t.tableau_calls - calls0 }
    in
    Obs.incr c_deltas;
    Obs.add c_delta_evicted st.evicted;
    if st.flushed then Obs.incr c_delta_flushes;
    Obs.add c_delta_recheck st.recheck_calls;
    st
  end

type stats = {
  cache : Verdict_cache.stats;
  tableau_calls : int;
  jobs : int;
  batches : int;
  parallel_calls : int;
  routes : (string * int) list;
}

let stats (t : t) =
  { cache = Cache.stats t.cache;
    tableau_calls = t.tableau_calls;
    jobs = t.config.jobs;
    batches = t.batches;
    parallel_calls = t.parallel_calls;
    routes =
      Hashtbl.fold (fun b n acc -> (b, n) :: acc) t.acc.a_backends []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b) }

let pp_stats ppf s =
  Format.fprintf ppf "cache: %a@.tableau calls paid: %d" Verdict_cache.pp_stats
    s.cache s.tableau_calls;
  (* route split only when something actually routed — a warm session
     that served everything from cache keeps the historical footer *)
  if s.routes <> [] then (
    Format.fprintf ppf "@.routed:";
    List.iter (fun (b, n) -> Format.fprintf ppf " %s %d" b n) s.routes);
  if s.jobs > 1 then
    Format.fprintf ppf "@.domain pool: %d domains, %d batches, %d worker verdicts"
      s.jobs s.batches s.parallel_calls
