type query =
  | Consistent
  | Concept_sat of Concept.t
  | Instance of string * Concept.t
  | Not_instance of string * Concept.t
  | Role_pos of string * Role.t * string
  | Role_neg of string * Role.t * string

(* Canonical cache keys: concepts go through [Qkey] so syntactically
   different but canonically identical queries share one verdict. *)
module Key = struct
  type t =
    | K_consistent
    | K_sat of Qkey.t
    | K_instance of string * Qkey.t
    | K_not_instance of string * Qkey.t
    | K_role_pos of string * Role.t * string
    | K_role_neg of string * Role.t * string

  let equal a b =
    match (a, b) with
    | K_consistent, K_consistent -> true
    | K_sat k1, K_sat k2 -> Qkey.equal k1 k2
    | K_instance (x, k1), K_instance (y, k2)
    | K_not_instance (x, k1), K_not_instance (y, k2) ->
        String.equal x y && Qkey.equal k1 k2
    | K_role_pos (a1, r1, b1), K_role_pos (a2, r2, b2)
    | K_role_neg (a1, r1, b1), K_role_neg (a2, r2, b2) ->
        String.equal a1 a2 && Role.equal r1 r2 && String.equal b1 b2
    | _ -> false

  let hash = function
    | K_consistent -> 0x5eed
    | K_sat k -> 3 * Qkey.hash k
    | K_instance (x, k) -> (5 * Qkey.hash k) + Hashtbl.hash x
    | K_not_instance (x, k) -> (7 * Qkey.hash k) + Hashtbl.hash x
    | K_role_pos (a, r, b) -> 11 * Hashtbl.hash (a, Role.to_string r, b)
    | K_role_neg (a, r, b) -> 13 * Hashtbl.hash (a, Role.to_string r, b)
end

module Cache = Verdict_cache.Make (Key)
module KH = Hashtbl.Make (Key)

let key_of = function
  | Consistent -> Key.K_consistent
  | Concept_sat c -> Key.K_sat (Qkey.of_concept c)
  | Instance (a, c) -> Key.K_instance (a, Qkey.of_concept c)
  | Not_instance (a, c) -> Key.K_not_instance (a, Qkey.of_concept c)
  | Role_pos (a, r, b) -> Key.K_role_pos (a, r, b)
  | Role_neg (a, r, b) -> Key.K_role_neg (a, r, b)

type t = {
  kb : Kb4.t;
  classical_kb : Axiom.kb;
  max_nodes : int option;
  max_branches : int option;
  jobs : int;
  primary : Reasoner.t;
  mutable workers : Reasoner.t array option;
      (* pool reasoners, length [jobs - 1]; created on first parallel batch *)
  cache : bool Cache.t;
  mutable tableau_calls : int;
  mutable batches : int;
  mutable parallel_calls : int;
}

let default_cache_capacity = 4096

let create ?(jobs = 1) ?(cache_capacity = default_cache_capacity) ?max_nodes
    ?max_branches kb =
  let classical_kb = Transform.kb kb in
  { kb;
    classical_kb;
    max_nodes;
    max_branches;
    jobs = max 1 jobs;
    primary = Reasoner.create ?max_nodes ?max_branches classical_kb;
    workers = None;
    cache = Cache.create ~capacity:cache_capacity;
    tableau_calls = 0;
    batches = 0;
    parallel_calls = 0 }

let kb t = t.kb
let classical_kb t = t.classical_kb
let reasoner t = t.primary
let jobs t = t.jobs

(* Evaluate a query on a given reasoner — the only place verdicts are
   actually computed.  Pure w.r.t. everything but that reasoner's own
   statistics, so it is safe on worker domains. *)
let eval reasoner = function
  | Consistent -> Reasoner.is_consistent reasoner
  | Concept_sat c -> Reasoner.concept_satisfiable reasoner c
  | Instance (a, c) ->
      not (Reasoner.consistent_with reasoner [ Transform.instance_query c a ])
  | Not_instance (a, c) ->
      not
        (Reasoner.consistent_with reasoner
           [ Transform.negative_instance_query c a ])
  | Role_pos (a, r, b) ->
      Reasoner.role_entailed reasoner a (Transform.plus_role r) b
  | Role_neg (a, r, b) ->
      not
        (Reasoner.consistent_with reasoner
           [ Axiom.Role_assertion (a, Transform.eq_role r, b) ])

let check t q =
  Cache.find_or_add t.cache (key_of q) (fun () ->
      t.tableau_calls <- t.tableau_calls + 1;
      eval t.primary q)

let worker_reasoners t =
  match t.workers with
  | Some ws -> ws
  | None ->
      let ws =
        Array.init (t.jobs - 1) (fun _ ->
            Reasoner.create ?max_nodes:t.max_nodes ?max_branches:t.max_branches
              t.classical_kb)
      in
      t.workers <- Some ws;
      ws

(* One worker domain: run its lane with a confined reasoner and a private
   memo, logging every verdict it computed so the coordinator can fold the
   work into the shared cache. *)
let run_worker reasoner f lane =
  let memo = KH.create 64 in
  let log = ref [] in
  let check q =
    let k = key_of q in
    match KH.find_opt memo k with
    | Some v -> v
    | None ->
        let v = eval reasoner q in
        KH.add memo k v;
        log := (k, v) :: !log;
        v
  in
  match List.map (fun (i, item) -> (i, f ~check item)) lane with
  | out -> Ok (out, List.rev !log)
  | exception e -> Error e

let map_batches t items ~f =
  let sequential () = List.map (fun item -> f ~check:(check t) item) items in
  match items with
  | [] | [ _ ] -> sequential ()
  | _ when t.jobs <= 1 -> sequential ()
  | _ ->
      let workers = worker_reasoners t in
      let lanes = Array.make (Array.length workers + 1) [] in
      List.iteri
        (fun i item ->
          let l = i mod Array.length lanes in
          lanes.(l) <- (i, item) :: lanes.(l))
        items;
      let lane l = List.rev lanes.(l) in
      let domains =
        Array.init (Array.length workers) (fun w ->
            Domain.spawn (fun () -> run_worker workers.(w) f (lane (w + 1))))
      in
      (* coordinator lane runs against the shared cache while workers are in
         flight; exceptions are deferred until every domain is joined *)
      let lane0 =
        match List.map (fun (i, item) -> (i, f ~check:(check t) item)) (lane 0)
        with
        | out -> Ok out
        | exception e -> Error e
      in
      let results = Array.map Domain.join domains in
      t.batches <- t.batches + 1;
      let failure = ref None in
      let keep_first e = if !failure = None then failure := Some e in
      let outs = ref [] in
      Array.iter
        (function
          | Ok (out, log) ->
              List.iter
                (fun (k, v) ->
                  t.tableau_calls <- t.tableau_calls + 1;
                  t.parallel_calls <- t.parallel_calls + 1;
                  Cache.add t.cache k v)
                log;
              outs := out :: !outs
          | Error e -> keep_first e)
        results;
      (match lane0 with
      | Ok out -> outs := out :: !outs
      | Error e -> keep_first e);
      (match !failure with Some e -> raise e | None -> ());
      List.concat !outs
      |> List.sort (fun (i, _) (j, _) -> Int.compare i j)
      |> List.map snd

let shard t items =
  if t.jobs <= 1 then if items = [] then [] else [ items ]
  else begin
    let lanes = Array.make t.jobs [] in
    List.iteri (fun i item -> lanes.(i mod t.jobs) <- item :: lanes.(i mod t.jobs)) items;
    Array.to_list lanes |> List.filter_map (function [] -> None | l -> Some (List.rev l))
  end

let check_all t qs =
  if t.jobs <= 1 then List.map (check t) qs
  else begin
    (* distinct uncached keys, in first-occurrence order *)
    let seen = KH.create 64 in
    let pending =
      List.filter
        (fun q ->
          let k = key_of q in
          if KH.mem seen k then false
          else begin
            KH.add seen k ();
            not (Cache.mem t.cache k)
          end)
        qs
    in
    let computed = KH.create 64 in
    List.iter
      (fun (k, v) -> KH.replace computed k v)
      (List.concat
         (map_batches t (shard t pending) ~f:(fun ~check lane ->
              List.map (fun q -> (key_of q, check q)) lane)));
    List.map
      (fun q ->
        match KH.find_opt computed (key_of q) with
        | Some v -> v
        | None -> check t q)
      qs
  end

type stats = {
  cache : Verdict_cache.stats;
  tableau_calls : int;
  jobs : int;
  batches : int;
  parallel_calls : int;
}

let stats (t : t) =
  { cache = Cache.stats t.cache;
    tableau_calls = t.tableau_calls;
    jobs = t.jobs;
    batches = t.batches;
    parallel_calls = t.parallel_calls }

let pp_stats ppf s =
  Format.fprintf ppf "cache: %a@.tableau calls paid: %d" Verdict_cache.pp_stats
    s.cache s.tableau_calls;
  if s.jobs > 1 then
    Format.fprintf ppf "@.domain pool: %d domains, %d batches, %d worker verdicts"
      s.jobs s.batches s.parallel_calls
