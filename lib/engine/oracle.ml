type query =
  | Consistent
  | Concept_sat of Concept.t
  | Instance of string * Concept.t
  | Not_instance of string * Concept.t
  | Role_pos of string * Role.t * string
  | Role_neg of string * Role.t * string

(* Canonical cache keys: concepts go through [Qkey] so syntactically
   different but canonically identical queries share one verdict. *)
module Key = struct
  type t =
    | K_consistent
    | K_sat of Qkey.t
    | K_instance of string * Qkey.t
    | K_not_instance of string * Qkey.t
    | K_role_pos of string * Role.t * string
    | K_role_neg of string * Role.t * string

  let equal a b =
    match (a, b) with
    | K_consistent, K_consistent -> true
    | K_sat k1, K_sat k2 -> Qkey.equal k1 k2
    | K_instance (x, k1), K_instance (y, k2)
    | K_not_instance (x, k1), K_not_instance (y, k2) ->
        String.equal x y && Qkey.equal k1 k2
    | K_role_pos (a1, r1, b1), K_role_pos (a2, r2, b2)
    | K_role_neg (a1, r1, b1), K_role_neg (a2, r2, b2) ->
        String.equal a1 a2 && Role.equal r1 r2 && String.equal b1 b2
    | _ -> false

  let hash = function
    | K_consistent -> 0x5eed
    | K_sat k -> 3 * Qkey.hash k
    | K_instance (x, k) -> (5 * Qkey.hash k) + Hashtbl.hash x
    | K_not_instance (x, k) -> (7 * Qkey.hash k) + Hashtbl.hash x
    | K_role_pos (a, r, b) -> 11 * Hashtbl.hash (a, Role.to_string r, b)
    | K_role_neg (a, r, b) -> 13 * Hashtbl.hash (a, Role.to_string r, b)
end

module Cache = Verdict_cache.Make (Key)
module KH = Hashtbl.Make (Key)

let key_of = function
  | Consistent -> Key.K_consistent
  | Concept_sat c -> Key.K_sat (Qkey.of_concept c)
  | Instance (a, c) -> Key.K_instance (a, Qkey.of_concept c)
  | Not_instance (a, c) -> Key.K_not_instance (a, Qkey.of_concept c)
  | Role_pos (a, r, b) -> Key.K_role_pos (a, r, b)
  | Role_neg (a, r, b) -> Key.K_role_neg (a, r, b)

(* Registry mirrors of the per-instance counters below. *)
let c_tableau_calls = Obs.counter "oracle.tableau_calls"
let c_batches = Obs.counter "oracle.batches"
let c_parallel_calls = Obs.counter "oracle.worker_verdicts"
let h_eval = Obs.histogram "oracle.eval_ns"

(* Per-verdict provenance: what a tableau run touched while computing a
   verdict — the dependency set for selective cache invalidation. *)
type prov_entry = { individuals : string list; concepts : string list }

type t = {
  kb : Kb4.t;
  classical_kb : Axiom.kb;
  max_nodes : int option;
  max_branches : int option;
  jobs : int;
  primary : Reasoner.t;
  mutable workers : Reasoner.t array option;
      (* pool reasoners, length [jobs - 1]; created on first parallel batch *)
  cache : bool Cache.t;
  prov : prov_entry KH.t;
      (* per-key provenance, populated only while {!Obs.enabled};
         worker provenance folds in after join like the verdict logs *)
  mutable tableau_calls : int;
  mutable batches : int;
  mutable parallel_calls : int;
}

let default_cache_capacity = 4096

let create ?(jobs = 1) ?(cache_capacity = default_cache_capacity) ?max_nodes
    ?max_branches kb =
  let classical_kb = Transform.kb kb in
  { kb;
    classical_kb;
    max_nodes;
    max_branches;
    jobs = max 1 jobs;
    primary = Reasoner.create ?max_nodes ?max_branches classical_kb;
    workers = None;
    cache = Cache.create ~capacity:cache_capacity;
    prov = KH.create 64;
    tableau_calls = 0;
    batches = 0;
    parallel_calls = 0 }

let kb t = t.kb
let classical_kb t = t.classical_kb
let reasoner t = t.primary
let jobs t = t.jobs

(* Evaluate a query on a given reasoner — the only place verdicts are
   actually computed.  Pure w.r.t. everything but that reasoner's own
   statistics (and the optional provenance sink), so it is safe on worker
   domains. *)
let eval ?prov reasoner = function
  | Consistent -> Reasoner.is_consistent ?prov reasoner
  | Concept_sat c -> Reasoner.concept_satisfiable ?prov reasoner c
  | Instance (a, c) ->
      not
        (Reasoner.consistent_with ?prov reasoner
           [ Transform.instance_query c a ])
  | Not_instance (a, c) ->
      not
        (Reasoner.consistent_with ?prov reasoner
           [ Transform.negative_instance_query c a ])
  | Role_pos (a, r, b) ->
      Reasoner.role_entailed ?prov reasoner a (Transform.plus_role r) b
  | Role_neg (a, r, b) ->
      not
        (Reasoner.consistent_with ?prov reasoner
           [ Axiom.Role_assertion (a, Transform.eq_role r, b) ])

let query_kind = function
  | Consistent -> "consistent"
  | Concept_sat _ -> "concept_sat"
  | Instance _ -> "instance"
  | Not_instance _ -> "not_instance"
  | Role_pos _ -> "role_pos"
  | Role_neg _ -> "role_neg"

(* [eval] plus observability: when sinks are armed, each verdict gets a
   span (timed into the eval-latency histogram) and a provenance entry.
   Disabled, this is one branch on top of [eval]. *)
let eval_obs reasoner q =
  if not !Obs.on then (eval reasoner q, None)
  else begin
    let sp = Obs.enter ~cat:"oracle" "oracle.eval" in
    Obs.set_attr sp "query" (query_kind q);
    let prov = Tableau.fresh_prov () in
    match eval ~prov reasoner q with
    | v ->
        let entry =
          { individuals = Tableau.prov_individuals prov;
            concepts = Tableau.prov_concepts prov }
        in
        Obs.set_attr sp "verdict" (string_of_bool v);
        Obs.set_attr sp "individuals" (String.concat " " entry.individuals);
        Obs.exit_timed sp h_eval;
        (v, Some entry)
    | exception e ->
        Obs.set_attr sp "exn" (Printexc.to_string e);
        Obs.exit_timed sp h_eval;
        raise e
  end

let check t q =
  let k = key_of q in
  Cache.find_or_add t.cache k (fun () ->
      t.tableau_calls <- t.tableau_calls + 1;
      Obs.incr c_tableau_calls;
      let v, p = eval_obs t.primary q in
      (match p with Some p -> KH.replace t.prov k p | None -> ());
      v)

let worker_reasoners t =
  match t.workers with
  | Some ws -> ws
  | None ->
      let ws =
        Array.init (t.jobs - 1) (fun _ ->
            Reasoner.create ?max_nodes:t.max_nodes ?max_branches:t.max_branches
              t.classical_kb)
      in
      t.workers <- Some ws;
      ws

(* One worker domain: run its lane with a confined reasoner and a private
   memo, logging every verdict it computed (with its provenance, when
   sinks are armed) so the coordinator can fold the work into the shared
   cache.  The shard span attaches to the coordinator's batch span via
   [?parent] — worker domains have their own (empty) span stacks. *)
let run_worker ?parent reasoner f lane =
  let sp = Obs.enter ?parent ~cat:"oracle" "oracle.shard" in
  if Obs.live sp then begin
    Obs.set_attr sp "domain" (string_of_int (Domain.self () :> int));
    Obs.set_attr sp "items" (string_of_int (List.length lane))
  end;
  let memo = KH.create 64 in
  let log = ref [] in
  let check q =
    let k = key_of q in
    match KH.find_opt memo k with
    | Some v -> v
    | None ->
        let v, p = eval_obs reasoner q in
        KH.add memo k v;
        log := (k, v, p) :: !log;
        v
  in
  let result =
    match List.map (fun (i, item) -> (i, f ~check item)) lane with
    | out -> Ok (out, List.rev !log)
    | exception e -> Error e
  in
  Obs.exit_span sp;
  result

let map_batches t items ~f =
  let sequential () =
    Obs.with_span ~cat:"oracle" "oracle.batch" (fun () ->
        List.map (fun item -> f ~check:(check t) item) items)
  in
  match items with
  | [] | [ _ ] -> sequential ()
  | _ when t.jobs <= 1 -> sequential ()
  | _ ->
      let workers = worker_reasoners t in
      let sp = Obs.enter ~cat:"oracle" "oracle.batch" in
      if Obs.live sp then begin
        Obs.set_attr sp "jobs" (string_of_int t.jobs);
        Obs.set_attr sp "items" (string_of_int (List.length items))
      end;
      let lanes = Array.make (Array.length workers + 1) [] in
      List.iteri
        (fun i item ->
          let l = i mod Array.length lanes in
          lanes.(l) <- (i, item) :: lanes.(l))
        items;
      let lane l = List.rev lanes.(l) in
      let domains =
        Array.init (Array.length workers) (fun w ->
            Domain.spawn (fun () ->
                run_worker ~parent:sp workers.(w) f (lane (w + 1))))
      in
      (* coordinator lane runs against the shared cache while workers are in
         flight; exceptions are deferred until every domain is joined *)
      let lane0 =
        let sp0 = Obs.enter ~parent:sp ~cat:"oracle" "oracle.shard" in
        if Obs.live sp0 then begin
          Obs.set_attr sp0 "domain" (string_of_int (Domain.self () :> int));
          Obs.set_attr sp0 "items" (string_of_int (List.length (lane 0)))
        end;
        let r =
          match
            List.map (fun (i, item) -> (i, f ~check:(check t) item)) (lane 0)
          with
          | out -> Ok out
          | exception e -> Error e
        in
        Obs.exit_span sp0;
        r
      in
      let results = Array.map Domain.join domains in
      t.batches <- t.batches + 1;
      Obs.incr c_batches;
      let failure = ref None in
      let keep_first e = if !failure = None then failure := Some e in
      let outs = ref [] in
      Array.iter
        (function
          | Ok (out, log) ->
              List.iter
                (fun (k, v, p) ->
                  t.tableau_calls <- t.tableau_calls + 1;
                  t.parallel_calls <- t.parallel_calls + 1;
                  Obs.incr c_tableau_calls;
                  Obs.incr c_parallel_calls;
                  Cache.add t.cache k v;
                  match p with
                  | Some p -> KH.replace t.prov k p
                  | None -> ())
                log;
              outs := out :: !outs
          | Error e -> keep_first e)
        results;
      (match lane0 with
      | Ok out -> outs := out :: !outs
      | Error e -> keep_first e);
      Obs.exit_span sp;
      (match !failure with Some e -> raise e | None -> ());
      List.concat !outs
      |> List.sort (fun (i, _) (j, _) -> Int.compare i j)
      |> List.map snd

let shard t items =
  if t.jobs <= 1 then if items = [] then [] else [ items ]
  else begin
    let lanes = Array.make t.jobs [] in
    List.iteri (fun i item -> lanes.(i mod t.jobs) <- item :: lanes.(i mod t.jobs)) items;
    Array.to_list lanes |> List.filter_map (function [] -> None | l -> Some (List.rev l))
  end

let check_all t qs =
  if t.jobs <= 1 then
    Obs.with_span ~cat:"oracle" "oracle.check_all" (fun () ->
        List.map (check t) qs)
  else begin
    let sp = Obs.enter ~cat:"oracle" "oracle.check_all" in
    (* distinct uncached keys, in first-occurrence order *)
    let seen = KH.create 64 in
    let pending =
      List.filter
        (fun q ->
          let k = key_of q in
          if KH.mem seen k then false
          else begin
            KH.add seen k ();
            not (Cache.mem t.cache k)
          end)
        qs
    in
    if Obs.live sp then begin
      Obs.set_attr sp "queries" (string_of_int (List.length qs));
      Obs.set_attr sp "pending" (string_of_int (List.length pending))
    end;
    let finish r = Obs.exit_span sp; r in
    match
      let computed = KH.create 64 in
      List.iter
        (fun (k, v) -> KH.replace computed k v)
        (List.concat
           (map_batches t (shard t pending) ~f:(fun ~check lane ->
                List.map (fun q -> (key_of q, check q)) lane)));
      List.map
        (fun q ->
          match KH.find_opt computed (key_of q) with
          | Some v -> v
          | None -> check t q)
        qs
    with
    | r -> finish r
    | exception e ->
        Obs.exit_span sp;
        raise e
  end

let provenance t q = KH.find_opt t.prov (key_of q)

let provenances t =
  KH.fold (fun _ p acc -> p :: acc) t.prov []

type stats = {
  cache : Verdict_cache.stats;
  tableau_calls : int;
  jobs : int;
  batches : int;
  parallel_calls : int;
}

let stats (t : t) =
  { cache = Cache.stats t.cache;
    tableau_calls = t.tableau_calls;
    jobs = t.jobs;
    batches = t.batches;
    parallel_calls = t.parallel_calls }

let pp_stats ppf s =
  Format.fprintf ppf "cache: %a@.tableau calls paid: %d" Verdict_cache.pp_stats
    s.cache s.tableau_calls;
  if s.jobs > 1 then
    Format.fprintf ppf "@.domain pool: %d domains, %d batches, %d worker verdicts"
      s.jobs s.batches s.parallel_calls
