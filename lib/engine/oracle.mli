(** The entailment oracle — the single choke point for boolean tableau
    verdicts.

    Every reasoning service of the stack (instance and subsumption checks,
    role entailment, satisfiability, classification, realization,
    retrieval, conjunctive queries) bottoms out in a boolean question about
    the classical induced KB [K̄] of Definition 7.  An {!t} owns the one
    place those questions are answered: a canonical-keyed LRU
    {!Verdict_cache} plus a work-sharded pool of OCaml 5 domains, one
    classical {!Reasoner} per domain.

    {b Concurrency discipline.}  The cache is {e confined to the
    coordinating domain}: worker domains never touch it.  A worker
    evaluates its shard against its own private reasoner with a private
    memo table and returns a log of [(key, verdict)] pairs; the coordinator
    folds those logs into the shared cache after joining.  This keeps the
    (single-threaded, intrusive-list) LRU structure safe without a lock on
    the hot sequential path.  All functions of this module must be called
    from the domain that created the oracle. *)

type t

(** The closed vocabulary of boolean entailment questions.  Concepts are
    four-valued surface concepts except in {!Concept_sat}, whose argument
    is already a classical test concept (e.g. from
    {!Transform.inclusion_tests}). *)
type query =
  | Consistent  (** is [K̄] satisfiable (= [K] four-valued satisfiable)? *)
  | Concept_sat of Concept.t
      (** is this classical concept satisfiable w.r.t. [K̄]? *)
  | Instance of string * Concept.t  (** [K ⊨⁴ C(a)] *)
  | Not_instance of string * Concept.t  (** [K ⊨⁴ (¬C)(a)] *)
  | Role_pos of string * Role.t * string  (** [K̄ ⊨ R⁺(a,b)] *)
  | Role_neg of string * Role.t * string
      (** is [K̄ ∪ {R⁼(a,b)}] inconsistent? — the told-false bit of
          [R(a,b)] under Definition 8 *)

val create :
  ?jobs:int ->
  ?cache_capacity:int ->
  ?max_nodes:int ->
  ?max_branches:int ->
  Kb4.t ->
  t
(** [jobs] (default 1) is the domain-pool width used by {!check_all} and
    {!map_batches}; [1] keeps everything on the calling domain.  Worker
    reasoners are created lazily on the first parallel batch.
    [cache_capacity] defaults to {!default_cache_capacity}; [0] disables
    caching (every verdict pays its tableau call). *)

val default_cache_capacity : int
val kb : t -> Kb4.t
val classical_kb : t -> Axiom.kb
(** The induced [K̄] of Definition 7, shared by every reasoner of the pool. *)

val reasoner : t -> Reasoner.t
(** The coordinating domain's reasoner (for non-verdict services such as
    model extraction). *)

val jobs : t -> int

val check : t -> query -> bool
(** Cached verdict for one query, evaluated on the coordinating domain. *)

val check_all : t -> query list -> bool list
(** Verdicts for a batch, in input order.  Cached keys are answered from
    the cache; the remaining distinct keys are dealt round-robin across the
    domain pool.  Equivalent to [List.map (check t)] (same verdicts), but
    pays each distinct uncached key once and overlaps the tableau work. *)

val map_batches : t -> 'a list -> f:(check:(query -> bool) -> 'a -> 'b) -> 'b list
(** The pool's general fan-out: evaluate [f] on every item, in order.  With
    [jobs = 1] (or fewer than two items) everything runs on the calling
    domain and [check] is the cached {!check}.  Otherwise items are dealt
    round-robin across the pool; worker items get a [check] bound to that
    worker's confined reasoner and private memo, and the computed verdicts
    are folded into the shared cache after the join.  [f] must route every
    tableau question through the [check] it is given and must not touch the
    oracle (or any other shared mutable state) directly. *)

val shard : t -> 'a list -> 'a list list
(** Deal a work list round-robin into at most [jobs] non-empty shards,
    preserving relative order within each shard — the standard way to cut
    row-level work (classification rows, realization individuals) into
    {!map_batches} items. *)

(** {1 Provenance}

    When observability sinks are armed ({!Obs.enabled}), every verdict
    actually computed (on any domain of the pool) records which named
    individuals and user-level atomic concepts its tableau run touched —
    the dependency set needed for selective cache invalidation.  With
    sinks off, nothing is recorded and nothing is paid. *)

type prov_entry = {
  individuals : string list;  (** named ABox individuals touched, sorted *)
  concepts : string list;
      (** user-level (demangled) atomic concept names touched, sorted *)
}

val provenance : t -> query -> prov_entry option
(** The provenance of a verdict, if it was computed while sinks were
    armed (cache hits never re-record). *)

val provenances : t -> prov_entry list
(** All recorded per-verdict provenance entries, unordered. *)

(** {1 Statistics} *)

type stats = {
  cache : Verdict_cache.stats;
  tableau_calls : int;
      (** tableau invocations actually paid, on any domain of the pool *)
  jobs : int;
  batches : int;  (** parallel fan-outs executed *)
  parallel_calls : int;
      (** verdicts computed off the coordinating domain (a subset of
          [tableau_calls]) *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
