(** The entailment oracle — the single choke point for boolean tableau
    verdicts.

    Every reasoning service of the stack (instance and subsumption checks,
    role entailment, satisfiability, classification, realization,
    retrieval, conjunctive queries) bottoms out in a boolean question about
    the classical induced KB [K̄] of Definition 7.  An {!t} owns the one
    place those questions are answered: a canonical-keyed LRU
    {!Verdict_cache} plus a work-sharded pool of OCaml 5 domains, one
    classical {!Reasoner} per domain.

    {b Concurrency discipline.}  The cache is {e confined to the
    coordinating domain}: worker domains never touch it.  A worker
    evaluates its shard against its own private reasoner with a private
    memo table and returns a log of [(key, verdict, provenance)] triples;
    the coordinator folds those logs into the shared cache after joining.
    This keeps the (single-threaded, intrusive-list) LRU structure safe
    without a lock on the hot sequential path.  All functions of this
    module must be called from the domain that created the oracle. *)

type t

(** The closed vocabulary of boolean entailment questions.  Concepts are
    four-valued surface concepts except in {!Concept_sat}, whose argument
    is already a classical test concept (e.g. from
    {!Transform.inclusion_tests}).  The type is an alias of
    {!Backend.query} — the vocabulary every pluggable backend answers. *)
type query = Backend.query =
  | Consistent  (** is [K̄] satisfiable (= [K] four-valued satisfiable)? *)
  | Concept_sat of Concept.t
      (** is this classical concept satisfiable w.r.t. [K̄]? *)
  | Instance of string * Concept.t  (** [K ⊨⁴ C(a)] *)
  | Not_instance of string * Concept.t  (** [K ⊨⁴ (¬C)(a)] *)
  | Role_pos of string * Role.t * string  (** [K̄ ⊨ R⁺(a,b)] *)
  | Role_neg of string * Role.t * string
      (** is [K̄ ∪ {R⁼(a,b)}] inconsistent? — the told-false bit of
          [R(a,b)] under Definition 8 *)

(** {1 Construction}

    The one construction surface for the whole stack: {!Session.create},
    {!Engine.create} and {!Para.create} all route through {!of_config}. *)

type config = {
  jobs : int;
      (** domain-pool width used by {!check_all} and {!map_batches};
          [1] keeps everything on the calling domain *)
  cache_capacity : int;
      (** verdict-cache capacity; [0] disables caching (every verdict
          pays its tableau call) *)
  max_nodes : int;  (** tableau node budget per run *)
  max_branches : int;  (** tableau branch budget per run *)
  backend : Backend.choice;
      (** verdict routing policy.  [Tableau] (the library default) pins
          every verdict to the tableau — bit-for-bit the pre-backend
          behavior.  [Auto] builds the Horn/EL completion backend when
          K̄ is in its fragment ({!Fragment.check}) and routes each
          verdict to it when it can answer ([can_answer]), falling back
          to the tableau otherwise.  [Horn] demands the fragment:
          {!of_config} raises {!Backend.Unsupported} when K̄ is outside
          it (per-query shapes the completion engine cannot answer
          still fall back to the tableau). *)
}

val default_config : config
(** [{ jobs = 1; cache_capacity = default_cache_capacity;
      max_nodes = 20_000; max_branches = max_int;
      backend = Backend.Tableau }] *)

val of_config : config -> Kb4.t -> t
(** Build an oracle over the four-valued KB: transforms it to [K̄]
    (Definition 7) and prepares the primary reasoner.  [jobs] is clamped
    to at least 1; worker reasoners are created lazily on the first
    parallel batch.
    @raise Backend.Unsupported when [config.backend = Horn] and [K̄] is
    outside the Horn/EL fragment. *)

val default_cache_capacity : int
val kb : t -> Kb4.t
(** The current four-valued KB — reflects every applied delta. *)

val classical_kb : t -> Axiom.kb
(** The induced [K̄] of Definition 7, shared by every reasoner of the
    pool — reflects every applied delta. *)

val reasoner : t -> Reasoner.t
(** The coordinating domain's reasoner (for non-verdict services such as
    model extraction). *)

val config : t -> config
val jobs : t -> int

val check : t -> query -> bool
(** Cached verdict for one query, evaluated on the coordinating domain. *)

val check_all : t -> query list -> bool list
(** Verdicts for a batch, in input order.  Cached keys are answered from
    the cache; the remaining distinct keys are dealt round-robin across the
    domain pool.  Equivalent to [List.map (check t)] (same verdicts), but
    pays each distinct uncached key once and overlaps the tableau work. *)

val map_batches : t -> 'a list -> f:(check:(query -> bool) -> 'a -> 'b) -> 'b list
(** The pool's general fan-out: evaluate [f] on every item, in order.  With
    [jobs = 1] (or fewer than two items) everything runs on the calling
    domain and [check] is the cached {!check}.  Otherwise items are dealt
    round-robin across the pool; worker items get a [check] bound to that
    worker's confined reasoner and private memo, and the computed verdicts
    are folded into the shared cache after the join.  [f] must route every
    tableau question through the [check] it is given and must not touch the
    oracle (or any other shared mutable state) directly. *)

val shard : t -> 'a list -> 'a list list
(** Deal a work list round-robin into at most [jobs] non-empty shards,
    preserving relative order within each shard — the standard way to cut
    row-level work (classification rows, realization individuals) into
    {!map_batches} items. *)

(** {1 Provenance}

    Every verdict actually computed (on any domain of the pool) records
    which named individuals and user-level atomic concepts its tableau run
    touched, seeded with the query's own symbols — the dependency set that
    drives selective cache invalidation in {!apply}.  Recording is
    unconditional: it does not depend on observability sinks being armed
    ({!Obs.enabled} only adds spans and histograms on top).

    Provenance lifetime is tied to cache residency: an entry lives exactly
    as long as its verdict is retained, so an LRU capacity eviction drops
    the provenance (and its index postings) together with the verdict, and
    a disabled cache ([cache_capacity = 0]) records no provenance at all —
    nothing can be retained, so there is nothing to invalidate. *)

type prov_entry = {
  individuals : string list;  (** named ABox individuals touched, sorted *)
  concepts : string list;
      (** user-level (demangled) atomic concept names touched, sorted *)
}

val provenance : t -> query -> prov_entry option
(** The provenance of a currently retained verdict ([None] if the verdict
    was never computed, was invalidated by a delta, or fell out of the LRU
    cache; cache hits never re-record). *)

val provenances : t -> prov_entry list
(** All recorded per-verdict provenance entries, unordered. *)

(** {1 Per-verdict cost accounting}

    Every verdict actually computed (on any domain of the pool) gets a
    cost record: the diff of the computing reasoner's per-run stats cells
    around the eval, plus wall time.  Like provenance, recording is
    unconditional — no {!Obs} sink needs to be armed — and the per-key
    records share the cache-residency lifetime (session totals in
    {!cost_totals} survive eviction).  Worker-computed costs fold in
    after the join, so all bookkeeping stays on the coordinating
    domain.

    When the {!Obs} slow-query log is armed, each computed verdict at or
    over the threshold additionally emits one JSONL record (cost,
    provenance symbols, cache disposition) at recording time. *)

type cost = {
  c_query : string;  (** printable form of the query *)
  c_kind : string;  (** {!query_kind} *)
  c_backend : string;  (** backend that computed it: ["tableau"]/["horn"] *)
  c_trace : string;
      (** trace ID current when the verdict was computed ([""] when no
          request context was installed, see {!Obs.set_trace_id}) *)
  c_wall_ns : float;
  c_runs : int;  (** tableau runs the verdict needed *)
  c_nodes : int;  (** completion-graph nodes created *)
  c_merges : int;
  c_branches : int;  (** nondeterministic alternatives explored *)
  c_backtracks : int;
  c_clashes : int;
  c_blocking : int;  (** blocking events *)
  c_rule_firings : int array;  (** indexed like [Tableau.rule_names] *)
  c_shard : int;  (** id of the domain that computed the verdict *)
  mutable c_hits : int;  (** cache hits served since computation *)
}

val cost_rules : cost -> (string * int) list
(** Non-zero rule firings by rule name. *)

val cost : t -> query -> cost option
(** The cost record of a currently retained verdict ([None] under the
    same conditions as {!provenance}). *)

val costs : t -> cost list
(** All retained cost records, most expensive (by wall time) first. *)

type cost_totals = {
  verdicts : int;  (** verdicts computed (cache misses paid) *)
  cache_served : int;  (** checks answered from the cache *)
  slow : int;  (** computed verdicts at/over the slow-log threshold *)
  wall_ns : float;  (** total eval wall time *)
  runs : int;
  nodes : int;
  merges : int;
  branches : int;
  backtracks : int;
  clashes : int;
  blocking : int;
  rule_firings : (string * int) list;  (** non-zero, by rule name *)
  backends : (string * int) list;
      (** verdicts computed per backend, sorted by name *)
}

val cost_totals : t -> cost_totals
(** Session-level aggregate since construction — independent of cache
    eviction and KB deltas (deltas reset verdicts, not history). *)

val query_to_string : query -> string
val pp_cost : Format.formatter -> cost -> unit
val pp_cost_totals : Format.formatter -> cost_totals -> unit

(** {1 Snapshot export / import}

    The explicit state-transfer surface behind {!Dl_store}'s persistent
    snapshots: the warm contents of the verdict cache (with the
    provenance and cost records whose lifetime is tied to residency) and
    the session-lifetime cost totals, expressed in the public {!query}
    vocabulary so the cache's internal canonical key type never leaks.
    Keys canonicalize idempotently, so re-importing an exported entry
    reconstructs bit-identical cache keys. *)

type export_entry = {
  x_query : query;  (** the key, re-canonicalized on import *)
  x_verdict : bool;
  x_prov : prov_entry option;
      (** absent only for verdicts recorded without provenance (e.g. the
          consistency bit re-seeded across a flush) *)
  x_cost : cost option;
}

val export_entries : t -> export_entry list
(** Every cached verdict in recency order, {e least} recently used
    first, so replaying the list through {!import_entries} reproduces
    the same LRU structure. *)

val import_entries : t -> export_entry list -> int
(** Warm the cache with previously exported entries: each verdict is
    inserted (subject to this oracle's capacity — overflow evicts the
    oldest imports) and its provenance re-posted into the dependency
    indexes, so selective invalidation by later deltas remains sound.
    Imported verdicts do not count as tableau calls.  Returns the cache
    size after the import.

    Soundness is the {e caller}'s contract: entries must have been
    exported from an oracle over an identical KB ({!Dl_store} validates
    this before importing). *)

val import_totals : t -> cost_totals -> unit
(** Fold saved session totals into this oracle's accumulator, so a
    re-warmed session continues the saved session's work history.  Rule
    names unknown to this build are dropped. *)

val cache_stats : t -> Verdict_cache.stats

val restore_cache_stats : t -> Verdict_cache.stats -> unit
(** Overwrite the cache's hit/miss/eviction counters with saved ones
    (size/capacity fields are ignored). *)

(** {1 Incremental update}

    {!apply} edits the KB in place and selectively invalidates cached
    verdicts through a provenance-keyed dependency index (individual and
    atomic-concept symbol -> verdict keys).  A verdict survives a delta
    when its recorded dependency set avoids every symbol the delta can
    reach:

    - ABox adds/retracts evict the verdicts whose provenance meets the
      {e connected component} (over told role assertions, Same/Different
      links and nominal references) of the delta's individuals — in a
      nominal-free TBox, tableau forests for disjoint components never
      interact, so untouched-component verdicts are bitwise identical.
    - An absorbable TBox addition ([A ⊑ C] with atomic LHS) evicts the
      verdicts whose provenance mentions [A]; any other TBox axiom (GCI,
      role inclusion, transitivity) forces a full flush.
    - The global {!Consistent} verdict is always evicted, and if its value
      flips across the delta everything else is flushed too — an
      (in)consistency transition re-decides every entailment at once.
    - Nominals disable locality in both directions: a TBox addition that
      mentions a nominal always flushes (even absorbable — its body names
      an individual and can merge disjoint components without touching the
      ABox), and ABox deltas flush whenever the pre-existing classical
      TBox mentions a nominal (the disjoint-component argument breaks). *)

type apply_stats = {
  evicted : int;  (** cache entries dropped by this delta *)
  retained : int;  (** cache entries that survived *)
  flushed : bool;  (** did the delta force a full flush? *)
  consistency_flipped : bool;
      (** did [K̄]'s satisfiability change across the delta? *)
  recheck_calls : int;
      (** tableau calls paid inside [apply] itself (the pre/post
          consistency probes; at most 2, fewer when cached) *)
}

val apply : t -> Delta.t -> apply_stats
(** Apply a delta in place: updates the four-valued KB, pushes the delta
    through the axiom-local incremental transform into [K̄] and the
    primary reasoner's prepared state, discards pool workers (rebuilt
    lazily), and invalidates exactly the cached verdicts the delta can
    affect.  Subsequent queries answer against the updated KB; retained
    verdicts are served without new tableau calls. *)

val pp_apply_stats : Format.formatter -> apply_stats -> unit

(** {1 Statistics} *)

type stats = {
  cache : Verdict_cache.stats;
  tableau_calls : int;
      (** tableau invocations actually paid, on any domain of the pool *)
  jobs : int;
  batches : int;  (** parallel fan-outs executed *)
  parallel_calls : int;
      (** verdicts computed off the coordinating domain (a subset of
          [tableau_calls]) *)
  routes : (string * int) list;
      (** computed verdicts per backend since construction, sorted by
          backend name; empty until something is computed *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
