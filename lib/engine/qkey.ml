type t = { concept : Concept.t; hash : int }

let of_concept c =
  let concept = Concept.canon c in
  { concept; hash = Concept.hash concept }

let concept k = k.concept
let hash k = k.hash
let equal a b = a.hash = b.hash && Concept.equal a.concept b.concept

let compare a b =
  let c = Int.compare a.hash b.hash in
  if c <> 0 then c else Concept.compare a.concept b.concept

let pp ppf k = Concept.pp ppf k.concept
