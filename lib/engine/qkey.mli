(** Canonical query keys.

    A [Qkey.t] is a concept in {!Concept.canon} canonical NNF together with
    its precomputed structural hash.  Two syntactically different but
    canonically identical query concepts (commuted conjunctions, duplicated
    disjuncts, unsorted nominals, double negations, …) map to the same key,
    so the verdict cache and the classification engine share work across
    semantically identical queries without any extra tableau calls. *)

type t

val of_concept : Concept.t -> t
(** Canonicalize and hash.  Linear in the concept, plus the sorting of
    flattened [And]/[Or] spines. *)

val concept : t -> Concept.t
(** The canonical representative (already in NNF). *)

val equal : t -> t -> bool
(** Hash-gated structural equality on the canonical forms. *)

val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
