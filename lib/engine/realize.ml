module SS = Set.Make (String)

type stats = {
  individuals : int;
  atoms : int;
  naive_checks : int;
  positive_checks : int;
  negative_checks : int;
  pruned : int;
}

let checks_saved s =
  s.naive_checks - s.positive_checks - s.negative_checks

let pp_stats ppf s =
  Format.fprintf ppf
    "%d individuals x %d atoms: %d+%d instance checks (naive %d; %d pruned)"
    s.individuals s.atoms s.positive_checks s.negative_checks s.naive_checks
    s.pruned

type entry = {
  name : string;
  types : (string * Truth.t) list;
  most_specific : string list;
}

type t = { entries : entry list; stats : stats }

(* ------------------------------------------------------------------ *)
(* Preparation: hierarchy indexes derived from the classification.  The
   tables are fully populated here and read-only afterwards, so one [prep]
   is safely shared by worker domains realizing disjoint individuals. *)

type prep = {
  individuals : string list;  (* sorted, unique *)
  atoms : string list;  (* sorted, unique *)
  order : string list;  (* top-down: fewer subsumers first *)
  sup : (string, SS.t) Hashtbl.t;
  subs : (string, SS.t) Hashtbl.t;
}

let prepare ~individuals ~atoms ~supers =
  let atoms = List.sort_uniq String.compare atoms in
  let individuals = List.sort_uniq String.compare individuals in
  let sup = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace sup c (SS.of_list (supers c))) atoms;
  let sup_of c = Option.value ~default:SS.empty (Hashtbl.find_opt sup c) in
  let subs = Hashtbl.create 16 in
  List.iter
    (fun d ->
      SS.iter
        (fun c ->
          let cur = Option.value ~default:SS.empty (Hashtbl.find_opt subs c) in
          Hashtbl.replace subs c (SS.add d cur))
        (sup_of d))
    atoms;
  (* top-down: atoms with fewer subsumers first, so a refuted concept prunes
     its whole cone of subsumees before any of them is checked *)
  let order =
    List.sort
      (fun a b ->
        let c = Int.compare (SS.cardinal (sup_of a)) (SS.cardinal (sup_of b)) in
        if c <> 0 then c else String.compare a b)
      atoms
  in
  { individuals; atoms; order; sup; subs }

let individuals p = p.individuals
let sup_of p c = Option.value ~default:SS.empty (Hashtbl.find_opt p.sup c)
let subs_of p c = Option.value ~default:SS.empty (Hashtbl.find_opt p.subs c)

(* ------------------------------------------------------------------ *)
(* Per-individual realization.  Individuals are mutually independent, so a
   shard of them is a unit of domain-parallel work. *)

type row = {
  entry : entry;
  row_pos : int;
  row_neg : int;
  row_pruned : int;
}

let realize_one p ~check_pos ~check_neg a =
  let positive_checks = ref 0
  and negative_checks = ref 0
  and pruned = ref 0 in
  let settled = Hashtbl.create 16 in
  let settle c v =
    if not (Hashtbl.mem settled c) then begin
      Hashtbl.add settled c v;
      incr pruned
    end
  in
  List.iter
    (fun c ->
      if not (Hashtbl.mem settled c) then begin
        incr positive_checks;
        let v = check_pos a c in
        Hashtbl.add settled c v;
        if v then SS.iter (fun s -> settle s true) (sup_of p c)
        else SS.iter (fun d -> settle d false) (subs_of p c)
      end)
    p.order;
  let pos c = Hashtbl.find settled c in
  let types =
    List.map
      (fun c ->
        incr negative_checks;
        let told_false = check_neg a c in
        (c, Truth.of_pair ~told_true:(pos c) ~told_false))
      p.atoms
  in
  let strictly_below d c = SS.mem c (sup_of p d) && not (SS.mem d (sup_of p c)) in
  let most_specific =
    List.filter
      (fun c ->
        pos c
        && not (List.exists (fun d -> pos d && strictly_below d c) p.atoms))
      p.atoms
  in
  { entry = { name = a; types; most_specific };
    row_pos = !positive_checks;
    row_neg = !negative_checks;
    row_pruned = !pruned }

let rows p ~check_pos ~check_neg shard =
  List.map (realize_one p ~check_pos ~check_neg) shard

let collect p row_list =
  let by_name = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace by_name r.entry.name r) row_list;
  let ordered =
    List.map
      (fun a ->
        match Hashtbl.find_opt by_name a with
        | Some r -> r
        | None -> invalid_arg ("Realize.collect: missing row for " ^ a))
      p.individuals
  in
  let ni = List.length p.individuals and na = List.length p.atoms in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 ordered in
  { entries = List.map (fun r -> r.entry) ordered;
    stats =
      { individuals = ni;
        atoms = na;
        naive_checks = 2 * ni * na;
        positive_checks = sum (fun r -> r.row_pos);
        negative_checks = sum (fun r -> r.row_neg);
        pruned = sum (fun r -> r.row_pruned) } }

let run ~individuals ~atoms ~supers ~check_pos ~check_neg =
  let p = prepare ~individuals ~atoms ~supers in
  collect p (rows p ~check_pos ~check_neg p.individuals)
