module SS = Set.Make (String)

type stats = {
  individuals : int;
  atoms : int;
  naive_checks : int;
  positive_checks : int;
  negative_checks : int;
  pruned : int;
}

let checks_saved s =
  s.naive_checks - s.positive_checks - s.negative_checks

let pp_stats ppf s =
  Format.fprintf ppf
    "%d individuals x %d atoms: %d+%d instance checks (naive %d; %d pruned)"
    s.individuals s.atoms s.positive_checks s.negative_checks s.naive_checks
    s.pruned

type entry = {
  name : string;
  types : (string * Truth.t) list;
  most_specific : string list;
}

type t = { entries : entry list; stats : stats }

let run ~individuals ~atoms ~supers ~check_pos ~check_neg =
  let atoms = List.sort_uniq String.compare atoms in
  let individuals = List.sort_uniq String.compare individuals in
  let sup = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace sup c (SS.of_list (supers c))) atoms;
  let sup_of c = Option.value ~default:SS.empty (Hashtbl.find_opt sup c) in
  let subs = Hashtbl.create 16 in
  List.iter
    (fun d ->
      SS.iter
        (fun c ->
          let cur = Option.value ~default:SS.empty (Hashtbl.find_opt subs c) in
          Hashtbl.replace subs c (SS.add d cur))
        (sup_of d))
    atoms;
  let subs_of c = Option.value ~default:SS.empty (Hashtbl.find_opt subs c) in
  (* top-down: atoms with fewer subsumers first, so a refuted concept prunes
     its whole cone of subsumees before any of them is checked *)
  let order =
    List.sort
      (fun a b ->
        let c = Int.compare (SS.cardinal (sup_of a)) (SS.cardinal (sup_of b)) in
        if c <> 0 then c else String.compare a b)
      atoms
  in
  let positive_checks = ref 0
  and negative_checks = ref 0
  and pruned = ref 0 in
  let entries =
    List.map
      (fun a ->
        let settled = Hashtbl.create 16 in
        let settle c v =
          if not (Hashtbl.mem settled c) then begin
            Hashtbl.add settled c v;
            incr pruned
          end
        in
        List.iter
          (fun c ->
            if not (Hashtbl.mem settled c) then begin
              incr positive_checks;
              let v = check_pos a c in
              Hashtbl.add settled c v;
              if v then SS.iter (fun s -> settle s true) (sup_of c)
              else SS.iter (fun d -> settle d false) (subs_of c)
            end)
          order;
        let pos c = Hashtbl.find settled c in
        let types =
          List.map
            (fun c ->
              incr negative_checks;
              let told_false = check_neg a c in
              (c, Truth.of_pair ~told_true:(pos c) ~told_false))
            atoms
        in
        let strictly_below d c = SS.mem c (sup_of d) && not (SS.mem d (sup_of c)) in
        let most_specific =
          List.filter
            (fun c ->
              pos c
              && not (List.exists (fun d -> pos d && strictly_below d c) atoms))
            atoms
        in
        { name = a; types; most_specific })
      individuals
  in
  let ni = List.length individuals and na = List.length atoms in
  { entries;
    stats =
      { individuals = ni;
        atoms = na;
        naive_checks = 2 * ni * na;
        positive_checks = !positive_checks;
        negative_checks = !negative_checks;
        pruned = !pruned } }
