(** ABox realization: for every individual, its Belnap truth value on every
    atomic concept and its most-specific atomic types, with positive
    instance checks pruned through a classified hierarchy.

    Pruning is sound for the positive dimension because told-positive
    instance information travels {e up} internal inclusions: if [D ⊑ C] and
    [a ∉ C] is settled, then [a ∉ D] for every subsumee [D] of [C] without a
    tableau call.  The negative dimension ([¬C(a)] support) does not
    contrapose along internal inclusions, so it is checked directly, one
    call per (individual, atom) pair. *)

type stats = {
  individuals : int;
  atoms : int;
  naive_checks : int;     (** the baseline: [2 * individuals * atoms] *)
  positive_checks : int;  (** positive oracle calls actually made *)
  negative_checks : int;
  pruned : int;           (** positive checks answered through the hierarchy *)
}

val checks_saved : stats -> int
val pp_stats : Format.formatter -> stats -> unit

type entry = {
  name : string;
  types : (string * Truth.t) list;
      (** Belnap value for every atom of the signature, in atom order *)
  most_specific : string list;
      (** told-positive atoms with no told-positive strict subsumee;
          members of one lowest equivalence class all appear *)
}

type t = { entries : entry list; stats : stats }

val run :
  individuals:string list ->
  atoms:string list ->
  supers:(string -> string list) ->
  check_pos:(string -> string -> bool) ->
  check_neg:(string -> string -> bool) ->
  t
(** [supers] is the classified full-subsumer map (e.g. {!Classify.supers_fn});
    [check_pos a c] decides positive instance support for [c(a)], [check_neg]
    negative support.  [supers] must be sound and complete for [check_pos]
    monotonicity: [c ∈ supers d] must imply [check_pos a d ⇒ check_pos a c]. *)
