(** ABox realization: for every individual, its Belnap truth value on every
    atomic concept and its most-specific atomic types, with positive
    instance checks pruned through a classified hierarchy.

    Pruning is sound for the positive dimension because told-positive
    instance information travels {e up} internal inclusions: if [D ⊑ C] and
    [a ∉ C] is settled, then [a ∉ D] for every subsumee [D] of [C] without a
    tableau call.  The negative dimension ([¬C(a)] support) does not
    contrapose along internal inclusions, so it is checked directly, one
    call per (individual, atom) pair. *)

type stats = {
  individuals : int;
  atoms : int;
  naive_checks : int;     (** the baseline: [2 * individuals * atoms] *)
  positive_checks : int;  (** positive oracle calls actually made *)
  negative_checks : int;
  pruned : int;           (** positive checks answered through the hierarchy *)
}

val checks_saved : stats -> int
val pp_stats : Format.formatter -> stats -> unit

type entry = {
  name : string;
  types : (string * Truth.t) list;
      (** Belnap value for every atom of the signature, in atom order *)
  most_specific : string list;
      (** told-positive atoms with no told-positive strict subsumee;
          members of one lowest equivalence class all appear *)
}

type t = { entries : entry list; stats : stats }

val run :
  individuals:string list ->
  atoms:string list ->
  supers:(string -> string list) ->
  check_pos:(string -> string -> bool) ->
  check_neg:(string -> string -> bool) ->
  t
(** [supers] is the classified full-subsumer map (e.g. {!Classify.supers_fn});
    [check_pos a c] decides positive instance support for [c(a)], [check_neg]
    negative support.  [supers] must be sound and complete for [check_pos]
    monotonicity: [c ∈ supers d] must imply [check_pos a d ⇒ check_pos a c].
    Equivalent to [collect p (rows p … (individuals p))] on [prepare]. *)

(** {1 Sharded driving}

    Individuals are realized independently of each other, so shards of the
    individual list are units of domain-parallel work (see
    {!Oracle.map_batches}): [prepare] builds the read-only hierarchy
    indexes, [rows] realizes one shard, [collect] reassembles entries into
    individual order and sums the statistics.  Entries are byte-identical
    whatever the sharding. *)

type prep
(** Read-only hierarchy indexes; safe to share across domains. *)

val prepare :
  individuals:string list ->
  atoms:string list ->
  supers:(string -> string list) ->
  prep

val individuals : prep -> string list
(** Sorted, deduplicated — the canonical work list to shard. *)

type row
(** One individual's entry plus its per-row check counters. *)

val rows :
  prep ->
  check_pos:(string -> string -> bool) ->
  check_neg:(string -> string -> bool) ->
  string list ->
  row list

val collect : prep -> row list -> t
(** Reassemble rows (one per individual, any order) into {!t}.
    @raise Invalid_argument if an individual's row is missing. *)
