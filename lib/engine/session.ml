type config = Oracle.config = {
  jobs : int;
  cache_capacity : int;
  max_nodes : int;
  max_branches : int;
  backend : Backend.choice;
}

let default_config = Oracle.default_config

type t = { engine : Engine.t }

let create ?(config = default_config) kb = { engine = Engine.of_config config kb }
let of_engine engine = { engine }
let of_oracle oracle = { engine = Engine.of_oracle oracle }
let engine t = t.engine
let oracle t = Engine.oracle t.engine
let kb t = Engine.kb t.engine
let classical_kb t = Oracle.classical_kb (oracle t)
let config t = Oracle.config (oracle t)
let apply t d = Engine.apply t.engine d

let apply_all t ds =
  (* seed the fold with a no-op apply so an empty list still reports the
     true retained count (and the zero record stays in one place) *)
  List.fold_left
    (fun (acc : Oracle.apply_stats) d ->
      let s = apply t d in
      { Oracle.evicted = acc.Oracle.evicted + s.Oracle.evicted;
        retained = s.Oracle.retained;
        flushed = acc.Oracle.flushed || s.Oracle.flushed;
        consistency_flipped =
          acc.Oracle.consistency_flipped || s.Oracle.consistency_flipped;
        recheck_calls = acc.Oracle.recheck_calls + s.Oracle.recheck_calls })
    (apply t Delta.empty) ds

let stats t = Engine.stats t.engine
let pp_stats = Engine.pp_stats
let cost t q = Oracle.cost (oracle t) q
let costs t = Oracle.costs (oracle t)
let cost_totals t = Oracle.cost_totals (oracle t)
