(** The unified session facade — one value that owns the whole reasoning
    stack for one evolving knowledge base.

    A {!t} bundles the four-valued KB [K], its classical induced KB [K̄],
    the entailment {!Oracle} (verdict cache + domain pool) and the
    {!Engine} indexes behind a single {!config} record — the one
    session-construction surface (the legacy per-constructor optional
    arguments were removed).  New code builds a session (or passes a
    {!config} to [of_config]) and derives the layer it needs:

    {[
      let s = Session.create ~config:{ Session.default_config with jobs = 4 } kb in
      let p = Para.of_engine (Session.engine s) in
      ...queries...
      let _ = Session.apply s delta in     (* incremental update *)
      ...more queries, warm cache...
    ]} *)

type config = Oracle.config = {
  jobs : int;  (** domain-pool width, clamped to ≥ 1 *)
  cache_capacity : int;  (** verdict-cache bound; [0] disables caching *)
  max_nodes : int;  (** tableau node budget per run *)
  max_branches : int;  (** tableau branch budget per run *)
  backend : Backend.choice;
      (** verdict routing: [Tableau] (default) pins every query to the
          tableau, [Auto] routes Horn-fragment work to the completion
          backend, [Horn] requires the fragment (raises
          [Backend.Unsupported] otherwise) *)
}

val default_config : config

type t

val create : ?config:config -> Kb4.t -> t
(** Build the full stack over [kb]: transform to [K̄], prepare the
    tableau, create the oracle and the (lazy) engine indexes. *)

val of_engine : Engine.t -> t
val of_oracle : Oracle.t -> t
(** Wrap an existing layer; everything (cache, pool, indexes) is shared
    with other wrappers of the same oracle. *)

val engine : t -> Engine.t
(** The index layer — classification, realization, cached query
    services.  [Para.of_engine (engine s)] derives the paper-level
    query API on the same shared stack. *)

val oracle : t -> Oracle.t
val kb : t -> Kb4.t
(** The current four-valued KB, reflecting every applied delta. *)

val classical_kb : t -> Axiom.kb
val config : t -> config

val apply : t -> Delta.t -> Oracle.apply_stats
(** Apply an incremental update to the session's KB (see
    {!Oracle.apply} for the invalidation contract).  Every layer views
    the updated KB afterwards; retained verdicts keep serving hits. *)

val apply_all : t -> Delta.t list -> Oracle.apply_stats
(** Replay a delta script in order.  The returned stats accumulate
    [evicted]/[recheck_calls] and OR the flush/flip flags; [retained] is
    the final value. *)

val stats : t -> Engine.stats
val pp_stats : Format.formatter -> Engine.stats -> unit

(** {1 Cost accounting}

    Session views of the oracle's per-verdict cost layer (see
    {!Oracle.cost}): always on, survives deltas at the totals level. *)

val cost : t -> Oracle.query -> Oracle.cost option
val costs : t -> Oracle.cost list
(** Retained per-verdict cost records, most expensive first. *)

val cost_totals : t -> Oracle.cost_totals
(** Aggregate work since session creation, independent of cache
    eviction and applied deltas. *)
