type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let pp_stats ppf s =
  Format.fprintf ppf "%d hits / %d misses / %d evictions (%d/%d entries)"
    s.hits s.misses s.evictions s.size s.capacity

(* Registry mirrors, aggregated over every cache instance in the
   process.  Per-instance counts stay in each instance's [stats]. *)
let c_hits = Obs.counter "cache.hits"
let c_misses = Obs.counter "cache.misses"
let c_evictions = Obs.counter "cache.evictions"

module Make (K : Hashtbl.HashedType) = struct
  module H = Hashtbl.Make (K)

  (* Intrusive doubly-linked recency list; [front] is most recent. *)
  type 'v node = {
    key : K.t;
    mutable value : 'v;
    mutable prev : 'v node option;  (* towards the front *)
    mutable next : 'v node option;  (* towards the back *)
  }

  type 'v t = {
    capacity : int;
    mutable on_evict : K.t -> unit;
    table : 'v node H.t;
    mutable front : 'v node option;
    mutable back : 'v node option;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create ~capacity =
    let capacity = max 0 capacity in
    { capacity;
      on_evict = (fun _ -> ());
      table = H.create (max 16 (min capacity 4096));
      front = None;
      back = None;
      hits = 0;
      misses = 0;
      evictions = 0 }

  let on_evict t f = t.on_evict <- f

  let capacity t = t.capacity
  let length t = H.length t.table

  let unlink t n =
    (match n.prev with Some p -> p.next <- n.next | None -> t.front <- n.next);
    (match n.next with Some s -> s.prev <- n.prev | None -> t.back <- n.prev);
    n.prev <- None;
    n.next <- None

  let push_front t n =
    n.next <- t.front;
    n.prev <- None;
    (match t.front with Some f -> f.prev <- Some n | None -> t.back <- Some n);
    t.front <- Some n

  let touch t n =
    match t.front with
    | Some f when f == n -> ()
    | _ ->
        unlink t n;
        push_front t n

  let find t k =
    match H.find_opt t.table k with
    | Some n ->
        t.hits <- t.hits + 1;
        Obs.incr c_hits;
        touch t n;
        Some n.value
    | None ->
        t.misses <- t.misses + 1;
        Obs.incr c_misses;
        None

  let mem t k = H.mem t.table k

  let evict_lru t =
    match t.back with
    | None -> ()
    | Some n ->
        unlink t n;
        H.remove t.table n.key;
        t.evictions <- t.evictions + 1;
        Obs.incr c_evictions;
        t.on_evict n.key

  let add t k v =
    if t.capacity > 0 then begin
      (match H.find_opt t.table k with
      | Some n ->
          n.value <- v;
          touch t n
      | None ->
          let n = { key = k; value = v; prev = None; next = None } in
          H.replace t.table k n;
          push_front t n);
      while H.length t.table > t.capacity do
        evict_lru t
      done
    end

  let find_or_add t k f =
    match find t k with
    | Some v -> v
    | None ->
        let v = f () in
        add t k v;
        v

  let remove t k =
    match H.find_opt t.table k with
    | None -> false
    | Some n ->
        unlink t n;
        H.remove t.table k;
        true

  let entries t =
    (* walk back-to-front along [prev] links: LRU first, MRU last *)
    let rec go acc = function
      | None -> List.rev acc
      | Some n -> go ((n.key, n.value) :: acc) n.prev
    in
    go [] t.back

  let stats t =
    { hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      size = H.length t.table;
      capacity = t.capacity }

  let reset_stats t =
    t.hits <- 0;
    t.misses <- 0;
    t.evictions <- 0

  let restore_stats t ~hits ~misses ~evictions =
    t.hits <- hits;
    t.misses <- misses;
    t.evictions <- evictions

  let purge t =
    H.reset t.table;
    t.front <- None;
    t.back <- None

  let clear t =
    purge t;
    reset_stats t
end
