(** Bounded LRU memoization of tableau verdicts.

    Every reasoning service of the stack bottoms out in a boolean tableau
    verdict ("is [K̄] plus this query satisfiable?").  The cache maps
    canonical query keys to verdicts with least-recently-used eviction, so a
    query-traffic workload pays the tableau only once per distinct canonical
    query while the working set fits the capacity.

    All operations are O(1) amortized (hash table plus an intrusive
    doubly-linked recency list). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;      (** current number of cached entries *)
  capacity : int;
}

val pp_stats : Format.formatter -> stats -> unit

module Make (K : Hashtbl.HashedType) : sig
  type 'v t

  val create : capacity:int -> 'v t
  (** [capacity <= 0] creates a disabled cache: every lookup misses, nothing
      is stored — the switch behind the CLI's [--no-cache]. *)

  val on_evict : 'v t -> (K.t -> unit) -> unit
  (** Install a hook called with the key of every entry dropped by a
      {e capacity} eviction (the LRU making room for a new entry) — the hook
      lets callers keep satellite state (e.g. per-key provenance) in sync
      with cache residency.  Replaces any previously installed hook.  It is
      {e not} called by {!remove}, {!purge} or {!clear}: explicit
      invalidation is the caller's own act, so the caller already knows to
      clean up. *)

  val capacity : 'v t -> int
  val length : 'v t -> int

  val find : 'v t -> K.t -> 'v option
  (** Counts a hit (and refreshes recency) or a miss. *)

  val mem : 'v t -> K.t -> bool
  (** Pure membership peek: no counters, no recency update.  Used by batch
      planners to split a query list into hits and pending work without
      distorting the hit/miss statistics. *)

  val add : 'v t -> K.t -> 'v -> unit
  (** Inserts or overwrites; evicts the least recently used entry when the
      capacity is exceeded. *)

  val find_or_add : 'v t -> K.t -> (unit -> 'v) -> 'v
  (** Memoizing lookup: on a miss, compute, store, return. *)

  val remove : 'v t -> K.t -> bool
  (** Drop one entry (selective invalidation, e.g. after a KB delta whose
      touched symbols intersect the entry's provenance).  Returns whether
      the key was present.  Does not count as an eviction — capacity
      evictions and invalidations are different signals. *)

  val entries : 'v t -> (K.t * 'v) list
  (** All cached entries in recency order, {e least} recently used first —
      the order a snapshot must replay them through {!add} so the restored
      cache reproduces the same LRU structure (the last entry re-added is
      again the most recent). *)

  val stats : 'v t -> stats
  val reset_stats : 'v t -> unit

  val restore_stats :
    'v t -> hits:int -> misses:int -> evictions:int -> unit
  (** Overwrite the hit/miss/eviction counters — the snapshot-restore
      path, so a re-warmed session's footer continues the saved session's
      history instead of restarting from zero. *)

  val purge : 'v t -> unit
  (** Drops all entries but keeps the hit/miss/eviction counters — a full
      flush after a KB delta, without distorting the session's statistics. *)

  val clear : 'v t -> unit
  (** Drops all entries and resets the counters. *)
end
