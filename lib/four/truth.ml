type t = True | False | Both | Neither

let equal (a : t) (b : t) = a = b

let to_int = function True -> 0 | False -> 1 | Both -> 2 | Neither -> 3
let compare a b = Int.compare (to_int a) (to_int b)

let all = [ True; False; Both; Neither ]

let of_pair ~told_true ~told_false =
  match (told_true, told_false) with
  | true, false -> True
  | false, true -> False
  | true, true -> Both
  | false, false -> Neither

let told_true = function True | Both -> true | False | Neither -> false
let told_false = function False | Both -> true | True | Neither -> false
let designated = function True | Both -> true | False | Neither -> false

let neg v =
  of_pair ~told_true:(told_false v) ~told_false:(told_true v)

let conj a b =
  of_pair
    ~told_true:(told_true a && told_true b)
    ~told_false:(told_false a || told_false b)

let disj a b =
  of_pair
    ~told_true:(told_true a || told_true b)
    ~told_false:(told_false a && told_false b)

let consensus a b =
  of_pair
    ~told_true:(told_true a && told_true b)
    ~told_false:(told_false a && told_false b)

let gullibility a b =
  of_pair
    ~told_true:(told_true a || told_true b)
    ~told_false:(told_false a || told_false b)

(* a ≤t b iff told-true(a) ⊆ told-true(b) and told-false(b) ⊆ told-false(a). *)
let leq_t a b =
  (not (told_true a) || told_true b)
  && (not (told_false b) || told_false a)

(* a ≤k b iff both information sets grow. *)
let leq_k a b =
  (not (told_true a) || told_true b)
  && (not (told_false a) || told_false b)

let material_implication a b = disj (neg a) b
let internal_implication a b = if designated a then b else True

let strong_implication a b =
  conj (internal_implication a b) (internal_implication (neg b) (neg a))

let strong_equivalence a b =
  conj (strong_implication a b) (strong_implication b a)

let to_string = function
  | True -> "t"
  | False -> "f"
  | Both -> "TOP"
  | Neither -> "BOT"

let short_string = function
  | True -> "t"
  | False -> "f"
  | Both -> "B"
  | Neither -> "N"

let of_string s =
  match String.lowercase_ascii s with
  | "t" | "true" -> Some True
  | "f" | "false" -> Some False
  | "b" | "top" | "both" -> Some Both
  | "n" | "bot" | "neither" -> Some Neither
  | _ -> None

let set_of_string s =
  let parts =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then Error "empty truth-value set"
  else
    let rec go acc = function
      | [] ->
          (* Stable order, each value at most once. *)
          Ok (List.filter (fun v -> List.mem v acc) all)
      | p :: rest -> (
          match of_string p with
          | Some v -> go (if List.mem v acc then acc else v :: acc) rest
          | None ->
              Error
                (Printf.sprintf
                   "unknown truth value %S (expected t, f, B/TOP or N/BOT)" p))
    in
    go [] parts

let pp ppf v = Format.pp_print_string ppf (to_string v)
