(** Belnap's four truth values and the algebra of the logic [FOUR] (paper §2.2).

    The four values are the elements of the smallest non-trivial bilattice:
    [True] = {t}, [False] = {f}, [Both] = {t,f} (contradiction, written ⊤ in
    the paper) and [Neither] = {} (lack of information, written ⊥).  Two
    partial orders structure them: the truth order [leq_t]
    (False ≤ Both/Neither ≤ True) and the knowledge order [leq_k]
    (Neither ≤ True/False ≤ Both). *)

type t =
  | True     (** {t} — told true, not told false *)
  | False    (** {f} — told false, not told true *)
  | Both     (** {t,f} — contradictory information (⊤) *)
  | Neither  (** {} — no information (⊥) *)

val equal : t -> t -> bool
val compare : t -> t -> int

val all : t list
(** The four values, in a fixed order ([True; False; Both; Neither]). *)

val of_pair : told_true:bool -> told_false:bool -> t
(** Build a value from its two information bits. *)

val told_true : t -> bool
(** [told_true v] iff t ∈ v, i.e. [v] is [True] or [Both]. *)

val told_false : t -> bool
(** [told_false v] iff f ∈ v, i.e. [v] is [False] or [Both]. *)

val designated : t -> bool
(** Membership in the designated set {t, ⊤} used for four-valued entailment. *)

(** {1 Truth-order operations (the logic's connectives)} *)

val neg : t -> t
(** Belnap negation: swaps told-true and told-false; fixes [Both] and
    [Neither]. *)

val conj : t -> t -> t
(** Meet in the truth order ≤t (the logic's ∧). *)

val disj : t -> t -> t
(** Join in the truth order ≤t (the logic's ∨). *)

(** {1 Knowledge-order operations (bilattice structure)} *)

val consensus : t -> t -> t
(** Meet in the knowledge order ≤k (keep what both sources agree on). *)

val gullibility : t -> t -> t
(** Join in the knowledge order ≤k (accept everything from both sources). *)

val leq_t : t -> t -> bool
(** Truth order: [False ≤t Both ≤t True] and [False ≤t Neither ≤t True];
    [Both] and [Neither] are incomparable. *)

val leq_k : t -> t -> bool
(** Knowledge order: [Neither ≤k True ≤k Both] and
    [Neither ≤k False ≤k Both]; [True] and [False] are incomparable. *)

(** {1 The three implications of §2.2} *)

val material_implication : t -> t -> t
(** [φ ↦ ψ  =  ¬φ ∨ ψ].  Tolerates exceptions: [Both ↦ False] is designated. *)

val internal_implication : t -> t -> t
(** [φ ⊃ ψ]: returns [ψ] when φ is designated, [True] otherwise.  This is the
    implication matching the basic consequence relation ⊨⁴ (Proposition 1). *)

val strong_implication : t -> t -> t
(** [φ → ψ  =  (φ ⊃ ψ) ∧ (¬ψ ⊃ ¬φ)]. *)

val strong_equivalence : t -> t -> t
(** [φ ↔ ψ  =  (φ → ψ) ∧ (ψ → φ)] — the congruence of Proposition 2. *)

val pp : Format.formatter -> t -> unit
(** Prints [t], [f], [TOP] (⊤) or [BOT] (⊥). *)

val to_string : t -> string

val short_string : t -> string
(** One-letter label for metrics and reports: [t], [f], [B] (⊤) or [N] (⊥). *)

val of_string : string -> t option
(** Parse a value name.  Accepts (case-insensitively) [t]/[true],
    [f]/[false], [B]/[TOP]/[both] and [N]/[BOT]/[neither]. *)

val set_of_string : string -> (t list, string) result
(** Parse a comma-separated value set (e.g. ["B"] or ["B,N"]) into a
    deduplicated list in the fixed [all] order.  Errors on the empty set or
    an unknown name. *)
