(* Worklist saturation over interned atoms and role-labelled edges.
   Everything is monotone: S-set memberships and edges are only ever
   added, so a simple queue with membership-checked insertion terminates
   at the least fixed point.  Derived memberships are exact in the
   canonical model (fresh definitional atoms are derived only by their
   defining rules), which is what makes the membership tests below
   complete and not just sound. *)

type ckind =
  | Ind of string  (* named individual (union-find representative) *)
  | Root  (* the anonymous ⊤ individual: fresh-individual semantics,
             and the witness that ⊤ ⊑ ⊥ makes even an ABox-free KB
             inconsistent (interpretation domains are non-empty) *)
  | Canon  (* canonical successor context of an existential filler *)
  | Probe  (* satisfiability-query context *)

type ctx = {
  c_id : int;
  c_kind : ckind;
  c_s : (int, unit) Hashtbl.t;  (* derived atom memberships *)
  c_out : (int, (int, unit) Hashtbl.t) Hashtbl.t;  (* role -> target ctxs *)
  c_in : (int, (int, unit) Hashtbl.t) Hashtbl.t;  (* role -> source ctxs *)
}

type rule = { body : int array; head : int }

type work = W_atom of int * int | W_edge of int * int * int

type t = {
  max_nodes : int;
  (* interning *)
  atom_ids : (string, int) Hashtbl.t;
  atom_names : (int, string) Hashtbl.t;
  mutable n_atoms : int;
  role_ids : (string, int) Hashtbl.t;
  mutable n_roles : int;
  top : int;
  bot : int;
  (* told role axioms *)
  role_subs : (int, int list ref) Hashtbl.t;  (* sub -> told supers *)
  supers_memo : (int, int array) Hashtbl.t;  (* reflexive-transitive closure *)
  trans : (int, unit) Hashtbl.t;
  (* rule indexes *)
  conj_by_atom : (int, rule list ref) Hashtbl.t;
  ex_rhs : (int, (int * int) list ref) Hashtbl.t;  (* atom -> (role, filler) *)
  ex_lhs : (int * int, int list ref) Hashtbl.t;  (* (role, filler) -> heads *)
  ex_lhs_roles : (int, unit) Hashtbl.t;
  (* contexts *)
  ctxs : (int, ctx) Hashtbl.t;
  mutable n_ctxs : int;
  ind_ctx : (string, int) Hashtbl.t;  (* representative -> ctx id *)
  canon_ctx : (int, int) Hashtbl.t;  (* filler atom -> ctx id *)
  probe_memo : (Concept.t, int) Hashtbl.t;  (* canon branch concept -> ctx *)
  mutable root : int;
  occ : (int, int list ref) Hashtbl.t;  (* atom -> ctxs containing it *)
  (* individuals *)
  uf : (string, string) Hashtbl.t;
  (* definitional-extension memos, keyed by Concept.canon *)
  below_memo : (Concept.t, int) Hashtbl.t;
  above_memo : (Concept.t, int) Hashtbl.t;
  mutable fresh_count : int;
  work : work Queue.t;
  mutable inconsistent : bool;
  stats : Tableau.stats;
}

let stats t = t.stats

(* ---- interning ---- *)

let atom t name =
  match Hashtbl.find_opt t.atom_ids name with
  | Some i -> i
  | None ->
      let i = t.n_atoms in
      t.n_atoms <- i + 1;
      Hashtbl.replace t.atom_ids name i;
      Hashtbl.replace t.atom_names i name;
      i

(* Fresh definitional atoms carry ':' — unreachable from surface
   identifiers and skipped by [Tableau.prov_add_atom]. *)
let fresh_atom t =
  let n = t.fresh_count in
  t.fresh_count <- n + 1;
  atom t ("horn:" ^ string_of_int n)

let role t name =
  match Hashtbl.find_opt t.role_ids name with
  | Some i -> i
  | None ->
      let i = t.n_roles in
      t.n_roles <- i + 1;
      Hashtbl.replace t.role_ids name i;
      i

(* Reflexive-transitive super-role closure over the told hierarchy.
   [role_subs] is fixed after [create], so the closure memoizes; roles
   first seen at query time have no told supers and close to {r}. *)
let supers t r =
  match Hashtbl.find_opt t.supers_memo r with
  | Some a -> a
  | None ->
      let seen = Hashtbl.create 8 in
      let rec go r =
        if not (Hashtbl.mem seen r) then begin
          Hashtbl.replace seen r ();
          match Hashtbl.find_opt t.role_subs r with
          | None -> ()
          | Some ups -> List.iter go !ups
        end
      in
      go r;
      let a = Array.of_seq (Hashtbl.to_seq_keys seen) in
      Hashtbl.replace t.supers_memo r a;
      a

(* ---- individuals (union-find over [Same]) ---- *)

let rec find t x =
  match Hashtbl.find_opt t.uf x with
  | None ->
      Hashtbl.replace t.uf x x;
      x
  | Some p when String.equal p x -> x
  | Some p ->
      let r = find t p in
      Hashtbl.replace t.uf x r;
      r

let union t a b =
  let ra = find t a and rb = find t b in
  if not (String.equal ra rb) then begin
    Hashtbl.replace t.uf ra rb;
    t.stats.Tableau.merges <- t.stats.Tableau.merges + 1
  end

(* ---- contexts and the saturation core ---- *)

let ctx t id = Hashtbl.find t.ctxs id
let keys tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl []

let slot tbl k =
  match Hashtbl.find_opt tbl k with
  | Some v -> v
  | None ->
      let v = ref [] in
      Hashtbl.replace tbl k v;
      v

let edge_set tbl r =
  match Hashtbl.find_opt tbl r with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 4 in
      Hashtbl.replace tbl r s;
      s

let add_atom t x a =
  let c = ctx t x in
  if not (Hashtbl.mem c.c_s a) then begin
    Hashtbl.replace c.c_s a ();
    let o = slot t.occ a in
    o := x :: !o;
    if a = t.bot then begin
      t.stats.Tableau.clashes <- t.stats.Tableau.clashes + 1;
      match c.c_kind with
      | Ind _ | Root -> t.inconsistent <- true
      | Canon | Probe -> ()
    end;
    Queue.push (W_atom (x, a)) t.work
  end

(* Materialize an edge under every super-role of its label; each
   materialized label gets its own work item (rule firing, ⊥-prop and
   transitive composition are per-label). *)
let add_edge t x r0 y =
  Array.iter
    (fun s ->
      let outs = edge_set (ctx t x).c_out s in
      if not (Hashtbl.mem outs y) then begin
        Hashtbl.replace outs y ();
        Hashtbl.replace (edge_set (ctx t y).c_in s) x ();
        Queue.push (W_edge (x, s, y)) t.work
      end)
    (supers t r0)

let new_ctx t kind =
  if t.n_ctxs >= t.max_nodes then
    raise
      (Tableau.Resource_limit
         (Printf.sprintf "horn: completion context limit (%d) exceeded"
            t.max_nodes));
  let id = t.n_ctxs in
  t.n_ctxs <- id + 1;
  Hashtbl.replace t.ctxs id
    { c_id = id;
      c_kind = kind;
      c_s = Hashtbl.create 16;
      c_out = Hashtbl.create 4;
      c_in = Hashtbl.create 4 };
  t.stats.Tableau.nodes_created <- t.stats.Tableau.nodes_created + 1;
  add_atom t id t.top;
  id

(* Canonical successor context for an existential filler atom: the
   generic element satisfying exactly {⊤, filler}. *)
let canon_ctx t b =
  match Hashtbl.find_opt t.canon_ctx b with
  | Some id -> id
  | None ->
      let id = new_ctx t Canon in
      Hashtbl.replace t.canon_ctx b id;
      add_atom t id b;
      id

let ind_ctx t a =
  let r = find t a in
  match Hashtbl.find_opt t.ind_ctx r with
  | Some id -> id
  | None ->
      let id = new_ctx t (Ind r) in
      Hashtbl.replace t.ind_ctx r id;
      id

(* ---- rule addition (with retroactive firing via [occ]) ---- *)

let fire_conj t rule x =
  let c = ctx t x in
  if Array.for_all (Hashtbl.mem c.c_s) rule.body then add_atom t x rule.head

let add_conj t body head =
  let rule = { body; head } in
  Array.iter
    (fun a ->
      let l = slot t.conj_by_atom a in
      l := rule :: !l)
    body;
  (* retro-fire on contexts that already contain the first body atom *)
  if Array.length body > 0 then
    List.iter (fire_conj t rule) !(slot t.occ body.(0))

let add_ex_lhs t r a head =
  let l = slot t.ex_lhs (r, a) in
  l := head :: !l;
  Hashtbl.replace t.ex_lhs_roles r ();
  (* retro-fire: every in-edge labelled [r] of a context containing [a] *)
  List.iter
    (fun y ->
      match Hashtbl.find_opt (ctx t y).c_in r with
      | None -> ()
      | Some srcs -> List.iter (fun w -> add_atom t w head) (keys srcs))
    !(slot t.occ a)

(* ---- worklist ---- *)

let process_atom t x a =
  (match Hashtbl.find_opt t.conj_by_atom a with
  | None -> ()
  | Some rules -> List.iter (fun r -> fire_conj t r x) !rules);
  (match Hashtbl.find_opt t.ex_rhs a with
  | None -> ()
  | Some succs -> List.iter (fun (r, b) -> add_edge t x r (canon_ctx t b)) !succs);
  (* in-edges: ∃r.a ⊑ h fires on every r-predecessor *)
  let c = ctx t x in
  let in_snapshot =
    Hashtbl.fold (fun r srcs acc -> (r, keys srcs) :: acc) c.c_in []
  in
  List.iter
    (fun (r, srcs) ->
      (match Hashtbl.find_opt t.ex_lhs (r, a) with
      | None -> ()
      | Some heads -> List.iter (fun h -> List.iter (fun w -> add_atom t w h) srcs) !heads);
      if a = t.bot then List.iter (fun w -> add_atom t w t.bot) srcs)
    in_snapshot

let process_edge t x r y =
  (* left-hand existentials over the atoms already at [y] *)
  List.iter
    (fun a ->
      match Hashtbl.find_opt t.ex_lhs (r, a) with
      | None -> ()
      | Some heads -> List.iter (fun h -> add_atom t x h) !heads)
    (keys (ctx t y).c_s);
  (* ⊥ propagates against edges: an element forced to have an impossible
     successor is itself impossible *)
  if Hashtbl.mem (ctx t y).c_s t.bot then add_atom t x t.bot;
  (* transitive composition, both directions *)
  if Hashtbl.mem t.trans r then begin
    (match Hashtbl.find_opt (ctx t y).c_out r with
    | None -> ()
    | Some zs -> List.iter (fun z -> add_edge t x r z) (keys zs));
    match Hashtbl.find_opt (ctx t x).c_in r with
    | None -> ()
    | Some ws -> List.iter (fun w -> add_edge t w r y) (keys ws)
  end

let saturate t =
  while not (Queue.is_empty t.work) do
    match Queue.pop t.work with
    | W_atom (x, a) -> process_atom t x a
    | W_edge (x, r, y) -> process_edge t x r y
  done

(* ---- definitional extension (normalization) ---- *)

(* [below t c] returns an atom derivable at a context iff [c] holds
   there in the canonical model — the shape for axiom LHSs and
   entailment goals.  Disjunction is two rules with a shared head. *)
let rec below t c =
  let c = Concept.canon c in
  match Hashtbl.find_opt t.below_memo c with
  | Some a -> a
  | None ->
      let a =
        match c with
        | Concept.Atom s -> atom t s
        | Concept.Top -> t.top
        | Concept.Bottom ->
            (* never derivable: ⊥ ⊑ R is vacuous *)
            fresh_atom t
        | Concept.And (x, y) ->
            let f = fresh_atom t in
            add_conj t [| below t x; below t y |] f;
            f
        | Concept.Or (x, y) ->
            let f = fresh_atom t in
            add_conj t [| below t x |] f;
            add_conj t [| below t y |] f;
            f
        | Concept.Exists (Role.Name r, d) ->
            let f = fresh_atom t in
            add_ex_lhs t (role t r) (below t d) f;
            f
        | _ -> invalid_arg "Completion.below: concept outside the Horn fragment"
      in
      Hashtbl.replace t.below_memo c a;
      a

(* [above t c]: asserting the returned atom at a context makes [c] hold
   there in the canonical model — the shape for axiom RHSs and ABox
   assertions. *)
let rec above t c =
  let c = Concept.canon c in
  match Hashtbl.find_opt t.above_memo c with
  | Some a -> a
  | None ->
      let a =
        match c with
        | Concept.Atom s -> atom t s
        | Concept.Top -> t.top
        | Concept.Bottom -> t.bot
        | Concept.And (x, y) ->
            let f = fresh_atom t in
            add_conj t [| f |] (above t x);
            add_conj t [| f |] (above t y);
            f
        | Concept.Exists (Role.Name r, d) ->
            let f = fresh_atom t in
            let b = above t d in
            let l = slot t.ex_rhs f in
            l := (role t r, b) :: !l;
            (* no retro-fire needed: [f] is fresh, no context has it *)
            f
        | _ -> invalid_arg "Completion.above: concept outside the EL fragment"
      in
      Hashtbl.replace t.above_memo c a;
      a

(* ---- construction ---- *)

let create ~max_nodes (kb : Axiom.kb) =
  (match Fragment.explain kb with
  | Some why -> raise (Backend.Unsupported ("horn backend: " ^ why))
  | None -> ());
  let t =
    { max_nodes;
      atom_ids = Hashtbl.create 256;
      atom_names = Hashtbl.create 256;
      n_atoms = 0;
      role_ids = Hashtbl.create 32;
      n_roles = 0;
      top = 0;
      bot = 1;
      role_subs = Hashtbl.create 16;
      supers_memo = Hashtbl.create 16;
      trans = Hashtbl.create 8;
      conj_by_atom = Hashtbl.create 256;
      ex_rhs = Hashtbl.create 64;
      ex_lhs = Hashtbl.create 64;
      ex_lhs_roles = Hashtbl.create 16;
      ctxs = Hashtbl.create 128;
      n_ctxs = 0;
      ind_ctx = Hashtbl.create 64;
      canon_ctx = Hashtbl.create 64;
      probe_memo = Hashtbl.create 16;
      root = -1;
      occ = Hashtbl.create 256;
      uf = Hashtbl.create 64;
      below_memo = Hashtbl.create 128;
      above_memo = Hashtbl.create 128;
      fresh_count = 0;
      work = Queue.create ();
      inconsistent = false;
      stats = Tableau.fresh_stats () }
  in
  let top = atom t "horn:top" and bot = atom t "horn:bot" in
  assert (top = t.top && bot = t.bot);
  (* role axioms first: [supers] must see the whole told hierarchy
     before any edge materializes *)
  List.iter
    (fun (ax : Axiom.tbox_axiom) ->
      match ax with
      | Axiom.Role_sub (Role.Name r, Role.Name s) ->
          let l = slot t.role_subs (role t r) in
          l := role t s :: !l
      | Axiom.Transitive r -> Hashtbl.replace t.trans (role t r) ()
      | _ -> ())
    kb.Axiom.tbox;
  (* concept inclusions *)
  List.iter
    (fun (ax : Axiom.tbox_axiom) ->
      match ax with
      | Axiom.Concept_sub (l, r) -> add_conj t [| below t l |] (above t r)
      | _ -> ())
    kb.Axiom.tbox;
  (* ABox: merge [Same] first so every assertion lands on the
     representative's context *)
  List.iter
    (function Axiom.Same (a, b) -> union t a b | _ -> ())
    kb.Axiom.abox;
  List.iter
    (fun (ax : Axiom.abox_axiom) ->
      match ax with
      | Axiom.Instance_of (a, c) -> add_atom t (ind_ctx t a) (above t c)
      | Axiom.Role_assertion (a, Role.Name r, b) ->
          add_edge t (ind_ctx t a) (role t r) (ind_ctx t b)
      | Axiom.Different (a, b) ->
          if String.equal (find t a) (find t b) then begin
            t.stats.Tableau.clashes <- t.stats.Tableau.clashes + 1;
            t.inconsistent <- true
          end
      | Axiom.Same _ -> ()
      | _ -> assert false (* excluded by the fragment check *))
    kb.Axiom.abox;
  t.root <- new_ctx t Root;
  saturate t;
  t

(* ---- provenance harvest ----

   A verdict's dependency region is the out-edge closure of its query
   contexts: S-sets are determined by a context's own seeds plus its
   successors' regions, so symbols outside the region cannot change the
   verdict.  Atoms are recorded through [prov_add_atom] (demangles ⁺/⁻,
   skips ':'-fresh definitional atoms), individuals through reached
   [Ind] contexts. *)

let harvest t prov roots =
  match prov with
  | None -> ()
  | Some p ->
      let seen = Hashtbl.create 64 in
      let q = Queue.create () in
      let push x =
        if not (Hashtbl.mem seen x) then begin
          Hashtbl.replace seen x ();
          Queue.push x q
        end
      in
      List.iter push roots;
      while not (Queue.is_empty q) do
        let c = ctx t (Queue.pop q) in
        (match c.c_kind with
        | Ind a -> Tableau.prov_add_ind p a
        | Root | Canon | Probe -> ());
        Hashtbl.iter
          (fun a () -> Tableau.prov_add_atom p (Hashtbl.find t.atom_names a))
          c.c_s;
        Hashtbl.iter (fun _ tgts -> Hashtbl.iter (fun y () -> push y) tgts) c.c_out
      done

let named_roots t =
  t.root :: Hashtbl.fold (fun _ id acc -> id :: acc) t.ind_ctx []

(* ---- queries ---- *)

let consistent ?prov t =
  saturate t;
  harvest t prov (named_roots t);
  not t.inconsistent

let entails_instance ?prov t a c =
  let g = below t c in
  saturate t;
  if t.inconsistent then begin
    harvest t prov (named_roots t);
    true
  end
  else begin
    (* unknown individuals carry exactly the consequences of ⊤ — the
       root context is that element *)
    let x =
      match Hashtbl.find_opt t.ind_ctx (find t a) with
      | Some id -> id
      | None -> t.root
    in
    harvest t prov [ x ];
    Hashtbl.mem (ctx t x).c_s g
  end

(* Satisfiability plans: NNF, then a capped DNF expansion into branches
   of positive-EL conjuncts and negated atoms.  [sat_answerable] is the
   pure capability check the router consults. *)

let branch_cap = 64

let sat_branches c =
  let rec dnf c =
    match c with
    | Concept.Or (a, b) ->
        let da = dnf a and db = dnf b in
        if List.length da + List.length db > branch_cap then raise Exit;
        da @ db
    | Concept.And (a, b) ->
        let da = dnf a and db = dnf b in
        if List.length da * List.length db > branch_cap then raise Exit;
        List.concat_map (fun x -> List.map (fun y -> x @ y) db) da
    | c -> [ [ c ] ]
  in
  match dnf (Concept.nnf c) with
  | exception Exit -> None
  | branches ->
      let split lits =
        List.fold_left
          (fun acc l ->
            match (acc, l) with
            | None, _ -> None
            | Some (pos, negs), Concept.Not (Concept.Atom a) ->
                Some (pos, a :: negs)
            | Some (pos, negs), l ->
                if Fragment.el_concept l then Some (l :: pos, negs) else None)
          (Some ([], []))
          lits
      in
      List.fold_left
        (fun acc b ->
          match (acc, split b) with
          | Some bs, Some s -> Some (s :: bs)
          | _ -> None)
        (Some []) branches

let sat_answerable c = sat_branches c <> None

(* One probe context per distinct positive part, memoized: the generic
   element satisfying exactly the branch's positive conjuncts. *)
let probe t pos =
  let key = Concept.canon (Concept.conj (Concept.Top :: pos)) in
  match Hashtbl.find_opt t.probe_memo key with
  | Some id -> id
  | None ->
      let id = new_ctx t Probe in
      Hashtbl.replace t.probe_memo key id;
      List.iter (fun c -> add_atom t id (above t c)) pos;
      id

let concept_satisfiable ?prov t c =
  match sat_branches c with
  | None -> invalid_arg "Completion.concept_satisfiable: unanswerable shape"
  | Some branches ->
      saturate t;
      if t.inconsistent then begin
        harvest t prov (named_roots t);
        false
      end
      else
        List.exists
          (fun (pos, negs) ->
            let x = probe t pos in
            saturate t;
            harvest t prov [ x ];
            let s = (ctx t x).c_s in
            (not (Hashtbl.mem s t.bot))
            && not (List.exists (fun n -> Hashtbl.mem s (atom t n)) negs))
          branches

let role_edge ?prov t a r b =
  saturate t;
  if t.inconsistent then begin
    harvest t prov (named_roots t);
    true
  end
  else
    match
      ( Hashtbl.find_opt t.ind_ctx (find t a),
        Hashtbl.find_opt t.ind_ctx (find t b) )
    with
    | Some xa, Some xb -> (
        harvest t prov [ xa; xb ];
        match Hashtbl.find_opt (ctx t xa).c_out (role t r) with
        | None -> false
        | Some tgts -> Hashtbl.mem tgts xb)
    | _ ->
        (* an unknown individual has no entailed edges in a consistent KB *)
        harvest t prov (named_roots t);
        false

let role_inert t r =
  Array.for_all
    (fun s -> (not (Hashtbl.mem t.ex_lhs_roles s)) && not (Hashtbl.mem t.trans s))
    (supers t (role t r))
