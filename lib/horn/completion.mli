(** Completion-style saturation for the Horn/EL fragment of K̄.

    A consequence-driven decision procedure in the EL completion-rule
    tradition (CEL/ELK): the KB is normalized into atom-level rules by
    conservative definitional extension (fresh atoms carry a [:] in
    their name, so they can never collide with surface identifiers and
    are skipped by provenance demangling), and a worklist saturates
    contexts — one per named individual (modulo [Same] merging), one
    canonical successor context per existential filler, one anonymous
    root (the fresh-individual / ⊤ context), plus memoized probe
    contexts for satisfiability queries.

    Derived [S]-sets are exact in the canonical (least) model: an atom
    is in [S(x)] iff the canonical model makes it true at [x], which is
    what makes entailment ([goal ∈ S(x)]), consistency ([⊥] at a named
    context), concept satisfiability ([⊥]-freeness of a probe) and role
    entailment (materialized-edge lookup; edges are closed under the
    told role hierarchy and transitivity) complete on eligible KBs.

    Termination and size are polynomial: atoms × contexts memberships
    and role-labelled edges are both finite and monotone. *)

type t

val create : max_nodes:int -> Axiom.kb -> t
(** Normalize and saturate K̄.
    @raise Backend.Unsupported when [kb] fails {!Fragment.check}.
    @raise Tableau.Resource_limit when saturation needs more than
    [max_nodes] contexts. *)

val consistent : ?prov:Tableau.prov -> t -> bool

val entails_instance : ?prov:Tableau.prov -> t -> string -> Concept.t -> bool
(** [entails_instance t a c] — does K̄ entail [c(a)]?  [c] is a
    classical concept over K̄'s vocabulary in the {!Fragment.body_concept}
    shape; [a] may be unknown (it then behaves as a fresh individual).
    True outright on an inconsistent K̄. *)

val sat_answerable : Concept.t -> bool
(** Can {!concept_satisfiable} decide this (classical, arbitrary) query
    concept?  True when its NNF splits into at most a bounded number of
    disjunctive branches whose literals are positive-EL concepts or
    negated atoms. *)

val concept_satisfiable : ?prov:Tableau.prov -> t -> Concept.t -> bool
(** Precondition: {!sat_answerable}.  Decides satisfiability of the
    concept w.r.t. K̄ exactly like the tableau's fresh-individual
    encoding: false on an inconsistent K̄; otherwise true iff some
    branch's probe context stays ⊥-free and avoids every negated atom
    (least-model exactness makes the membership test complete). *)

val role_edge : ?prov:Tableau.prov -> t -> string -> string -> string -> bool
(** [role_edge t a r b] — does K̄ entail [r(a, b)] ([r] a K̄ role name)?
    Complete because entailed named-to-named edges are exactly the told
    edges closed under [Same], the role hierarchy and transitivity (the
    canonical model adds no others).  True outright on inconsistent K̄. *)

val role_inert : t -> string -> bool
(** Is asserting a fresh [r]-edge between named individuals incapable of
    driving any inference?  Holds when no super-role of [r] (told
    hierarchy, reflexive) occurs in a left-hand existential or is
    transitive — then K̄ ∪ [r(a,b)] is consistent iff K̄ is, which is how
    the backend answers [Role_neg]. *)

val stats : t -> Tableau.stats
(** Live work cells in the tableau vocabulary: [nodes_created] counts
    contexts, [merges] counts [Same]-unions, [clashes] counts ⊥
    derivations.  [runs] is bumped by the backend per [eval]. *)
