type offender =
  | Tbox of Axiom.tbox_axiom
  | Abox of Axiom.abox_axiom

type verdict =
  | Eligible
  | Ineligible of { offender : offender; reason : string }

(* Concept shape checks return [Ok ()] or [Error reason] so the first
   offense inside a nested concept surfaces in diagnostics. *)

let rec el_shape (c : Concept.t) =
  match c with
  | Concept.Top | Concept.Bottom | Concept.Atom _ -> Ok ()
  | Concept.And (a, b) -> (
      match el_shape a with Ok () -> el_shape b | e -> e)
  | Concept.Exists (Role.Name _, d) -> el_shape d
  | Concept.Exists (Role.Inv _, _) -> Error "inverse role"
  | Concept.Not _ -> Error "negation"
  | Concept.Or _ -> Error "non-Horn disjunction"
  | Concept.Forall _ -> Error "universal restriction"
  | Concept.One_of _ -> Error "nominal"
  | Concept.At_least _ | Concept.At_most _ -> Error "number restriction"
  | Concept.Data_exists _ | Concept.Data_forall _ | Concept.Data_at_least _
  | Concept.Data_at_most _ ->
      Error "datatype construct"

(* A body (LHS / goal) additionally admits ⊔ anywhere above the EL
   structure: [L₁ ⊔ L₂ ⊑ R] is the two Horn axioms [Lᵢ ⊑ R], and the
   same split works under ⊓ and ∃ (both distribute over ⊔). *)
let rec body_shape (c : Concept.t) =
  match c with
  | Concept.Or (a, b) | Concept.And (a, b) -> (
      match body_shape a with Ok () -> body_shape b | e -> e)
  | Concept.Exists (Role.Name _, d) -> body_shape d
  | _ -> el_shape c

let el_concept c = el_shape c = Ok ()
let body_concept c = body_shape c = Ok ()

let concept_reason c =
  match body_shape c with Ok () -> None | Error r -> Some r

let tbox_shape (ax : Axiom.tbox_axiom) =
  match ax with
  | Axiom.Concept_sub (l, r) -> (
      match body_shape l with
      | Error e -> Error (e ^ " on the left")
      | Ok () -> (
          match el_shape r with
          | Error e -> Error (e ^ " on the right")
          | Ok () -> Ok ()))
  | Axiom.Role_sub (Role.Name _, Role.Name _) -> Ok ()
  | Axiom.Role_sub _ -> Error "inverse role"
  | Axiom.Data_role_sub _ -> Error "datatype role inclusion"
  | Axiom.Transitive _ -> Ok ()

let abox_shape (ax : Axiom.abox_axiom) =
  match ax with
  | Axiom.Instance_of (_, c) -> el_shape c
  | Axiom.Role_assertion (_, Role.Name _, _) -> Ok ()
  | Axiom.Role_assertion (_, Role.Inv _, _) -> Error "inverse role"
  | Axiom.Data_assertion _ -> Error "datatype assertion"
  | Axiom.Same _ | Axiom.Different _ -> Ok ()

let check (kb : Axiom.kb) =
  let rec tbox = function
    | [] -> abox kb.Axiom.abox
    | ax :: rest -> (
        match tbox_shape ax with
        | Ok () -> tbox rest
        | Error reason -> Ineligible { offender = Tbox ax; reason })
  and abox = function
    | [] -> Eligible
    | ax :: rest -> (
        match abox_shape ax with
        | Ok () -> abox rest
        | Error reason -> Ineligible { offender = Abox ax; reason })
  in
  tbox kb.Axiom.tbox

let eligible kb = check kb = Eligible

let explain kb =
  match check kb with
  | Eligible -> None
  | Ineligible { offender; reason } ->
      let axiom =
        match offender with
        | Tbox ax -> Format.asprintf "%a" Axiom.pp_tbox_axiom ax
        | Abox ax -> Format.asprintf "%a" Axiom.pp_abox_axiom ax
      in
      Some (Printf.sprintf "%s; axiom: %s" reason axiom)

(* Source-level scan: each four-valued axiom is checked through its own
   transform images, so [dl4 fragment] can point at the axiom the user
   wrote.  [Transform.kb] is exactly the concatenation of these images
   (plus the identity on the ABox), so the verdicts agree. *)
let check_kb4 (kb : Kb4.t) =
  let rec tbox = function
    | [] -> abox kb.Kb4.abox
    | ax :: rest -> (
        let images = Transform.tbox_axiom ax in
        let rec scan = function
          | [] -> tbox rest
          | im :: ims -> (
              match tbox_shape im with
              | Ok () -> scan ims
              | Error reason -> Error (`Tbox ax, reason))
        in
        scan images)
  and abox = function
    | [] -> Ok ()
    | ax :: rest -> (
        match abox_shape (Transform.abox_axiom ax) with
        | Ok () -> abox rest
        | Error reason -> Error (`Abox ax, reason))
  in
  tbox kb.Kb4.tbox
