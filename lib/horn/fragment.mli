(** Syntactic Horn/EL fragment detector over the transformed KB K̄.

    The completion backend ({!Completion}) is a complete decision
    procedure only when every axiom of K̄ is Horn-shaped: concept
    inclusions [L ⊑ R] where [R] is an EL concept (atoms, ⊤, ⊥, ⊓,
    [∃r.C] over named roles) and [L] additionally admits disjunction
    (a disjunctive body splits into several Horn rules), named-role
    inclusions and transitivity, and EL-shaped assertions.  Everything
    that makes reasoning disjunctive or non-local is rejected: negation
    (so Material concept inclusions, which transform to
    [¬neg(C) ⊑ pos(D)], are out), disjunction on the right, universal
    restrictions, nominals, number restrictions, inverse roles and
    datatype constructs.

    The check is per-axiom and purely syntactic, so it doubles as the
    [dl4 fragment] diagnostic: the verdict carries the first offending
    axiom and the reason it breaks the fragment. *)

type offender =
  | Tbox of Axiom.tbox_axiom
  | Abox of Axiom.abox_axiom

type verdict =
  | Eligible
  | Ineligible of { offender : offender; reason : string }

val check : Axiom.kb -> verdict
(** First-offender scan of K̄ (TBox first, told order). *)

val eligible : Axiom.kb -> bool

val explain : Axiom.kb -> string option
(** [Some "reason: ...; axiom: ..."] when ineligible — the payload used
    by [Backend.Unsupported]. *)

val check_kb4 : Kb4.t -> (unit, [ `Tbox of Kb4.tbox_axiom | `Abox of Axiom.abox_axiom ] * string) result
(** Source-level verdict for [dl4 fragment]: checks each four-valued
    axiom through its own transform images ([Transform.tbox_axiom] /
    [abox_axiom]), so the offender reported is the axiom the user wrote.
    Agrees with [check (Transform.kb kb)] because both the transform and
    the check are axiom-local. *)

(** {1 Concept shapes} (shared with the completion engine) *)

val el_concept : Concept.t -> bool
(** Positive EL: ⊤, ⊥, atoms, ⊓, ∃ over named roles.  The shape that can
    be asserted/normalized "from above" (as an RHS or an ABox concept). *)

val body_concept : Concept.t -> bool
(** EL plus disjunction anywhere: the shape definable "from below" (as
    an LHS or an entailment goal — [⊔] in a goal is a set of alternative
    derivations, still Horn). *)

val concept_reason : Concept.t -> string option
(** Why a concept fails {!body_concept} (first offense), e.g.
    ["negation"], ["universal restriction"], ["nominal"]. *)
