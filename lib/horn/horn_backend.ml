type t = Completion.t

let name = "horn"
let complete_for = Fragment.eligible
let create ~max_nodes ~max_branches:_ kb = Completion.create ~max_nodes kb

(* [can_answer] mirrors the tableau backend's query encodings
   (Backend_tableau.eval): each query shape maps to a completion-engine
   primitive, and the guard checks that the encoded goal lands in the
   shape that primitive decides. *)
let can_answer t (q : Backend.query) =
  match q with
  | Backend.Consistent -> true
  | Backend.Concept_sat c -> Completion.sat_answerable c
  | Backend.Instance (_, c) -> Fragment.body_concept (Transform.concept_pos c)
  | Backend.Not_instance (_, c) ->
      Fragment.body_concept (Transform.concept_neg c)
  | Backend.Role_pos _ -> true
  | Backend.Role_neg (_, r, _) ->
      Completion.role_inert t (Role.base (Transform.eq_role r))

let eval ?prov t (q : Backend.query) =
  let st = Completion.stats t in
  st.Tableau.runs <- st.Tableau.runs + 1;
  match q with
  | Backend.Consistent -> Completion.consistent ?prov t
  | Backend.Concept_sat c -> Completion.concept_satisfiable ?prov t c
  | Backend.Instance (a, c) ->
      Completion.entails_instance ?prov t a (Transform.concept_pos c)
  | Backend.Not_instance (a, c) ->
      Completion.entails_instance ?prov t a (Transform.concept_neg c)
  | Backend.Role_pos (a, r, b) -> (
      match Transform.plus_role r with
      | Role.Name s -> Completion.role_edge ?prov t a s b
      | Role.Inv s -> Completion.role_edge ?prov t b s a)
  | Backend.Role_neg (_, r, _) ->
      (* the role is inert ([can_answer]), so K̄ ∪ {r⁼(a,b)} is consistent
         iff K̄ is: the tableau's refutation test reduces to consistency *)
      ignore (Transform.eq_role r : Role.t);
      not (Completion.consistent ?prov t)

let stats = Completion.stats
