(** The Horn/EL completion engine packaged as an oracle backend.

    [complete_for] is {!Fragment.eligible} over K̄; [can_answer] further
    narrows per query (a satisfiability probe must be
    {!Completion.sat_answerable}, an instance goal must be a
    {!Fragment.body_concept} image, a negative role query needs an inert
    role).  On everything it accepts, [eval] agrees with the tableau
    backend — that equivalence is what the differential suite in
    [test/test_backend.ml] pins down. *)

include Backend.S
