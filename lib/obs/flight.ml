(* Flight recorder (PR 5).  See flight.mli for the design contract.

   Concurrency model: each domain owns one ring (found via DLS), and
   only that domain writes to it — the registry mutex is taken once per
   domain lifetime, at ring creation.  Dumps read rings owned by other
   domains without synchronization; that can tear the oldest edge of a
   ring mid-append, which is acceptable for a diagnostics snapshot and
   irrelevant on the two paths that matter (post-trip, at-exit). *)

let schema = "dl4-flight/1"
let on = ref false
let default_capacity = 1024
let max_domains = 128

(* Ring depth for rings created from now on; existing rings keep the
   depth they were allocated with ([Array.length r_events] is the
   authoritative per-ring value everywhere below).  Seeded from
   DL4_FLIGHT_DEPTH so daemon post-mortems can be deepened without a
   recompile; the CLI's --flight-depth calls [set_capacity] before any
   ring exists. *)
let capacity_ref =
  ref
    (match Option.bind (Sys.getenv_opt "DL4_FLIGHT_DEPTH") int_of_string_opt with
    | Some n when n > 0 -> n
    | _ -> default_capacity)

let capacity () = !capacity_ref
let set_capacity n = capacity_ref := max 1 n

let now_ns () = Unix.gettimeofday () *. 1e9
let t0_ns = now_ns ()

type event = {
  e_ns : float;
  e_kind : string;
  e_node : int;
  e_other : int;
  e_note : string;
  e_trace : string; (* the trace ID current when the event was recorded *)
}

let dummy_event =
  { e_ns = 0.0; e_kind = ""; e_node = -1; e_other = -1; e_note = "";
    e_trace = "" }

type ring = {
  r_tid : int;
  mutable r_next : int; (* next write slot *)
  mutable r_total : int; (* events ever recorded into this ring *)
  r_events : event array;
}

let rings_mutex = Mutex.create ()
let rings : ring list ref = ref [] (* registration order, newest first *)
let ring_count = ref 0
let overflow_dropped = Atomic.make 0 (* events from domains beyond max_domains *)
let dump_path : string option ref = ref None

(* The DLS value is [None] for domains that arrived after the registry
   filled up: they drop events (counted) instead of recording. *)
let ring_key : ring option Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Mutex.lock rings_mutex;
      let r =
        if !ring_count >= max_domains then None
        else begin
          let r =
            {
              r_tid = (Domain.self () :> int);
              r_next = 0;
              r_total = 0;
              r_events = Array.make !capacity_ref dummy_event;
            }
          in
          rings := r :: !rings;
          incr ring_count;
          Some r
        end
      in
      Mutex.unlock rings_mutex;
      r)

let record kind node other note =
  match Domain.DLS.get ring_key with
  | None -> Atomic.incr overflow_dropped
  | Some r ->
      (* stamped here, not at call sites: every recording site inherits
         request correlation without plumbing *)
      let e = { e_ns = now_ns () -. t0_ns; e_kind = kind; e_node = node;
                e_other = other; e_note = note; e_trace = Obs.trace_id () } in
      r.r_events.(r.r_next) <- e;
      r.r_next <- (r.r_next + 1) mod Array.length r.r_events;
      r.r_total <- r.r_total + 1

let arm ?path () =
  (match path with Some _ -> dump_path := path | None -> ());
  on := true

let disarm () = on := false
let armed_path () = !dump_path

let events_recorded () =
  Mutex.lock rings_mutex;
  let n = List.fold_left (fun a r -> a + r.r_total) 0 !rings in
  Mutex.unlock rings_mutex;
  n + Atomic.get overflow_dropped

let reset () =
  Mutex.lock rings_mutex;
  rings := [];
  ring_count := 0;
  Mutex.unlock rings_mutex;
  Atomic.set overflow_dropped 0;
  (* the calling domain's DLS slot still points at its (now
     unregistered) ring; give it a fresh registered one *)
  Domain.DLS.set ring_key
    (let r =
       {
         r_tid = (Domain.self () :> int);
         r_next = 0;
         r_total = 0;
         r_events = Array.make !capacity_ref dummy_event;
       }
     in
     Mutex.lock rings_mutex;
     rings := [ r ];
     ring_count := 1;
     Mutex.unlock rings_mutex;
     Some r)

let dump () =
  let rings_snapshot =
    Mutex.lock rings_mutex;
    let l = List.rev !rings in
    Mutex.unlock rings_mutex;
    l
  in
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\"schema\":\"%s\",\"capacity\":%d,\"overflow_dropped\":%d,\"domains\":["
    schema !capacity_ref (Atomic.get overflow_dropped);
  let first_dom = ref true in
  List.iter
    (fun r ->
      let capacity = Array.length r.r_events in
      let total = r.r_total in
      let kept = min total capacity in
      let dropped = total - kept in
      if not !first_dom then Buffer.add_char b ',';
      first_dom := false;
      Printf.bprintf b "\n{\"tid\":%d,\"total\":%d,\"dropped\":%d,\"events\":["
        r.r_tid total dropped;
      (* oldest-first: a wrapped ring starts at r_next *)
      let start = if total > capacity then r.r_next else 0 in
      let first_ev = ref true in
      for k = 0 to kept - 1 do
        let e = r.r_events.((start + k) mod capacity) in
        if not !first_ev then Buffer.add_char b ',';
        first_ev := false;
        Printf.bprintf b "\n{\"ns\":%.0f,\"kind\":\"%s\",\"node\":%d,\"other\":%d,\"note\":\"%s\""
          e.e_ns (Obs.json_escape e.e_kind) e.e_node e.e_other
          (Obs.json_escape e.e_note);
        if e.e_trace <> "" then
          Printf.bprintf b ",\"trace\":\"%s\"" (Obs.json_escape e.e_trace);
        Buffer.add_char b '}'
      done;
      Buffer.add_string b "]}")
    rings_snapshot;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_mutex = Mutex.create ()

let write path =
  Mutex.lock write_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock write_mutex)
    (fun () ->
      match open_out path with
      | oc ->
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc (dump ()))
      | exception Sys_error _ -> ())

let trip reason =
  record "trip" (-1) (-1) reason;
  match !dump_path with Some p -> write p | None -> ()

(* DL4_FLIGHT: arm from the environment, dump at exit. *)
let env_path =
  match Sys.getenv_opt "DL4_FLIGHT" with
  | None | Some "" | Some "0" -> None
  | Some "1" -> Some "dl4.flight.json"
  | Some p -> Some p

let () =
  match env_path with
  | None -> ()
  | Some path ->
      arm ~path ();
      at_exit (fun () -> write path)
