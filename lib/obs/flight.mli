(** Flight recorder: a bounded ring buffer of recent tableau events per
    domain, so a run that trips [max_nodes]/[max_branches] leaves a
    post-mortem instead of a bare exception.

    Design mirrors {!Obs}: one [bool ref] master gate read inline at
    every site ([if !Flight.on then Flight.record ...] is a load and a
    branch when disarmed), and recording stays cheap when armed — each
    domain appends to its own fixed-size ring with a single writer, so
    the hot path takes no lock and performs no allocation beyond the
    event record.  Rings register themselves (under a mutex, once per
    domain) in a global table capped at {!max_domains}; domains beyond
    the cap drop events and the drops are counted.

    The dump is a point-in-time JSON snapshot ({!schema}): per domain,
    the retained events oldest-first with total/dropped accounting.
    Reading a ring while its owner domain is still appending can tear
    the oldest edge of that ring (the dump is diagnostics, not a
    consistency protocol); dumps taken after a trip or at exit — the
    two paths that matter — see quiescent rings. *)

val schema : string
(** ["dl4-flight/1"] — the [schema] field of every dump. *)

val on : bool ref
(** Master gate, read inline by instrumentation sites. *)

val default_capacity : int
(** [1024] — the ring depth when neither {!set_capacity} nor
    [DL4_FLIGHT_DEPTH] says otherwise. *)

val capacity : unit -> int
(** Events retained per domain ring (older events are overwritten).
    This is the depth given to rings created {e from now on}; a ring
    keeps the depth it was allocated with, so set it before arming. *)

val set_capacity : int -> unit
(** Change the ring depth for subsequently created rings (clamped to
    ≥ 1).  Wired to [--flight-depth]; [DL4_FLIGHT_DEPTH] seeds the
    initial value at module init. *)

val max_domains : int
(** Rings tracked before further domains' events are dropped. *)

val arm : ?path:string -> unit -> unit
(** Start recording.  With [path], {!trip} writes the dump there
    immediately and process exit writes it again (via the [at_exit]
    hook installed by {!Obs}'s sibling arming or the CLI). *)

val disarm : unit -> unit
(** Stop recording; retained events survive until {!reset}. *)

val armed_path : unit -> string option

val record : string -> int -> int -> string -> unit
(** [record kind node other note] appends an event to the calling
    domain's ring.  [node]/[other] are tableau node ids ([-1] when not
    applicable).  Callers must check [!on] first — the function itself
    records unconditionally so tests can drive it directly. *)

val trip : string -> unit
(** Record a ["trip"] event carrying [reason] as its note and, when a
    dump path is armed, write the dump immediately — called from the
    tableau's resource-limit raise sites so the dump exists even if the
    exception escapes the process. *)

val dump : unit -> string
(** The JSON snapshot: [{"schema", "capacity", "domains": [{"tid",
    "total", "dropped", "events": [{"ns", "kind", "node", "other",
    "note"}...]}...]}] with events oldest-first per domain and [ns]
    relative to process start.  Events recorded while a trace ID was
    installed ({!Obs.set_trace_id}) additionally carry a ["trace"]
    field, correlating ring entries with the request that caused
    them. *)

val write : string -> unit

val events_recorded : unit -> int
(** Total events recorded across all rings since the last {!reset},
    including overwritten and dropped ones. *)

val env_path : string option
(** Path from [DL4_FLIGHT] ("1" selects ["dl4.flight.json"]); when
    set, the recorder was armed at module init and the dump is written
    at exit. *)

val reset : unit -> unit
(** Drop all rings and counters.  Only call while no worker domains
    are live. *)
