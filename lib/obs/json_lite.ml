type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg ^ " at byte " ^ string_of_int !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail ("expected '" ^ String.make 1 c ^ "'")
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then (pos := !pos + m; v)
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail "bad \\u escape"
            in
            (* BMP only; the sinks this reader serves never emit astral
               characters *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
