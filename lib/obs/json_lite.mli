(** A minimal JSON reader for the diagnostics tooling.

    The container ships no JSON library, and the exports this stack
    consumes back (flat metrics registries, Chrome traces, flight dumps,
    slow-query logs) use only objects, arrays, strings, numbers and
    booleans — so a small recursive-descent reader is all [dl4 profile]
    and the validators need.  This is a {e reader}: the export sinks in
    {!Obs} and {!Flight} render their JSON by hand, so parsing with an
    independent implementation still cross-checks well-formedness. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a byte offset. *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing fields and non-objects. *)

val to_num : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
