(* Obs: the process-wide observability spine (PR 3).

   One module, three concerns:

   - a global metrics registry (monotone counters, gauges, log2-bucketed
     latency histograms) that every layer — tableau, transform, oracle,
     engine, core — feeds through guarded increments;
   - hierarchical wall-clock spans with per-domain span stacks, so a
     worker domain's shard timing nests under the coordinator's batch
     span exactly like the verdict logs fold in after join;
   - export sinks: a human footer for `--stats`, a flat JSON registry
     dump for `--metrics-json`, and Chrome `trace_event` JSON for
     `--trace` / about:tracing.

   Everything is gated on the single [on] flag.  When no sink is armed
   every instrumentation site is a load + conditional branch — no
   closure allocation, no atomic traffic, no record appends — which is
   what bench S7 (BENCH_obs.json) measures.

   Dependencies: stdlib + unix only. *)

let on = ref false
let enabled () = !on
let set_enabled b = on := b

(* Wall clock in nanoseconds, relative to module init so span timestamps
   stay small and trace viewers get a zero-based timeline. *)
let now_ns () = Unix.gettimeofday () *. 1e9
let t0_ns = now_ns ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ------------------------------------------------------------------ *)
(* Trace IDs (PR 8).

   One opaque hex ID per unit of work — a CLI invocation or a serve
   request.  The current ID lives in a process-global atomic rather
   than domain-local storage on purpose: the CLI and the serve loop
   each process exactly one request at a time, and worker domains
   spawned for a batch must observe the coordinator's ID so their cost
   records and flight events correlate with the request that caused
   them.  Like the slow log, trace IDs are independent of [on]: cost
   accounting upstream is unconditional. *)

let trace_state = Atomic.make ""
let trace_seq = Atomic.make 0
let trace_pid = lazy (Unix.getpid ())
let hex_digits = "0123456789abcdef"

(* minting runs once per serve request inside its measured window, so it
   is hand-rolled hex over sprintf (which alone costs ~1us) *)
let new_trace_id () =
  let n = Atomic.fetch_and_add trace_seq 1 in
  let t = Unix.gettimeofday () in
  let pid = Lazy.force trace_pid in
  (* two independent hash mixes over (pid, wall clock, sequence) give
     16 hex chars that are unique per process lifetime and unlikely to
     collide across processes; no cryptographic claim is made. *)
  let h1 = Hashtbl.hash (pid, t, n, 0x9e3779b9) in
  let h2 = Hashtbl.hash (n, t, pid, 0x85ebca6b) in
  let b = Bytes.create 16 in
  let put off v k =
    for i = 0 to k - 1 do
      Bytes.unsafe_set b (off + i)
        (String.unsafe_get hex_digits ((v lsr (4 * (k - 1 - i))) land 0xf))
    done
  in
  put 0 h1 7;
  put 7 h2 7;
  put 14 n 2;
  Bytes.unsafe_to_string b

let set_trace_id id = Atomic.set trace_state id
let clear_trace_id () = Atomic.set trace_state ""
let trace_id () = Atomic.get trace_state

let with_trace_id id f =
  let prev = Atomic.get trace_state in
  Atomic.set trace_state id;
  Fun.protect ~finally:(fun () -> Atomic.set trace_state prev) f

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_value : float Atomic.t }

type histogram = {
  h_name : string;
  h_count : int Atomic.t;
  h_sum_ns : float Atomic.t;
  h_buckets : int Atomic.t array; (* bucket i counts durations in [2^i, 2^i+1) ns *)
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let register name mk get =
  with_lock registry_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match get m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Obs: %S already registered with another type"
                   name))
      | None ->
          let v, m = mk () in
          Hashtbl.replace registry name m;
          v)

let counter name =
  register name
    (fun () ->
      let c = { c_name = name; c_value = Atomic.make 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () ->
      let g = { g_name = name; g_value = Atomic.make 0.0 } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let histogram_buckets = 64

let histogram name =
  register name
    (fun () ->
      let h =
        {
          h_name = name;
          h_count = Atomic.make 0;
          h_sum_ns = Atomic.make 0.0;
          h_buckets = Array.init histogram_buckets (fun _ -> Atomic.make 0);
        }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

let rec atomic_add_float a x =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_add_float a x

(* Hot-path guards: a load and a branch when disabled. *)
let incr c = if !on then Atomic.incr c.c_value
let add c n = if !on then ignore (Atomic.fetch_and_add c.c_value n)
let count c = Atomic.get c.c_value
let set_gauge g v = if !on then Atomic.set g.g_value v
let gauge_value g = Atomic.get g.g_value

let bucket_of_ns ns =
  let n = int_of_float ns in
  if n <= 1 then 0
  else begin
    let i = ref 0 and n = ref n in
    while !n > 1 do
      n := !n lsr 1;
      i := !i + 1
    done;
    min !i (histogram_buckets - 1)
  end

let observe_ns h ns =
  if !on then begin
    Atomic.incr h.h_count;
    atomic_add_float h.h_sum_ns ns;
    Atomic.incr h.h_buckets.(bucket_of_ns ns)
  end

let histogram_count h = Atomic.get h.h_count
let histogram_sum_ns h = Atomic.get h.h_sum_ns

let histogram_bucket_counts h =
  Array.to_list h.h_buckets
  |> List.mapi (fun i c -> (i, Atomic.get c))
  |> List.filter (fun (_, c) -> c > 0)

(* ------------------------------------------------------------------ *)
(* Quantile estimation over log2 buckets.

   Bucket 0 holds durations in [0, 2) ns; bucket i >= 1 holds [2^i,
   2^(i+1)).  Within a bucket only the count survives, so a quantile is
   estimated by linear interpolation across the bucket's range: with
   C observations below the bucket and c inside it, the rank r = q*N
   falls at lo + (r - C)/c * (hi - lo).

   Error bounds: at a cumulative bucket boundary (r = C for some
   bucket) the estimate is the exact boundary value 2^i.  Inside a
   bucket the estimate and the true quantile both lie in [lo, hi) with
   hi = 2*lo, so the estimate is within a factor of 2 of the truth
   (absolute error < the bucket width = lo). *)

let quantile_of_buckets buckets q =
  let buckets = List.sort (fun (i, _) (j, _) -> compare i j) buckets in
  let total = List.fold_left (fun a (_, c) -> a + c) 0 buckets in
  if total = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int total in
    let lo i = if i = 0 then 0.0 else ldexp 1.0 i in
    let hi i = ldexp 1.0 (i + 1) in
    let rec walk below = function
      | [] -> (* rank = total and rounding: top of the last bucket *)
          Float.nan
      | (i, c) :: rest ->
          let upto = float_of_int (below + c) in
          if rank <= upto || rest = [] then
            let f = (rank -. float_of_int below) /. float_of_int c in
            let f = Float.max 0.0 (Float.min 1.0 f) in
            lo i +. (f *. (hi i -. lo i))
          else walk (below + c) rest
    in
    walk 0 buckets
  end

let quantile_ns h q = quantile_of_buckets (histogram_bucket_counts h) q

(* ------------------------------------------------------------------ *)
(* Spans *)

type span = {
  sp_id : int;
  sp_parent : int;
  sp_name : string;
  sp_cat : string;
  sp_tid : int;
  sp_start_ns : float;
  mutable sp_attrs : (string * string) list;
}

type span_record = {
  r_id : int;
  r_parent : int;
  r_name : string;
  r_cat : string;
  r_tid : int;
  r_start_ns : float;
  r_dur_ns : float;
  r_attrs : (string * string) list;
}

let none =
  {
    sp_id = 0;
    sp_parent = 0;
    sp_name = "";
    sp_cat = "";
    sp_tid = 0;
    sp_start_ns = 0.0;
    sp_attrs = [];
  }

let live sp = sp.sp_id <> 0
let next_span_id = Atomic.make 1
let records_mutex = Mutex.create ()
let records : span_record list ref = ref [] (* newest first *)

(* Each domain keeps its own stack of open spans so [enter] can default
   the parent to the innermost open span of the calling domain. *)
let stack_key : span list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let enter ?parent ?(cat = "dl4") name =
  if not !on then none
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent_id =
      match parent with
      | Some p -> p.sp_id
      | None -> ( match !stack with s :: _ -> s.sp_id | [] -> 0)
    in
    let sp =
      {
        sp_id = Atomic.fetch_and_add next_span_id 1;
        sp_parent = parent_id;
        sp_name = name;
        sp_cat = cat;
        sp_tid = (Domain.self () :> int);
        sp_start_ns = now_ns () -. t0_ns;
        sp_attrs = [];
      }
    in
    stack := sp :: !stack;
    sp
  end

let set_attr sp k v = if sp.sp_id <> 0 then sp.sp_attrs <- (k, v) :: sp.sp_attrs

(* Close [sp]: pop it from the calling domain's stack (tolerating
   mismatched exit orders), append an immutable record, return the
   duration in ns. *)
let finish sp =
  let dur = now_ns () -. t0_ns -. sp.sp_start_ns in
  let stack = Domain.DLS.get stack_key in
  (match !stack with
  | s :: rest when s.sp_id = sp.sp_id -> stack := rest
  | l ->
      if List.exists (fun s -> s.sp_id = sp.sp_id) l then
        stack := List.filter (fun s -> s.sp_id <> sp.sp_id) l);
  let r =
    {
      r_id = sp.sp_id;
      r_parent = sp.sp_parent;
      r_name = sp.sp_name;
      r_cat = sp.sp_cat;
      r_tid = sp.sp_tid;
      r_start_ns = sp.sp_start_ns;
      r_dur_ns = dur;
      r_attrs = List.rev sp.sp_attrs;
    }
  in
  with_lock records_mutex (fun () -> records := r :: !records);
  dur

let exit_span sp = if sp.sp_id <> 0 then ignore (finish sp)

let exit_timed sp h =
  if sp.sp_id <> 0 then begin
    let dur = finish sp in
    (* record into the histogram even though [finish] already ran under
       the guard: sinks could only have been disarmed mid-span. *)
    Atomic.incr h.h_count;
    atomic_add_float h.h_sum_ns dur;
    Atomic.incr h.h_buckets.(bucket_of_ns dur)
  end

let with_span ?parent ?cat name f =
  if not !on then f ()
  else begin
    let sp = enter ?parent ?cat name in
    Fun.protect ~finally:(fun () -> exit_span sp) f
  end

let spans () = with_lock records_mutex (fun () -> List.rev !records)
let span_count () = with_lock records_mutex (fun () -> List.length !records)

(* ------------------------------------------------------------------ *)
(* Reset (tests, benches) *)

let reset () =
  with_lock records_mutex (fun () -> records := []);
  with_lock registry_mutex (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter c -> Atomic.set c.c_value 0
          | Gauge g -> Atomic.set g.g_value 0.0
          | Histogram h ->
              Atomic.set h.h_count 0;
              Atomic.set h.h_sum_ns 0.0;
              Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
        registry)

(* ------------------------------------------------------------------ *)
(* Introspection for tests / benches *)

let metrics () =
  with_lock registry_mutex (fun () ->
      Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  |> List.sort (fun a b ->
         let name = function
           | Counter c -> c.c_name
           | Gauge g -> g.g_name
           | Histogram h -> h.h_name
         in
         compare (name a) (name b))

let counters () =
  List.filter_map
    (function Counter c -> Some (c.c_name, Atomic.get c.c_value) | _ -> None)
    (metrics ())

let histograms () =
  List.filter_map
    (function
      | Histogram h -> Some (h.h_name, Atomic.get h.h_count, Atomic.get h.h_sum_ns)
      | _ -> None)
    (metrics ())

let gauges () =
  List.filter_map
    (function Gauge g -> Some (g.g_name, Atomic.get g.g_value) | _ -> None)
    (metrics ())

(* ------------------------------------------------------------------ *)
(* Sinks *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

(* Flat registry dump: one key per scalar, histograms flattened to
   .count / .sum_ns / .buckets. *)
let metrics_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{";
  let first = ref true in
  let emit key value =
    if not !first then Buffer.add_string b ",";
    first := false;
    Buffer.add_string b (Printf.sprintf "\n  \"%s\": %s" (json_escape key) value)
  in
  List.iter
    (function
      | Counter c -> emit c.c_name (string_of_int (Atomic.get c.c_value))
      | Gauge g -> emit g.g_name (json_float (Atomic.get g.g_value))
      | Histogram h ->
          emit (h.h_name ^ ".count") (string_of_int (Atomic.get h.h_count));
          emit (h.h_name ^ ".sum_ns") (json_float (Atomic.get h.h_sum_ns));
          let buckets =
            Array.to_list h.h_buckets
            |> List.mapi (fun i c -> (i, Atomic.get c))
            |> List.filter (fun (_, c) -> c > 0)
            |> List.map (fun (i, c) -> Printf.sprintf "[%d,%d]" i c)
            |> String.concat ","
          in
          emit (h.h_name ^ ".buckets") (Printf.sprintf "[%s]" buckets))
    (metrics ());
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let write_metrics_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (metrics_json ()))

(* Chrome trace_event JSON: one complete ("ph":"X") event per span
   record; ts/dur in microseconds; tid = the domain id that ran the
   span.  Span ids ride along in args so checkers can rebuild the
   tree without relying on interval containment alone. *)
let trace_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun r ->
      if not !first then Buffer.add_string b ",";
      first := false;
      Buffer.add_string b
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{"
           (json_escape r.r_name) (json_escape r.r_cat)
           (r.r_start_ns /. 1e3) (r.r_dur_ns /. 1e3) r.r_tid);
      let args =
        ("id", string_of_int r.r_id)
        :: ("parent", string_of_int r.r_parent)
        :: r.r_attrs
      in
      Buffer.add_string b
        (String.concat ","
           (List.map
              (fun (k, v) ->
                Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
              args));
      Buffer.add_string b "}}")
    (spans ());
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (trace_json ()))

(* Human footer for the uniform `--stats` output: non-zero counters,
   histogram summaries, span count. *)
let pp_footer ppf () =
  Format.fprintf ppf "-- stats ---------------------------------------------@,";
  List.iter
    (function
      | Counter c ->
          let v = Atomic.get c.c_value in
          if v <> 0 then Format.fprintf ppf "  %-38s %10d@," c.c_name v
      | Gauge g ->
          let v = Atomic.get g.g_value in
          if v <> 0.0 then Format.fprintf ppf "  %-38s %10.2f@," g.g_name v
      | Histogram h ->
          let n = Atomic.get h.h_count in
          if n > 0 then
            let sum = Atomic.get h.h_sum_ns in
            Format.fprintf ppf "  %-38s %10d  total %.2f ms  mean %.1f us@,"
              h.h_name n (sum /. 1e6) (sum /. float_of_int n /. 1e3))
    (metrics ());
  let n = span_count () in
  if n > 0 then Format.fprintf ppf "  %-38s %10d@," "spans.recorded" n

let print_footer () = Format.printf "@[<v>%a@]@." pp_footer ()

(* ------------------------------------------------------------------ *)
(* Slow-query log: an append-only JSONL sink, independent of [on] (cost
   accounting upstream is unconditional, so slow verdicts are caught
   even when no metrics sink is armed).  The channel opens lazily on
   the first slow record and is flushed per line, so a post-mortem
   after a crash still has every completed record. *)

let slow_mutex = Mutex.create ()
let slow_state : (string * float) option ref = ref None (* path, threshold ms *)
let slow_chan : out_channel option ref = ref None

let arm_slow_log ?(threshold_ms = 100.0) path =
  with_lock slow_mutex (fun () -> slow_state := Some (path, threshold_ms))

let disarm_slow_log () =
  with_lock slow_mutex (fun () ->
      slow_state := None;
      match !slow_chan with
      | Some oc ->
          slow_chan := None;
          close_out_noerr oc
      | None -> ())

let slow_log_armed () = !slow_state <> None

let slow_log_path () =
  match !slow_state with Some (p, _) -> Some p | None -> None

let slow_threshold_ms () =
  match !slow_state with Some (_, t) -> t | None -> Float.infinity

let slow_log_write line =
  with_lock slow_mutex (fun () ->
      match !slow_state with
      | None -> ()
      | Some (path, _) -> (
          let oc =
            match !slow_chan with
            | Some oc -> Some oc
            | None -> (
                match open_out_gen [ Open_append; Open_creat ] 0o644 path with
                | oc ->
                    slow_chan := Some oc;
                    Some oc
                | exception Sys_error _ -> None)
          in
          match oc with
          | None -> ()
          | Some oc ->
              output_string oc line;
              output_char oc '\n';
              flush oc))

(* ------------------------------------------------------------------ *)
(* DL4_TRACE: arm tracing from the environment so any binary (the CLI,
   the test suite under CI) emits a trace without flag plumbing.
   Value "1" means the default path; anything else is the path. *)

let trace_env_path =
  match Sys.getenv_opt "DL4_TRACE" with
  | None | Some "" | Some "0" -> None
  | Some "1" -> Some "dl4.trace.json"
  | Some p -> Some p

let () =
  match trace_env_path with
  | None -> ()
  | Some path ->
      set_enabled true;
      at_exit (fun () -> try write_trace path with Sys_error _ -> ())

(* DL4_SLOW_LOG / DL4_SLOW_MS: arm the slow-query log from the
   environment.  "1" selects the default path; DL4_SLOW_MS overrides
   the 100 ms default threshold. *)

let slow_env_path =
  match Sys.getenv_opt "DL4_SLOW_LOG" with
  | None | Some "" | Some "0" -> None
  | Some "1" -> Some "dl4.slow.jsonl"
  | Some p -> Some p

let () =
  match slow_env_path with
  | None -> ()
  | Some path ->
      let threshold_ms =
        match Sys.getenv_opt "DL4_SLOW_MS" with
        | Some s -> ( match float_of_string_opt s with Some f -> f | None -> 100.0)
        | None -> 100.0
      in
      arm_slow_log ~threshold_ms path;
      at_exit disarm_slow_log
