(** Process-wide observability: metrics registry, hierarchical spans,
    export sinks (human footer, flat metrics JSON, Chrome trace_event).

    All instrumentation is gated on one [bool ref]; when disabled every
    site costs a load and a branch — no allocation, no atomics. *)

(** {1 Global switch} *)

val on : bool ref
(** The master gate.  Instrumentation helpers read it inline; callers
    should flip it via {!set_enabled}. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Zero every registered metric and drop all span records.  Metrics
    stay registered.  Only call while no worker domains are live. *)

(** {1 Trace IDs}

    One opaque hex ID per unit of work (a CLI invocation, a serve
    request).  The current ID is process-global — the CLI and the serve
    loop each handle one request at a time, and worker domains must
    see the coordinator's ID so their cost records and flight events
    correlate with the request that caused them.  Independent of {!on},
    like the slow log: cost accounting upstream is unconditional. *)

val new_trace_id : unit -> string
(** Mint a fresh 16-hex-char ID (unique per process lifetime, salted
    with pid and wall clock across processes).  Does not install it. *)

val set_trace_id : string -> unit
(** Install [id] as the current trace ID. *)

val clear_trace_id : unit -> unit
(** Reset the current trace ID to the empty string. *)

val trace_id : unit -> string
(** The current trace ID; [""] when none is installed. *)

val with_trace_id : string -> (unit -> 'a) -> 'a
(** Run the thunk with [id] installed, restoring the previous ID
    (even on exception). *)

(** {1 Metrics registry}

    Metrics are registered by name on first use and live for the whole
    process; re-registering a name returns the existing metric (and
    raises [Invalid_argument] on a kind mismatch). *)

type counter
type gauge
type histogram

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val observe_ns : histogram -> float -> unit
(** Record a duration in nanoseconds into log2 buckets. *)

val histogram_count : histogram -> int
val histogram_sum_ns : histogram -> float

val histogram_bucket_counts : histogram -> (int * int) list
(** Non-empty buckets as [(bucket_index, count)]: bucket 0 counts
    durations in [\[0, 2)] ns, bucket [i >= 1] counts [\[2^i, 2^(i+1))]. *)

val bucket_of_ns : float -> int
(** The log2 bucket index a duration in ns falls in, under the same
    geometry as {!histogram_bucket_counts}.  Exposed so sibling
    registries ({!Telemetry}) share one bucket scheme. *)

val quantile_of_buckets : (int * int) list -> float -> float
(** [quantile_of_buckets buckets q] estimates the [q]-quantile (with
    [q] clamped to [\[0, 1\]]) of the durations summarized by log2
    [(bucket_index, count)] pairs, by linear interpolation inside the
    bucket the rank lands in.  [nan] when the total count is zero.

    Error bounds: when the rank falls on a cumulative bucket boundary
    the estimate is {e exact} (the boundary value [2^i]); otherwise the
    estimate and the true quantile lie in the same bucket [\[lo, 2*lo)],
    so the estimate is within a factor of 2 of the truth (absolute
    error below the bucket width).  Also the reader half of [dl4
    profile]: it reconstructs these pairs from the [".buckets"] keys of
    {!metrics_json}. *)

val quantile_ns : histogram -> float -> float
(** {!quantile_of_buckets} over a live histogram's buckets. *)

val counters : unit -> (string * int) list
(** All registered counters with current values, sorted by name. *)

val gauges : unit -> (string * float) list
(** All registered gauges with current values, sorted by name. *)

val histograms : unit -> (string * int * float) list
(** All registered histograms as [(name, count, sum_ns)], sorted. *)

(** {1 Spans} *)

type span

type span_record = {
  r_id : int;
  r_parent : int;  (** 0 = root *)
  r_name : string;
  r_cat : string;
  r_tid : int;  (** domain id that ran the span *)
  r_start_ns : float;  (** relative to process start *)
  r_dur_ns : float;
  r_attrs : (string * string) list;
}

val none : span
(** The sentinel returned by {!enter} when disabled; all span
    operations on it are no-ops. *)

val live : span -> bool
(** [false] exactly for {!none}; use to skip attr-string construction. *)

val enter : ?parent:span -> ?cat:string -> string -> span
(** Open a span.  Without [?parent] it nests under the innermost open
    span of the calling domain (per-domain stacks), so spans opened
    inside worker domains need an explicit [~parent] to attach to the
    coordinator's batch span. *)

val set_attr : span -> string -> string -> unit
val exit_span : span -> unit

val exit_timed : span -> histogram -> unit
(** [exit_span] + record the duration into [histogram]. *)

val with_span : ?parent:span -> ?cat:string -> string -> (unit -> 'a) -> 'a
(** Run under a span when enabled; call the thunk directly otherwise. *)

val spans : unit -> span_record list
(** All closed spans in completion order. *)

val span_count : unit -> int

(** {1 Sinks} *)

val pp_footer : Format.formatter -> unit -> unit
(** Human summary: non-zero counters, histogram totals, span count. *)

val print_footer : unit -> unit

val metrics_json : unit -> string
(** Flat registry dump as a JSON object. *)

val write_metrics_json : string -> unit

val trace_json : unit -> string
(** Chrome [trace_event] JSON (complete "X" events, ts/dur in
    microseconds, tid = domain id, span id/parent in [args]). *)

val write_trace : string -> unit

val trace_env_path : string option
(** Path from [DL4_TRACE] ("1" selects ["dl4.trace.json"]); when set,
    tracing was armed at module init and the trace is written at exit. *)

(** {1 JSON rendering helpers}

    Shared by the sinks here and by callers (e.g. the oracle's
    slow-query records) that render JSON by hand. *)

val json_escape : string -> string
val json_float : float -> string

(** {1 Slow-query log}

    An append-only JSONL sink.  Deliberately independent of {!on}: the
    oracle's cost accounting is unconditional, so slow verdicts are
    caught even when no metrics sink is armed.  Writers format their
    own record (one JSON object per line) and hand it to
    {!slow_log_write}, which appends and flushes under a mutex — or
    drops it when the log is disarmed. *)

val arm_slow_log : ?threshold_ms:float -> string -> unit
(** Arm the log at [path] (appending).  [threshold_ms] defaults to
    100 ms. *)

val disarm_slow_log : unit -> unit
val slow_log_armed : unit -> bool
val slow_log_path : unit -> string option

val slow_threshold_ms : unit -> float
(** The armed threshold; [infinity] when disarmed, so callers can gate
    on [wall_ms >= slow_threshold_ms ()] alone. *)

val slow_log_write : string -> unit

val slow_env_path : string option
(** Path from [DL4_SLOW_LOG] ("1" selects ["dl4.slow.jsonl"]); when
    set, the log was armed at module init with the threshold from
    [DL4_SLOW_MS] (default 100 ms). *)
