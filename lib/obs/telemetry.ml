(* Telemetry: a mergeable per-op request registry (PR 8).

   Where [Obs] is the process-global metrics spine armed by DL4_TRACE,
   this module is a value: a registry instance the serve loop owns and
   feeds one record per request, keyed by protocol op.  Per op it
   tracks request/error counts, a log2 latency histogram (same bucket
   geometry as [Obs] so [Obs.quantile_of_buckets] reads it), route
   counters keyed by backend, and cache/tableau work counters.

   Registries merge ([merge]) so sharded or restarted accumulations
   can be folded together, and render two ways: a single-line JSON
   object for the NDJSON [metrics] serve op, and a Prometheus-style
   text exposition for [--metrics-out] scraping. *)

let buckets = 64

type op_stats = {
  mutable s_requests : int;
  mutable s_errors : int;
  mutable s_sum_ns : float;
  s_buckets : int array; (* bucket i counts wall times in [2^i, 2^(i+1)) ns *)
  s_routes : (string, int) Hashtbl.t; (* backend -> verdicts computed *)
  s_strategies : (string, int) Hashtbl.t; (* planner strategy -> picks *)
  mutable s_cache_served : int;
  mutable s_tableau_calls : int;
}

(* KB-health snapshot, set by whoever owns the KB (the serve loop, on
   its metrics interval): static size gauges always, truth-value census
   gauges once an audit has run ([kb_truth_counts] empty until then).
   Truth values travel as their short labels ("t"/"f"/"B"/"N") so this
   module stays below lib/four in the stack. *)
type kb_health = {
  kb_individuals : int;
  kb_tbox_axioms : int;
  kb_abox_axioms : int;
  kb_cached_verdicts : int;
  kb_truth_counts : (string * int) list;
  kb_inconsistency_ratio : float;
}

type t = {
  started_unix : float;
  ops : (string, op_stats) Hashtbl.t;
  mutable kb : kb_health option;
  mu : Mutex.t;
}

let create () =
  { started_unix = Unix.gettimeofday (); ops = Hashtbl.create 16;
    kb = None; mu = Mutex.create () }

let with_lock t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let fresh_op () =
  { s_requests = 0; s_errors = 0; s_sum_ns = 0.0;
    s_buckets = Array.make buckets 0; s_routes = Hashtbl.create 4;
    s_strategies = Hashtbl.create 4; s_cache_served = 0; s_tableau_calls = 0 }

let op_stats t op =
  match Hashtbl.find_opt t.ops op with
  | Some s -> s
  | None ->
      let s = fresh_op () in
      Hashtbl.replace t.ops op s;
      s

let tbl_bump tbl key n =
  if n > 0 then
    Hashtbl.replace tbl key
      (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let add_route s backend n = tbl_bump s.s_routes backend n
let add_strategy s strategy n = tbl_bump s.s_strategies strategy n

let record t ~op ~ok ~wall_ns ?(routes = []) ?(strategies = [])
    ?(cache_served = 0) ?(tableau_calls = 0) () =
  (* plain lock/unlock, no Fun.protect: the body is pure arithmetic
     and Hashtbl updates (no exceptions), and this runs once per serve
     request inside the S11 budget *)
  Mutex.lock t.mu;
  let s = op_stats t op in
  s.s_requests <- s.s_requests + 1;
  if not ok then s.s_errors <- s.s_errors + 1;
  s.s_sum_ns <- s.s_sum_ns +. wall_ns;
  let b = Obs.bucket_of_ns wall_ns in
  s.s_buckets.(b) <- s.s_buckets.(b) + 1;
  List.iter (fun (backend, n) -> add_route s backend n) routes;
  List.iter (fun (strategy, n) -> add_strategy s strategy n) strategies;
  s.s_cache_served <- s.s_cache_served + cache_served;
  s.s_tableau_calls <- s.s_tableau_calls + tableau_calls;
  Mutex.unlock t.mu

let set_kb_health t h = with_lock t (fun () -> t.kb <- Some h)
let kb_health t = with_lock t (fun () -> t.kb)

let merge ~into src =
  (* lock ordering: callers never merge in both directions concurrently *)
  with_lock src (fun () ->
      with_lock into (fun () ->
          Hashtbl.iter
            (fun op s ->
              let d = op_stats into op in
              d.s_requests <- d.s_requests + s.s_requests;
              d.s_errors <- d.s_errors + s.s_errors;
              d.s_sum_ns <- d.s_sum_ns +. s.s_sum_ns;
              Array.iteri
                (fun i c -> d.s_buckets.(i) <- d.s_buckets.(i) + c)
                s.s_buckets;
              Hashtbl.iter (fun b n -> add_route d b n) s.s_routes;
              Hashtbl.iter (fun st n -> add_strategy d st n) s.s_strategies;
              d.s_cache_served <- d.s_cache_served + s.s_cache_served;
              d.s_tableau_calls <- d.s_tableau_calls + s.s_tableau_calls)
            src.ops;
          (* the KB snapshot is a gauge, not a sum: the destination's
             (newer) snapshot wins when both carry one *)
          if into.kb = None then into.kb <- src.kb))

(* ------------------------------------------------------------------ *)
(* Read side: immutable views *)

type op_view = {
  v_op : string;
  v_requests : int;
  v_errors : int;
  v_sum_ns : float;
  v_buckets : (int * int) list; (* non-empty (bucket, count) pairs *)
  v_routes : (string * int) list; (* sorted by backend *)
  v_strategies : (string * int) list; (* sorted by strategy *)
  v_cache_served : int;
  v_tableau_calls : int;
}

let view t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun op s acc ->
          let bs =
            Array.to_list s.s_buckets
            |> List.mapi (fun i c -> (i, c))
            |> List.filter (fun (_, c) -> c > 0)
          in
          let routes =
            Hashtbl.fold (fun b n acc -> (b, n) :: acc) s.s_routes []
            |> List.sort compare
          in
          let strategies =
            Hashtbl.fold (fun st n acc -> (st, n) :: acc) s.s_strategies []
            |> List.sort compare
          in
          { v_op = op; v_requests = s.s_requests; v_errors = s.s_errors;
            v_sum_ns = s.s_sum_ns; v_buckets = bs; v_routes = routes;
            v_strategies = strategies; v_cache_served = s.s_cache_served;
            v_tableau_calls = s.s_tableau_calls }
          :: acc)
        t.ops []
      |> List.sort (fun a b -> compare a.v_op b.v_op))

let uptime_s t = Unix.gettimeofday () -. t.started_unix
let started_unix t = t.started_unix

let requests t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ s acc -> acc + s.s_requests) t.ops 0)

let errors t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ s acc -> acc + s.s_errors) t.ops 0)

(* ------------------------------------------------------------------ *)
(* JSON: one object, single line, for the NDJSON [metrics] serve op *)

let schema = "dl4-metrics/1"

let json t =
  let b = Buffer.create 1024 in
  let str s = Printf.sprintf "\"%s\"" (Obs.json_escape s) in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":%s,\"uptime_s\":%s,\"requests\":%d,\"errors\":%d,\"ops\":["
       (str schema)
       (Obs.json_float (uptime_s t))
       (requests t) (errors t));
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"op\":%s,\"requests\":%d,\"errors\":%d,\"wall_ns_sum\":%s"
           (str v.v_op) v.v_requests v.v_errors (Obs.json_float v.v_sum_ns));
      List.iter
        (fun q ->
          Buffer.add_string b
            (Printf.sprintf ",\"p%d_ns\":%s" (int_of_float (q *. 100.))
               (Obs.json_float (Obs.quantile_of_buckets v.v_buckets q))))
        [ 0.5; 0.9; 0.99 ];
      Buffer.add_string b ",\"buckets\":[";
      List.iteri
        (fun j (idx, c) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "[%d,%d]" idx c))
        v.v_buckets;
      Buffer.add_string b "],\"routes\":{";
      List.iteri
        (fun j (backend, n) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "%s:%d" (str backend) n))
        v.v_routes;
      Buffer.add_string b "},\"strategies\":{";
      List.iteri
        (fun j (strategy, n) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "%s:%d" (str strategy) n))
        v.v_strategies;
      Buffer.add_string b
        (Printf.sprintf "},\"cache_served\":%d,\"tableau_calls\":%d}"
           v.v_cache_served v.v_tableau_calls))
    (view t);
  Buffer.add_string b "]";
  (match kb_health t with
  | None -> ()
  | Some h ->
      Buffer.add_string b
        (Printf.sprintf
           ",\"kb\":{\"individuals\":%d,\"tbox_axioms\":%d,\"abox_axioms\":%d,\"cached_verdicts\":%d"
           h.kb_individuals h.kb_tbox_axioms h.kb_abox_axioms
           h.kb_cached_verdicts);
      if h.kb_truth_counts <> [] then begin
        Buffer.add_string b ",\"truth\":{";
        List.iteri
          (fun i (label, n) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b (Printf.sprintf "%s:%d" (str label) n))
          h.kb_truth_counts;
        Buffer.add_string b
          (Printf.sprintf "},\"inconsistency_ratio\":%s"
             (Obs.json_float h.kb_inconsistency_ratio))
      end;
      Buffer.add_char b '}');
  Buffer.add_string b "}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition.

   Label values escape backslash, double quote and newline per the
   exposition format.
   Histogram buckets are emitted cumulatively with [le] in seconds
   (our buckets are log2 in ns: bucket i covers [2^i, 2^(i+1)) ns, so
   its upper bound is 2^(i+1) ns), closing with the mandatory [+Inf]
   bucket, [_sum] and [_count]. *)

let label_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let prometheus t =
  let b = Buffer.create 4096 in
  let header name typ help =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ)
  in
  let sample name labels value =
    let labels =
      match labels with
      | [] -> ""
      | l ->
          "{"
          ^ String.concat ","
              (List.map
                 (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (label_escape v))
                 l)
          ^ "}"
    in
    Buffer.add_string b (Printf.sprintf "%s%s %s\n" name labels value)
  in
  let views = view t in
  header "dl4_uptime_seconds" "gauge"
    "Seconds since this telemetry registry was created.";
  sample "dl4_uptime_seconds" [] (prom_float (uptime_s t));
  (match kb_health t with
  | None -> ()
  | Some h ->
      header "dl4_kb_individuals" "gauge"
        "Named individuals in the served knowledge base.";
      sample "dl4_kb_individuals" [] (string_of_int h.kb_individuals);
      header "dl4_kb_axioms" "gauge"
        "Axioms in the served knowledge base, by box.";
      sample "dl4_kb_axioms" [ ("box", "tbox") ]
        (string_of_int h.kb_tbox_axioms);
      sample "dl4_kb_axioms" [ ("box", "abox") ]
        (string_of_int h.kb_abox_axioms);
      header "dl4_kb_cached_verdicts" "gauge"
        "Verdicts currently resident in the oracle cache.";
      sample "dl4_kb_cached_verdicts" []
        (string_of_int h.kb_cached_verdicts);
      if h.kb_truth_counts <> [] then begin
        header "dl4_kb_truth_total" "gauge"
          "Audited facts by exact truth value (last census).";
        List.iter
          (fun (label, n) ->
            sample "dl4_kb_truth_total" [ ("value", label) ]
              (string_of_int n))
          h.kb_truth_counts;
        header "dl4_kb_inconsistency_ratio" "gauge"
          "Contradictory fraction of decided facts (last census).";
        sample "dl4_kb_inconsistency_ratio" []
          (prom_float h.kb_inconsistency_ratio)
      end);
  header "dl4_requests_total" "counter" "Requests handled, by op.";
  List.iter
    (fun v ->
      sample "dl4_requests_total" [ ("op", v.v_op) ]
        (string_of_int v.v_requests))
    views;
  header "dl4_errors_total" "counter" "Requests answered with an error, by op.";
  List.iter
    (fun v ->
      sample "dl4_errors_total" [ ("op", v.v_op) ] (string_of_int v.v_errors))
    views;
  header "dl4_route_verdicts_total" "counter"
    "Verdicts computed per reasoning backend, by op and backend.";
  List.iter
    (fun v ->
      List.iter
        (fun (backend, n) ->
          sample "dl4_route_verdicts_total"
            [ ("op", v.v_op); ("backend", backend) ]
            (string_of_int n))
        v.v_routes)
    views;
  header "dl4_planner_strategy_total" "counter"
    "Query-planner join strategies executed, by op and strategy.";
  List.iter
    (fun v ->
      List.iter
        (fun (strategy, n) ->
          sample "dl4_planner_strategy_total"
            [ ("op", v.v_op); ("strategy", strategy) ]
            (string_of_int n))
        v.v_strategies)
    views;
  header "dl4_cache_served_total" "counter"
    "Verdicts served from the cache, by op.";
  List.iter
    (fun v ->
      sample "dl4_cache_served_total" [ ("op", v.v_op) ]
        (string_of_int v.v_cache_served))
    views;
  header "dl4_tableau_calls_total" "counter" "Tableau invocations, by op.";
  List.iter
    (fun v ->
      sample "dl4_tableau_calls_total" [ ("op", v.v_op) ]
        (string_of_int v.v_tableau_calls))
    views;
  header "dl4_request_duration_seconds" "histogram"
    "Request wall time, by op.";
  List.iter
    (fun v ->
      let cum = ref 0 in
      List.iter
        (fun (idx, c) ->
          cum := !cum + c;
          let le_s = ldexp 1.0 (idx + 1) /. 1e9 in
          sample "dl4_request_duration_seconds_bucket"
            [ ("op", v.v_op); ("le", prom_float le_s) ]
            (string_of_int !cum))
        v.v_buckets;
      sample "dl4_request_duration_seconds_bucket"
        [ ("op", v.v_op); ("le", "+Inf") ]
        (string_of_int !cum);
      sample "dl4_request_duration_seconds_sum" [ ("op", v.v_op) ]
        (prom_float (v.v_sum_ns /. 1e9));
      sample "dl4_request_duration_seconds_count" [ ("op", v.v_op) ]
        (string_of_int v.v_requests))
    views;
  Buffer.contents b

let write_prometheus t path =
  (* atomic: scrape either the old exposition or the new, never a torn
     half-write *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> output_string oc (prometheus t))
   with
  | () -> Sys.rename tmp path
  | exception Sys_error _ -> (try Sys.remove tmp with Sys_error _ -> ()))
