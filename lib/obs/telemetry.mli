(** A mergeable per-op request registry: the live metrics plane behind
    the serve daemon.

    Unlike {!Obs} (process-global, armed by [DL4_TRACE]) a [Telemetry.t]
    is a value owned by whoever serves requests.  One {!record} call per
    request accumulates, per op: request/error counts, a log2 latency
    histogram in {!Obs.bucket_of_ns} geometry, route counters keyed by
    backend, and cache/tableau work counters.  Registries {!merge}, and
    render as single-line JSON (the NDJSON [metrics] serve op) or as a
    Prometheus text exposition ([--metrics-out]). *)

type t

val create : unit -> t
(** A fresh registry; its creation instant anchors {!uptime_s}. *)

val record :
  t ->
  op:string ->
  ok:bool ->
  wall_ns:float ->
  ?routes:(string * int) list ->
  ?strategies:(string * int) list ->
  ?cache_served:int ->
  ?tableau_calls:int ->
  unit ->
  unit
(** Account one request under [op].  [routes] counts verdicts computed
    per backend during the request; [strategies] counts query-planner
    join-strategy picks (["nested_loop"] / ["hash_join"]) executed
    during the request; [cache_served] / [tableau_calls] are the
    marginal cache and tableau work.  Thread-safe. *)

val merge : into:t -> t -> unit
(** Fold every op of the source registry into [into] (counts and
    buckets add, routes union-add).  The source is left unchanged.
    The destination keeps its own KB-health snapshot when it has one
    (it is a gauge, not a sum). *)

(** {1 KB health}

    A point-in-time snapshot of the served knowledge base, refreshed by
    the serve loop on its metrics interval.  Static size gauges are
    always meaningful; the truth-value census gauges carry data only
    once an audit has run ([kb_truth_counts] empty until then).  Truth
    values travel as their short labels ([t]/[f]/[B]/[N]) so this module
    stays independent of the logic layer. *)

type kb_health = {
  kb_individuals : int;
  kb_tbox_axioms : int;
  kb_abox_axioms : int;
  kb_cached_verdicts : int;
  kb_truth_counts : (string * int) list;
  kb_inconsistency_ratio : float;
}

val set_kb_health : t -> kb_health -> unit
(** Replace the snapshot (thread-safe). *)

val kb_health : t -> kb_health option

(** {1 Read side} *)

type op_view = {
  v_op : string;
  v_requests : int;
  v_errors : int;
  v_sum_ns : float;
  v_buckets : (int * int) list;
      (** non-empty [(bucket, count)] pairs, {!Obs.quantile_of_buckets}
          geometry *)
  v_routes : (string * int) list;  (** [(backend, verdicts)], sorted *)
  v_strategies : (string * int) list;
      (** [(strategy, picks)] from the query planner, sorted *)
  v_cache_served : int;
  v_tableau_calls : int;
}

val view : t -> op_view list
(** A consistent snapshot of every op, sorted by op name. *)

val uptime_s : t -> float
val started_unix : t -> float
val requests : t -> int
val errors : t -> int

(** {1 Renderers} *)

val schema : string
(** The [schema] field of {!json}: ["dl4-metrics/1"]. *)

val json : t -> string
(** One single-line JSON object: schema, uptime, totals, per-op stats
    with p50/p90/p99 estimates, buckets, routes — plus a [kb] object
    when a KB-health snapshot is set. *)

val prometheus : t -> string
(** Prometheus text exposition: [dl4_uptime_seconds],
    [dl4_requests_total], [dl4_errors_total],
    [dl4_route_verdicts_total], [dl4_planner_strategy_total],
    [dl4_cache_served_total],
    [dl4_tableau_calls_total] and the [dl4_request_duration_seconds]
    histogram (cumulative [le] buckets in seconds closing with [+Inf],
    [_sum], [_count]).  When a KB-health snapshot is set, also the
    gauges [dl4_kb_individuals], [dl4_kb_axioms{box=...}],
    [dl4_kb_cached_verdicts] and — once a census has run —
    [dl4_kb_truth_total{value=...}] and [dl4_kb_inconsistency_ratio].
    Label values are escaped per the format. *)

val write_prometheus : t -> string -> unit
(** Render {!prometheus} to [path] atomically (write to [path ^ ".tmp"],
    then rename), so a concurrent scrape never reads a torn file. *)

val label_escape : string -> string
(** Exposition-format label escaping: backslash, double quote and
    newline become two-character escapes.  Exposed for the validator
    and tests. *)
