(* The dl4 daemon: one warm Session behind a Unix-domain socket.

   Protocol: newline-delimited JSON, one request object per line, one
   response object per line, strictly in request order per connection.
   Requests never kill the daemon — malformed JSON, unknown ops and bad
   arguments all produce an [ok:false] response on the same line slot.

   The request handler is deliberately separated from the socket loop:
   [handle] maps one request line to one response line against the held
   session, so tests (and the in-process bench harness) can drive the
   full protocol without forking or touching the filesystem, and the
   socket loop stays a dumb byte shuttle. *)

(* Rotating JSONL access log: one line per request.  The request path
   only records a compact [pending] tuple (~100ns); JSON rendering and
   the write syscalls are deferred to [access_drain], which runs on the
   idle tick, the metrics tick, [sync] and shutdown — so per-request
   overhead stays an allocation, not formatting + I/O (bench S11 gates
   this).  When the file would exceed [a_max_bytes] it rotates once to
   [path ^ ".1"] (replacing any previous rotation), always on a line
   boundary. *)
type pending = {
  p_ts : float;
  p_trace : string;
  p_op : string;
  p_id : string;  (* already a rendered JSON token *)
  p_ok : bool;
  p_wall_ns : float;
  p_routes : (string * int) list;
  p_cache_served : int;
  p_tableau : int;
}

type access = {
  a_path : string;
  a_max_bytes : int;
  mutable a_chan : out_channel option;
  mutable a_bytes : int;  (* bytes already on disk in the live file *)
  mutable a_pending : pending list;  (* newest first; drained FIFO *)
  a_scratch : Buffer.t;  (* reused per-line render buffer *)
}

(* Census-drift JSONL sink: one line per applied delta that changed any
   fact's truth value.  Drift lines are rare (one per update, none when
   nothing changed) and each one already paid a census, so rendering
   inline — unlike the deferred access log — costs nothing that
   matters. *)
type drift = {
  d_path : string;
  mutable d_chan : out_channel option;
}

type t = {
  mutable para : Para.t;  (* owns the warm session; replaced never *)
  snapshot_path : string option;  (* idle-autosave target *)
  mutable dirty : bool;
      (* has state changed (new verdicts, deltas) since the last save? *)
  mutable stop : bool;  (* set by the shutdown op; read by the loop *)
  mutable requests : int;
  plans : (string, Cq.plan) Hashtbl.t;
      (* per-query-shape plan cache for the warm daemon; cleared on
         update (a delta invalidates the told statistics plans were
         costed from) *)
  mutable census : Audit.census option;
      (* cached audit census of the current KB; invalidated on update *)
  mutable last_strategies : (string * int) list;
      (* join-strategy picks of the request being handled, for the
         telemetry tail *)
  tel : Telemetry.t option;  (* None = telemetry disarmed *)
  access : access option;
  drift : drift option;
}

let default_access_log_max_bytes = 16 * 1024 * 1024

let create ?snapshot_path ?(telemetry = true) ?access_log
    ?(access_log_max_bytes = default_access_log_max_bytes) ?drift_log session
    =
  { para = Para.of_session session;
    snapshot_path;
    dirty = false;
    stop = false;
    requests = 0;
    plans = Hashtbl.create 16;
    census = None;
    last_strategies = [];
    tel = (if telemetry then Some (Telemetry.create ()) else None);
    drift =
      Option.map (fun path -> { d_path = path; d_chan = None }) drift_log;
    access =
      Option.map
        (fun path ->
          let existing =
            match Unix.stat path with
            | st -> st.Unix.st_size
            | exception Unix.Unix_error _ -> 0
          in
          { a_path = path;
            a_max_bytes = max 1024 access_log_max_bytes;
            a_chan = None;
            a_bytes = existing;
            a_pending = [];
            a_scratch = Buffer.create 256 })
        access_log }

let session t = Para.session t.para
let stopped t = t.stop
let telemetry t = t.tel

(* ------------------------------------------------------------------ *)
(* Access-log plumbing *)

let access_chan a =
  match a.a_chan with
  | Some oc -> Some oc
  | None -> (
      match open_out_gen [ Open_append; Open_creat ] 0o644 a.a_path with
      | oc ->
          a.a_chan <- Some oc;
          Some oc
      | exception Sys_error _ -> None)

let access_rotate a =
  (match a.a_chan with
  | None -> ()
  | Some oc ->
      close_out_noerr oc;
      a.a_chan <- None);
  a.a_bytes <- 0;
  try Sys.rename a.a_path (a.a_path ^ ".1") with Sys_error _ -> ()

let rec add_pos_int b n =
  if n >= 10 then add_pos_int b (n / 10);
  Buffer.add_char b (Char.unsafe_chr (Char.code '0' + (n mod 10)))

let add_int b n =
  if n < 0 then begin
    Buffer.add_char b '-';
    add_pos_int b (-n)
  end
  else add_pos_int b n

(* One pending record -> one JSON line in [a_scratch].  [p_trace] is
   pure hex and [p_op] comes from the clamped op vocabulary, so neither
   needs escaping; [p_id] is already a rendered JSON token. *)
let render_line a p =
  let b = a.a_scratch in
  Buffer.clear b;
  let add = Buffer.add_string b in
  add {|{"ts_unix":|};
  (* epoch with full ms precision: jnum's %.6g would truncate *)
  let ms = int_of_float ((p.p_ts *. 1000.) +. 0.5) in
  add_int b (ms / 1000);
  Buffer.add_char b '.';
  let f = ms mod 1000 in
  if f < 100 then Buffer.add_char b '0';
  if f < 10 then Buffer.add_char b '0';
  add_int b f;
  add {|,"trace_id":"|};
  add p.p_trace;
  add {|","op":"|};
  add p.p_op;
  add {|","id":|};
  add p.p_id;
  add (if p.p_ok then {|,"ok":true,"wall_ns":|}
       else {|,"ok":false,"wall_ns":|});
  add_int b (int_of_float p.p_wall_ns);
  add {|,"routes":{|};
  List.iteri
    (fun i (backend, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      add (Obs.json_escape backend);
      add {|":|};
      add_int b n)
    p.p_routes;
  add {|},"cache_served":|};
  add_int b p.p_cache_served;
  add {|,"tableau_calls":|};
  add_int b p.p_tableau;
  add (if p.p_ok then {|,"outcome":"ok"}|} else {|,"outcome":"error"}|});
  Buffer.add_char b '\n'

(* Render and write the pending records.  Rare by design: called from
   the metrics/idle ticks, [sync] and shutdown — never per request, so
   the request path stays one allocation.  Rotation decisions are made
   between lines, so no line is ever split across generations. *)
let access_drain a =
  match a.a_pending with
  | [] -> ()
  | newest_first ->
      let records = List.rev newest_first in
      a.a_pending <- [];
      List.iter
        (fun p ->
          render_line a p;
          let len = Buffer.length a.a_scratch in
          if a.a_bytes > 0 && a.a_bytes + len > a.a_max_bytes then
            access_rotate a;
          match access_chan a with
          | None -> ()
          | Some oc -> (
              try
                Buffer.output_buffer oc a.a_scratch;
                a.a_bytes <- a.a_bytes + len
              with Sys_error _ -> ()))
        records;
      Option.iter (fun oc -> try flush oc with Sys_error _ -> ()) a.a_chan

let access_note t p =
  Option.iter (fun a -> a.a_pending <- p :: a.a_pending) t.access

let sync t = Option.iter access_drain t.access

(* ------------------------------------------------------------------ *)
(* Audit census + drift plumbing *)

(* the cached census of the current KB, computed on first demand *)
let census t =
  match t.census with
  | Some cs -> cs
  | None ->
      let cs = Audit.census t.para in
      t.census <- Some cs;
      cs

let drift_chan d =
  match d.d_chan with
  | Some oc -> Some oc
  | None -> (
      match open_out_gen [ Open_append; Open_creat ] 0o644 d.d_path with
      | oc ->
          d.d_chan <- Some oc;
          Some oc
      | exception Sys_error _ -> None)

let drift_note t ~before ~after =
  Option.iter
    (fun d ->
      let trace = match Obs.trace_id () with "" -> None | s -> Some s in
      match
        Audit.drift_line ?trace ~ts_unix:(Unix.gettimeofday ()) ~before
          ~after ()
      with
      | None -> ()
      | Some line -> (
          match drift_chan d with
          | None -> ()
          | Some oc -> (
              try
                output_string oc line;
                output_char oc '\n';
                flush oc
              with Sys_error _ -> ())))
    t.drift

(* KB-health snapshot for the telemetry gauges: cheap static sizes
   always, census-derived truth counts once an audit has run *)
let refresh_kb_health t =
  match t.tel with
  | None -> ()
  | Some tel ->
      let stats = Kb_stats.of_kb4 (Para.kb t.para) in
      let cache = Oracle.cache_stats (Para.oracle t.para) in
      let truth_counts, ratio =
        match t.census with
        | None -> ([], 0.)
        | Some cs ->
            ( List.map
                (fun v -> (Truth.short_string v, Audit.count cs v))
                Truth.all,
              Audit.inconsistency_ratio cs )
      in
      Telemetry.set_kb_health tel
        { Telemetry.kb_individuals = stats.Kb_stats.individuals;
          kb_tbox_axioms = stats.Kb_stats.tbox_axioms;
          kb_abox_axioms = stats.Kb_stats.abox_axioms;
          kb_cached_verdicts = cache.Verdict_cache.size;
          kb_truth_counts = truth_counts;
          kb_inconsistency_ratio = ratio }

(* ------------------------------------------------------------------ *)
(* JSON rendering (by hand, like every export sink in this stack — the
   reader in Json_lite is an independent implementation, so round-trip
   tests cross-check well-formedness) *)

let jstr s = "\"" ^ Obs.json_escape s ^ "\""

let jnum f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields)
  ^ "}"

let jarr items = "[" ^ String.concat "," items ^ "]"
let jbool b = if b then "true" else "false"
let jint n = string_of_int n

(* ------------------------------------------------------------------ *)
(* Request accessors *)

exception Bad_request of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad_request s)) fmt

let str_field name j =
  match Option.bind (Json_lite.member name j) Json_lite.to_str with
  | Some s -> s
  | None -> bad "missing or non-string field %S" name

let bool_field ~default name j =
  match Json_lite.member name j with
  | Some (Json_lite.Bool b) -> b
  | Some _ -> bad "field %S must be a boolean" name
  | None -> default

let int_field ~default name j =
  match Json_lite.member name j with
  | Some (Json_lite.Num n) -> int_of_float n
  | Some _ -> bad "field %S must be a number" name
  | None -> default

let concept_field name j =
  let text = str_field name j in
  match Surface.parse_concept text with
  | Ok c -> c
  | Error e ->
      bad "cannot parse concept %S: %s (at offset %d)" text
        e.Surface.message e.Surface.offset

(* ------------------------------------------------------------------ *)
(* Per-op payloads: each returns the response fields beyond the envelope *)

let op_check t _req =
  [ ("consistent", jbool (Para.satisfiable t.para)) ]

(* CQ spelling of the query op: {"op":"query","cq":"?x <- C(?x), r(?x, b)"}.
   Plans are cached per query shape (the source string) in the warm
   daemon; the compact [plan] summary rides next to the envelope's
   [cost]. *)
let op_query_cq t src =
  let cached, plan =
    match Hashtbl.find_opt t.plans src with
    | Some plan -> (true, plan)
    | None -> (
        match Cq.parse src with
        | Error msg -> bad "cannot parse cq %S: %s" src msg
        | Ok q ->
            let plan = Cq.compile t.para q in
            Hashtbl.replace t.plans src plan;
            (false, plan))
  in
  let answers = Cq.run plan in
  let strategies = Cq.strategy_counts plan in
  t.last_strategies <- strategies;
  let v = Cq.explain plan in
  let summary =
    jobj
      [ ("order", jstr v.Cq.Plan.v_order);
        ("steps", jint (List.length v.Cq.Plan.v_steps));
        ("threshold", jint v.Cq.Plan.v_threshold);
        ("cached", jbool cached);
        ( "strategies",
          jobj (List.map (fun (st, n) -> (st, jint n)) strategies) ) ]
  in
  [ ("cq", jstr src);
    ( "answers",
      jarr
        (List.map
           (fun (tuple, truth) ->
             jobj
               [ ("tuple", jarr (List.map jstr tuple));
                 ("truth", jstr (Truth.to_string truth)) ])
           answers) );
    ("plan", summary) ]

let op_query t req =
  match Option.bind (Json_lite.member "cq" req) Json_lite.to_str with
  | Some src -> op_query_cq t src
  | None ->
      let a = str_field "individual" req in
      let c = concept_field "concept" req in
      let v = Para.instance_truth t.para a c in
      [ ("individual", jstr a);
        ("concept", jstr (Concept.to_string c));
        ("truth", jstr (Truth.to_string v)) ]

let op_retrieve t req =
  let c = concept_field "concept" req in
  let all = bool_field ~default:false "all" req in
  let rows =
    List.filter_map
      (fun (a, v) ->
        if all || not (Truth.equal v Truth.Neither) then
          Some (jobj [ ("individual", jstr a); ("truth", jstr (Truth.to_string v)) ])
        else None)
      (Para.retrieve t.para c)
  in
  [ ("concept", jstr (Concept.to_string c)); ("instances", jarr rows) ]

let op_classify t _req =
  let taxo = Para.taxonomy t.para in
  let rows =
    List.map
      (fun (cls, supers) ->
        jobj
          [ ("class", jarr (List.map jstr cls));
            ("supers", jarr (List.map jstr supers)) ])
      taxo
  in
  [ ("taxonomy", jarr rows) ]

let op_update t req =
  let script = str_field "script" req in
  match Delta.parse_script script with
  | Error msg -> bad "%s" msg
  | Ok deltas ->
      (* the drift sink needs the pre-delta census; an armed sink is an
         explicit opt-in to paying one census per update when none is
         cached yet *)
      let before =
        match t.drift with None -> None | Some _ -> Some (census t)
      in
      let s = Session.apply_all (session t) deltas in
      t.dirty <- true;
      (* told statistics changed under the cached plans; recompile lazily *)
      Hashtbl.reset t.plans;
      (* the census describes the pre-delta KB *)
      t.census <- None;
      Option.iter
        (fun before -> drift_note t ~before ~after:(census t))
        before;
      [ ("applied", jint (List.length deltas));
        ("evicted", jint s.Oracle.evicted);
        ("retained", jint s.Oracle.retained);
        ("flushed", jbool s.Oracle.flushed);
        ("consistency_flipped", jbool s.Oracle.consistency_flipped) ]

let cache_json (c : Verdict_cache.stats) =
  jobj
    [ ("hits", jint c.Verdict_cache.hits);
      ("misses", jint c.Verdict_cache.misses);
      ("evictions", jint c.Verdict_cache.evictions);
      ("size", jint c.Verdict_cache.size);
      ("capacity", jint c.Verdict_cache.capacity) ]

let totals_json (s : Oracle.cost_totals) =
  jobj
    [ ("verdicts", jint s.Oracle.verdicts);
      ("cache_served", jint s.Oracle.cache_served);
      ("slow", jint s.Oracle.slow);
      ("wall_ns", jnum s.Oracle.wall_ns);
      ("runs", jint s.Oracle.runs);
      ("nodes", jint s.Oracle.nodes);
      ("branches", jint s.Oracle.branches);
      ("clashes", jint s.Oracle.clashes);
      ( "backends",
        jobj (List.map (fun (b, n) -> (b, jint n)) s.Oracle.backends) ) ]

let op_stats t _req =
  let s = Engine.stats (Para.engine t.para) in
  let telemetry_fields =
    match t.tel with
    | None -> []
    | Some tel ->
        [ ("uptime_s", jnum (Telemetry.uptime_s tel));
          ( "ops",
            jobj
              (List.map
                 (fun v ->
                   ( v.Telemetry.v_op,
                     jobj
                       [ ("requests", jint v.Telemetry.v_requests);
                         ("errors", jint v.Telemetry.v_errors) ] ))
                 (Telemetry.view tel)) ) ]
  in
  (* no "cache" field here: the response envelope already carries the
     live cache counters under that key *)
  [ ("requests", jint t.requests);
    ("tableau_calls", jint s.Engine.tableau_calls);
    ("jobs", jint s.Engine.jobs);
    ("batches", jint s.Engine.batches);
    ("parallel_calls", jint s.Engine.parallel_calls);
    ("routes", jobj (List.map (fun (b, n) -> (b, jint n)) s.Engine.routes)) ]
  @ telemetry_fields
  @ [ ("totals", totals_json (Session.cost_totals (session t))) ]

let op_metrics t _req =
  match t.tel with
  | None -> bad "telemetry is disarmed on this daemon"
  | Some tel ->
      refresh_kb_health t;
      [ ("metrics", Telemetry.json tel) ]

(* {"op":"audit","top"?:K,"exactly"?:"B,N"}: the dl4-audit/1 report of
   the cached census (computed on first demand, invalidated on update) *)
let op_audit t req =
  let top = int_field ~default:5 "top" req in
  if top < 0 then bad "field \"top\" must be non-negative";
  let exactly =
    match Option.bind (Json_lite.member "exactly" req) Json_lite.to_str with
    | None -> None
    | Some s -> (
        match Truth.set_of_string s with
        | Ok vs -> Some vs
        | Error e -> bad "%s" e)
  in
  let cached = t.census <> None in
  let report = Audit.report_json ~top ?exactly t.para (census t) in
  [ ("cached", jbool cached); ("audit", report) ]

let save_snapshot t path =
  match Store.save (Store.capture (session t)) path with
  | Ok () ->
      t.dirty <- false;
      Ok ()
  | Error e -> Error (Store.error_to_string e)

let op_snapshot t req =
  let path =
    match Option.bind (Json_lite.member "path" req) Json_lite.to_str with
    | Some p -> p
    | None -> (
        match t.snapshot_path with
        | Some p -> p
        | None -> bad "no \"path\" given and no default snapshot path configured")
  in
  match save_snapshot t path with
  | Ok () -> [ ("saved", jstr path) ]
  | Error msg -> bad "snapshot failed: %s" msg

let op_shutdown t _req =
  t.stop <- true;
  [ ("stopping", jbool true) ]

(* ------------------------------------------------------------------ *)
(* The envelope: every ok-response carries the request's marginal cost
   (the diff of the session cost totals and tableau-call count around
   the handler — the PR 5 accounting surface) plus the live cache
   counters, so a client can prove a query was served warm. *)

(* Marginal backend routes of one request: the diff of the session's
   per-backend computed-verdict counters around the handler. *)
let routes_diff (t0 : Oracle.cost_totals) (t1 : Oracle.cost_totals) =
  List.filter_map
    (fun (backend, n1) ->
      let n0 =
        Option.value ~default:0 (List.assoc_opt backend t0.Oracle.backends)
      in
      if n1 > n0 then Some (backend, n1 - n0) else None)
    t1.Oracle.backends

let handle t line =
  t.requests <- t.requests + 1;
  (* one trace ID per request, installed process-globally so the
     oracle's cost records, spans, slow-log lines and flight events
     produced while this request runs all carry it *)
  let trace =
    match t.tel with None -> "" | Some _ -> Obs.new_trace_id ()
  in
  if trace <> "" then Obs.set_trace_id trace;
  let start = Unix.gettimeofday () in
  let parsed = Json_lite.parse line in
  let id =
    match parsed with
    | Ok j -> (
        match Json_lite.member "id" j with
        | Some (Json_lite.Str s) -> jstr s
        | Some (Json_lite.Num n) -> jnum n
        | _ -> "null")
    | Error _ -> "null"
  in
  (* the op label for telemetry/access accounting: clamped to the known
     vocabulary so a misbehaving client cannot grow label cardinality *)
  let op_label =
    match parsed with
    | Error _ -> "malformed"
    | Ok req -> (
        match Option.bind (Json_lite.member "op" req) Json_lite.to_str with
        (* compiled string dispatch instead of List.mem: this check runs
           per request inside the S11 budget *)
        | Some
            (( "check" | "query" | "retrieve" | "classify" | "update"
             | "stats" | "metrics" | "audit" | "snapshot" | "shutdown" ) as op)
          ->
            op
        | Some _ -> "unknown"
        | None -> "malformed")
  in
  (* trace is pure hex: quoted directly, no escape scan *)
  let envelope_trace =
    if trace = "" then [] else [ ("trace_id", "\"" ^ trace ^ "\"") ]
  in
  let fail msg =
    jobj
      ((("id", id) :: ("ok", jbool false) :: envelope_trace)
      @ [ ("error", jstr msg) ])
  in
  let totals0 = Session.cost_totals (session t) in
  let calls0 = (Engine.stats (Para.engine t.para)).Engine.tableau_calls in
  t.last_strategies <- [];
  (* the success path measures totals1/calls1 for the response's cost
     object; the telemetry tail reuses that measurement instead of
     paying cost_totals/stats again (both build lists per call) *)
  let measured = ref None in
  let measure () =
    match !measured with
    | Some m -> m
    | None ->
        let m =
          ( Session.cost_totals (session t),
            (Engine.stats (Para.engine t.para)).Engine.tableau_calls )
        in
        measured := Some m;
        m
  in
  let ok, resp =
    match parsed with
    | Error msg -> (false, fail (Printf.sprintf "malformed request: %s" msg))
    | Ok req -> (
        let dispatch op =
          match op with
          | "check" -> op_check t req
          | "query" -> op_query t req
          | "retrieve" -> op_retrieve t req
          | "classify" -> op_classify t req
          | "update" -> op_update t req
          | "stats" -> op_stats t req
          | "metrics" -> op_metrics t req
          | "audit" -> op_audit t req
          | "snapshot" -> op_snapshot t req
          | "shutdown" -> op_shutdown t req
          | op -> bad "unknown op %S" op
        in
        match dispatch (str_field "op" req) with
        | payload ->
            let totals1, calls1 = measure () in
            if calls1 > calls0 then t.dirty <- true;
            let cost =
              jobj
                (envelope_trace
                @ [ ("tableau_calls", jint (calls1 - calls0));
                    ( "verdicts",
                      jint (totals1.Oracle.verdicts - totals0.Oracle.verdicts)
                    );
                    ( "cache_served",
                      jint
                        (totals1.Oracle.cache_served
                        - totals0.Oracle.cache_served) );
                    ( "wall_ns",
                      jnum (totals1.Oracle.wall_ns -. totals0.Oracle.wall_ns)
                    ) ])
            in
            let cache = cache_json (Oracle.cache_stats (Para.oracle t.para)) in
            ( true,
              jobj
                ((("id", id) :: ("ok", jbool true) :: envelope_trace)
                @ payload
                @ [ ("cost", cost); ("cache", cache) ]) )
        | exception Bad_request msg -> (false, fail msg)
        | exception e ->
            (* last-ditch: a handler bug must degrade to an error
               response, never to a dead daemon *)
            ( false,
              fail (Printf.sprintf "internal error: %s" (Printexc.to_string e))
            ))
  in
  (match t.tel with
  | None -> ()
  | Some tel ->
      let wall_ns = (Unix.gettimeofday () -. start) *. 1e9 in
      let totals1, calls1 = measure () in
      let routes = routes_diff totals0 totals1 in
      let cache_served =
        totals1.Oracle.cache_served - totals0.Oracle.cache_served
      in
      Telemetry.record tel ~op:op_label ~ok ~wall_ns ~routes
        ~strategies:t.last_strategies ~cache_served
        ~tableau_calls:(calls1 - calls0) ();
      (* formatting and I/O are deferred to the drain tick; the request
         path pays one record allocation (the S11 budget) *)
      access_note t
        { p_ts = start;
          p_trace = trace;
          p_op = op_label;
          p_id = id;
          p_ok = ok;
          p_wall_ns = wall_ns;
          p_routes = routes;
          p_cache_served = cache_served;
          p_tableau = calls1 - calls0 });
  resp

(* ------------------------------------------------------------------ *)
(* Socket loop: single-threaded select over the listener and every
   client, per-client input buffers, blocking writes (responses are one
   line; clients that stop reading only stall themselves on the next
   request).  The idle timeout doubles as the autosave tick. *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let k = Unix.write fd b off (n - off) in
      go (off + k)
  in
  go 0

let autosave t =
  if t.dirty then
    Option.iter (fun path -> ignore (save_snapshot t path)) t.snapshot_path

let run ?(idle_save = 0.) ?metrics_out ?(metrics_interval = 5.) ~socket_path t
    =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let metrics_out =
    match t.tel with None -> None | Some _ -> metrics_out
  in
  let metrics_interval = Float.max 0.05 metrics_interval in
  let last_metrics = ref 0.0 in
  let write_metrics () =
    match (t.tel, metrics_out) with
    | Some tel, Some path ->
        last_metrics := Unix.gettimeofday ();
        refresh_kb_health t;
        Telemetry.write_prometheus tel path
    | _ -> ()
  in
  let metrics_tick () =
    match metrics_out with
    | None -> ()
    | Some _ ->
        if Unix.gettimeofday () -. !last_metrics >= metrics_interval then begin
          write_metrics ();
          (* the scrape file and the access log share the tick: both
             become externally visible on the same cadence *)
          sync t
        end
  in
  write_metrics ();
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX socket_path);
  Unix.listen srv 16;
  let clients : (Unix.file_descr, Buffer.t) Hashtbl.t = Hashtbl.create 8 in
  let drop fd =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Hashtbl.remove clients fd
  in
  (* consume every complete line buffered for [fd]; the tail (a partial
     line) stays for the next read *)
  let drain fd buf =
    let data = Buffer.contents buf in
    let rec go start =
      match String.index_from_opt data start '\n' with
      | None ->
          Buffer.clear buf;
          Buffer.add_substring buf data start (String.length data - start)
      | Some nl ->
          let line = String.trim (String.sub data start (nl - start)) in
          if line <> "" then begin
            let resp = handle t line in
            try write_all fd (resp ^ "\n")
            with Unix.Unix_error _ -> drop fd
          end;
          if not t.stop then go (nl + 1)
          else begin
            Buffer.clear buf;
            Buffer.add_substring buf data (nl + 1)
              (String.length data - nl - 1)
          end
    in
    go 0
  in
  let rec loop () =
    if not t.stop then begin
      let fds = srv :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [] in
      let timeout =
        let candidates =
          (if idle_save > 0. then [ idle_save ] else [])
          @ (match metrics_out with
            | Some _ -> [ metrics_interval ]
            | None -> [])
          (* quiet daemons must still surface buffered access lines *)
          @ (match t.access with Some _ -> [ 1.0 ] | None -> [])
        in
        match candidates with
        | [] -> -1.
        | l -> List.fold_left Float.min Float.infinity l
      in
      let ready, _, _ =
        try Unix.select fds [] [] timeout
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      metrics_tick ();
      if ready = [] then begin
        autosave t;
        sync t
      end
      else
        List.iter
          (fun fd ->
            if fd == srv then begin
              match Unix.accept srv with
              | client, _ -> Hashtbl.replace clients client (Buffer.create 256)
              | exception Unix.Unix_error _ -> ()
            end
            else
              match Hashtbl.find_opt clients fd with
              | None -> ()
              | Some buf -> (
                  let chunk = Bytes.create 4096 in
                  match Unix.read fd chunk 0 4096 with
                  | 0 -> drop fd
                  | n ->
                      Buffer.add_subbytes buf chunk 0 n;
                      drain fd buf
                  | exception Unix.Unix_error _ -> drop fd))
          ready;
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      autosave t;
      write_metrics ();
      sync t;
      Hashtbl.iter (fun fd _ -> try Unix.close fd with _ -> ()) clients;
      (try Unix.close srv with Unix.Unix_error _ -> ());
      try Unix.unlink socket_path with Unix.Unix_error _ -> ())
    loop

(* ------------------------------------------------------------------ *)
(* Client side: one round-trip over the socket, used by [dl4 client]
   and the CI smoke test so the protocol can be driven without relying
   on netcat being present. *)

let request ?timeout_ms ~socket_path line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match timeout_ms with
  | Some ms when ms > 0 ->
      let s = float_of_int ms /. 1000. in
      (* a wedged daemon surfaces as EAGAIN/EWOULDBLOCK from [read],
         which the CLI maps to a clear timeout message *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
  | _ -> ());
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      write_all fd (line ^ "\n");
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 4096 in
      let rec read_line () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> Buffer.contents buf
        | n -> (
            match Bytes.index_opt (Bytes.sub chunk 0 n) '\n' with
            | Some nl ->
                Buffer.add_subbytes buf chunk 0 nl;
                Buffer.contents buf
            | None ->
                Buffer.add_subbytes buf chunk 0 n;
                read_line ())
      in
      read_line ())
