(* The dl4 daemon: one warm Session behind a Unix-domain socket.

   Protocol: newline-delimited JSON, one request object per line, one
   response object per line, strictly in request order per connection.
   Requests never kill the daemon — malformed JSON, unknown ops and bad
   arguments all produce an [ok:false] response on the same line slot.

   The request handler is deliberately separated from the socket loop:
   [handle] maps one request line to one response line against the held
   session, so tests (and the in-process bench harness) can drive the
   full protocol without forking or touching the filesystem, and the
   socket loop stays a dumb byte shuttle. *)

type t = {
  mutable para : Para.t;  (* owns the warm session; replaced never *)
  snapshot_path : string option;  (* idle-autosave target *)
  mutable dirty : bool;
      (* has state changed (new verdicts, deltas) since the last save? *)
  mutable stop : bool;  (* set by the shutdown op; read by the loop *)
  mutable requests : int;
}

let create ?snapshot_path session =
  { para = Para.of_session session;
    snapshot_path;
    dirty = false;
    stop = false;
    requests = 0 }

let session t = Para.session t.para
let stopped t = t.stop

(* ------------------------------------------------------------------ *)
(* JSON rendering (by hand, like every export sink in this stack — the
   reader in Json_lite is an independent implementation, so round-trip
   tests cross-check well-formedness) *)

let jstr s = "\"" ^ Obs.json_escape s ^ "\""

let jnum f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields)
  ^ "}"

let jarr items = "[" ^ String.concat "," items ^ "]"
let jbool b = if b then "true" else "false"
let jint n = string_of_int n

(* ------------------------------------------------------------------ *)
(* Request accessors *)

exception Bad_request of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad_request s)) fmt

let str_field name j =
  match Option.bind (Json_lite.member name j) Json_lite.to_str with
  | Some s -> s
  | None -> bad "missing or non-string field %S" name

let bool_field ~default name j =
  match Json_lite.member name j with
  | Some (Json_lite.Bool b) -> b
  | Some _ -> bad "field %S must be a boolean" name
  | None -> default

let concept_field name j =
  let text = str_field name j in
  match Surface.parse_concept text with
  | Ok c -> c
  | Error e ->
      bad "cannot parse concept %S: %s (at offset %d)" text
        e.Surface.message e.Surface.offset

(* ------------------------------------------------------------------ *)
(* Per-op payloads: each returns the response fields beyond the envelope *)

let op_check t _req =
  [ ("consistent", jbool (Para.satisfiable t.para)) ]

let op_query t req =
  let a = str_field "individual" req in
  let c = concept_field "concept" req in
  let v = Para.instance_truth t.para a c in
  [ ("individual", jstr a);
    ("concept", jstr (Concept.to_string c));
    ("truth", jstr (Truth.to_string v)) ]

let op_retrieve t req =
  let c = concept_field "concept" req in
  let all = bool_field ~default:false "all" req in
  let rows =
    List.filter_map
      (fun (a, v) ->
        if all || not (Truth.equal v Truth.Neither) then
          Some (jobj [ ("individual", jstr a); ("truth", jstr (Truth.to_string v)) ])
        else None)
      (Para.retrieve t.para c)
  in
  [ ("concept", jstr (Concept.to_string c)); ("instances", jarr rows) ]

let op_classify t _req =
  let taxo = Para.taxonomy t.para in
  let rows =
    List.map
      (fun (cls, supers) ->
        jobj
          [ ("class", jarr (List.map jstr cls));
            ("supers", jarr (List.map jstr supers)) ])
      taxo
  in
  [ ("taxonomy", jarr rows) ]

let op_update t req =
  let script = str_field "script" req in
  match Delta.parse_script script with
  | Error msg -> bad "%s" msg
  | Ok deltas ->
      let s = Session.apply_all (session t) deltas in
      t.dirty <- true;
      [ ("applied", jint (List.length deltas));
        ("evicted", jint s.Oracle.evicted);
        ("retained", jint s.Oracle.retained);
        ("flushed", jbool s.Oracle.flushed);
        ("consistency_flipped", jbool s.Oracle.consistency_flipped) ]

let cache_json (c : Verdict_cache.stats) =
  jobj
    [ ("hits", jint c.Verdict_cache.hits);
      ("misses", jint c.Verdict_cache.misses);
      ("evictions", jint c.Verdict_cache.evictions);
      ("size", jint c.Verdict_cache.size);
      ("capacity", jint c.Verdict_cache.capacity) ]

let totals_json (s : Oracle.cost_totals) =
  jobj
    [ ("verdicts", jint s.Oracle.verdicts);
      ("cache_served", jint s.Oracle.cache_served);
      ("slow", jint s.Oracle.slow);
      ("wall_ns", jnum s.Oracle.wall_ns);
      ("runs", jint s.Oracle.runs);
      ("nodes", jint s.Oracle.nodes);
      ("branches", jint s.Oracle.branches);
      ("clashes", jint s.Oracle.clashes);
      ( "backends",
        jobj (List.map (fun (b, n) -> (b, jint n)) s.Oracle.backends) ) ]

let op_stats t _req =
  let s = Engine.stats (Para.engine t.para) in
  (* no "cache" field here: the response envelope already carries the
     live cache counters under that key *)
  [ ("requests", jint t.requests);
    ("tableau_calls", jint s.Engine.tableau_calls);
    ("jobs", jint s.Engine.jobs);
    ("batches", jint s.Engine.batches);
    ("parallel_calls", jint s.Engine.parallel_calls);
    ("routes", jobj (List.map (fun (b, n) -> (b, jint n)) s.Engine.routes));
    ("totals", totals_json (Session.cost_totals (session t))) ]

let save_snapshot t path =
  match Store.save (Store.capture (session t)) path with
  | Ok () ->
      t.dirty <- false;
      Ok ()
  | Error e -> Error (Store.error_to_string e)

let op_snapshot t req =
  let path =
    match Option.bind (Json_lite.member "path" req) Json_lite.to_str with
    | Some p -> p
    | None -> (
        match t.snapshot_path with
        | Some p -> p
        | None -> bad "no \"path\" given and no default snapshot path configured")
  in
  match save_snapshot t path with
  | Ok () -> [ ("saved", jstr path) ]
  | Error msg -> bad "snapshot failed: %s" msg

let op_shutdown t _req =
  t.stop <- true;
  [ ("stopping", jbool true) ]

(* ------------------------------------------------------------------ *)
(* The envelope: every ok-response carries the request's marginal cost
   (the diff of the session cost totals and tableau-call count around
   the handler — the PR 5 accounting surface) plus the live cache
   counters, so a client can prove a query was served warm. *)

let handle t line =
  t.requests <- t.requests + 1;
  let id =
    match Json_lite.parse line with
    | Ok j -> (
        match Json_lite.member "id" j with
        | Some (Json_lite.Str s) -> jstr s
        | Some (Json_lite.Num n) -> jnum n
        | _ -> "null")
    | Error _ -> "null"
  in
  let fail msg = jobj [ ("id", id); ("ok", jbool false); ("error", jstr msg) ] in
  match Json_lite.parse line with
  | Error msg -> fail (Printf.sprintf "malformed request: %s" msg)
  | Ok req -> (
      let totals0 = Session.cost_totals (session t) in
      let calls0 = (Engine.stats (Para.engine t.para)).Engine.tableau_calls in
      let dispatch op =
        match op with
        | "check" -> op_check t req
        | "query" -> op_query t req
        | "retrieve" -> op_retrieve t req
        | "classify" -> op_classify t req
        | "update" -> op_update t req
        | "stats" -> op_stats t req
        | "snapshot" -> op_snapshot t req
        | "shutdown" -> op_shutdown t req
        | op -> bad "unknown op %S" op
      in
      match dispatch (str_field "op" req) with
      | payload ->
          let totals1 = Session.cost_totals (session t) in
          let calls1 =
            (Engine.stats (Para.engine t.para)).Engine.tableau_calls
          in
          if calls1 > calls0 then t.dirty <- true;
          let cost =
            jobj
              [ ("tableau_calls", jint (calls1 - calls0));
                ("verdicts", jint (totals1.Oracle.verdicts - totals0.Oracle.verdicts));
                ( "cache_served",
                  jint (totals1.Oracle.cache_served - totals0.Oracle.cache_served)
                );
                ("wall_ns", jnum (totals1.Oracle.wall_ns -. totals0.Oracle.wall_ns))
              ]
          in
          let cache = cache_json (Oracle.cache_stats (Para.oracle t.para)) in
          jobj
            (( ("id", id) :: ("ok", jbool true) :: payload)
            @ [ ("cost", cost); ("cache", cache) ])
      | exception Bad_request msg -> fail msg
      | exception e ->
          (* last-ditch: a handler bug must degrade to an error response,
             never to a dead daemon *)
          fail (Printf.sprintf "internal error: %s" (Printexc.to_string e)))

(* ------------------------------------------------------------------ *)
(* Socket loop: single-threaded select over the listener and every
   client, per-client input buffers, blocking writes (responses are one
   line; clients that stop reading only stall themselves on the next
   request).  The idle timeout doubles as the autosave tick. *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let k = Unix.write fd b off (n - off) in
      go (off + k)
  in
  go 0

let autosave t =
  if t.dirty then
    Option.iter (fun path -> ignore (save_snapshot t path)) t.snapshot_path

let run ?(idle_save = 0.) ~socket_path t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX socket_path);
  Unix.listen srv 16;
  let clients : (Unix.file_descr, Buffer.t) Hashtbl.t = Hashtbl.create 8 in
  let drop fd =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Hashtbl.remove clients fd
  in
  (* consume every complete line buffered for [fd]; the tail (a partial
     line) stays for the next read *)
  let drain fd buf =
    let data = Buffer.contents buf in
    let rec go start =
      match String.index_from_opt data start '\n' with
      | None ->
          Buffer.clear buf;
          Buffer.add_substring buf data start (String.length data - start)
      | Some nl ->
          let line = String.trim (String.sub data start (nl - start)) in
          if line <> "" then begin
            let resp = handle t line in
            try write_all fd (resp ^ "\n")
            with Unix.Unix_error _ -> drop fd
          end;
          if not t.stop then go (nl + 1)
          else begin
            Buffer.clear buf;
            Buffer.add_substring buf data (nl + 1)
              (String.length data - nl - 1)
          end
    in
    go 0
  in
  let rec loop () =
    if not t.stop then begin
      let fds = srv :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [] in
      let timeout = if idle_save > 0. then idle_save else -1. in
      let ready, _, _ =
        try Unix.select fds [] [] timeout
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if ready = [] then autosave t
      else
        List.iter
          (fun fd ->
            if fd == srv then begin
              match Unix.accept srv with
              | client, _ -> Hashtbl.replace clients client (Buffer.create 256)
              | exception Unix.Unix_error _ -> ()
            end
            else
              match Hashtbl.find_opt clients fd with
              | None -> ()
              | Some buf -> (
                  let chunk = Bytes.create 4096 in
                  match Unix.read fd chunk 0 4096 with
                  | 0 -> drop fd
                  | n ->
                      Buffer.add_subbytes buf chunk 0 n;
                      drain fd buf
                  | exception Unix.Unix_error _ -> drop fd))
          ready;
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      autosave t;
      Hashtbl.iter (fun fd _ -> try Unix.close fd with _ -> ()) clients;
      (try Unix.close srv with Unix.Unix_error _ -> ());
      try Unix.unlink socket_path with Unix.Unix_error _ -> ())
    loop

(* ------------------------------------------------------------------ *)
(* Client side: one round-trip over the socket, used by [dl4 client]
   and the CI smoke test so the protocol can be driven without relying
   on netcat being present. *)

let request ~socket_path line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      write_all fd (line ^ "\n");
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 4096 in
      let rec read_line () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> Buffer.contents buf
        | n -> (
            match Bytes.index_opt (Bytes.sub chunk 0 n) '\n' with
            | Some nl ->
                Buffer.add_subbytes buf chunk 0 nl;
                Buffer.contents buf
            | None ->
                Buffer.add_subbytes buf chunk 0 n;
                read_line ())
      in
      read_line ())
