(** The [dl4 serve] daemon — one warm {!Session} behind a Unix-domain
    socket, speaking newline-delimited JSON.

    {b Protocol.}  One request object per line, one response object per
    line, answered strictly in order per connection:

    {v
    request  := { "op": OP, "id"?: string|number, ...op fields }
    OP       := "check" | "query" | "retrieve" | "classify"
              | "update" | "stats" | "snapshot" | "shutdown"

    query    := + "individual": string, "concept": surface-syntax string
    retrieve := + "concept": string, "all"?: bool (include Neither rows)
    update   := + "script": delta-script text (dl4 +/- surface syntax)
    snapshot := + "path"?: string (defaults to the configured autosave path)
    v}

    Every successful response is
    [{"id":…, "ok":true, …payload, "cost":{…}, "cache":{…}}] where
    [cost] is the request's {e marginal} work (tableau calls, computed
    verdicts, cache-served checks, wall time — diffed around the
    handler, the PR 5 accounting surface) and [cache] the live verdict
    cache counters — so a client can prove a repeated query was served
    warm ([cost.tableau_calls = 0]).  Failures are
    [{"id":…, "ok":false, "error":…}]; no request — malformed JSON,
    unknown op, bad concept syntax, delta parse errors — ever kills the
    daemon. *)

type t

val create : ?snapshot_path:string -> Session.t -> t
(** Wrap a (typically snapshot-restored) session for serving.
    [snapshot_path] is the idle-autosave and default [snapshot]-op
    target; omit it to disable autosave. *)

val session : t -> Session.t

val stopped : t -> bool
(** Has a [shutdown] request been handled? *)

val handle : t -> string -> string
(** [handle t line] maps one request line to one response line (no
    trailing newline).  This is the entire protocol — the socket loop
    adds only byte shuttling — so tests and in-process benchmarks drive
    it directly.  Never raises. *)

val run : ?idle_save:float -> socket_path:string -> t -> unit
(** Bind [socket_path] (replacing any stale socket file), serve until a
    [shutdown] request, then autosave (if due), close every connection
    and remove the socket file.  Single-threaded [select] loop; SIGPIPE
    is ignored.  [idle_save > 0] arms the autosave tick: after that many
    seconds with no traffic, a dirty session (new verdicts or applied
    deltas since the last save) is snapshotted to [snapshot_path]. *)

val request : socket_path:string -> string -> string
(** Client side: connect, send one request line, read one response line.
    Used by [dl4 client] and the CI smoke test (no netcat dependency). *)
