(** The [dl4 serve] daemon — one warm {!Session} behind a Unix-domain
    socket, speaking newline-delimited JSON.

    {b Protocol.}  One request object per line, one response object per
    line, answered strictly in order per connection:

    {v
    request  := { "op": OP, "id"?: string|number, ...op fields }
    OP       := "check" | "query" | "retrieve" | "classify" | "update"
              | "stats" | "metrics" | "audit" | "snapshot" | "shutdown"

    query    := + "individual": string, "concept": surface-syntax string
    retrieve := + "concept": string, "all"?: bool (include Neither rows)
    update   := + "script": delta-script text (dl4 +/- surface syntax)
    audit    := + "top"?: number (default 5), "exactly"?: string
                (truth-value set, e.g. "B" or "B,N")
    snapshot := + "path"?: string (defaults to the configured autosave path)
    v}

    Every successful response is
    [{"id":…, "ok":true, "trace_id":…, …payload, "cost":{…}, "cache":{…}}]
    where [trace_id] is the request's freshly minted trace ID (present
    when telemetry is armed; the same ID stamps the request's cost
    records, spans, slow-log lines, flight events and access-log line),
    [cost] is the request's {e marginal} work (tableau calls, computed
    verdicts, cache-served checks, wall time — diffed around the
    handler, the PR 5 accounting surface; it also repeats [trace_id])
    and [cache] the live verdict cache counters — so a client can prove
    a repeated query was served warm ([cost.tableau_calls = 0]).
    Failures are [{"id":…, "ok":false, "trace_id":…, "error":…}]; no
    request — malformed JSON, unknown op, bad concept syntax, delta
    parse errors — ever kills the daemon.

    {b Telemetry.}  Unless disarmed at {!create}, the daemon owns a
    {!Telemetry.t} registry fed once per request (op, outcome, wall
    time, backend routes, cache hits).  The [metrics] op returns its
    JSON rendering; {!run} can additionally write the Prometheus text
    exposition to a file on an interval, and every request appends one
    line to a rotating JSONL access log when one is configured. *)

type t

val default_access_log_max_bytes : int
(** 16 MiB — the rotation threshold when the caller does not choose. *)

val create :
  ?snapshot_path:string ->
  ?telemetry:bool ->
  ?access_log:string ->
  ?access_log_max_bytes:int ->
  ?drift_log:string ->
  Session.t ->
  t
(** Wrap a (typically snapshot-restored) session for serving.
    [snapshot_path] is the idle-autosave and default [snapshot]-op
    target; omit it to disable autosave.  [telemetry] (default [true])
    arms the per-op registry and per-request trace IDs; [false] is the
    disarmed baseline bench S11 measures against.  [access_log] names a
    JSONL file receiving one line per request; the request path only
    queues a compact pending record, with rendering and writes deferred
    to a drain on the idle/metrics ticks, {!sync} and shutdown.
    Rotated once to [path ^ ".1"] — only ever between lines — when it
    would exceed [access_log_max_bytes] (default 16 MiB, clamped to
    ≥ 1 KiB).

    [drift_log] arms truth-value drift tracking: every [update] request
    is bracketed by a census (the cached one before, a fresh one after),
    and each transition set ({!Audit.diff} — e.g. a fact moving [t]→⊤)
    appends one {!Audit.drift_line} JSONL record to the file.  Arming it
    makes updates pay up to two censuses — an explicit operator opt-in.

    The [audit] op serves {!Audit.report_json} for a census of the live
    KB, cached across requests and invalidated by [update]; its response
    carries ["cached": true] when the census was served warm.  The
    census also feeds the [dl4_kb_truth_total{value=…}] /
    [dl4_kb_inconsistency_ratio] KB-health gauges, refreshed with the
    static size gauges on the metrics tick and by the [metrics] op. *)

val session : t -> Session.t

val telemetry : t -> Telemetry.t option
(** The daemon's registry; [None] when disarmed at {!create}. *)

val stopped : t -> bool
(** Has a [shutdown] request been handled? *)

val handle : t -> string -> string
(** [handle t line] maps one request line to one response line (no
    trailing newline).  This is the entire protocol — the socket loop
    adds only byte shuttling — so tests and in-process benchmarks drive
    it directly.  Never raises.

    When telemetry is armed, each call mints a trace ID and installs it
    via {!Obs.set_trace_id} for the duration of the request, records
    the request into the registry, and queues the access-log record. *)

val sync : t -> unit
(** Drain queued access-log records to disk so readers see every line
    for requests handled so far.  [run] calls this on the metrics tick,
    on idle timeouts and at shutdown; tests driving {!handle} directly
    call it before reading the file. *)

val run :
  ?idle_save:float ->
  ?metrics_out:string ->
  ?metrics_interval:float ->
  socket_path:string ->
  t ->
  unit
(** Bind [socket_path] (replacing any stale socket file), serve until a
    [shutdown] request, then autosave (if due), close every connection
    and remove the socket file.  Single-threaded [select] loop; SIGPIPE
    is ignored.  [idle_save > 0] arms the autosave tick: after that many
    seconds with no traffic, a dirty session (new verdicts or applied
    deltas since the last save) is snapshotted to [snapshot_path].

    [metrics_out] arms the scrape file: the Prometheus exposition is
    written there atomically (tmp + rename) at startup, at shutdown and
    at most every [metrics_interval] seconds (default 5, clamped to
    ≥ 0.05) while serving; the access log is flushed on the same tick.
    Ignored when telemetry was disarmed at {!create}. *)

val request : ?timeout_ms:int -> socket_path:string -> string -> string
(** Client side: connect, send one request line, read one response line.
    Used by [dl4 client] and the CI smoke test (no netcat dependency).
    [timeout_ms > 0] arms [SO_RCVTIMEO]/[SO_SNDTIMEO] on the socket, so
    a wedged daemon raises [Unix.Unix_error (EAGAIN | EWOULDBLOCK, _, _)]
    instead of hanging the caller forever. *)
