(* Hand-rolled binary codecs for the dl4-snap snapshot format.

   The container ships no serialization library and bare [Marshal] is
   ruled out by design (no version gate, no validation, breaks across
   compiler versions), so every persisted type gets an explicit
   writer/reader pair in the versioned-type discipline: constructor tags
   and field orders below are part of the on-disk format — changing any
   of them requires bumping [Store.version], never reinterpreting bytes.

   Primitives: fixed-width little-endian u8/u32/i64, IEEE doubles as
   int64 bits, length-prefixed strings, count-prefixed lists, 0/1-tagged
   options.  Readers bounds-check every access and raise {!Corrupt} with
   a description; [Store] catches it at the section boundary. *)

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

(* ------------------------------------------------------------------ *)
(* Writer *)

type writer = Buffer.t

let w_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))

let w_u32 b n =
  if n < 0 || n > 0xffff_ffff then corrupt "u32 out of range: %d" n;
  w_u8 b n;
  w_u8 b (n lsr 8);
  w_u8 b (n lsr 16);
  w_u8 b (n lsr 24)

let w_i64 b (n : int64) =
  for k = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical n (8 * k)) land 0xff))
  done

let w_int b n = w_i64 b (Int64.of_int n)
let w_float b f = w_i64 b (Int64.bits_of_float f)
let w_bool b v = w_u8 b (if v then 1 else 0)

let w_string b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_list b w_elt l =
  w_u32 b (List.length l);
  List.iter (w_elt b) l

let w_array b w_elt a =
  w_u32 b (Array.length a);
  Array.iter (w_elt b) a

let w_option b w_elt = function
  | None -> w_u8 b 0
  | Some v ->
      w_u8 b 1;
      w_elt b v

let w_pair w_fst w_snd b (x, y) =
  w_fst b x;
  w_snd b y

(* ------------------------------------------------------------------ *)
(* Reader *)

type reader = { buf : string; mutable pos : int; limit : int }

let reader ?(pos = 0) ?limit buf =
  { buf; pos; limit = Option.value limit ~default:(String.length buf) }

let need r n what =
  if r.pos + n > r.limit then
    corrupt "truncated: %s needs %d bytes at offset %d (limit %d)" what n r.pos
      r.limit

let r_u8 r =
  need r 1 "u8";
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  need r 4 "u32";
  let b k = Char.code r.buf.[r.pos + k] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  r.pos <- r.pos + 4;
  v

let r_i64 r =
  need r 8 "i64";
  let v = ref 0L in
  for k = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code r.buf.[r.pos + k]))
  done;
  r.pos <- r.pos + 8;
  !v

let r_int r = Int64.to_int (r_i64 r)
let r_float r = Int64.float_of_bits (r_i64 r)

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> corrupt "bad bool tag %d" n

let r_string r =
  let n = r_u32 r in
  need r n "string payload";
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let r_list r r_elt =
  let n = r_u32 r in
  (* sanity cap: a count cannot exceed one element per remaining byte —
     rejects wildly corrupt counts before allocating *)
  if n > r.limit - r.pos then corrupt "list count %d exceeds remaining bytes" n;
  List.init n (fun _ -> r_elt r)

let r_array r r_elt = Array.of_list (r_list r r_elt)

let r_option r r_elt =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (r_elt r)
  | n -> corrupt "bad option tag %d" n

let r_pair r_fst r_snd r =
  let x = r_fst r in
  let y = r_snd r in
  (x, y)

let at_end r = r.pos = r.limit

(* ------------------------------------------------------------------ *)
(* Checksum: Adler-32 (RFC 1950), enough to catch torn or bit-flipped
   sections — the threat model is corruption, not tampering. *)

let adler32 s =
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod 65521;
      b := (!b + !a) mod 65521)
    s;
  (!b lsl 16) lor !a

(* ------------------------------------------------------------------ *)
(* Syntax-layer codecs *)

let w_value b (v : Datatype.value) =
  match v with
  | Datatype.Int n ->
      w_u8 b 0;
      w_int b n
  | Datatype.Str s ->
      w_u8 b 1;
      w_string b s
  | Datatype.Bool v ->
      w_u8 b 2;
      w_bool b v

let r_value r : Datatype.value =
  match r_u8 r with
  | 0 -> Datatype.Int (r_int r)
  | 1 -> Datatype.Str (r_string r)
  | 2 -> Datatype.Bool (r_bool r)
  | n -> corrupt "bad datatype-value tag %d" n

let rec w_datatype b (d : Datatype.t) =
  match d with
  | Datatype.Top_data -> w_u8 b 0
  | Datatype.Bottom_data -> w_u8 b 1
  | Datatype.Int_type -> w_u8 b 2
  | Datatype.String_type -> w_u8 b 3
  | Datatype.Bool_type -> w_u8 b 4
  | Datatype.Int_range (lo, hi) ->
      w_u8 b 5;
      w_option b w_int lo;
      w_option b w_int hi
  | Datatype.One_of vs ->
      w_u8 b 6;
      w_list b w_value vs
  | Datatype.Complement d ->
      w_u8 b 7;
      w_datatype b d

let rec r_datatype r : Datatype.t =
  match r_u8 r with
  | 0 -> Datatype.Top_data
  | 1 -> Datatype.Bottom_data
  | 2 -> Datatype.Int_type
  | 3 -> Datatype.String_type
  | 4 -> Datatype.Bool_type
  | 5 ->
      let lo = r_option r r_int in
      let hi = r_option r r_int in
      Datatype.Int_range (lo, hi)
  | 6 -> Datatype.One_of (r_list r r_value)
  | 7 -> Datatype.Complement (r_datatype r)
  | n -> corrupt "bad datatype tag %d" n

let w_role b (role : Role.t) =
  match role with
  | Role.Name s ->
      w_u8 b 0;
      w_string b s
  | Role.Inv s ->
      w_u8 b 1;
      w_string b s

let r_role r : Role.t =
  match r_u8 r with
  | 0 -> Role.Name (r_string r)
  | 1 -> Role.Inv (r_string r)
  | n -> corrupt "bad role tag %d" n

let rec w_concept b (c : Concept.t) =
  match c with
  | Concept.Top -> w_u8 b 0
  | Concept.Bottom -> w_u8 b 1
  | Concept.Atom s ->
      w_u8 b 2;
      w_string b s
  | Concept.Not c ->
      w_u8 b 3;
      w_concept b c
  | Concept.And (x, y) ->
      w_u8 b 4;
      w_concept b x;
      w_concept b y
  | Concept.Or (x, y) ->
      w_u8 b 5;
      w_concept b x;
      w_concept b y
  | Concept.One_of os ->
      w_u8 b 6;
      w_list b w_string os
  | Concept.Exists (role, c) ->
      w_u8 b 7;
      w_role b role;
      w_concept b c
  | Concept.Forall (role, c) ->
      w_u8 b 8;
      w_role b role;
      w_concept b c
  | Concept.At_least (n, role) ->
      w_u8 b 9;
      w_int b n;
      w_role b role
  | Concept.At_most (n, role) ->
      w_u8 b 10;
      w_int b n;
      w_role b role
  | Concept.Data_exists (u, d) ->
      w_u8 b 11;
      w_string b u;
      w_datatype b d
  | Concept.Data_forall (u, d) ->
      w_u8 b 12;
      w_string b u;
      w_datatype b d
  | Concept.Data_at_least (n, u) ->
      w_u8 b 13;
      w_int b n;
      w_string b u
  | Concept.Data_at_most (n, u) ->
      w_u8 b 14;
      w_int b n;
      w_string b u

let rec r_concept r : Concept.t =
  match r_u8 r with
  | 0 -> Concept.Top
  | 1 -> Concept.Bottom
  | 2 -> Concept.Atom (r_string r)
  | 3 -> Concept.Not (r_concept r)
  | 4 ->
      let x = r_concept r in
      let y = r_concept r in
      Concept.And (x, y)
  | 5 ->
      let x = r_concept r in
      let y = r_concept r in
      Concept.Or (x, y)
  | 6 -> Concept.One_of (r_list r r_string)
  | 7 ->
      let role = r_role r in
      Concept.Exists (role, r_concept r)
  | 8 ->
      let role = r_role r in
      Concept.Forall (role, r_concept r)
  | 9 ->
      let n = r_int r in
      Concept.At_least (n, r_role r)
  | 10 ->
      let n = r_int r in
      Concept.At_most (n, r_role r)
  | 11 ->
      let u = r_string r in
      Concept.Data_exists (u, r_datatype r)
  | 12 ->
      let u = r_string r in
      Concept.Data_forall (u, r_datatype r)
  | 13 ->
      let n = r_int r in
      Concept.Data_at_least (n, r_string r)
  | 14 ->
      let n = r_int r in
      Concept.Data_at_most (n, r_string r)
  | n -> corrupt "bad concept tag %d" n

(* Classical axioms *)

let w_ctbox b (ax : Axiom.tbox_axiom) =
  match ax with
  | Axiom.Concept_sub (c, d) ->
      w_u8 b 0;
      w_concept b c;
      w_concept b d
  | Axiom.Role_sub (x, y) ->
      w_u8 b 1;
      w_role b x;
      w_role b y
  | Axiom.Data_role_sub (x, y) ->
      w_u8 b 2;
      w_string b x;
      w_string b y
  | Axiom.Transitive x ->
      w_u8 b 3;
      w_string b x

let r_ctbox r : Axiom.tbox_axiom =
  match r_u8 r with
  | 0 ->
      let c = r_concept r in
      let d = r_concept r in
      Axiom.Concept_sub (c, d)
  | 1 ->
      let x = r_role r in
      let y = r_role r in
      Axiom.Role_sub (x, y)
  | 2 ->
      let x = r_string r in
      let y = r_string r in
      Axiom.Data_role_sub (x, y)
  | 3 -> Axiom.Transitive (r_string r)
  | n -> corrupt "bad classical-tbox tag %d" n

let w_abox b (ax : Axiom.abox_axiom) =
  match ax with
  | Axiom.Instance_of (a, c) ->
      w_u8 b 0;
      w_string b a;
      w_concept b c
  | Axiom.Role_assertion (a, role, bb) ->
      w_u8 b 1;
      w_string b a;
      w_role b role;
      w_string b bb
  | Axiom.Data_assertion (a, u, v) ->
      w_u8 b 2;
      w_string b a;
      w_string b u;
      w_value b v
  | Axiom.Same (a, bb) ->
      w_u8 b 3;
      w_string b a;
      w_string b bb
  | Axiom.Different (a, bb) ->
      w_u8 b 4;
      w_string b a;
      w_string b bb

let r_abox r : Axiom.abox_axiom =
  match r_u8 r with
  | 0 ->
      let a = r_string r in
      Axiom.Instance_of (a, r_concept r)
  | 1 ->
      let a = r_string r in
      let role = r_role r in
      let bb = r_string r in
      Axiom.Role_assertion (a, role, bb)
  | 2 ->
      let a = r_string r in
      let u = r_string r in
      Axiom.Data_assertion (a, u, r_value r)
  | 3 ->
      let a = r_string r in
      Axiom.Same (a, r_string r)
  | 4 ->
      let a = r_string r in
      Axiom.Different (a, r_string r)
  | n -> corrupt "bad abox tag %d" n

let w_ckb b (kb : Axiom.kb) =
  w_list b w_ctbox kb.Axiom.tbox;
  w_list b w_abox kb.Axiom.abox

let r_ckb r : Axiom.kb =
  let tbox = r_list r r_ctbox in
  let abox = r_list r r_abox in
  { Axiom.tbox; abox }

(* Four-valued KB *)

let w_inclusion b (k : Kb4.inclusion) =
  w_u8 b
    (match k with Kb4.Material -> 0 | Kb4.Internal -> 1 | Kb4.Strong -> 2)

let r_inclusion r : Kb4.inclusion =
  match r_u8 r with
  | 0 -> Kb4.Material
  | 1 -> Kb4.Internal
  | 2 -> Kb4.Strong
  | n -> corrupt "bad inclusion tag %d" n

let w_tbox4 b (ax : Kb4.tbox_axiom) =
  match ax with
  | Kb4.Concept_inclusion (k, c, d) ->
      w_u8 b 0;
      w_inclusion b k;
      w_concept b c;
      w_concept b d
  | Kb4.Role_inclusion (k, x, y) ->
      w_u8 b 1;
      w_inclusion b k;
      w_role b x;
      w_role b y
  | Kb4.Data_role_inclusion (k, x, y) ->
      w_u8 b 2;
      w_inclusion b k;
      w_string b x;
      w_string b y
  | Kb4.Transitive x ->
      w_u8 b 3;
      w_string b x

let r_tbox4 r : Kb4.tbox_axiom =
  match r_u8 r with
  | 0 ->
      let k = r_inclusion r in
      let c = r_concept r in
      let d = r_concept r in
      Kb4.Concept_inclusion (k, c, d)
  | 1 ->
      let k = r_inclusion r in
      let x = r_role r in
      let y = r_role r in
      Kb4.Role_inclusion (k, x, y)
  | 2 ->
      let k = r_inclusion r in
      let x = r_string r in
      let y = r_string r in
      Kb4.Data_role_inclusion (k, x, y)
  | 3 -> Kb4.Transitive (r_string r)
  | n -> corrupt "bad kb4-tbox tag %d" n

let w_kb4 b (kb : Kb4.t) =
  w_list b w_tbox4 kb.Kb4.tbox;
  w_list b w_abox kb.Kb4.abox

let r_kb4 r : Kb4.t =
  let tbox = r_list r r_tbox4 in
  let abox = r_list r r_abox in
  { Kb4.tbox; abox }

(* ------------------------------------------------------------------ *)
(* Engine-layer codecs *)

let w_query b (q : Oracle.query) =
  match q with
  | Oracle.Consistent -> w_u8 b 0
  | Oracle.Concept_sat c ->
      w_u8 b 1;
      w_concept b c
  | Oracle.Instance (a, c) ->
      w_u8 b 2;
      w_string b a;
      w_concept b c
  | Oracle.Not_instance (a, c) ->
      w_u8 b 3;
      w_string b a;
      w_concept b c
  | Oracle.Role_pos (a, role, bb) ->
      w_u8 b 4;
      w_string b a;
      w_role b role;
      w_string b bb
  | Oracle.Role_neg (a, role, bb) ->
      w_u8 b 5;
      w_string b a;
      w_role b role;
      w_string b bb

let r_query r : Oracle.query =
  match r_u8 r with
  | 0 -> Oracle.Consistent
  | 1 -> Oracle.Concept_sat (r_concept r)
  | 2 ->
      let a = r_string r in
      Oracle.Instance (a, r_concept r)
  | 3 ->
      let a = r_string r in
      Oracle.Not_instance (a, r_concept r)
  | 4 ->
      let a = r_string r in
      let role = r_role r in
      let bb = r_string r in
      Oracle.Role_pos (a, role, bb)
  | 5 ->
      let a = r_string r in
      let role = r_role r in
      let bb = r_string r in
      Oracle.Role_neg (a, role, bb)
  | n -> corrupt "bad query tag %d" n

let w_prov b (p : Oracle.prov_entry) =
  w_list b w_string p.Oracle.individuals;
  w_list b w_string p.Oracle.concepts

let r_prov r : Oracle.prov_entry =
  let individuals = r_list r r_string in
  let concepts = r_list r r_string in
  { Oracle.individuals; concepts }

(* Cost records persist rule firings as (name, count) pairs rather than
   the live int-array-indexed-like-[Tableau.rule_names] shape, so a
   snapshot survives a rule-set reorder (unknown names drop on load). *)

let w_rules_array b (a : int array) =
  let named =
    Array.to_list (Array.mapi (fun i n -> (Tableau.rule_names.(i), n)) a)
    |> List.filter (fun (_, n) -> n <> 0)
  in
  w_list b (w_pair w_string w_int) named

let r_rules_array r =
  let named = r_list r (r_pair r_string r_int) in
  let a = Array.make (Array.length Tableau.rule_names) 0 in
  List.iter
    (fun (name, n) ->
      Array.iteri (fun i rn -> if rn = name then a.(i) <- a.(i) + n)
        Tableau.rule_names)
    named;
  a

let w_cost b (c : Oracle.cost) =
  w_string b c.Oracle.c_query;
  w_string b c.Oracle.c_kind;
  w_string b c.Oracle.c_backend;
  w_string b c.Oracle.c_trace; (* new in dl4-snap/3 *)
  w_float b c.Oracle.c_wall_ns;
  w_int b c.Oracle.c_runs;
  w_int b c.Oracle.c_nodes;
  w_int b c.Oracle.c_merges;
  w_int b c.Oracle.c_branches;
  w_int b c.Oracle.c_backtracks;
  w_int b c.Oracle.c_clashes;
  w_int b c.Oracle.c_blocking;
  w_rules_array b c.Oracle.c_rule_firings;
  w_int b c.Oracle.c_shard;
  w_int b c.Oracle.c_hits

let r_cost r : Oracle.cost =
  let c_query = r_string r in
  let c_kind = r_string r in
  let c_backend = r_string r in
  let c_trace = r_string r in
  let c_wall_ns = r_float r in
  let c_runs = r_int r in
  let c_nodes = r_int r in
  let c_merges = r_int r in
  let c_branches = r_int r in
  let c_backtracks = r_int r in
  let c_clashes = r_int r in
  let c_blocking = r_int r in
  let c_rule_firings = r_rules_array r in
  let c_shard = r_int r in
  let c_hits = r_int r in
  { Oracle.c_query;
    c_kind;
    c_backend;
    c_trace;
    c_wall_ns;
    c_runs;
    c_nodes;
    c_merges;
    c_branches;
    c_backtracks;
    c_clashes;
    c_blocking;
    c_rule_firings;
    c_shard;
    c_hits }

let w_entry b (e : Oracle.export_entry) =
  w_query b e.Oracle.x_query;
  w_bool b e.Oracle.x_verdict;
  w_option b w_prov e.Oracle.x_prov;
  w_option b w_cost e.Oracle.x_cost

let r_entry r : Oracle.export_entry =
  let x_query = r_query r in
  let x_verdict = r_bool r in
  let x_prov = r_option r r_prov in
  let x_cost = r_option r r_cost in
  { Oracle.x_query; x_verdict; x_prov; x_cost }

let w_cost_totals b (s : Oracle.cost_totals) =
  w_int b s.Oracle.verdicts;
  w_int b s.Oracle.cache_served;
  w_int b s.Oracle.slow;
  w_float b s.Oracle.wall_ns;
  w_int b s.Oracle.runs;
  w_int b s.Oracle.nodes;
  w_int b s.Oracle.merges;
  w_int b s.Oracle.branches;
  w_int b s.Oracle.backtracks;
  w_int b s.Oracle.clashes;
  w_int b s.Oracle.blocking;
  w_list b (w_pair w_string w_int) s.Oracle.rule_firings;
  w_list b (w_pair w_string w_int) s.Oracle.backends

let r_cost_totals r : Oracle.cost_totals =
  let verdicts = r_int r in
  let cache_served = r_int r in
  let slow = r_int r in
  let wall_ns = r_float r in
  let runs = r_int r in
  let nodes = r_int r in
  let merges = r_int r in
  let branches = r_int r in
  let backtracks = r_int r in
  let clashes = r_int r in
  let blocking = r_int r in
  let rule_firings = r_list r (r_pair r_string r_int) in
  let backends = r_list r (r_pair r_string r_int) in
  { Oracle.verdicts;
    cache_served;
    slow;
    wall_ns;
    runs;
    nodes;
    merges;
    branches;
    backtracks;
    clashes;
    blocking;
    rule_firings;
    backends }

let w_classify_stats b (s : Classify.stats) =
  w_int b s.Classify.atoms;
  w_int b s.Classify.naive_tests;
  w_int b s.Classify.tableau_tests;
  w_int b s.Classify.told_hits;
  w_int b s.Classify.dag_hits

let r_classify_stats r : Classify.stats =
  let atoms = r_int r in
  let naive_tests = r_int r in
  let tableau_tests = r_int r in
  let told_hits = r_int r in
  let dag_hits = r_int r in
  { Classify.atoms; naive_tests; tableau_tests; told_hits; dag_hits }

let w_classification b (c : Classify.t) =
  w_list b (w_pair w_string (fun b l -> w_list b w_string l)) c.Classify.supers;
  w_classify_stats b c.Classify.stats

let r_classification r : Classify.t =
  let supers = r_list r (r_pair r_string (fun r -> r_list r r_string)) in
  let stats = r_classify_stats r in
  { Classify.supers; stats }

let w_config b (c : Oracle.config) =
  w_int b c.Oracle.jobs;
  w_int b c.Oracle.cache_capacity;
  w_int b c.Oracle.max_nodes;
  w_int b c.Oracle.max_branches;
  w_u8 b
    (match c.Oracle.backend with
    | Backend.Auto -> 0
    | Backend.Tableau -> 1
    | Backend.Horn -> 2)

let r_config r : Oracle.config =
  let jobs = r_int r in
  let cache_capacity = r_int r in
  let max_nodes = r_int r in
  let max_branches = r_int r in
  let backend =
    match r_u8 r with
    | 0 -> Backend.Auto
    | 1 -> Backend.Tableau
    | 2 -> Backend.Horn
    | n -> corrupt "bad backend tag %d" n
  in
  { Oracle.jobs; cache_capacity; max_nodes; max_branches; backend }

let w_cache_stats b (s : Verdict_cache.stats) =
  w_int b s.Verdict_cache.hits;
  w_int b s.Verdict_cache.misses;
  w_int b s.Verdict_cache.evictions;
  w_int b s.Verdict_cache.size;
  w_int b s.Verdict_cache.capacity

let r_cache_stats r : Verdict_cache.stats =
  let hits = r_int r in
  let misses = r_int r in
  let evictions = r_int r in
  let size = r_int r in
  let capacity = r_int r in
  { Verdict_cache.hits; misses; evictions; size; capacity }
