(* dl4-snap/3 — the versioned on-disk snapshot container.

   Layout:

     bytes 0..7    magic "dl4-snap"
     u32           format version (= 3)
     u32           section count
     per section:  name (length-prefixed string), u32 payload length,
                   u32 Adler-32 of the payload
     payloads, concatenated in table order

   Sections are named and checksummed independently so a reader can
   refuse exactly the torn part, and so a future version can add
   sections without disturbing old readers (unknown names are skipped;
   structural changes to an existing section's payload bump [version]).

   Decoding never trusts the input: every read is bounds-checked
   ([Snap_codec.Corrupt]), every section is checksum-verified before its
   codec runs, and [restore] re-validates the semantic invariants (the
   requested KB matches, the stored classical KB is the transform of the
   stored four-valued KB) before any cached verdict is believed.  The
   failure mode is always a clean [Error _] — callers fall back to a
   cold build, never serve from a bad snapshot. *)

let magic = "dl4-snap"
let version = 3  (* 3: cost records carry the trace ID that paid for them *)

type snapshot = {
  s_config : Oracle.config;
  s_kb : Kb4.t;
  s_classical : Axiom.kb;  (** the induced [K̄] at capture time *)
  s_classification : Classify.t option;
  s_entries : Oracle.export_entry list;  (** LRU order, least recent first *)
  s_totals : Oracle.cost_totals;
  s_cache_stats : Verdict_cache.stats;
}

type error =
  | Io of string
  | Bad_magic
  | Bad_version of int
  | Bad_checksum of string
  | Corrupt of string
  | Kb_mismatch

let pp_error ppf = function
  | Io msg -> Format.fprintf ppf "i/o error: %s" msg
  | Bad_magic -> Format.fprintf ppf "not a dl4 snapshot (bad magic)"
  | Bad_version v ->
      Format.fprintf ppf
        "unsupported snapshot version %d (this build reads version %d)" v
        version
  | Bad_checksum section ->
      Format.fprintf ppf "checksum mismatch in section %S" section
  | Corrupt msg -> Format.fprintf ppf "corrupt snapshot: %s" msg
  | Kb_mismatch ->
      Format.fprintf ppf "snapshot was taken over a different knowledge base"

let error_to_string e = Format.asprintf "%a" pp_error e

(* ------------------------------------------------------------------ *)
(* Capture *)

let capture session =
  let oracle = Session.oracle session in
  { s_config = Session.config session;
    s_kb = Session.kb session;
    s_classical = Session.classical_kb session;
    s_classification = Engine.classification_if_built (Session.engine session);
    s_entries = Oracle.export_entries oracle;
    s_totals = Session.cost_totals session;
    s_cache_stats = Oracle.cache_stats oracle }

(* ------------------------------------------------------------------ *)
(* Encode *)

let section name encode =
  let b = Buffer.create 1024 in
  encode b;
  (name, Buffer.contents b)

let to_string s =
  let sections =
    [ section "config" (fun b -> Snap_codec.w_config b s.s_config);
      section "kb" (fun b -> Snap_codec.w_kb4 b s.s_kb);
      section "ckb" (fun b -> Snap_codec.w_ckb b s.s_classical);
      section "classify" (fun b ->
          Snap_codec.w_option b Snap_codec.w_classification s.s_classification);
      section "verdicts" (fun b ->
          Snap_codec.w_list b Snap_codec.w_entry s.s_entries);
      section "totals" (fun b -> Snap_codec.w_cost_totals b s.s_totals);
      section "cache_stats" (fun b ->
          Snap_codec.w_cache_stats b s.s_cache_stats) ]
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  Snap_codec.w_u32 b version;
  Snap_codec.w_u32 b (List.length sections);
  List.iter
    (fun (name, payload) ->
      Snap_codec.w_string b name;
      Snap_codec.w_u32 b (String.length payload);
      Snap_codec.w_u32 b (Snap_codec.adler32 payload))
    sections;
  List.iter (fun (_, payload) -> Buffer.add_string b payload) sections;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decode *)

let of_string data =
  try
    if String.length data < String.length magic then Error Bad_magic
    else if String.sub data 0 (String.length magic) <> magic then
      Error Bad_magic
    else begin
      let r = Snap_codec.reader ~pos:(String.length magic) data in
      let v = Snap_codec.r_u32 r in
      if v <> version then Error (Bad_version v)
      else begin
        let count = Snap_codec.r_u32 r in
        if count > 64 then
          Snap_codec.corrupt "implausible section count %d" count;
        let table =
          List.init count (fun _ ->
              let name = Snap_codec.r_string r in
              let len = Snap_codec.r_u32 r in
              let sum = Snap_codec.r_u32 r in
              (name, len, sum))
        in
        (* slice out the payloads in table order, checksum each *)
        let bad = ref None in
        let sections =
          List.filter_map
            (fun (name, len, sum) ->
              if r.Snap_codec.pos + len > r.Snap_codec.limit then
                Snap_codec.corrupt "truncated: section %S claims %d bytes" name
                  len;
              let payload = String.sub data r.Snap_codec.pos len in
              r.Snap_codec.pos <- r.Snap_codec.pos + len;
              if Snap_codec.adler32 payload <> sum then begin
                if !bad = None then bad := Some name;
                None
              end
              else Some (name, payload))
            table
        in
        match !bad with
        | Some name -> Error (Bad_checksum name)
        | None ->
            let decode name codec =
              match List.assoc_opt name sections with
              | None -> Snap_codec.corrupt "missing section %S" name
              | Some payload ->
                  let r = Snap_codec.reader payload in
                  let v = codec r in
                  if not (Snap_codec.at_end r) then
                    Snap_codec.corrupt "trailing bytes in section %S" name;
                  v
            in
            Ok
              { s_config = decode "config" Snap_codec.r_config;
                s_kb = decode "kb" Snap_codec.r_kb4;
                s_classical = decode "ckb" Snap_codec.r_ckb;
                s_classification =
                  decode "classify" (fun r ->
                      Snap_codec.r_option r Snap_codec.r_classification);
                s_entries =
                  decode "verdicts" (fun r ->
                      Snap_codec.r_list r Snap_codec.r_entry);
                s_totals = decode "totals" Snap_codec.r_cost_totals;
                s_cache_stats = decode "cache_stats" Snap_codec.r_cache_stats }
      end
    end
  with Snap_codec.Corrupt msg -> Error (Corrupt msg)

(* ------------------------------------------------------------------ *)
(* Files *)

let save s path =
  try
    let data = to_string s in
    let tmp = path ^ ".tmp" in
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc data);
    Sys.rename tmp path;
    Ok ()
  with Sys_error msg -> Error (Io msg)

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | data -> of_string data
  | exception Sys_error msg -> Error (Io msg)

(* ------------------------------------------------------------------ *)
(* Restore *)

let restore ?jobs ?kb s =
  (* [kb]: the KB the caller is actually asking to reason over.  A
     snapshot only transfers state between sessions over the {e same}
     KB — warm verdicts against a different KB are silent wrong
     answers, so this check is load-bearing, not cosmetic. *)
  let requested = Option.value kb ~default:s.s_kb in
  if requested <> s.s_kb then Error Kb_mismatch
  else if Transform.kb s.s_kb <> s.s_classical then
    (* both survived their checksums but disagree semantically: the
       snapshot was produced by an incompatible transform (or doctored)
       — refuse rather than warm a cache against the wrong K̄ *)
    Error
      (Corrupt "stored classical KB is not the transform of the stored KB")
  else begin
    let config =
      { s.s_config with
        Oracle.jobs = Option.value jobs ~default:s.s_config.Oracle.jobs }
    in
    let session = Session.create ~config s.s_kb in
    let oracle = Session.oracle session in
    ignore (Oracle.import_entries oracle s.s_entries : int);
    Oracle.import_totals oracle s.s_totals;
    Oracle.restore_cache_stats oracle s.s_cache_stats;
    Option.iter
      (Engine.restore_classification (Session.engine session))
      s.s_classification;
    Ok session
  end

let load_session ?jobs ?kb path =
  match load path with Error e -> Error e | Ok s -> restore ?jobs ?kb s

(* ------------------------------------------------------------------ *)
(* Reporting *)

let pp_summary ppf s =
  let sig_ = Kb4.signature s.s_kb in
  Format.fprintf ppf
    "@[<v>kb: %d axioms (%d atoms, %d individuals)@,\
     verdicts: %d cached (%d hits / %d misses recorded)@,\
     classification: %s@,\
     totals: %d verdicts computed, %.2f ms tableau time@]"
    (Kb4.size s.s_kb)
    (List.length sig_.Axiom.concepts)
    (List.length sig_.Axiom.individuals)
    (List.length s.s_entries) s.s_cache_stats.Verdict_cache.hits
    s.s_cache_stats.Verdict_cache.misses
    (match s.s_classification with
    | Some c -> Printf.sprintf "%d atoms" c.Classify.stats.Classify.atoms
    | None -> "not built")
    s.s_totals.Oracle.verdicts
    (s.s_totals.Oracle.wall_ns /. 1e6)
