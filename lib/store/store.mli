(** Persistent KB store — the [dl4-snap/3] versioned snapshot format
    (3: cost records carry the trace ID that paid for them).

    A snapshot freezes the warm state of one {!Session} over one KB: the
    four-valued KB and its induced classical KB, the classification index
    (if built), every cached verdict with its provenance and cost record,
    the session cost totals and the session config.  {!restore} rebuilds
    a session from it without re-running any tableau: repeated queries
    against a restored session are pure cache hits.

    {b File layout} (all integers little-endian):
    {v
    magic "dl4-snap" | u32 version | u32 section count
    section table: (name, u32 payload length, u32 adler32) per section
    payloads, concatenated in table order
    v}

    Sections: ["config"], ["kb"], ["ckb"], ["classify"], ["verdicts"],
    ["totals"], ["cache_stats"].  Every payload uses the explicit binary
    codecs of {!Snap_codec} — constructor tags and field orders are part
    of the format; any structural change bumps {!version}.

    {b Validation.}  Loading verifies magic, version and per-section
    checksums; {!restore} additionally verifies the snapshot was taken
    over the KB the caller is asking about and that the stored classical
    KB is the transform of the stored four-valued KB.  Every failure is a
    clean {!error} — callers fall back to a cold build and never serve
    from a corrupt or stale snapshot. *)

val magic : string
val version : int

type snapshot = {
  s_config : Oracle.config;  (** session config at capture time *)
  s_kb : Kb4.t;  (** the four-valued KB the state is valid for *)
  s_classical : Axiom.kb;  (** the induced [K̄] at capture time *)
  s_classification : Classify.t option;  (** index, if it had been built *)
  s_entries : Oracle.export_entry list;
      (** cached verdicts in LRU order (least recent first), each with
          its provenance and cost record where retained *)
  s_totals : Oracle.cost_totals;  (** session-lifetime work history *)
  s_cache_stats : Verdict_cache.stats;  (** hit/miss/eviction counters *)
}

type error =
  | Io of string  (** file could not be read or written *)
  | Bad_magic  (** not a dl4 snapshot at all *)
  | Bad_version of int  (** written by an incompatible format version *)
  | Bad_checksum of string  (** named section failed its Adler-32 check *)
  | Corrupt of string  (** structurally invalid payload *)
  | Kb_mismatch  (** snapshot is for a different KB than requested *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val capture : Session.t -> snapshot
(** Freeze the session's current warm state.  Cheap relative to the work
    it saves: no tableau runs, just an export of the cache and indexes.
    Captures the classification only if it has already been built —
    callers that want a warm taxonomy in the snapshot force the build
    first. *)

val to_string : snapshot -> string
val of_string : string -> (snapshot, error) result
(** Inverse pair: [of_string (to_string s) = Ok s] (up to the documented
    rule-name remapping in cost records).  [of_string] never raises. *)

val save : snapshot -> string -> (unit, error) result
(** Write atomically: the bytes land in [path ^ ".tmp"] and are renamed
    into place, so a crash mid-save never leaves a torn snapshot under
    the real name. *)

val load : string -> (snapshot, error) result

val restore :
  ?jobs:int -> ?kb:Kb4.t -> snapshot -> (Session.t, error) result
(** Build a warm session from a snapshot.  [?kb] is the KB the caller
    actually wants to reason over (e.g. re-parsed from the file the user
    named): if it differs structurally from the snapshot's KB the result
    is [Error Kb_mismatch] — warm verdicts are only sound over the exact
    KB they were computed against.  Omitting [?kb] trusts the snapshot's
    own KB.  [?jobs] overrides the saved domain-pool width (pool width
    never affects answers); all other config fields are taken from the
    snapshot. *)

val load_session :
  ?jobs:int -> ?kb:Kb4.t -> string -> (Session.t, error) result
(** [load] followed by [restore]. *)

val pp_summary : Format.formatter -> snapshot -> unit
(** Human-readable one-glance description (KB size, cached verdicts,
    classification presence, totals). *)
