type t =
  | Top
  | Bottom
  | Atom of string
  | Not of t
  | And of t * t
  | Or of t * t
  | One_of of string list
  | Exists of Role.t * t
  | Forall of Role.t * t
  | At_least of int * Role.t
  | At_most of int * Role.t
  | Data_exists of string * Datatype.t
  | Data_forall of string * Datatype.t
  | Data_at_least of int * string
  | Data_at_most of int * string

let rec compare a b =
  let tag = function
    | Top -> 0
    | Bottom -> 1
    | Atom _ -> 2
    | Not _ -> 3
    | And _ -> 4
    | Or _ -> 5
    | One_of _ -> 6
    | Exists _ -> 7
    | Forall _ -> 8
    | At_least _ -> 9
    | At_most _ -> 10
    | Data_exists _ -> 11
    | Data_forall _ -> 12
    | Data_at_least _ -> 13
    | Data_at_most _ -> 14
  in
  match (a, b) with
  | Top, Top | Bottom, Bottom -> 0
  | Atom x, Atom y -> String.compare x y
  | Not x, Not y -> compare x y
  | And (x1, y1), And (x2, y2) | Or (x1, y1), Or (x2, y2) ->
      let c = compare x1 x2 in
      if c <> 0 then c else compare y1 y2
  | One_of x, One_of y -> List.compare String.compare x y
  | Exists (r1, c1), Exists (r2, c2) | Forall (r1, c1), Forall (r2, c2) ->
      let c = Role.compare r1 r2 in
      if c <> 0 then c else compare c1 c2
  | At_least (n1, r1), At_least (n2, r2) | At_most (n1, r1), At_most (n2, r2) ->
      let c = Int.compare n1 n2 in
      if c <> 0 then c else Role.compare r1 r2
  | Data_exists (u1, d1), Data_exists (u2, d2)
  | Data_forall (u1, d1), Data_forall (u2, d2) ->
      let c = String.compare u1 u2 in
      if c <> 0 then c else Datatype.compare d1 d2
  | Data_at_least (n1, u1), Data_at_least (n2, u2)
  | Data_at_most (n1, u1), Data_at_most (n2, u2) ->
      let c = Int.compare n1 n2 in
      if c <> 0 then c else String.compare u1 u2
  | _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

let conj cs =
  let cs = List.filter (fun c -> c <> Top) cs in
  if List.exists (fun c -> c = Bottom) cs then Bottom
  else
    match cs with
    | [] -> Top
    | [ c ] -> c
    | c :: rest -> List.fold_left (fun acc d -> And (acc, d)) c rest

let disj cs =
  let cs = List.filter (fun c -> c <> Bottom) cs in
  if List.exists (fun c -> c = Top) cs then Top
  else
    match cs with
    | [] -> Bottom
    | [ c ] -> c
    | c :: rest -> List.fold_left (fun acc d -> Or (acc, d)) c rest

let neg = function Not c -> c | Top -> Bottom | Bottom -> Top | c -> Not c

let rec nnf = function
  | (Top | Bottom | Atom _ | One_of _) as c -> c
  | (At_least _ | At_most _ | Data_at_least _ | Data_at_most _) as c -> c
  | (Data_exists _ | Data_forall _) as c -> c
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Exists (r, c) -> Exists (r, nnf c)
  | Forall (r, c) -> Forall (r, nnf c)
  | Not c -> nnf_neg c

and nnf_neg = function
  | Top -> Bottom
  | Bottom -> Top
  | Atom _ as a -> Not a
  | One_of _ as o -> Not o
  | Not c -> nnf c
  | And (a, b) -> Or (nnf_neg a, nnf_neg b)
  | Or (a, b) -> And (nnf_neg a, nnf_neg b)
  | Exists (r, c) -> Forall (r, nnf_neg c)
  | Forall (r, c) -> Exists (r, nnf_neg c)
  | At_least (n, r) -> if n = 0 then Bottom else At_most (n - 1, r)
  | At_most (n, r) -> At_least (n + 1, r)
  | Data_exists (u, d) -> Data_forall (u, Datatype.Complement d)
  | Data_forall (u, d) -> Data_exists (u, Datatype.Complement d)
  | Data_at_least (n, u) -> if n = 0 then Bottom else Data_at_most (n - 1, u)
  | Data_at_most (n, u) -> Data_at_least (n + 1, u)

let rec hash c =
  let comb tag h = (tag * 65599) + h in
  match c with
  | Top -> 1
  | Bottom -> 2
  | Atom a -> comb 3 (Hashtbl.hash a)
  | Not d -> comb 5 (hash d)
  | And (a, b) -> comb 7 ((hash a * 31) + hash b)
  | Or (a, b) -> comb 11 ((hash a * 31) + hash b)
  | One_of os -> comb 13 (Hashtbl.hash os)
  | Exists (r, d) -> comb 17 ((Hashtbl.hash r * 31) + hash d)
  | Forall (r, d) -> comb 19 ((Hashtbl.hash r * 31) + hash d)
  | At_least (n, r) -> comb 23 ((n * 31) + Hashtbl.hash r)
  | At_most (n, r) -> comb 29 ((n * 31) + Hashtbl.hash r)
  | Data_exists (u, d) -> comb 31 ((Hashtbl.hash u * 31) + Hashtbl.hash d)
  | Data_forall (u, d) -> comb 37 ((Hashtbl.hash u * 31) + Hashtbl.hash d)
  | Data_at_least (n, u) -> comb 41 ((n * 31) + Hashtbl.hash u)
  | Data_at_most (n, u) -> comb 43 ((n * 31) + Hashtbl.hash u)

(* Canonicalization happens after NNF, so [Not] only wraps atoms/nominals
   and the connectives to flatten are the n-ary readings of [And]/[Or]. *)
let canon c =
  let rec conjuncts = function
    | And (a, b) -> conjuncts a @ conjuncts b
    | c -> [ c ]
  in
  let rec disjuncts = function
    | Or (a, b) -> disjuncts a @ disjuncts b
    | c -> [ c ]
  in
  let rec go c =
    match c with
    | Top | Bottom | Atom _ -> c
    | One_of os -> One_of (List.sort_uniq String.compare os)
    | Not d -> neg (go d)
    | And _ -> rebuild_and (List.map go (conjuncts c))
    | Or _ -> rebuild_or (List.map go (disjuncts c))
    | Exists (r, d) -> Exists (r, go d)
    | Forall (r, d) -> Forall (r, go d)
    | At_least _ | At_most _ -> c
    | Data_exists _ | Data_forall _ | Data_at_least _ | Data_at_most _ -> c
  and rebuild_and cs =
    let cs = List.sort_uniq compare (List.concat_map conjuncts cs) in
    if List.mem Bottom cs then Bottom
    else
      match List.filter (fun c -> c <> Top) cs with
      | [] -> Top
      | [ c ] -> c
      | c :: rest -> List.fold_left (fun acc d -> And (acc, d)) c rest
  and rebuild_or cs =
    let cs = List.sort_uniq compare (List.concat_map disjuncts cs) in
    if List.mem Top cs then Top
    else
      match List.filter (fun c -> c <> Bottom) cs with
      | [] -> Bottom
      | [ c ] -> c
      | c :: rest -> List.fold_left (fun acc d -> Or (acc, d)) c rest
  in
  go (nnf c)

let rec is_nnf = function
  | Top | Bottom | Atom _ | One_of _ -> true
  | Not (Atom _) | Not (One_of _) -> true
  | Not _ -> false
  | And (a, b) | Or (a, b) -> is_nnf a && is_nnf b
  | Exists (_, c) | Forall (_, c) -> is_nnf c
  | At_least _ | At_most _ -> true
  | Data_exists _ | Data_forall _ | Data_at_least _ | Data_at_most _ -> true

let rec size = function
  | Top | Bottom | Atom _ | One_of _ -> 1
  | At_least _ | At_most _ | Data_at_least _ | Data_at_most _ -> 1
  | Data_exists _ | Data_forall _ -> 1
  | Not c -> 1 + size c
  | And (a, b) | Or (a, b) -> 1 + size a + size b
  | Exists (_, c) | Forall (_, c) -> 1 + size c

let rec depth = function
  | Top | Bottom | Atom _ | One_of _ -> 0
  | At_least _ | At_most _ | Data_at_least _ | Data_at_most _ -> 1
  | Data_exists _ | Data_forall _ -> 1
  | Not c -> depth c
  | And (a, b) | Or (a, b) -> max (depth a) (depth b)
  | Exists (_, c) | Forall (_, c) -> 1 + depth c

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let subconcepts c =
  let rec go acc c =
    let acc = Set.add c acc in
    match c with
    | Top | Bottom | Atom _ | One_of _ -> acc
    | At_least _ | At_most _ | Data_at_least _ | Data_at_most _ -> acc
    | Data_exists _ | Data_forall _ -> acc
    | Not d -> go acc d
    | And (a, b) | Or (a, b) -> go (go acc a) b
    | Exists (_, d) | Forall (_, d) -> go acc d
  in
  Set.elements (go Set.empty c)

module Strings = Stdlib.Set.Make (String)

let collect f c =
  let rec go acc c =
    let acc = f acc c in
    match c with
    | Top | Bottom | Atom _ | One_of _ -> acc
    | At_least _ | At_most _ | Data_at_least _ | Data_at_most _ -> acc
    | Data_exists _ | Data_forall _ -> acc
    | Not d -> go acc d
    | And (a, b) | Or (a, b) -> go (go acc a) b
    | Exists (_, d) | Forall (_, d) -> go acc d
  in
  Strings.elements (go Strings.empty c)

let atom_names c =
  collect (fun acc -> function Atom a -> Strings.add a acc | _ -> acc) c

let role_names c =
  collect
    (fun acc -> function
      | Exists (r, _) | Forall (r, _) | At_least (_, r) | At_most (_, r) ->
          Strings.add (Role.base r) acc
      | _ -> acc)
    c

let data_role_names c =
  collect
    (fun acc -> function
      | Data_exists (u, _) | Data_forall (u, _) | Data_at_least (_, u)
      | Data_at_most (_, u) ->
          Strings.add u acc
      | _ -> acc)
    c

let individual_names c =
  collect
    (fun acc -> function
      | One_of os -> List.fold_left (fun acc o -> Strings.add o acc) acc os
      | _ -> acc)
    c

let rec pp ppf c =
  match c with
  | Top -> Format.pp_print_string ppf "Top"
  | Bottom -> Format.pp_print_string ppf "Bottom"
  | Atom a -> Format.pp_print_string ppf a
  | Not c -> Format.fprintf ppf "~%a" pp_atomic c
  | And (a, b) -> Format.fprintf ppf "%a & %a" pp_atomic a pp_atomic b
  | Or (a, b) -> Format.fprintf ppf "%a | %a" pp_atomic a pp_atomic b
  | One_of os ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_string)
        os
  | Exists (r, c) -> Format.fprintf ppf "some %a.%a" Role.pp r pp_atomic c
  | Forall (r, c) -> Format.fprintf ppf "only %a.%a" Role.pp r pp_atomic c
  | At_least (n, r) -> Format.fprintf ppf ">= %d %a" n Role.pp r
  | At_most (n, r) -> Format.fprintf ppf "<= %d %a" n Role.pp r
  | Data_exists (u, d) -> Format.fprintf ppf "some %s:%a" u Datatype.pp d
  | Data_forall (u, d) -> Format.fprintf ppf "only %s:%a" u Datatype.pp d
  | Data_at_least (n, u) -> Format.fprintf ppf ">= %d data %s" n u
  | Data_at_most (n, u) -> Format.fprintf ppf "<= %d data %s" n u

and pp_atomic ppf c =
  match c with
  | Top | Bottom | Atom _ | One_of _ -> pp ppf c
  | Not _ -> pp ppf c
  | _ -> Format.fprintf ppf "(%a)" pp c

let to_string c = Format.asprintf "%a" pp c
