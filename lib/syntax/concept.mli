(** [SHOIN(D)] / [SHOIN(D)4] concept expressions (Table 1 / Table 2 syntax).

    The concept language is shared between the two logics — the paper's
    [SHOIN(D)4] keeps all constructors of [SHOIN(D)] and changes only the
    semantics and the inclusion axioms. *)

type t =
  | Top                                  (** ⊤ *)
  | Bottom                               (** ⊥ *)
  | Atom of string                       (** atomic concept [A] *)
  | Not of t                             (** ¬C *)
  | And of t * t                         (** C ⊓ D *)
  | Or of t * t                          (** C ⊔ D *)
  | One_of of string list                (** {o₁, …} — nominals *)
  | Exists of Role.t * t                 (** ∃R.C *)
  | Forall of Role.t * t                 (** ∀R.C *)
  | At_least of int * Role.t             (** ≥ n.R (unqualified) *)
  | At_most of int * Role.t              (** ≤ n.R (unqualified) *)
  | Data_exists of string * Datatype.t   (** ∃U.D *)
  | Data_forall of string * Datatype.t   (** ∀U.D *)
  | Data_at_least of int * string        (** ≥ n.U *)
  | Data_at_most of int * string         (** ≤ n.U *)

val compare : t -> t -> int
val equal : t -> t -> bool

(** {1 Smart constructors} *)

val conj : t list -> t
(** Right-nested conjunction; [conj [] = Top], identities for [Top] and
    short-circuit on [Bottom]. *)

val disj : t list -> t
(** Right-nested disjunction; [disj [] = Bottom]. *)

val neg : t -> t
(** Logical negation with double-negation elimination (¬¬C = C, Prop. 4). *)

(** {1 Normal forms and measures} *)

val nnf : t -> t
(** Negation normal form: negation pushed to atomic concepts, nominals and
    datatypes, using the dualities of Proposition 4.  [¬≥n.R] becomes
    [≤(n-1).R] (or [⊥] when [n = 0]); [¬≤n.R] becomes [≥(n+1).R]. *)

val is_nnf : t -> bool

val canon : t -> t
(** Canonical NNF, the query-key normal form of the engine layer: {!nnf}
    followed by flattening of [And]/[Or] chains into sorted, duplicate-free
    right-nested spines (absorbing [Top]/[Bottom] units), and sorting of
    nominal lists.  Commuted, reassociated and duplicated conjunctions or
    disjunctions of the same concept all map to one representative, so
    structural equality on canonical forms is a sound (not complete)
    approximation of semantic equivalence. *)

val hash : t -> int
(** Structural hash, compatible with {!equal}. *)

val size : t -> int
(** Number of AST nodes. *)

val depth : t -> int
(** Maximal nesting depth of role restrictions (quantifier depth). *)

val subconcepts : t -> t list
(** All subconcepts, including the concept itself (no duplicates). *)

(** {1 Signature} *)

val atom_names : t -> string list
val role_names : t -> string list
val data_role_names : t -> string list
val individual_names : t -> string list

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** DL-style: [A ⊓ ∃R.B], using ASCII-safe operators
    ([&], [|], [~], [some], [only], [>=], [<=]). *)

val pp_atomic : Format.formatter -> t -> unit
(** Like {!pp} but parenthesizes non-atomic concepts, for embedding. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
