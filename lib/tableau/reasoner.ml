type t = {
  mutable prep : Tableau.prep;
      (* cached preprocessing (absorption, hierarchy, blocking signals):
         computed once per KB, refreshed incrementally by [apply_delta],
         shared by every query instead of being re-derived per tableau
         run *)
  max_nodes : int;
  max_branches : int;
  stats : Tableau.stats;
  mutable consistent : bool option;
}

let create ?(max_nodes = 20_000) ?(max_branches = max_int) kb =
  { prep = Tableau.prepare kb;
    max_nodes;
    max_branches;
    stats = Tableau.fresh_stats ();
    consistent = None }

let kb t = Tableau.prep_kb t.prep
let stats t = t.stats

(* Remove the first structurally-equal occurrence of each [axs] element;
   missing retractions are silently ignored (deltas are idempotent about
   absent assertions). *)
let remove_each axs abox =
  List.fold_left
    (fun abox ax ->
      let rec drop = function
        | [] -> []
        | hd :: tl -> if hd = ax then tl else hd :: drop tl
      in
      drop abox)
    abox axs

let apply_delta t ~add_abox ~retract_abox ~add_tbox =
  let abox = remove_each retract_abox (Tableau.prep_kb t.prep).Axiom.abox in
  let abox = abox @ add_abox in
  t.prep <- Tableau.prep_add_tbox (Tableau.prep_with_abox t.prep abox) add_tbox;
  t.consistent <- None

let sat ?prov t extra_abox =
  Tableau.prepared_satisfiable ~max_nodes:t.max_nodes
    ~max_branches:t.max_branches ~stats:t.stats ?prov t.prep extra_abox

let is_consistent ?prov t =
  match (t.consistent, prov) with
  | Some b, None -> b
  | Some b, Some _ ->
      (* a provenance sink was supplied: re-run so it gets populated *)
      let b' = sat ?prov t [] in
      assert (b = b');
      b
  | None, _ ->
      let b = sat ?prov t [] in
      t.consistent <- Some b;
      b

let consistent_with ?prov t extra = sat ?prov t extra

let find_model t =
  Tableau.prepared_model ~max_nodes:t.max_nodes ~max_branches:t.max_branches
    ~stats:t.stats t.prep []

(* Fresh names use ':', which cannot appear in surface-syntax identifiers. *)
let fresh_individual = "q:fresh"
let fresh_marker = "q:marker"

let concept_satisfiable ?prov t c =
  sat ?prov t [ Axiom.Instance_of (fresh_individual, c) ]

let subsumes t c d =
  not (concept_satisfiable t (Concept.And (c, Concept.Not d)))

let equivalent t c d = subsumes t c d && subsumes t d c

let instance_of t a c = not (sat t [ Axiom.Instance_of (a, Concept.Not c) ])

let role_entailed ?prov t a r b =
  not
    (sat ?prov t
       [ Axiom.Instance_of (b, Concept.Atom fresh_marker);
         Axiom.Instance_of
           (a, Concept.Forall (r, Concept.Not (Concept.Atom fresh_marker))) ])

let same_entailed t a b =
  not
    (sat t
       [ Axiom.Instance_of (a, Concept.Atom fresh_marker);
         Axiom.Instance_of (b, Concept.Not (Concept.Atom fresh_marker)) ])

let different_entailed t a b = not (sat t [ Axiom.Same (a, b) ])

let classify t =
  let atoms = (Axiom.signature (kb t)).concepts in
  List.map
    (fun a ->
      let supers =
        List.filter
          (fun b -> b <> a && subsumes t (Concept.Atom a) (Concept.Atom b))
          atoms
      in
      (a, supers))
    atoms

let validate t =
  let target = kb t in
  let h = Hierarchy.build target.Axiom.tbox in
  let warnings = ref [] in
  let warn fmt = Format.kasprintf (fun s -> warnings := s :: !warnings) fmt in
  let check_concept c =
    List.iter
      (fun (sub : Concept.t) ->
        match sub with
        | At_least (_, r) | At_most (_, r) ->
            if Hierarchy.transitive_subs_below h r <> [] then
              warn
                "number restriction %s uses non-simple role %s (it has a \
                 transitive subrole); outside the decidable fragment"
                (Concept.to_string sub) (Role.to_string r)
        | _ -> ())
      (Concept.subconcepts c)
  in
  List.iter
    (function
      | Axiom.Concept_sub (c, d) ->
          check_concept c;
          check_concept d
      | _ -> ())
    target.Axiom.tbox;
  List.iter
    (function Axiom.Instance_of (_, c) -> check_concept c | _ -> ())
    target.Axiom.abox;
  List.rev !warnings
